#!/usr/bin/env python3
"""Validate an OpenMetrics text exposition (what `GET /metrics` serves).

The server renders its registry with src/obs/openmetrics.cpp; this tool is
the other half of the contract — an independent parser that fails CI when
the rendering drifts from the spec subset we promise:

  * every sample is preceded by a `# TYPE <family> <counter|gauge|histogram>`
    line for its family, and families are not re-declared,
  * metric names match [a-zA-Z_:][a-zA-Z0-9_:]*,
  * counter samples use the `_total` suffix and are non-negative integers,
  * histogram families expose cumulative `_bucket{le="..."}` samples with
    non-decreasing counts and strictly increasing le bounds, a final
    `le="+Inf"` bucket equal to `_count`, plus `_sum` and `_count`,
  * the exposition ends with exactly one `# EOF` line and nothing after it.

With --require NAME[,NAME...] it additionally exits 1 unless every named
family is present — the "the endpoint did not silently go empty" gate.

Usage:
  curl -s http://127.0.0.1:9464/metrics | tools/check_openmetrics.py -
  tools/check_openmetrics.py scrape.txt --require cny_responses,cny_frames_in
"""

import argparse
import re
import sys


NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r" (?P<value>\S+)$"
)


def fail(lineno, message):
    sys.exit(f"line {lineno}: {message}")


def parse_value(lineno, text):
    if text == "+Inf":
        return float("inf")
    try:
        return float(text)
    except ValueError:
        fail(lineno, f"unparseable sample value {text!r}")


def family_of(name, types):
    """The declared family a sample name belongs to, or None.

    Histogram samples append _bucket/_sum/_count and counters append
    _total to the family name, so strip known suffixes longest-first.
    """
    for suffix in ("_bucket", "_total", "_count", "_sum"):
        if name.endswith(suffix) and name[: -len(suffix)] in types:
            return name[: -len(suffix)]
    if name in types:
        return name
    return None


def check(lines):
    types = {}  # family -> counter|gauge|histogram
    samples = {}  # family -> list of (lineno, suffix, labels, value)
    saw_eof = False
    for lineno, raw in enumerate(lines, start=1):
        line = raw.rstrip("\n")
        if saw_eof:
            fail(lineno, "content after # EOF")
        if line == "# EOF":
            saw_eof = True
            continue
        if line.startswith("# TYPE "):
            parts = line.split(" ")
            if len(parts) != 4:
                fail(lineno, f"malformed TYPE line: {line!r}")
            _, _, family, kind = parts
            if not NAME_RE.match(family):
                fail(lineno, f"invalid metric name {family!r}")
            if kind not in ("counter", "gauge", "histogram"):
                fail(lineno, f"unsupported metric type {kind!r}")
            if family in types:
                fail(lineno, f"family {family!r} declared twice")
            types[family] = kind
            samples[family] = []
            continue
        if line.startswith("#"):
            continue  # HELP / comments: allowed, not required
        if not line:
            fail(lineno, "blank line inside exposition")
        m = SAMPLE_RE.match(line)
        if not m:
            fail(lineno, f"unparseable sample line: {line!r}")
        name = m.group("name")
        family = family_of(name, types)
        if family is None:
            fail(lineno, f"sample {name!r} has no preceding TYPE line")
        suffix = name[len(family):]
        samples[family].append(
            (lineno, suffix, m.group("labels"), parse_value(lineno, m.group("value")))
        )
    if not saw_eof:
        sys.exit("exposition does not end with # EOF")

    for family, kind in types.items():
        rows = samples[family]
        if not rows:
            fail(0, f"family {family!r} declared but has no samples")
        if kind == "counter":
            check_counter(family, rows)
        elif kind == "gauge":
            check_gauge(family, rows)
        else:
            check_histogram(family, rows)
    return types


def check_counter(family, rows):
    for lineno, suffix, _labels, value in rows:
        if suffix != "_total":
            fail(lineno, f"counter {family!r} sample must end in _total")
        if value < 0 or value != int(value):
            fail(lineno, f"counter {family!r} value {value} not a "
                         "non-negative integer")


def check_gauge(family, rows):
    for lineno, suffix, _labels, _value in rows:
        if suffix != "":
            fail(lineno, f"gauge {family!r} sample has unexpected "
                         f"suffix {suffix!r}")


def check_histogram(family, rows):
    buckets = []  # (lineno, le, value)
    sum_value = count_value = None
    for lineno, suffix, labels, value in rows:
        if suffix == "_bucket":
            m = re.match(r'^le="([^"]*)"$', labels or "")
            if not m:
                fail(lineno, f"histogram {family!r} bucket needs exactly "
                             'an le="..." label')
            buckets.append((lineno, parse_value(lineno, m.group(1)), value))
        elif suffix == "_sum":
            sum_value = value
        elif suffix == "_count":
            count_value = value
        else:
            fail(lineno, f"histogram {family!r} sample has unexpected "
                         f"suffix {suffix!r}")
    if not buckets:
        fail(0, f"histogram {family!r} has no buckets")
    if sum_value is None or count_value is None:
        fail(0, f"histogram {family!r} missing _sum or _count")
    last_le = last_value = None
    for lineno, le, value in buckets:
        if last_le is not None and le <= last_le:
            fail(lineno, f"histogram {family!r} le bounds not strictly "
                         "increasing")
        if last_value is not None and value < last_value:
            fail(lineno, f"histogram {family!r} bucket counts not "
                         "cumulative")
        last_le, last_value = le, value
    if last_le != float("inf"):
        fail(buckets[-1][0], f"histogram {family!r} missing le=\"+Inf\" "
                             "bucket")
    if last_value != count_value:
        fail(buckets[-1][0], f"histogram {family!r} +Inf bucket "
                             f"({last_value}) != _count ({count_value})")


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("exposition",
                        help="scrape file, or - to read stdin")
    parser.add_argument("--require", default="",
                        help="comma-separated family names that must be "
                             "present (exit 1 otherwise)")
    args = parser.parse_args()

    if args.exposition == "-":
        lines = sys.stdin.readlines()
    else:
        with open(args.exposition, "r", encoding="utf-8") as f:
            lines = f.readlines()
    types = check(lines)

    required = [n for n in args.require.split(",") if n]
    missing = [n for n in required if n not in types]
    if missing:
        sys.exit("missing required metric(s): " + ", ".join(missing)
                 + f" (exposition has {len(types)} families)")
    counts = {}
    for kind in types.values():
        counts[kind] = counts.get(kind, 0) + 1
    print(f"OK: {len(types)} families ("
          + ", ".join(f"{v} {k}" for k, v in sorted(counts.items()))
          + ")")
    return 0


if __name__ == "__main__":
    sys.exit(main())
