# CTest script: runs `cntyield_cli scenarios` at the pinned cheap settings
# and diffs its *table rows* against the checked-in golden
# (tools/golden/scenarios_rows.txt). The rows are the PR 5 scenarios output
# — the campaign-runner rebuild of the subcommand must not move a digit.
#
# Only lines starting with '|' are compared: the footer carries timings and
# error lines embed absolute source paths (CNY_EXPECT), neither of which is
# stable across machines or checkouts.
#
# Usage:
#   cmake -DCLI=<cntyield_cli> -DGOLDEN=<scenarios_rows.txt>
#         [-DEXTRA=--via-service] -P check_scenarios_golden.cmake
if(NOT DEFINED CLI OR NOT DEFINED GOLDEN)
  message(FATAL_ERROR "usage: cmake -DCLI=... -DGOLDEN=... [-DEXTRA=...] -P check_scenarios_golden.cmake")
endif()

# The golden was captured at exactly these settings; keep them cheap enough
# for tier-1 (~2 s) but deep enough to cross the feasibility frontier.
set(args scenarios --points=4 --mc-samples=200 --seed=3 --selectivity=6
    --prm-lo=0.999 --prm-hi=0.9999999 --with-shorts --noise-fails=0.00001
    --threads=1)
if(DEFINED EXTRA)
  list(APPEND args ${EXTRA})
endif()

execute_process(COMMAND ${CLI} ${args}
                OUTPUT_VARIABLE out RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "scenarios exited with ${rc}:\n${out}")
endif()

string(REPLACE "\n" ";" lines "${out}")
set(rows "")
foreach(line IN LISTS lines)
  if(line MATCHES "^\\|")
    string(APPEND rows "${line}\n")
  endif()
endforeach()

file(READ ${GOLDEN} golden)
if(NOT rows STREQUAL golden)
  message(FATAL_ERROR "scenarios table rows diverged from ${GOLDEN}\n"
                      "--- got ---\n${rows}--- want ---\n${golden}")
endif()
