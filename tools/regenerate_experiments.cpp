// Regenerates EXPERIMENTS.md from the live experiment drivers, so the
// paper-vs-measured record in the repository is always reproducible:
//
//   ./regenerate_experiments > ../EXPERIMENTS.md
//
// (Table 1's middle column uses a fixed seed; every number in the file is
// deterministic.)
#include <iostream>

#include "experiments/fig2_1.h"
#include "experiments/fig2_2.h"
#include "experiments/flow_summary.h"
#include "experiments/table1.h"
#include "experiments/table2.h"

int main() {
  using namespace cny::experiments;
  const PaperParams params;

  std::cout <<
      "# EXPERIMENTS — paper vs measured\n"
      "\n"
      "Reproduction record for *Carbon Nanotube Correlation: Promising\n"
      "Opportunity for CNFET Circuit Yield Enhancement* (Zhang et al., DAC\n"
      "2010). Regenerate with `build/tools/regenerate_experiments >\n"
      "EXPERIMENTS.md`; the same tables print from the per-figure bench\n"
      "binaries (`build/bench/bench_*`).\n"
      "\n"
      "## Calibration\n"
      "\n"
      "Three constants are calibrated because the paper references them to\n"
      "external artefacts we reproduce synthetically (full substitution\n"
      "table in DESIGN.md):\n"
      "\n"
      "| constant | value | calibration target |\n"
      "|---|---|---|\n"
      "| inter-CNT pitch CV (σ_S/μ_S) | 0.9 | Fig 2.1 anchors: p_F(155 nm) ≈ 3e-9 and the ~350X decade spacing; the paper keeps the [Zhang 09a] ratio but does not print it |\n"
      "| design mix (`netlist::MixParams`) | seq 10 %, drive decay 0.65 | Fig 2.2a: two left-most 80 nm bins hold ~33 % of transistors |\n"
      "| library fold geometry (`celllib::GeometryRules`) | jitter 95 nm (45 nm lib); fold gap 25–55 nm, overlap ≤ 0.22 (45 nm) / ≤ 0.85 (65 nm) | Table 1 middle column (~13X aligned-active gain) and Table 2 penalty bands |\n"
      "\n"
      "Everything else is taken directly from the paper: μ_S = 4 nm, p_m =\n"
      "33 %, p_Rm ≈ 1, p_Rs ∈ {0, 30 %}, M = 100e6, yield 90 %, L_CNT =\n"
      "200 µm, P_min-CNFET = 1.8 FETs/µm, nodes {45, 32, 22, 16} nm.\n"
      "\n";

  std::cout << report_fig2_1(params).render_markdown() << '\n';
  std::cout << report_fig2_2a().render_markdown() << '\n';
  std::cout << report_fig2_2b(params).render_markdown() << '\n';
  std::cout << report_table1(params).render_markdown() << '\n';
  std::cout << report_fig3_3(params, 350.0).render_markdown() << '\n';
  std::cout << report_table2(params).render_markdown() << '\n';
  std::cout << report_flow_summary(params).render_markdown() << '\n';

  std::cout <<
      "## Reading guide\n"
      "\n"
      "* **Fig 2.1** — the measured curve matches the paper's slope\n"
      "  (d ln p_F/dW ≈ -0.12 per nm) by construction of eq. 2.2; the two\n"
      "  anchor widths land within a few nm of the paper's 155/103 nm.\n"
      "* **Table 1** — the uncorrelated column is pinned to the paper's\n"
      "  operating point; the aligned column is p_F by the sharing argument;\n"
      "  the middle column is *computed* (Ross conditional Monte Carlo over\n"
      "  the synthetic library's offset diversity) and reproduces the\n"
      "  ~26.5X × ~13X ≈ 350X decomposition.\n"
      "* **Fig 2.2b / Fig 3.3** — the penalty explosion towards 16 nm and\n"
      "  its collapse under correlation are the paper's headline; both\n"
      "  reproduce. Absolute percentages depend on the synthetic width\n"
      "  distribution's tail and deviate from the paper by a few points.\n"
      "* **Table 2** — cell counts (134/775), the 4-of-134 penalised set,\n"
      "  the ~20 % commercial penalised share, the 0 % two-row variant and\n"
      "  the W_min ordering (one-row < two-row, both ≈ 100–112 nm) all\n"
      "  reproduce; the 65 nm max penalty reaches ~69 % vs the paper's 70 %.\n";
  return 0;
}
