#!/usr/bin/env python3
"""Summarise a cntyield trace JSONL (--trace=FILE) into a per-stage table.

The trace file is Chrome-trace-event JSON written one event per line (a
"[" opener, complete "X" events, a "]" closer that only appears on clean
shutdown), so it loads in Perfetto / chrome://tracing *and* streams line
by line here. This tool:

  * parses tolerantly (the array brackets, trailing commas, and a missing
    closer — a live or killed process — are all fine),
  * validates the schema of every complete event (name/cat/ph/ts/pid/tid,
    plus dur for ph == "X"),
  * prints one row per span name: count, total, p50/p95/max duration,
  * with --csv emits the same table as CSV for spreadsheets / pandas,
  * with --since/--until only spans *starting* inside the [since, until]
    window (trace-clock microseconds, i.e. the `ts` field) are counted —
    cut the warm-up off a long capture before summarising,
  * with --require a,b,c exits 1 unless every named span occurs at least
    once — CI's "the instrumentation did not silently fall off" gate.

Usage:
  tools/trace_summary.py trace.jsonl
  tools/trace_summary.py trace.jsonl --csv > spans.csv
  tools/trace_summary.py trace.jsonl --since 2500000 --until 9000000
  tools/trace_summary.py trace.jsonl --require queue_wait,evaluate,serialize
"""

import argparse
import csv
import json
import sys


REQUIRED_KEYS = ("name", "ph", "ts", "pid", "tid")


def load_events(path):
    """Yields parsed events; raises SystemExit on malformed lines."""
    events = []
    with open(path, "r", encoding="utf-8") as f:
        for lineno, raw in enumerate(f, start=1):
            line = raw.strip()
            if line in ("", "[", "]"):
                continue  # array brackets / blank lines
            line = line.rstrip(",")
            try:
                event = json.loads(line)
            except json.JSONDecodeError as e:
                # A torn final line is expected from a killed process; any
                # earlier parse failure is a real format bug.
                if lineno == count_lines(path):
                    continue
                sys.exit(f"{path}:{lineno}: unparseable event: {e}")
            if not isinstance(event, dict):
                sys.exit(f"{path}:{lineno}: event is not an object")
            for key in REQUIRED_KEYS:
                if key not in event:
                    sys.exit(f"{path}:{lineno}: event missing '{key}'")
            if event["ph"] == "X" and "dur" not in event:
                sys.exit(f"{path}:{lineno}: complete event missing 'dur'")
            events.append(event)
    return events


def count_lines(path):
    with open(path, "rb") as f:
        return sum(1 for _ in f)


def quantile(sorted_values, q):
    if not sorted_values:
        return 0.0
    pos = q * (len(sorted_values) - 1)
    lo = int(pos)
    hi = min(lo + 1, len(sorted_values) - 1)
    frac = pos - lo
    return sorted_values[lo] * (1.0 - frac) + sorted_values[hi] * frac


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("trace", help="trace JSONL written by --trace=FILE")
    parser.add_argument(
        "--require",
        default="",
        help="comma-separated span names that must each occur at least once "
        "(exit 1 otherwise)",
    )
    parser.add_argument(
        "--csv",
        action="store_true",
        help="emit the summary table as CSV instead of aligned text",
    )
    parser.add_argument(
        "--since",
        type=float,
        default=None,
        metavar="TS_US",
        help="only count spans whose start ts (trace microseconds) is "
        ">= TS_US",
    )
    parser.add_argument(
        "--until",
        type=float,
        default=None,
        metavar="TS_US",
        help="only count spans whose start ts (trace microseconds) is "
        "<= TS_US",
    )
    args = parser.parse_args()

    events = load_events(args.trace)
    spans = {}  # name -> list of durations (us)
    windowed_out = 0
    for event in events:
        if event["ph"] != "X":
            continue
        ts = float(event["ts"])
        if (args.since is not None and ts < args.since) or (
            args.until is not None and ts > args.until
        ):
            windowed_out += 1
            continue
        spans.setdefault(event["name"], []).append(float(event["dur"]))
    if windowed_out:
        print(
            f"note: {windowed_out} span(s) outside the "
            "--since/--until window were skipped",
            file=sys.stderr,
        )

    columns = ("span", "count", "total_us", "p50_us", "p95_us", "max_us")
    rows = []
    for name in sorted(spans):
        durations = sorted(spans[name])
        rows.append(
            (
                name,
                len(durations),
                round(sum(durations), 1),
                round(quantile(durations, 0.5), 1),
                round(quantile(durations, 0.95), 1),
                round(durations[-1], 1),
            )
        )

    if args.csv:
        writer = csv.writer(sys.stdout)
        writer.writerow(columns)
        writer.writerows(rows)
    else:
        name_width = max([len(n) for n in spans] + [len("span")])
        header = (
            f"{'span':<{name_width}}  {'count':>7}  {'total_us':>12}  "
            f"{'p50_us':>10}  {'p95_us':>10}  {'max_us':>10}"
        )
        print(header)
        print("-" * len(header))
        for name, count, total, p50, p95, mx in rows:
            print(
                f"{name:<{name_width}}  {count:>7}  {total:>12.1f}  "
                f"{p50:>10.1f}  {p95:>10.1f}  {mx:>10.1f}"
            )

    required = [n for n in args.require.split(",") if n]
    missing = [n for n in required if n not in spans]
    if missing:
        sys.exit(
            "missing required span(s): "
            + ", ".join(missing)
            + f" (trace has: {', '.join(sorted(spans)) or 'none'})"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
