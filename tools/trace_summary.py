#!/usr/bin/env python3
"""Summarise a cntyield trace JSONL (--trace=FILE) into a per-stage table.

The trace file is Chrome-trace-event JSON written one event per line (a
"[" opener, complete "X" events, a "]" closer that only appears on clean
shutdown), so it loads in Perfetto / chrome://tracing *and* streams line
by line here. This tool:

  * parses tolerantly (the array brackets, trailing commas, and a missing
    closer — a live or killed process — are all fine),
  * validates the schema of every complete event (name/cat/ph/ts/pid/tid,
    plus dur for ph == "X"),
  * prints one row per span name: count, total, p50/p95/max duration,
  * with --require a,b,c exits 1 unless every named span occurs at least
    once — CI's "the instrumentation did not silently fall off" gate.

Usage:
  tools/trace_summary.py trace.jsonl
  tools/trace_summary.py trace.jsonl --require queue_wait,evaluate,serialize
"""

import argparse
import json
import sys


REQUIRED_KEYS = ("name", "ph", "ts", "pid", "tid")


def load_events(path):
    """Yields parsed events; raises SystemExit on malformed lines."""
    events = []
    with open(path, "r", encoding="utf-8") as f:
        for lineno, raw in enumerate(f, start=1):
            line = raw.strip()
            if line in ("", "[", "]"):
                continue  # array brackets / blank lines
            line = line.rstrip(",")
            try:
                event = json.loads(line)
            except json.JSONDecodeError as e:
                # A torn final line is expected from a killed process; any
                # earlier parse failure is a real format bug.
                if lineno == count_lines(path):
                    continue
                sys.exit(f"{path}:{lineno}: unparseable event: {e}")
            if not isinstance(event, dict):
                sys.exit(f"{path}:{lineno}: event is not an object")
            for key in REQUIRED_KEYS:
                if key not in event:
                    sys.exit(f"{path}:{lineno}: event missing '{key}'")
            if event["ph"] == "X" and "dur" not in event:
                sys.exit(f"{path}:{lineno}: complete event missing 'dur'")
            events.append(event)
    return events


def count_lines(path):
    with open(path, "rb") as f:
        return sum(1 for _ in f)


def quantile(sorted_values, q):
    if not sorted_values:
        return 0.0
    pos = q * (len(sorted_values) - 1)
    lo = int(pos)
    hi = min(lo + 1, len(sorted_values) - 1)
    frac = pos - lo
    return sorted_values[lo] * (1.0 - frac) + sorted_values[hi] * frac


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("trace", help="trace JSONL written by --trace=FILE")
    parser.add_argument(
        "--require",
        default="",
        help="comma-separated span names that must each occur at least once "
        "(exit 1 otherwise)",
    )
    args = parser.parse_args()

    events = load_events(args.trace)
    spans = {}  # name -> list of durations (us)
    for event in events:
        if event["ph"] != "X":
            continue
        spans.setdefault(event["name"], []).append(float(event["dur"]))

    name_width = max([len(n) for n in spans] + [len("span")])
    header = (
        f"{'span':<{name_width}}  {'count':>7}  {'total_us':>12}  "
        f"{'p50_us':>10}  {'p95_us':>10}  {'max_us':>10}"
    )
    print(header)
    print("-" * len(header))
    for name in sorted(spans):
        durations = sorted(spans[name])
        print(
            f"{name:<{name_width}}  {len(durations):>7}  "
            f"{sum(durations):>12.1f}  "
            f"{quantile(durations, 0.5):>10.1f}  "
            f"{quantile(durations, 0.95):>10.1f}  "
            f"{durations[-1]:>10.1f}"
        )

    required = [n for n in args.require.split(",") if n]
    missing = [n for n in required if n not in spans]
    if missing:
        sys.exit(
            "missing required span(s): "
            + ", ".join(missing)
            + f" (trace has: {', '.join(sorted(spans)) or 'none'})"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
