// cntyield_cli — the command-line front end a downstream user drives the
// library with. Subcommands map 1:1 onto the analyses in the paper:
//
//   cntyield_cli pf      [--w=155] [--pm=0.33] [--prs=0.30] [--cv=0.9]
//   cntyield_cli wmin    [--lib=FILE] [--design=FILE] [--yield=0.90]
//                        [--relaxation=1] [--chip-m=1e8]
//   cntyield_cli flow    [--lib=FILE] [--design=FILE] [--yield=0.90]
//                        [--mc-samples=20000] [--streams=16] [--seed=1]
//                        [--scenario=shorts,length,removal + mechanism flags]
//   cntyield_cli batch   [--yields=0.80,0.90,0.95] [--no-interp]
//                        (yield-target sweep through run_flow_batch)
//   cntyield_cli scenarios [--points=6] [--selectivity=4.24]
//                        [--prm-lo=0.99] [--prm-hi=0.9999999] [--with-shorts]
//                        [--via-service] (removal-frontier sweep end-to-end;
//                        a thin wrapper over the campaign runner)
//   cntyield_cli campaign --spec=FILE | --axes="path=expr;..."
//                        [--derived="path=expr;..."] [--set="path=v;..."]
//                        [--name=N] [--store=FILE] [--chunk=16]
//                        [--via-service] [--dry-run] [--print-spec]
//                        [--table] [--cache-size=8] [--knots=65]
//                        (general parameter sweeps; resumable store; exit 3
//                        on SIGTERM/SIGINT after checkpointing)
//   cntyield_cli scaling [--relaxation=350] (Fig 2.2b / 3.3 series)
//   cntyield_cli table1  / table2            (paper tables)
//   cntyield_cli align   [--lib=FILE] [--wmin=103] [--rows=1] [--out=FILE]
//   cntyield_cli gen-lib [--which=nangate45|commercial65] --out=FILE
//   cntyield_cli gen-design --lib=FILE --out=FILE [--instances=50000]
//   cntyield_cli serve   [--port=7421] [--threads=N] [--coalesce-us=2000]
//                        [--cache-size=4] [--knots=65] [--max-queue=1024]
//                        [--metrics-port=N] [--sample-ms=N]
//                        [--snapshot-file=FILE]
//                        (SIGTERM/SIGINT or a Shutdown frame drain
//                        gracefully: queued work finishes, new requests
//                        get `shutting_down`; --metrics-port serves
//                        OpenMetrics `GET /metrics`, --sample-ms samples
//                        RSS/CPU into process.* gauges, --snapshot-file
//                        exports one metrics snapshot per tick as JSONL)
//   cntyield_cli request [--host=127.0.0.1] [--port=7421] [--ping]
//                        [--shutdown] [--library=nangate45|commercial65]
//                        [--instances=0] [--yield=0.90] [--seed=1]
//                        [--retries=0] [--retry-base-ms=10]
//                        [--deadline-ms=0] [--table] ...
//   cntyield_cli stats   [--host=127.0.0.1] [--port=7421] [--table]
//                        (metrics snapshot of a running server: counters,
//                        queue gauges, per-stage latency histograms, and
//                        the process-wide thread-pool/kernel metrics —
//                        canonical JSON, or tables with --table)
//   cntyield_cli top     [--host=127.0.0.1] [--port=7421]
//                        [--interval-ms=1000] [--count=0]
//                        (live dashboard: polls Stats frames and renders
//                        counter rates, latency quantiles, session-cache
//                        occupancy and RSS between refreshes; --count=N
//                        bounds the run for scripts/CI)
//   cntyield_cli --version
//
// Failure semantics (docs/architecture.md): a service failure exits 4
// (transport — could not reach/keep a connection or parse the response)
// or 5 (the server answered with an error frame), each with a one-line
// stderr diagnostic. --retries=N retries *transient* failures up to N
// times with exponential backoff; terminal errors (bad_request, ...) are
// never retried. campaign --via-service takes the same --retries/
// --retry-base-ms, plus a deterministic chaos harness for drills:
// --chaos=drop,delay,reject [--chaos-period=3] [--chaos-seed=1]
// [--chaos-max=0] injects wire faults into the loopback server; transient
// outcomes are retried and never reach the store.
//
// `flow` and `batch` honour --threads=N (0 = hardware concurrency, the
// default); thread count only changes wall-clock, never the numbers (those
// depend on --seed and --streams only). The table/scaling subcommands keep
// their serial legacy MC loops unchanged.
// --simd=auto|off (any subcommand) selects the kernel backend: `auto` (the
// default) uses the AVX2 backend when the build and CPU support it, `off`
// forces the scalar reference. Like --threads, it only changes wall-clock:
// every backend is bit-identical to the scalar kernels
// (docs/architecture.md, "Kernel backends").
// --trace=FILE (any subcommand) writes a Chrome-trace-event JSONL of
// observability spans — server stages, session warms, client retry
// attempts, campaign chunks — loadable in Perfetto / chrome://tracing and
// summarised by tools/trace_summary.py. Observational only: every output
// and store byte is identical with or without it (docs/architecture.md,
// "Observability"). Exits 2 when the build compiled tracing out
// (-DCNY_OBS=OFF).
// --log-file=FILE [--log-level=debug|info|warn|error] (any subcommand)
// writes a structured JSONL event log — server lifecycle, session
// builds/evictions, overload rejects, deadline sheds, campaign
// checkpoints — one self-contained JSON object per line. Same
// zero-perturbation contract and -DCNY_OBS=OFF exit-2 behaviour as
// --trace.
// campaign --progress renders a live progress line on stderr;
// --progress-file=PATH additionally appends one JSON line per checkpoint
// (done/pending, retry rounds, sessions built, ETA) for dashboards.
// Without --lib/--design the built-in synthetic nangate45_like library and
// OpenRISC-like design are used, so every subcommand runs out of the box.
// `serve` starts the batching yield service of src/service/ on 127.0.0.1;
// `request` is its TCP client. Unknown subcommands or flags exit 2 with
// usage — a typo never silently runs with defaults.
//
// Scenario flags (flow / batch / request / scenarios; see scenario/spec.h):
//   --scenario=shorts,length,removal   enable mechanisms (defaults apply)
//   --prm=P --noise-fails=P            ShortFailure parameters
//   --length-mean-um=200 --length-cv=0 --length-devices=16   FiniteLength
//   --selectivity=4.24 --prm-target=0.9999                   RemovalFrontier
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <iostream>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "campaign/runner.h"
#include "celllib/generator.h"
#include "celllib/liberty_lite.h"
#include "cnt/removal_tradeoff.h"
#include "exec/thread_pool.h"
#include "kernels/dispatch.h"
#include "experiments/fig2_1.h"
#include "experiments/fig2_2.h"
#include "experiments/table1.h"
#include "experiments/table2.h"
#include "layout/aligned_active.h"
#include "netlist/design_generator.h"
#include "netlist/design_io.h"
#include "obs/log.h"
#include "obs/trace.h"
#include "scenario/engine.h"
#include "service/client.h"
#include "service/server.h"
#include "util/cli.h"
#include "util/contracts.h"
#include "util/strings.h"
#include "util/table.h"
#include "yield/flow.h"

namespace {

using namespace cny;

/// Global trace sink (--trace=FILE), created in main before the subcommand
/// dispatch; null when tracing is off. Commands that host traceable work
/// hand it to their server/client/runner — observational only, so every
/// command's output is invariant under it.
std::shared_ptr<obs::TraceSink> g_trace_sink;

/// Global structured log (--log-file=PATH [--log-level=info]), same
/// lifecycle and contract as the trace sink: observational only, null when
/// logging is off.
std::shared_ptr<obs::Log> g_log;

celllib::Library resolve_library(const util::Cli& cli) {
  if (cli.has("lib")) {
    return celllib::load_liberty_lite(cli.get("lib", ""));
  }
  return celllib::make_nangate45_like();
}

netlist::Design resolve_design(const util::Cli& cli,
                               const celllib::Library& lib) {
  if (cli.has("design")) {
    return netlist::load_design(cli.get("design", ""), lib);
  }
  return netlist::make_openrisc_like(lib);
}

device::FailureModel resolve_model(const util::Cli& cli) {
  cnt::ProcessParams process;
  process.p_metallic = cli.get_double("pm", 0.33);
  process.p_remove_s = cli.get_double("prs", 0.30);
  return device::FailureModel(
      cnt::PitchModel(cli.get_double("pitch-mean", 4.0),
                      cli.get_double("cv", 0.9)),
      process);
}

int cmd_pf(const util::Cli& cli) {
  const auto model = resolve_model(cli);
  const double w = cli.get_double("w", 155.0);
  std::printf("p_f per CNT = %.4f\np_F(%.1f nm) = %.4e\n",
              model.p_fail_per_cnt(), w, model.p_f(w));
  return 0;
}

int cmd_wmin(const util::Cli& cli) {
  const auto lib = resolve_library(cli);
  const auto design = resolve_design(cli, lib);
  const auto model = resolve_model(cli);

  auto spectrum = design.width_spectrum();
  const double chip_m = cli.get_double("chip-m", 1e8);
  spectrum = yield::scale_spectrum(
      spectrum, 1.0, chip_m / double(design.n_transistors()));

  yield::WminRequest req;
  req.yield_desired = cli.get_double("yield", 0.90);
  req.relaxation = cli.get_double("relaxation", 1.0);
  const auto res = yield::solve_w_min(spectrum, model, req);
  std::printf("design %s on %s (scaled to M = %.3g)\n", design.name().c_str(),
              lib.name().c_str(), chip_m);
  std::printf("W_min = %.2f nm  (p_F* = %.3e, M_min = %llu, %d iterations)\n",
              res.w_min, res.p_f_target,
              static_cast<unsigned long long>(res.m_min), res.iterations);
  std::printf("verification: chip yield at W_min = %.4f\n",
              res.verification.yield_exact);
  return 0;
}

unsigned resolve_threads(const util::Cli& cli) {
  const long t = cli.get_long("threads", 0);
  return t <= 0 ? 0u : static_cast<unsigned>(t);
}

/// Range-checked numeric flag: out-of-range values must fail loudly (same
/// policy as unknown flags), not truncate — --port=74310 silently binding
/// port 8774 would be a debugging trap.
long require_long_in(const util::Cli& cli, const std::string& name,
                     long fallback, long lo, long hi) {
  const long v = cli.get_long(name, fallback);
  CNY_EXPECT_MSG(v >= lo && v <= hi,
                 "--" + name + " must be in [" + std::to_string(lo) + ", " +
                     std::to_string(hi) + "]");
  return v;
}

yield::FlowParams resolve_flow_params(const util::Cli& cli) {
  yield::FlowParams params;
  params.yield_desired = cli.get_double("yield", params.yield_desired);
  params.chip_transistors =
      cli.get_double("chip-m", params.chip_transistors);
  params.mc_samples = static_cast<std::size_t>(
      cli.get_long("mc-samples", static_cast<long>(params.mc_samples)));
  params.seed = static_cast<std::uint64_t>(cli.get_long("seed", 1));
  params.n_threads = resolve_threads(cli);
  const long streams =
      cli.get_long("streams", static_cast<long>(params.mc_streams));
  params.mc_streams = streams < 1 ? 1u : static_cast<unsigned>(streams);
  // Scenario selection + per-mechanism overrides. Validation (shared with
  // run_flow and the service decoder) happens when the flow runs.
  if (cli.has("scenario")) {
    params.scenario = scenario::spec_from_names(cli.get("scenario", ""));
  }
  if (params.scenario.shorts) {
    auto& shorts = *params.scenario.shorts;
    shorts.p_rm = cli.get_double("prm", shorts.p_rm);
    shorts.p_noise_fails = cli.get_double("noise-fails", shorts.p_noise_fails);
  }
  if (params.scenario.length) {
    auto& length = *params.scenario.length;
    length.mean = cli.get_double("length-mean-um", length.mean / 1000.0) * 1000.0;
    length.cv = cli.get_double("length-cv", length.cv);
    // Range-checked here (not just in scenario::validate) so a value that
    // would wrap through the int cast fails instead of truncating.
    length.sample_devices = static_cast<int>(
        require_long_in(cli, "length-devices", length.sample_devices, 2, 22));
  }
  if (params.scenario.removal) {
    auto& removal = *params.scenario.removal;
    removal.selectivity = cli.get_double("selectivity", removal.selectivity);
    removal.p_rm_target = cli.get_double("prm-target", removal.p_rm_target);
  }
  return params;
}

int cmd_flow(const util::Cli& cli) {
  const auto lib = resolve_library(cli);
  const auto design = resolve_design(cli, lib);
  const auto model = resolve_model(cli);
  const auto params = resolve_flow_params(cli);
  const auto t0 = std::chrono::steady_clock::now();
  obs::Span span(g_trace_sink.get(), "flow", "cli");
  const auto res = yield::run_flow(lib, design, model, params);
  span.finish();
  const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
  std::cout << res.summary_table().to_text();
  std::printf(
      "%lld ms on %u thread(s), %u MC stream(s), seed %llu "
      "(numbers depend on seed+streams only)\n",
      static_cast<long long>(ms),
      params.n_threads == 0 ? exec::hardware_threads() : params.n_threads,
      params.mc_streams, static_cast<unsigned long long>(params.seed));
  return 0;
}

int cmd_batch(const util::Cli& cli) {
  const auto lib = resolve_library(cli);
  const auto design = resolve_design(cli, lib);
  const auto model = resolve_model(cli);
  const auto base = resolve_flow_params(cli);

  std::vector<double> yields;
  for (const auto& tok : util::split(cli.get("yields", "0.80,0.90,0.95"), ',')) {
    if (!tok.empty()) yields.push_back(util::parse_double(tok));
  }
  if (yields.empty()) {
    std::fprintf(stderr, "error: --yields parsed to an empty sweep\n");
    return 2;
  }

  std::vector<yield::FlowJob> jobs;
  for (double y : yields) {
    yield::FlowJob job;
    job.design = &design;
    job.params = base;
    job.params.yield_desired = y;
    jobs.push_back(job);
  }
  yield::BatchParams batch;
  batch.n_threads = resolve_threads(cli);
  batch.share_interpolant = !cli.has("no-interp");

  const auto t0 = std::chrono::steady_clock::now();
  const auto results = yield::run_flow_batch(lib, jobs, model, batch);
  const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                      std::chrono::steady_clock::now() - t0)
                      .count();

  util::Table t("Yield-target sweep (aligned-active, 1 row)");
  t.header({"yield target", "W_min (nm)", "power penalty", "library area"});
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i].get(yield::Strategy::AlignedOneRow);
    // Named lvalue sidesteps GCC 12's -Wrestrict false positive on
    // operator+(const char*, std::string&&) (GCC bug 105329).
    const std::string area = util::format_pct(r.area_penalty);
    t.begin_row()
        .num(yields[i], 3)
        .num(r.w_min, 4)
        .cell(util::format_pct(r.power_penalty))
        .cell("+" + area);
  }
  std::cout << t.to_text();
  std::printf("%zu designs x 4 strategies in %lld ms (%s p_F interpolant)\n",
              results.size(), static_cast<long long>(ms),
              batch.share_interpolant ? "shared" : "no shared");
  return 0;
}

/// The base FlowRequest the sweep subcommands start from: library, design
/// size, process corner and FlowParams resolved from the familiar flags.
service::FlowRequest resolve_flow_request(const util::Cli& cli) {
  service::FlowRequest request;
  request.library = cli.get("library", request.library);
  // Same policy as unknown flags: a typo'd library must fail loudly on
  // both evaluation paths, not silently sweep the default; the instance
  // count gets the same bound the server enforces, so a negative value
  // cannot wrap into an absurd design generation on the direct path.
  CNY_EXPECT_MSG(
      request.library == "nangate45" || request.library == "commercial65",
      "--library must be \"nangate45\" or \"commercial65\"");
  request.design_instances = static_cast<std::uint64_t>(
      require_long_in(cli, "instances", 0, 0, 2'000'000));
  request.process.pitch_mean_nm =
      cli.get_double("pitch-mean", request.process.pitch_mean_nm);
  request.process.pitch_cv = cli.get_double("cv", request.process.pitch_cv);
  request.process.p_metallic =
      cli.get_double("pm", request.process.p_metallic);
  request.process.p_remove_s =
      cli.get_double("prs", request.process.p_remove_s);
  request.params = resolve_flow_params(cli);
  return request;
}

/// Removal-frontier sweep end-to-end: every point targets one p_Rm on the
/// probit frontier, earns its p_Rs (and, with --with-shorts, pays the
/// short-mode tax at that same p_Rm), and runs the whole strategy flow.
/// Since PR 6 this is a thin wrapper over the campaign runner — the
/// hardcoded sweep is the campaign spec
///
///   {"name":"removal-frontier",
///    "base":{...flags..., "scenario.removal.selectivity":S},
///    "axes":[{"name":"prm","param":"scenario.removal.p_rm_target",
///             "values":"probit:LO:HI:N"}]}
///
/// compiled and executed in memory (the probit sweep form is bit-identical
/// to cnt::RemovalTradeoff::frontier, asserted below). --via-service
/// routes the campaign through an in-process YieldServer's loopback path —
/// the full protocol (decode, validate, session cache on the derived
/// corner, coalesce, encode) with no socket; infeasible points come back
/// as error records and render as "infeasible" rows instead of aborting
/// the sweep.
int cmd_scenarios(const util::Cli& cli) {
  const double selectivity = cli.get_double("selectivity", 4.24);
  const int points = static_cast<int>(require_long_in(cli, "points", 6, 2, 200));
  const double prm_lo = cli.get_double("prm-lo", 0.99);
  const double prm_hi = cli.get_double("prm-hi", 0.9999999);
  CNY_EXPECT_MSG(prm_lo > 0.0 && prm_lo < prm_hi && prm_hi < 1.0,
                 "--prm-lo/--prm-hi must satisfy 0 < lo < hi < 1");
  const cnt::RemovalTradeoff tradeoff(selectivity);
  const auto frontier = tradeoff.frontier(prm_lo, prm_hi, points);

  campaign::CampaignSpec spec;
  spec.name = "removal-frontier";
  spec.base = resolve_flow_request(cli);
  if (cli.has("with-shorts") && !spec.base.params.scenario.shorts) {
    spec.base.params.scenario.shorts.emplace();
    spec.base.params.scenario.shorts->p_noise_fails = cli.get_double(
        "noise-fails", spec.base.params.scenario.shorts->p_noise_fails);
  }
  const bool with_shorts = spec.base.params.scenario.shorts.has_value();
  spec.base.params.scenario.removal =
      scenario::RemovalFrontier{selectivity, prm_lo};
  spec.axes.push_back(
      {"prm", "scenario.removal.p_rm_target",
       "probit:" + service::Json::number(prm_lo).dump() + ":" +
           service::Json::number(prm_hi).dump() + ":" +
           std::to_string(points)});

  const double p_metallic = spec.base.process.p_metallic;
  const auto compiled = campaign::compile(spec);
  for (std::size_t i = 0; i < compiled.size(); ++i) {
    // The campaign probit axis must reproduce the frontier ladder bit for
    // bit — the "one sweep path, not two" guarantee.
    CNY_EXPECT_MSG(compiled[i].axis_values[0] == frontier[i].p_rm,
                   "campaign probit axis diverged from the removal frontier");
  }

  campaign::ResultStore store;  // in-memory: scenarios renders, never resumes
  campaign::RunnerOptions options;
  options.n_threads = resolve_threads(cli);
  options.checkpoint_every = 0;
  options.via_service = cli.has("via-service");
  options.cache_capacity = compiled.size();
  options.trace_sink = g_trace_sink;
  options.log = g_log;
  const auto t0 = std::chrono::steady_clock::now();
  const auto stats = campaign::run_campaign(compiled, store, options);
  const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                      std::chrono::steady_clock::now() - t0)
                      .count();

  std::vector<std::optional<yield::FlowResult>> results(compiled.size());
  std::vector<std::string> errors(compiled.size());
  for (std::size_t i = 0; i < compiled.size(); ++i) {
    const campaign::StoreRecord* record = store.find(compiled[i].key);
    CNY_EXPECT_MSG(record != nullptr, "campaign left a point unevaluated");
    if (record->error_code.empty()) {
      results[i] = service::flow_result_from_json(
          service::Json::parse(record->result_json));
    } else {
      errors[i] = record->error_message;
    }
  }

  util::Table t(std::string("Removal-frontier sweep, aligned-active 1 row "
                            "(selectivity ") +
                util::format_sig(selectivity, 3) + " sigma" +
                (with_shorts ? ", short mode at the swept p_Rm)" : ")"));
  std::vector<std::string> header = {"p_Rm", "p_Rs (earned)", "p_f per CNT",
                                     "W_min (nm)", "power penalty"};
  if (with_shorts) {
    header.push_back("Y_short");
    header.push_back("req p_Rm");
  }
  header.push_back("status");
  t.header(std::move(header));
  for (std::size_t i = 0; i < compiled.size(); ++i) {
    const double p_fail =
        p_metallic + (1.0 - p_metallic) * frontier[i].p_rs;
    t.begin_row()
        .cell(util::format_sig(frontier[i].p_rm, 8))
        .cell(util::format_pct(frontier[i].p_rs))
        .num(p_fail, 3);
    if (results[i]) {
      const auto& r = results[i]->get(yield::Strategy::AlignedOneRow);
      t.num(r.w_min, 4).cell(util::format_pct(r.power_penalty));
      if (with_shorts) {
        t.cell(util::format_sig(r.short_mode_yield, 6))
            .cell(util::format_sig(r.required_p_rm, 8));
      }
      t.cell("ok");
    } else {
      t.cell("-").cell("-");
      if (with_shorts) t.cell("-").cell("-");
      t.cell("infeasible");
    }
  }
  std::cout << t.to_text();
  std::printf("%zu frontier points in %lld ms (%s, %llu derived-corner "
              "sessions warmed)\n",
              compiled.size(), static_cast<long long>(ms),
              options.via_service ? "campaign runner, service loopback"
                                  : "campaign runner, direct",
              static_cast<unsigned long long>(stats.sessions_built));
  for (std::size_t i = 0; i < errors.size(); ++i) {
    if (!errors[i].empty()) {
      std::printf("  point %zu (p_Rm = %s): %s\n", i + 1,
                  util::format_sig(frontier[i].p_rm, 8).c_str(),
                  errors[i].c_str());
    }
  }
  return 0;
}

/// Campaign interrupt flag — SIGTERM/SIGINT checkpoint the store and exit 3
/// (async-signal-safe: the handler only sets the flag; the runner polls it
/// between chunks).
volatile std::sig_atomic_t g_campaign_interrupted = 0;

/// Serve interrupt flag — SIGTERM/SIGINT trigger a graceful drain (finish
/// queued work, refuse new frames) instead of killing in-flight batches.
volatile std::sig_atomic_t g_serve_interrupted = 0;

/// Shared retry flags (request / campaign --via-service): --retries=N adds
/// N transient-failure retries on top of the first attempt.
service::RetryPolicy resolve_retry_policy(const util::Cli& cli) {
  service::RetryPolicy retry;
  retry.max_attempts = 1 + static_cast<unsigned>(
                               require_long_in(cli, "retries", 0, 0, 1000));
  retry.backoff_base_ms = static_cast<unsigned>(
      require_long_in(cli, "retry-base-ms", 10, 1, 60'000));
  // A base above the default cap would otherwise be silently clamped.
  retry.backoff_max_ms = std::max(retry.backoff_max_ms, retry.backoff_base_ms);
  retry.jitter_seed = static_cast<std::uint64_t>(
      cli.get_long("seed", 1));
  return retry;
}

/// "key=value;key=value" pairs (';'-separated so sweep expressions keep
/// their commas), split at the FIRST '=' so values may contain '='.
std::vector<std::pair<std::string, std::string>> parse_pairs(
    const std::string& text, const std::string& flag) {
  std::vector<std::pair<std::string, std::string>> out;
  for (const auto& entry : util::split(text, ';')) {
    if (entry.empty()) continue;
    const auto eq = entry.find('=');
    CNY_EXPECT_MSG(eq != std::string::npos && eq > 0,
                   "--" + flag + ": entry '" + entry +
                       "' is not of the form key=value");
    out.emplace_back(entry.substr(0, eq), entry.substr(eq + 1));
  }
  return out;
}

/// General parameter-sweep campaigns over the flow (docs/architecture.md
/// "Campaign runner"): a spec (JSON file via --spec, or built inline from
/// --axes/--derived/--set plus the familiar base flags) compiles into a
/// deterministic stream of FlowRequests; finished points land in a
/// resumable JSONL store (--store) keyed by the canonical-request hash, so
/// a killed campaign resumes where it stopped and re-running a finished
/// one evaluates nothing.
int cmd_campaign(const util::Cli& cli) {
  campaign::CampaignSpec spec;
  if (cli.has("spec")) {
    CNY_EXPECT_MSG(
        !cli.has("axes") && !cli.has("derived") && !cli.has("name"),
        "--spec is authoritative: use --set for base overrides, not "
        "--axes/--derived/--name");
    spec = campaign::load_campaign(cli.get("spec", ""));
  } else {
    spec.name = cli.get("name", "campaign");
    spec.base = resolve_flow_request(cli);
    for (const auto& [param, expr] : parse_pairs(cli.get("axes", ""), "axes")) {
      spec.axes.push_back({"", param, expr});
    }
    for (const auto& [param, expr] :
         parse_pairs(cli.get("derived", ""), "derived")) {
      spec.derived.push_back({"", param, expr});
    }
  }
  for (const auto& [path, value] : parse_pairs(cli.get("set", ""), "set")) {
    campaign::set_param(spec.base, path, util::parse_double(value));
  }

  const auto compiled = campaign::compile(spec);
  if (cli.has("print-spec")) {
    std::printf("%s\n", campaign::to_json(spec).dump().c_str());
    return 0;
  }

  // Distinct derived corners = sessions an uninterrupted run warms.
  std::vector<std::string> corners;
  for (const auto& point : compiled) {
    const std::string corner = service::session_key(point.request).canonical();
    if (std::find(corners.begin(), corners.end(), corner) == corners.end()) {
      corners.push_back(corner);
    }
  }

  const std::string store_path = cli.get("store", "");
  campaign::ResultStore store =
      store_path.empty() ? campaign::ResultStore()
                         : campaign::ResultStore(store_path);
  std::size_t stored = 0;
  for (const auto& point : compiled) {
    if (store.contains(point.key)) stored += 1;
  }
  std::printf("campaign '%s': %zu points over %zu axes, %zu derived "
              "corner(s), %zu already stored\n",
              spec.name.c_str(), compiled.size(), spec.axes.size(),
              corners.size(), stored);
  if (cli.has("dry-run")) return 0;

  campaign::RunnerOptions options;
  options.n_threads = resolve_threads(cli);
  options.checkpoint_every = static_cast<std::size_t>(
      require_long_in(cli, "chunk", 16, 0, 1'000'000));
  options.via_service = cli.has("via-service");
  options.cache_capacity = static_cast<std::size_t>(
      require_long_in(cli, "cache-size", 8, 1, 1024));
  options.interpolant_knots = static_cast<std::size_t>(require_long_in(
      cli, "knots", 65, 4, 100000));
  options.retry = resolve_retry_policy(cli);
  if (cli.has("chaos")) {
    // Deterministic fault drill: the loopback server breaks the wire on a
    // seeded schedule while the runner retries through it. Only meaningful
    // where there is a wire to break.
    CNY_EXPECT_MSG(options.via_service,
                   "--chaos requires --via-service (faults are injected "
                   "into the loopback server)");
    service::FaultPlanOptions fault_options;
    fault_options.faults =
        service::fault_specs_from_names(cli.get("chaos", ""));
    fault_options.period = static_cast<unsigned>(
        require_long_in(cli, "chaos-period", 3, 2, 1'000'000));
    fault_options.seed =
        static_cast<std::uint64_t>(cli.get_long("chaos-seed", 1));
    fault_options.max_faults = static_cast<std::uint64_t>(
        require_long_in(cli, "chaos-max", 0, 0, 1'000'000'000));
    options.fault_plan =
        std::make_shared<service::FaultPlan>(fault_options);
  }
  options.trace_sink = g_trace_sink;
  options.log = g_log;
  options.progress_path = cli.get("progress-file", "");
  g_campaign_interrupted = 0;
  std::signal(SIGTERM, [](int) { g_campaign_interrupted = 1; });
  std::signal(SIGINT, [](int) { g_campaign_interrupted = 1; });
  options.interrupted = [] { return g_campaign_interrupted != 0; };
  const auto t0 = std::chrono::steady_clock::now();
  if (cli.has("progress")) {
    // Live single-line progress: percentage + rate-extrapolated ETA,
    // redrawn in place on stderr at every checkpoint.
    options.progress = [t0](std::size_t done, std::size_t pending) {
      const auto elapsed =
          std::chrono::duration_cast<std::chrono::milliseconds>(
              std::chrono::steady_clock::now() - t0)
              .count();
      const long long eta =
          done == 0 ? 0
                    : static_cast<long long>(
                          static_cast<double>(elapsed) *
                          static_cast<double>(pending - done) /
                          static_cast<double>(done));
      std::fprintf(stderr, "\r  %zu/%zu points (%.0f%%), eta %lld.%01llds ",
                   done, pending,
                   100.0 * static_cast<double>(done) /
                       static_cast<double>(pending == 0 ? 1 : pending),
                   eta / 1000, static_cast<unsigned long long>(eta % 1000 / 100));
      if (done == pending) std::fputc('\n', stderr);
      std::fflush(stderr);
    };
  } else {
    options.progress = [](std::size_t done, std::size_t pending) {
      std::fprintf(stderr, "  checkpoint %zu/%zu\n", done, pending);
    };
  }

  const auto stats = campaign::run_campaign(compiled, store, options);
  const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
  std::signal(SIGTERM, SIG_DFL);
  std::signal(SIGINT, SIG_DFL);

  if (cli.has("table")) {
    util::Table t("Campaign '" + spec.name + "' (aligned-active, 1 row)");
    std::vector<std::string> header = {"#"};
    for (const auto& axis : spec.axes) {
      header.push_back(axis.name.empty() ? axis.param : axis.name);
    }
    header.insert(header.end(), {"W_min (nm)", "power penalty", "status"});
    t.header(std::move(header));
    for (const auto& point : compiled) {
      const campaign::StoreRecord* record = store.find(point.key);
      auto& row = t.begin_row().cell(std::to_string(point.index));
      for (const double v : point.axis_values) {
        row.cell(service::Json::number(v).dump());
      }
      if (record == nullptr) {
        row.cell("-").cell("-").cell("pending");
      } else if (record->error_code.empty()) {
        const auto result = service::flow_result_from_json(
            service::Json::parse(record->result_json));
        const auto& r = result.get(yield::Strategy::AlignedOneRow);
        row.num(r.w_min, 4)
            .cell(util::format_pct(r.power_penalty))
            .cell("ok");
      } else {
        row.cell("-").cell("-").cell(record->error_code);
      }
    }
    std::cout << t.to_text();
  }

  std::printf("%zu evaluated + %zu failed + %zu skipped of %zu points in "
              "%lld ms (%s, %llu sessions warmed%s)\n",
              stats.evaluated, stats.failed, stats.skipped, stats.total,
              static_cast<long long>(ms),
              options.via_service ? "service loopback" : "direct",
              static_cast<unsigned long long>(stats.sessions_built),
              store_path.empty() ? ", in-memory store" : "");
  if (stats.interrupted) {
    std::printf("interrupted: %zu points still pending in '%s' — re-run "
                "the same command to resume\n",
                stats.total - store.size(),
                store_path.empty() ? "<memory>" : store_path.c_str());
    return 3;
  }
  return 0;
}

int cmd_align(const util::Cli& cli) {
  const auto lib = resolve_library(cli);
  layout::AlignOptions options;
  options.w_min = cli.get_double("wmin", 103.0);
  options.rows_per_polarity = static_cast<int>(cli.get_long("rows", 1));
  const double spacing =
      cli.get_double("spacing", lib.node_nm() >= 60.0 ? 200.0 : 140.0);
  const auto res = layout::align_active(lib, options, spacing);
  std::printf("%zu of %zu cells widened (%.1f%% - %.1f%%), area +%.2f%%\n",
              res.cells_with_penalty(), lib.size(),
              100.0 * res.min_penalty(), 100.0 * res.max_penalty(),
              100.0 * res.area_increase());
  if (cli.has("out")) {
    celllib::save_liberty_lite(res.library, cli.get("out", ""));
    std::printf("wrote %s\n", cli.get("out", "").c_str());
  }
  return 0;
}

int cmd_gen_lib(const util::Cli& cli) {
  const std::string which = cli.get("which", "nangate45");
  const auto lib = which == "commercial65" ? celllib::make_commercial65_like()
                                           : celllib::make_nangate45_like();
  const std::string out = cli.get("out", lib.name() + ".lib");
  celllib::save_liberty_lite(lib, out);
  std::printf("wrote %s (%zu cells)\n", out.c_str(), lib.size());
  return 0;
}

int cmd_gen_design(const util::Cli& cli) {
  const auto lib = resolve_library(cli);
  const auto design = netlist::generate_design(
      "generated", lib,
      static_cast<std::uint64_t>(cli.get_long("instances", 50000)), {});
  const std::string out = cli.get("out", "design.txt");
  netlist::save_design(design, out);
  std::printf("wrote %s (%llu instances, %llu transistors)\n", out.c_str(),
              static_cast<unsigned long long>(design.n_instances()),
              static_cast<unsigned long long>(design.n_transistors()));
  return 0;
}

int cmd_serve(const util::Cli& cli) {
  service::ServerOptions options;
  options.listen = true;
  options.port = static_cast<std::uint16_t>(
      require_long_in(cli, "port", 7421, 1, 65535));
  // Continuous telemetry (all off by default; docs/architecture.md,
  // "Continuous telemetry"): --metrics-port=N serves `GET /metrics`
  // (OpenMetrics text) on 127.0.0.1:N, --sample-ms=N samples
  // /proc/self/{status,stat} into process.* gauges every N ms,
  // --snapshot-file=PATH appends one metrics-snapshot JSONL line per tick.
  if (cli.has("metrics-port")) {
    options.metrics_listen = true;
    options.metrics_port = static_cast<std::uint16_t>(
        require_long_in(cli, "metrics-port", 0, 0, 65535));
  }
  options.sample_interval_ms = static_cast<unsigned>(
      require_long_in(cli, "sample-ms", 0, 0, 3'600'000));
  options.snapshot_export_path = cli.get("snapshot-file", "");
  if (!options.snapshot_export_path.empty() &&
      options.sample_interval_ms == 0) {
    options.sample_interval_ms = 1000;  // a snapshot file implies sampling
  }
  options.log = g_log;
  options.n_threads = resolve_threads(cli);
  options.coalesce_window_us = static_cast<unsigned>(require_long_in(
      cli, "coalesce-us", static_cast<long>(options.coalesce_window_us), 0,
      10'000'000));
  options.cache_capacity = static_cast<std::size_t>(require_long_in(
      cli, "cache-size", static_cast<long>(options.cache_capacity), 1, 1024));
  options.interpolant_knots = static_cast<std::size_t>(require_long_in(
      cli, "knots", static_cast<long>(options.interpolant_knots), 4, 100000));
  options.max_queue = static_cast<std::size_t>(require_long_in(
      cli, "max-queue", static_cast<long>(options.max_queue), 1, 1'000'000));
  options.trace_sink = g_trace_sink;
  service::YieldServer server(options);
  server.start();
  std::printf(
      "cntyield_cli %s serving on 127.0.0.1:%u (protocol v%u, %zu warm "
      "sessions cached, %u us coalescing window, %zu-deep admission queue)\n",
      service::kVersionString, server.port(), service::kProtocolVersion,
      options.cache_capacity, options.coalesce_window_us, options.max_queue);
  if (options.metrics_listen) {
    std::printf("metrics: GET http://127.0.0.1:%u/metrics (OpenMetrics)\n",
                server.metrics_port());
  }
  std::fflush(stdout);
  // SIGTERM/SIGINT and a Shutdown frame share the same exit: a graceful
  // drain. The handler only sets a flag; the bounded wait below polls it,
  // because a signal handler cannot safely poke a condition variable.
  g_serve_interrupted = 0;
  std::signal(SIGTERM, [](int) { g_serve_interrupted = 1; });
  std::signal(SIGINT, [](int) { g_serve_interrupted = 1; });
  while (!server.wait_shutdown_for(200)) {
    if (g_serve_interrupted != 0) {
      std::printf("signal received: draining (queued work finishes, new "
                  "requests get shutting_down)\n");
      std::fflush(stdout);
      break;
    }
  }
  server.drain();
  std::signal(SIGTERM, SIG_DFL);
  std::signal(SIGINT, SIG_DFL);
  // The same canonical JSON a Stats frame / `cntyield_cli stats` returns,
  // so the last log line of every server is machine-readable.
  std::printf("shutting down: %s\n", server.stats_json().c_str());
  return 0;
}

/// Renders the canonical stats payload (YieldServer::stats_json(), also
/// the Pong body) as aligned tables: server counters/gauges, per-stage
/// latency histograms, process-wide thread-pool and kernel metrics.
void print_stats_table(const std::string& payload) {
  const service::Json v = service::Json::parse(payload);
  {
    util::Table t("Server counters (cntyield " + v.at("version").as_string() +
                  ", protocol v" + v.at("protocol").dump() + ")");
    t.header({"counter", "value"});
    for (const auto& [name, value] : v.at("stats").members()) {
      t.begin_row().cell(name).cell(value.dump());
    }
    for (const auto& [name, value] : v.at("gauges").members()) {
      t.begin_row().cell(name + " (gauge)").cell(value.dump());
    }
    std::cout << t.to_text();
  }
  if (!v.at("histograms").members().empty()) {
    util::Table t("Per-stage latency");
    t.header({"stage", "count", "mean (us)", "p50 (us)", "p95 (us)",
              "max (us)"});
    for (const auto& [name, h] : v.at("histograms").members()) {
      t.begin_row()
          .cell(name)
          .cell(h.at("count").dump())
          .num(h.at("mean_us").as_double(), 4)
          .num(h.at("p50_us").as_double(), 4)
          .num(h.at("p95_us").as_double(), 4)
          .cell(h.at("max_us").dump());
    }
    std::cout << t.to_text();
  }
  {
    util::Table t("Process-wide metrics (thread pool, kernel backends)");
    t.header({"metric", "value"});
    const service::Json& process = v.at("process");
    for (const auto& [name, value] : process.at("counters").members()) {
      t.begin_row().cell(name).cell(value.dump());
    }
    for (const auto& [name, value] : process.at("gauges").members()) {
      t.begin_row().cell(name + " (gauge)").cell(value.dump());
    }
    std::cout << t.to_text();
  }
}

/// `stats` — one Stats frame to a running server, rendered as canonical
/// JSON (scripts) or tables (--table). The payload is identical to what
/// --ping returns and what the server logs at shutdown: one stats shape
/// everywhere.
int cmd_stats(const util::Cli& cli) {
  service::YieldClient client(
      cli.get("host", "127.0.0.1"),
      static_cast<std::uint16_t>(require_long_in(cli, "port", 7421, 1, 65535)));
  client.set_retry_policy(resolve_retry_policy(cli));
  client.set_trace_sink(g_trace_sink.get());
  const std::string payload = client.stats();
  if (cli.has("table")) {
    print_stats_table(payload);
  } else {
    std::printf("%s\n", payload.c_str());
  }
  return 0;
}

/// `top` — a live terminal dashboard over a running server: polls Stats
/// frames every --interval-ms and renders counters with per-second rates
/// (computed client-side between refreshes), queue/session gauges,
/// per-stage latency quantiles, and the process resource gauges (RSS,
/// high-water, CPU, threads). On a TTY each frame redraws in place
/// (ANSI home+clear); piped output emits sequential frames, so a bounded
/// run (--count=N) is scriptable in CI.
int cmd_top(const util::Cli& cli) {
  service::YieldClient client(
      cli.get("host", "127.0.0.1"),
      static_cast<std::uint16_t>(require_long_in(cli, "port", 7421, 1, 65535)));
  client.set_retry_policy(resolve_retry_policy(cli));
  client.set_trace_sink(g_trace_sink.get());
  const unsigned interval_ms = static_cast<unsigned>(
      require_long_in(cli, "interval-ms", 1000, 50, 600'000));
  const long count = require_long_in(cli, "count", 0, 0, 1'000'000);
  const bool redraw = ::isatty(STDOUT_FILENO) != 0;
  std::map<std::string, double> prev_counters;
  auto prev_time = std::chrono::steady_clock::now();
  bool have_prev = false;
  for (long frame = 0; count == 0 || frame < count; ++frame) {
    if (frame > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
    }
    const std::string payload = client.stats();
    const auto now = std::chrono::steady_clock::now();
    const double dt_s =
        static_cast<double>(std::chrono::duration_cast<std::chrono::microseconds>(
            now - prev_time)
                                .count()) /
        1e6;
    const service::Json v = service::Json::parse(payload);
    if (redraw) std::printf("\033[H\033[2J");
    std::printf("cntyield top — %s:%ld  (refresh %u ms, frame %ld%s)\n",
                cli.get("host", "127.0.0.1").c_str(),
                cli.get_long("port", 7421), interval_ms, frame + 1,
                have_prev ? "" : ", rates warm up next frame");
    std::map<std::string, double> counters;
    {
      util::Table t("Counters");
      t.header({"counter", "value", "rate/s"});
      for (const auto& [name, value] : v.at("stats").members()) {
        const double val = value.as_double();
        counters[name] = val;
        double rate = 0.0;
        if (have_prev && dt_s > 0) {
          const auto it = prev_counters.find(name);
          // Same guards as obs::counter_rates: a counter that appeared or
          // went backwards (server restart) rates as 0, never negative.
          if (it != prev_counters.end() && val >= it->second) {
            rate = (val - it->second) / dt_s;
          }
        }
        t.begin_row().cell(name).cell(value.dump()).num(rate, 2);
      }
      for (const auto& [name, value] : v.at("gauges").members()) {
        t.begin_row().cell(name + " (gauge)").cell(value.dump()).cell("-");
      }
      std::cout << t.to_text();
    }
    if (!v.at("histograms").members().empty()) {
      util::Table t("Latency");
      t.header({"stage", "count", "p50 (us)", "p95 (us)", "max (us)"});
      for (const auto& [name, h] : v.at("histograms").members()) {
        t.begin_row()
            .cell(name)
            .cell(h.at("count").dump())
            .num(h.at("p50_us").as_double(), 4)
            .num(h.at("p95_us").as_double(), 4)
            .cell(h.at("max_us").dump());
      }
      std::cout << t.to_text();
    }
    {
      util::Table t("Process");
      t.header({"metric", "value"});
      for (const auto& [name, value] : v.at("process").at("gauges").members()) {
        t.begin_row().cell(name).cell(value.dump());
      }
      std::cout << t.to_text();
    }
    std::fflush(stdout);
    prev_counters = std::move(counters);
    prev_time = now;
    have_prev = true;
  }
  return 0;
}

int cmd_request(const util::Cli& cli) {
  service::YieldClient client(
      cli.get("host", "127.0.0.1"),
      static_cast<std::uint16_t>(require_long_in(cli, "port", 7421, 1, 65535)));
  client.set_retry_policy(resolve_retry_policy(cli));
  client.set_trace_sink(g_trace_sink.get());
  if (cli.has("ping")) {
    // The Pong body is the canonical stats payload — same bytes as the
    // `stats` subcommand, with the same optional pretty-printer.
    const std::string payload = client.ping();
    if (cli.has("table")) {
      print_stats_table(payload);
    } else {
      std::printf("pong: %s\n", payload.c_str());
    }
    return 0;
  }
  if (cli.has("shutdown")) {
    client.shutdown_server();
    std::puts("server acknowledged shutdown");
    return 0;
  }
  service::FlowRequest request;
  request.library = cli.get("library", request.library);
  request.design_instances =
      static_cast<std::uint64_t>(cli.get_long("instances", 0));
  request.process.pitch_mean_nm =
      cli.get_double("pitch-mean", request.process.pitch_mean_nm);
  request.process.pitch_cv = cli.get_double("cv", request.process.pitch_cv);
  request.process.p_metallic =
      cli.get_double("pm", request.process.p_metallic);
  request.process.p_remove_s =
      cli.get_double("prs", request.process.p_remove_s);
  request.params = resolve_flow_params(cli);
  request.deadline_ms = static_cast<std::uint64_t>(
      require_long_in(cli, "deadline-ms", 0, 0, 86'400'000));
  // Client-side preflight with the same validator the server runs: a bad
  // value fails here with the identical message, without a round trip.
  service::validate(request);
  const auto t0 = std::chrono::steady_clock::now();
  const auto result = client.call(request);
  const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
  std::cout << result.summary_table().to_text();
  std::printf(
      "served in %lld ms (seed %llu, %u MC stream(s); response depends on "
      "the request only, never on batching)\n",
      static_cast<long long>(ms),
      static_cast<unsigned long long>(request.params.seed),
      request.params.mc_streams);
  return 0;
}

int print_version() {
  std::printf("cntyield_cli %s (protocol v%u)\n", service::kVersionString,
              service::kProtocolVersion);
  return 0;
}

int usage() {
  std::puts(
      "usage: cntyield_cli <pf|wmin|flow|batch|scenarios|campaign|scaling|"
      "table1|table2|align|gen-lib|gen-design|serve|request|stats|top> "
      "[flags]\n"
      "       cntyield_cli --version\n"
      "  any command: --trace=FILE writes a Perfetto-loadable span JSONL\n"
      "  any command: --log-file=FILE [--log-level=debug|info|warn|error] "
      "writes a structured JSONL event log\n"
      "  stats: metrics snapshot of a running server (--table for tables)\n"
      "  top: live dashboard over a running server (--interval-ms=1000, "
      "--count=N for a bounded run)\n"
      "  serve: --metrics-port=N serves GET /metrics (OpenMetrics), "
      "--sample-ms=N samples RSS/CPU, --snapshot-file=FILE exports the "
      "time series\n"
      "  flow/batch/serve: --threads=N (0 = hardware concurrency)\n"
      "  flow/batch/request: --scenario=shorts,length,removal (+ mechanism "
      "flags)\n"
      "  scenarios: removal-frontier sweep end-to-end (--with-shorts, "
      "--via-service)\n"
      "  campaign: general sweeps with a resumable store (--spec/--axes, "
      "--store, --via-service)\n"
      "  serve/request: the batching yield service on 127.0.0.1 (see "
      "docs/architecture.md)\n"
      "  see the header of tools/cntyield_cli.cpp for per-command flags");
  return 2;
}

/// Per-command flag allow-list: an unknown flag is an error, not a silently
/// applied default.
const std::map<std::string, std::vector<std::string>> kCommandFlags = {
    {"pf", {"w", "pm", "prs", "cv", "pitch-mean"}},
    {"wmin",
     {"lib", "design", "yield", "relaxation", "chip-m", "pm", "prs", "cv",
      "pitch-mean"}},
    {"flow",
     {"lib", "design", "yield", "chip-m", "mc-samples", "streams", "seed",
      "threads", "pm", "prs", "cv", "pitch-mean", "scenario", "prm",
      "noise-fails", "length-mean-um", "length-cv", "length-devices",
      "selectivity", "prm-target"}},
    {"batch",
     {"lib", "design", "yields", "yield", "no-interp", "chip-m", "mc-samples",
      "streams", "seed", "threads", "pm", "prs", "cv", "pitch-mean",
      "scenario", "prm", "noise-fails", "length-mean-um", "length-cv",
      "length-devices", "selectivity", "prm-target"}},
    {"scenarios",
     {"points", "selectivity", "prm-lo", "prm-hi", "with-shorts",
      "via-service", "library", "instances", "yield", "chip-m", "mc-samples",
      "streams", "seed", "threads", "pm", "prs", "cv", "pitch-mean",
      "scenario", "prm", "noise-fails", "length-mean-um", "length-cv",
      "length-devices"}},
    {"campaign",
     {"spec", "axes", "derived", "set", "name", "store", "chunk",
      "via-service", "dry-run", "print-spec", "table", "cache-size", "knots",
      "threads", "library", "instances", "yield", "chip-m", "mc-samples",
      "streams", "seed", "pm", "prs", "cv", "pitch-mean", "scenario", "prm",
      "noise-fails", "length-mean-um", "length-cv", "length-devices",
      "selectivity", "prm-target", "retries", "retry-base-ms", "chaos",
      "chaos-period", "chaos-seed", "chaos-max", "progress",
      "progress-file"}},
    {"scaling", {"relaxation"}},
    {"table1", {}},
    {"table2", {}},
    {"align", {"lib", "wmin", "rows", "spacing", "out"}},
    {"gen-lib", {"which", "out"}},
    {"gen-design", {"lib", "out", "instances"}},
    {"serve",
     {"port", "threads", "coalesce-us", "cache-size", "knots", "max-queue",
      "metrics-port", "sample-ms", "snapshot-file"}},
    {"top",
     {"host", "port", "interval-ms", "count", "retries", "retry-base-ms",
      "seed"}},
    {"request",
     {"host", "port", "ping", "shutdown", "library", "instances", "yield",
      "chip-m", "mc-samples", "seed", "streams", "pm", "prs", "cv",
      "pitch-mean", "scenario", "prm", "noise-fails", "length-mean-um",
      "length-cv", "length-devices", "selectivity", "prm-target", "retries",
      "retry-base-ms", "deadline-ms", "table"}},
    {"stats", {"host", "port", "table", "retries", "retry-base-ms", "seed"}},
};

/// 0 when `cmd` exists and every flag is known; the exit code otherwise.
int reject_unknown_flags(const util::Cli& cli, const std::string& cmd) {
  const auto it = kCommandFlags.find(cmd);
  if (it == kCommandFlags.end()) {
    std::fprintf(stderr, "error: unknown subcommand '%s'\n", cmd.c_str());
    return usage();
  }
  for (const auto& name : cli.flag_names()) {
    // Global flags, valid for every command.
    if (name == "simd" || name == "trace" || name == "log-file" ||
        name == "log-level") {
      continue;
    }
    if (std::find(it->second.begin(), it->second.end(), name) ==
        it->second.end()) {
      std::fprintf(stderr, "error: unknown flag --%s for '%s'\n",
                   name.c_str(), cmd.c_str());
      return usage();
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  if (cli.positional().empty()) {
    if (cli.has("version")) return print_version();
    return usage();
  }
  const std::string cmd = cli.positional().front();
  if (const int rc = reject_unknown_flags(cli, cmd); rc != 0) return rc;
  // Global kernel-backend switch (docs/architecture.md, "Kernel backends").
  // Purely a speed knob: every backend is bit-identical to the scalar
  // reference, so any command's output is invariant under this flag.
  if (const std::string simd = cli.get("simd", "auto"); simd == "off") {
    cny::kernels::set_simd_mode(cny::kernels::SimdMode::Off);
  } else if (simd != "auto") {
    std::fprintf(stderr, "error: --simd must be 'auto' or 'off' (got '%s')\n",
                 simd.c_str());
    return 2;
  }
  // Global tracing switch: --trace=FILE opens the span sink every command
  // hands to its server/client/runner. Observational only — outputs and
  // stores are byte-identical with or without it.
  if (cli.has("trace")) {
    if (!cny::obs::tracing_compiled()) {
      std::fprintf(stderr,
                   "error: --trace requires a build with tracing compiled "
                   "in (this one was configured with -DCNY_OBS=OFF)\n");
      return 2;
    }
    try {
      g_trace_sink =
          std::make_shared<cny::obs::TraceSink>(cli.get("trace", ""));
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 2;
    }
  }
  // Global structured-log switch, mirroring --trace: --log-file=FILE opens
  // the JSONL event log every command hands to its server/runner/cache;
  // --log-level filters below the given severity. Observational only.
  if (cli.has("log-file")) {
    if (!cny::obs::logging_compiled()) {
      std::fprintf(stderr,
                   "error: --log-file requires a build with observability "
                   "compiled in (this one was configured with "
                   "-DCNY_OBS=OFF)\n");
      return 2;
    }
    cny::obs::LogLevel level = cny::obs::LogLevel::Info;
    if (!cny::obs::log_level_from_name(cli.get("log-level", "info"), level)) {
      std::fprintf(stderr,
                   "error: --log-level must be debug, info, warn or error "
                   "(got '%s')\n",
                   cli.get("log-level", "info").c_str());
      return 2;
    }
    try {
      g_log = std::make_shared<cny::obs::Log>(cli.get("log-file", ""), level);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 2;
    }
  } else if (cli.has("log-level")) {
    std::fprintf(stderr, "error: --log-level requires --log-file\n");
    return 2;
  }
  const experiments::PaperParams params;
  try {
    if (cmd == "pf") return cmd_pf(cli);
    if (cmd == "wmin") return cmd_wmin(cli);
    if (cmd == "flow") return cmd_flow(cli);
    if (cmd == "batch") return cmd_batch(cli);
    if (cmd == "scenarios") return cmd_scenarios(cli);
    if (cmd == "campaign") return cmd_campaign(cli);
    if (cmd == "align") return cmd_align(cli);
    if (cmd == "gen-lib") return cmd_gen_lib(cli);
    if (cmd == "gen-design") return cmd_gen_design(cli);
    if (cmd == "serve") return cmd_serve(cli);
    if (cmd == "request") return cmd_request(cli);
    if (cmd == "stats") return cmd_stats(cli);
    if (cmd == "top") return cmd_top(cli);
    if (cmd == "scaling") {
      std::cout << experiments::report_fig3_3(
                       params, cli.get_double("relaxation", 350.0))
                       .render_text();
      return 0;
    }
    if (cmd == "table1") {
      std::cout << experiments::report_table1(params).render_text();
      return 0;
    }
    if (cmd == "table2") {
      std::cout << experiments::report_table2(params).render_text();
      return 0;
    }
  } catch (const service::ServiceError& e) {
    // One line, one taxonomy: exit 4 = the transport failed (nothing
    // definitive was heard from the server), exit 5 = the server answered
    // with an error frame. Scripts can branch on it.
    std::fprintf(stderr, "service error [%s]: %s\n", e.code().c_str(),
                 e.message().c_str());
    return e.code() == "transport" ? 4 : 5;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return usage();
}
