#!/usr/bin/env python3
"""Condense Google Benchmark JSON runs into one machine-readable summary.

bench-smoke CI produces raw --benchmark_out JSON per binary; this tool
folds them into a single compact document that trend dashboards (or a
plain `jq`) can consume without knowing Google Benchmark's schema:

  {
    "host": {"cores": ..., "cpu_flags": [...], "cny_simd": "..."},
    "benchmarks": {
      "BM_ServeFlow/real_time": {
        "real_time_ns": 123456.0,
        "samples": 3,
        "counters": {"vm_hwm_kb": 181234.0}
      },
      ...
    }
  }

Repetitions of one benchmark are aggregated to the median real_time (and
max of each counter — memory high-water marks only grow, so max is the
honest aggregate). User counters (state.counters[...]) appear as
top-level numeric keys in each benchmark entry and are carried through
verbatim, which is how vm_hwm_kb recorded by bench_flow lands here.

Usage:
  tools/bench_summary.py out.json [more.json ...] --output summary.json
  tools/bench_summary.py build/bench/BENCH_*.json   # prints to stdout
"""

import argparse
import json
import sys

from bench_compare import host_metadata

# Keys that are Google Benchmark bookkeeping, not user counters.
STANDARD_KEYS = {
    "name", "run_name", "run_type", "repetitions", "repetition_index",
    "family_index", "per_family_instance_index", "threads", "iterations",
    "real_time", "cpu_time", "time_unit", "aggregate_name", "label",
    "error_occurred", "error_message", "big_o", "rms",
}


def collect(paths):
    out = {}
    for path in paths:
        with open(path) as f:
            data = json.load(f)
        for b in data.get("benchmarks", []):
            if b.get("run_type") == "aggregate":
                continue
            unit = b.get("time_unit", "ns")
            scale = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}.get(unit, 1.0)
            entry = out.setdefault(
                b["name"], {"real_times": [], "counters": {}})
            entry["real_times"].append(b["real_time"] * scale)
            for key, value in b.items():
                if key in STANDARD_KEYS or not isinstance(
                        value, (int, float)):
                    continue
                entry["counters"].setdefault(key, []).append(float(value))
    return out


def median(values):
    values = sorted(values)
    mid = len(values) // 2
    if len(values) % 2:
        return values[mid]
    return (values[mid - 1] + values[mid]) / 2.0


def summarise(collected):
    benchmarks = {}
    for name, entry in sorted(collected.items()):
        benchmarks[name] = {
            "real_time_ns": median(entry["real_times"]),
            "samples": len(entry["real_times"]),
            "counters": {
                key: max(values)
                for key, values in sorted(entry["counters"].items())
            },
        }
    return {"host": host_metadata(), "benchmarks": benchmarks}


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("runs", nargs="+",
                        help="Google Benchmark --benchmark_out JSON files")
    parser.add_argument("--output", default="-",
                        help="summary destination (default: stdout)")
    args = parser.parse_args()

    collected = collect(args.runs)
    if not collected:
        sys.exit("no iteration entries found in any input "
                 "(wrong files, or aggregate-only runs?)")
    summary = summarise(collected)
    text = json.dumps(summary, indent=2) + "\n"
    if args.output == "-":
        sys.stdout.write(text)
    else:
        with open(args.output, "w") as f:
            f.write(text)
        print(f"wrote {args.output}: {len(summary['benchmarks'])} "
              "benchmark(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
