#!/usr/bin/env python3
"""Diff two Google Benchmark JSON runs (files or directories) and print a
regression report.

Usage:
  tools/bench_compare.py BEFORE.json AFTER.json [--threshold=0.10]
  tools/bench_compare.py bench/baselines/before bench/baselines/after
  tools/bench_compare.py baseline.json fresh.json --fail-above 300

When given directories, files with matching names are compared pairwise
(benchmarks present on only one side are listed, not compared).

Exit status: 1 when --fail-above PCT is given and any benchmark slowed
down by more than PCT percent (a hard regression gate), or when
--fail-on-regress is set and any benchmark exceeds --threshold; 0
otherwise, so the default invocation can run informationally in CI.
"""

import argparse
import json
import os
import sys


def load_benchmarks(path):
    """name -> real_time in ns from one benchmark JSON file."""
    with open(path) as f:
        data = json.load(f)
    out = {}
    for b in data.get("benchmarks", []):
        if b.get("run_type") == "aggregate":
            continue
        unit = b.get("time_unit", "ns")
        scale = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}.get(unit, 1.0)
        out[b["name"]] = b["real_time"] * scale
    return out


def fmt_ns(ns):
    for unit, div in (("s", 1e9), ("ms", 1e6), ("us", 1e3)):
        if ns >= div:
            return f"{ns / div:.3g} {unit}"
    return f"{ns:.3g} ns"


def compare(before, after, threshold):
    """Returns (rows, regression_count, ratios); rows are printable tuples
    and ratios maps benchmark name -> after/before slowdown factor."""
    rows = []
    regressions = 0
    ratios = {}
    for name in sorted(set(before) | set(after)):
        if name not in after:
            rows.append((name, fmt_ns(before[name]), "-", "removed", ""))
            continue
        if name not in before:
            rows.append((name, "-", fmt_ns(after[name]), "new", ""))
            continue
        b, a = before[name], after[name]
        ratio = a / b if b > 0 else float("inf")
        ratios[name] = ratio
        flag = ""
        if ratio > 1.0 + threshold:
            flag = "REGRESSION"
            regressions += 1
        elif ratio < 1.0 - threshold:
            flag = "improved"
        rows.append((name, fmt_ns(b), fmt_ns(a), f"{ratio:.2f}x", flag))
    return rows, regressions, ratios


def print_table(rows):
    headers = ("benchmark", "before", "after", "ratio", "")
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in rows)) if rows else len(headers[i])
        for i in range(5)
    ]
    line = "  ".join(h.ljust(w) for h, w in zip(headers, widths)).rstrip()
    print(line)
    print("-" * len(line))
    for r in rows:
        print("  ".join(c.ljust(w) for c, w in zip(r, widths)).rstrip())


def matching_files(before_dir, after_dir):
    before = {f for f in os.listdir(before_dir) if f.endswith(".json")}
    after = {f for f in os.listdir(after_dir) if f.endswith(".json")}
    for only, side in ((before - after, "before"), (after - before, "after")):
        for f in sorted(only):
            print(f"note: {f} present only in {side}/", file=sys.stderr)
    return sorted(before & after)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("before")
    parser.add_argument("after")
    parser.add_argument("--threshold", type=float, default=0.10,
                        help="relative slowdown that counts as a regression")
    parser.add_argument("--fail-on-regress", action="store_true",
                        help="exit 1 when any regression exceeds the threshold")
    parser.add_argument("--fail-above", type=float, default=None,
                        metavar="PCT",
                        help="hard gate: exit 1 when any benchmark slows "
                             "down by more than PCT percent (independent of "
                             "--threshold, which only affects reporting)")
    args = parser.parse_args()

    total_regressions = 0
    all_ratios = {}
    if os.path.isdir(args.before) and os.path.isdir(args.after):
        for name in matching_files(args.before, args.after):
            print(f"== {name}")
            rows, regs, ratios = compare(
                load_benchmarks(os.path.join(args.before, name)),
                load_benchmarks(os.path.join(args.after, name)),
                args.threshold)
            print_table(rows)
            print()
            total_regressions += regs
            for bench, ratio in ratios.items():
                all_ratios[f"{name}:{bench}"] = ratio
    else:
        rows, total_regressions, all_ratios = compare(
            load_benchmarks(args.before), load_benchmarks(args.after),
            args.threshold)
        print_table(rows)

    if total_regressions:
        print(f"\n{total_regressions} regression(s) beyond "
              f"{args.threshold:.0%}", file=sys.stderr)
        if args.fail_on_regress:
            return 1
    if args.fail_above is not None:
        if not all_ratios:
            # A gate that measured nothing must not pass: a renamed
            # benchmark, a changed --benchmark_filter, or a truncated JSON
            # would otherwise defeat the CI gate silently.
            print("\nFAIL: --fail-above given but no benchmark exists on "
                  "both sides; nothing was gated", file=sys.stderr)
            return 1
        limit = 1.0 + args.fail_above / 100.0
        hard = {n: r for n, r in all_ratios.items() if r > limit}
        if hard:
            print(f"\nFAIL: {len(hard)} benchmark(s) slower than "
                  f"--fail-above {args.fail_above:g}%:", file=sys.stderr)
            for n, r in sorted(hard.items(), key=lambda kv: -kv[1]):
                print(f"  {n}: {r:.2f}x", file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
