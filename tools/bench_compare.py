#!/usr/bin/env python3
"""Diff two Google Benchmark JSON runs (files or directories) and print a
regression report.

Usage:
  tools/bench_compare.py BEFORE.json AFTER.json [--threshold=0.10]
  tools/bench_compare.py bench/baselines/before bench/baselines/after
  tools/bench_compare.py baseline.json fresh.json --fail-above 300
  tools/bench_compare.py --stamp RUN.json [RUN2.json ...]

When given directories, files with matching names are compared pairwise
(benchmarks present on only one side are listed, not compared).

--stamp writes a "host" block (core count, SIMD-relevant CPU flags, the
CNY_SIMD build setting from the environment) into each named run JSON and
exits; comparisons surface that block so a diff between runs recorded on
different hosts is visible in the report instead of masquerading as a
code change.

Exit status: 1 when --fail-above PCT is given and any benchmark slowed
down by more than PCT percent (a hard regression gate), or when
--fail-on-regress is set and any benchmark exceeds --threshold; 0
otherwise, so the default invocation can run informationally in CI.
"""

import argparse
import json
import os
import sys


def load_benchmarks(path, agg="median"):
    """(name -> real_time ns, name -> memory counters, host block or None).

    A run recorded with --benchmark_repetitions emits one iteration entry
    per repetition under the same name; they are aggregated per `agg` —
    "median" (default), or "min", the classic noise-robust estimator of a
    benchmark's intrinsic cost (every slowdown source is additive), which
    tight gates (--fail-above on a few percent) need so they measure the
    code, not one unlucky scheduling of it. Single-run files behave as
    before under either setting.

    User counters whose name ends in `_kb` (vm_hwm_kb, rss_kb — memory
    figures recorded via state.counters) are collected separately,
    aggregated to the max across repetitions: a high-water mark only
    grows, so max is the honest figure. They are compared
    informationally, never gated — allocation timing is too
    scheduling-dependent for a hard threshold.
    """
    with open(path) as f:
        data = json.load(f)
    samples = {}
    memory = {}
    for b in data.get("benchmarks", []):
        if b.get("run_type") == "aggregate":
            continue
        unit = b.get("time_unit", "ns")
        scale = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}.get(unit, 1.0)
        samples.setdefault(b["name"], []).append(b["real_time"] * scale)
        for key, value in b.items():
            if key.endswith("_kb") and isinstance(value, (int, float)):
                counters = memory.setdefault(b["name"], {})
                counters[key] = max(counters.get(key, 0.0), float(value))
    out = {}
    for name, values in samples.items():
        values.sort()
        if agg == "min":
            out[name] = values[0]
        else:
            mid = len(values) // 2
            if len(values) % 2:
                out[name] = values[mid]
            else:
                out[name] = (values[mid - 1] + values[mid]) / 2.0
    return out, memory, data.get("host")


def host_metadata():
    """The recording host, as much of it as the bench numbers depend on:
    core count, the CPU features the kernel backends dispatch on, and the
    CNY_SIMD build setting (exported by the recording script; benchmarks
    cannot see the CMake cache)."""
    flags = set()
    try:
        with open("/proc/cpuinfo") as f:
            for line in f:
                if line.startswith("flags"):
                    flags = set(line.split(":", 1)[1].split())
                    break
    except OSError:
        pass
    interesting = ("sse4_2", "avx", "avx2", "fma", "avx512f")
    return {
        "cores": os.cpu_count(),
        "cpu_flags": [fl for fl in interesting if fl in flags],
        "cny_simd": os.environ.get("CNY_SIMD", "unknown"),
    }


def format_host(host):
    flags = "+".join(host.get("cpu_flags", [])) or "none"
    return (f"{host.get('cores', '?')} core(s), flags {flags}, "
            f"CNY_SIMD={host.get('cny_simd', 'unknown')}")


def stamp_files(paths):
    meta = host_metadata()
    for path in paths:
        with open(path) as f:
            data = json.load(f)
        data["host"] = meta
        with open(path, "w") as f:
            json.dump(data, f, indent=2)
            f.write("\n")
        print(f"stamped {path}: {format_host(meta)}")


def print_hosts(before_host, after_host):
    if before_host:
        print(f"host before: {format_host(before_host)}")
    if after_host:
        print(f"host after:  {format_host(after_host)}")
    if before_host and after_host and before_host != after_host:
        print("note: the two runs were recorded on different hosts or "
              "build settings; ratios compare more than the code",
              file=sys.stderr)


def fmt_ns(ns):
    for unit, div in (("s", 1e9), ("ms", 1e6), ("us", 1e3)):
        if ns >= div:
            return f"{ns / div:.3g} {unit}"
    return f"{ns:.3g} ns"


def compare(before, after, threshold):
    """Returns (rows, regression_count, ratios); rows are printable tuples
    and ratios maps benchmark name -> after/before slowdown factor."""
    rows = []
    regressions = 0
    ratios = {}
    for name in sorted(set(before) | set(after)):
        if name not in after:
            rows.append((name, fmt_ns(before[name]), "-", "removed", ""))
            continue
        if name not in before:
            rows.append((name, "-", fmt_ns(after[name]), "new", ""))
            continue
        b, a = before[name], after[name]
        ratio = a / b if b > 0 else float("inf")
        ratios[name] = ratio
        flag = ""
        if ratio > 1.0 + threshold:
            flag = "REGRESSION"
            regressions += 1
        elif ratio < 1.0 - threshold:
            flag = "improved"
        rows.append((name, fmt_ns(b), fmt_ns(a), f"{ratio:.2f}x", flag))
    return rows, regressions, ratios


def print_table(rows):
    headers = ("benchmark", "before", "after", "ratio", "")
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in rows)) if rows else len(headers[i])
        for i in range(5)
    ]
    line = "  ".join(h.ljust(w) for h, w in zip(headers, widths)).rstrip()
    print(line)
    print("-" * len(line))
    for r in rows:
        print("  ".join(c.ljust(w) for c, w in zip(r, widths)).rstrip())


def print_memory(before_mem, after_mem):
    """Informational memory-counter diff (keys ending _kb); no gating."""
    names = sorted(set(before_mem) | set(after_mem))
    rows = []
    for name in names:
        keys = sorted(set(before_mem.get(name, {})) | set(after_mem.get(name, {})))
        for key in keys:
            b = before_mem.get(name, {}).get(key)
            a = after_mem.get(name, {}).get(key)
            ratio = f"{a / b:.2f}x" if b and a else "-"
            rows.append((f"{name} {key}",
                         f"{b:.0f}" if b is not None else "-",
                         f"{a:.0f}" if a is not None else "-",
                         ratio, ""))
    if rows:
        print("memory (kB, max across repetitions; informational):")
        print_table(rows)


def matching_files(before_dir, after_dir):
    before = {f for f in os.listdir(before_dir) if f.endswith(".json")}
    after = {f for f in os.listdir(after_dir) if f.endswith(".json")}
    for only, side in ((before - after, "before"), (after - before, "after")):
        for f in sorted(only):
            print(f"note: {f} present only in {side}/", file=sys.stderr)
    return sorted(before & after)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("paths", nargs="+",
                        help="BEFORE and AFTER (files or directories), or "
                             "with --stamp the run JSONs to annotate")
    parser.add_argument("--threshold", type=float, default=0.10,
                        help="relative slowdown that counts as a regression")
    parser.add_argument("--fail-on-regress", action="store_true",
                        help="exit 1 when any regression exceeds the threshold")
    parser.add_argument("--fail-above", type=float, default=None,
                        metavar="PCT",
                        help="hard gate: exit 1 when any benchmark slows "
                             "down by more than PCT percent (independent of "
                             "--threshold, which only affects reporting)")
    parser.add_argument("--stamp", action="store_true",
                        help="write host metadata into each named run JSON "
                             "and exit instead of comparing")
    parser.add_argument("--agg", choices=("median", "min"), default="median",
                        help="aggregate across repeated samples of one "
                             "benchmark: median (default) or min (most "
                             "robust to scheduling noise for tight gates)")
    args = parser.parse_args()

    if args.stamp:
        stamp_files(args.paths)
        return 0
    if len(args.paths) != 2:
        parser.error("comparison takes exactly BEFORE and AFTER")
    before_path, after_path = args.paths

    total_regressions = 0
    all_ratios = {}
    if os.path.isdir(before_path) and os.path.isdir(after_path):
        for name in matching_files(before_path, after_path):
            print(f"== {name}")
            before, before_mem, before_host = load_benchmarks(
                os.path.join(before_path, name), args.agg)
            after, after_mem, after_host = load_benchmarks(
                os.path.join(after_path, name), args.agg)
            print_hosts(before_host, after_host)
            rows, regs, ratios = compare(before, after, args.threshold)
            print_table(rows)
            print_memory(before_mem, after_mem)
            print()
            total_regressions += regs
            for bench, ratio in ratios.items():
                all_ratios[f"{name}:{bench}"] = ratio
    else:
        before, before_mem, before_host = load_benchmarks(
            before_path, args.agg)
        after, after_mem, after_host = load_benchmarks(after_path, args.agg)
        print_hosts(before_host, after_host)
        rows, total_regressions, all_ratios = compare(
            before, after, args.threshold)
        print_table(rows)
        print_memory(before_mem, after_mem)

    if total_regressions:
        print(f"\n{total_regressions} regression(s) beyond "
              f"{args.threshold:.0%}", file=sys.stderr)
        if args.fail_on_regress:
            return 1
    if args.fail_above is not None:
        if not all_ratios:
            # A gate that measured nothing must not pass: a renamed
            # benchmark, a changed --benchmark_filter, or a truncated JSON
            # would otherwise defeat the CI gate silently.
            print("\nFAIL: --fail-above given but no benchmark exists on "
                  "both sides; nothing was gated", file=sys.stderr)
            return 1
        limit = 1.0 + args.fail_above / 100.0
        hard = {n: r for n, r in all_ratios.items() if r > limit}
        if hard:
            print(f"\nFAIL: {len(hard)} benchmark(s) slower than "
                  f"--fail-above {args.fail_above:g}%:", file=sys.stderr)
            for n, r in sorted(hard.items(), key=lambda kv: -kv[1]):
                print(f"  {n}: {r:.2f}x", file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
