// Yield-service benchmarks over the loopback transport — the full protocol
// path (frame, decode, validate, coalesce, run_flow_batch, encode) with no
// socket, so the numbers isolate the serving layer itself.
//
// The headline pair is an 8-client burst:
//   BM_ServiceSequentialClients — the 8 requests issued one at a time, each
//     paying its own dispatch cycle (what 8 *uncoordinated* processes
//     running their own flows would look like, minus warm-up);
//   BM_ServiceCoalescedBurst    — the same 8 requests submitted together,
//     coalesced by the server into run_flow_batch calls on the shared warm
//     model. Must be at least as fast (the CI bench-smoke job asserts it).
//
// BM_ServiceSessionWarmup prices what the session cache amortises: the
// library + model + interpolant build every client would otherwise pay
// cold. BM_ServicePingRoundTrip is the protocol-overhead floor.
#include <benchmark/benchmark.h>

#include <cstdlib>
#include <future>
#include <optional>
#include <string>
#include <vector>

#include "obs/resource.h"
#include "service/client.h"
#include "service/protocol.h"
#include "service/server.h"
#include "service/session_cache.h"

namespace {

using namespace cny;

constexpr std::size_t kBurst = 8;
constexpr std::size_t kMcSamples = 1000;

service::FlowRequest burst_request(std::uint64_t seed) {
  service::FlowRequest request;
  request.params.mc_samples = kMcSamples;
  request.params.seed = seed;
  return request;
}

/// One warm server shared by the throughput benchmarks: the session is
/// built (and the p_F memo warmed) before the first timed iteration, so
/// sequential vs coalesced compare pure serving behaviour.
service::YieldServer& warm_server() {
  static service::YieldServer* server = [] {
    auto* s = new service::YieldServer(service::ServerOptions{});
    s->start();
    service::YieldClient client(*s);
    (void)client.call(burst_request(1));
    return s;
  }();
  return *server;
}

void BM_ServiceSequentialClients(benchmark::State& state) {
  auto& server = warm_server();
  for (auto _ : state) {
    for (std::uint64_t seed = 1; seed <= kBurst; ++seed) {
      const std::string response =
          server.submit(service::encode_flow_request(burst_request(seed)))
              .get();
      benchmark::DoNotOptimize(response.size());
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kBurst));
}
BENCHMARK(BM_ServiceSequentialClients)->Unit(benchmark::kMillisecond);

void BM_ServiceCoalescedBurst(benchmark::State& state) {
  auto& server = warm_server();
  for (auto _ : state) {
    std::vector<std::future<std::string>> burst;
    burst.reserve(kBurst);
    for (std::uint64_t seed = 1; seed <= kBurst; ++seed) {
      burst.push_back(
          server.submit(service::encode_flow_request(burst_request(seed))));
    }
    for (auto& response : burst) {
      benchmark::DoNotOptimize(response.get().size());
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kBurst));
}
BENCHMARK(BM_ServiceCoalescedBurst)->Unit(benchmark::kMillisecond);

void BM_ServicePingRoundTrip(benchmark::State& state) {
  auto& server = warm_server();
  const std::string ping = service::encode_frame(service::FrameType::Ping, "{}");
  for (auto _ : state) {
    benchmark::DoNotOptimize(server.submit(ping).get().size());
  }
}
BENCHMARK(BM_ServicePingRoundTrip)->Unit(benchmark::kMicrosecond);

// The cost N clients share instead of each paying: generate the library,
// build the FailureModel, warm the solver-bracket interpolant.
void BM_ServiceSessionWarmup(benchmark::State& state) {
  const service::SessionKey key = service::session_key({});
  for (auto _ : state) {
    service::SessionCache cache(1);
    benchmark::DoNotOptimize(cache.acquire(key)->model().p_f(100.0));
  }
}
BENCHMARK(BM_ServiceSessionWarmup)->Unit(benchmark::kMillisecond);

}  // namespace

// Expanded BENCHMARK_MAIN() so the telemetry-overhead CI gate can run the
// identical benchmarks with the background resource sampler active:
// CNY_SAMPLE_MS=<interval> starts an obs::ResourceSampler for the whole
// run (unset or 0 = plain run, byte-for-byte the old BENCHMARK_MAIN).
int main(int argc, char** argv) {
  std::optional<cny::obs::ResourceSampler> sampler;
  if (const char* interval = std::getenv("CNY_SAMPLE_MS")) {
    const unsigned ms = static_cast<unsigned>(std::strtoul(interval, nullptr, 10));
    if (ms > 0) {
      cny::obs::ResourceSampler::Options options;
      options.interval_ms = ms;
      sampler.emplace(options);
    }
  }
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
