// Reproduces Table 2 — the aligned-active area penalty across the two
// libraries and the one-/two-row variants — then benchmarks the transform.
#include <benchmark/benchmark.h>

#include <iostream>

#include "celllib/generator.h"
#include "experiments/table2.h"
#include "layout/aligned_active.h"

namespace {

using namespace cny;

void BM_AlignNangate45(benchmark::State& state) {
  const auto lib = celllib::make_nangate45_like();
  layout::AlignOptions options;
  options.w_min = 103.0;
  options.rows_per_polarity = static_cast<int>(state.range(0));
  for (auto _ : state) {
    const auto res = layout::align_active(lib, options, 140.0);
    benchmark::DoNotOptimize(res.cells_with_penalty());
  }
}
BENCHMARK(BM_AlignNangate45)->Arg(1)->Arg(2)->Unit(benchmark::kMillisecond);

void BM_AlignCommercial65(benchmark::State& state) {
  const auto lib = celllib::make_commercial65_like();
  layout::AlignOptions options;
  options.w_min = 107.0;
  options.rows_per_polarity = static_cast<int>(state.range(0));
  for (auto _ : state) {
    const auto res = layout::align_active(lib, options, 200.0);
    benchmark::DoNotOptimize(res.cells_with_penalty());
  }
}
BENCHMARK(BM_AlignCommercial65)->Arg(1)->Arg(2)->Unit(benchmark::kMillisecond);

void BM_Table2Full(benchmark::State& state) {
  const experiments::PaperParams params;
  for (auto _ : state) {
    const auto res = experiments::run_table2(params);
    benchmark::DoNotOptimize(res.nangate_one.cells_with_penalty);
  }
}
BENCHMARK(BM_Table2Full)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  const cny::experiments::PaperParams params;
  std::cout << cny::experiments::report_table2(params).render_text()
            << std::endl;
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
