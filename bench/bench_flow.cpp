// Prints the all-strategies summary (the synthesis of Table 1 + Fig 3.3),
// then benchmarks the end-to-end flow.
#include <benchmark/benchmark.h>

#include <iostream>

#include "celllib/generator.h"
#include "experiments/flow_summary.h"
#include "netlist/design_generator.h"
#include "obs/resource.h"
#include "yield/flow.h"

namespace {

// Records the process memory high-water mark (and current RSS) as user
// counters on the benchmark, so baseline JSONs carry a memory figure next
// to the time. VmHWM is process-wide and monotone, so on a multi-benchmark
// binary each entry reports "the peak so far" — comparable across
// recordings of the same binary (registration order is fixed), and an
// upper bound per benchmark either way.
void record_memory(benchmark::State& state) {
  const cny::obs::ResourceUsage usage = cny::obs::sample_resources();
  if (!usage.ok) return;
  state.counters["vm_hwm_kb"] = static_cast<double>(usage.vm_hwm_kb);
  state.counters["rss_kb"] = static_cast<double>(usage.rss_kb);
}

void BM_FullYieldFlow(benchmark::State& state) {
  const cny::experiments::PaperParams params;
  for (auto _ : state) {
    const auto res = cny::experiments::run_flow_summary(params);
    benchmark::DoNotOptimize(res.strategies.size());
  }
  record_memory(state);
}
BENCHMARK(BM_FullYieldFlow)->Unit(benchmark::kMillisecond);

// Arg = thread count at a fixed stream count: every arg computes the
// identical numbers, so the curve is the pure scheduling speedup.
void BM_FullYieldFlowThreads(benchmark::State& state) {
  cny::experiments::PaperParams params;
  params.n_threads = static_cast<unsigned>(state.range(0));
  for (auto _ : state) {
    const auto res = cny::experiments::run_flow_summary(params);
    benchmark::DoNotOptimize(res.strategies.size());
  }
  record_memory(state);
}
BENCHMARK(BM_FullYieldFlowThreads)
    ->Arg(1)
    ->Arg(2)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

// The batched entry point: a 3-point yield-target sweep sharing one p_F(W)
// interpolant, vs re-running run_flow per point (see run_flow_batch).
void BM_FlowBatchSweep(benchmark::State& state) {
  static const cny::celllib::Library lib = cny::celllib::make_nangate45_like();
  static const cny::netlist::Design design =
      cny::netlist::make_openrisc_like(lib);
  const cny::experiments::PaperParams paper;
  std::vector<cny::yield::FlowJob> jobs;
  for (double y : {0.80, 0.90, 0.95}) {
    cny::yield::FlowJob job;
    job.design = &design;
    job.params.yield_desired = y;
    jobs.push_back(job);
  }
  cny::yield::BatchParams batch;
  batch.share_interpolant = state.range(0) != 0;
  for (auto _ : state) {
    // Fresh model per iteration: measure the cold cost a new process/param
    // set pays, not replays against an already-warm memo cache.
    state.PauseTiming();
    const auto cold_model = paper.failure_model();
    state.ResumeTiming();
    const auto results =
        cny::yield::run_flow_batch(lib, jobs, cold_model, batch);
    benchmark::DoNotOptimize(results.size());
  }
  record_memory(state);
}
BENCHMARK(BM_FlowBatchSweep)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);

// Single-design run_flow with the bracket-scoped interpolant opt-in
// (FlowParams::use_interpolant): Arg 0 = exact p_F per solver query,
// Arg 1 = one 65-knot table up front, answered from the snapshot after.
void BM_SingleFlowInterpolant(benchmark::State& state) {
  static const cny::celllib::Library lib = cny::celllib::make_nangate45_like();
  static const cny::netlist::Design design =
      cny::netlist::make_openrisc_like(lib);
  const cny::experiments::PaperParams paper;
  cny::yield::FlowParams params;
  params.use_interpolant = state.range(0) != 0;
  for (auto _ : state) {
    // Fresh model per iteration: measure the cold cost a new process/param
    // set pays, not replays against an already-warm memo cache.
    state.PauseTiming();
    const auto cold_model = paper.failure_model();
    state.ResumeTiming();
    const auto res = cny::yield::run_flow(lib, design, cold_model, params);
    benchmark::DoNotOptimize(res.strategies.size());
  }
  record_memory(state);
}
BENCHMARK(BM_SingleFlowInterpolant)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  const cny::experiments::PaperParams params;
  std::cout << cny::experiments::report_flow_summary(params).render_text()
            << std::endl;
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
