// Prints the all-strategies summary (the synthesis of Table 1 + Fig 3.3),
// then benchmarks the end-to-end flow.
#include <benchmark/benchmark.h>

#include <iostream>

#include "experiments/flow_summary.h"

namespace {

void BM_FullYieldFlow(benchmark::State& state) {
  const cny::experiments::PaperParams params;
  for (auto _ : state) {
    const auto res = cny::experiments::run_flow_summary(params);
    benchmark::DoNotOptimize(res.strategies.size());
  }
}
BENCHMARK(BM_FullYieldFlow)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  const cny::experiments::PaperParams params;
  std::cout << cny::experiments::report_flow_summary(params).render_text()
            << std::endl;
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
