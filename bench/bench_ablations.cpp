// Ablation studies over the modelling knobs DESIGN.md calls out, printed as
// tables (series the paper does not contain but whose endpoints it pins):
//
//   A. pitch CV        — how the Fig 2.1 anchors move with σ_S/μ_S
//   B. CNT length      — correlation benefit vs L_CNT, incl. the residual-
//                        independence correction the paper's simplification
//                        ignores (finite-length extension)
//   C. removal process — W_min along the (p_Rm, p_Rs) selectivity frontier
//   D. m-CNT shorts    — required p_Rm vs chip size (p_Rm < 1 extension)
//
// Then micro-benchmarks of the extension kernels.
#include <benchmark/benchmark.h>

#include <cmath>
#include <iostream>

#include "cnt/removal_tradeoff.h"
#include "device/failure_model.h"
#include "device/short_model.h"
#include "util/strings.h"
#include "util/table.h"
#include "yield/length_variation.h"
#include "yield/row_model.h"
#include "yield/wmin_solver.h"

namespace {

using namespace cny;

void print_pitch_cv_ablation() {
  util::Table t("Ablation A: Fig 2.1 anchors vs pitch CV (paper pins ~155 / ~103 nm)");
  t.header({"pitch CV", "W at pF=3e-9 (nm)", "W at pF=1.1e-6 (nm)",
            "ratio pF(103)/pF(155)"});
  for (double cv : {0.6, 0.75, 0.9, 1.0, 1.15}) {
    const device::FailureModel model(cnt::PitchModel(4.0, cv),
                                     cnt::fig21_worst());
    t.begin_row()
        .num(cv, 3)
        .num(yield::invert_p_f(model, 3.0e-9, 20.0, 400.0), 4)
        .num(yield::invert_p_f(model, 1.1e-6, 20.0, 400.0), 4)
        .num(model.p_f(103.0) / model.p_f(155.0), 3);
  }
  std::cout << t.to_text() << '\n';
}

void print_lcnt_ablation() {
  // Aligned-active devices at the paper's 1.8 FETs/µm over one tube length;
  // relaxation factor vs L_CNT for the paper's idealised model and for the
  // finite-length model (residual independence included).
  util::Table t(
      "Ablation B: correlation benefit vs CNT length "
      "(W = 145 nm, 1.8 FETs/um, lambda_s = 0.117/nm)");
  t.header({"L_CNT (um)", "M_Rmin (paper model)", "ideal relaxation",
            "finite-length relaxation", "residual factor"});
  const double lambda_s = 0.117, w = 145.0, density = 1.8;
  for (double l_um : {20.0, 50.0, 100.0, 200.0, 400.0}) {
    const double l = l_um * 1000.0;
    const int n = std::max(2, static_cast<int>(l / 1000.0 * density));
    std::vector<double> pos;
    for (int i = 0; i < n; ++i) pos.push_back(i * 1000.0 / density);
    const double p1 = std::exp(-lambda_s * w);
    const double p_indep = -std::expm1(n * std::log1p(-p1));
    const double p_finite = yield::p_rf_finite_length(
        lambda_s, w, pos, yield::LengthModel{l, 0.0});
    t.begin_row()
        .num(l_um, 4)
        .num(static_cast<double>(n), 4)
        .num(p_indep / p1, 4)             // = M_Rmin for small p1
        .num(p_indep / p_finite, 4)
        .num(p_finite / p1, 3);
  }
  std::cout << t.to_text()
            << "(residual factor = how much the paper's perfect-sharing "
               "assumption\n underestimates p_RF; ~1 + lambda_s*W*span/L)\n\n";
}

void print_selectivity_ablation() {
  util::Table t(
      "Ablation C: W_min vs removal selectivity (p_Rm = 99.99 %, "
      "M_min = 33e6, yield 90 %)");
  t.header({"selectivity (sigma)", "p_Rs", "p_f per CNT", "W_min (nm)"});
  const cnt::PitchModel pitch(4.0, 0.9);
  for (double s : {3.0, 3.6, 4.24, 5.0, 6.0}) {
    const cnt::RemovalTradeoff tradeoff(s);
    const auto process = tradeoff.process_at(0.9999);
    const device::FailureModel model(pitch, process);
    const double w_min = yield::invert_p_f(model, 0.1 / 33.0e6, 10.0, 500.0);
    t.begin_row()
        .num(s, 3)
        .cell(util::format_pct(process.p_remove_s))
        .num(process.p_fail(), 3)
        .num(w_min, 4);
  }
  std::cout << t.to_text() << '\n';
}

void print_short_ablation() {
  util::Table t(
      "Ablation D: required p_Rm vs chip size (short mode, W = 155 nm, "
      "noise-failure odds 1 %, yield 90 %)");
  t.header({"devices", "required p_Rm"});
  for (double m : {1e6, 1e7, 1e8, 1e9}) {
    const double p_rm = device::ShortModel::required_p_rm(
        cnt::PitchModel(4.0, 0.9), 0.33, 155.0, m, 0.01, 0.90);
    t.begin_row().num(m, 3).cell(util::format_sig(p_rm, 8));
  }
  std::cout << t.to_text()
            << "(the paper's remark: p_Rm > 99.99 % is required for "
               "practical VLSI)\n\n";
}

void BM_FiniteLengthRow(benchmark::State& state) {
  const double lambda_s = 0.117, w = 145.0;
  std::vector<double> pos;
  for (int i = 0; i < static_cast<int>(state.range(0)); ++i) {
    pos.push_back(i * 555.0);
  }
  const yield::LengthModel length{200.0e3, 0.0};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        yield::p_rf_finite_length(lambda_s, w, pos, length));
  }
}
BENCHMARK(BM_FiniteLengthRow)->Arg(8)->Arg(18)->Arg(64)
    ->Unit(benchmark::kMillisecond);

void BM_ShortModelDevice(benchmark::State& state) {
  cnt::ProcessParams process;
  process.p_metallic = 0.33;
  process.p_remove_m = 0.9999;
  const device::ShortModel model(cnt::PitchModel(4.0, 0.9), process);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.p_short_device(155.0));
  }
}
BENCHMARK(BM_ShortModelDevice)->Unit(benchmark::kMillisecond);

void BM_RemovalFrontier(benchmark::State& state) {
  const cnt::RemovalTradeoff tradeoff(4.24);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tradeoff.frontier(0.9, 0.9999, 50));
  }
}
BENCHMARK(BM_RemovalFrontier);

}  // namespace

int main(int argc, char** argv) {
  print_pitch_cv_ablation();
  print_lcnt_ablation();
  print_selectivity_ablation();
  print_short_ablation();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
