// Performance benchmarks for the Monte Carlo substrates: RNG engine,
// samplers, growth generation, and the full-chip yield simulator. Not tied
// to a specific paper figure — this is the kernel inventory for anyone
// scaling the library up.
#include <benchmark/benchmark.h>

#include "cnt/growth.h"
#include "rng/distributions.h"
#include "rng/engine.h"
#include "yield/monte_carlo.h"

namespace {

using namespace cny;

void BM_Xoshiro(benchmark::State& state) {
  rng::Xoshiro256 rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng());
  }
}
BENCHMARK(BM_Xoshiro);

void BM_UniformDouble(benchmark::State& state) {
  rng::Xoshiro256 rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.uniform());
  }
}
BENCHMARK(BM_UniformDouble);

void BM_SampleGamma(benchmark::State& state) {
  rng::Xoshiro256 rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng::sample_gamma(rng, 1.23, 3.24));
  }
}
BENCHMARK(BM_SampleGamma);

void BM_SamplePoisson(benchmark::State& state) {
  rng::Xoshiro256 rng(3);
  const double lambda = static_cast<double>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng::sample_poisson(rng, lambda));
  }
}
BENCHMARK(BM_SamplePoisson)->Arg(5)->Arg(25)->Arg(120);

void BM_DiscreteSampler(benchmark::State& state) {
  rng::Xoshiro256 rng(4);
  std::vector<double> weights;
  for (int i = 0; i < 134; ++i) weights.push_back(1.0 + (i % 7));
  const rng::DiscreteSampler sampler(weights);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sampler(rng));
  }
}
BENCHMARK(BM_DiscreteSampler);

void BM_FunctionalPositionsPerBand(benchmark::State& state) {
  const cnt::DirectionalGrowth growth(cnt::PitchModel(4.0, 0.9),
                                      cnt::fig21_worst(), 200.0e3);
  rng::Xoshiro256 rng(5);
  const double band = static_cast<double>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(growth.functional_positions(rng, 0.0, band));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0) / 4);  // ~tubes generated
}
BENCHMARK(BM_FunctionalPositionsPerBand)->Arg(160)->Arg(1600)->Arg(16000);

void BM_ChipYieldSimulation(benchmark::State& state) {
  const cnt::DirectionalGrowth growth(cnt::PitchModel(4.0, 1.0),
                                      cnt::fig21_worst(), 200.0e3);
  yield::ChipSpec spec;
  spec.row_windows =
      std::vector<geom::Interval>(16, geom::Interval{0.0, 30.0});
  spec.n_rows = 8;
  rng::Xoshiro256 rng(6);
  for (auto _ : state) {
    const auto res = yield::simulate_chip_yield(
        growth, spec, yield::GrowthStyle::Directional, 200, rng);
    benchmark::DoNotOptimize(res.chip_yield);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 200 * 8);
}
BENCHMARK(BM_ChipYieldSimulation)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
