// Performance benchmarks for the Monte Carlo substrates: RNG engine,
// samplers, growth generation, and the full-chip yield simulator. Not tied
// to a specific paper figure — this is the kernel inventory for anyone
// scaling the library up.
#include <benchmark/benchmark.h>

#include "cnt/count_distribution.h"
#include "cnt/growth.h"
#include "cnt/pf_kernel.h"
#include "cnt/process.h"
#include "exec/parallel_mc.h"
#include "rng/distributions.h"
#include "rng/engine.h"
#include "stats/bootstrap.h"
#include "yield/empty_window.h"
#include "yield/monte_carlo.h"

namespace {

using namespace cny;

// --- analytic p_F kernels (cnt/pf_kernel.h) --------------------------------
// The same quantity two ways: the full-PMF path (materialise the whole
// count distribution, then form the PGF) vs the truncated node-major
// kernel. Same quadrature grid, results agree to ≤1e-12 relative; the gap
// is the point of the kernel and grows with W.

void BM_PfExact(benchmark::State& state) {
  const cnt::PitchModel pitch(4.0, 0.9);
  const double z = cnt::fig21_worst().p_fail();
  const double w = static_cast<double>(state.range(0));
  for (auto _ : state) {
    const cnt::CountDistribution dist(pitch, w);
    benchmark::DoNotOptimize(dist.pgf(z));
  }
}
BENCHMARK(BM_PfExact)
    ->Arg(155)
    ->Arg(500)
    ->Arg(800)
    ->Unit(benchmark::kMillisecond);

void BM_PfTruncated(benchmark::State& state) {
  const cnt::PitchModel pitch(4.0, 0.9);
  const double z = cnt::fig21_worst().p_fail();
  const double w = static_cast<double>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(cnt::pf_truncated(pitch, w, z).value);
  }
}
BENCHMARK(BM_PfTruncated)
    ->Arg(155)
    ->Arg(500)
    ->Arg(800)
    ->Unit(benchmark::kMillisecond);

// The Poisson-shape special case (integer Gamma shape k = 1), where the
// truncated kernel steps Q(nk, x) with an exact recurrence: each extra PMF
// term costs one multiply per node instead of one incomplete gamma.
void BM_PfTruncatedPoisson(benchmark::State& state) {
  const cnt::PitchModel pitch(4.0, 1.0);
  const double z = cnt::fig21_worst().p_fail();
  const double w = static_cast<double>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(cnt::pf_truncated(pitch, w, z).value);
  }
}
BENCHMARK(BM_PfTruncatedPoisson)
    ->Arg(155)
    ->Arg(500)
    ->Arg(800)
    ->Unit(benchmark::kMillisecond);

void BM_Xoshiro(benchmark::State& state) {
  rng::Xoshiro256 rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng());
  }
}
BENCHMARK(BM_Xoshiro);

void BM_UniformDouble(benchmark::State& state) {
  rng::Xoshiro256 rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.uniform());
  }
}
BENCHMARK(BM_UniformDouble);

void BM_SampleGamma(benchmark::State& state) {
  rng::Xoshiro256 rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng::sample_gamma(rng, 1.23, 3.24));
  }
}
BENCHMARK(BM_SampleGamma);

void BM_SamplePoisson(benchmark::State& state) {
  rng::Xoshiro256 rng(3);
  const double lambda = static_cast<double>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng::sample_poisson(rng, lambda));
  }
}
BENCHMARK(BM_SamplePoisson)->Arg(5)->Arg(25)->Arg(120);

void BM_DiscreteSampler(benchmark::State& state) {
  rng::Xoshiro256 rng(4);
  std::vector<double> weights;
  for (int i = 0; i < 134; ++i) weights.push_back(1.0 + (i % 7));
  const rng::DiscreteSampler sampler(weights);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sampler(rng));
  }
}
BENCHMARK(BM_DiscreteSampler);

void BM_FunctionalPositionsPerBand(benchmark::State& state) {
  const cnt::DirectionalGrowth growth(cnt::PitchModel(4.0, 0.9),
                                      cnt::fig21_worst(), 200.0e3);
  rng::Xoshiro256 rng(5);
  const double band = static_cast<double>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(growth.functional_positions(rng, 0.0, band));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0) / 4);  // ~tubes generated
}
BENCHMARK(BM_FunctionalPositionsPerBand)->Arg(160)->Arg(1600)->Arg(16000);

void BM_ChipYieldSimulation(benchmark::State& state) {
  const cnt::DirectionalGrowth growth(cnt::PitchModel(4.0, 1.0),
                                      cnt::fig21_worst(), 200.0e3);
  yield::ChipSpec spec;
  spec.row_windows =
      std::vector<geom::Interval>(16, geom::Interval{0.0, 30.0});
  spec.n_rows = 8;
  rng::Xoshiro256 rng(6);
  for (auto _ : state) {
    const auto res = yield::simulate_chip_yield(
        growth, spec, yield::GrowthStyle::Directional, 200, rng);
    benchmark::DoNotOptimize(res.chip_yield);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 200 * 8);
}
BENCHMARK(BM_ChipYieldSimulation)->Unit(benchmark::kMillisecond);

// --- parallel execution subsystem (exec/parallel_mc.h) ---------------------
// Arg = thread count; the stream count is pinned at 16 so every thread
// count computes the identical result — the speedup is pure scheduling.

void BM_UnionConditionalMcThreads(benchmark::State& state) {
  const double lambda = 0.117, w = 145.0;
  std::vector<cny::geom::Interval> windows;
  for (double o : {0.0, 15.0, 33.0, 52.0, 78.0, 95.0, 130.0, 155.0}) {
    windows.push_back({o, o + w});
  }
  const exec::McPolicy policy{static_cast<unsigned>(state.range(0)), 16};
  rng::Xoshiro256 rng(7);
  for (auto _ : state) {
    const auto res =
        yield::union_conditional_mc(lambda, windows, 20000, rng, policy);
    benchmark::DoNotOptimize(res.estimate);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 20000);
}
BENCHMARK(BM_UnionConditionalMcThreads)
    ->Arg(1)
    ->Arg(2)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_ChipYieldSimulationThreads(benchmark::State& state) {
  const cnt::DirectionalGrowth growth(cnt::PitchModel(4.0, 1.0),
                                      cnt::fig21_worst(), 200.0e3);
  yield::ChipSpec spec;
  spec.row_windows =
      std::vector<cny::geom::Interval>(16, cny::geom::Interval{0.0, 30.0});
  spec.n_rows = 8;
  const exec::McPolicy policy{static_cast<unsigned>(state.range(0)), 16};
  rng::Xoshiro256 rng(6);
  for (auto _ : state) {
    const auto res = yield::simulate_chip_yield(
        growth, spec, yield::GrowthStyle::Directional, 200, rng, policy);
    benchmark::DoNotOptimize(res.chip_yield);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 200 * 8);
}
BENCHMARK(BM_ChipYieldSimulationThreads)
    ->Arg(1)
    ->Arg(2)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_BootstrapThreads(benchmark::State& state) {
  std::vector<double> data;
  rng::Xoshiro256 gen(5);
  for (int i = 0; i < 400; ++i) data.push_back(gen.uniform());
  const exec::McPolicy policy{static_cast<unsigned>(state.range(0)), 16};
  rng::Xoshiro256 rng(9);
  for (auto _ : state) {
    const auto ci = stats::bootstrap_mean_ci(data, rng, 4000, 0.95, policy);
    benchmark::DoNotOptimize(ci.lo);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 4000);
}
BENCHMARK(BM_BootstrapThreads)
    ->Arg(1)
    ->Arg(2)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
