// Reproduces Table 1 — p_RF under the three growth/layout combinations —
// then benchmarks the window-union engines (the "numerical methods" the
// paper's general case requires).
#include <benchmark/benchmark.h>

#include <cmath>
#include <iostream>

#include "celllib/generator.h"
#include "experiments/table1.h"
#include "netlist/design_generator.h"
#include "yield/empty_window.h"

namespace {

using namespace cny;

std::vector<geom::Interval> paper_windows(int n_offsets, double spread,
                                          double w) {
  std::vector<geom::Interval> out;
  for (int i = 0; i < n_offsets; ++i) {
    const double y = spread * i / std::max(1, n_offsets - 1);
    out.push_back({y, y + w});
  }
  return out;
}

void BM_PoissonUnionExact(benchmark::State& state) {
  const auto windows =
      paper_windows(static_cast<int>(state.range(0)), 95.0, 145.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(yield::poisson_union_exact(0.117, windows));
  }
}
BENCHMARK(BM_PoissonUnionExact)->Arg(8)->Arg(16)->Arg(22);

void BM_ConditionalMc(benchmark::State& state) {
  const auto windows = paper_windows(20, 95.0, 145.0);
  rng::Xoshiro256 rng(1);
  const auto samples = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    const auto res =
        yield::union_conditional_mc(0.117, windows, samples, rng);
    benchmark::DoNotOptimize(res.estimate);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_ConditionalMc)->Arg(1000)->Arg(10000)
    ->Unit(benchmark::kMillisecond);

void BM_Table1Full(benchmark::State& state) {
  const experiments::PaperParams params;
  const auto lib = celllib::make_nangate45_like();
  const auto design = netlist::make_openrisc_like(lib);
  for (auto _ : state) {
    const auto res = experiments::run_table1(params, design, 0.0, 5000, 1);
    benchmark::DoNotOptimize(res.gain_total);
  }
}
BENCHMARK(BM_Table1Full)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  const cny::experiments::PaperParams params;
  std::cout << cny::experiments::report_table1(params).render_text()
            << std::endl;
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
