// Reproduces Fig 2.2b — gate-capacitance penalty of upsizing to W_min vs
// technology node, without correlation — then benchmarks the scaling study.
#include <benchmark/benchmark.h>

#include <iostream>

#include "celllib/generator.h"
#include "experiments/fig2_2.h"
#include "netlist/design_generator.h"
#include "power/penalty.h"

namespace {

using namespace cny;

yield::WidthSpectrum chip_spectrum() {
  const auto lib = celllib::make_nangate45_like();
  const auto design = netlist::make_openrisc_like(lib);
  return yield::scale_spectrum(design.width_spectrum(), 1.0,
                               1e8 / double(design.n_transistors()));
}

void BM_UpsizingPenalty(benchmark::State& state) {
  const auto spectrum = chip_spectrum();
  for (auto _ : state) {
    benchmark::DoNotOptimize(power::upsizing_penalty(spectrum, 155.0));
  }
}
BENCHMARK(BM_UpsizingPenalty);

void BM_WminSolve(benchmark::State& state) {
  const auto spectrum = chip_spectrum();
  const cnt::PitchModel pitch(4.0, 0.9);
  yield::WminRequest req;
  for (auto _ : state) {
    device::FailureModel model(pitch, cnt::fig21_worst());  // cold cache
    const auto res = yield::solve_w_min(spectrum, model, req);
    benchmark::DoNotOptimize(res.w_min);
  }
}
BENCHMARK(BM_WminSolve)->Unit(benchmark::kMillisecond);

void BM_ScalingStudyFourNodes(benchmark::State& state) {
  const auto spectrum = chip_spectrum();
  const cnt::PitchModel pitch(4.0, 0.9);
  yield::WminRequest req;
  for (auto _ : state) {
    device::FailureModel model(pitch, cnt::fig21_worst());
    const auto study = power::scaling_study(spectrum, model, req,
                                            {45.0, 32.0, 22.0, 16.0});
    benchmark::DoNotOptimize(study.nodes.size());
  }
}
BENCHMARK(BM_ScalingStudyFourNodes)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  const cny::experiments::PaperParams params;
  std::cout << cny::experiments::report_fig2_2b(params).render_text()
            << std::endl;
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
