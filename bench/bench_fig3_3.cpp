// Reproduces Fig 3.3 — upsizing penalty vs technology node before and after
// directional growth + aligned-active cells — then benchmarks the combined
// relaxed-W_min pipeline.
#include <benchmark/benchmark.h>

#include <iostream>

#include "celllib/generator.h"
#include "experiments/fig2_2.h"
#include "netlist/design_generator.h"

namespace {

using namespace cny;

void BM_PenaltyScalingBothSeries(benchmark::State& state) {
  const experiments::PaperParams params;
  const auto lib = celllib::make_nangate45_like();
  const auto design = netlist::make_openrisc_like(lib);
  for (auto _ : state) {
    const auto res = experiments::run_penalty_scaling(params, design, 350.0);
    benchmark::DoNotOptimize(res.with_correlation.nodes.size());
  }
}
BENCHMARK(BM_PenaltyScalingBothSeries)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  const cny::experiments::PaperParams params;
  // The paper's 350X relaxation; Table 1's measured gain_total lands at
  // M_Rmin = 360 — report_fig3_3 parameterises it explicitly.
  std::cout << cny::experiments::report_fig3_3(params, 350.0).render_text()
            << std::endl;
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
