// Reproduces Fig 2.2a — the transistor width distribution of an
// OpenRISC-like core on the nangate45_like library — then benchmarks the
// library/design generation pipeline.
#include <benchmark/benchmark.h>

#include <iostream>

#include "celllib/generator.h"
#include "experiments/fig2_2.h"
#include "netlist/design_generator.h"

namespace {

using namespace cny;

void BM_GenerateNangate45(benchmark::State& state) {
  for (auto _ : state) {
    const auto lib = celllib::make_nangate45_like();
    benchmark::DoNotOptimize(lib.size());
  }
}
BENCHMARK(BM_GenerateNangate45)->Unit(benchmark::kMillisecond);

void BM_GenerateCommercial65(benchmark::State& state) {
  for (auto _ : state) {
    const auto lib = celllib::make_commercial65_like();
    benchmark::DoNotOptimize(lib.size());
  }
}
BENCHMARK(BM_GenerateCommercial65)->Unit(benchmark::kMillisecond);

void BM_GenerateDesign(benchmark::State& state) {
  const auto lib = celllib::make_nangate45_like();
  for (auto _ : state) {
    const auto design = netlist::generate_design(
        "d", lib, static_cast<std::uint64_t>(state.range(0)), {});
    benchmark::DoNotOptimize(design.n_transistors());
  }
}
BENCHMARK(BM_GenerateDesign)->Arg(10000)->Arg(50000)
    ->Unit(benchmark::kMillisecond);

void BM_WidthHistogram(benchmark::State& state) {
  const auto lib = celllib::make_nangate45_like();
  const auto design = netlist::make_openrisc_like(lib);
  for (auto _ : state) {
    const auto h = design.width_histogram(80.0, 800.0);
    benchmark::DoNotOptimize(h.total_weight());
  }
}
BENCHMARK(BM_WidthHistogram);

}  // namespace

int main(int argc, char** argv) {
  std::cout << cny::experiments::report_fig2_2a().render_text() << std::endl;
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
