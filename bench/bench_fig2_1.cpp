// Reproduces Fig 2.1 — CNFET failure probability vs CNFET width for three
// processing conditions — then benchmarks the analytic kernels behind it.
//
// Run:  ./bench_fig2_1            (prints the figure series, then timings)
#include <benchmark/benchmark.h>

#include <iostream>

#include "cnt/count_distribution.h"
#include "device/failure_model.h"
#include "experiments/fig2_1.h"

namespace {

using namespace cny;

void BM_CountDistribution(benchmark::State& state) {
  const cnt::PitchModel pitch(4.0, 0.9);
  const double w = static_cast<double>(state.range(0));
  for (auto _ : state) {
    const cnt::CountDistribution dist(pitch, w);
    benchmark::DoNotOptimize(dist.mean());
  }
}
BENCHMARK(BM_CountDistribution)->Arg(40)->Arg(103)->Arg(155);

void BM_FailureModelPf(benchmark::State& state) {
  // Cold evaluation: a fresh model per iteration defeats the memo cache so
  // the true analytic cost is measured.
  const cnt::PitchModel pitch(4.0, 0.9);
  const double w = static_cast<double>(state.range(0));
  for (auto _ : state) {
    device::FailureModel model(pitch, cnt::fig21_worst());
    benchmark::DoNotOptimize(model.p_f(w));
  }
}
BENCHMARK(BM_FailureModelPf)->Arg(103)->Arg(155);

void BM_FailureModelPfCached(benchmark::State& state) {
  const cnt::PitchModel pitch(4.0, 0.9);
  device::FailureModel model(pitch, cnt::fig21_worst());
  (void)model.p_f(155.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.p_f(155.0));
  }
}
BENCHMARK(BM_FailureModelPfCached);

void BM_Fig21FullSweep(benchmark::State& state) {
  const experiments::PaperParams params;
  for (auto _ : state) {
    const auto res = experiments::run_fig2_1(params, 20.0, 180.0, 16.0);
    benchmark::DoNotOptimize(res.w_at_3e9);
  }
}
BENCHMARK(BM_Fig21FullSweep)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  const cny::experiments::PaperParams params;
  std::cout << cny::experiments::report_fig2_1(params).render_text()
            << std::endl;
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
