// Scenario-engine benchmarks: what each mechanism adds to a single flow,
// and how a removal-frontier sweep batches.
//
//   BM_FlowOpenOnly        — the open-only baseline (empty ScenarioSpec)
//   BM_FlowShorts          — + combined open x short W_min fixpoint and the
//                            per-strategy required-p_Rm bisections
//   BM_FlowAllMechanisms   — shorts + finite length + removal frontier
//   BM_FrontierBatchShared — 4-point removal sweep through run_flow_batch,
//                            one warm model + table per derived corner
//   BM_FrontierBatchCold   — the same sweep with share_interpolant off:
//                            what per-corner sharing saves
//
// NOTE: the checked-in baseline was recorded on a 1-core container (see
// bench/baselines/README.md), so the batch entries measure kernel cost, not
// parallel speedup.
#include <benchmark/benchmark.h>

#include "celllib/generator.h"
#include "device/failure_model.h"
#include "netlist/design_generator.h"
#include "scenario/engine.h"
#include "yield/flow.h"

namespace {

using namespace cny;

/// Small MC budget: these benches time the scenario machinery, not the MC.
constexpr std::size_t kMcSamples = 600;

const celllib::Library& library() {
  static const celllib::Library lib = celllib::make_nangate45_like();
  return lib;
}

const netlist::Design& design() {
  static const netlist::Design d = netlist::make_openrisc_like(library());
  return d;
}

const device::FailureModel& model() {
  static const device::FailureModel m(cnt::PitchModel(4.0, 0.9),
                                      cnt::fig21_worst());
  return m;
}

yield::FlowParams flow_params() {
  yield::FlowParams params;
  params.mc_samples = kMcSamples;
  params.n_threads = 1;
  return params;
}

void BM_FlowOpenOnly(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        yield::run_flow(library(), design(), model(), flow_params()));
  }
}
BENCHMARK(BM_FlowOpenOnly)->Unit(benchmark::kMillisecond);

void BM_FlowShorts(benchmark::State& state) {
  auto params = flow_params();
  params.scenario.shorts = scenario::ShortFailure{};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        yield::run_flow(library(), design(), model(), params));
  }
}
BENCHMARK(BM_FlowShorts)->Unit(benchmark::kMillisecond);

void BM_FlowAllMechanisms(benchmark::State& state) {
  auto params = flow_params();
  // Composition: the removal target supersedes the shorts block's p_Rm, so
  // it must sit above the short mode's ~1-1e-8 floor for 1e8 transistors
  // (at a 0.1 % noise budget) while its earned p_Rs stays solvable.
  params.scenario.shorts = scenario::ShortFailure{1.0, 0.001};
  params.scenario.length = scenario::FiniteLength{150.0e3, 0.3, 16};
  params.scenario.removal = scenario::RemovalFrontier{6.0, 0.99999999};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        yield::run_flow(library(), design(), model(), params));
  }
}
BENCHMARK(BM_FlowAllMechanisms)->Unit(benchmark::kMillisecond);

std::vector<yield::FlowJob> frontier_jobs() {
  // 4 removal targets -> 4 distinct derived corners (feasible across the
  // sweep at selectivity 6), each evaluated at 2 yield targets — the shape
  // of coalesced sweep traffic, where per-corner table sharing pays.
  std::vector<yield::FlowJob> jobs;
  for (const double p_rm : {0.99, 0.999, 0.9999, 0.99999}) {
    for (const double yield_target : {0.85, 0.90}) {
      yield::FlowJob job;
      job.design = &design();
      job.params = flow_params();
      job.params.yield_desired = yield_target;
      job.params.scenario.removal = scenario::RemovalFrontier{6.0, p_rm};
      jobs.push_back(job);
    }
  }
  return jobs;
}

void BM_FrontierBatchShared(benchmark::State& state) {
  const auto jobs = frontier_jobs();
  yield::BatchParams batch;
  batch.n_threads = 1;
  batch.share_interpolant = true;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        yield::run_flow_batch(library(), jobs, model(), batch));
  }
}
BENCHMARK(BM_FrontierBatchShared)->Unit(benchmark::kMillisecond);

void BM_FrontierBatchCold(benchmark::State& state) {
  const auto jobs = frontier_jobs();
  yield::BatchParams batch;
  batch.n_threads = 1;
  batch.share_interpolant = false;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        yield::run_flow_batch(library(), jobs, model(), batch));
  }
}
BENCHMARK(BM_FrontierBatchCold)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
