// Campaign-runner benchmarks: what per-chunk corner grouping buys.
//
// The campaign is a 3-seed x 3-pitch-cv cartesian product with the corner
// axis declared LAST, i.e. fastest-varying — consecutive points alternate
// derived corners, the worst case for a session cache. Both entries run
// the identical 9-point stream into a fresh in-memory store:
//
//   BM_CampaignGrouped   — one chunk (checkpoint_every = 0), cache wide
//                          enough for every corner: the runner's per-chunk
//                          grouping collects each corner's points before
//                          touching the cache, so 3 sessions are built;
//   BM_CampaignUngrouped — checkpoint_every = 1 and cache_capacity = 1:
//                          every point is its own chunk, grouping is
//                          structurally defeated, and the corner-fastest
//                          ordering evicts the session on every point
//                          (9 builds).
//
// Grouped must not lose to ungrouped — the CI campaign-smoke job gates
// grouped <= 1.10 x ungrouped (results are byte-identical either way; the
// only difference is wasted model warm-ups). BM_CampaignCompile prices the
// spec -> validated-request-stream step alone (axis expansion, derived
// evaluation, canonical-JSON hashing), which resume re-pays on every
// invocation before any flow runs.
//
// NOTE: the checked-in baseline was recorded on a 1-core container (see
// bench/baselines/README.md); everything here runs with n_threads = 1.
#include <benchmark/benchmark.h>

#include <cstddef>

#include "campaign/runner.h"
#include "campaign/spec.h"
#include "campaign/store.h"

namespace {

using namespace cny;

/// Small MC budget and coarse interpolant: these benches time session
/// warm-up economics, not the MC kernels.
constexpr std::size_t kMcSamples = 400;
constexpr std::size_t kKnots = 17;

campaign::CampaignSpec grouping_spec() {
  campaign::CampaignSpec spec;
  spec.name = "bench-grouping";
  spec.base.params.mc_samples = kMcSamples;
  // Corner axis last => fastest-varying: points 0..8 visit the three
  // pitch-CV corners as 0.7, 0.8, 0.9, 0.7, 0.8, ... — adjacent points
  // never share a session unless the runner groups the chunk.
  spec.axes = {{"seed", "seed", "1:1:3"},
               {"cv", "process.pitch_cv", "0.7,0.8,0.9"}};
  return spec;
}

campaign::RunnerOptions base_options() {
  campaign::RunnerOptions options;
  options.n_threads = 1;
  options.interpolant_knots = kKnots;
  return options;
}

void BM_CampaignGrouped(benchmark::State& state) {
  const auto points = campaign::compile(grouping_spec());
  auto options = base_options();
  options.checkpoint_every = 0;  // one chunk: full-campaign grouping
  options.cache_capacity = 8;
  for (auto _ : state) {
    campaign::ResultStore store;
    benchmark::DoNotOptimize(campaign::run_campaign(points, store, options));
  }
}
BENCHMARK(BM_CampaignGrouped)->Unit(benchmark::kMillisecond);

void BM_CampaignUngrouped(benchmark::State& state) {
  const auto points = campaign::compile(grouping_spec());
  auto options = base_options();
  options.checkpoint_every = 1;  // every point alone: no grouping possible
  options.cache_capacity = 1;    // corner-fastest ordering evicts each time
  for (auto _ : state) {
    campaign::ResultStore store;
    benchmark::DoNotOptimize(campaign::run_campaign(points, store, options));
  }
}
BENCHMARK(BM_CampaignUngrouped)->Unit(benchmark::kMillisecond);

void BM_CampaignCompile(benchmark::State& state) {
  const auto spec = grouping_spec();
  for (auto _ : state) {
    benchmark::DoNotOptimize(campaign::compile(spec));
  }
}
BENCHMARK(BM_CampaignCompile)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
