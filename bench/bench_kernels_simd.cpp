// Scalar-vs-SIMD and batched-vs-looped baselines for the kernel-backend
// layer (src/kernels/). Every benchmark here exists under ONE name in TWO
// implementations, selected by a flag this binary parses before Google
// Benchmark sees argv:
//
//   --mode=looped    the historical evaluation shape: one scalar
//                    pf_truncated call per width, SIMD dispatch forced off
//   --mode=batched   (default) the PR's shape: widths evaluated through
//                    pf_truncated_batch / the batched interpolant build,
//                    SIMD dispatch on auto
//
// Recording the same binary in both modes and diffing the JSONs with
// tools/bench_compare.py measures exactly the batched+SIMD win while
// holding the benchmark harness constant; CI gates the headline pair
// (interpolant build, Fig 2.1 sweep) with `--fail-above -50`, i.e. the
// batched mode must be at least 2x the looped mode on an AVX2 host.
// Results are bit-identical across modes (tests/test_kernels.cpp), so
// the diff is pure speed.
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "cnt/pf_kernel.h"
#include "cnt/pitch_model.h"
#include "cnt/process.h"
#include "device/failure_model.h"
#include "geom/interval.h"
#include "kernels/dispatch.h"
#include "kernels/mc_kernels.h"
#include "kernels/pf_batch.h"
#include "rng/engine.h"

namespace {

using namespace cny;

bool g_batched = true;  // --mode=; false = looped scalar reference shape

/// One result vector, both shapes: the looped mode is the exact historical
/// call pattern (scalar kernel, one call per width).
std::vector<double> eval_widths(const cnt::PitchModel& pitch,
                                const std::vector<double>& widths, double z) {
  std::vector<double> out;
  out.reserve(widths.size());
  if (g_batched) {
    for (const auto& r : kernels::pf_truncated_batch(pitch, widths, z)) {
      out.push_back(r.value);
    }
  } else {
    for (double w : widths) {
      out.push_back(cnt::pf_truncated(pitch, w, z).value);
    }
  }
  return out;
}

// --- headline pair 1: the interpolant build ---------------------------------
// 65 exact kernel evaluations over the solver bracket — the dominant
// fixed cost of every interpolated flow. The batched mode is the real
// FailureModel::enable_interpolation path (lane-packed kernel batches);
// the looped mode evaluates the same geometric knot grid one scalar
// kernel call at a time, which is what the build did before this layer.
void BM_InterpolantBuild(benchmark::State& state) {
  const cnt::PitchModel pitch(4.0, 0.9);
  const auto proc = cnt::fig21_mid();
  constexpr std::size_t kKnots = 65;
  for (auto _ : state) {
    if (g_batched) {
      const device::FailureModel model(pitch, proc);
      model.enable_interpolation(4.0, 400.0, kKnots, 1);
      benchmark::DoNotOptimize(model.interpolation_covers(155.0));
    } else {
      std::vector<double> xs(kKnots);
      const double ratio = 400.0 / 4.0;
      for (std::size_t i = 0; i < kKnots; ++i) {
        xs[i] = 4.0 * std::pow(ratio, static_cast<double>(i) /
                                          static_cast<double>(kKnots - 1));
      }
      double sum = 0.0;
      for (double x : xs) {
        sum += cnt::pf_truncated(pitch, x, proc.p_fail()).value;
      }
      benchmark::DoNotOptimize(sum);
    }
  }
}
BENCHMARK(BM_InterpolantBuild)->Unit(benchmark::kMillisecond);

// --- headline pair 2: the Fig 2.1 sweep grid --------------------------------
// The experiment's exact evaluation set: widths 20..180 nm under all three
// processing conditions (41 widths x 3 corners = 123 kernel evaluations).
void BM_Fig21Sweep(benchmark::State& state) {
  const cnt::PitchModel pitch(4.0, 0.9);
  std::vector<double> widths;
  for (double w = 20.0; w <= 180.0; w += 4.0) widths.push_back(w);
  const cnt::ProcessParams procs[] = {cnt::fig21_worst(), cnt::fig21_mid(),
                                      cnt::fig21_ideal()};
  for (auto _ : state) {
    double sum = 0.0;
    for (const auto& proc : procs) {
      for (double v : eval_widths(pitch, widths, proc.p_fail())) sum += v;
    }
    benchmark::DoNotOptimize(sum);
  }
}
BENCHMARK(BM_Fig21Sweep)->Unit(benchmark::kMillisecond);

// One full lane packet at large W — the per-packet win with no partial-lane
// or dispatch overhead in the picture.
void BM_PfPacketWide(benchmark::State& state) {
  const cnt::PitchModel pitch(4.0, 0.9);
  const std::vector<double> widths = {440.0, 480.0, 520.0, 560.0};
  const double z = cnt::fig21_mid().p_fail();
  for (auto _ : state) {
    double sum = 0.0;
    for (double v : eval_widths(pitch, widths, z)) sum += v;
    benchmark::DoNotOptimize(sum);
  }
}
BENCHMARK(BM_PfPacketWide)->Unit(benchmark::kMillisecond);

// --- MC post-draw kernels ---------------------------------------------------
// Thinning and the sorted-window check run once per simulated device; the
// mode toggles the dispatch seam (scalar reference vs AVX2), the call
// shape is the same either way.

void BM_ThinFunctional(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  rng::Xoshiro256 rng(11);
  std::vector<double> ys(n), us(n);
  for (std::size_t i = 0; i < n; ++i) {
    ys[i] = static_cast<double>(i) * 4.0;
    us[i] = rng.uniform();
  }
  std::vector<double> out;
  for (auto _ : state) {
    kernels::thin_functional(ys, us, 0.33, out);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_ThinFunctional)->Arg(256)->Arg(4096);

void BM_WindowSweep(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::vector<double> points(n);
  for (std::size_t i = 0; i < n; ++i) points[i] = static_cast<double>(i);
  std::vector<geom::Interval> windows;
  for (std::size_t k = 0; k < 64; ++k) {
    const double lo = static_cast<double>(k * (n / 64));
    windows.push_back({lo + 0.25, lo + 0.75});  // between points: occupied
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        kernels::any_window_empty_sorted(points, windows));
  }
}
BENCHMARK(BM_WindowSweep)->Arg(4096);

}  // namespace

// Custom main: strip --mode= (ours) before benchmark::Initialize rejects
// it, set the dispatch seam accordingly, then run as usual.
int main(int argc, char** argv) {
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--mode=", 0) == 0) {
      const std::string mode = arg.substr(7);
      if (mode == "looped") {
        g_batched = false;
        cny::kernels::set_simd_mode(cny::kernels::SimdMode::Off);
      } else if (mode == "batched") {
        g_batched = true;
        cny::kernels::set_simd_mode(cny::kernels::SimdMode::Auto);
      } else {
        std::fprintf(stderr, "--mode must be 'looped' or 'batched'\n");
        return 2;
      }
    } else {
      argv[kept++] = argv[i];
    }
  }
  argc = kept;
  std::printf("mode: %s, backend: %s\n", g_batched ? "batched" : "looped",
              cny::kernels::backend_name());
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
