// Tests for the extension modules: finite CNT length correlation, the
// surviving-m-CNT short model, the removal selectivity tradeoff, and the
// chip floorplan substrate.
#include <gtest/gtest.h>

#include <cmath>

#include "celllib/generator.h"
#include "cnt/removal_tradeoff.h"
#include "device/short_model.h"
#include "layout/floorplan.h"
#include "netlist/design_generator.h"
#include "stats/accumulator.h"
#include "util/contracts.h"
#include "yield/length_variation.h"

namespace {

using namespace cny;

// ----------------------------------------------------- length variation

std::vector<double> spaced_positions(int n, double pitch) {
  std::vector<double> out;
  for (int i = 0; i < n; ++i) out.push_back(i * pitch);
  return out;
}

TEST(LengthVariation, CoverMeasureFixedLengthByHand) {
  // Two devices 100 apart, tubes of length 150: union of (x-150, x] =
  // (-150, 0] ∪ (-50, 100] -> measure 250.
  yield::LengthModel model{150.0, 0.0};
  EXPECT_NEAR(model.mean_cover_measure({0.0, 100.0}), 250.0, 1e-9);
  // Far apart: disjoint -> 2L.
  EXPECT_NEAR(model.mean_cover_measure({0.0, 1000.0}), 300.0, 1e-9);
  // Same position: L.
  EXPECT_NEAR(model.mean_cover_measure({5.0, 5.0}), 150.0, 1e-9);
}

TEST(LengthVariation, SingleDeviceMatchesDeviceFailure) {
  // One device: p_RF = exp(-ν W L) = exp(-λ_s W) regardless of L.
  const double lambda_s = 0.117, w = 145.0;
  for (double l : {1.0e3, 200.0e3}) {
    const double p = yield::p_rf_finite_length(lambda_s, w, {0.0},
                                               yield::LengthModel{l, 0.0});
    EXPECT_NEAR(p / std::exp(-lambda_s * w), 1.0, 1e-9) << "L=" << l;
  }
}

TEST(LengthVariation, LongTubesLeaveResidualIndependence) {
  // Devices spanning `span` with tubes of length L >> span do NOT collapse
  // to a single failure opportunity: random tube boundaries cross the row
  // everywhere, leaving each device a private exposure of measure ~d/L per
  // neighbour gap. First-order expansion of the exact union:
  //   p_RF ≈ p_1 · (1 + λ_s W · span / L).
  // This quantifies how optimistic the paper's "perfect correlation within
  // L_CNT" simplification is (Sec 3.1); see DESIGN.md.
  const double lambda_s = 0.117, w = 145.0;
  const auto pos = spaced_positions(18, 555.0);  // 1.8 FETs/µm, span 9.4 µm
  const double span = pos.back() - pos.front();
  const double l_cnt = 200.0e3;
  const double p = yield::p_rf_finite_length(lambda_s, w, pos,
                                             yield::LengthModel{l_cnt, 0.0});
  const double predicted =
      std::exp(-lambda_s * w) * (1.0 + lambda_s * w * span / l_cnt);
  EXPECT_NEAR(p / predicted, 1.0, 0.02);
}

TEST(LengthVariation, ShortTubesApproachIndependence) {
  // Tubes much shorter than the device spacing: no sharing.
  const double lambda_s = 0.117, w = 145.0;
  const auto pos = spaced_positions(10, 555.0);
  const double p = yield::p_rf_finite_length(lambda_s, w, pos,
                                             yield::LengthModel{50.0, 0.0});
  const double p1 = std::exp(-lambda_s * w);
  EXPECT_NEAR(p / (1.0 - std::pow(1.0 - p1, 10.0)), 1.0, 1e-6);
}

TEST(LengthVariation, SharingMonotoneInLength) {
  const double lambda_s = 0.117, w = 145.0;
  const auto pos = spaced_positions(12, 555.0);
  double prev = 0.0;
  for (double l : {100.0, 1000.0, 5000.0, 50000.0}) {
    const double share = yield::effective_sharing(
        lambda_s, w, pos, yield::LengthModel{l, 0.0});
    EXPECT_GT(share, prev) << "L=" << l;
    prev = share;
  }
  EXPECT_LE(prev, 12.0 + 1e-6);
}

TEST(LengthVariation, McCrossCheckAtInflatedProbability) {
  // Small device width -> empty windows common -> direct MC resolves p_RF.
  const double lambda_s = 0.117, w = 30.0;
  const auto pos = spaced_positions(6, 400.0);
  const yield::LengthModel length{800.0, 0.0};
  const double analytic = yield::p_rf_finite_length(lambda_s, w, pos, length);
  rng::Xoshiro256 rng(301);
  const auto mc =
      yield::p_rf_finite_length_mc(lambda_s, w, pos, length, 60000, rng);
  EXPECT_NEAR(mc.estimate / analytic, 1.0, 0.08)
      << "analytic=" << analytic << " mc=" << mc.estimate;
}

TEST(LengthVariation, LognormalLengthsReduceSharing) {
  // At fixed mean length, variability creates short tubes that break rows
  // into more independent pieces -> higher p_RF than the fixed-length law
  // once lengths are comparable to the span.
  const double lambda_s = 0.117, w = 145.0;
  const auto pos = spaced_positions(12, 555.0);
  const double fixed = yield::p_rf_finite_length(
      lambda_s, w, pos, yield::LengthModel{7000.0, 0.0});
  const double variable = yield::p_rf_finite_length(
      lambda_s, w, pos, yield::LengthModel{7000.0, 0.5});
  EXPECT_GT(variable, fixed);
}

TEST(LengthVariation, SampleRespectsLaw) {
  rng::Xoshiro256 rng(302);
  const yield::LengthModel fixed{123.0, 0.0};
  EXPECT_DOUBLE_EQ(fixed.sample(rng), 123.0);
  const yield::LengthModel ln{200.0, 0.3};
  stats::Accumulator acc;
  for (int i = 0; i < 20000; ++i) acc.add(ln.sample(rng));
  EXPECT_NEAR(acc.mean(), 200.0, 2.0);
  EXPECT_NEAR(acc.stddev(), 60.0, 3.0);
}

// ------------------------------------------------------------ short model

device::ShortModel make_short_model(double p_rm) {
  cnt::ProcessParams process;
  process.p_metallic = 0.33;
  process.p_remove_m = p_rm;
  return device::ShortModel(cnt::PitchModel(4.0, 0.9), process);
}

TEST(ShortModel, PerfectRemovalMeansNoShorts) {
  const auto model = make_short_model(1.0);
  EXPECT_DOUBLE_EQ(model.p_short_device(155.0), 0.0);
  EXPECT_DOUBLE_EQ(model.mean_shorts(155.0), 0.0);
  EXPECT_DOUBLE_EQ(model.chip_yield_shorts(155.0, 1e8, 0.01), 1.0);
}

TEST(ShortModel, MeanShortsLinearInWidth) {
  const auto model = make_short_model(0.999);
  // p_short = 0.33 * 0.001; mean shorts = p_short * W / 4.
  EXPECT_NEAR(model.mean_shorts(160.0), 0.33 * 0.001 * 40.0, 1e-12);
  EXPECT_NEAR(model.mean_shorts(320.0) / model.mean_shorts(160.0), 2.0,
              1e-9);
}

TEST(ShortModel, DevicePShortIncreasingInWidthAndPrmComplement) {
  const auto model = make_short_model(0.999);
  EXPECT_LT(model.p_short_device(80.0), model.p_short_device(160.0));
  const auto worse = make_short_model(0.99);
  EXPECT_LT(model.p_short_device(160.0), worse.p_short_device(160.0));
}

TEST(ShortModel, PoissonClosedFormAgreement) {
  // Poisson pitch: P(>=1 short) = 1 - exp(-λ W p_short).
  cnt::ProcessParams process;
  process.p_metallic = 0.33;
  process.p_remove_m = 0.999;
  const device::ShortModel model(cnt::PitchModel(4.0, 1.0), process);
  const double w = 155.0;
  const double expect = -std::expm1(-(w / 4.0) * 0.33 * 0.001);
  EXPECT_NEAR(model.p_short_device(w) / expect, 1.0, 1e-4);
}

TEST(ShortModel, RequiredPrmIsHigh) {
  // Paper remark: "p_Rm greater than 99.99 % is required" — with 100M
  // devices, noise failure odds 1 %, and 90 % yield, the solver lands in
  // the 99.9+ % regime.
  const double p_rm = device::ShortModel::required_p_rm(
      cnt::PitchModel(4.0, 0.9), 0.33, 155.0, 1e8, 0.01, 0.90);
  EXPECT_GT(p_rm, 0.999);
  EXPECT_LT(p_rm, 1.0);
  // And it satisfies the target.
  cnt::ProcessParams process;
  process.p_metallic = 0.33;
  process.p_remove_m = p_rm;
  const device::ShortModel model(cnt::PitchModel(4.0, 0.9), process);
  EXPECT_NEAR(model.chip_yield_shorts(155.0, 1e8, 0.01), 0.90, 1e-4);
}

TEST(ShortModel, RequiredPrmMonotoneInChipSize) {
  const auto solve = [](double m) {
    return device::ShortModel::required_p_rm(cnt::PitchModel(4.0, 0.9), 0.33,
                                             155.0, m, 0.01, 0.90);
  };
  EXPECT_LT(solve(1e6), solve(1e8));
}

// ------------------------------------------------------ removal tradeoff

TEST(RemovalTradeoff, NormalCdfQuantileRoundTrip) {
  for (double p : {0.01, 0.3, 0.5, 0.9, 0.9999}) {
    EXPECT_NEAR(cnt::normal_cdf(cnt::normal_quantile(p)), p, 1e-10)
        << "p=" << p;
  }
  EXPECT_NEAR(cnt::normal_cdf(0.0), 0.5, 1e-15);
}

TEST(RemovalTradeoff, FrontierIsMonotone) {
  const cnt::RemovalTradeoff process(3.0);
  const auto frontier = process.frontier(0.90, 0.9999, 15);
  ASSERT_EQ(frontier.size(), 15u);
  for (std::size_t i = 1; i < frontier.size(); ++i) {
    EXPECT_GT(frontier[i].p_rm, frontier[i - 1].p_rm);
    EXPECT_GT(frontier[i].p_rs, frontier[i - 1].p_rs);
  }
}

TEST(RemovalTradeoff, BetterSelectivityMeansLessCollateral) {
  const cnt::RemovalTradeoff weak(2.0);
  const cnt::RemovalTradeoff strong(4.0);
  EXPECT_GT(weak.p_rs_at(0.9999), strong.p_rs_at(0.9999));
}

TEST(RemovalTradeoff, PaperWorkingPointSelectivity) {
  // p_Rm = 99.99 % with p_Rs = 30 % needs s = Φ^{-1}(0.9999) - Φ^{-1}(0.30)
  // ≈ 3.72 + 0.52 ≈ 4.24 sigma.
  const double s = cnt::RemovalTradeoff::required_selectivity(0.9999, 0.30);
  EXPECT_NEAR(s, 4.24, 0.05);
  const cnt::RemovalTradeoff process(s);
  EXPECT_NEAR(process.p_rs_at(0.9999), 0.30, 1e-6);
}

TEST(RemovalTradeoff, ProcessAtProducesValidParams) {
  const cnt::RemovalTradeoff process(3.5);
  const auto params = process.process_at(0.9999);
  EXPECT_DOUBLE_EQ(params.p_remove_m, 0.9999);
  EXPECT_GT(params.p_fail(), params.p_metallic);
  EXPECT_NO_THROW(params.validate());
}

// ------------------------------------------------------------- floorplan

TEST(Floorplan, PlacesEveryInstanceAndDerivesDensity) {
  const auto lib = celllib::make_nangate45_like();
  const auto design = netlist::generate_design("d", lib, 5000, {});
  rng::Xoshiro256 rng(401);
  layout::FloorplanParams params;
  params.row_width = 100.0e3;
  const auto plan = layout::place_design(design, 103.0, params, rng);
  EXPECT_GT(plan.n_rows, 10u);
  EXPECT_GT(plan.windows.size(), 100u);
  EXPECT_NEAR(plan.placed_width / design.total_width(), 1.0, 2.0);  // sanity
  const double density = plan.fets_per_um();
  EXPECT_GT(density, 0.01);
  EXPECT_LT(density, 10.0);
}

TEST(Floorplan, RowWindowsSortedAndWithinRow) {
  const auto lib = celllib::make_nangate45_like();
  const auto design = netlist::generate_design("d", lib, 3000, {});
  rng::Xoshiro256 rng(402);
  layout::FloorplanParams params;
  params.row_width = 50.0e3;
  const auto plan = layout::place_design(design, 103.0, params, rng);
  const auto row0 = plan.row_windows(0);
  ASSERT_FALSE(row0.empty());
  for (std::size_t i = 1; i < row0.size(); ++i) {
    EXPECT_GE(row0[i].x, row0[i - 1].x);
  }
  for (const auto& w : row0) {
    EXPECT_EQ(w.row, 0u);
    EXPECT_GE(w.x, 0.0);
    EXPECT_LE(w.x, params.row_width);
    EXPECT_NEAR(w.y.length(), 103.0, 1e-9);
  }
}

TEST(Floorplan, SegmentWindowsRestrictToCntLength) {
  const auto lib = celllib::make_nangate45_like();
  const auto design = netlist::generate_design("d", lib, 3000, {});
  rng::Xoshiro256 rng(403);
  layout::FloorplanParams params;
  params.row_width = 300.0e3;
  const auto plan = layout::place_design(design, 103.0, params, rng);
  const auto seg = plan.segment_windows(0, 0.0, 50.0e3);
  for (const auto& w : seg) {
    EXPECT_LT(w.x, 50.0e3);
  }
  const auto whole = plan.row_windows(0);
  EXPECT_LE(seg.size(), whole.size());
}

TEST(Floorplan, SamplingCapRespected) {
  const auto lib = celllib::make_nangate45_like();
  const auto design = netlist::generate_design("d", lib, 50000, {});
  rng::Xoshiro256 rng(404);
  layout::FloorplanParams params;
  params.row_width = 100.0e3;
  params.max_instances = 2000;
  const auto plan = layout::place_design(design, 103.0, params, rng);
  // Placed width bounded by ~2000 cells * max cell width.
  EXPECT_LT(plan.placed_width, 2000.0 * 10000.0);
  EXPECT_GT(plan.windows.size(), 10u);
}

TEST(Floorplan, DeterministicGivenSeed) {
  const auto lib = celllib::make_nangate45_like();
  const auto design = netlist::generate_design("d", lib, 2000, {});
  rng::Xoshiro256 a(7), b(7);
  layout::FloorplanParams params;
  const auto p1 = layout::place_design(design, 103.0, params, a);
  const auto p2 = layout::place_design(design, 103.0, params, b);
  ASSERT_EQ(p1.windows.size(), p2.windows.size());
  for (std::size_t i = 0; i < p1.windows.size(); ++i) {
    EXPECT_DOUBLE_EQ(p1.windows[i].x, p2.windows[i].x);
  }
}

}  // namespace
