#include <gtest/gtest.h>

#include <sstream>

#include "celllib/generator.h"
#include "celllib/liberty_lite.h"
#include "celllib/library.h"
#include "util/contracts.h"

namespace {

using namespace cny::celllib;

TEST(Cell, WidthHelpers) {
  Cell c;
  c.name = "T";
  c.width = 500.0;
  c.height = 1400.0;
  c.regions.push_back({Polarity::N, {50.0, 150.0, 200.0, 120.0}});
  c.regions.push_back({Polarity::P, {50.0, 1000.0, 200.0, 180.0}});
  c.transistors.push_back({"MN0", Polarity::N, 120.0, 0});
  c.transistors.push_back({"MN1", Polarity::N, 90.0, 0});
  c.transistors.push_back({"MP0", Polarity::P, 180.0, 1});
  EXPECT_DOUBLE_EQ(c.min_transistor_width(), 90.0);
  EXPECT_EQ(c.transistor_widths().size(), 3u);
  EXPECT_DOUBLE_EQ(c.region_fet_width(0), 120.0);
  EXPECT_DOUBLE_EQ(c.region_fet_width(1), 180.0);
  EXPECT_EQ(c.regions_of(Polarity::N), std::vector<int>{0});
  // 90 <= 100 → region 0 is critical at threshold 100; region 1 is not.
  EXPECT_EQ(c.critical_regions(Polarity::N, 100.0), std::vector<int>{0});
  EXPECT_TRUE(c.critical_regions(Polarity::P, 100.0).empty());
  EXPECT_NO_THROW(c.validate());
}

TEST(Cell, ValidationCatchesInconsistencies) {
  Cell c;
  c.name = "BAD";
  c.width = 100.0;
  c.height = 100.0;
  c.regions.push_back({Polarity::N, {0.0, 0.0, 50.0, 50.0}});
  c.transistors.push_back({"MN0", Polarity::P, 50.0, 0});  // polarity mismatch
  EXPECT_THROW(c.validate(), cny::ContractViolation);
  c.transistors[0].polarity = Polarity::N;
  EXPECT_NO_THROW(c.validate());
  c.regions[0].rect.w = 200.0;  // outside cell box
  EXPECT_THROW(c.validate(), cny::ContractViolation);
}

TEST(Library, FindAndDuplicateDetection) {
  Library lib("test", 45.0);
  Cell c;
  c.name = "INV_X1";
  c.width = 100.0;
  c.height = 100.0;
  c.regions.push_back({Polarity::N, {10.0, 10.0, 40.0, 40.0}});
  c.transistors.push_back({"MN0", Polarity::N, 40.0, 0});
  lib.add(c);
  EXPECT_NE(lib.find("INV_X1"), nullptr);
  EXPECT_EQ(lib.find("NOPE"), nullptr);
  lib.add(c);  // duplicate
  EXPECT_THROW(lib.validate(), cny::ContractViolation);
}

TEST(Library, ScalingIsLinearEverywhere) {
  const Library lib = make_nangate45_like();
  const Library scaled = lib.scaled(22.5);  // exactly half
  ASSERT_EQ(scaled.size(), lib.size());
  EXPECT_DOUBLE_EQ(scaled.node_nm(), 22.5);
  const Cell& a = lib.cells()[10];
  const Cell& b = scaled.cells()[10];
  EXPECT_DOUBLE_EQ(b.width, a.width * 0.5);
  EXPECT_DOUBLE_EQ(b.height, a.height * 0.5);
  EXPECT_DOUBLE_EQ(b.transistors[0].width, a.transistors[0].width * 0.5);
  EXPECT_DOUBLE_EQ(b.regions[0].rect.y, a.regions[0].rect.y * 0.5);
  EXPECT_DOUBLE_EQ(b.pins[0].x, a.pins[0].x * 0.5);
  EXPECT_NO_THROW(scaled.validate());
}

TEST(Library, UpsizeGrowsWidthsAndRegions) {
  Library lib = make_nangate45_like();
  const double w_min = 155.0;
  lib.upsize_transistors([&](double w) { return std::max(w, w_min); });
  for (const auto& c : lib.cells()) {
    EXPECT_GE(c.min_transistor_width(), w_min) << c.name;
    for (std::size_t r = 0; r < c.regions.size(); ++r) {
      EXPECT_GE(c.regions[r].rect.h + 1e-9,
                c.region_fet_width(static_cast<int>(r)))
          << c.name;
    }
  }
  EXPECT_NO_THROW(lib.validate());
}

TEST(Library, UpsizeRejectsShrinking) {
  Library lib = make_nangate45_like();
  EXPECT_THROW(lib.upsize_transistors([](double w) { return w * 0.5; }),
               cny::ContractViolation);
}

TEST(Generator, Nangate45Has134ValidCells) {
  const Library lib = make_nangate45_like();
  EXPECT_EQ(lib.size(), 134u);
  EXPECT_DOUBLE_EQ(lib.node_nm(), 45.0);
  EXPECT_NO_THROW(lib.validate());
  EXPECT_DOUBLE_EQ(lib.min_transistor_width(), 90.0);
  // The Fig 3.2 cell exists and is folded (multiple n regions).
  const Cell* aoi = lib.find("AOI222_X1");
  ASSERT_NE(aoi, nullptr);
  EXPECT_GE(aoi->regions_of(Polarity::N).size(), 2u);
}

TEST(Generator, Commercial65Has775ValidCells) {
  const Library lib = make_commercial65_like();
  EXPECT_EQ(lib.size(), 775u);
  EXPECT_DOUBLE_EQ(lib.node_nm(), 65.0);
  EXPECT_NO_THROW(lib.validate());
  // VT variants share geometry with the base cell.
  const Cell* base = lib.find("NAND2_X1");
  const Cell* lvt = lib.find("NAND2_LVT_X1");
  ASSERT_NE(base, nullptr);
  ASSERT_NE(lvt, nullptr);
  EXPECT_DOUBLE_EQ(base->width, lvt->width);
  EXPECT_EQ(base->transistors.size(), lvt->transistors.size());
}

TEST(Generator, DeterministicAcrossCalls) {
  const Library a = make_nangate45_like();
  const Library b = make_nangate45_like();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.cells()[i].name, b.cells()[i].name);
    EXPECT_DOUBLE_EQ(a.cells()[i].width, b.cells()[i].width);
    EXPECT_DOUBLE_EQ(a.cells()[i].regions[0].rect.y,
                     b.cells()[i].regions[0].rect.y);
  }
}

TEST(Generator, SequentialCellsKeepMinimumInternals) {
  const Library lib = make_nangate45_like();
  const Cell* x1 = lib.find("DFF_X1");
  const Cell* x2 = lib.find("DFF_X2");
  ASSERT_NE(x1, nullptr);
  ASSERT_NE(x2, nullptr);
  // Internal minimum stays the library minimum at every drive.
  EXPECT_DOUBLE_EQ(x1->min_transistor_width(), 90.0);
  EXPECT_DOUBLE_EQ(x2->min_transistor_width(), 90.0);
}

TEST(Generator, DriveScalesLogicWidths) {
  const Library lib = make_nangate45_like();
  const Cell* x1 = lib.find("NAND2_X1");
  const Cell* x2 = lib.find("NAND2_X2");
  ASSERT_NE(x1, nullptr);
  ASSERT_NE(x2, nullptr);
  double max1 = 0.0, max2 = 0.0;
  for (const auto& t : x1->transistors) max1 = std::max(max1, t.width);
  for (const auto& t : x2->transistors) max2 = std::max(max2, t.width);
  EXPECT_NEAR(max2 / max1, 2.0, 0.01);
}

TEST(LibertyLite, RoundTripIsLossless) {
  const Library lib = make_nangate45_like();
  const std::string text = to_liberty_lite(lib);
  const Library parsed = from_liberty_lite(text);
  ASSERT_EQ(parsed.size(), lib.size());
  EXPECT_EQ(parsed.name(), lib.name());
  EXPECT_DOUBLE_EQ(parsed.node_nm(), lib.node_nm());
  for (std::size_t i = 0; i < lib.size(); ++i) {
    const Cell& a = lib.cells()[i];
    const Cell& b = parsed.cells()[i];
    EXPECT_EQ(a.name, b.name);
    EXPECT_EQ(a.family, b.family);
    EXPECT_EQ(a.drive, b.drive);
    EXPECT_EQ(a.kind, b.kind);
    EXPECT_DOUBLE_EQ(a.width, b.width);
    ASSERT_EQ(a.transistors.size(), b.transistors.size());
    for (std::size_t t = 0; t < a.transistors.size(); ++t) {
      EXPECT_DOUBLE_EQ(a.transistors[t].width, b.transistors[t].width);
      EXPECT_EQ(a.transistors[t].region, b.transistors[t].region);
    }
    ASSERT_EQ(a.regions.size(), b.regions.size());
    for (std::size_t r = 0; r < a.regions.size(); ++r) {
      EXPECT_EQ(a.regions[r].polarity, b.regions[r].polarity);
      EXPECT_DOUBLE_EQ(a.regions[r].rect.y, b.regions[r].rect.y);
    }
    ASSERT_EQ(a.pins.size(), b.pins.size());
  }
}

TEST(LibertyLite, FileRoundTrip) {
  const Library lib = make_nangate45_like();
  const std::string path = ::testing::TempDir() + "/lib_roundtrip.lib";
  save_liberty_lite(lib, path);
  const Library loaded = load_liberty_lite(path);
  EXPECT_EQ(loaded.size(), lib.size());
}

TEST(LibertyLite, ParserRejectsMalformedInput) {
  EXPECT_THROW(from_liberty_lite("garbage here\n"), cny::ContractViolation);
  EXPECT_THROW(from_liberty_lite("library \"x\" node 45\ncell A\n"),
               cny::ContractViolation);
  // Missing endlibrary.
  EXPECT_THROW(from_liberty_lite("library \"x\" node 45\n"),
               cny::ContractViolation);
  // Region before any cell.
  EXPECT_THROW(
      from_liberty_lite("library \"x\" node 45\nregion N x 0 y 0 w 1 h 1\n"),
      cny::ContractViolation);
}

TEST(LibertyLite, ParserReportsLineNumbers) {
  try {
    (void)from_liberty_lite("library \"x\" node 45\nbogus line\n");
    FAIL();
  } catch (const cny::ContractViolation& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(PolarityAndKind, StringRoundTrips) {
  EXPECT_EQ(polarity_from_string("N"), Polarity::N);
  EXPECT_EQ(polarity_from_string("P"), Polarity::P);
  EXPECT_THROW(polarity_from_string("Q"), cny::ContractViolation);
  EXPECT_EQ(kind_from_string("comb"), CellKind::Combinational);
  EXPECT_EQ(kind_from_string("seq"), CellKind::Sequential);
  EXPECT_EQ(kind_from_string("buf"), CellKind::Buffer);
  EXPECT_THROW(kind_from_string("x"), cny::ContractViolation);
}

}  // namespace
