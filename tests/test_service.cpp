// The serving layer's contracts, pinned:
//   * canonical JSON and frames: serialize→parse→serialize is byte-stable,
//     doubles cross the wire bit-exactly;
//   * malformed/oversized/truncated frames produce error responses, never
//     crashes, and the server keeps serving afterwards;
//   * the batching determinism contract: a response is a function of the
//     request only — a loopback server hammered by concurrent clients
//     returns bit-identical results to direct run_flow calls on an
//     equivalently warmed model, and solo vs coalesced-burst responses are
//     byte-identical;
//   * the session cache actually shares one warm FailureModel across
//     clients (and LRU-evicts past capacity).
//   * failure semantics (protocol v3): deadlines shed unevaluated work,
//     the admission queue rejects overload with a transient code, drain
//     finishes queued work while refusing new frames, the fault-injection
//     harness is deterministic, and the retrying client turns every
//     injected wire failure back into byte-identical results.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <future>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "celllib/generator.h"
#include "cnt/removal_tradeoff.h"
#include "device/failure_model.h"
#include "netlist/design_generator.h"
#include "obs/log.h"
#include "obs/openmetrics.h"
#include "obs/trace.h"
#include "service/client.h"
#include "service/faults.h"
#include "service/json.h"
#include "service/protocol.h"
#include "service/server.h"
#include "service/session_cache.h"
#include "yield/flow.h"
#include "yield/wmin_solver.h"

namespace {

using namespace cny;
using service::FlowRequest;
using service::Frame;
using service::FrameType;
using service::Json;

// --- JSON ------------------------------------------------------------------

TEST(ServiceJson, RoundTripsScalarsByteStable) {
  for (const double v : {0.1, 1.0 / 3.0, 1e-12, 6.02214076e23, -0.0, 155.25,
                         0.9999999999999999}) {
    const std::string once = Json::number(v).dump();
    const Json parsed = Json::parse(once);
    EXPECT_EQ(parsed.dump(), once);
    EXPECT_EQ(parsed.as_double(), v);  // bit-exact, not approximate
  }
  const std::string u = Json::number(std::uint64_t{18446744073709551615ull}).dump();
  EXPECT_EQ(Json::parse(u).as_u64(), 18446744073709551615ull);
  EXPECT_EQ(Json::parse("\"a\\u0041\\n\\\"\"").as_string(), "aA\n\"");
}

TEST(ServiceJson, RejectsGarbage) {
  EXPECT_THROW(Json::parse(""), service::JsonError);
  EXPECT_THROW(Json::parse("{\"a\":1,}"), service::JsonError);
  EXPECT_THROW(Json::parse("[1 2]"), service::JsonError);
  EXPECT_THROW(Json::parse("{\"a\":1} trailing"), service::JsonError);
  EXPECT_THROW(Json::parse("01"), service::JsonError);
  EXPECT_THROW(Json::parse("\"\\x\""), service::JsonError);
  EXPECT_THROW(Json::parse("nulll"), service::JsonError);
  // Depth bomb: must throw (bounded recursion), not overflow the stack.
  EXPECT_THROW(Json::parse(std::string(10000, '[')), service::JsonError);
  EXPECT_THROW(Json::parse("{\"a\":1,\"a\":2}"), service::JsonError);
}

// --- protocol codecs -------------------------------------------------------

TEST(ServiceProtocol, FlowParamsRoundTripByteStable) {
  yield::FlowParams params;
  params.yield_desired = 0.915;
  params.chip_transistors = 2.5e8;
  params.mc_samples = 12345;
  params.seed = 0xDEADBEEFCAFEull;
  params.mc_streams = 7;
  const std::string once = service::to_json(params).dump();
  const auto back = service::flow_params_from_json(Json::parse(once));
  EXPECT_EQ(service::to_json(back).dump(), once);
  EXPECT_EQ(back.yield_desired, params.yield_desired);
  EXPECT_EQ(back.seed, params.seed);
  EXPECT_EQ(back.mc_streams, params.mc_streams);
}

TEST(ServiceProtocol, FlowResultRoundTripByteStable) {
  yield::FlowResult result;
  result.m_r_min = 360.1234567890123;
  result.m_min_uncorrelated = 33061224;
  for (const auto s :
       {yield::Strategy::Uncorrelated, yield::Strategy::DirectionalOnly,
        yield::Strategy::AlignedOneRow, yield::Strategy::AlignedTwoRows}) {
    yield::StrategyResult r;
    r.strategy = s;
    r.relaxation = 360.0 / 7.0;
    r.w_min = 103.45678901234567;
    r.power_penalty = 0.123456789;
    r.area_penalty = 0.0123;
    r.cells_widened = 17;
    result.strategies.push_back(r);
  }
  const std::string once = service::to_json(result).dump();
  const auto back = service::flow_result_from_json(Json::parse(once));
  EXPECT_EQ(service::to_json(back).dump(), once);
  EXPECT_EQ(back.get(yield::Strategy::AlignedOneRow).w_min,
            result.get(yield::Strategy::AlignedOneRow).w_min);
}

TEST(ServiceProtocol, FrameHeaderChecks) {
  const std::string frame = service::encode_frame(FrameType::Ping, "{}");
  ASSERT_EQ(frame.size(), service::kHeaderBytes + 2);
  const Frame decoded = service::decode_frame(frame);
  EXPECT_EQ(decoded.type, FrameType::Ping);
  EXPECT_EQ(decoded.payload, "{}");

  // Truncated header.
  EXPECT_THROW(service::decode_frame("CNY"), service::ProtocolError);
  // Bad magic.
  std::string bad = frame;
  bad[0] = 'X';
  EXPECT_THROW(service::decode_frame(bad), service::ProtocolError);
  // Version mismatch.
  bad = frame;
  bad[4] = 99;
  EXPECT_THROW(service::decode_frame(bad), service::ProtocolError);
  // Unknown type.
  bad = frame;
  bad[8] = 77;
  EXPECT_THROW(service::decode_frame(bad), service::ProtocolError);
  // Announced payload larger than the buffer (truncated frame).
  bad = frame;
  bad[12] = 100;
  EXPECT_THROW(service::decode_frame(bad), service::ProtocolError);
  // Oversized announced payload.
  bad = frame;
  bad[14] = 0x7F;  // ~8 GiB > kMaxPayloadBytes
  bad[15] = 0x7F;
  EXPECT_THROW(service::decode_frame(bad), service::ProtocolError);
}

TEST(ServiceProtocol, MisshapenErrorPayloadFallsBackToMalformedError) {
  // Valid JSON, wrong shape: must come back as the malformed_error
  // fallback, never escape as a raw decode exception.
  for (const char* payload :
       {"{\"error\":\"oops\"}", "{\"error\":{\"code\":5,\"message\":\"x\"}}",
        "{}", "not json"}) {
    EXPECT_EQ(service::error_from_payload(payload).code, "malformed_error")
        << payload;
  }
  EXPECT_EQ(service::error_from_payload(
                "{\"error\":{\"code\":\"c\",\"message\":\"m\"}}")
                .code,
            "c");
}

TEST(ServiceProtocol, ValidateRejectsOutOfRange) {
  FlowRequest request;  // defaults are valid
  EXPECT_NO_THROW(service::validate(request));
  auto bad = request;
  bad.library = "tsmc5";
  EXPECT_THROW(service::validate(bad), service::ProtocolError);
  bad = request;
  bad.params.yield_desired = 1.5;
  EXPECT_THROW(service::validate(bad), service::ProtocolError);
  bad = request;
  bad.params.mc_samples = 0;
  EXPECT_THROW(service::validate(bad), service::ProtocolError);
  bad = request;
  bad.process.pitch_cv = -1.0;
  EXPECT_THROW(service::validate(bad), service::ProtocolError);
  bad = request;
  bad.process.p_metallic = 0.0;
  bad.process.p_remove_s = 0.0;  // p_f = 0: W_min undefined
  EXPECT_THROW(service::validate(bad), service::ProtocolError);
}

// --- server helpers --------------------------------------------------------

/// Small MC budget + few interpolant knots keep each request fast; the
/// *reference* model below must warm with the same knot count.
constexpr std::size_t kTestKnots = 17;
constexpr std::size_t kTestSamples = 600;

service::ServerOptions loopback_options() {
  service::ServerOptions options;
  options.listen = false;
  options.interpolant_knots = kTestKnots;
  return options;
}

FlowRequest small_request(std::uint64_t seed, double yield) {
  FlowRequest request;
  request.params.mc_samples = kTestSamples;
  request.params.seed = seed;
  request.params.yield_desired = yield;
  return request;
}

/// The model exactly as a session warms it (same bracket, same knots).
device::FailureModel reference_model() {
  cnt::ProcessParams process;
  process.p_metallic = 0.33;
  process.p_remove_s = 0.30;
  device::FailureModel model(cnt::PitchModel(4.0, 0.9), process);
  const yield::WminRequest bracket;
  model.enable_interpolation(bracket.w_lo, bracket.w_hi, kTestKnots, 1);
  return model;
}

service::ServiceErrorInfo expect_error_frame(const std::string& response) {
  const Frame frame = service::decode_frame(response);
  EXPECT_EQ(frame.type, FrameType::Error);
  return service::error_from_payload(frame.payload);
}

// --- loopback server -------------------------------------------------------

TEST(ServiceServer, MalformedFramesGetErrorResponsesNotCrashes) {
  service::YieldServer server(loopback_options());
  server.start();

  // Garbage bytes (too short to even hold a header).
  EXPECT_EQ(expect_error_frame(server.submit("hello").get()).code,
            "bad_frame");
  // Valid header, payload that is not JSON.
  EXPECT_EQ(expect_error_frame(
                server.submit(service::encode_frame(FrameType::FlowRequest,
                                                    "not json at all"))
                    .get())
                .code,
            "bad_request");
  // Valid JSON, missing fields.
  EXPECT_EQ(expect_error_frame(
                server.submit(service::encode_frame(FrameType::FlowRequest,
                                                    "{\"library\":\"x\"}"))
                    .get())
                .code,
            "bad_request");
  // Well-formed request, out-of-range parameter.
  auto bad = small_request(1, 0.9);
  bad.params.yield_desired = 2.0;
  EXPECT_EQ(
      expect_error_frame(server.submit(service::encode_flow_request(bad)).get())
          .code,
      "bad_request");
  // A response-type frame is not a request.
  EXPECT_EQ(expect_error_frame(
                server.submit(service::encode_frame(FrameType::Pong, "{}"))
                    .get())
                .code,
            "unexpected_frame");
  // Truncated frame: header announces more payload than present.
  std::string truncated =
      service::encode_flow_request(small_request(1, 0.9));
  truncated.resize(truncated.size() - 10);
  EXPECT_EQ(expect_error_frame(server.submit(truncated).get()).code,
            "bad_frame");

  // After all of that abuse the server still serves.
  service::YieldClient client(server);
  EXPECT_NE(client.ping().find("\"protocol\":" +
                               std::to_string(service::kProtocolVersion)),
            std::string::npos);
  const auto result = client.call(small_request(1, 0.9));
  EXPECT_EQ(result.strategies.size(), 4u);
  server.stop();
}

TEST(ServiceServer, PingReportsVersionAndShutdownUnblocksWait) {
  service::YieldServer server(loopback_options());
  server.start();
  service::YieldClient client(server);
  const std::string pong = client.ping();
  EXPECT_NE(pong.find(service::kVersionString), std::string::npos);
  client.shutdown_server();
  server.wait_shutdown();  // must return promptly once shutdown was acked
  server.stop();
}

// The acceptance test: one warm FailureModel serves >= 8 concurrent
// clients, every response bit-identical to a direct run_flow call on an
// equivalently warmed model.
TEST(ServiceServer, EightConcurrentClientsMatchDirectRunFlowBitExactly) {
  service::YieldServer server(loopback_options());
  server.start();

  struct Case {
    std::uint64_t seed;
    double yield;
  };
  std::vector<Case> cases;
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    cases.push_back({seed, 0.88});
    cases.push_back({seed, 0.92});
  }

  std::vector<yield::FlowResult> served(cases.size());
  std::vector<std::thread> clients;
  clients.reserve(cases.size());
  for (std::size_t i = 0; i < cases.size(); ++i) {
    clients.emplace_back([&, i] {
      service::YieldClient client(server);
      served[i] = client.call(small_request(cases[i].seed, cases[i].yield));
    });
  }
  for (auto& t : clients) t.join();

  const auto stats = server.stats();
  EXPECT_EQ(stats.responses, cases.size());
  EXPECT_EQ(stats.sessions_built, 1u) << "all clients must share one warm "
                                         "session";

  const auto model = reference_model();
  const auto lib = celllib::make_nangate45_like();
  const auto design = netlist::make_openrisc_like(lib);
  for (std::size_t i = 0; i < cases.size(); ++i) {
    yield::FlowParams params;
    params.mc_samples = kTestSamples;
    params.seed = cases[i].seed;
    params.yield_desired = cases[i].yield;
    params.n_threads = 1;  // responses are thread-count invariant
    const auto direct = yield::run_flow(lib, design, model, params);
    ASSERT_EQ(served[i].strategies.size(), direct.strategies.size());
    EXPECT_EQ(served[i].m_r_min, direct.m_r_min);
    EXPECT_EQ(served[i].m_min_uncorrelated, direct.m_min_uncorrelated);
    for (std::size_t s = 0; s < direct.strategies.size(); ++s) {
      const auto& a = served[i].strategies[s];
      const auto& b = direct.strategies[s];
      EXPECT_EQ(a.strategy, b.strategy);
      EXPECT_EQ(a.relaxation, b.relaxation) << "case " << i << " strategy " << s;
      EXPECT_EQ(a.w_min, b.w_min) << "case " << i << " strategy " << s;
      EXPECT_EQ(a.power_penalty, b.power_penalty);
      EXPECT_EQ(a.area_penalty, b.area_penalty);
      EXPECT_EQ(a.cells_widened, b.cells_widened);
    }
  }
  server.stop();
}

// Batching must be invisible: the response frame for a request served alone
// equals, byte for byte, the one served amid a coalesced burst.
TEST(ServiceServer, SoloAndCoalescedBurstResponsesAreByteIdentical) {
  const auto probe = service::encode_flow_request(small_request(42, 0.9));

  std::string solo;
  {
    service::YieldServer server(loopback_options());
    server.start();
    solo = server.submit(probe).get();
    server.stop();
  }

  std::string in_burst;
  {
    auto options = loopback_options();
    options.coalesce_window_us = 20000;  // make the burst coalesce for sure
    service::YieldServer server(options);
    server.start();
    std::vector<std::future<std::string>> burst;
    burst.push_back(server.submit(probe));
    for (std::uint64_t seed = 100; seed < 107; ++seed) {
      burst.push_back(server.submit(
          service::encode_flow_request(small_request(seed, 0.85))));
    }
    in_burst = burst.front().get();
    for (std::size_t i = 1; i < burst.size(); ++i) burst[i].get();
    const auto stats = server.stats();
    EXPECT_EQ(stats.batched_requests, 8u);
    EXPECT_LT(stats.batches, stats.batched_requests)
        << "burst should have coalesced into fewer run_flow_batch calls";
    server.stop();
  }

  EXPECT_EQ(service::decode_frame(solo).type, FrameType::FlowResponse);
  EXPECT_EQ(solo, in_burst);
}

// --- scenario fields (protocol v2) ----------------------------------------

TEST(ServiceProtocol, ScenarioRequestRoundTripsByteStableAndEmptyIsOmitted) {
  FlowRequest request = small_request(3, 0.9);
  // Empty spec: the payload must carry no scenario key at all, keeping
  // open-only exchanges byte-identical to the v1 payload shape.
  EXPECT_EQ(service::to_json(request).dump().find("scenario"),
            std::string::npos);

  request.params.scenario.shorts = cny::scenario::ShortFailure{0.99999, 0.02};
  request.params.scenario.length =
      cny::scenario::FiniteLength{150.0e3, 0.25, 12};
  request.params.scenario.removal =
      cny::scenario::RemovalFrontier{5.5, 0.9995};
  const std::string once = service::to_json(request).dump();
  const auto back = service::flow_request_from_json(Json::parse(once));
  EXPECT_EQ(service::to_json(back).dump(), once);
  ASSERT_TRUE(back.params.scenario.shorts.has_value());
  EXPECT_EQ(back.params.scenario.shorts->p_rm, 0.99999);
  ASSERT_TRUE(back.params.scenario.length.has_value());
  EXPECT_EQ(back.params.scenario.length->sample_devices, 12);
  ASSERT_TRUE(back.params.scenario.removal.has_value());
  EXPECT_EQ(back.params.scenario.removal->selectivity, 5.5);
}

TEST(ServiceServer, VersionMismatchedScenarioRequestGetsCleanErrorFrame) {
  service::YieldServer server(loopback_options());
  server.start();

  FlowRequest request = small_request(1, 0.9);
  request.params.scenario.removal = cny::scenario::RemovalFrontier{};
  std::string frame = service::encode_flow_request(request);
  frame[4] = 1;  // rewrite the header version to the pre-scenario v1
  const auto error = expect_error_frame(server.submit(frame).get());
  EXPECT_EQ(error.code, "bad_frame");
  EXPECT_NE(error.message.find("version"), std::string::npos);

  // The mismatch is rejected at the header, never parsed — and the server
  // keeps serving current-version traffic afterwards.
  service::YieldClient client(server);
  EXPECT_EQ(client.call(small_request(1, 0.9)).strategies.size(), 4u);
  server.stop();
}

// A scenario-bearing request is served bit-identically to direct run_flow
// against an equivalently warmed model at the *derived* corner.
TEST(ServiceServer, ScenarioResponseMatchesDirectRunFlowBitExactly) {
  service::YieldServer server(loopback_options());
  server.start();

  FlowRequest request = small_request(11, 0.9);
  request.params.scenario.removal = cny::scenario::RemovalFrontier{6.0, 0.9999};
  request.params.scenario.length =
      cny::scenario::FiniteLength{150.0e3, 0.3, 12};
  service::YieldClient client(server);
  const auto served = client.call(request);
  EXPECT_EQ(server.stats().sessions_built, 1u);

  cnt::ProcessParams corner;
  corner.p_metallic = request.process.p_metallic;
  corner.p_remove_s = cnt::RemovalTradeoff(6.0).p_rs_at(0.9999);
  device::FailureModel model(cnt::PitchModel(4.0, 0.9), corner);
  const yield::WminRequest bracket;
  model.enable_interpolation(bracket.w_lo, bracket.w_hi, kTestKnots, 1);
  const auto lib = celllib::make_nangate45_like();
  const auto design = netlist::make_openrisc_like(lib);
  auto params = request.params;
  params.n_threads = 1;
  const auto direct = yield::run_flow(lib, design, model, params);

  ASSERT_EQ(served.strategies.size(), direct.strategies.size());
  EXPECT_EQ(served.derived_p_rs, direct.derived_p_rs);
  for (std::size_t i = 0; i < direct.strategies.size(); ++i) {
    EXPECT_EQ(served.strategies[i].w_min, direct.strategies[i].w_min);
    EXPECT_EQ(served.strategies[i].relaxation,
              direct.strategies[i].relaxation);
    EXPECT_EQ(served.strategies[i].length_scale,
              direct.strategies[i].length_scale);
  }
  server.stop();
}

// One infeasible scenario must fail alone: the rest of its coalesced batch
// still gets real responses.
TEST(ServiceServer, InfeasibleScenarioFailsAloneInABurst) {
  auto options = loopback_options();
  options.coalesce_window_us = 20000;  // force one batch
  service::YieldServer server(options);
  server.start();

  FlowRequest good = small_request(5, 0.9);
  FlowRequest bad = small_request(6, 0.9);
  bad.params.scenario.shorts = cny::scenario::ShortFailure{0.999, 0.01};

  auto good_future = server.submit(service::encode_flow_request(good));
  auto bad_future = server.submit(service::encode_flow_request(bad));
  const Frame good_frame = service::decode_frame(good_future.get());
  const Frame bad_frame = service::decode_frame(bad_future.get());
  EXPECT_EQ(good_frame.type, FrameType::FlowResponse);
  ASSERT_EQ(bad_frame.type, FrameType::Error);
  const auto error = service::error_from_payload(bad_frame.payload);
  EXPECT_EQ(error.code, "evaluation_failed");
  EXPECT_NE(error.message.find("short mode"), std::string::npos);
  server.stop();
}

// The session cache keys on the derived corner: a RemovalFrontier scenario
// and a plain request stating the earned corner explicitly share one warm
// model.
TEST(ServiceSessionCache, ScenarioAndExplicitCornerShareOneSession) {
  service::SessionCache cache(4, 9, 1);
  FlowRequest scenario_request;
  scenario_request.params.scenario.removal =
      cny::scenario::RemovalFrontier{5.0, 0.999};
  FlowRequest explicit_request;
  explicit_request.process.p_remove_s =
      cnt::RemovalTradeoff(5.0).p_rs_at(0.999);

  const auto a = cache.acquire(service::session_key(scenario_request));
  const auto b = cache.acquire(service::session_key(explicit_request));
  EXPECT_EQ(a.get(), b.get());
  EXPECT_EQ(cache.sessions_built(), 1u);
  // The warm model already sits at the derived corner.
  EXPECT_EQ(a->model().process().p_remove_s,
            explicit_request.process.p_remove_s);
}

// --- session cache ---------------------------------------------------------

TEST(ServiceSessionCache, SharesWarmSessionsAndEvictsLru) {
  service::SessionCache cache(1, 9, 1);
  FlowRequest a;  // CV = 0.9 corner
  FlowRequest b;
  b.process.pitch_cv = 1.0;  // distinct corner

  const auto sa = cache.acquire(service::session_key(a));
  EXPECT_EQ(cache.sessions_built(), 1u);
  EXPECT_EQ(cache.acquire(service::session_key(a)).get(), sa.get());
  EXPECT_EQ(cache.sessions_built(), 1u);  // hit, no rebuild

  const auto sb = cache.acquire(service::session_key(b));
  EXPECT_EQ(cache.sessions_built(), 2u);
  EXPECT_EQ(cache.size(), 1u);  // capacity 1: a was evicted

  // sa is still usable after eviction (shared ownership) ...
  EXPECT_GT(sa->model().p_f(100.0), 0.0);
  // ... and re-acquiring its key warms a fresh session.
  const auto sa2 = cache.acquire(service::session_key(a));
  EXPECT_EQ(cache.sessions_built(), 3u);
  EXPECT_NE(sa2.get(), sa.get());
  (void)sb;
}

// --- TCP transport ---------------------------------------------------------

TEST(ServiceServer, TcpEndToEndOnEphemeralPort) {
  auto options = loopback_options();
  options.listen = true;
  options.port = 0;  // ephemeral: no flaky fixed-port collisions
  service::YieldServer server(options);
  server.start();
  ASSERT_GT(server.port(), 0);

  service::YieldClient client("127.0.0.1", server.port());
  EXPECT_NE(client.ping().find("\"version\""), std::string::npos);

  auto request = small_request(7, 0.9);
  request.params.mc_samples = 200;
  const auto over_tcp = client.call(request);

  service::YieldClient local(server);
  const auto over_loopback = local.call(request);
  EXPECT_EQ(service::to_json(over_tcp).dump(),
            service::to_json(over_loopback).dump());

  service::YieldClient closer("127.0.0.1", server.port());
  closer.shutdown_server();
  server.wait_shutdown();
  server.stop();
}

// --- failure semantics (protocol v3) ---------------------------------------

TEST(ServiceProtocol, DeadlineOmittedWhenZeroKeepsPayloadByteIdentical) {
  // The 0.2.0 back-compat pin: a deadline-less request payload must carry
  // no deadline key at all, so its bytes are identical to the pre-v3 form.
  FlowRequest request = small_request(1, 0.9);
  const std::string legacy = service::to_json(request).dump();
  EXPECT_EQ(legacy.find("deadline_ms"), std::string::npos);

  request.deadline_ms = 250;
  const std::string once = service::to_json(request).dump();
  EXPECT_NE(once.find("\"deadline_ms\":250"), std::string::npos);
  const auto back = service::flow_request_from_json(Json::parse(once));
  EXPECT_EQ(back.deadline_ms, 250u);
  EXPECT_EQ(service::to_json(back).dump(), once);
  // Stripping the deadline restores the legacy bytes exactly.
  auto stripped = back;
  stripped.deadline_ms = 0;
  EXPECT_EQ(service::to_json(stripped).dump(), legacy);

  auto bad = request;
  bad.deadline_ms = 86'400'001;
  EXPECT_THROW(service::validate(bad), service::ProtocolError);
}

TEST(ServiceProtocol, ErrorTaxonomySplitsTransientFromTerminal) {
  for (const char* code : {"transport", "server_overloaded", "try_later",
                           "shutting_down", "deadline_exceeded"}) {
    EXPECT_TRUE(service::is_transient_error(code)) << code;
  }
  for (const char* code :
       {"bad_frame", "bad_request", "unexpected_frame", "evaluation_failed",
        "internal_error", "malformed_error", ""}) {
    EXPECT_FALSE(service::is_transient_error(code)) << code;
  }
}

TEST(ServiceFaults, PlanIsDeterministicPeriodicAndCapped) {
  service::FaultPlanOptions options;
  options.seed = 7;
  options.period = 3;
  options.faults = service::fault_specs_from_names("drop,reject");
  service::FaultPlan a(options);
  service::FaultPlan b(options);
  std::size_t injected = 0;
  for (int n = 0; n < 12; ++n) {
    const auto fa = a.next();
    const auto fb = b.next();
    ASSERT_EQ(fa.has_value(), fb.has_value()) << "ordinal " << n;
    if (fa) {
      EXPECT_EQ(fa->kind, fb->kind) << "ordinal " << n;
      injected += 1;
    }
  }
  EXPECT_EQ(injected, 4u);  // exactly one per period of 3
  EXPECT_EQ(a.injected(), 4u);

  // max_faults caps total injections, so a finite retry budget drains any
  // workload.
  options.max_faults = 2;
  service::FaultPlan capped(options);
  std::size_t capped_count = 0;
  for (int n = 0; n < 60; ++n) {
    if (capped.next()) capped_count += 1;
  }
  EXPECT_EQ(capped_count, 2u);

  // Defaults never inject; unknown fault names fail loudly.
  service::FaultPlan off;
  EXPECT_FALSE(off.enabled());
  EXPECT_FALSE(off.next().has_value());
  EXPECT_THROW(service::fault_specs_from_names("drop,flood"),
               std::invalid_argument);
}

TEST(ServiceServer, PongSurfacesStatsCounters) {
  service::YieldServer server(loopback_options());
  server.start();
  service::YieldClient client(server);
  const std::string pong = client.ping();
  for (const char* key :
       {"\"overload_rejects\"", "\"deadline_sheds\"", "\"faults_injected\"",
        "\"frames_in\"", "\"responses\"", "\"merged_kernel_hits\""}) {
    EXPECT_NE(pong.find(key), std::string::npos) << key;
  }
  server.stop();
}

// A coalesced group of structurally identical jobs (one session key, same
// design) shares its exact-path p_F widths through one batched kernel
// pre-pass; the merged_kernel_hits counter records the duplicate
// evaluations saved. A solo request has nothing to merge with and must
// leave the counter at zero.
TEST(ServiceServer, CoalescedGroupMergesExactKernelEvaluations) {
  {
    service::YieldServer server(loopback_options());
    server.start();
    server.submit(service::encode_flow_request(small_request(1, 0.9))).get();
    EXPECT_EQ(server.stats().merged_kernel_hits, 0u)
        << "a solo request must not count merged hits";
    server.stop();
  }
  auto options = loopback_options();
  options.coalesce_window_us = 20000;  // make the burst coalesce for sure
  service::YieldServer server(options);
  server.start();
  std::vector<std::future<std::string>> burst;
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    burst.push_back(
        server.submit(service::encode_flow_request(small_request(seed, 0.9))));
  }
  for (auto& f : burst) {
    EXPECT_EQ(service::decode_frame(f.get()).type, FrameType::FlowResponse);
  }
  const auto stats = server.stats();
  EXPECT_LT(stats.batches, stats.batched_requests)
      << "burst should have coalesced";
  // The default design's spectrum has widths above the session
  // interpolant's bracket (the exact path); every job past the first in a
  // group re-requests them, and each re-request is one merged hit.
  EXPECT_GT(stats.merged_kernel_hits, 0u);
  server.stop();
}

// The retry acceptance test: a client with retries pointed at a server
// that breaks the wire in every supported way still produces results
// byte-identical to a fault-free server's.
TEST(ServiceClient, RetriesTurnEveryFaultKindIntoByteIdenticalResults) {
  std::vector<std::string> clean;
  {
    service::YieldServer server(loopback_options());
    server.start();
    service::YieldClient client(server);
    for (std::uint64_t seed = 1; seed <= 4; ++seed) {
      clean.push_back(
          service::to_json(client.call(small_request(seed, 0.9))).dump());
    }
    server.stop();
  }

  auto options = loopback_options();
  service::FaultPlanOptions faults;
  faults.seed = 3;
  faults.period = 2;  // >= 2: an immediate retry is never re-faulted
  faults.faults = service::fault_specs_from_names(
      "drop,truncate,corrupt,reject,delay,drop-after,slowloris");
  options.fault_plan = std::make_shared<service::FaultPlan>(faults);
  service::YieldServer server(options);
  server.start();
  service::YieldClient client(server);
  service::RetryPolicy retry;
  retry.max_attempts = 4;
  retry.backoff_base_ms = 1;
  client.set_retry_policy(retry);
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    EXPECT_EQ(service::to_json(client.call(small_request(seed, 0.9))).dump(),
              clean[seed - 1])
        << "seed " << seed;
  }
  EXPECT_GT(server.stats().faults_injected, 0u)
      << "the plan must actually have fired for this test to mean anything";
  server.stop();
}

TEST(ServiceClient, TerminalErrorsAreNeverRetried) {
  service::YieldServer server(loopback_options());
  server.start();
  service::YieldClient client(server);
  service::RetryPolicy retry;
  retry.max_attempts = 5;
  retry.backoff_base_ms = 1;
  client.set_retry_policy(retry);

  auto bad = small_request(1, 0.9);
  bad.params.yield_desired = 2.0;
  const std::uint64_t before = server.stats().frames_in;
  try {
    (void)client.call(bad);
    FAIL() << "a bad_request must throw";
  } catch (const service::ServiceError& e) {
    EXPECT_EQ(e.code(), "bad_request");
    EXPECT_FALSE(e.transient());
  }
  // One frame, not five: a deterministic verdict is not worth re-asking.
  EXPECT_EQ(server.stats().frames_in, before + 1);
  server.stop();
}

TEST(ServiceClient, RetryDeadlineBudgetBoundsTheAttempts) {
  auto options = loopback_options();
  service::FaultPlanOptions faults;
  faults.seed = 1;
  faults.period = 1;  // every frame rejected: retries can never succeed
  faults.faults = service::fault_specs_from_names("reject");
  options.fault_plan = std::make_shared<service::FaultPlan>(faults);
  service::YieldServer server(options);
  server.start();
  service::YieldClient client(server);
  service::RetryPolicy retry;
  retry.max_attempts = 1000;
  retry.backoff_base_ms = 5;
  retry.backoff_multiplier = 1.0;
  retry.deadline_ms = 40;  // the budget, not the attempt count, must stop it
  client.set_retry_policy(retry);
  try {
    (void)client.call(small_request(1, 0.9));
    FAIL() << "an always-rejecting server must exhaust the budget";
  } catch (const service::ServiceError& e) {
    EXPECT_EQ(e.code(), "try_later");
  }
  EXPECT_LT(server.stats().faults_injected, 100u);
  server.stop();
}

TEST(ServiceServer, AdmissionQueueRejectsOverloadWithTransientCode) {
  auto options = loopback_options();
  options.max_queue = 2;
  options.coalesce_window_us = 200000;  // hold the queue full long enough
  service::YieldServer server(options);
  server.start();

  std::vector<std::future<std::string>> futures;
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    futures.push_back(
        server.submit(service::encode_flow_request(small_request(seed, 0.9))));
  }
  std::size_t rejected = 0;
  std::size_t served = 0;
  for (auto& future : futures) {
    const Frame frame = service::decode_frame(future.get());
    if (frame.type == FrameType::Error) {
      const auto error = service::error_from_payload(frame.payload);
      EXPECT_EQ(error.code, "server_overloaded");
      EXPECT_TRUE(service::is_transient_error(error.code));
      rejected += 1;
    } else {
      EXPECT_EQ(frame.type, FrameType::FlowResponse);
      served += 1;
    }
  }
  EXPECT_EQ(served, 2u);
  EXPECT_EQ(rejected, 2u);
  EXPECT_EQ(server.stats().overload_rejects, 2u);
  server.stop();
}

TEST(ServiceServer, PastDeadlineWorkIsShedBeforeEvaluation) {
  auto options = loopback_options();
  options.coalesce_window_us = 80000;  // 80 ms: a 10 ms deadline must pass
  service::YieldServer server(options);
  server.start();

  auto doomed = small_request(1, 0.9);
  doomed.deadline_ms = 10;
  const auto patient = small_request(2, 0.9);  // no deadline, same batch
  auto doomed_future = server.submit(service::encode_flow_request(doomed));
  auto patient_future = server.submit(service::encode_flow_request(patient));

  const auto error = expect_error_frame(doomed_future.get());
  EXPECT_EQ(error.code, "deadline_exceeded");
  EXPECT_TRUE(service::is_transient_error(error.code));
  EXPECT_EQ(service::decode_frame(patient_future.get()).type,
            FrameType::FlowResponse);
  const auto stats = server.stats();
  EXPECT_EQ(stats.deadline_sheds, 1u);
  EXPECT_EQ(stats.responses, 1u);
  server.stop();
}

TEST(ServiceServer, DrainFinishesQueuedWorkAndRefusesNewFrames) {
  auto options = loopback_options();
  options.coalesce_window_us = 100000;  // queued work outlives drain entry
  service::YieldServer server(options);
  server.start();

  auto first = server.submit(service::encode_flow_request(small_request(1, 0.9)));
  auto second = server.submit(service::encode_flow_request(small_request(2, 0.9)));
  std::thread drainer([&server] { server.drain(); });
  // Give drain() a moment to raise the draining flag, then knock.
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  const auto refused = expect_error_frame(
      server.submit(service::encode_flow_request(small_request(3, 0.9))).get());
  EXPECT_EQ(refused.code, "shutting_down");
  EXPECT_TRUE(service::is_transient_error(refused.code));
  // The queued requests still get real responses — that is the point.
  EXPECT_EQ(service::decode_frame(first.get()).type, FrameType::FlowResponse);
  EXPECT_EQ(service::decode_frame(second.get()).type,
            FrameType::FlowResponse);
  drainer.join();
  server.stop();
}

// --- adversarial wire behaviour (TCP) --------------------------------------

/// Raw TCP connection for byte-level abuse the YieldClient would refuse to
/// send.
int connect_raw(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  EXPECT_GE(::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                      sizeof(addr)),
            0);
  return fd;
}

/// True if the peer closes `fd` within `timeout_ms` (EOF on recv).
bool closed_within(int fd, int timeout_ms) {
  using clock = std::chrono::steady_clock;
  const auto deadline = clock::now() + std::chrono::milliseconds(timeout_ms);
  char byte = 0;
  while (clock::now() < deadline) {
    pollfd pfd{fd, POLLIN, 0};
    if (::poll(&pfd, 1, 100) <= 0) continue;
    const ssize_t k = ::recv(fd, &byte, 1, 0);
    if (k <= 0) return true;  // EOF (or reset): the server let go
  }
  return false;
}

TEST(ServiceServer, SlowLorisPeerIsDroppedAfterIdleTimeout) {
  auto options = loopback_options();
  options.listen = true;
  options.port = 0;
  options.idle_timeout_ms = 300;
  service::YieldServer server(options);
  server.start();

  // Dribble half a header, then stall: the server must reclaim the
  // connection after idle_timeout_ms instead of wedging a handler forever.
  const int fd = connect_raw(server.port());
  const std::string header_half =
      service::encode_frame(FrameType::Ping, "{}").substr(0, 8);
  ASSERT_EQ(::send(fd, header_half.data(), header_half.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(header_half.size()));
  EXPECT_TRUE(closed_within(fd, 5000));
  ::close(fd);

  // The handler lane is free again: a well-behaved client is served.
  service::YieldClient client("127.0.0.1", server.port());
  EXPECT_NE(client.ping().find("\"version\""), std::string::npos);
  server.stop();
}

TEST(ServiceServer, TruncatedMidPayloadConnectionNeverHangsTheServer) {
  auto options = loopback_options();
  options.listen = true;
  options.port = 0;
  options.idle_timeout_ms = 300;
  service::YieldServer server(options);
  server.start();

  // A full header announcing payload the peer never finishes sending.
  const std::string frame =
      service::encode_flow_request(small_request(1, 0.9));
  const int fd = connect_raw(server.port());
  const std::size_t partial = service::kHeaderBytes + 10;
  ASSERT_EQ(::send(fd, frame.data(), partial, MSG_NOSIGNAL),
            static_cast<ssize_t>(partial));
  EXPECT_TRUE(closed_within(fd, 5000));
  ::close(fd);

  service::YieldClient client("127.0.0.1", server.port());
  EXPECT_NE(client.ping().find("\"version\""), std::string::npos);
  server.stop();
}

TEST(ServiceServer, PeerDyingMidExchangeNeverKillsTheServer) {
  // The SIGPIPE regression: a client that sends a full request and
  // vanishes before reading the response makes the server write to a dead
  // socket. MSG_NOSIGNAL + SIG_IGN must turn that into a dropped
  // connection, not a process death.
  auto options = loopback_options();
  options.listen = true;
  options.port = 0;
  service::YieldServer server(options);
  server.start();

  auto request = small_request(9, 0.9);
  request.params.mc_samples = 200;
  const std::string frame = service::encode_flow_request(request);
  const int fd = connect_raw(server.port());
  ASSERT_EQ(::send(fd, frame.data(), frame.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(frame.size()));
  ::close(fd);  // gone before the response is written

  // The server survives and keeps serving; give it time to hit the dead
  // socket first (the response write happens after evaluation).
  service::YieldClient client("127.0.0.1", server.port());
  const auto result = client.call(request);
  EXPECT_EQ(result.strategies.size(), 4u);
  server.stop();
}

TEST(ServiceClient, TcpClientReconnectsAfterInjectedDrops) {
  auto options = loopback_options();
  options.listen = true;
  options.port = 0;
  service::FaultPlanOptions faults;
  faults.seed = 5;
  faults.period = 2;
  faults.faults = service::fault_specs_from_names("drop,truncate");
  options.fault_plan = std::make_shared<service::FaultPlan>(faults);
  service::YieldServer server(options);
  server.start();

  service::YieldClient client("127.0.0.1", server.port());
  service::RetryPolicy retry;
  retry.max_attempts = 4;
  retry.backoff_base_ms = 1;
  client.set_retry_policy(retry);
  auto request = small_request(3, 0.9);
  request.params.mc_samples = 200;
  // Two calls over a wire that keeps dropping: reconnect-on-drop makes
  // both land, and the plan's cadence guarantees at least one fault fired.
  EXPECT_EQ(client.call(request).strategies.size(), 4u);
  request.params.seed = 4;
  EXPECT_EQ(client.call(request).strategies.size(), 4u);
  EXPECT_GT(server.stats().faults_injected, 0u);
  server.stop();
}

// --- observability (protocol v4) -------------------------------------------

TEST(ServiceProtocol, TraceIdOmittedWhenEmptyKeepsPayloadByteIdentical) {
  // The 0.3.0 back-compat pin, same trick as deadline_ms: an untraced
  // request payload carries no trace key at all, so its bytes are
  // identical to the pre-v4 form (and campaign store keys never change).
  FlowRequest request = small_request(1, 0.9);
  const std::string legacy = service::to_json(request).dump();
  EXPECT_EQ(legacy.find("trace_id"), std::string::npos);

  request.trace_id = "abc123.T-4_x";
  const std::string once = service::to_json(request).dump();
  EXPECT_NE(once.find("\"trace_id\":\"abc123.T-4_x\""), std::string::npos);
  const auto back = service::flow_request_from_json(Json::parse(once));
  EXPECT_EQ(back.trace_id, "abc123.T-4_x");
  EXPECT_EQ(service::to_json(back).dump(), once);
  // Stripping the trace id restores the legacy bytes exactly.
  auto stripped = back;
  stripped.trace_id.clear();
  EXPECT_EQ(service::to_json(stripped).dump(), legacy);

  auto oversized = request;
  oversized.trace_id.assign(65, 'a');
  EXPECT_THROW(service::validate(oversized), service::ProtocolError);
  auto bad_charset = request;
  bad_charset.trace_id = "no spaces";
  EXPECT_THROW(service::validate(bad_charset), service::ProtocolError);
}

// The zero-perturbation acceptance test for the serving path: the same
// request produces the same response bytes whether the server traces to a
// sink, serves untraced, or (CNY_OBS=OFF) has tracing compiled out — and a
// request that *carries* a trace id still gets the identical response
// body, because responses hold no trace fields.
TEST(ServiceServer, ResponsesAreByteIdenticalWithTracingOnOrOff) {
  const std::string frame =
      service::encode_flow_request(small_request(1, 0.9));
  std::string untraced;
  {
    service::YieldServer server(loopback_options());
    server.start();
    untraced = server.submit(frame).get();
    server.stop();
  }

  const std::string path = ::testing::TempDir() + "service_trace.jsonl";
  {
    auto options = loopback_options();
    options.trace_sink = std::make_shared<obs::TraceSink>(path);
    service::YieldServer server(options);
    server.start();
    EXPECT_EQ(server.submit(frame).get(), untraced);

    auto traced_request = small_request(1, 0.9);
    traced_request.trace_id = obs::next_trace_id();
    EXPECT_EQ(
        server.submit(service::encode_flow_request(traced_request)).get(),
        untraced);
    server.stop();
  }
  if (obs::tracing_compiled()) {
    // The sink must actually have traced — otherwise this test would pass
    // vacuously with the instrumentation fallen off.
    std::ifstream trace(path);
    std::stringstream buffer;
    buffer << trace.rdbuf();
    EXPECT_NE(buffer.str().find("\"evaluate\""), std::string::npos);
    EXPECT_NE(buffer.str().find("\"trace_id\""), std::string::npos);
  }
  std::remove(path.c_str());
}

TEST(ServiceServer, StatsFrameReturnsTheCanonicalPayload) {
  service::YieldServer server(loopback_options());
  server.start();
  service::YieldClient client(server);
  (void)client.call(small_request(1, 0.9));

  const Json payload = Json::parse(client.stats());
  EXPECT_EQ(payload.at("version").as_string(), service::kVersionString);
  EXPECT_EQ(payload.at("protocol").as_u64(), service::kProtocolVersion);
  EXPECT_GE(payload.at("stats").at("responses").as_u64(), 1u);
  const Json& evaluate = payload.at("histograms").at("evaluate_us");
  EXPECT_GE(evaluate.at("count").as_u64(), 1u);
  EXPECT_GE(evaluate.at("max_us").as_double(), evaluate.at("p50_us").as_double());

  // Pong and StatsReply serve the *same* payload (one stats_payload()
  // renders both), so dashboards can treat them interchangeably.
  const Json pong = Json::parse(client.ping());
  ASSERT_EQ(pong.members().size(), payload.members().size());
  for (std::size_t i = 0; i < pong.members().size(); ++i) {
    EXPECT_EQ(pong.members()[i].first, payload.members()[i].first);
  }
  server.stop();
}

// Counter-coverage acceptance: every counter the stats payload exposes is
// bumped by some scenario in this test, so a counter that silently stops
// counting (or a new one added without instrumentation) fails here.
TEST(ServiceServer, EveryStatsCounterIsExercisedSomewhere) {
  std::map<std::string, std::uint64_t> observed;
  const auto merge_stats = [&observed](const service::YieldServer& server) {
    const Json payload = Json::parse(server.stats_json());
    for (const auto& [name, value] : payload.at("stats").members()) {
      std::uint64_t& slot = observed[name];
      if (value.as_u64() > slot) slot = value.as_u64();
    }
  };

  {
    // Server A: burst past a tiny admission queue (responses, batches,
    // batched_requests, merged_kernel_hits, sessions_built,
    // overload_rejects), then a doomed deadline, a garbage frame, and a
    // TCP ping (connections, frames_in).
    auto options = loopback_options();
    options.listen = true;
    options.port = 0;
    options.max_queue = 2;
    options.coalesce_window_us = 200000;
    service::YieldServer server(options);
    server.start();

    std::vector<std::future<std::string>> burst;
    for (std::uint64_t seed = 1; seed <= 4; ++seed) {
      burst.push_back(server.submit(
          service::encode_flow_request(small_request(seed, 0.9))));
    }
    for (auto& future : burst) (void)future.get();

    auto doomed = small_request(5, 0.9);
    doomed.deadline_ms = 10;
    EXPECT_EQ(
        expect_error_frame(
            server.submit(service::encode_flow_request(doomed)).get())
            .code,
        "deadline_exceeded");
    (void)server.submit("garbage").get();

    service::YieldClient tcp("127.0.0.1", server.port());
    EXPECT_NE(tcp.ping().find("\"version\""), std::string::npos);

    merge_stats(server);
    server.stop();
  }
  {
    // Server B: an always-rejecting fault plan covers faults_injected.
    auto options = loopback_options();
    service::FaultPlanOptions faults;
    faults.seed = 1;
    faults.period = 1;
    faults.max_faults = 1;
    faults.faults = service::fault_specs_from_names("reject");
    options.fault_plan = std::make_shared<service::FaultPlan>(faults);
    service::YieldServer server(options);
    server.start();
    service::YieldClient client(server);
    service::RetryPolicy retry;
    retry.max_attempts = 3;
    retry.backoff_base_ms = 1;
    client.set_retry_policy(retry);
    (void)client.call(small_request(1, 0.9));
    merge_stats(server);
    server.stop();
  }

  const std::set<std::string> expected{
      "batched_requests", "batches",           "connections",
      "deadline_sheds",   "errors",            "faults_injected",
      "frames_in",        "merged_kernel_hits", "overload_rejects",
      "responses",        "sessions_built"};
  std::set<std::string> names;
  for (const auto& [name, value] : observed) {
    names.insert(name);
    EXPECT_GT(value, 0u) << "counter '" << name
                         << "' is exposed but never exercised";
  }
  EXPECT_EQ(names, expected)
      << "stats payload counters drifted from the pinned set — extend this "
         "test to exercise any new counter";
}

// --- continuous telemetry --------------------------------------------------

namespace {

/// Raw HTTP exchange with the metrics endpoint: send `request_text`, read
/// to EOF (the server replies HTTP/1.0 Connection: close).
std::string http_exchange(std::uint16_t port, const std::string& request_text) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  EXPECT_EQ(
      ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  std::size_t sent = 0;
  while (sent < request_text.size()) {
    const ssize_t n =
        ::send(fd, request_text.data() + sent, request_text.size() - sent, 0);
    if (n <= 0) break;
    sent += static_cast<std::size_t>(n);
  }
  std::string reply;
  char buffer[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
    if (n <= 0) break;
    reply.append(buffer, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return reply;
}

}  // namespace

TEST(ServiceServer, MetricsEndpointServesOpenMetricsOverHttp) {
  auto options = loopback_options();
  options.metrics_listen = true;
  options.metrics_port = 0;  // ephemeral
  service::YieldServer server(options);
  server.start();
  ASSERT_NE(server.metrics_port(), 0);
  (void)server.submit(service::encode_flow_request(small_request(1, 0.9)))
      .get();

  const std::string reply = http_exchange(
      server.metrics_port(),
      "GET /metrics HTTP/1.0\r\nHost: 127.0.0.1\r\n\r\n");
  EXPECT_EQ(reply.rfind("HTTP/1.0 200 OK\r\n", 0), 0u) << reply;
  EXPECT_NE(reply.find(std::string("Content-Type: ") +
                       obs::kOpenMetricsContentType),
            std::string::npos);
  const auto body_at = reply.find("\r\n\r\n");
  ASSERT_NE(body_at, std::string::npos);
  const std::string body = reply.substr(body_at + 4);
  EXPECT_NE(body.find("# TYPE cny_responses counter\n"), std::string::npos);
  EXPECT_NE(body.find("cny_responses_total 1\n"), std::string::npos);
  EXPECT_NE(body.find("# TYPE cny_evaluate_us histogram\n"),
            std::string::npos);
  EXPECT_EQ(body.rfind("# EOF\n"), body.size() - 6);
  // Content-Length matches the body exactly (scrapers rely on it).
  const auto length_at = reply.find("Content-Length: ");
  ASSERT_NE(length_at, std::string::npos);
  EXPECT_EQ(static_cast<std::size_t>(
                std::stoul(reply.substr(length_at + 16))),
            body.size());

  // A GET anywhere else is 404; a non-GET method is 405. Both answered,
  // connection closed, server keeps serving.
  EXPECT_EQ(http_exchange(server.metrics_port(),
                          "GET /nope HTTP/1.0\r\n\r\n")
                .rfind("HTTP/1.0 404", 0),
            0u);
  EXPECT_EQ(http_exchange(server.metrics_port(),
                          "POST /metrics HTTP/1.0\r\n\r\n")
                .rfind("HTTP/1.0 405", 0),
            0u);
  const std::string again = http_exchange(
      server.metrics_port(), "GET /metrics HTTP/1.0\r\n\r\n");
  EXPECT_EQ(again.rfind("HTTP/1.0 200 OK\r\n", 0), 0u);
  server.stop();
}

// Exposition-coverage acceptance: every counter, gauge, and histogram the
// canonical stats payload exposes (including the process block) appears in
// the OpenMetrics rendering under its sanitised name — so a metric added
// to the payload but dropped by the renderer (or vice versa) fails here.
TEST(ServiceServer, MetricsTextCoversEveryStatsPayloadMetric) {
  service::YieldServer server(loopback_options());
  server.start();
  (void)server.submit(service::encode_flow_request(small_request(1, 0.9)))
      .get();
  const Json payload = Json::parse(server.stats_json());
  const std::string text = server.metrics_text();

  std::size_t checked = 0;
  const auto expect_family = [&](const std::string& name, const char* kind) {
    const std::string type_line =
        "# TYPE " + obs::openmetrics_name(name) + " " + kind + "\n";
    EXPECT_NE(text.find(type_line), std::string::npos)
        << "stats payload metric '" << name
        << "' missing from /metrics (wanted: " << type_line << ")";
    ++checked;
  };
  for (const auto& [name, value] : payload.at("stats").members()) {
    expect_family(name, "counter");
  }
  for (const auto& [name, value] : payload.at("gauges").members()) {
    expect_family(name, "gauge");
  }
  for (const auto& [name, value] : payload.at("histograms").members()) {
    expect_family(name, "histogram");
  }
  for (const auto& [name, value] :
       payload.at("process").at("counters").members()) {
    expect_family(name, "counter");
  }
  for (const auto& [name, value] :
       payload.at("process").at("gauges").members()) {
    expect_family(name, "gauge");
  }
  EXPECT_GE(checked, 20u) << "payload suspiciously empty — coverage loop "
                             "not enumerating?";
  server.stop();
}

// The zero-perturbation acceptance test for *continuous* telemetry: the
// same request produces the same response bytes with the full stack on —
// structured log, metrics endpoint, background resource sampler with
// snapshot export — as with everything off (and, cross-build, as
// CNY_OBS=OFF; CI compares the store bytes there).
TEST(ServiceServer, ResponsesAreByteIdenticalWithTelemetryFullyOn) {
  const std::string frame =
      service::encode_flow_request(small_request(1, 0.9));
  std::string plain;
  {
    service::YieldServer server(loopback_options());
    server.start();
    plain = server.submit(frame).get();
    server.stop();
  }

  const std::string log_path = ::testing::TempDir() + "telemetry_on.jsonl";
  const std::string snap_path = ::testing::TempDir() + "telemetry_snap.jsonl";
  {
    auto options = loopback_options();
    if (obs::logging_compiled()) {
      options.log = std::make_shared<obs::Log>(log_path, obs::LogLevel::Debug);
    }
    options.metrics_listen = true;
    options.metrics_port = 0;
    options.sample_interval_ms = 10;
    options.snapshot_export_path = snap_path;
    service::YieldServer server(options);
    server.start();
    EXPECT_EQ(server.submit(frame).get(), plain);
    // A live scrape mid-request must not perturb either.
    (void)http_exchange(server.metrics_port(),
                        "GET /metrics HTTP/1.0\r\n\r\n");
    EXPECT_EQ(server.submit(frame).get(), plain);
    server.stop();
  }
  if (obs::logging_compiled()) {
    // The log must actually have logged — otherwise this passes vacuously
    // with the instrumentation fallen off.
    std::ifstream log(log_path);
    std::stringstream buffer;
    buffer << log.rdbuf();
    EXPECT_NE(buffer.str().find("\"event\":\"server.start\""),
              std::string::npos);
    EXPECT_NE(buffer.str().find("\"event\":\"session.built\""),
              std::string::npos);
  }
  std::ifstream snap(snap_path);
  std::string first_line;
  EXPECT_TRUE(std::getline(snap, first_line).good());
  EXPECT_NE(first_line.find("\"mono_us\""), std::string::npos);
  std::remove(log_path.c_str());
  std::remove(snap_path.c_str());
}

}  // namespace
