#include <gtest/gtest.h>

#include <set>

#include "celllib/generator.h"
#include "layout/aligned_active.h"
#include "layout/row_placement.h"
#include "netlist/design_generator.h"
#include "util/contracts.h"

namespace {

using namespace cny::layout;
using cny::celllib::Library;
using cny::celllib::Polarity;

const Library& lib45() {
  static const Library lib = cny::celllib::make_nangate45_like();
  return lib;
}

AlignOptions one_row(double w_min = 100.0) {
  AlignOptions o;
  o.w_min = w_min;
  o.rows_per_polarity = 1;
  return o;
}

TEST(AlignedActive, CriticalRegionsLandOnOneGrid) {
  const auto res = align_active(lib45(), one_row(), 140.0);
  for (const auto& cell : res.library.cells()) {
    for (int r : cell.critical_regions(Polarity::N, 100.0)) {
      EXPECT_DOUBLE_EQ(cell.regions[std::size_t(r)].rect.y, res.grid_y_n)
          << cell.name;
    }
    for (int r : cell.critical_regions(Polarity::P, 100.0)) {
      EXPECT_DOUBLE_EQ(cell.regions[std::size_t(r)].rect.y, res.grid_y_p)
          << cell.name;
    }
  }
}

TEST(AlignedActive, UpsizesCriticalDevices) {
  const double w_min = 100.0;
  const auto res = align_active(lib45(), one_row(w_min), 140.0);
  for (const auto& cell : res.library.cells()) {
    EXPECT_GE(cell.min_transistor_width(), w_min) << cell.name;
  }
}

TEST(AlignedActive, SameRowRegionsHonourSpacing) {
  const double spacing = 140.0;
  const auto res = align_active(lib45(), one_row(), spacing);
  for (const auto& cell : res.library.cells()) {
    const auto crit = cell.critical_regions(Polarity::N, 100.0);
    for (std::size_t i = 0; i < crit.size(); ++i) {
      for (std::size_t j = i + 1; j < crit.size(); ++j) {
        const auto& a = cell.regions[std::size_t(crit[i])].rect;
        const auto& b = cell.regions[std::size_t(crit[j])].rect;
        const double gap = std::max(b.left() - a.right(),
                                    a.left() - b.right());
        EXPECT_GE(gap + 1e-6, spacing) << cell.name;
      }
    }
  }
}

TEST(AlignedActive, PinsArePreserved) {
  const auto res = align_active(lib45(), one_row(), 140.0);
  for (std::size_t i = 0; i < lib45().size(); ++i) {
    const auto& before = lib45().cells()[i];
    const auto& after = res.library.cells()[i];
    ASSERT_EQ(before.pins.size(), after.pins.size());
    for (std::size_t p = 0; p < before.pins.size(); ++p) {
      EXPECT_EQ(before.pins[p].name, after.pins[p].name);
      EXPECT_DOUBLE_EQ(before.pins[p].x, after.pins[p].x);
    }
  }
}

TEST(AlignedActive, CellsNeverShrink) {
  const auto res = align_active(lib45(), one_row(), 140.0);
  for (const auto& p : res.penalties) {
    EXPECT_GE(p.new_width + 1e-9, p.old_width) << p.cell;
  }
}

TEST(AlignedActive, UnfoldedCellsPayNoPenalty) {
  const auto res = align_active(lib45(), one_row(), 140.0);
  for (std::size_t i = 0; i < lib45().size(); ++i) {
    const auto& cell = lib45().cells()[i];
    if (cell.regions_of(Polarity::N).size() == 1 &&
        cell.regions_of(Polarity::P).size() == 1) {
      EXPECT_NEAR(res.penalties[i].penalty(), 0.0, 1e-9) << cell.name;
    }
  }
}

TEST(AlignedActive, PaperTable2NangateRegime) {
  // 4 of 134 cells pay a penalty in the 4-14 % band (paper Table 2).
  const auto res = align_active(lib45(), one_row(103.0), 140.0);
  EXPECT_EQ(res.cells_with_penalty(), 4u);
  EXPECT_GT(res.min_penalty(), 0.03);
  EXPECT_LT(res.max_penalty(), 0.16);
}

TEST(AlignedActive, TwoRowsEliminateNangatePenalty) {
  AlignOptions o = one_row(103.0);
  o.rows_per_polarity = 2;
  const auto res = align_active(lib45(), o, 140.0);
  EXPECT_EQ(res.cells_with_penalty(), 0u);
  EXPECT_DOUBLE_EQ(res.max_penalty(), 0.0);
}

TEST(AlignedActive, TwoRowsNeverWorseThanOne) {
  const auto lib65 = cny::celllib::make_commercial65_like();
  const auto one = align_active(lib65, one_row(107.0), 200.0);
  AlignOptions o = one_row(107.0);
  o.rows_per_polarity = 2;
  const auto two = align_active(lib65, o, 200.0);
  EXPECT_LE(two.cells_with_penalty(), one.cells_with_penalty());
  EXPECT_LE(two.area_increase(), one.area_increase() + 1e-12);
}

TEST(AlignedActive, TransformedLibraryStillValid) {
  const auto res = align_active(lib45(), one_row(), 140.0);
  EXPECT_NO_THROW(res.library.validate());
}

TEST(AlignedActive, PenaltyStatsHelpers) {
  AlignResult r;
  r.penalties = {{"a", 100.0, 100.0}, {"b", 100.0, 110.0},
                 {"c", 200.0, 260.0}};
  EXPECT_EQ(r.cells_with_penalty(), 2u);
  EXPECT_NEAR(r.min_penalty(), 0.10, 1e-12);
  EXPECT_NEAR(r.max_penalty(), 0.30, 1e-12);
  EXPECT_NEAR(r.mean_penalty(), 0.20, 1e-12);
  EXPECT_NEAR(r.area_increase(), 70.0 / 400.0, 1e-12);
}

TEST(AlignedActive, RejectsBadOptions) {
  EXPECT_THROW(align_active(lib45(), AlignOptions{}, 140.0),
               cny::ContractViolation);  // w_min = 0
  AlignOptions o = one_row();
  o.rows_per_polarity = 3;
  EXPECT_THROW(align_active(lib45(), o, 140.0), cny::ContractViolation);
}

TEST(CriticalOffsets, AlignedLibraryHasSingleOffset) {
  const auto res = align_active(lib45(), one_row(103.0), 140.0);
  const auto offsets = critical_region_offsets(res.library, 103.0);
  ASSERT_EQ(offsets.size(), 1u);
  EXPECT_DOUBLE_EQ(offsets[0].y, 0.0);
}

TEST(CriticalOffsets, UnmodifiedLibraryIsDiverse) {
  const auto offsets = critical_region_offsets(lib45(), 103.0);
  EXPECT_GT(offsets.size(), 5u);
}

// ------------------------------------------------------------- placement

TEST(RowPlacement, MeasuredDensityIsPositiveAndPlausible) {
  const auto design = cny::netlist::make_openrisc_like(lib45());
  const double d = measure_fets_per_um(design, 103.0);
  EXPECT_GT(d, 0.02);
  EXPECT_LT(d, 6.0);
}

TEST(RowPlacement, SampleRowFixedDensityHitsBudget) {
  const auto design = cny::netlist::make_openrisc_like(lib45());
  cny::rng::Xoshiro256 rng(55);
  RowParams params;
  params.row_length = 200.0e3;
  params.w_min = 103.0;
  params.fets_per_um = 1.8;
  const auto row = sample_row(design, params, rng);
  EXPECT_EQ(row.count(), 360u);
  EXPECT_NEAR(row.fets_per_um, 1.8, 1e-9);
  for (const auto& w : row.windows) {
    EXPECT_NEAR(w.length(), 103.0, 1e-9);
  }
}

TEST(RowPlacement, SampleRowDerivedDensity) {
  const auto design = cny::netlist::make_openrisc_like(lib45());
  cny::rng::Xoshiro256 rng(56);
  RowParams params;
  params.row_length = 100.0e3;
  params.w_min = 103.0;
  params.fets_per_um = 0.0;  // derive from design
  const auto row = sample_row(design, params, rng);
  EXPECT_GT(row.count(), 10u);
  EXPECT_NEAR(row.fets_per_um, measure_fets_per_um(design, 103.0), 1.0);
}

TEST(RowPlacement, WindowOffsetsWeightedByMix) {
  const auto design = cny::netlist::make_openrisc_like(lib45());
  const auto offsets = window_offsets(design, 103.0);
  ASSERT_GT(offsets.size(), 3u);
  double total = 0.0;
  for (const auto& o : offsets) {
    EXPECT_GE(o.y, 0.0);
    EXPECT_GT(o.weight, 0.0);
    total += o.weight;
  }
  EXPECT_GT(total, 0.0);
}

}  // namespace
