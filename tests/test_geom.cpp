#include <gtest/gtest.h>

#include "geom/interval.h"
#include "geom/rect.h"
#include "geom/svg.h"
#include "util/contracts.h"

namespace {

using namespace cny::geom;

TEST(Interval, BasicPredicates) {
  const Interval iv{1.0, 3.0};
  EXPECT_DOUBLE_EQ(iv.length(), 2.0);
  EXPECT_FALSE(iv.empty());
  EXPECT_TRUE(iv.contains(1.0));
  EXPECT_FALSE(iv.contains(3.0));  // half-open
  EXPECT_TRUE(Interval({2.0, 2.0}).empty());
  EXPECT_DOUBLE_EQ(Interval({3.0, 2.0}).length(), 0.0);
}

TEST(Interval, OverlapAndIntersect) {
  const Interval a{0.0, 2.0}, b{1.0, 3.0}, c{2.0, 4.0};
  EXPECT_TRUE(a.overlaps(b));
  EXPECT_FALSE(a.overlaps(c));  // touching endpoints do not overlap
  const auto i = a.intersect(b);
  EXPECT_DOUBLE_EQ(i.lo, 1.0);
  EXPECT_DOUBLE_EQ(i.hi, 2.0);
  EXPECT_TRUE(a.intersect(c).empty());
}

TEST(Interval, HullAndShift) {
  const Interval a{0.0, 1.0}, b{5.0, 6.0};
  const auto h = a.hull(b);
  EXPECT_DOUBLE_EQ(h.lo, 0.0);
  EXPECT_DOUBLE_EQ(h.hi, 6.0);
  const auto s = a.shifted(2.5);
  EXPECT_DOUBLE_EQ(s.lo, 2.5);
  EXPECT_DOUBLE_EQ(s.hi, 3.5);
}

TEST(IntervalSet, MergesOverlaps) {
  IntervalSet set;
  set.add({0.0, 2.0});
  set.add({5.0, 7.0});
  set.add({1.0, 6.0});  // bridges both
  EXPECT_EQ(set.n_components(), 1u);
  EXPECT_DOUBLE_EQ(set.measure(), 7.0);
}

TEST(IntervalSet, KeepsDisjointComponents) {
  IntervalSet set({{0.0, 1.0}, {2.0, 3.0}, {10.0, 11.5}});
  EXPECT_EQ(set.n_components(), 3u);
  EXPECT_DOUBLE_EQ(set.measure(), 3.5);
  EXPECT_TRUE(set.contains(0.5));
  EXPECT_FALSE(set.contains(1.5));
  EXPECT_TRUE(set.contains(10.0));
  EXPECT_FALSE(set.contains(11.5));
}

TEST(IntervalSet, IgnoresEmptyIntervals) {
  IntervalSet set;
  set.add({3.0, 3.0});
  set.add({5.0, 4.0});
  EXPECT_EQ(set.n_components(), 0u);
  EXPECT_DOUBLE_EQ(set.measure(), 0.0);
}

TEST(UnionMeasure, MatchesIntervalSet) {
  std::vector<Interval> ivs = {{0.0, 3.0}, {2.0, 5.0}, {7.0, 8.0}, {7.5, 7.9}};
  EXPECT_DOUBLE_EQ(union_measure(ivs), 6.0);
  EXPECT_DOUBLE_EQ(union_measure({}), 0.0);
}

TEST(Rect, SpansAndPredicates) {
  const Rect r{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(r.right(), 4.0);
  EXPECT_DOUBLE_EQ(r.top(), 6.0);
  EXPECT_DOUBLE_EQ(r.area(), 12.0);
  EXPECT_TRUE(r.contains({1.0, 2.0}));
  EXPECT_FALSE(r.contains({4.0, 3.0}));
  EXPECT_TRUE(r.x_span() == (Interval{1.0, 4.0}));
}

TEST(Rect, OverlapAndTranslate) {
  const Rect a{0.0, 0.0, 2.0, 2.0};
  EXPECT_TRUE(a.overlaps({1.0, 1.0, 2.0, 2.0}));
  EXPECT_FALSE(a.overlaps({2.0, 0.0, 1.0, 1.0}));  // edge contact
  const auto t = a.translated(1.0, -1.0);
  EXPECT_DOUBLE_EQ(t.x, 1.0);
  EXPECT_DOUBLE_EQ(t.y, -1.0);
}

TEST(Grid1D, SnapAndOffset) {
  const Grid1D grid(10.0, 5.0);
  EXPECT_DOUBLE_EQ(grid.snap(12.4), 10.0);
  EXPECT_DOUBLE_EQ(grid.snap(12.6), 15.0);
  EXPECT_DOUBLE_EQ(grid.offset(16.0), 1.0);
  EXPECT_EQ(grid.index_of(-0.1), -2);
  EXPECT_DOUBLE_EQ(grid.line(-2), 0.0);
}

TEST(Grid1D, RejectsNonPositivePitch) {
  EXPECT_THROW(Grid1D(0.0, 0.0), cny::ContractViolation);
}

TEST(Svg, ProducesValidDocument) {
  SvgWriter svg(Rect{0.0, 0.0, 100.0, 50.0}, 200.0);
  svg.rect({10.0, 10.0, 20.0, 10.0}, "#ff0000", "black", 1.0, 0.5);
  svg.line({0.0, 0.0}, {100.0, 50.0}, "blue", 0.5);
  svg.text({5.0, 45.0}, "label", 4.0);
  const std::string doc = svg.str();
  EXPECT_NE(doc.find("<svg"), std::string::npos);
  EXPECT_NE(doc.find("</svg>"), std::string::npos);
  EXPECT_NE(doc.find("<rect"), std::string::npos);
  EXPECT_NE(doc.find("<line"), std::string::npos);
  EXPECT_NE(doc.find("label"), std::string::npos);
}

TEST(Svg, FlipsYAxis) {
  // A rect at the view's bottom edge must render near the SVG's bottom
  // (large pixel y).
  SvgWriter svg(Rect{0.0, 0.0, 100.0, 100.0}, 100.0);
  svg.rect({0.0, 0.0, 10.0, 10.0}, "red");
  const std::string doc = svg.str();
  EXPECT_NE(doc.find("y=\"90\""), std::string::npos);
}

TEST(Svg, SaveWritesFile) {
  SvgWriter svg(Rect{0.0, 0.0, 10.0, 10.0});
  const std::string path = ::testing::TempDir() + "/cny_test.svg";
  EXPECT_TRUE(svg.save(path));
  EXPECT_FALSE(svg.save("/nonexistent_dir_xyz/file.svg"));
}

}  // namespace
