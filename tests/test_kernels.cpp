// Pins for the kernel-backend layer (src/kernels/): the batched p_F
// evaluator and the MC post-draw kernels must be *bit-identical* to their
// scalar references on every backend, and the dispatch seam must honour
// forced-scalar mode. These tests are the contract that makes --simd and
// batching pure speed knobs.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <bit>
#include <cstdint>
#include <vector>

#include "celllib/generator.h"
#include "cnt/growth.h"
#include "cnt/pf_kernel.h"
#include "device/failure_model.h"
#include "netlist/design_generator.h"
#include "service/protocol.h"
#include "yield/flow.h"
#include "cnt/pitch_model.h"
#include "cnt/process.h"
#include "geom/interval.h"
#include "kernels/dispatch.h"
#include "kernels/mc_kernels.h"
#include "kernels/pf_batch.h"
#include "obs/metrics.h"
#include "kernels/rng_x4.h"
#include "rng/distributions.h"
#include "rng/engine.h"
#include "exec/mc_policy.h"
#include "yield/monte_carlo.h"

namespace {

using cny::cnt::pf_truncated;
using cny::cnt::PitchModel;
using cny::kernels::pf_truncated_batch;
using cny::kernels::SimdMode;

/// Restores the process-wide SIMD mode on scope exit — tests mutate it.
class ModeGuard {
 public:
  explicit ModeGuard(SimdMode mode) { cny::kernels::set_simd_mode(mode); }
  ~ModeGuard() { cny::kernels::set_simd_mode(SimdMode::Auto); }
};

std::uint64_t bits_of(double x) { return std::bit_cast<std::uint64_t>(x); }

/// Exact-bits comparison of a batch against per-width scalar calls.
void expect_batch_matches_scalar(const PitchModel& pitch,
                                 const std::vector<double>& widths, double z,
                                 double rel_tol) {
  const auto batch = pf_truncated_batch(pitch, widths, z, rel_tol);
  ASSERT_EQ(batch.size(), widths.size());
  for (std::size_t i = 0; i < widths.size(); ++i) {
    const auto ref = pf_truncated(pitch, widths[i], z, rel_tol);
    EXPECT_EQ(bits_of(batch[i].value), bits_of(ref.value))
        << "value lane " << i << " w=" << widths[i] << " z=" << z
        << " backend=" << cny::kernels::backend_name();
    EXPECT_EQ(batch[i].terms, ref.terms)
        << "terms lane " << i << " w=" << widths[i] << " z=" << z;
    EXPECT_EQ(bits_of(batch[i].remainder_bound), bits_of(ref.remainder_bound))
        << "remainder lane " << i << " w=" << widths[i] << " z=" << z;
  }
}

// The width sets exercise every packing shape: full 4-lanes, partial
// flushes, sub-mean-pitch widths, zero-width specials mid-batch, and a
// spread wide enough to give lanes very different truncation points.
const std::vector<std::vector<double>> kWidthSets = {
    {20.0, 36.0, 52.0, 68.0},                    // one full packet
    {8.0, 155.0},                                // 2-lane flush, far apart
    {33.0},                                      // single width → scalar
    {1.5, 2.0, 3.9, 40.0, 80.0, 120.0, 500.0},   // sub-pitch + big spread
    {0.0, 25.0, 0.0, 30.0, 35.0, 40.0, 45.0},    // specials interleaved
};

TEST(PfBatch, BitIdenticalToScalarAcrossPitchesWidthsAndZ) {
  // cv = 1 and 1/√2 take the integer-shape ladder; 0.6/0.9/1.2 the
  // non-integer prefactored path (series + continued fraction).
  for (double cv : {0.6, 0.7071067811865476, 0.9, 1.0, 1.2}) {
    const PitchModel pitch(4.0, cv);
    for (const auto& widths : kWidthSets) {
      for (double z : {0.0, 0.2, 0.531, 0.9, 1.0}) {
        expect_batch_matches_scalar(pitch, widths, z, 1e-14);
      }
    }
  }
}

TEST(PfBatch, BitIdenticalUnderForcedScalarDispatch) {
  ModeGuard guard(SimdMode::Off);
  ASSERT_STREQ(cny::kernels::backend_name(), "scalar");
  const PitchModel pitch(4.0, 0.9);
  for (const auto& widths : kWidthSets) {
    expect_batch_matches_scalar(pitch, widths, 0.531, 1e-14);
  }
}

TEST(PfBatch, SimdAndScalarModesAgreeBitForBit) {
  // The acceptance criterion stated directly: whatever the host supports,
  // --simd=off and --simd=auto produce the same bytes.
  const PitchModel pitch(4.0, 0.9);
  const std::vector<double> widths = {1.5, 20.0, 36.0, 52.0, 80.0, 155.0};
  for (double z : {0.0, 0.2, 0.531, 0.9}) {
    const auto auto_mode = pf_truncated_batch(pitch, widths, z);
    ModeGuard guard(SimdMode::Off);
    const auto off_mode = pf_truncated_batch(pitch, widths, z);
    for (std::size_t i = 0; i < widths.size(); ++i) {
      EXPECT_EQ(bits_of(auto_mode[i].value), bits_of(off_mode[i].value));
      EXPECT_EQ(auto_mode[i].terms, off_mode[i].terms);
      EXPECT_EQ(bits_of(auto_mode[i].remainder_bound),
                bits_of(off_mode[i].remainder_bound));
    }
  }
}

TEST(PfBatch, ExtremeTolerancesAndWideWindowFallback) {
  const PitchModel pitch(4.0, 0.9);
  for (double rel_tol : {1e-4, 1e-15}) {
    expect_batch_matches_scalar(pitch, {12.0, 47.0, 90.0, 130.0}, 0.7,
                                rel_tol);
  }
  // width/θ ≥ 650 (θ = 4·0.81 = 3.24 → width ≥ 2106) rides the gamma_q
  // fallback; batching must still hold bit-identity via the scalar path.
  expect_batch_matches_scalar(pitch, {2200.0, 30.0, 2500.0, 45.0}, 0.5,
                              1e-12);
}

TEST(Dispatch, ReportsConsistentState) {
  // Auto mode: active ⇔ compiled-in AND host support. Off: never active.
  EXPECT_EQ(cny::kernels::simd_active(),
            cny::kernels::simd_compiled() && cny::kernels::simd_supported());
  EXPECT_STREQ(cny::kernels::backend_name(),
               cny::kernels::simd_active() ? "avx2" : "scalar");
  ModeGuard guard(SimdMode::Off);
  EXPECT_FALSE(cny::kernels::simd_active());
  EXPECT_STREQ(cny::kernels::backend_name(), "scalar");
}

TEST(RngX4, LanesBitEqualToScalarStreams) {
  const std::uint64_t seed = 0xC0FFEE123ull;
  cny::kernels::Xoshiro256x4 x4(seed, 0);
  const cny::rng::Xoshiro256 root(seed);
  std::array<cny::rng::Xoshiro256, 4> streams = {
      root.make_stream(0), root.make_stream(1), root.make_stream(2),
      root.make_stream(3)};
  for (int step = 0; step < 1000; ++step) {
    std::uint64_t out[4];
    x4.next(out);
    for (int l = 0; l < 4; ++l) EXPECT_EQ(out[l], streams[l]()) << l;
  }
  // And the uniform mapping matches Xoshiro256::uniform exactly.
  cny::kernels::Xoshiro256x4 u4(seed, 2);
  std::array<cny::rng::Xoshiro256, 4> ustreams = {
      root.make_stream(2), root.make_stream(3), root.make_stream(4),
      root.make_stream(5)};
  for (int step = 0; step < 100; ++step) {
    double u[4];
    u4.uniforms(u);
    for (int l = 0; l < 4; ++l) {
      EXPECT_EQ(bits_of(u[l]), bits_of(ustreams[l].uniform()));
    }
  }
}

TEST(McKernels, ThinningMatchesScalarPredicateInBothModes) {
  cny::rng::Xoshiro256 rng(99);
  for (std::size_t n : {0ul, 1ul, 3ul, 4ul, 5ul, 17ul, 256ul, 1001ul}) {
    std::vector<double> ys(n);
    std::vector<double> us(n);
    for (std::size_t i = 0; i < n; ++i) {
      ys[i] = static_cast<double>(i) * 3.7;
      us[i] = rng.uniform();
    }
    for (double pf : {0.0, 0.05, 0.5, 1.0}) {
      std::vector<double> expected;
      for (std::size_t i = 0; i < n; ++i) {
        if (!(us[i] < pf)) expected.push_back(ys[i]);
      }
      std::vector<double> got;
      cny::kernels::thin_functional(ys, us, pf, got);
      EXPECT_EQ(got, expected) << "auto n=" << n << " pf=" << pf;
      ModeGuard guard(SimdMode::Off);
      cny::kernels::thin_functional(ys, us, pf, got);
      EXPECT_EQ(got, expected) << "off n=" << n << " pf=" << pf;
    }
  }
}

TEST(McKernels, WindowSweepMatchesPerWindowLowerBound) {
  cny::rng::Xoshiro256 rng(7);
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t n_points = rng.uniform_index(40);
    std::vector<double> points(n_points);
    for (auto& p : points) p = rng.uniform(0.0, 100.0);
    std::sort(points.begin(), points.end());
    const std::size_t n_windows = 1 + rng.uniform_index(8);
    std::vector<cny::geom::Interval> windows(n_windows);
    for (auto& w : windows) {
      w.lo = rng.uniform(0.0, 95.0);
      w.hi = w.lo + rng.uniform(0.1, 20.0);
    }
    std::sort(windows.begin(), windows.end(),
              [](const auto& a, const auto& b) { return a.lo < b.lo; });
    // Reference: the historical per-window binary search.
    bool expected = false;
    for (const auto& w : windows) {
      const auto it = std::lower_bound(points.begin(), points.end(), w.lo);
      if (!(it != points.end() && *it < w.hi)) {
        expected = true;
        break;
      }
    }
    EXPECT_EQ(cny::kernels::any_window_empty_sorted(points, windows),
              expected)
        << "auto trial " << trial;
    ModeGuard guard(SimdMode::Off);
    EXPECT_EQ(cny::kernels::any_window_empty_sorted(points, windows),
              expected)
        << "off trial " << trial;
  }
}

TEST(McKernels, FunctionalPositionsMatchesHistoricalFusedLoop) {
  // The two-phase restructure must keep both the output and the RNG
  // consumption of the original fused loop: replay the historical draw
  // sequence by hand and require identical positions AND identical engine
  // state afterwards.
  const PitchModel pitch(4.0, 0.9);
  const auto proc = cny::cnt::fig21_mid();
  const cny::cnt::DirectionalGrowth growth(pitch, proc, 2.0e5);
  const double pf = proc.p_fail();
  for (SimdMode mode : {SimdMode::Auto, SimdMode::Off}) {
    ModeGuard guard(mode);
    cny::rng::Xoshiro256 rng_new(1234);
    cny::rng::Xoshiro256 rng_ref(1234);
    for (int rep = 0; rep < 20; ++rep) {
      std::vector<double> got;
      growth.functional_positions(rng_new, 0.0, 300.0, got);
      std::vector<double> expected;
      double y = 0.0 + pitch.sample_equilibrium(rng_ref);
      while (y < 300.0) {
        if (!cny::rng::sample_bernoulli(rng_ref, pf)) expected.push_back(y);
        y += pitch.sample(rng_ref);
      }
      ASSERT_EQ(got.size(), expected.size()) << "rep " << rep;
      for (std::size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(bits_of(got[i]), bits_of(expected[i]));
      }
      EXPECT_EQ(rng_new.state(), rng_ref.state()) << "rep " << rep;
    }
  }
}

TEST(McKernels, ChipYieldBitEqualAcrossSimdModesAndThreads) {
  // The full MC determinism contract with the new kernels underneath:
  // (seed, n_streams) fixes the result; SIMD mode and worker threads don't.
  const PitchModel pitch(4.0, 0.9);
  const auto proc = cny::cnt::fig21_mid();
  const cny::cnt::DirectionalGrowth growth(pitch, proc, 2.0e5);
  cny::yield::ChipSpec spec;
  spec.n_rows = 4;
  spec.row_windows = {{10.0, 14.0}, {2.0, 6.0}, {22.0, 27.0}, {4.0, 9.0}};

  std::vector<cny::yield::ChipMcResult> results;
  for (SimdMode mode : {SimdMode::Auto, SimdMode::Off}) {
    ModeGuard guard(mode);
    for (unsigned threads : {1u, 2u, 8u}) {
      cny::rng::Xoshiro256 rng(2024);
      cny::exec::McPolicy policy;
      policy.n_threads = threads;
      policy.n_streams = 8;
      results.push_back(cny::yield::simulate_chip_yield(
          growth, spec, cny::yield::GrowthStyle::Directional, 400, rng,
          policy));
    }
  }
  for (std::size_t i = 1; i < results.size(); ++i) {
    EXPECT_EQ(bits_of(results[i].chip_yield), bits_of(results[0].chip_yield))
        << i;
    EXPECT_EQ(bits_of(results[i].p_rf), bits_of(results[0].p_rf)) << i;
    EXPECT_EQ(results[i].rows_simulated, results[0].rows_simulated) << i;
  }
}

TEST(Kernels, RunFlowResponseByteIdenticalAcrossSimdModes) {
  // The end-to-end acceptance pin: a full run_flow — solver iterations,
  // interpolant build, circuit-yield verification, conditional MC — must
  // produce the *same bytes* on the wire whichever backend ran the
  // kernels. A fresh model per mode keeps the memo from hiding a
  // divergent kernel behind a warm cache.
  const auto lib = cny::celllib::make_nangate45_like();
  const auto design = cny::netlist::make_openrisc_like(lib);
  cny::yield::FlowParams params;
  params.mc_samples = 400;
  params.seed = 7;
  params.n_threads = 2;
  params.use_interpolant = true;
  params.interpolant_knots = 33;

  std::vector<std::string> encoded;
  for (SimdMode mode : {SimdMode::Auto, SimdMode::Off}) {
    ModeGuard guard(mode);
    const cny::device::FailureModel model(PitchModel(4.0, 0.9),
                                          cny::cnt::fig21_mid());
    encoded.push_back(cny::service::encode_flow_response(
        cny::yield::run_flow(lib, design, model, params)));
  }
  EXPECT_EQ(encoded[0], encoded[1]);
}

// Lane-occupancy accounting must balance: every non-degenerate width in a
// batch is counted exactly once, as either a SIMD lane or a scalar width —
// on *both* backends (the scalar build books everything scalar).
TEST(Kernels, LaneOccupancyCountersBalanceOnEveryBackend) {
  auto& registry = cny::obs::Registry::global();
  const PitchModel pitch(4.0, 0.9);
  const std::vector<double> widths{20.0, 36.0, 52.0, 68.0, 84.0,
                                   100.0, 116.0};  // no degenerate entries

  for (SimdMode mode : {SimdMode::Auto, SimdMode::Off}) {
    ModeGuard guard(mode);
    const auto before = registry.snapshot();
    const auto counter = [&before](const char* name) {
      for (const auto& [n, v] : before.counters) {
        if (n == name) return v;
      }
      return std::uint64_t{0};
    };
    const std::uint64_t calls0 = counter("kernels.pf_batch_calls");
    const std::uint64_t widths0 = counter("kernels.pf_batch_widths");
    const std::uint64_t lanes0 = counter("kernels.pf_simd_lanes");
    const std::uint64_t scalar0 = counter("kernels.pf_scalar_widths");

    (void)pf_truncated_batch(pitch, widths, 0.531, 1e-12);

    EXPECT_EQ(registry.counter("kernels.pf_batch_calls").value(), calls0 + 1);
    EXPECT_EQ(registry.counter("kernels.pf_batch_widths").value(),
              widths0 + widths.size());
    const std::uint64_t lanes =
        registry.counter("kernels.pf_simd_lanes").value() - lanes0;
    const std::uint64_t scalar =
        registry.counter("kernels.pf_scalar_widths").value() - scalar0;
    EXPECT_EQ(lanes + scalar, widths.size())
        << "backend=" << cny::kernels::backend_name();
    if (mode == SimdMode::Off) {
      EXPECT_EQ(lanes, 0u) << "forced-scalar must book no SIMD lanes";
    }
  }
}

}  // namespace
