// Tests for the YieldFlow entry point, the intra-cell routing estimator,
// and the P² streaming quantile.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "celllib/generator.h"
#include "layout/aligned_active.h"
#include "layout/router_lite.h"
#include "netlist/design_generator.h"
#include "rng/engine.h"
#include "stats/quantile.h"
#include "util/contracts.h"
#include "yield/flow.h"

namespace {

using namespace cny;

// ------------------------------------------------------------------ flow

struct FlowFixture : public ::testing::Test {
  static const yield::FlowResult& result() {
    static const yield::FlowResult res = [] {
      const auto& lib = library();
      const auto design = netlist::make_openrisc_like(lib);
      const device::FailureModel model(cnt::PitchModel(4.0, 0.9),
                                       cnt::fig21_worst());
      yield::FlowParams params;
      params.mc_samples = 8000;
      return yield::run_flow(lib, design, model, params);
    }();
    return res;
  }
  static const celllib::Library& library() {
    static const celllib::Library lib = celllib::make_nangate45_like();
    return lib;
  }
};

TEST_F(FlowFixture, AllFourStrategiesPresent) {
  EXPECT_EQ(result().strategies.size(), 4u);
  EXPECT_NO_THROW(result().get(yield::Strategy::Uncorrelated));
  EXPECT_NO_THROW(result().get(yield::Strategy::DirectionalOnly));
  EXPECT_NO_THROW(result().get(yield::Strategy::AlignedOneRow));
  EXPECT_NO_THROW(result().get(yield::Strategy::AlignedTwoRows));
}

TEST_F(FlowFixture, StrategyOrderingMatchesPaper) {
  const auto& unc = result().get(yield::Strategy::Uncorrelated);
  const auto& dir = result().get(yield::Strategy::DirectionalOnly);
  const auto& one = result().get(yield::Strategy::AlignedOneRow);
  const auto& two = result().get(yield::Strategy::AlignedTwoRows);
  // W_min strictly improves with correlation credit.
  EXPECT_GT(unc.w_min, dir.w_min);
  EXPECT_GT(dir.w_min, one.w_min);
  EXPECT_GT(two.w_min, one.w_min);   // two rows pay a small W_min premium
  EXPECT_LT(two.w_min, dir.w_min);
  // Power penalty follows W_min.
  EXPECT_GT(unc.power_penalty, one.power_penalty);
  // Area cost only for the one-row aligned flow.
  EXPECT_EQ(unc.cells_widened, 0u);
  EXPECT_GT(one.cells_widened, 0u);
  EXPECT_EQ(two.cells_widened, 0u);
}

TEST_F(FlowFixture, RelaxationsMatchRowModel) {
  EXPECT_NEAR(result().m_r_min, 360.0, 1e-9);
  EXPECT_DOUBLE_EQ(result().get(yield::Strategy::AlignedOneRow).relaxation,
                   360.0);
  EXPECT_DOUBLE_EQ(result().get(yield::Strategy::AlignedTwoRows).relaxation,
                   180.0);
  const double dir =
      result().get(yield::Strategy::DirectionalOnly).relaxation;
  EXPECT_GT(dir, 10.0);
  EXPECT_LT(dir, 60.0);  // paper: 26.5X
}

TEST_F(FlowFixture, SummaryTableRenders) {
  const auto table = result().summary_table();
  EXPECT_EQ(table.n_rows(), 4u);
  const std::string text = table.to_text();
  EXPECT_NE(text.find("aligned-active (1 row)"), std::string::npos);
  EXPECT_NE(text.find("360X"), std::string::npos);
}

TEST(Flow, RejectsMismatchedDesign) {
  const auto lib_a = celllib::make_nangate45_like();
  const auto lib_b = celllib::make_nangate45_like();
  const auto design = netlist::make_openrisc_like(lib_a);
  const device::FailureModel model(cnt::PitchModel(4.0, 0.9),
                                   cnt::fig21_worst());
  EXPECT_THROW(yield::run_flow(lib_b, design, model, {}),
               cny::ContractViolation);
}

// ---------------------------------------------------------------- router

TEST(RouterLite, WirelengthPositiveAndStable) {
  const auto lib = celllib::make_nangate45_like();
  const auto costs = layout::library_routing_costs(lib);
  ASSERT_EQ(costs.size(), lib.size());
  for (const auto& c : costs) {
    EXPECT_GT(c.wirelength, 0.0) << c.cell;
  }
  // Deterministic.
  EXPECT_DOUBLE_EQ(costs[3].wirelength,
                   layout::estimate_wirelength(lib.cells()[3]));
}

TEST(RouterLite, MoreTransistorsMoreWire) {
  const auto lib = celllib::make_nangate45_like();
  const auto* inv = lib.find("INV_X1");
  const auto* fa = lib.find("FA_X1");
  ASSERT_NE(inv, nullptr);
  ASSERT_NE(fa, nullptr);
  EXPECT_GT(layout::estimate_wirelength(*fa),
            layout::estimate_wirelength(*inv));
}

TEST(RouterLite, AlignedActiveRoutingDeltaIsModest) {
  // The transform preserves pins (Sec 3.3), so intra-cell routing shifts by
  // only a few percent library-wide.
  const auto lib = celllib::make_nangate45_like();
  layout::AlignOptions options;
  options.w_min = 103.0;
  const auto aligned = layout::align_active(lib, options, 140.0);
  const auto delta = layout::routing_delta(lib, aligned.library);
  EXPECT_GT(delta.before, 0.0);
  EXPECT_LT(std::fabs(delta.relative()), 0.15);
  EXPECT_LT(delta.worst_cell, 0.8);
}

TEST(RouterLite, DeltaRejectsMismatchedLibraries) {
  const auto a = celllib::make_nangate45_like();
  const auto b = celllib::make_commercial65_like();
  EXPECT_THROW(layout::routing_delta(a, b), cny::ContractViolation);
}

// -------------------------------------------------------------- quantile

TEST(P2Quantile, ExactForSmallSamples) {
  stats::P2Quantile q(0.5);
  q.add(3.0);
  EXPECT_DOUBLE_EQ(q.value(), 3.0);
  q.add(1.0);
  q.add(2.0);
  EXPECT_DOUBLE_EQ(q.value(), 2.0);  // median of {1,2,3}
}

TEST(P2Quantile, MedianOfUniform) {
  rng::Xoshiro256 rng(601);
  stats::P2Quantile q(0.5);
  for (int i = 0; i < 100000; ++i) q.add(rng.uniform());
  EXPECT_NEAR(q.value(), 0.5, 0.01);
}

TEST(P2Quantile, TailQuantileOfExponential) {
  rng::Xoshiro256 rng(602);
  stats::P2Quantile q(0.99);
  std::vector<double> all;
  for (int i = 0; i < 200000; ++i) {
    const double x = -std::log1p(-rng.uniform());
    q.add(x);
    all.push_back(x);
  }
  std::sort(all.begin(), all.end());
  const double exact = all[static_cast<std::size_t>(0.99 * (all.size() - 1))];
  EXPECT_NEAR(q.value() / exact, 1.0, 0.05);
  // Analytic check too: -ln(0.01) ≈ 4.605.
  EXPECT_NEAR(q.value(), 4.605, 0.25);
}

TEST(P2Quantile, MonotoneAcrossQuantiles) {
  rng::Xoshiro256 rng(603);
  stats::P2Quantile q10(0.1), q50(0.5), q90(0.9);
  for (int i = 0; i < 50000; ++i) {
    const double x = rng.uniform() * rng.uniform();
    q10.add(x);
    q50.add(x);
    q90.add(x);
  }
  EXPECT_LT(q10.value(), q50.value());
  EXPECT_LT(q50.value(), q90.value());
}

TEST(P2Quantile, RejectsInvalidQuantile) {
  EXPECT_THROW(stats::P2Quantile(0.0), cny::ContractViolation);
  EXPECT_THROW(stats::P2Quantile(1.0), cny::ContractViolation);
}

}  // namespace
