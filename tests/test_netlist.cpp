#include <gtest/gtest.h>

#include "celllib/generator.h"
#include "netlist/design.h"
#include "netlist/design_generator.h"
#include "util/contracts.h"

namespace {

using namespace cny::netlist;
using cny::celllib::Library;

const Library& lib45() {
  static const Library lib = cny::celllib::make_nangate45_like();
  return lib;
}

TEST(Design, InstanceAccounting) {
  Design d("t", &lib45());
  d.add_instances("INV_X1", 10);
  d.add_instances("NAND2_X1", 5);
  d.add_instances("INV_X1", 2);  // merges
  EXPECT_EQ(d.n_instances(), 17u);
  EXPECT_EQ(d.instances().size(), 2u);
  const auto* inv = lib45().find("INV_X1");
  const auto* nand = lib45().find("NAND2_X1");
  EXPECT_EQ(d.n_transistors(),
            12 * inv->transistors.size() + 5 * nand->transistors.size());
}

TEST(Design, RejectsUnknownCell) {
  Design d("t", &lib45());
  EXPECT_THROW(d.add_instances("NOT_A_CELL", 1), cny::ContractViolation);
}

TEST(Design, TotalWidthAndUpsizedWidth) {
  Design d("t", &lib45());
  d.add_instances("INV_X1", 1);
  const auto* inv = lib45().find("INV_X1");
  double w = 0.0, up = 0.0;
  for (const auto& t : inv->transistors) {
    w += t.width;
    up += std::max(t.width, 500.0);
  }
  EXPECT_DOUBLE_EQ(d.total_width(), w);
  EXPECT_DOUBLE_EQ(d.total_width_upsized(500.0), up);
  EXPECT_GE(d.total_width_upsized(0.0), d.total_width() - 1e-9);
}

TEST(Design, CountBelowThreshold) {
  Design d("t", &lib45());
  d.add_instances("INV_X1", 3);
  EXPECT_EQ(d.count_transistors_below(1e6),
            3 * lib45().find("INV_X1")->transistors.size());
  EXPECT_EQ(d.count_transistors_below(1.0), 0u);
}

TEST(Design, WidthSpectrumConsistentWithHistogram) {
  const auto d = make_openrisc_like(lib45());
  const auto spectrum = d.width_spectrum();
  std::uint64_t total = 0;
  for (const auto& [w, n] : spectrum) {
    EXPECT_GT(w, 0.0);
    total += n;
  }
  EXPECT_EQ(total, d.n_transistors());
  // Spectrum is sorted ascending by width.
  for (std::size_t i = 1; i < spectrum.size(); ++i) {
    EXPECT_LT(spectrum[i - 1].first, spectrum[i].first);
  }
}

TEST(Design, RetargetPreservesCounts) {
  const auto d = make_openrisc_like(lib45());
  const Library scaled = lib45().scaled(32.0);
  const auto d32 = d.retarget(&scaled);
  EXPECT_EQ(d32.n_instances(), d.n_instances());
  EXPECT_EQ(d32.n_transistors(), d.n_transistors());
  EXPECT_NEAR(d32.total_width(), d.total_width() * 32.0 / 45.0, 1.0);
}

TEST(DesignGenerator, HitsInstanceTarget) {
  const auto d = generate_design("t", lib45(), 10000, {});
  EXPECT_NEAR(double(d.n_instances()), 10000.0, 150.0);
}

TEST(DesignGenerator, MixFractionsMustSumToOne) {
  MixParams mix;
  mix.frac_invbuf = 0.9;  // sum now > 1
  EXPECT_THROW(generate_design("t", lib45(), 1000, mix),
               cny::ContractViolation);
}

TEST(DesignGenerator, Fig22aCalibration) {
  // The calibration target of Fig 2.2a: the two left-most 80 nm bins hold
  // ~33 % of all transistors (the paper's M_min).
  const auto d = make_openrisc_like(lib45());
  const auto h = d.width_histogram(80.0, 800.0);
  const double below_160 = h.cumulative_fraction(1);
  EXPECT_GT(below_160, 0.28);
  EXPECT_LT(below_160, 0.40);
  // Nothing below the library minimum.
  EXPECT_DOUBLE_EQ(h.fraction(0), 0.0);
  EXPECT_DOUBLE_EQ(h.underflow(), 0.0);
}

TEST(DesignGenerator, DeterministicOutput) {
  const auto a = make_openrisc_like(lib45());
  const auto b = make_openrisc_like(lib45());
  EXPECT_EQ(a.n_instances(), b.n_instances());
  EXPECT_EQ(a.n_transistors(), b.n_transistors());
  EXPECT_DOUBLE_EQ(a.total_width(), b.total_width());
}

TEST(DesignGenerator, ContainsExpectedCellClasses) {
  const auto d = make_openrisc_like(lib45());
  bool has_inv = false, has_seq = false, has_complex = false, has_buf8 = false;
  for (const auto& ic : d.instances()) {
    const auto* cell = lib45().find(ic.cell_name);
    if (cell->family == "INV") has_inv = true;
    if (cell->kind == cny::celllib::CellKind::Sequential) has_seq = true;
    if (cell->family == "AOI222") has_complex = true;
    if (cell->kind == cny::celllib::CellKind::Buffer && cell->drive >= 8) {
      has_buf8 = true;
    }
  }
  EXPECT_TRUE(has_inv);
  EXPECT_TRUE(has_seq);
  EXPECT_TRUE(has_complex);
  EXPECT_TRUE(has_buf8);
}

TEST(DesignGenerator, WorksOnCommercialLibrary) {
  const auto lib = cny::celllib::make_commercial65_like();
  const auto d = generate_design("c65", lib, 20000, {});
  EXPECT_GT(d.n_transistors(), 100000u);
  EXPECT_GT(d.count_transistors_below(107.0), 0u);
}

}  // namespace
