// Exactness pins for the truncated-PGF kernel (cnt/pf_kernel.h): the
// truncated evaluator must agree with the full-PMF reference path to
// ≤ 1e-12 relative everywhere the library evaluates p_F, while certifying
// its own truncation remainder.
#include <gtest/gtest.h>

#include <cmath>

#include "cnt/count_distribution.h"
#include "cnt/pf_kernel.h"
#include "cnt/process.h"
#include "numeric/special.h"
#include "rng/engine.h"
#include "util/contracts.h"

namespace {

using cny::cnt::CountDistribution;
using cny::cnt::pf_truncated;
using cny::cnt::PitchModel;

/// |a-b| relative to the reference b, safe at b = 0.
double rel_err(double a, double b) {
  if (b == 0.0) return std::fabs(a);
  return std::fabs(a - b) / std::fabs(b);
}

TEST(PfKernel, MatchesFullPmfAcrossWidthsCvsAndZ) {
  // Integer shapes (cv = 1, 1/√2) exercise the exact ladder; the rest the
  // seeded prefactor path. z spans deep-tail through near-certain failure.
  for (double cv : {0.6, 0.7071067811865476, 0.9, 1.0, 1.2}) {
    for (double w : {8.0, 20.0, 80.0, 155.0, 500.0}) {
      const PitchModel pitch(4.0, cv);
      const CountDistribution full(pitch, w);
      for (double z : {0.0, 0.1, 0.33, 0.531, 0.9, 1.0}) {
        const double reference = full.pgf(z);
        const auto truncated = pf_truncated(pitch, w, z);
        EXPECT_LE(rel_err(truncated.value, reference), 1e-12)
            << "cv=" << cv << " w=" << w << " z=" << z
            << " full=" << reference << " trunc=" << truncated.value;
      }
    }
  }
}

TEST(PfKernel, MatchesFullPmfOnFig21SweepGrid) {
  // The exact width grid of the Fig 2.1 experiment (20..180 nm) under all
  // three processing conditions, paper pitch CV = 0.9.
  const PitchModel pitch(4.0, 0.9);
  for (double w = 20.0; w <= 180.0; w += 16.0) {
    const CountDistribution full(pitch, w);
    for (const auto& proc : {cny::cnt::fig21_worst(), cny::cnt::fig21_mid(),
                             cny::cnt::fig21_ideal()}) {
      const double z = proc.p_fail();
      EXPECT_LE(rel_err(pf_truncated(pitch, w, z).value, full.pgf(z)), 1e-12)
          << "w=" << w << " z=" << z;
    }
  }
}

TEST(PfKernel, PgfAtMatchesNaivePmfSumRandomised) {
  // Property test: against the naive Σ pmf(n)·z^n for randomised pitch
  // parameters, widths and z.
  cny::rng::Xoshiro256 rng(2024);
  for (int trial = 0; trial < 40; ++trial) {
    const double mean = 2.0 + 6.0 * rng.uniform();
    const double cv = 0.5 + 0.9 * rng.uniform();
    const double w = 10.0 + 190.0 * rng.uniform();
    const double z = 0.95 * rng.uniform();
    const PitchModel pitch(mean, cv);
    const CountDistribution dist(pitch, w);
    double naive = 0.0;
    double zn = 1.0;
    for (long n = 0; n <= dist.max_n(); ++n) {
      naive += dist.pmf(n) * zn;
      zn *= z;
    }
    EXPECT_LE(rel_err(CountDistribution::pgf_at(pitch, w, z), naive), 1e-12)
        << "mean=" << mean << " cv=" << cv << " w=" << w << " z=" << z;
  }
}

TEST(PfKernel, RemainderBoundIsCertifiedAndSmall) {
  const PitchModel pitch(4.0, 0.9);
  for (double w : {40.0, 155.0, 500.0}) {
    const auto res = pf_truncated(pitch, w, 0.531);
    EXPECT_GE(res.remainder_bound, 0.0);
    // The loop only stops once the certified remainder is inside rel_tol
    // (default 1e-14) of the accumulated value.
    EXPECT_LE(res.remainder_bound, 1e-13 * res.value + 1e-300) << "w=" << w;
  }
}

TEST(PfKernel, TruncatesWellShortOfTheFullPmfSupport) {
  // The point of the kernel: at large W only O(p_f·W/μ + log(1/ε)) terms
  // are evaluated, not the full bulk + 12σ sweep.
  const PitchModel pitch(4.0, 0.9);
  const double w = 500.0;
  const CountDistribution full(pitch, w);
  const auto res = pf_truncated(pitch, w, 0.531);
  EXPECT_GT(res.terms, 0);
  EXPECT_LT(res.terms, (full.max_n() * 2) / 3)
      << "terms=" << res.terms << " full support=" << full.max_n();
}

TEST(PfKernel, DegenerateInputs) {
  const PitchModel pitch(4.0, 0.9);
  EXPECT_DOUBLE_EQ(pf_truncated(pitch, 0.0, 0.5).value, 1.0);
  EXPECT_DOUBLE_EQ(pf_truncated(pitch, 120.0, 1.0).value, 1.0);
  const CountDistribution d(pitch, 60.0);
  EXPECT_NEAR(pf_truncated(pitch, 60.0, 0.0).value, d.pmf(0), 1e-15);
  EXPECT_THROW((void)pf_truncated(pitch, -1.0, 0.5), cny::ContractViolation);
  EXPECT_THROW((void)pf_truncated(pitch, 10.0, 1.5), cny::ContractViolation);
  EXPECT_THROW((void)pf_truncated(pitch, 10.0, 0.5, 0.0),
               cny::ContractViolation);
}

TEST(PfKernel, EdgeCasesHonourTheContract) {
  const PitchModel pitch(4.0, 0.9);
  // z endpoints: z = 0 collapses the PGF to P{N(W) = 0} with nothing
  // truncated; z = 1 is the total mass, exactly 1 with a zero remainder.
  for (double w : {2.0, 60.0, 500.0}) {
    const CountDistribution full(pitch, w);
    const auto at0 = pf_truncated(pitch, w, 0.0);
    EXPECT_LE(rel_err(at0.value, full.pmf(0)), 1e-13) << "w=" << w;
    EXPECT_LE(at0.remainder_bound, 1e-14 * at0.value);
    const auto at1 = pf_truncated(pitch, w, 1.0);
    EXPECT_EQ(at1.value, 1.0);
    EXPECT_EQ(at1.remainder_bound, 0.0);
  }
  // Sub-pitch devices (W below one mean pitch): P{N = 0} dominates, the
  // value must stay a probability and match the full-PMF reference.
  for (double w : {0.25, 1.0, 3.9}) {
    const CountDistribution full(pitch, w);
    const auto res = pf_truncated(pitch, w, 0.531);
    EXPECT_GT(res.value, 0.0);
    EXPECT_LE(res.value, 1.0);
    EXPECT_LE(rel_err(res.value, full.pgf(0.531)), 1e-12) << "w=" << w;
  }
  // Extreme tolerances: the certified remainder inequality
  // (remainder_bound <= rel_tol * value) must hold on exit at both a
  // loose 1e-4 and a near-machine 1e-15, and the loose answer must agree
  // with the tight one to within its own certificate.
  for (double w : {2.0, 60.0, 155.0, 500.0}) {
    const auto tight = pf_truncated(pitch, w, 0.531, 1e-15);
    EXPECT_LE(tight.remainder_bound, 1e-15 * tight.value) << "w=" << w;
    const auto loose = pf_truncated(pitch, w, 0.531, 1e-4);
    EXPECT_LE(loose.remainder_bound, 1e-4 * loose.value) << "w=" << w;
    EXPECT_LE(loose.terms, tight.terms);
    EXPECT_LE(rel_err(loose.value, tight.value), 2e-4) << "w=" << w;
  }
}

TEST(PfKernel, GammaQPrefactoredMatchesGammaQ) {
  // The inline prefactored variant must reproduce gamma_q when handed the
  // exact prefactor τ = x^a e^{-x}/Γ(a+1) and the tight tolerance.
  for (double a : {0.8, 1.2345679, 5.0, 40.0, 176.0}) {
    for (double x : {0.3, 4.0, 38.0, 102.0, 154.0}) {
      const double tau =
          std::exp(a * std::log(x) - x - cny::numeric::log_gamma(a + 1.0));
      const double got =
          cny::numeric::gamma_q_prefactored(a, x, tau, 1e-15);
      const double want = cny::numeric::gamma_q(a, x);
      EXPECT_LE(rel_err(got, want), 1e-12) << "a=" << a << " x=" << x;
    }
  }
}

}  // namespace
