#include <gtest/gtest.h>

#include <cmath>

#include "yield/circuit_yield.h"
#include "yield/row_model.h"
#include "yield/wmin_solver.h"
#include "util/contracts.h"

namespace {

using namespace cny::yield;
using cny::cnt::PitchModel;
using cny::device::FailureModel;

FailureModel paper_model() {
  return FailureModel(PitchModel(4.0, 0.9), cny::cnt::fig21_worst());
}

// ------------------------------------------------------------ spectrum

TEST(Spectrum, ScaleWidthsAndCounts) {
  const WidthSpectrum s = {{100.0, 10}, {200.0, 20}};
  const auto scaled = scale_spectrum(s, 0.5, 3.0);
  ASSERT_EQ(scaled.size(), 2u);
  EXPECT_DOUBLE_EQ(scaled[0].first, 50.0);
  EXPECT_EQ(scaled[0].second, 30u);
  EXPECT_EQ(spectrum_count(scaled), 90u);
}

TEST(Spectrum, ScaleDropsZeroCounts) {
  const WidthSpectrum s = {{100.0, 1}};
  const auto scaled = scale_spectrum(s, 1.0, 0.4);  // rounds to 0
  EXPECT_TRUE(scaled.empty());
}

// -------------------------------------------------------- circuit yield

TEST(CircuitYield, MatchesHandComputation) {
  const auto model = paper_model();
  const WidthSpectrum s = {{40.0, 3}, {80.0, 2}};
  const auto y = circuit_yield(s, model);
  const double p40 = model.p_f(40.0);
  const double p80 = model.p_f(80.0);
  EXPECT_NEAR(y.sum_pf, 3 * p40 + 2 * p80, 1e-15);
  EXPECT_NEAR(y.yield_exact,
              std::pow(1 - p40, 3) * std::pow(1 - p80, 2), 1e-12);
  EXPECT_NEAR(y.yield_approx, 1.0 - y.sum_pf, 1e-15);
  EXPECT_DOUBLE_EQ(y.min_width, 40.0);
}

TEST(CircuitYield, ApproximationTightForSmallPf) {
  const auto model = paper_model();
  const WidthSpectrum s = {{150.0, 1000000}};
  const auto y = circuit_yield(s, model);
  EXPECT_NEAR(y.yield_exact, y.yield_approx, 1e-4);
}

TEST(CircuitYield, UpsizingImprovesYield) {
  const auto model = paper_model();
  const WidthSpectrum s = {{60.0, 1000}, {200.0, 1000}};
  const auto base = circuit_yield(s, model);
  const auto up = circuit_yield(s, model, 150.0);
  EXPECT_GT(up.yield_exact, base.yield_exact);
  EXPECT_DOUBLE_EQ(up.min_width, 150.0);
}

TEST(CircuitYield, MergesEqualUpsizedWidths) {
  const auto model = paper_model();
  const WidthSpectrum s = {{60.0, 5}, {70.0, 5}, {80.0, 5}};
  const auto up = circuit_yield(s, model, 100.0);
  EXPECT_NEAR(up.sum_pf, 15.0 * model.p_f(100.0), 1e-12);
}

// ------------------------------------------------------------ W_min

TEST(WminSolver, InvertPfRoundTrips) {
  const auto model = paper_model();
  for (double target : {1e-4, 1e-6, 3e-9}) {
    const double w = invert_p_f(model, target, 10.0, 400.0);
    EXPECT_NEAR(model.p_f(w) / target, 1.0, 1e-4) << target;
  }
}

TEST(WminSolver, FixedMminMatchesGraphicalProcedure) {
  // Paper's Sec 2.2 example: M = 100e6, 33 % minimum-size, yield 90 %
  // → horizontal line at 3.03e-9 → W_min ≈ 155 nm (Fig 2.1).
  const auto model = paper_model();
  WminRequest req;
  req.yield_desired = 0.90;
  req.fixed_m_min = 33000000;
  const WidthSpectrum s = {{100.0, 33000000}, {300.0, 67000000}};
  const auto res = solve_w_min(s, model, req);
  EXPECT_TRUE(res.converged);
  EXPECT_NEAR(res.p_f_target, 0.1 / 33e6, 1e-12);
  EXPECT_NEAR(res.w_min, 158.0, 6.0);  // calibrated curve (paper: 155)
}

TEST(WminSolver, FixpointRecountsMmin) {
  const auto model = paper_model();
  WminRequest req;
  req.yield_desired = 0.90;
  // Spectrum straddling the threshold: the solver must converge to a
  // self-consistent M_min (only the 120 nm bin is below W_min).
  const WidthSpectrum s = {{120.0, 30000000}, {180.0, 30000000},
                           {400.0, 40000000}};
  const auto res = solve_w_min(s, model, req);
  EXPECT_TRUE(res.converged);
  EXPECT_EQ(res.m_min, 30000000u);
  EXPECT_GT(res.w_min, 120.0);
  EXPECT_LT(res.w_min, 180.0);
  // Self-consistency: the count below w_min equals m_min.
  std::uint64_t below = 0;
  for (const auto& [w, n] : s) {
    if (w <= res.w_min) below += n;
  }
  EXPECT_EQ(below, res.m_min);
}

TEST(WminSolver, RelaxationShrinksWmin) {
  const auto model = paper_model();
  const WidthSpectrum s = {{100.0, 33000000}, {300.0, 67000000}};
  WminRequest base;
  base.fixed_m_min = 33000000;
  const auto w1 = solve_w_min(s, model, base);
  WminRequest relaxed = base;
  relaxed.relaxation = 350.0;
  const auto w2 = solve_w_min(s, model, relaxed);
  EXPECT_LT(w2.w_min, w1.w_min);
  // Paper: 155 → 103 nm, a ~52 nm drop; our calibrated curve gives ~50 nm.
  EXPECT_NEAR(w1.w_min - w2.w_min, 50.0, 10.0);
}

TEST(WminSolver, VerificationMeetsYieldTarget) {
  const auto model = paper_model();
  const WidthSpectrum s = {{100.0, 33000000}, {300.0, 67000000}};
  WminRequest req;
  req.yield_desired = 0.90;
  const auto res = solve_w_min(s, model, req);
  // Upsizing to the solved W_min must achieve the desired yield (the
  // approximation neglects non-minimum devices, so allow slight slack).
  EXPECT_GT(res.verification.yield_exact, 0.88);
}

TEST(WminSolver, RejectsUnreachableTargets) {
  const auto model = paper_model();
  const WidthSpectrum s = {{100.0, 10}};
  WminRequest req;
  req.yield_desired = 0.90;
  req.w_hi = 30.0;  // bracket too small: p_F(30) is still huge
  EXPECT_THROW(solve_w_min(s, model, req), cny::ContractViolation);
}

// --------------------------------------------------------- row model

TEST(RowModel, MRminMatchesPaper) {
  RowParams p;
  p.l_cnt = 200.0e3;
  p.fets_per_um = 1.8;
  p.m_min = 33000000;
  EXPECT_DOUBLE_EQ(m_r_min(p), 360.0);
  EXPECT_NEAR(k_rows(p), 33e6 / 360.0, 1e-6);
}

TEST(RowModel, UncorrelatedMatchesBinomialComplement) {
  RowParams p;
  p.l_cnt = 100.0e3;
  p.fets_per_um = 2.0;  // M_Rmin = 200
  p.m_min = 1000;
  const double pf = 1e-8;
  EXPECT_NEAR(p_rf_uncorrelated(pf, p), 1.0 - std::pow(1.0 - pf, 200.0),
              1e-13);
  EXPECT_NEAR(p_rf_uncorrelated(pf, p), 200.0 * pf, 1e-11);
}

TEST(RowModel, AlignedEqualsDeviceFailure) {
  EXPECT_DOUBLE_EQ(p_rf_aligned(1.5e-8), 1.5e-8);
}

TEST(RowModel, ChipYieldEq31) {
  RowParams p;
  p.l_cnt = 200.0e3;
  p.fets_per_um = 1.8;
  p.m_min = 33000000;
  const double p_rf = 1.5e-8;
  const double y = chip_yield_from_rows(p_rf, p);
  // 1 - Yield ≈ K_R · p_RF for small p_RF.
  EXPECT_NEAR(1.0 - y, k_rows(p) * p_rf, 1e-6);
}

TEST(RowModel, RelaxationFactorIsMRminForFullSharing) {
  RowParams p;
  p.l_cnt = 200.0e3;
  p.fets_per_um = 1.8;
  p.m_min = 33000000;
  const double pf = 1.5e-8;
  // Full sharing: style p_RF = p_F → relaxation ≈ M_Rmin.
  EXPECT_NEAR(relaxation_factor(p_rf_aligned(pf), pf, p), 360.0, 0.5);
}

TEST(RowModel, RejectsBadParams) {
  RowParams p;  // m_min defaults to 0
  p.l_cnt = 100.0;
  p.fets_per_um = 1.0;
  EXPECT_THROW(k_rows(p), cny::ContractViolation);
  EXPECT_THROW(p_rf_uncorrelated(1.0, p), cny::ContractViolation);
}

}  // namespace
