// Randomised property sweeps: the rare-event union engines and the yield
// pipeline checked against each other on randomly generated configurations
// (parameterized over seeds, so failures are reproducible by seed).
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "geom/interval.h"
#include "rng/engine.h"
#include "yield/empty_window.h"
#include "yield/length_variation.h"
#include "util/contracts.h"

namespace {

using namespace cny;

std::vector<geom::Interval> random_windows(rng::Xoshiro256& rng, int max_n,
                                           double w, double spread) {
  const int n = 2 + static_cast<int>(rng.uniform_index(
                        static_cast<std::uint64_t>(max_n - 1)));
  std::vector<geom::Interval> out;
  for (int i = 0; i < n; ++i) {
    const double y = rng.uniform(0.0, spread);
    out.push_back({y, y + w});
  }
  return out;
}

// ---------------------------------------------------------------------
// Property: conditional MC is an unbiased estimator of the exact
// inclusion–exclusion union probability, for arbitrary window sets.

class RandomUnionConfig : public ::testing::TestWithParam<int> {};

TEST_P(RandomUnionConfig, ConditionalMcMatchesExact) {
  rng::Xoshiro256 rng(static_cast<std::uint64_t>(GetParam()));
  const double lambda = rng.uniform(0.05, 0.2);
  const double w = rng.uniform(60.0, 200.0);
  const auto windows = random_windows(rng, 12, w, rng.uniform(50.0, 400.0));
  const double exact = yield::poisson_union_exact(lambda, windows);
  const auto mc = yield::union_conditional_mc(lambda, windows, 30000, rng);
  // 6-sigma agreement plus a small floor for near-zero-variance configs.
  EXPECT_NEAR(mc.estimate, exact, 6.0 * mc.std_error + 1e-3 * exact)
      << "lambda=" << lambda << " w=" << w << " n=" << windows.size();
}

TEST_P(RandomUnionConfig, UnionBoundsAlwaysHold) {
  rng::Xoshiro256 rng(static_cast<std::uint64_t>(GetParam()) + 1000);
  const double lambda = rng.uniform(0.05, 0.2);
  const double w = rng.uniform(60.0, 200.0);
  const auto windows = random_windows(rng, 14, w, rng.uniform(0.0, 600.0));
  const double exact = yield::poisson_union_exact(lambda, windows);
  const double p1 = std::exp(-lambda * w);
  EXPECT_GE(exact, p1 * (1.0 - 1e-9));
  EXPECT_LE(exact, windows.size() * p1 * (1.0 + 1e-9));
  // And monotone under adding a window.
  auto more = windows;
  more.push_back({250.0, 250.0 + w});
  EXPECT_GE(yield::poisson_union_exact(lambda, more), exact * (1.0 - 1e-9));
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomUnionConfig,
                         ::testing::Range(1, 17));  // 16 random configs

// ---------------------------------------------------------------------
// Property: the finite-length analytic model agrees with its own direct
// simulation on random device sets (inflated probability regime).

class RandomFiniteLength : public ::testing::TestWithParam<int> {};

TEST_P(RandomFiniteLength, AnalyticMatchesSimulation) {
  rng::Xoshiro256 rng(static_cast<std::uint64_t>(GetParam()) + 5000);
  const double lambda = 0.117;
  const double w = rng.uniform(25.0, 40.0);  // keeps p_RF ~ 1e-2
  const int n = 3 + static_cast<int>(rng.uniform_index(5));
  std::vector<double> pos;
  for (int i = 0; i < n; ++i) pos.push_back(rng.uniform(0.0, 2000.0));
  const yield::LengthModel length{rng.uniform(300.0, 1500.0), 0.0};
  const double analytic =
      yield::p_rf_finite_length(lambda, w, pos, length);
  const auto mc =
      yield::p_rf_finite_length_mc(lambda, w, pos, length, 40000, rng);
  EXPECT_NEAR(mc.estimate, analytic, 6.0 * mc.std_error + 0.02 * analytic)
      << "w=" << w << " n=" << n << " L=" << length.mean;
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomFiniteLength, ::testing::Range(1, 9));

// ---------------------------------------------------------------------
// Property: for any window set, the union probability interpolates between
// its aligned collapse (all offsets equal) and independence (offsets far
// apart), under scaling of the offset spread.

class SpreadScaling : public ::testing::TestWithParam<int> {};

TEST_P(SpreadScaling, UnionMonotoneInSpread) {
  rng::Xoshiro256 rng(static_cast<std::uint64_t>(GetParam()) + 9000);
  const double lambda = 0.117;
  const double w = 145.0;
  std::vector<double> base;
  for (int i = 0; i < 8; ++i) base.push_back(rng.uniform(0.0, 1.0));
  double prev = 0.0;
  for (double scale : {0.0, 30.0, 100.0, 400.0, 3000.0}) {
    std::vector<geom::Interval> windows;
    for (double b : base) windows.push_back({b * scale, b * scale + w});
    const double p = yield::poisson_union_exact(lambda, windows);
    EXPECT_GE(p, prev * (1.0 - 1e-9)) << "scale=" << scale;
    prev = p;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SpreadScaling, ::testing::Range(1, 9));

}  // namespace
