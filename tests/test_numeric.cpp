#include <gtest/gtest.h>

#include <cmath>

#include "numeric/integrate.h"
#include "numeric/interp.h"
#include "numeric/roots.h"
#include "numeric/special.h"
#include "util/contracts.h"

namespace {

using namespace cny::numeric;

// ---------------------------------------------------------------- special

TEST(Special, GammaPAtKnownPoints) {
  // P(1, x) = 1 - e^-x (exponential CDF).
  for (double x : {0.1, 0.5, 1.0, 3.0, 10.0}) {
    EXPECT_NEAR(gamma_p(1.0, x), 1.0 - std::exp(-x), 1e-13);
  }
  // P(1/2, x) = erf(sqrt(x)).
  for (double x : {0.25, 1.0, 4.0}) {
    EXPECT_NEAR(gamma_p(0.5, x), std::erf(std::sqrt(x)), 1e-12);
  }
}

TEST(Special, GammaPPlusQIsOne) {
  for (double a : {0.3, 1.0, 2.5, 17.0, 250.0}) {
    for (double x : {0.01, 0.5, 1.0, 5.0, 30.0, 400.0}) {
      EXPECT_NEAR(gamma_p(a, x) + gamma_q(a, x), 1.0, 1e-12)
          << "a=" << a << " x=" << x;
    }
  }
}

TEST(Special, GammaQDeepTailHasRelativePrecision) {
  // Q(1, 50) = e^-50 ~ 1.9e-22; demand relative accuracy.
  EXPECT_NEAR(gamma_q(1.0, 50.0) / std::exp(-50.0), 1.0, 1e-10);
}

TEST(Special, GammaCdfPdfConsistency) {
  // Numeric derivative of the CDF matches the PDF.
  const double k = 2.7, theta = 1.3;
  for (double x : {0.5, 1.0, 3.0, 8.0}) {
    const double h = 1e-6;
    const double d =
        (gamma_cdf(x + h, k, theta) - gamma_cdf(x - h, k, theta)) / (2 * h);
    EXPECT_NEAR(d, gamma_pdf(x, k, theta), 1e-6);
  }
}

TEST(Special, GammaPdfEdgeCases) {
  EXPECT_DOUBLE_EQ(gamma_pdf(-1.0, 2.0, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(gamma_pdf(0.0, 2.0, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(gamma_pdf(0.0, 1.0, 2.0), 0.5);
  EXPECT_TRUE(std::isinf(gamma_pdf(0.0, 0.5, 1.0)));
}

TEST(Special, PoissonCdfMatchesDirectSum) {
  const double lambda = 7.3;
  double acc = 0.0;
  for (long n = 0; n <= 20; ++n) {
    acc += poisson_pmf(n, lambda);
    EXPECT_NEAR(poisson_cdf(n, lambda), acc, 1e-12) << "n=" << n;
  }
}

TEST(Special, PoissonZeroLambda) {
  EXPECT_DOUBLE_EQ(poisson_pmf(0, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(poisson_pmf(3, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(poisson_cdf(5, 0.0), 1.0);
}

TEST(Special, LogAddExp) {
  EXPECT_NEAR(log_add_exp(std::log(2.0), std::log(3.0)), std::log(5.0), 1e-14);
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_DOUBLE_EQ(log_add_exp(-inf, 1.5), 1.5);
  // No overflow for large magnitudes.
  EXPECT_NEAR(log_add_exp(1000.0, 1000.0), 1000.0 + std::log(2.0), 1e-10);
}

TEST(Special, LogSumExpMatchesDirect) {
  EXPECT_NEAR(log_sum_exp({std::log(1.0), std::log(2.0), std::log(3.0)}),
              std::log(6.0), 1e-13);
  EXPECT_TRUE(std::isinf(log_sum_exp({})));
}

TEST(Special, Log1mExpBothBranches) {
  EXPECT_NEAR(log1m_exp(-0.1), std::log(1.0 - std::exp(-0.1)), 1e-13);
  EXPECT_NEAR(log1m_exp(-10.0), std::log(1.0 - std::exp(-10.0)), 1e-13);
}

TEST(Special, DomainViolationsThrow) {
  EXPECT_THROW(gamma_p(0.0, 1.0), cny::ContractViolation);
  EXPECT_THROW(gamma_p(1.0, -1.0), cny::ContractViolation);
  EXPECT_THROW(log1m_exp(0.5), cny::ContractViolation);
}

// ------------------------------------------------------------------ roots

TEST(Roots, BrentFindsCubicRoot) {
  const auto res = brent([](double x) { return x * x * x - 2.0; }, 0.0, 2.0);
  EXPECT_TRUE(res.converged);
  EXPECT_NEAR(res.x, std::cbrt(2.0), 1e-9);
}

TEST(Roots, BrentAcceptsRootAtEndpoint) {
  const auto res = brent([](double x) { return x; }, 0.0, 1.0);
  EXPECT_TRUE(res.converged);
  EXPECT_DOUBLE_EQ(res.x, 0.0);
}

TEST(Roots, BrentRejectsNonBracketing) {
  EXPECT_THROW(brent([](double x) { return x * x + 1.0; }, -1.0, 1.0),
               cny::ContractViolation);
}

TEST(Roots, InvertDecreasingExponential) {
  const auto f = [](double x) { return std::exp(-x); };
  const auto res = invert_decreasing(f, 0.1, 0.0, 10.0);
  EXPECT_TRUE(res.converged);
  EXPECT_NEAR(res.x, -std::log(0.1), 1e-8);
}

TEST(Roots, InvertDecreasingRejectsOutOfRangeTarget) {
  const auto f = [](double x) { return std::exp(-x); };
  EXPECT_THROW(invert_decreasing(f, 2.0, 0.0, 10.0), cny::ContractViolation);
}

// -------------------------------------------------------------- integrate

TEST(Integrate, AdaptivePolynomialExact) {
  const auto f = [](double x) { return 3.0 * x * x; };
  EXPECT_NEAR(integrate_adaptive(f, 0.0, 2.0), 8.0, 1e-10);
}

TEST(Integrate, AdaptiveHandlesReversedLimits) {
  const auto f = [](double x) { return x; };
  EXPECT_NEAR(integrate_adaptive(f, 2.0, 0.0), -2.0, 1e-10);
}

TEST(Integrate, GaussLegendreSmoothFunction) {
  EXPECT_NEAR(integrate_gl([](double x) { return std::sin(x); }, 0.0,
                           std::numbers::pi, 4),
              2.0, 1e-12);
}

TEST(Integrate, GaussLegendreGaussian) {
  // ∫_{-a}^{a} e^{-x²/2} dx = sqrt(2π)·erf(a/√2); compare against the
  // truncated closed form so tail truncation is not mistaken for
  // quadrature error.
  const double a = 5.0;
  const double v = integrate_gl(
      [](double x) { return std::exp(-0.5 * x * x); }, -a, a, 16);
  const double closed =
      std::sqrt(2.0 * std::numbers::pi) * std::erf(a / std::sqrt(2.0));
  EXPECT_NEAR(v, closed, 1e-10);
}

TEST(Integrate, ZeroWidthIntervalIsZero) {
  EXPECT_DOUBLE_EQ(integrate_gl([](double) { return 1.0; }, 1.0, 1.0, 4), 0.0);
  EXPECT_DOUBLE_EQ(integrate_adaptive([](double) { return 1.0; }, 1.0, 1.0),
                   0.0);
}

// ----------------------------------------------------------------- interp

TEST(Interp, ReproducesKnots) {
  MonotoneCubic f({0.0, 1.0, 2.0, 3.0}, {0.0, 1.0, 4.0, 9.0});
  EXPECT_DOUBLE_EQ(f(0.0), 0.0);
  EXPECT_DOUBLE_EQ(f(2.0), 4.0);
  EXPECT_DOUBLE_EQ(f(3.0), 9.0);
}

TEST(Interp, MonotoneDataStaysMonotone) {
  // Data with a sharp bend that cubic splines overshoot.
  MonotoneCubic f({0.0, 1.0, 2.0, 3.0, 4.0}, {0.0, 0.01, 0.02, 5.0, 10.0});
  double prev = f(0.0);
  for (double x = 0.01; x <= 4.0; x += 0.01) {
    const double y = f(x);
    EXPECT_GE(y, prev - 1e-12) << "x=" << x;
    prev = y;
  }
}

TEST(Interp, ClampsOutsideRange) {
  MonotoneCubic f({0.0, 1.0}, {2.0, 5.0});
  EXPECT_DOUBLE_EQ(f(-1.0), 2.0);
  EXPECT_DOUBLE_EQ(f(9.0), 5.0);
  EXPECT_DOUBLE_EQ(f.derivative(-1.0), 0.0);
}

TEST(Interp, DerivativeMatchesFiniteDifference) {
  MonotoneCubic f({0.0, 1.0, 2.0, 3.0}, {0.0, 2.0, 3.0, 3.5});
  for (double x : {0.4, 1.5, 2.7}) {
    const double h = 1e-6;
    EXPECT_NEAR(f.derivative(x), (f(x + h) - f(x - h)) / (2 * h), 1e-5);
  }
}

TEST(Interp, RejectsNonIncreasingKnots) {
  EXPECT_THROW(MonotoneCubic({0.0, 0.0}, {1.0, 2.0}), cny::ContractViolation);
  EXPECT_THROW(MonotoneCubic({1.0}, {1.0}), cny::ContractViolation);
}

}  // namespace
