// The campaign runner's contracts, pinned (the PR 6 "test archetype"
// harness):
//   * sweep grammar: an accepted/rejected table, range edge cases
//     (index-based stepping — never accumulation — zero step, reversed
//     bounds, single-point ranges), probit axes bit-identical to
//     cnt::RemovalTradeoff::frontier;
//   * expression evaluator: precedence, functions, $references, and
//     actionable rejections (unknown function, arity, trailing garbage);
//   * spec compilation: canonical-JSON round trip, row-major last-axis-
//     fastest order, derived parameters in dependency order, cycles and
//     unknown references rejected with the offending names in the message;
//   * every compiled request passes the shared validators before any
//     evaluation happens;
//   * request keys: stable (a pinned golden hash fails loudly if canonical
//     JSON ever drifts) and collision-free across a campaign;
//   * the store: JSONL round trip, partial-tail truncation (a kill
//     mid-write), corrupt-line and duplicate-key rejection;
//   * the runner: interrupted-and-resumed stores byte-identical to
//     uninterrupted ones, re-running a finished campaign evaluates
//     nothing, campaign results bit-equal to solo run_flow, and the
//     via-service path produces the byte-identical store.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "campaign/runner.h"
#include "campaign/spec.h"
#include "campaign/store.h"
#include "campaign/sweep.h"
#include "celllib/generator.h"
#include "cnt/removal_tradeoff.h"
#include "device/failure_model.h"
#include "netlist/design_generator.h"
#include "obs/log.h"
#include "obs/trace.h"
#include "service/json.h"
#include "service/protocol.h"
#include "yield/flow.h"
#include "yield/wmin_solver.h"

namespace {

using namespace cny;
using campaign::CampaignSpec;
using campaign::CompiledPoint;
using campaign::Expr;
using campaign::ResultStore;
using campaign::StoreRecord;
using campaign::expand_sweep;
using service::FlowRequest;
using service::Json;

// Mirrors tests/test_service.cpp: small enough to keep every runner test
// cheap, large enough to exercise the real flow.
constexpr std::size_t kTestKnots = 17;
constexpr std::size_t kTestSamples = 600;

// --- sweep grammar ---------------------------------------------------------

TEST(CampaignSweep, AcceptedGrammarTable) {
  const struct {
    const char* expr;
    std::vector<double> values;
  } kAccepted[] = {
      {"42", {42.0}},
      {"1,2,5.5", {1.0, 2.0, 5.5}},
      {"-1,1e-3, 2.5E2", {-1.0, 1e-3, 2.5e2}},
      {"5:1:5", {5.0}},  // single-point range
      {"0:1:2.6", {0.0, 1.0, 2.0}},  // stop between grid points
      {"1:-0.25:0", {1.0, 0.75, 0.5, 0.25, 0.0}},  // descending
      {"lin:0:1:5", {0.0, 0.25, 0.5, 0.75, 1.0}},
  };
  for (const auto& c : kAccepted) {
    EXPECT_EQ(expand_sweep(c.expr), c.values) << c.expr;
  }
}

TEST(CampaignSweep, RejectedGrammarTable) {
  const char* kRejected[] = {
      "",            // empty
      "  ",          // blank
      "1,,2",        // empty list entry
      "1,abc",       // garbage token
      "0:0:1",       // zero step
      "0:-1:1",      // step moves away from stop
      "1:0.1:0",     // reversed bounds with positive step
      "0:1",         // range needs three tokens
      "0:1:2:3",     // and no more than three
      "lin:0:1",     // lin form needs n
      "lin:0:1:1",   // n must be >= 2
      "lin:0:1:2.5", // n must be integral
      "log:0:1:4",   // log bounds must be positive
      "log:-1:1:4",
      "probit:0:0.5:3",   // probit bounds in (0, 1)
      "probit:0.5:1:3",
      "probit:0.9:0.99:1000001",  // past kMaxSweepValues
      "0:1e-9:1",    // range expands past kMaxSweepValues
  };
  for (const char* expr : kRejected) {
    EXPECT_THROW(expand_sweep(expr), std::invalid_argument) << expr;
  }
}

TEST(CampaignSweep, RangeStepsByIndexNotAccumulation) {
  // 0.8:0.05:0.95 — the span lands at 2.9999999999999996; the tolerance
  // must keep the intended endpoint in.
  const auto v = expand_sweep("0.80:0.05:0.95");
  ASSERT_EQ(v.size(), 4u);
  for (std::size_t i = 0; i < v.size(); ++i) {
    // v_i = start + i*step exactly — the resumability contract: a value's
    // bits depend on its index only, never on how the sweep was chunked.
    EXPECT_EQ(v[i], 0.80 + static_cast<double>(i) * 0.05) << i;
  }

  const auto w = expand_sweep("0:0.1:1");
  ASSERT_EQ(w.size(), 11u);
  EXPECT_EQ(w.back(), 10.0 * 0.1);  // == 1.0 under index stepping
  double accumulated = 0.0;
  for (int i = 0; i < 10; ++i) accumulated += 0.1;
  EXPECT_NE(w.back(), accumulated)
      << "accumulation drifts (0.9999999999999999); index stepping must not";
}

TEST(CampaignSweep, LogSpacingIsGeometric) {
  const auto v = expand_sweep("log:1e-4:1e-1:4");
  ASSERT_EQ(v.size(), 4u);
  EXPECT_EQ(v.front(), 1e-4);
  for (std::size_t i = 1; i < v.size(); ++i) {
    EXPECT_NEAR(v[i] / v[i - 1], 10.0, 1e-12) << i;
  }
}

TEST(CampaignSweep, ProbitAxisMatchesRemovalFrontierBitExactly) {
  const auto values = expand_sweep("probit:0.99:0.9999999:7");
  const auto frontier =
      cnt::RemovalTradeoff(4.24).frontier(0.99, 0.9999999, 7);
  ASSERT_EQ(values.size(), frontier.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    EXPECT_EQ(values[i], frontier[i].p_rm) << i;  // bit-exact, not near
  }
}

// --- derived-parameter expressions -----------------------------------------

TEST(CampaignExpr, EvaluatesArithmeticAndFunctions) {
  const auto lookup = [](const std::string& name) -> double {
    if (name == "a") return 3.0;
    if (name == "b") return 0.5;
    throw std::out_of_range("unknown: " + name);
  };
  const struct {
    const char* text;
    double expected;
  } kCases[] = {
      {"1+2*3", 7.0},
      {"(1+2)*3", 9.0},
      {"-$a + 4", 1.0},
      {"2*$a - $b/0.25", 4.0},
      {"min(0.9, $b)", 0.5},
      {"max(2, pow($a, 2))", 9.0},
      {"sqrt(16) + abs(-1) + floor(2.9) + round(2.5)", 10.0},
      {"log10(100) + log(exp(2))", 4.0},
      {"--1", 1.0},
      {"+5", 5.0},
  };
  for (const auto& c : kCases) {
    EXPECT_EQ(Expr::parse(c.text).eval(lookup), c.expected) << c.text;
  }
  // phi/probit round-trip (same functions the removal frontier uses).
  EXPECT_NEAR(Expr::parse("probit(phi(1.25))").eval(lookup), 1.25, 1e-9);
}

TEST(CampaignExpr, CollectsRefsInFirstAppearanceOrder) {
  const auto expr = Expr::parse("$b + $a * ($b - phi($c))");
  EXPECT_EQ(expr.refs(), (std::vector<std::string>{"b", "a", "c"}));
  EXPECT_TRUE(Expr::parse("1+2").refs().empty());
}

TEST(CampaignExpr, RejectsSyntaxErrorsWithPosition) {
  const char* kBad[] = {
      "",  "1+",    "(1",     "$",     "1 2",      "foo(1)",
      "min(1)",     "sqrt(1,2)", "sqrt",  "*3",   "1..2",
  };
  for (const char* text : kBad) {
    EXPECT_THROW((void)Expr::parse(text), std::invalid_argument) << text;
  }
  try {
    (void)Expr::parse("1 + frobnicate(2)");
    FAIL() << "unknown function must throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("frobnicate"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("sqrt"), std::string::npos)
        << "message should list the known functions";
  }
}

// --- param paths + spec compilation ----------------------------------------

TEST(CampaignSpec, ParamPathsSetAndGetRoundTrip) {
  FlowRequest request;
  double probe = 100.0;
  for (const std::string& path : campaign::param_paths()) {
    campaign::set_param(request, path, probe);
    EXPECT_EQ(campaign::get_param(request, path), probe) << path;
    probe += 1.0;
  }
  // Setting a scenario.* path enabled the mechanisms along the way.
  EXPECT_TRUE(request.params.scenario.shorts.has_value());
  EXPECT_TRUE(request.params.scenario.length.has_value());
  EXPECT_TRUE(request.params.scenario.removal.has_value());
}

TEST(CampaignSpec, RejectsUnknownAndNonIntegralParams) {
  FlowRequest request;
  try {
    campaign::set_param(request, "no.such.path", 1.0);
    FAIL() << "unknown path must throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("no.such.path"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("mc_samples"), std::string::npos)
        << "message should list the known paths";
  }
  EXPECT_THROW(campaign::set_param(request, "seed", 2.5),
               std::invalid_argument);
  EXPECT_THROW(campaign::set_param(request, "mc_samples", -1.0),
               std::invalid_argument);
  EXPECT_THROW(campaign::set_param(request, "instances", 0.5),
               std::invalid_argument);
}

const char kSpecText[] =
    "{\"name\":\"frontier\","
    "\"base\":{\"library\":\"nangate45\",\"mc_samples\":600,\"seed\":3,"
    "\"scenario.removal.selectivity\":6},"
    "\"axes\":[{\"name\":\"prm\",\"param\":\"scenario.removal.p_rm_target\","
    "\"values\":\"probit:0.999:0.9999999:4\"}],"
    "\"derived\":[{\"name\":\"yield\",\"param\":\"yield\","
    "\"expr\":\"min(0.9,$prm)\"}]}";

TEST(CampaignSpec, JsonRoundTripIsByteStable) {
  const CampaignSpec spec = campaign::campaign_from_json(Json::parse(kSpecText));
  EXPECT_EQ(spec.name, "frontier");
  EXPECT_EQ(spec.base.params.mc_samples, 600u);
  EXPECT_EQ(spec.base.params.seed, 3u);
  ASSERT_TRUE(spec.base.params.scenario.removal.has_value());
  EXPECT_EQ(spec.base.params.scenario.removal->selectivity, 6.0);

  const std::string once = campaign::to_json(spec).dump();
  const CampaignSpec back = campaign::campaign_from_json(Json::parse(once));
  EXPECT_EQ(campaign::to_json(back).dump(), once);
}

TEST(CampaignSpec, CompileOrderIsRowMajorLastAxisFastest) {
  CampaignSpec spec;
  spec.base.params.mc_samples = kTestSamples;
  spec.axes.push_back({"y", "yield", "0.88,0.92"});
  spec.axes.push_back({"s", "seed", "1,2,3"});
  const auto points = campaign::compile(spec);
  ASSERT_EQ(points.size(), 6u);
  const double kExpected[6][2] = {{0.88, 1}, {0.88, 2}, {0.88, 3},
                                  {0.92, 1}, {0.92, 2}, {0.92, 3}};
  for (std::size_t i = 0; i < points.size(); ++i) {
    EXPECT_EQ(points[i].index, i);
    EXPECT_EQ(points[i].axis_values[0], kExpected[i][0]) << i;
    EXPECT_EQ(points[i].axis_values[1], kExpected[i][1]) << i;
    EXPECT_EQ(points[i].request.params.yield_desired, kExpected[i][0]);
    EXPECT_EQ(points[i].request.params.seed,
              static_cast<std::uint64_t>(kExpected[i][1]));
  }
}

TEST(CampaignSpec, DerivedParametersResolveInDependencyOrder) {
  CampaignSpec spec;
  spec.base.params.mc_samples = kTestSamples;
  spec.axes.push_back({"m", "chip_m", "1e8"});
  // Declared out of dependency order on purpose: b uses a.
  spec.derived.push_back({"b", "yield", "min(0.95, $a / 2)"});
  spec.derived.push_back({"a", "process.pitch_cv", "0.8 + $m / 1e9"});
  const auto points = campaign::compile(spec);
  ASSERT_EQ(points.size(), 1u);
  EXPECT_EQ(points[0].request.process.pitch_cv, 0.8 + 0.1);
  EXPECT_EQ(points[0].request.params.yield_desired, (0.8 + 0.1) / 2.0);
}

TEST(CampaignSpec, RejectsCyclesUnknownRefsAndDuplicateNames) {
  CampaignSpec base;
  base.axes.push_back({"x", "yield", "0.9"});

  CampaignSpec cyclic = base;
  cyclic.derived.push_back({"a", "chip_m", "1e8 + $b"});
  cyclic.derived.push_back({"b", "seed", "$a"});
  try {
    (void)campaign::compile(cyclic);
    FAIL() << "cycle must throw";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("cycle"), std::string::npos) << what;
    EXPECT_NE(what.find("a -> "), std::string::npos)
        << "message should spell out the cycle path: " << what;
  }

  CampaignSpec unknown = base;
  unknown.derived.push_back({"d", "chip_m", "$nope * 2"});
  try {
    (void)campaign::compile(unknown);
    FAIL() << "unknown reference must throw";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("nope"), std::string::npos) << what;
    EXPECT_NE(what.find("x"), std::string::npos)
        << "message should list the known names: " << what;
  }

  CampaignSpec duplicate = base;
  duplicate.axes.push_back({"x", "seed", "1,2"});
  EXPECT_THROW((void)campaign::compile(duplicate), std::invalid_argument);

  CampaignSpec empty;
  EXPECT_THROW((void)campaign::compile(empty), std::invalid_argument);
}

TEST(CampaignSpec, EveryCompiledRequestPassesSharedValidators) {
  // A deliberately mixed campaign: scenario blocks, derived parameters,
  // integral axes. compile() runs service::validate itself; re-check here
  // with both validators so a future compile() that skips validation fails
  // this test instead of failing deep in an evaluation.
  const CampaignSpec spec =
      campaign::campaign_from_json(Json::parse(kSpecText));
  const auto points = campaign::compile(spec);
  ASSERT_EQ(points.size(), 4u);
  std::set<std::string> keys;
  for (const auto& point : points) {
    EXPECT_NO_THROW(service::validate(point.request)) << point.index;
    EXPECT_NO_THROW(yield::validate(point.request.params)) << point.index;
    EXPECT_EQ(point.key, campaign::request_key(point.request));
    keys.insert(point.key);
  }
  EXPECT_EQ(keys.size(), points.size()) << "request keys must not collide";
}

TEST(CampaignSpec, RejectsOutOfRangeCompiledPointsWithPointContext) {
  CampaignSpec spec;
  spec.axes.push_back({"y", "yield", "0.5,1.5"});  // 1.5 is out of range
  try {
    (void)campaign::compile(spec);
    FAIL() << "invalid point must throw";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("point #1"), std::string::npos) << what;
    EXPECT_NE(what.find("y=1.5"), std::string::npos) << what;
  }
}

// --- request keys ----------------------------------------------------------

TEST(CampaignKey, Fnv1a64MatchesReferenceVectors) {
  // Published FNV-1a 64-bit vectors.
  EXPECT_EQ(campaign::fnv1a64(""), 0xcbf29ce484222325ull);
  EXPECT_EQ(campaign::fnv1a64("a"), 0xaf63dc4c8601ec8cull);
  EXPECT_EQ(campaign::fnv1a64("foobar"), 0x85944171f73967e8ull);
}

TEST(CampaignKey, GoldenHashPinsCanonicalRequestJson) {
  // If either the canonical request JSON or the hash ever drifts, every
  // existing store silently stops resuming — this golden makes the drift
  // loud. Do NOT update the constant without a store-migration story.
  FlowRequest request;
  request.params.mc_samples = 600;
  request.params.seed = 3;
  request.params.yield_desired = 0.9;
  EXPECT_EQ(campaign::canonical_request(request),
            "{\"library\":\"nangate45\",\"design_instances\":0,"
            "\"process\":{\"pitch_mean_nm\":4,\"pitch_cv\":0.9,"
            "\"p_metallic\":0.33,\"p_remove_s\":0.3},"
            "\"params\":{\"yield_desired\":0.9,\"chip_transistors\":1e+08,"
            "\"l_cnt\":2e+05,\"fets_per_um\":1.8,\"active_spacing\":140,"
            "\"mc_samples\":600,\"seed\":3,\"mc_streams\":16}}");
  EXPECT_EQ(campaign::request_key(request), "46a330f26a03409e");
}

// --- result store ----------------------------------------------------------

StoreRecord make_record(std::uint64_t index, std::uint64_t seed,
                        bool ok = true) {
  FlowRequest request;
  request.params.seed = seed;
  StoreRecord record;
  record.index = index;
  record.request_json = campaign::canonical_request(request);
  record.key = campaign::request_key(request);
  if (ok) {
    record.result_json = "{\"w_min\":" + std::to_string(90 + index) + "}";
  } else {
    record.error_code = "evaluation_failed";
    record.error_message = "short mode leaves no budget";
  }
  return record;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

TEST(CampaignStore, RecordLineRoundTrips) {
  for (const bool ok : {true, false}) {
    const StoreRecord record = make_record(7, 42, ok);
    const StoreRecord back = StoreRecord::from_line(record.line());
    EXPECT_EQ(back.key, record.key);
    EXPECT_EQ(back.index, record.index);
    EXPECT_EQ(back.request_json, record.request_json);
    EXPECT_EQ(back.result_json, record.result_json);
    EXPECT_EQ(back.error_code, record.error_code);
    EXPECT_EQ(back.error_message, record.error_message);
    EXPECT_EQ(back.line(), record.line()) << "line form must be canonical";
  }
}

TEST(CampaignStore, FileRoundTripPreservesOrder) {
  const std::string path = ::testing::TempDir() + "/campaign_store.jsonl";
  std::remove(path.c_str());
  {
    ResultStore store(path);
    store.append(make_record(0, 1));
    store.append(make_record(1, 2, /*ok=*/false));
    store.append(make_record(2, 3));
  }
  ResultStore loaded(path);
  ASSERT_EQ(loaded.size(), 3u);
  EXPECT_EQ(loaded.records()[1].error_code, "evaluation_failed");
  for (std::uint64_t i = 0; i < 3; ++i) {
    EXPECT_EQ(loaded.records()[i].index, i);
  }
  EXPECT_TRUE(loaded.contains(make_record(0, 1).key));
  EXPECT_EQ(loaded.find("0000000000000000"), nullptr);
  std::remove(path.c_str());
}

TEST(CampaignStore, TruncatesPartialTrailingLine) {
  const std::string path = ::testing::TempDir() + "/campaign_partial.jsonl";
  std::remove(path.c_str());
  {
    ResultStore store(path);
    store.append(make_record(0, 1));
    store.append(make_record(1, 2));
  }
  const std::string intact = read_file(path);
  {
    // A kill mid-write leaves a half-line with no trailing newline.
    std::ofstream out(path, std::ios::binary | std::ios::app);
    out << "{\"key\":\"feedfacefeedface\",\"ind";
  }
  {
    ResultStore store(path);
    EXPECT_EQ(store.size(), 2u);
  }
  EXPECT_EQ(read_file(path), intact)
      << "loading must physically truncate the partial tail";
  std::remove(path.c_str());
}

TEST(CampaignStore, RejectsCorruptCompleteLinesAndDuplicates) {
  const std::string path = ::testing::TempDir() + "/campaign_corrupt.jsonl";
  std::remove(path.c_str());
  {
    ResultStore store(path);
    store.append(make_record(0, 1));
    EXPECT_THROW(store.append(make_record(5, 1)), campaign::StoreError)
        << "same request (same key) appended twice";
  }
  {
    // A *complete* malformed line is corruption, not a kill artifact.
    std::ofstream out(path, std::ios::binary | std::ios::app);
    out << "not json at all\n";
  }
  EXPECT_THROW(ResultStore{path}, campaign::StoreError);
  std::remove(path.c_str());

  {
    ResultStore store(path);
    store.append(make_record(0, 1));
    const std::string line = make_record(1, 1).line();  // duplicate key
    std::ofstream out(path, std::ios::binary | std::ios::app);
    out << line << "\n";
  }
  EXPECT_THROW(ResultStore{path}, campaign::StoreError);
  std::remove(path.c_str());
}

// --- runner ----------------------------------------------------------------

/// A cheap 4-point campaign on one warm corner (seeds 1..4, open-only).
CampaignSpec cheap_campaign() {
  CampaignSpec spec;
  spec.name = "test";
  spec.base.params.mc_samples = kTestSamples;
  spec.base.params.yield_desired = 0.9;
  spec.axes.push_back({"s", "seed", "1:1:4"});
  return spec;
}

campaign::RunnerOptions cheap_options() {
  campaign::RunnerOptions options;
  options.n_threads = 1;
  options.interpolant_knots = kTestKnots;
  options.checkpoint_every = 1;
  return options;
}

TEST(CampaignRunner, InterruptedAndResumedStoreIsByteIdentical) {
  const auto points = campaign::compile(cheap_campaign());
  const std::string full_path = ::testing::TempDir() + "/campaign_full.jsonl";
  const std::string kill_path = ::testing::TempDir() + "/campaign_kill.jsonl";
  std::remove(full_path.c_str());
  std::remove(kill_path.c_str());

  {
    ResultStore store(full_path);
    const auto stats = campaign::run_campaign(points, store, cheap_options());
    EXPECT_EQ(stats.evaluated, points.size());
    EXPECT_FALSE(stats.interrupted);
  }
  {
    // "Kill" after two checkpoints: the interrupt flag flips mid-campaign,
    // exactly what the CLI's SIGTERM handler does.
    ResultStore store(kill_path);
    auto options = cheap_options();
    int polls = 0;
    options.interrupted = [&polls] { return ++polls > 2; };
    const auto stats = campaign::run_campaign(points, store, options);
    EXPECT_TRUE(stats.interrupted);
    EXPECT_EQ(stats.evaluated, 2u);
    EXPECT_EQ(store.size(), 2u);
  }
  {
    // Resume: picks up where the store stopped, no re-evaluation.
    ResultStore store(kill_path);
    const auto stats = campaign::run_campaign(points, store, cheap_options());
    EXPECT_FALSE(stats.interrupted);
    EXPECT_EQ(stats.skipped, 2u);
    EXPECT_EQ(stats.evaluated, 2u);
  }
  EXPECT_EQ(read_file(kill_path), read_file(full_path))
      << "killed-and-resumed store must be byte-identical to uninterrupted";
  std::remove(full_path.c_str());
  std::remove(kill_path.c_str());
}

TEST(CampaignRunner, RerunningFinishedCampaignEvaluatesNothing) {
  const auto points = campaign::compile(cheap_campaign());
  const std::string path = ::testing::TempDir() + "/campaign_rerun.jsonl";
  std::remove(path.c_str());
  {
    ResultStore store(path);
    (void)campaign::run_campaign(points, store, cheap_options());
  }
  const std::string before = read_file(path);
  {
    ResultStore store(path);
    const auto stats = campaign::run_campaign(points, store, cheap_options());
    // Zero new flow evaluations: nothing evaluated, nothing failed, no
    // session ever warmed — the whole rerun is store lookups.
    EXPECT_EQ(stats.evaluated, 0u);
    EXPECT_EQ(stats.failed, 0u);
    EXPECT_EQ(stats.sessions_built, 0u);
    EXPECT_EQ(stats.skipped, points.size());
  }
  EXPECT_EQ(read_file(path), before);
  std::remove(path.c_str());
}

TEST(CampaignRunner, ResultsMatchSoloRunFlowBitExactly) {
  const auto points = campaign::compile(cheap_campaign());
  ResultStore store;  // in-memory
  const auto stats = campaign::run_campaign(points, store, cheap_options());
  ASSERT_EQ(stats.evaluated, points.size());

  // Reference: the model exactly as a session warms it (same bracket,
  // same knots), solo run_flow per point.
  cnt::ProcessParams process;
  process.p_metallic = 0.33;
  process.p_remove_s = 0.30;
  device::FailureModel model(cnt::PitchModel(4.0, 0.9), process);
  const yield::WminRequest bracket;
  model.enable_interpolation(bracket.w_lo, bracket.w_hi, kTestKnots, 1);
  const auto lib = celllib::make_nangate45_like();
  const auto design = netlist::make_openrisc_like(lib);

  for (const auto& point : points) {
    const StoreRecord* record = store.find(point.key);
    ASSERT_NE(record, nullptr);
    ASSERT_EQ(record->error_code, "");
    auto params = point.request.params;
    params.n_threads = 1;
    const auto solo = yield::run_flow(lib, design, model, params);
    // Byte-equality of canonical JSON is bit-equality of every field.
    EXPECT_EQ(record->result_json, service::to_json(solo).dump())
        << "point " << point.index;
  }
}

TEST(CampaignRunner, ViaServiceStoreIsByteIdenticalToDirect) {
  // Two corners and an infeasible point, so the comparison covers session
  // grouping and error records on both paths.
  CampaignSpec spec;
  spec.name = "svc";
  spec.base.params.mc_samples = kTestSamples;
  spec.base.params.yield_desired = 0.9;
  spec.base.params.scenario.shorts.emplace();
  spec.base.params.scenario.shorts->p_noise_fails = 0.01;
  spec.axes.push_back(
      {"prm", "scenario.shorts.p_rm", "0.6,0.999999999"});  // 0.6: infeasible
  spec.axes.push_back({"s", "seed", "1,2"});
  const auto points = campaign::compile(spec);

  ResultStore direct;
  ResultStore via;
  auto options = cheap_options();
  const auto direct_stats = campaign::run_campaign(points, direct, options);
  options.via_service = true;
  const auto via_stats = campaign::run_campaign(points, via, options);

  EXPECT_GT(direct_stats.failed, 0u) << "the infeasible points must fail";
  EXPECT_EQ(via_stats.failed, direct_stats.failed);
  ASSERT_EQ(direct.size(), via.size());
  for (std::size_t i = 0; i < direct.size(); ++i) {
    EXPECT_EQ(direct.records()[i].line(), via.records()[i].line()) << i;
  }
}

// The chaos acceptance test: a campaign through a fault-injecting server —
// every fault kind in rotation — lands the byte-identical store a clean
// server produces. Transient failures are retried, never recorded.
TEST(CampaignRunner, ChaosCampaignStoreIsByteIdenticalToFaultFree) {
  CampaignSpec spec = cheap_campaign();
  spec.axes[0].values = "1:1:8";  // a few batches' worth of points
  const auto points = campaign::compile(spec);

  ResultStore clean;
  auto options = cheap_options();
  options.via_service = true;
  options.checkpoint_every = 4;
  (void)campaign::run_campaign(points, clean, options);

  ResultStore chaotic;
  service::FaultPlanOptions faults;
  faults.seed = 11;
  faults.period = 2;  // a retried frame is never immediately re-faulted
  faults.faults = service::fault_specs_from_names(
      "drop,truncate,corrupt,reject,delay,drop-after,slowloris");
  options.fault_plan = std::make_shared<service::FaultPlan>(faults);
  options.retry.max_attempts = 6;
  options.retry.backoff_base_ms = 1;
  const auto stats = campaign::run_campaign(points, chaotic, options);

  EXPECT_EQ(stats.evaluated, points.size());
  ASSERT_EQ(clean.size(), chaotic.size());
  for (std::size_t i = 0; i < clean.size(); ++i) {
    EXPECT_EQ(clean.records()[i].line(), chaotic.records()[i].line()) << i;
  }
  // No transient code may ever appear as a record.
  for (const auto& record : chaotic.records()) {
    EXPECT_FALSE(service::is_transient_error(record.error_code))
        << record.error_code;
  }
}

TEST(CampaignRunner, WholeCampaignChunkExceedingDefaultQueueIsAdmitted) {
  // Regression: checkpoint_every = 0 submits the whole campaign as one
  // chunk, so the loopback server's admission queue must be sized up to
  // the chunk. Before the fix, points past the default max_queue (1024)
  // drew server_overloaded rejections and — with no retry budget — the
  // run threw instead of completing.
  CampaignSpec spec = cheap_campaign();
  spec.base.params.mc_samples = 1;  // cheapest legal point
  spec.axes[0].values = "1:1:1100";
  const auto points = campaign::compile(spec);

  ResultStore store;
  auto options = cheap_options();
  options.via_service = true;
  options.checkpoint_every = 0;  // one chunk for the whole campaign
  const auto stats = campaign::run_campaign(points, store, options);
  EXPECT_EQ(stats.evaluated + stats.failed, points.size());
  EXPECT_EQ(store.size(), points.size());
}

TEST(CampaignRunner, RetryExhaustionThrowsAndNeverPoisonsTheStore) {
  const auto points = campaign::compile(cheap_campaign());
  ResultStore store;
  auto options = cheap_options();
  options.via_service = true;
  service::FaultPlanOptions faults;
  faults.seed = 1;
  faults.period = 1;  // reject every frame: no retry budget can win
  faults.faults = service::fault_specs_from_names("reject");
  options.fault_plan = std::make_shared<service::FaultPlan>(faults);
  options.retry.max_attempts = 2;
  options.retry.backoff_base_ms = 1;
  try {
    (void)campaign::run_campaign(points, store, options);
    FAIL() << "an always-rejecting server must exhaust the retry budget";
  } catch (const service::ServiceError& e) {
    EXPECT_EQ(e.code(), "try_later");
    EXPECT_TRUE(e.transient());
  }
  // The failed chunk was never checkpointed: transient outcomes must not
  // masquerade as terminal error records.
  EXPECT_EQ(store.size(), 0u);
}

// --- observability ---------------------------------------------------------

// The strongest zero-perturbation check in the suite: a campaign traced
// to a sink, writing a progress sidecar, *and* logging structured events,
// through a fault-injecting server, lands the byte-identical store of an
// untraced fault-free run. Tracing, logging, progress, and chaos together
// must not move a single store byte.
TEST(CampaignRunner, TracedChaosStoreIsByteIdenticalToUntracedFaultFree) {
  CampaignSpec spec = cheap_campaign();
  spec.axes[0].values = "1:1:8";
  const auto points = campaign::compile(spec);

  ResultStore plain;
  auto options = cheap_options();
  options.via_service = true;
  options.checkpoint_every = 4;
  (void)campaign::run_campaign(points, plain, options);

  const std::string trace_path =
      ::testing::TempDir() + "campaign_chaos_trace.jsonl";
  const std::string progress_path =
      ::testing::TempDir() + "campaign_chaos_progress.jsonl";
  const std::string log_path =
      ::testing::TempDir() + "campaign_chaos_events.jsonl";
  ResultStore traced;
  options.trace_sink = std::make_shared<obs::TraceSink>(trace_path);
  options.progress_path = progress_path;
  if (obs::logging_compiled()) {
    options.log = std::make_shared<obs::Log>(log_path, obs::LogLevel::Debug);
  }
  service::FaultPlanOptions faults;
  faults.seed = 11;
  faults.period = 2;
  faults.faults = service::fault_specs_from_names(
      "drop,truncate,corrupt,reject,delay,drop-after,slowloris");
  options.fault_plan = std::make_shared<service::FaultPlan>(faults);
  options.retry.max_attempts = 6;
  options.retry.backoff_base_ms = 1;
  const auto stats = campaign::run_campaign(points, traced, options);

  EXPECT_EQ(stats.evaluated, points.size());
  EXPECT_GT(stats.retry_rounds, 0u)
      << "the chaos must actually have forced retries";
  ASSERT_EQ(plain.size(), traced.size());
  for (std::size_t i = 0; i < plain.size(); ++i) {
    EXPECT_EQ(plain.records()[i].line(), traced.records()[i].line()) << i;
  }
  if (obs::tracing_compiled()) {
    std::ifstream trace(trace_path);
    std::stringstream buffer;
    buffer << trace.rdbuf();
    EXPECT_NE(buffer.str().find("\"campaign.chunk\""), std::string::npos);
  }
  if (obs::logging_compiled()) {
    // The log must actually have logged lifecycle + retry events (the
    // chaos forces retry_rounds > 0) — no vacuous pass.
    std::ifstream log(log_path);
    std::stringstream buffer;
    buffer << log.rdbuf();
    EXPECT_NE(buffer.str().find("\"event\":\"campaign.start\""),
              std::string::npos);
    EXPECT_NE(buffer.str().find("\"event\":\"campaign.checkpoint\""),
              std::string::npos);
    EXPECT_NE(buffer.str().find("\"event\":\"campaign.retry_round\""),
              std::string::npos);
    EXPECT_NE(buffer.str().find("\"event\":\"campaign.finish\""),
              std::string::npos);
  }
  std::remove(trace_path.c_str());
  std::remove(progress_path.c_str());
  std::remove(log_path.c_str());
}

TEST(CampaignRunner, ProgressSidecarRecordsOneHonestLinePerChunk) {
  const auto points = campaign::compile(cheap_campaign());
  const std::string path = ::testing::TempDir() + "campaign_progress.jsonl";
  ResultStore store;
  auto options = cheap_options();  // checkpoint_every = 1: chunk per point
  options.progress_path = path;
  const auto stats = campaign::run_campaign(points, store, options);
  EXPECT_EQ(stats.evaluated, points.size());

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::vector<std::string> lines;
  for (std::string line; std::getline(in, line);) lines.push_back(line);
  ASSERT_EQ(lines.size(), points.size());  // one line per chunk, no extras

  std::uint64_t previous_done = 0;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const service::Json entry = service::Json::parse(lines[i]);
    EXPECT_EQ(entry.at("chunk").as_u64(), i + 1);
    EXPECT_EQ(entry.at("pending").as_u64(), points.size());
    const std::uint64_t done = entry.at("done").as_u64();
    EXPECT_GT(done, previous_done) << "done must be strictly monotone";
    previous_done = done;
    EXPECT_EQ(entry.at("retry_rounds").as_u64(), 0u) << "clean run";
    EXPECT_GE(entry.at("sessions_built").as_u64(), 1u);
    ASSERT_NE(entry.find("eta_ms"), nullptr);
    ASSERT_NE(entry.find("elapsed_ms"), nullptr);
    // Resource columns: each checkpoint samples /proc, so on Linux both
    // are live figures and the high water bounds the current RSS.
    EXPECT_GT(entry.at("rss_kb").as_u64(), 0u);
    EXPECT_GE(entry.at("vm_hwm_kb").as_u64(), entry.at("rss_kb").as_u64());
  }
  EXPECT_EQ(previous_done, points.size());
  // The final line's ETA is zero: nothing left to extrapolate.
  EXPECT_EQ(service::Json::parse(lines.back()).at("eta_ms").as_u64(), 0u);
  std::remove(path.c_str());
}

}  // namespace
