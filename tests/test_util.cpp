#include <gtest/gtest.h>

#include <sstream>

#include "util/cli.h"
#include "util/contracts.h"
#include "util/strings.h"
#include "util/table.h"

namespace {

using namespace cny::util;

TEST(Contracts, ExpectThrowsWithContext) {
  try {
    CNY_EXPECT_MSG(false, "ctx");
    FAIL() << "should have thrown";
  } catch (const cny::ContractViolation& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("precondition"), std::string::npos);
    EXPECT_NE(what.find("ctx"), std::string::npos);
    EXPECT_NE(what.find("test_util.cpp"), std::string::npos);
  }
}

TEST(Contracts, EnsureThrowsPostcondition) {
  EXPECT_THROW(CNY_ENSURE(1 == 2), cny::ContractViolation);
  EXPECT_NO_THROW(CNY_ENSURE(1 == 1));
}

TEST(Strings, TrimRemovesAllWhitespaceKinds) {
  EXPECT_EQ(trim("  a b \t\r\n"), "a b");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim(" \t "), "");
  EXPECT_EQ(trim("x"), "x");
}

TEST(Strings, SplitPreservesEmptyTokens) {
  const auto parts = split("a, b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "c");
}

TEST(Strings, SplitWsDropsEmptyTokens) {
  const auto parts = split_ws("  alpha\tbeta \n gamma ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "alpha");
  EXPECT_EQ(parts[2], "gamma");
}

TEST(Strings, StartsWith) {
  EXPECT_TRUE(starts_with("library x", "library"));
  EXPECT_FALSE(starts_with("lib", "library"));
}

TEST(Strings, FormatSigDigits) {
  EXPECT_EQ(format_sig(1234.5678, 3), "1.23e+03");
  EXPECT_EQ(format_sig(0.000123456, 3), "0.000123");
}

TEST(Strings, FormatProbSwitchesToScientific) {
  EXPECT_EQ(format_prob(5.3e-6), "5.3e-06");
  EXPECT_EQ(format_prob(0.25), "0.2500");
}

TEST(Strings, FormatPct) { EXPECT_EQ(format_pct(0.125), "12.5%"); }

TEST(Strings, ParseDoubleAcceptsScientific) {
  EXPECT_DOUBLE_EQ(parse_double(" 1.5e-3 "), 1.5e-3);
  EXPECT_THROW(parse_double("abc"), cny::ContractViolation);
  EXPECT_THROW(parse_double("1.5x"), cny::ContractViolation);
  EXPECT_THROW(parse_double(""), cny::ContractViolation);
}

TEST(Strings, ParseLong) {
  EXPECT_EQ(parse_long("42"), 42);
  EXPECT_EQ(parse_long("-3"), -3);
  EXPECT_THROW(parse_long("4.2"), cny::ContractViolation);
}

TEST(Table, TextRenderingAlignsColumns) {
  Table t("Title");
  t.header({"a", "bbbb"});
  t.row({"xx", "y"});
  const std::string out = t.to_text();
  EXPECT_NE(out.find("Title"), std::string::npos);
  EXPECT_NE(out.find("| xx | y    |"), std::string::npos);
}

TEST(Table, MarkdownHasSeparatorRow) {
  Table t;
  t.header({"a", "b"}).row({"1", "2"});
  const std::string md = t.to_markdown();
  EXPECT_NE(md.find("|---|---|"), std::string::npos);
}

TEST(Table, CsvEscapesCommasAndQuotes) {
  Table t;
  t.header({"x"}).row({"a,b"}).row({"he said \"hi\""});
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("\"a,b\""), std::string::npos);
  EXPECT_NE(csv.find("\"he said \"\"hi\"\"\""), std::string::npos);
}

TEST(Table, NumUsesSignificantDigits) {
  Table t;
  t.header({"v"});
  t.begin_row().num(3.14159, 3);
  EXPECT_EQ(t.rows()[0][0], "3.14");
}

TEST(Table, RaggedRowsPadOnRender) {
  Table t;
  t.header({"a", "b", "c"});
  t.row({"1"});
  EXPECT_EQ(t.n_cols(), 3u);
  EXPECT_NO_THROW(t.to_text());
}

TEST(Cli, ParsesAllFlagForms) {
  // Note: a bare value after a bare flag binds to the flag, so positional
  // arguments come before flags or after --name=value forms.
  const char* argv[] = {"prog", "pos", "--a=1", "--b", "2", "--flag"};
  Cli cli(6, argv);
  EXPECT_EQ(cli.get("a", ""), "1");
  EXPECT_EQ(cli.get("b", ""), "2");
  EXPECT_TRUE(cli.has("flag"));
  ASSERT_EQ(cli.positional().size(), 1u);
  EXPECT_EQ(cli.positional()[0], "pos");
}

TEST(Cli, TypedGettersWithFallback) {
  const char* argv[] = {"prog", "--x=2.5"};
  Cli cli(2, argv);
  EXPECT_DOUBLE_EQ(cli.get_double("x", 0.0), 2.5);
  EXPECT_DOUBLE_EQ(cli.get_double("missing", 7.0), 7.0);
  EXPECT_EQ(cli.get_long("missing", 9), 9);
}

}  // namespace
