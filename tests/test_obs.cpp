// The observability layer's own contracts (src/obs/):
//   * registry: get-or-create returns stable references, name/kind
//     collisions fail loudly, snapshots are sorted and complete;
//   * histogram: log2 bucketing is exact at the bucket edges, quantiles
//     interpolate inside the hit bucket and never overshoot the exact
//     tracked max, concurrent hammering loses no observation;
//   * trace sink: the JSONL file is tolerant-parseable line by line
//     (Chrome trace-event shape), args are JSON-escaped, a null-sink Span
//     is inert, and trace ids are process-unique;
//   * snapshot ring: oldest-first indexing survives wraparound, rates are
//     per-second with zero-interval and backwards-counter guards;
//   * resource accounting: the /proc parsers against synthetic text
//     (including a comm full of spaces and parens), a live sample, and a
//     deterministic sampler tick feeding gauges + ring + JSONL export;
//   * openmetrics: name sanitisation and the rendered exposition's
//     structural invariants (TYPE lines, _total, cumulative buckets,
//     +Inf == count, # EOF);
//   * log: JSONL event lines parse with escaped strings and bare numbers,
//     levels filter, a LogEvent over a null Log is inert.
// The *zero-perturbation* half of the contract — telemetry changes no
// response or store byte — is pinned where the bytes live:
// tests/test_service.cpp and tests/test_campaign.cpp.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/openmetrics.h"
#include "obs/resource.h"
#include "obs/snapshot.h"
#include "obs/trace.h"
#include "service/json.h"

namespace {

using namespace cny;

// --- registry --------------------------------------------------------------

TEST(ObsRegistry, GetOrCreateReturnsStableReferences) {
  obs::Registry registry;
  obs::Counter& a = registry.counter("frames_in");
  obs::Counter& b = registry.counter("frames_in");
  EXPECT_EQ(&a, &b);
  a.add(3);
  EXPECT_EQ(registry.counter("frames_in").value(), 3u);

  obs::Gauge& g = registry.gauge("queue_depth");
  g.add(5);
  g.add(-2);
  EXPECT_EQ(registry.gauge("queue_depth").value(), 3);
  g.set(-7);
  EXPECT_EQ(g.value(), -7);
}

TEST(ObsRegistry, NameKindCollisionThrows) {
  obs::Registry registry;
  (void)registry.counter("x");
  EXPECT_THROW((void)registry.gauge("x"), std::logic_error);
  EXPECT_THROW((void)registry.histogram("x"), std::logic_error);
  (void)registry.histogram("h");
  EXPECT_THROW((void)registry.counter("h"), std::logic_error);
}

TEST(ObsRegistry, SnapshotIsSortedAndComplete) {
  obs::Registry registry;
  registry.counter("zeta").add(1);
  registry.counter("alpha").add(2);
  registry.gauge("mid").set(-4);
  registry.histogram("lat_us").observe(100);

  const obs::MetricsSnapshot snap = registry.snapshot();
  ASSERT_EQ(snap.counters.size(), 2u);
  EXPECT_EQ(snap.counters[0].first, "alpha");
  EXPECT_EQ(snap.counters[0].second, 2u);
  EXPECT_EQ(snap.counters[1].first, "zeta");
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_EQ(snap.gauges[0].second, -4);
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].second.count, 1u);
  EXPECT_EQ(snap.histograms[0].second.max, 100u);
}

// --- histogram -------------------------------------------------------------

TEST(ObsHistogram, BucketOfMatchesBitWidthAndBoundsInvert) {
  EXPECT_EQ(obs::Histogram::bucket_of(0), 0u);
  EXPECT_EQ(obs::Histogram::bucket_of(1), 1u);
  EXPECT_EQ(obs::Histogram::bucket_of(2), 2u);
  EXPECT_EQ(obs::Histogram::bucket_of(3), 2u);
  EXPECT_EQ(obs::Histogram::bucket_of(4), 3u);
  EXPECT_EQ(obs::Histogram::bucket_of(1023), 10u);
  EXPECT_EQ(obs::Histogram::bucket_of(1024), 11u);
  // Values at and past 2^62 share the clamped top bucket — an observation
  // of uint64 max must count there, never index out of the bucket array.
  EXPECT_EQ(obs::Histogram::bucket_of(std::uint64_t{1} << 62), 63u);
  EXPECT_EQ(obs::Histogram::bucket_of(~std::uint64_t{0}), 63u);

  // bucket_bounds is the inverse: every value lands inside the bounds of
  // its own bucket, and the bounds tile the axis with no gaps.
  std::uint64_t expected_lo = 0;
  for (unsigned bucket = 0; bucket < 64; ++bucket) {
    const auto [lo, hi] = obs::Histogram::bucket_bounds(bucket);
    EXPECT_EQ(lo, expected_lo) << "gap before bucket " << bucket;
    EXPECT_EQ(obs::Histogram::bucket_of(lo), bucket);
    EXPECT_EQ(obs::Histogram::bucket_of(hi), bucket);
    expected_lo = hi + 1;
  }

  obs::Histogram top;
  top.observe(~std::uint64_t{0});
  EXPECT_EQ(top.snapshot().buckets[63], 1u);
  EXPECT_EQ(top.snapshot().max, ~std::uint64_t{0});
}

TEST(ObsHistogram, QuantilesInterpolateAndNeverOvershootMax) {
  obs::Histogram h;
  for (std::uint64_t v : {10u, 20u, 30u, 40u, 1000u}) h.observe(v);
  const obs::HistogramSnapshot snap = h.snapshot();
  EXPECT_EQ(snap.count, 5u);
  EXPECT_EQ(snap.sum, 1100u);
  EXPECT_EQ(snap.max, 1000u);
  EXPECT_DOUBLE_EQ(snap.mean(), 220.0);
  // The p50 observation (30) lives in bucket [16,31]; interpolation must
  // stay inside it. Every quantile is clamped to the exact max.
  EXPECT_GE(snap.quantile(0.5), 16.0);
  EXPECT_LE(snap.quantile(0.5), 32.0);
  EXPECT_LE(snap.quantile(0.99), 1000.0);
  EXPECT_DOUBLE_EQ(snap.quantile(1.0), 1000.0);
  EXPECT_DOUBLE_EQ(obs::HistogramSnapshot{}.quantile(0.5), 0.0);
}

TEST(ObsHistogram, ConcurrentHammerLosesNothing) {
  obs::Registry registry;
  obs::Counter& counter = registry.counter("hits");
  obs::Histogram& histogram = registry.histogram("lat_us");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        counter.add(1);
        histogram.observe(static_cast<std::uint64_t>(t * kPerThread + i));
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(counter.value(), kThreads * kPerThread);
  const obs::HistogramSnapshot snap = histogram.snapshot();
  EXPECT_EQ(snap.count, kThreads * kPerThread);
  EXPECT_EQ(snap.max, kThreads * kPerThread - 1);
  std::uint64_t bucket_total = 0;
  for (const std::uint64_t b : snap.buckets) bucket_total += b;
  EXPECT_EQ(bucket_total, snap.count);
}

// --- trace sink ------------------------------------------------------------

TEST(ObsTrace, NullSinkSpanIsInert) {
  // The "tracing off costs nothing" contract starts here: spans over a
  // null sink must be safe to construct, arg, and finish anywhere.
  obs::Span span(nullptr, "evaluate", "server");
  span.arg("key", "value");
  span.finish();
  span.finish();  // idempotent
  obs::Span defaulted;
  defaulted.finish();
}

TEST(ObsTrace, TraceIdsAreUniqueAndWellFormed) {
  std::set<std::string> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::string id = obs::next_trace_id();
    ASSERT_EQ(id.size(), 16u);
    for (const char c : id) {
      ASSERT_TRUE((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f')) << id;
    }
    EXPECT_TRUE(seen.insert(id).second) << "duplicate trace id " << id;
  }
}

TEST(ObsTrace, SinkWritesTolerantParseableTraceEventJsonl) {
  if (!obs::tracing_compiled()) GTEST_SKIP() << "built with CNY_OBS=OFF";
  const std::string path = ::testing::TempDir() + "obs_trace_test.jsonl";
  {
    obs::TraceSink sink(path);
    {
      obs::Span span(&sink, "evaluate", "server");
      // Args carrying JSON metacharacters (session keys are JSON text)
      // must be escaped into the event line.
      span.arg("session", "{\"library\":\"nangate45\"}");
      span.arg("newline", "a\nb");
    }
    std::thread other([&sink] {
      obs::Span span(&sink, "client.attempt", "client");
      span.finish();
    });
    other.join();
    sink.complete("queue_wait", "server", 100, 250, {{"trace_id", "abc"}});
  }  // clean destruction writes the closing "]"

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::vector<std::string> lines;
  for (std::string line; std::getline(in, line);) lines.push_back(line);
  ASSERT_GE(lines.size(), 5u);  // "[", 3 events, "]"
  EXPECT_EQ(lines.front(), "[");
  EXPECT_EQ(lines.back(), "]");

  std::set<std::string> names;
  std::set<std::uint64_t> tids;
  for (std::size_t i = 1; i + 1 < lines.size(); ++i) {
    std::string event_text = lines[i];
    ASSERT_EQ(event_text.back(), ',') << event_text;
    event_text.pop_back();
    const service::Json event = service::Json::parse(event_text);
    EXPECT_EQ(event.at("ph").as_string(), "X");
    EXPECT_GE(event.at("dur").as_double(), 0.0);
    EXPECT_EQ(event.at("pid").as_u64(), 1u);
    tids.insert(event.at("tid").as_u64());
    names.insert(event.at("name").as_string());
    if (event.at("name").as_string() == "evaluate") {
      EXPECT_EQ(event.at("args").at("session").as_string(),
                "{\"library\":\"nangate45\"}");
      EXPECT_EQ(event.at("args").at("newline").as_string(), "a\nb");
    }
    if (event.at("name").as_string() == "queue_wait") {
      // ts/dur are microseconds with sub-us precision: 100 ns = 0.1 us.
      EXPECT_DOUBLE_EQ(event.at("ts").as_double(), 0.1);
      EXPECT_DOUBLE_EQ(event.at("dur").as_double(), 0.25);
    }
  }
  EXPECT_EQ(names,
            (std::set<std::string>{"evaluate", "client.attempt", "queue_wait"}));
  EXPECT_EQ(tids.size(), 2u) << "two distinct threads, two trace tids";
  std::remove(path.c_str());
}

// The whole file parses in one shot too (the closed form is a valid JSON
// array) — what a trace viewer's strict loader would do.
TEST(ObsTrace, CleanlyClosedTraceIsOneValidJsonArray) {
  if (!obs::tracing_compiled()) GTEST_SKIP() << "built with CNY_OBS=OFF";
  const std::string path = ::testing::TempDir() + "obs_trace_array.jsonl";
  {
    obs::TraceSink sink(path);
    obs::Span span(&sink, "admission", "server");
  }
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  std::string text = buffer.str();
  // The per-line trailing comma form needs the last comma stripped for a
  // strict array parse (trace viewers accept both).
  const auto last_comma = text.find_last_of(',');
  ASSERT_NE(last_comma, std::string::npos);
  text.erase(last_comma, 1);
  const service::Json trace = service::Json::parse(text);
  ASSERT_EQ(trace.items().size(), 1u);
  EXPECT_EQ(trace.items()[0].at("name").as_string(), "admission");
  std::remove(path.c_str());
}

TEST(ObsTrace, SinkThrowsOnUnopenablePath) {
  if (!obs::tracing_compiled()) GTEST_SKIP() << "built with CNY_OBS=OFF";
  EXPECT_THROW(obs::TraceSink("/nonexistent-dir/trace.jsonl"),
               std::runtime_error);
}

// --- histogram quantile edges ----------------------------------------------

TEST(ObsHistogram, QuantileEdgeCases) {
  // Empty: every quantile is 0, mean is 0 — never NaN or a divide.
  const obs::HistogramSnapshot empty{};
  EXPECT_DOUBLE_EQ(empty.quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(empty.quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(empty.quantile(1.0), 0.0);
  EXPECT_DOUBLE_EQ(empty.mean(), 0.0);

  // Single observation: quantiles interpolate inside the hit bucket
  // ([32, 63] for 37), clamped at the top to the exact max — so every
  // quantile lies in [bucket lo, observation].
  obs::Histogram one;
  one.observe(37);
  const obs::HistogramSnapshot single = one.snapshot();
  for (const double q : {0.0, 0.5, 0.95, 1.0}) {
    EXPECT_GE(single.quantile(q), 32.0) << "q=" << q;
    EXPECT_LE(single.quantile(q), 37.0) << "q=" << q;
  }
  EXPECT_DOUBLE_EQ(single.quantile(1.0), 37.0);
  EXPECT_DOUBLE_EQ(single.mean(), 37.0);

  // All observations in one bucket: quantiles interpolate inside [lo, hi]
  // of that bucket and stay clamped to the exact max.
  obs::Histogram packed;
  for (int i = 0; i < 100; ++i) packed.observe(20);  // bucket [16, 31]
  const obs::HistogramSnapshot snap = packed.snapshot();
  const auto [lo, hi] = obs::Histogram::bucket_bounds(
      obs::Histogram::bucket_of(20));
  for (const double q : {0.01, 0.5, 0.95, 0.99}) {
    EXPECT_GE(snap.quantile(q), static_cast<double>(lo)) << "q=" << q;
    EXPECT_LE(snap.quantile(q), 20.0) << "q=" << q;  // clamped to max
  }

  // Max-clamp bucket (63): interpolation stays inside the clamped top
  // bucket [2^62, uint64 max] and never exceeds the exact tracked max,
  // which q=1 reports verbatim.
  obs::Histogram top;
  top.observe(~std::uint64_t{0});
  top.observe(std::uint64_t{1} << 62);
  const obs::HistogramSnapshot top_snap = top.snapshot();
  EXPECT_EQ(top_snap.buckets[63], 2u);
  EXPECT_GE(top_snap.quantile(0.99),
            static_cast<double>(std::uint64_t{1} << 62));
  EXPECT_LE(top_snap.quantile(0.99),
            static_cast<double>(~std::uint64_t{0}));
  EXPECT_DOUBLE_EQ(top_snap.quantile(1.0),
                   static_cast<double>(~std::uint64_t{0}));
}

// --- snapshot ring ---------------------------------------------------------

namespace {

obs::TimedSnapshot timed(std::uint64_t mono_us, std::uint64_t frames) {
  obs::TimedSnapshot snap;
  snap.wall_ms = mono_us / 1000;
  snap.mono_us = mono_us;
  snap.metrics.counters = {{"frames_in", frames}};
  return snap;
}

}  // namespace

TEST(ObsSnapshot, RingWrapsOldestFirst) {
  obs::SnapshotRing ring(3);
  EXPECT_EQ(ring.capacity(), 3u);
  EXPECT_EQ(ring.size(), 0u);
  EXPECT_THROW((void)ring.at(0), std::out_of_range);

  for (std::uint64_t i = 1; i <= 5; ++i) ring.push(timed(i * 1'000'000, i));
  // Pushed 1..5 into capacity 3: 1 and 2 fell off, oldest-first is 3,4,5.
  EXPECT_EQ(ring.size(), 3u);
  EXPECT_EQ(ring.at(0).metrics.counters[0].second, 3u);
  EXPECT_EQ(ring.at(1).metrics.counters[0].second, 4u);
  EXPECT_EQ(ring.at(2).metrics.counters[0].second, 5u);
  EXPECT_THROW((void)ring.at(3), std::out_of_range);
}

TEST(ObsSnapshot, CounterRatesArePerSecond) {
  const auto rates = obs::counter_rates(timed(1'000'000, 10),
                                        timed(3'000'000, 50));
  ASSERT_EQ(rates.size(), 1u);
  EXPECT_EQ(rates[0].first, "frames_in");
  EXPECT_DOUBLE_EQ(rates[0].second, 20.0);  // 40 frames over 2 s
}

TEST(ObsSnapshot, RatesGuardZeroIntervalAndBackwardsCounters) {
  // Zero (or negative) interval: all rates are 0, never a division blow-up.
  const auto zero = obs::counter_rates(timed(5'000'000, 10),
                                       timed(5'000'000, 99));
  ASSERT_EQ(zero.size(), 1u);
  EXPECT_DOUBLE_EQ(zero[0].second, 0.0);
  const auto backwards_time = obs::counter_rates(timed(5'000'000, 10),
                                                 timed(4'000'000, 99));
  ASSERT_EQ(backwards_time.size(), 1u);
  EXPECT_DOUBLE_EQ(backwards_time[0].second, 0.0);

  // A counter that goes backwards (server restarted into the same ring)
  // clamps its delta to 0 instead of reporting a huge negative rate.
  const auto shrunk = obs::counter_rates(timed(1'000'000, 100),
                                         timed(2'000'000, 5));
  ASSERT_EQ(shrunk.size(), 1u);
  EXPECT_DOUBLE_EQ(shrunk[0].second, 0.0);
}

TEST(ObsSnapshot, RatesSkipCountersPresentOnOneSideOnly) {
  obs::TimedSnapshot from = timed(1'000'000, 10);
  obs::TimedSnapshot to = timed(2'000'000, 30);
  to.metrics.counters.push_back({"new_counter", 7});
  const auto rates = obs::counter_rates(from, to);
  ASSERT_EQ(rates.size(), 1u);  // new_counter appeared mid-window: skipped
  EXPECT_EQ(rates[0].first, "frames_in");
  EXPECT_DOUBLE_EQ(rates[0].second, 20.0);
}

TEST(ObsSnapshot, LatestRatesNeedTwoEntries) {
  obs::SnapshotRing ring(4);
  EXPECT_TRUE(ring.latest_rates().empty());
  ring.push(timed(1'000'000, 10));
  EXPECT_TRUE(ring.latest_rates().empty());
  ring.push(timed(2'000'000, 40));
  const auto rates = ring.latest_rates();
  ASSERT_EQ(rates.size(), 1u);
  EXPECT_DOUBLE_EQ(rates[0].second, 30.0);
}

TEST(ObsSnapshot, JsonlLineIsSelfContainedAndParses) {
  obs::TimedSnapshot snap = timed(1'500'000, 42);
  snap.metrics.gauges = {{"queue_depth", -3}};
  const std::string line = obs::snapshot_jsonl_line(snap);
  const service::Json parsed = service::Json::parse(line);
  EXPECT_EQ(parsed.at("wall_ms").as_u64(), 1500u);
  EXPECT_EQ(parsed.at("mono_us").as_u64(), 1'500'000u);
  EXPECT_EQ(parsed.at("counters").at("frames_in").as_u64(), 42u);
  EXPECT_EQ(parsed.at("gauges").at("queue_depth").as_double(), -3.0);
}

// --- resource accounting ---------------------------------------------------

TEST(ObsResource, ParseStatusText) {
  obs::ResourceUsage usage;
  obs::parse_status_text(
      "Name:\tcntyield\nVmPeak:\t  999999 kB\nVmRSS:\t   6348 kB\n"
      "VmHWM:\t    6496 kB\nThreads:\t9\n",
      usage);
  EXPECT_EQ(usage.rss_kb, 6348u);
  EXPECT_EQ(usage.vm_hwm_kb, 6496u);
  EXPECT_EQ(usage.threads, 9u);
}

TEST(ObsResource, ParseStatTextHandlesHostileComm) {
  // The comm field is the *process's own name*, parenthesised — it may
  // contain spaces and parentheses, so field counting must start after the
  // LAST ')'. utime/stime are stat fields 14/15 (1-based).
  obs::ResourceUsage usage;
  obs::parse_stat_text(
      "1234 (a (evil) name) S 1 1234 1234 0 -1 4194304 500 0 0 0 "
      "200 100 0 0 20 0 9 0 12345 1000000 1587 18446744073709551615",
      100, usage);  // 100 ticks/s: 1 tick = 10 ms
  EXPECT_EQ(usage.cpu_user_ms, 2000u);  // 200 ticks
  EXPECT_EQ(usage.cpu_sys_ms, 1000u);   // 100 ticks
}

TEST(ObsResource, LiveSampleLooksLikeAProcess) {
  // On Linux /proc is real: the sample must succeed and be sane. (ok ==
  // false would be the non-/proc platform path; CI runs Linux.)
  const obs::ResourceUsage usage = obs::sample_resources();
  ASSERT_TRUE(usage.ok);
  EXPECT_GT(usage.rss_kb, 0u);
  EXPECT_GE(usage.vm_hwm_kb, usage.rss_kb);  // high water >= current
  EXPECT_GE(usage.threads, 1u);
  EXPECT_GT(usage.open_fds, 0u);
}

TEST(ObsResource, SamplerFeedsGaugesRingAndExport) {
  const std::string path = ::testing::TempDir() + "obs_sampler_export.jsonl";
  obs::Registry registry;
  registry.counter("frames_in").add(5);
  obs::SnapshotRing ring(8);
  obs::ResourceSampler::Options options;
  options.interval_ms = 3'600'000;  // effectively manual: sample_now drives
  options.registry = &registry;
  options.ring = &ring;
  options.snapshot_source = [&registry] { return registry.snapshot(); };
  options.export_path = path;
  {
    obs::ResourceSampler sampler(options);
    // Construction takes the first sample synchronously.
    EXPECT_GE(ring.size(), 1u);
    EXPECT_GT(registry.gauge("process.rss_kb").value(), 0);
    EXPECT_GT(registry.gauge("process.threads").value(), 0);
    registry.counter("frames_in").add(5);
    sampler.sample_now();
    EXPECT_GE(ring.size(), 2u);
  }  // destructor stops and joins the thread
  // The ring's newest entry carries the registry snapshot (counters
  // included), so rates are computable from it.
  const obs::TimedSnapshot newest = ring.at(ring.size() - 1);
  bool found = false;
  for (const auto& [name, value] : newest.metrics.counters) {
    if (name == "frames_in") {
      EXPECT_EQ(value, 10u);
      found = true;
    }
  }
  EXPECT_TRUE(found);
  // Export: one self-contained parseable JSON line per tick.
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::size_t lines = 0;
  for (std::string line; std::getline(in, line); ++lines) {
    const service::Json parsed = service::Json::parse(line);
    EXPECT_GT(parsed.at("mono_us").as_u64(), 0u);
    (void)parsed.at("counters");
  }
  EXPECT_GE(lines, 2u);
  std::remove(path.c_str());
}

TEST(ObsResource, SamplerThrowsOnUnopenableExportPath) {
  obs::ResourceSampler::Options options;
  options.export_path = "/nonexistent-dir/snap.jsonl";
  EXPECT_THROW(obs::ResourceSampler sampler(options), std::runtime_error);
}

// --- openmetrics -----------------------------------------------------------

TEST(ObsOpenMetrics, NameSanitisation) {
  EXPECT_EQ(obs::openmetrics_name("frames_in"), "cny_frames_in");
  EXPECT_EQ(obs::openmetrics_name("process.rss_kb"), "cny_process_rss_kb");
  EXPECT_EQ(obs::openmetrics_name("exec.queue-depth!"),
            "cny_exec_queue_depth_");
}

TEST(ObsOpenMetrics, RenderedExpositionIsStructurallyValid) {
  obs::Registry server;
  server.counter("responses").add(7);
  server.gauge("queue_depth").set(-2);
  obs::Histogram& h = server.histogram("evaluate_us");
  h.observe(20);   // bucket [16, 31]
  h.observe(100);  // bucket [64, 127]
  obs::Registry process;
  process.gauge("process.rss_kb").set(4096);
  process.counter("exec.tasks_posted").add(3);

  const std::string text =
      obs::render_openmetrics(server.snapshot(), process.snapshot());

  // Counters: TYPE line + _total sample.
  EXPECT_NE(text.find("# TYPE cny_responses counter\n"), std::string::npos);
  EXPECT_NE(text.find("cny_responses_total 7\n"), std::string::npos);
  EXPECT_NE(text.find("cny_exec_tasks_posted_total 3\n"), std::string::npos);
  // Gauges keep their value verbatim (negatives included).
  EXPECT_NE(text.find("# TYPE cny_queue_depth gauge\n"), std::string::npos);
  EXPECT_NE(text.find("cny_queue_depth -2\n"), std::string::npos);
  EXPECT_NE(text.find("cny_process_rss_kb 4096\n"), std::string::npos);
  // Histogram: cumulative le buckets, +Inf == count, sum and count.
  EXPECT_NE(text.find("# TYPE cny_evaluate_us histogram\n"),
            std::string::npos);
  EXPECT_NE(text.find("cny_evaluate_us_bucket{le=\"31\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("cny_evaluate_us_bucket{le=\"127\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("cny_evaluate_us_bucket{le=\"+Inf\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("cny_evaluate_us_sum 120\n"), std::string::npos);
  EXPECT_NE(text.find("cny_evaluate_us_count 2\n"), std::string::npos);
  // Exactly one terminating EOF marker, at the very end.
  const std::string eof = "# EOF\n";
  EXPECT_EQ(text.rfind(eof), text.size() - eof.size());
  EXPECT_EQ(text.find(eof), text.rfind(eof));
}

TEST(ObsOpenMetrics, CollisionsFavourTheServerSnapshot) {
  obs::Registry server;
  server.counter("frames_in").add(11);
  obs::Registry process;
  process.counter("frames_in").add(99);
  const std::string text =
      obs::render_openmetrics(server.snapshot(), process.snapshot());
  EXPECT_NE(text.find("cny_frames_in_total 11\n"), std::string::npos);
  EXPECT_EQ(text.find("cny_frames_in_total 99\n"), std::string::npos);
  // Declared once, not twice.
  const std::string type_line = "# TYPE cny_frames_in counter\n";
  EXPECT_EQ(text.find(type_line), text.rfind(type_line));
}

// --- structured log --------------------------------------------------------

TEST(ObsLog, LevelNamesRoundTrip) {
  EXPECT_EQ(obs::log_level_name(obs::LogLevel::Debug), "debug");
  EXPECT_EQ(obs::log_level_name(obs::LogLevel::Error), "error");
  obs::LogLevel level = obs::LogLevel::Info;
  EXPECT_TRUE(obs::log_level_from_name("warn", level));
  EXPECT_EQ(level, obs::LogLevel::Warn);
  EXPECT_FALSE(obs::log_level_from_name("loud", level));
  EXPECT_EQ(level, obs::LogLevel::Warn) << "failed parse must not clobber";
}

TEST(ObsLog, NullLogEventIsInert) {
  // Call sites are unconditional; a null Log must cost one pointer test.
  obs::LogEvent(nullptr, obs::LogLevel::Error, "server.start")
      .str("key", "value")
      .num("n", 42);
}

TEST(ObsLog, WritesParseableLeveledJsonl) {
  if (!obs::logging_compiled()) GTEST_SKIP() << "built with CNY_OBS=OFF";
  const std::string path = ::testing::TempDir() + "obs_log_test.jsonl";
  {
    obs::Log log(path, obs::LogLevel::Info);
    EXPECT_TRUE(log.enabled(obs::LogLevel::Warn));
    EXPECT_FALSE(log.enabled(obs::LogLevel::Debug));
    obs::LogEvent(&log, obs::LogLevel::Info, "server.start")
        .num("port", 9000)
        .str("session", "{\"library\":\"nangate45\"}");  // needs escaping
    obs::LogEvent(&log, obs::LogLevel::Debug, "invisible").num("x", 1);
    obs::LogEvent(&log, obs::LogLevel::Warn, "server.overload_reject")
        .num("max_queue", -1);
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::vector<std::string> lines;
  for (std::string line; std::getline(in, line);) lines.push_back(line);
  ASSERT_EQ(lines.size(), 2u) << "debug event below min level must not write";
  const service::Json first = service::Json::parse(lines[0]);
  EXPECT_GT(first.at("ts_ms").as_u64(), 0u);
  EXPECT_EQ(first.at("level").as_string(), "info");
  EXPECT_EQ(first.at("event").as_string(), "server.start");
  EXPECT_EQ(first.at("port").as_u64(), 9000u);
  EXPECT_EQ(first.at("session").as_string(), "{\"library\":\"nangate45\"}");
  const service::Json second = service::Json::parse(lines[1]);
  EXPECT_EQ(second.at("level").as_string(), "warn");
  EXPECT_EQ(second.at("max_queue").as_double(), -1.0);
  std::remove(path.c_str());
}

TEST(ObsLog, ThrowsOnUnopenablePath) {
  if (!obs::logging_compiled()) GTEST_SKIP() << "built with CNY_OBS=OFF";
  EXPECT_THROW(obs::Log("/nonexistent-dir/events.jsonl"),
               std::runtime_error);
}

}  // namespace
