// The observability layer's own contracts (src/obs/):
//   * registry: get-or-create returns stable references, name/kind
//     collisions fail loudly, snapshots are sorted and complete;
//   * histogram: log2 bucketing is exact at the bucket edges, quantiles
//     interpolate inside the hit bucket and never overshoot the exact
//     tracked max, concurrent hammering loses no observation;
//   * trace sink: the JSONL file is tolerant-parseable line by line
//     (Chrome trace-event shape), args are JSON-escaped, a null-sink Span
//     is inert, and trace ids are process-unique.
// The *zero-perturbation* half of the contract — tracing changes no
// response or store byte — is pinned where the bytes live:
// tests/test_service.cpp and tests/test_campaign.cpp.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "service/json.h"

namespace {

using namespace cny;

// --- registry --------------------------------------------------------------

TEST(ObsRegistry, GetOrCreateReturnsStableReferences) {
  obs::Registry registry;
  obs::Counter& a = registry.counter("frames_in");
  obs::Counter& b = registry.counter("frames_in");
  EXPECT_EQ(&a, &b);
  a.add(3);
  EXPECT_EQ(registry.counter("frames_in").value(), 3u);

  obs::Gauge& g = registry.gauge("queue_depth");
  g.add(5);
  g.add(-2);
  EXPECT_EQ(registry.gauge("queue_depth").value(), 3);
  g.set(-7);
  EXPECT_EQ(g.value(), -7);
}

TEST(ObsRegistry, NameKindCollisionThrows) {
  obs::Registry registry;
  (void)registry.counter("x");
  EXPECT_THROW((void)registry.gauge("x"), std::logic_error);
  EXPECT_THROW((void)registry.histogram("x"), std::logic_error);
  (void)registry.histogram("h");
  EXPECT_THROW((void)registry.counter("h"), std::logic_error);
}

TEST(ObsRegistry, SnapshotIsSortedAndComplete) {
  obs::Registry registry;
  registry.counter("zeta").add(1);
  registry.counter("alpha").add(2);
  registry.gauge("mid").set(-4);
  registry.histogram("lat_us").observe(100);

  const obs::MetricsSnapshot snap = registry.snapshot();
  ASSERT_EQ(snap.counters.size(), 2u);
  EXPECT_EQ(snap.counters[0].first, "alpha");
  EXPECT_EQ(snap.counters[0].second, 2u);
  EXPECT_EQ(snap.counters[1].first, "zeta");
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_EQ(snap.gauges[0].second, -4);
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].second.count, 1u);
  EXPECT_EQ(snap.histograms[0].second.max, 100u);
}

// --- histogram -------------------------------------------------------------

TEST(ObsHistogram, BucketOfMatchesBitWidthAndBoundsInvert) {
  EXPECT_EQ(obs::Histogram::bucket_of(0), 0u);
  EXPECT_EQ(obs::Histogram::bucket_of(1), 1u);
  EXPECT_EQ(obs::Histogram::bucket_of(2), 2u);
  EXPECT_EQ(obs::Histogram::bucket_of(3), 2u);
  EXPECT_EQ(obs::Histogram::bucket_of(4), 3u);
  EXPECT_EQ(obs::Histogram::bucket_of(1023), 10u);
  EXPECT_EQ(obs::Histogram::bucket_of(1024), 11u);
  // Values at and past 2^62 share the clamped top bucket — an observation
  // of uint64 max must count there, never index out of the bucket array.
  EXPECT_EQ(obs::Histogram::bucket_of(std::uint64_t{1} << 62), 63u);
  EXPECT_EQ(obs::Histogram::bucket_of(~std::uint64_t{0}), 63u);

  // bucket_bounds is the inverse: every value lands inside the bounds of
  // its own bucket, and the bounds tile the axis with no gaps.
  std::uint64_t expected_lo = 0;
  for (unsigned bucket = 0; bucket < 64; ++bucket) {
    const auto [lo, hi] = obs::Histogram::bucket_bounds(bucket);
    EXPECT_EQ(lo, expected_lo) << "gap before bucket " << bucket;
    EXPECT_EQ(obs::Histogram::bucket_of(lo), bucket);
    EXPECT_EQ(obs::Histogram::bucket_of(hi), bucket);
    expected_lo = hi + 1;
  }

  obs::Histogram top;
  top.observe(~std::uint64_t{0});
  EXPECT_EQ(top.snapshot().buckets[63], 1u);
  EXPECT_EQ(top.snapshot().max, ~std::uint64_t{0});
}

TEST(ObsHistogram, QuantilesInterpolateAndNeverOvershootMax) {
  obs::Histogram h;
  for (std::uint64_t v : {10u, 20u, 30u, 40u, 1000u}) h.observe(v);
  const obs::HistogramSnapshot snap = h.snapshot();
  EXPECT_EQ(snap.count, 5u);
  EXPECT_EQ(snap.sum, 1100u);
  EXPECT_EQ(snap.max, 1000u);
  EXPECT_DOUBLE_EQ(snap.mean(), 220.0);
  // The p50 observation (30) lives in bucket [16,31]; interpolation must
  // stay inside it. Every quantile is clamped to the exact max.
  EXPECT_GE(snap.quantile(0.5), 16.0);
  EXPECT_LE(snap.quantile(0.5), 32.0);
  EXPECT_LE(snap.quantile(0.99), 1000.0);
  EXPECT_DOUBLE_EQ(snap.quantile(1.0), 1000.0);
  EXPECT_DOUBLE_EQ(obs::HistogramSnapshot{}.quantile(0.5), 0.0);
}

TEST(ObsHistogram, ConcurrentHammerLosesNothing) {
  obs::Registry registry;
  obs::Counter& counter = registry.counter("hits");
  obs::Histogram& histogram = registry.histogram("lat_us");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        counter.add(1);
        histogram.observe(static_cast<std::uint64_t>(t * kPerThread + i));
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(counter.value(), kThreads * kPerThread);
  const obs::HistogramSnapshot snap = histogram.snapshot();
  EXPECT_EQ(snap.count, kThreads * kPerThread);
  EXPECT_EQ(snap.max, kThreads * kPerThread - 1);
  std::uint64_t bucket_total = 0;
  for (const std::uint64_t b : snap.buckets) bucket_total += b;
  EXPECT_EQ(bucket_total, snap.count);
}

// --- trace sink ------------------------------------------------------------

TEST(ObsTrace, NullSinkSpanIsInert) {
  // The "tracing off costs nothing" contract starts here: spans over a
  // null sink must be safe to construct, arg, and finish anywhere.
  obs::Span span(nullptr, "evaluate", "server");
  span.arg("key", "value");
  span.finish();
  span.finish();  // idempotent
  obs::Span defaulted;
  defaulted.finish();
}

TEST(ObsTrace, TraceIdsAreUniqueAndWellFormed) {
  std::set<std::string> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::string id = obs::next_trace_id();
    ASSERT_EQ(id.size(), 16u);
    for (const char c : id) {
      ASSERT_TRUE((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f')) << id;
    }
    EXPECT_TRUE(seen.insert(id).second) << "duplicate trace id " << id;
  }
}

TEST(ObsTrace, SinkWritesTolerantParseableTraceEventJsonl) {
  if (!obs::tracing_compiled()) GTEST_SKIP() << "built with CNY_OBS=OFF";
  const std::string path = ::testing::TempDir() + "obs_trace_test.jsonl";
  {
    obs::TraceSink sink(path);
    {
      obs::Span span(&sink, "evaluate", "server");
      // Args carrying JSON metacharacters (session keys are JSON text)
      // must be escaped into the event line.
      span.arg("session", "{\"library\":\"nangate45\"}");
      span.arg("newline", "a\nb");
    }
    std::thread other([&sink] {
      obs::Span span(&sink, "client.attempt", "client");
      span.finish();
    });
    other.join();
    sink.complete("queue_wait", "server", 100, 250, {{"trace_id", "abc"}});
  }  // clean destruction writes the closing "]"

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::vector<std::string> lines;
  for (std::string line; std::getline(in, line);) lines.push_back(line);
  ASSERT_GE(lines.size(), 5u);  // "[", 3 events, "]"
  EXPECT_EQ(lines.front(), "[");
  EXPECT_EQ(lines.back(), "]");

  std::set<std::string> names;
  std::set<std::uint64_t> tids;
  for (std::size_t i = 1; i + 1 < lines.size(); ++i) {
    std::string event_text = lines[i];
    ASSERT_EQ(event_text.back(), ',') << event_text;
    event_text.pop_back();
    const service::Json event = service::Json::parse(event_text);
    EXPECT_EQ(event.at("ph").as_string(), "X");
    EXPECT_GE(event.at("dur").as_double(), 0.0);
    EXPECT_EQ(event.at("pid").as_u64(), 1u);
    tids.insert(event.at("tid").as_u64());
    names.insert(event.at("name").as_string());
    if (event.at("name").as_string() == "evaluate") {
      EXPECT_EQ(event.at("args").at("session").as_string(),
                "{\"library\":\"nangate45\"}");
      EXPECT_EQ(event.at("args").at("newline").as_string(), "a\nb");
    }
    if (event.at("name").as_string() == "queue_wait") {
      // ts/dur are microseconds with sub-us precision: 100 ns = 0.1 us.
      EXPECT_DOUBLE_EQ(event.at("ts").as_double(), 0.1);
      EXPECT_DOUBLE_EQ(event.at("dur").as_double(), 0.25);
    }
  }
  EXPECT_EQ(names,
            (std::set<std::string>{"evaluate", "client.attempt", "queue_wait"}));
  EXPECT_EQ(tids.size(), 2u) << "two distinct threads, two trace tids";
  std::remove(path.c_str());
}

// The whole file parses in one shot too (the closed form is a valid JSON
// array) — what a trace viewer's strict loader would do.
TEST(ObsTrace, CleanlyClosedTraceIsOneValidJsonArray) {
  if (!obs::tracing_compiled()) GTEST_SKIP() << "built with CNY_OBS=OFF";
  const std::string path = ::testing::TempDir() + "obs_trace_array.jsonl";
  {
    obs::TraceSink sink(path);
    obs::Span span(&sink, "admission", "server");
  }
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  std::string text = buffer.str();
  // The per-line trailing comma form needs the last comma stripped for a
  // strict array parse (trace viewers accept both).
  const auto last_comma = text.find_last_of(',');
  ASSERT_NE(last_comma, std::string::npos);
  text.erase(last_comma, 1);
  const service::Json trace = service::Json::parse(text);
  ASSERT_EQ(trace.items().size(), 1u);
  EXPECT_EQ(trace.items()[0].at("name").as_string(), "admission");
  std::remove(path.c_str());
}

TEST(ObsTrace, SinkThrowsOnUnopenablePath) {
  if (!obs::tracing_compiled()) GTEST_SKIP() << "built with CNY_OBS=OFF";
  EXPECT_THROW(obs::TraceSink("/nonexistent-dir/trace.jsonl"),
               std::runtime_error);
}

}  // namespace
