// End-to-end integration tests: whole pipelines validated against each
// other at inflated failure probabilities (where brute-force simulation is
// statistically meaningful), exercising the same code paths the paper-scale
// experiments use at 1e-9.
#include <gtest/gtest.h>

#include <cmath>

#include "celllib/generator.h"
#include "cnt/growth.h"
#include "device/failure_model.h"
#include "layout/aligned_active.h"
#include "layout/floorplan.h"
#include "netlist/design_generator.h"
#include "util/contracts.h"
#include "yield/circuit_yield.h"
#include "yield/empty_window.h"
#include "yield/monte_carlo.h"
#include "yield/row_model.h"
#include "yield/wmin_solver.h"

namespace {

using namespace cny;

// Inflated regime shared by the scenarios: Poisson pitch, worst processing,
// ~30 nm windows -> per-device failure ~3e-2.
constexpr double kWidth = 30.0;
const cnt::PitchModel& pitch() {
  static const cnt::PitchModel p(4.0, 1.0);
  return p;
}
double lambda_s() { return (1.0 - cnt::fig21_worst().p_fail()) / 4.0; }

TEST(Integration, ChipYieldComposesFromRowModel) {
  // simulate_chip_yield on K rows of aligned windows must agree with
  // eq. 3.1's chip_yield_from_rows fed the analytic p_RF.
  const cnt::DirectionalGrowth growth(pitch(), cnt::fig21_worst(), 200.0e3);
  yield::ChipSpec spec;
  spec.row_windows = std::vector<geom::Interval>(10, {0.0, kWidth});
  spec.n_rows = 6;
  rng::Xoshiro256 rng(701);
  const auto sim = yield::simulate_chip_yield(
      growth, spec, yield::GrowthStyle::Directional, 30000, rng);

  const double p_rf = std::exp(-lambda_s() * kWidth);
  yield::RowParams rows;
  rows.l_cnt = 200.0e3;
  rows.fets_per_um = 1.8;
  rows.m_min = static_cast<std::uint64_t>(6.0 * yield::m_r_min(rows));
  const double analytic = yield::chip_yield_from_rows(p_rf, rows);
  EXPECT_NEAR(sim.chip_yield, analytic, 0.015);
}

TEST(Integration, FloorplanWindowsDriveTheChipSimulator) {
  // Place a real (small) design, take one row's windows scaled down to the
  // inflated regime, and check that the chip simulator's directional p_RF
  // matches the analytic union over the same window set.
  const auto lib = celllib::make_nangate45_like();
  const auto design = netlist::generate_design("d", lib, 3000, {});
  rng::Xoshiro256 rng(702);
  layout::FloorplanParams fp;
  fp.row_width = 30.0e3;
  const auto plan = layout::place_design(design, 103.0, fp, rng);
  const auto placed = plan.row_windows(0);
  ASSERT_GE(placed.size(), 3u);

  // Shrink the windows to the inflated regime but keep the *offsets* the
  // placement produced.
  std::vector<geom::Interval> windows;
  for (std::size_t i = 0; i < std::min<std::size_t>(placed.size(), 12); ++i) {
    windows.push_back({placed[i].y.lo, placed[i].y.lo + kWidth});
  }

  const cnt::DirectionalGrowth growth(pitch(), cnt::fig21_worst(), 200.0e3);
  yield::ChipSpec spec;
  spec.row_windows = windows;
  spec.n_rows = 1;
  const auto sim = yield::simulate_chip_yield(
      growth, spec, yield::GrowthStyle::Directional, 60000, rng);
  const double exact = yield::poisson_union_exact(lambda_s(), windows);
  EXPECT_NEAR(sim.p_rf / exact, 1.0, 0.10)
      << "exact=" << exact << " sim=" << sim.p_rf;
}

TEST(Integration, AlignedLibraryCollapsesPlacementOffsets) {
  // After the aligned-active transform, every critical window a placement
  // produces sits at the same y — the geometric mechanism of Table 1's
  // third column, verified through the placement pipeline.
  const auto lib = celllib::make_nangate45_like();
  layout::AlignOptions options;
  options.w_min = 103.0;
  const auto aligned = layout::align_active(lib, options, 140.0);
  const auto design =
      netlist::generate_design("d", aligned.library, 3000, {});
  rng::Xoshiro256 rng(703);
  layout::FloorplanParams fp;
  fp.row_width = 50.0e3;
  const auto plan = layout::place_design(design, 103.0, fp, rng);
  ASSERT_GT(plan.windows.size(), 20u);
  for (const auto& w : plan.windows) {
    EXPECT_DOUBLE_EQ(w.y.lo, aligned.grid_y_n);
  }
}

TEST(Integration, UpsizedLibrarySpectrumMatchesSpectrumUpsizing) {
  // Upsizing the library's transistors and re-extracting the width spectrum
  // must equal applying the upsizing function to the original spectrum —
  // the two paths the power model and the layout transform take.
  const auto lib = celllib::make_nangate45_like();
  const auto design = netlist::make_openrisc_like(lib);
  const double w_min = 137.0;

  celllib::Library up = lib;
  up.upsize_transistors([&](double w) { return std::max(w, w_min); });
  const auto design_up = design.retarget(&up);

  EXPECT_NEAR(design_up.total_width(), design.total_width_upsized(w_min),
              1e-6);
  EXPECT_EQ(design_up.count_transistors_below(w_min - 1.0), 0u);

  // Spectrum-level equivalence of the yield evaluation.
  const device::FailureModel model(cnt::PitchModel(4.0, 0.9),
                                   cnt::fig21_worst());
  const auto y_spec =
      yield::circuit_yield(design.width_spectrum(), model, w_min);
  const auto y_lib =
      yield::circuit_yield(design_up.width_spectrum(), model, 0.0);
  EXPECT_NEAR(y_spec.sum_pf, y_lib.sum_pf, 1e-9 * y_spec.sum_pf + 1e-18);
}

TEST(Integration, WminSolutionIsTightOnTheCurve) {
  // The solved W_min must sit exactly on the p_F curve at the target: a
  // 2 nm narrower device misses the yield budget, the solution meets it.
  const auto lib = celllib::make_nangate45_like();
  const auto design = netlist::make_openrisc_like(lib);
  const device::FailureModel model(cnt::PitchModel(4.0, 0.9),
                                   cnt::fig21_worst());
  auto spectrum = design.width_spectrum();
  spectrum = yield::scale_spectrum(spectrum, 1.0,
                                   1e8 / double(design.n_transistors()));
  yield::WminRequest req;
  const auto res = yield::solve_w_min(spectrum, model, req);

  const double target = res.p_f_target;
  EXPECT_NEAR(model.p_f(res.w_min) / target, 1.0, 1e-3);
  EXPECT_GT(model.p_f(res.w_min - 2.0), target);
}

TEST(Integration, EndToEndDeterminism) {
  // The whole library -> design -> W_min -> align pipeline is bitwise
  // reproducible run to run (no hidden global randomness).
  const auto run = [] {
    const auto lib = celllib::make_nangate45_like();
    const auto design = netlist::make_openrisc_like(lib);
    const device::FailureModel model(cnt::PitchModel(4.0, 0.9),
                                     cnt::fig21_worst());
    auto spectrum = design.width_spectrum();
    spectrum = yield::scale_spectrum(spectrum, 1.0,
                                     1e8 / double(design.n_transistors()));
    yield::WminRequest req;
    const auto solved = yield::solve_w_min(spectrum, model, req);
    layout::AlignOptions options;
    options.w_min = solved.w_min;
    const auto aligned = layout::align_active(lib, options, 140.0);
    return std::make_pair(solved.w_min, aligned.area_increase());
  };
  const auto a = run();
  const auto b = run();
  EXPECT_DOUBLE_EQ(a.first, b.first);
  EXPECT_DOUBLE_EQ(a.second, b.second);
}

}  // namespace
