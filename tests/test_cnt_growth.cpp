#include <gtest/gtest.h>

#include <cmath>

#include "cnt/growth.h"
#include "rng/engine.h"
#include "stats/accumulator.h"
#include "util/contracts.h"

namespace {

using namespace cny::cnt;

ProcessParams worst() { return fig21_worst(); }

TEST(ProcessParams, FailureProbabilityEq21) {
  // p_f = p_m + p_s * p_Rs (eq. 2.1).
  const ProcessParams p = worst();
  EXPECT_NEAR(p.p_fail(), 0.33 + 0.67 * 0.30, 1e-12);
  EXPECT_NEAR(fig21_mid().p_fail(), 0.33, 1e-12);
  EXPECT_DOUBLE_EQ(fig21_ideal().p_fail(), 0.0);
}

TEST(ProcessParams, PfailIndependentOfPrm) {
  // An unremoved m-CNT still cannot provide a semiconducting channel.
  ProcessParams a = worst();
  ProcessParams b = worst();
  b.p_remove_m = 0.5;
  EXPECT_DOUBLE_EQ(a.p_fail(), b.p_fail());
  EXPECT_DOUBLE_EQ(b.p_short(), 0.33 * 0.5);
  EXPECT_DOUBLE_EQ(a.p_short(), 0.0);
}

TEST(ProcessParams, FunctionalPredicate) {
  EXPECT_TRUE(ProcessParams::functional(false, false));
  EXPECT_FALSE(ProcessParams::functional(true, false));
  EXPECT_FALSE(ProcessParams::functional(false, true));
  EXPECT_FALSE(ProcessParams::functional(true, true));
}

TEST(ProcessParams, ValidationRejectsOutOfRange) {
  ProcessParams p;
  p.p_metallic = 1.5;
  EXPECT_THROW(p.validate(), cny::ContractViolation);
}

TEST(DirectionalGrowth, BandDensityMatchesPitch) {
  const PitchModel pitch(4.0, 0.9);
  const DirectionalGrowth growth(pitch, worst(), 200.0e3);
  cny::rng::Xoshiro256 rng(41);
  cny::stats::Accumulator per_band;
  const double band = 4000.0;  // 1000 expected tubes
  for (int i = 0; i < 200; ++i) {
    per_band.add(double(growth.generate_band(rng, 0.0, band, 1.0e6).size()));
  }
  EXPECT_NEAR(per_band.mean(), band / 4.0, 10.0);
}

TEST(DirectionalGrowth, TubePropertiesWithinSpec) {
  const PitchModel pitch(4.0, 0.9);
  const DirectionalGrowth growth(pitch, worst(), 200.0e3);
  cny::rng::Xoshiro256 rng(42);
  const auto tubes = growth.generate_band(rng, 10.0, 4000.0, 5.0e5);
  ASSERT_FALSE(tubes.empty());
  int metallic = 0;
  for (const auto& t : tubes) {
    EXPECT_GE(t.y, 10.0);
    EXPECT_LT(t.y, 4000.0);
    EXPECT_DOUBLE_EQ(t.length, 200.0e3);
    EXPECT_DOUBLE_EQ(t.angle, 0.0);
    EXPECT_GT(t.diameter, 0.0);
    EXPECT_GE(t.x0, -200.0e3);
    EXPECT_LT(t.x0, 5.0e5);
    metallic += t.metallic ? 1 : 0;
    if (t.metallic) {
      // p_Rm = 1: every metallic tube must be removed.
      EXPECT_TRUE(t.removed);
      EXPECT_FALSE(t.surviving_metallic());
    }
    EXPECT_EQ(t.functional(), !t.metallic && !t.removed);
  }
  EXPECT_NEAR(double(metallic) / double(tubes.size()), 0.33, 0.04);
}

TEST(DirectionalGrowth, FunctionalPositionsThinning) {
  const PitchModel pitch(4.0, 0.9);
  const DirectionalGrowth growth(pitch, worst(), 200.0e3);
  cny::rng::Xoshiro256 rng(43);
  cny::stats::Accumulator acc;
  const double band = 4000.0;
  for (int i = 0; i < 300; ++i) {
    acc.add(double(growth.functional_positions(rng, 0.0, band).size()));
  }
  // Expected: (band/μ) * (1 - p_f) = 1000 * 0.469.
  EXPECT_NEAR(acc.mean(), 1000.0 * (1.0 - worst().p_fail()), 8.0);
}

TEST(DirectionalGrowth, CoversXPredicate) {
  Cnt tube;
  tube.x0 = 100.0;
  tube.length = 50.0;
  EXPECT_TRUE(tube.covers_x(100.0));
  EXPECT_TRUE(tube.covers_x(149.9));
  EXPECT_FALSE(tube.covers_x(150.0));
  EXPECT_FALSE(tube.covers_x(99.9));
}

TEST(UncorrelatedGrowth, FieldDensityAndAngles) {
  const UncorrelatedGrowth growth(5.0, 1000.0, worst());
  cny::rng::Xoshiro256 rng(44);
  const cny::geom::Rect area{0.0, 0.0, 10000.0, 10000.0};  // 100 µm²
  const auto tubes = growth.generate_field(rng, area);
  // Density is over the grown (expanded) region; expected count =
  // 5 per µm² * (12 µm)² = 720.
  EXPECT_NEAR(double(tubes.size()), 720.0, 150.0);
  bool any_angle = false;
  for (const auto& t : tubes) {
    EXPECT_GE(t.angle, 0.0);
    EXPECT_LT(t.angle, 3.1416);
    any_angle |= t.angle > 0.1;
  }
  EXPECT_TRUE(any_angle);
}

TEST(DiameterModel, MomentsMatch) {
  const DiameterModel dm;  // mean 1.5, cv 0.15
  cny::rng::Xoshiro256 rng(45);
  cny::stats::Accumulator acc;
  for (int i = 0; i < 50000; ++i) acc.add(dm.sample(rng));
  EXPECT_NEAR(acc.mean(), 1.5, 0.01);
  EXPECT_NEAR(acc.stddev(), 0.225, 0.01);
}

TEST(Growth, RejectsBadArguments) {
  const PitchModel pitch(4.0, 0.9);
  EXPECT_THROW(DirectionalGrowth(pitch, worst(), 0.0), cny::ContractViolation);
  const DirectionalGrowth g(pitch, worst(), 1.0e5);
  cny::rng::Xoshiro256 rng(46);
  EXPECT_THROW(g.generate_band(rng, 5.0, 5.0, 100.0), cny::ContractViolation);
  EXPECT_THROW(UncorrelatedGrowth(0.0, 100.0, worst()),
               cny::ContractViolation);
}

}  // namespace
