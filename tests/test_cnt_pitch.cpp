#include <gtest/gtest.h>

#include <cmath>

#include "cnt/pitch_model.h"
#include "numeric/integrate.h"
#include "numeric/special.h"
#include "rng/engine.h"
#include "stats/accumulator.h"
#include "stats/histogram.h"
#include "util/contracts.h"

namespace {

using cny::cnt::PitchModel;

TEST(PitchModel, ShapeScaleFromMeanCv) {
  const PitchModel pm(4.0, 0.5);
  EXPECT_DOUBLE_EQ(pm.shape(), 4.0);      // 1/0.25
  EXPECT_DOUBLE_EQ(pm.scale(), 1.0);      // 4 * 0.25
  EXPECT_DOUBLE_EQ(pm.mean(), 4.0);
  EXPECT_DOUBLE_EQ(pm.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(pm.density(), 0.25);
}

TEST(PitchModel, PoissonDetection) {
  EXPECT_TRUE(PitchModel(4.0, 1.0).is_poisson());
  EXPECT_FALSE(PitchModel(4.0, 0.9).is_poisson());
}

TEST(PitchModel, CdfIsDistribution) {
  const PitchModel pm(4.0, 0.8);
  EXPECT_DOUBLE_EQ(pm.cdf(0.0), 0.0);
  EXPECT_NEAR(pm.cdf(1000.0), 1.0, 1e-12);
  double prev = 0.0;
  for (double s = 0.5; s < 20.0; s += 0.5) {
    const double c = pm.cdf(s);
    EXPECT_GE(c, prev);
    prev = c;
  }
}

TEST(PitchModel, PdfIntegratesToCdf) {
  const PitchModel pm(4.0, 0.7);
  for (double s : {2.0, 4.0, 8.0}) {
    const double integral = cny::numeric::integrate_gl(
        [&](double u) { return pm.pdf(u); }, 0.0, s, 16);
    EXPECT_NEAR(integral, pm.cdf(s), 5e-8) << "s=" << s;
  }
}

TEST(PitchModel, EquilibriumCdfClosedFormMatchesIntegral) {
  // F_e(u) = (1/μ) ∫_0^u (1 - F(t)) dt; the closed form must agree with
  // direct quadrature of the definition.
  for (double cv : {0.5, 0.9, 1.0, 1.3}) {
    const PitchModel pm(4.0, cv);
    for (double u : {1.0, 4.0, 10.0, 25.0}) {
      // The reference quadrature (not the closed form) limits accuracy
      // here: for CV > 1 the integrand has unbounded derivative at 0.
      const double direct = cny::numeric::integrate_gl(
          [&](double t) { return (1.0 - pm.cdf(t)) / pm.mean(); }, 0.0, u, 96);
      EXPECT_NEAR(pm.equilibrium_cdf(u), direct, 5e-6)
          << "cv=" << cv << " u=" << u;
    }
  }
}

TEST(PitchModel, EquilibriumPdfIsDensityOfEquilibriumCdf) {
  const PitchModel pm(4.0, 0.9);
  for (double u : {0.5, 2.0, 6.0}) {
    const double h = 1e-6;
    const double d = (pm.equilibrium_cdf(u + h) - pm.equilibrium_cdf(u - h)) /
                     (2.0 * h);
    EXPECT_NEAR(d, pm.equilibrium_pdf(u), 1e-6);
  }
}

TEST(PitchModel, PoissonEquilibriumIsExponential) {
  const PitchModel pm(4.0, 1.0);
  for (double u : {1.0, 4.0, 12.0}) {
    EXPECT_NEAR(pm.equilibrium_cdf(u), 1.0 - std::exp(-u / 4.0), 1e-12);
  }
}

TEST(PitchModel, UpperQuantileInvertsTail) {
  const PitchModel pm(4.0, 0.8);
  for (double eps : {1e-3, 1e-9, 1e-18}) {
    const double u = pm.upper_quantile(eps);
    // Check through the upper-tail function directly: 1 - cdf(u) cannot
    // resolve 1e-18 in double precision, gamma_q can.
    const double tail = cny::numeric::gamma_q(pm.shape(), u / pm.scale());
    EXPECT_NEAR(tail / eps, 1.0, 1e-4);
  }
}

TEST(PitchModel, SampleMomentsMatch) {
  const PitchModel pm(4.0, 0.9);
  cny::rng::Xoshiro256 rng(31);
  cny::stats::Accumulator acc;
  for (int i = 0; i < 100000; ++i) acc.add(pm.sample(rng));
  EXPECT_NEAR(acc.mean(), 4.0, 0.05);
  EXPECT_NEAR(acc.stddev(), 3.6, 0.1);
}

TEST(PitchModel, EquilibriumSampleMatchesEquilibriumCdf) {
  const PitchModel pm(4.0, 0.7);
  cny::rng::Xoshiro256 rng(32);
  std::vector<double> sample;
  for (int i = 0; i < 4000; ++i) sample.push_back(pm.sample_equilibrium(rng));
  const double d = cny::stats::ks_distance(
      sample, [&](double u) { return pm.equilibrium_cdf(u); });
  EXPECT_LT(d, 0.035);
}

TEST(PitchModel, PoissonEquilibriumSamplingFastPath) {
  const PitchModel pm(4.0, 1.0);
  cny::rng::Xoshiro256 rng(33);
  cny::stats::Accumulator acc;
  for (int i = 0; i < 50000; ++i) acc.add(pm.sample_equilibrium(rng));
  EXPECT_NEAR(acc.mean(), 4.0, 0.1);  // exponential mean
}

TEST(PitchModel, RejectsBadParameters) {
  EXPECT_THROW(PitchModel(0.0, 1.0), cny::ContractViolation);
  EXPECT_THROW(PitchModel(4.0, 0.0), cny::ContractViolation);
  EXPECT_THROW(PitchModel(4.0, 0.5).upper_quantile(0.0),
               cny::ContractViolation);
}

}  // namespace
