#include <gtest/gtest.h>

#include <cmath>

#include "yield/empty_window.h"
#include "yield/monte_carlo.h"
#include "util/contracts.h"

namespace {

using namespace cny::yield;
using cny::cnt::DirectionalGrowth;
using cny::cnt::PitchModel;
using cny::geom::Interval;

// Inflated-probability regime: windows of ~30 nm on a Poisson pitch with
// the worst processing condition give per-window empty probability ~3e-2,
// resolvable by direct simulation.
DirectionalGrowth test_growth(double cv = 1.0) {
  return DirectionalGrowth(PitchModel(4.0, cv), cny::cnt::fig21_worst(),
                           200.0e3);
}

double lambda_s() { return (1.0 - cny::cnt::fig21_worst().p_fail()) / 4.0; }

TEST(ChipMc, AlignedRowFailureEqualsSingleWindow) {
  // All windows identical → p_RF = P(one window empty).
  const auto growth = test_growth();
  ChipSpec spec;
  const double w = 30.0;
  spec.row_windows = std::vector<Interval>(8, Interval{0.0, w});
  spec.n_rows = 1;
  cny::rng::Xoshiro256 rng(201);
  const auto res = simulate_chip_yield(growth, spec, GrowthStyle::Directional,
                                       60000, rng);
  const double expected = std::exp(-lambda_s() * w);
  EXPECT_NEAR(res.p_rf / expected, 1.0, 0.08);
}

TEST(ChipMc, UncorrelatedRowMatchesIndependentFormula) {
  const auto growth = test_growth();
  ChipSpec spec;
  const double w = 30.0;
  spec.row_windows = std::vector<Interval>(8, Interval{0.0, w});
  spec.n_rows = 1;
  cny::rng::Xoshiro256 rng(202);
  const auto res = simulate_chip_yield(growth, spec,
                                       GrowthStyle::Uncorrelated, 30000, rng);
  const double p1 = std::exp(-lambda_s() * w);
  const double expected = 1.0 - std::pow(1.0 - p1, 8.0);
  EXPECT_NEAR(res.p_rf / expected, 1.0, 0.08);
}

TEST(ChipMc, DirectionalPartialOverlapMatchesUnionEngine) {
  // The chip simulator, the exact inclusion-exclusion, and the conditional
  // MC must agree on the same partially-overlapping window set.
  const auto growth = test_growth();
  ChipSpec spec;
  const double w = 30.0;
  spec.row_windows = {{0.0, w}, {10.0, 10.0 + w}, {35.0, 35.0 + w}};
  spec.n_rows = 1;
  cny::rng::Xoshiro256 rng(203);
  const auto sim = simulate_chip_yield(growth, spec,
                                       GrowthStyle::Directional, 120000, rng);
  const double exact = poisson_union_exact(lambda_s(), spec.row_windows);
  EXPECT_NEAR(sim.p_rf / exact, 1.0, 0.08);
  const auto cond =
      union_conditional_mc(lambda_s(), spec.row_windows, 20000, rng);
  EXPECT_NEAR(cond.estimate / exact, 1.0, 0.05);
}

TEST(ChipMc, CorrelationOrdering) {
  // Directional growth with shared windows must fail *less often per row*
  // than uncorrelated growth on the same windows — the paper's core claim.
  const auto growth = test_growth();
  ChipSpec spec;
  const double w = 30.0;
  spec.row_windows = std::vector<Interval>(12, Interval{0.0, w});
  spec.n_rows = 1;
  cny::rng::Xoshiro256 rng(204);
  const auto dir = simulate_chip_yield(growth, spec,
                                       GrowthStyle::Directional, 40000, rng);
  const auto unc = simulate_chip_yield(growth, spec,
                                       GrowthStyle::Uncorrelated, 40000, rng);
  EXPECT_LT(dir.p_rf, unc.p_rf);
  EXPECT_GT(unc.p_rf / dir.p_rf, 4.0);  // ~12X for 12 shared windows
}

TEST(ChipMc, ChipYieldFromRowFailures) {
  const auto growth = test_growth();
  ChipSpec spec;
  const double w = 24.0;  // p_row ≈ e^{-2.8} ≈ 0.06
  spec.row_windows = {{0.0, w}};
  spec.n_rows = 10;
  cny::rng::Xoshiro256 rng(205);
  const auto res = simulate_chip_yield(growth, spec,
                                       GrowthStyle::Directional, 20000, rng);
  const double p_row = std::exp(-lambda_s() * w);
  EXPECT_NEAR(res.chip_yield, std::pow(1.0 - p_row, 10.0), 0.02);
  EXPECT_EQ(res.rows_simulated, 200000u);
}

TEST(ChipMc, SeedReproducibility) {
  const auto growth = test_growth();
  ChipSpec spec;
  spec.row_windows = {{0.0, 30.0}};
  spec.n_rows = 2;
  cny::rng::Xoshiro256 a(7), b(7);
  const auto r1 = simulate_chip_yield(growth, spec,
                                      GrowthStyle::Directional, 2000, a);
  const auto r2 = simulate_chip_yield(growth, spec,
                                      GrowthStyle::Directional, 2000, b);
  EXPECT_DOUBLE_EQ(r1.chip_yield, r2.chip_yield);
  EXPECT_DOUBLE_EQ(r1.p_rf, r2.p_rf);
}

TEST(ChipMc, InputValidation) {
  const auto growth = test_growth();
  cny::rng::Xoshiro256 rng(1);
  ChipSpec empty;
  EXPECT_THROW(
      simulate_chip_yield(growth, empty, GrowthStyle::Directional, 10, rng),
      cny::ContractViolation);
  ChipSpec bad;
  bad.row_windows = {{5.0, 5.0}};
  EXPECT_THROW(
      simulate_chip_yield(growth, bad, GrowthStyle::Directional, 10, rng),
      cny::ContractViolation);
}

}  // namespace
