#include <gtest/gtest.h>

#include "celllib/generator.h"
#include "experiments/fig2_1.h"
#include "experiments/fig2_2.h"
#include "experiments/table1.h"
#include "experiments/table2.h"
#include "netlist/design_generator.h"

namespace {

using namespace cny::experiments;

// Integration tests: run the full experiment drivers and assert the
// paper-level headlines (who wins, by roughly what factor, where the
// crossovers fall). These are the "shape" guarantees of the reproduction.

const PaperParams& params() {
  static const PaperParams p;
  return p;
}

TEST(Fig21, CurvesDropExponentiallyAndOrder) {
  const auto res = run_fig2_1(params(), 20.0, 180.0, 8.0);
  ASSERT_GT(res.curve.size(), 10u);
  for (std::size_t i = 1; i < res.curve.size(); ++i) {
    EXPECT_LT(res.curve[i].pf_worst, res.curve[i - 1].pf_worst);
    EXPECT_LT(res.curve[i].pf_mid, res.curve[i].pf_worst);
    EXPECT_LT(res.curve[i].pf_ideal, res.curve[i].pf_mid);
  }
}

TEST(Fig21, AnchorWidthsNearPaper) {
  const auto res = run_fig2_1(params());
  // Paper: ~155 nm at p_F = 3e-9 and ~103 nm at 1.1e-6 (350X relaxation).
  EXPECT_NEAR(res.w_at_3e9, 155.0, 10.0);
  EXPECT_NEAR(res.w_at_1p1e6, 103.0, 10.0);
  EXPECT_NEAR(res.w_at_3e9 - res.w_at_1p1e6, 52.0, 10.0);
}

TEST(Fig21, ReportRenders) {
  const auto exp = report_fig2_1(params());
  const std::string text = exp.render_text();
  EXPECT_NE(text.find("fig2_1"), std::string::npos);
  EXPECT_NE(text.find("350"), std::string::npos);
  EXPECT_FALSE(exp.render_markdown().empty());
}

TEST(Fig22a, HistogramMatchesMminShare) {
  const auto lib = cny::celllib::make_nangate45_like();
  const auto design = cny::netlist::make_openrisc_like(lib);
  const auto res = run_fig2_2a(design);
  EXPECT_NEAR(res.frac_below_160, 0.33, 0.05);
  EXPECT_GT(res.design_transistors, 100000u);
  // Fractions sum to ~1 (no underflow; small overflow tail allowed).
  double sum = 0.0;
  for (double f : res.fraction) sum += f;
  EXPECT_GT(sum, 0.95);
}

TEST(Fig22b, PenaltySeriesShape) {
  const auto lib = cny::celllib::make_nangate45_like();
  const auto design = cny::netlist::make_openrisc_like(lib);
  const auto res = run_penalty_scaling(params(), design, 350.0);
  ASSERT_EQ(res.without_correlation.nodes.size(), 4u);
  // Paper Fig 3.3: the optimised flow wins at every node.
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_LT(res.with_correlation.nodes[i].penalty,
              res.without_correlation.nodes[i].penalty);
  }
  // 45 nm anchors: W_min ≈ 155 vs ≈ 103.
  EXPECT_NEAR(res.without_correlation.nodes[0].w_min, 155.0, 10.0);
  EXPECT_NEAR(res.with_correlation.nodes[0].w_min, 103.0, 10.0);
}

TEST(Table1, ReproducesPaperRatios) {
  const auto lib = cny::celllib::make_nangate45_like();
  const auto design = cny::netlist::make_openrisc_like(lib);
  const auto res = run_table1(params(), design, 0.0, 30000, 1);

  EXPECT_NEAR(res.m_r_min, 360.0, 1e-9);
  // Operating point: uncorrelated p_RF = 5.3e-6 by construction.
  EXPECT_NEAR(res.p_rf_uncorrelated, 5.3e-6, 1e-7);
  // Aligned column: p_RF = p_F ≈ 1.5e-8.
  EXPECT_NEAR(res.p_rf_aligned, 1.5e-8, 2e-9);
  // Middle column: paper 2.0e-7; synthetic library calibrated to its
  // regime — accept 1e-7..4e-7.
  EXPECT_GT(res.p_rf_directional, 1.0e-7);
  EXPECT_LT(res.p_rf_directional, 4.0e-7);
  // Gain split: paper 26.5X and 13X.
  EXPECT_NEAR(res.gain_directional, 26.5, 8.0);
  EXPECT_NEAR(res.gain_aligned, 13.0, 5.0);
  // Total: ~350X (equals M_Rmin up to rounding).
  EXPECT_NEAR(res.gain_total, 360.0, 5.0);
}

TEST(Table1, OrderingInvariant) {
  const auto lib = cny::celllib::make_nangate45_like();
  const auto design = cny::netlist::make_openrisc_like(lib);
  const auto res = run_table1(params(), design, 0.0, 5000, 2);
  EXPECT_GT(res.p_rf_uncorrelated, res.p_rf_directional);
  EXPECT_GT(res.p_rf_directional, res.p_rf_aligned);
}

TEST(Table2, ReproducesPaperRegimes) {
  const auto res = run_table2(params());

  // Nangate-like: exactly 4 of 134 cells penalised, in the 4-14 % band.
  EXPECT_EQ(res.nangate_one.n_cells, 134u);
  EXPECT_EQ(res.nangate_one.cells_with_penalty, 4u);
  EXPECT_GT(res.nangate_one.min_penalty, 0.03);
  EXPECT_LT(res.nangate_one.max_penalty, 0.16);

  // Commercial-like: ~20 % of 775 cells, penalties reaching tens of %.
  EXPECT_EQ(res.commercial_one.n_cells, 775u);
  EXPECT_NEAR(res.commercial_one.frac_with_penalty, 0.20, 0.06);
  EXPECT_GT(res.commercial_one.max_penalty, 0.40);

  // Two aligned rows: zero penalty, W_min pays < 5 %.
  EXPECT_EQ(res.commercial_two.cells_with_penalty, 0u);
  EXPECT_LT(res.commercial_two.w_min / res.commercial_one.w_min, 1.08);
  EXPECT_GT(res.commercial_two.w_min, res.commercial_one.w_min);

  // W_min anchors near the paper's 103-112 nm band.
  EXPECT_NEAR(res.nangate_one.w_min, 103.0, 10.0);
  EXPECT_NEAR(res.commercial_one.w_min, 107.0, 10.0);
  EXPECT_NEAR(res.commercial_two.w_min, 112.0, 10.0);
}

TEST(Reports, AllRenderAndExportCsv) {
  const auto dir = ::testing::TempDir();
  for (const auto& exp :
       {report_fig2_1(params()), report_fig2_2a(), report_fig2_2b(params()),
        report_table1(params()), report_table2(params())}) {
    EXPECT_FALSE(exp.render_text().empty());
    EXPECT_FALSE(exp.render_markdown().empty());
    const auto paths = exp.write_csv(dir);
    EXPECT_FALSE(paths.empty());
  }
}

}  // namespace
