// Tests for design I/O, the timing model, the count-correlation estimator,
// the report framework, and the units header.
#include <gtest/gtest.h>

#include <cmath>
#include <fstream>

#include "celllib/generator.h"
#include "cnt/correlation.h"
#include "device/timing.h"
#include "netlist/design_generator.h"
#include "netlist/design_io.h"
#include "report/experiment.h"
#include "util/contracts.h"
#include "util/units.h"

namespace {

using namespace cny;

// ---------------------------------------------------------------- units

TEST(Units, Conversions) {
  EXPECT_DOUBLE_EQ(200.0 * units::um, 200000.0);
  EXPECT_DOUBLE_EQ(1.0 * units::mm, 1.0e6);
  EXPECT_DOUBLE_EQ(units::per_um(1.8), 0.0018);
}

// ------------------------------------------------------------- design io

const celllib::Library& lib45() {
  static const celllib::Library lib = celllib::make_nangate45_like();
  return lib;
}

TEST(DesignIo, RoundTripIsLossless) {
  const auto design = netlist::make_openrisc_like(lib45());
  const auto parsed =
      netlist::from_design_text(netlist::to_design_text(design), lib45());
  EXPECT_EQ(parsed.name(), design.name());
  EXPECT_EQ(parsed.n_instances(), design.n_instances());
  EXPECT_EQ(parsed.n_transistors(), design.n_transistors());
  ASSERT_EQ(parsed.instances().size(), design.instances().size());
  for (std::size_t i = 0; i < parsed.instances().size(); ++i) {
    EXPECT_EQ(parsed.instances()[i].cell_name,
              design.instances()[i].cell_name);
    EXPECT_EQ(parsed.instances()[i].count, design.instances()[i].count);
  }
}

TEST(DesignIo, FileRoundTrip) {
  const auto design = netlist::make_openrisc_like(lib45());
  const std::string path = ::testing::TempDir() + "/design_roundtrip.txt";
  netlist::save_design(design, path);
  const auto loaded = netlist::load_design(path, lib45());
  EXPECT_EQ(loaded.n_transistors(), design.n_transistors());
}

TEST(DesignIo, RejectsLibraryMismatch) {
  const auto design = netlist::make_openrisc_like(lib45());
  const auto text = netlist::to_design_text(design);
  const auto other = celllib::make_commercial65_like();
  EXPECT_THROW((void)netlist::from_design_text(text, other),
               cny::ContractViolation);
}

TEST(DesignIo, RejectsMalformedInput) {
  EXPECT_THROW((void)netlist::from_design_text("instance INV_X1 1\n", lib45()),
               cny::ContractViolation);
  EXPECT_THROW((void)netlist::from_design_text(
                   "design \"d\" library \"nangate45_like\"\n"
                   "instance NOT_A_CELL 5\nenddesign\n",
                   lib45()),
               cny::ContractViolation);
  EXPECT_THROW((void)netlist::from_design_text(
                   "design \"d\" library \"nangate45_like\"\n", lib45()),
               cny::ContractViolation);
}

TEST(DesignIo, SkipsCommentsAndBlankLines) {
  const auto design = netlist::from_design_text(
      "# header comment\n"
      "design \"d\" library \"nangate45_like\"\n"
      "\n"
      "instance INV_X1 7\n"
      "# trailing comment\n"
      "enddesign\n",
      lib45());
  EXPECT_EQ(design.n_instances(), 7u);
}

// ----------------------------------------------------------------- timing

TEST(Timing, PathDelayAveragesAcrossStages) {
  // CV of an n-stage path falls like 1/sqrt(n).
  const cnt::PitchModel pitch(4.0, 1.0);
  const auto process = cnt::fig21_mid();
  const cnt::DiameterModel diam;
  const device::TubeCurrentModel tube;
  const device::TimingParams timing;
  rng::Xoshiro256 rng(501);
  const auto one = device::simulate_path_delay(pitch, process, diam, tube,
                                               timing, 120.0, 1, 20000, rng);
  const auto sixteen = device::simulate_path_delay(
      pitch, process, diam, tube, timing, 120.0, 16, 20000, rng);
  EXPECT_NEAR(one.cv / sixteen.cv, 4.0, 0.6);
  EXPECT_NEAR(sixteen.mean / one.mean, 16.0, 1.5);
}

TEST(Timing, WiderDevicesTightenTheDistribution) {
  const cnt::PitchModel pitch(4.0, 0.9);
  const auto process = cnt::fig21_worst();
  const cnt::DiameterModel diam;
  const device::TubeCurrentModel tube;
  const device::TimingParams timing;
  rng::Xoshiro256 rng(502);
  const auto narrow = device::simulate_path_delay(
      pitch, process, diam, tube, timing, 103.0, 8, 15000, rng);
  const auto wide = device::simulate_path_delay(
      pitch, process, diam, tube, timing, 412.0, 8, 15000, rng);
  EXPECT_LT(wide.cv, narrow.cv);
  EXPECT_LT(wide.p99_over_mean, narrow.p99_over_mean);
  // Mean delay is ~width-independent (load and drive both scale with W).
  EXPECT_NEAR(wide.mean / narrow.mean, 1.0, 0.15);
}

TEST(Timing, AnalyticCvMatchesSimulation) {
  const cnt::PitchModel pitch(4.0, 1.0);
  const auto process = cnt::fig21_mid();
  const cnt::DiameterModel diam;
  const device::TubeCurrentModel tube;
  const device::TimingParams timing;
  rng::Xoshiro256 rng(503);
  const auto sim = device::simulate_path_delay(pitch, process, diam, tube,
                                               timing, 160.0, 9, 30000, rng);
  const double analytic =
      device::analytic_path_delay_cv(pitch, process, diam, tube, 160.0, 9);
  // First-order delta-method estimate; agree within ~15 %.
  EXPECT_NEAR(sim.cv / analytic, 1.0, 0.15);
}

TEST(Timing, DeadGatesMarkPathsFailed) {
  const cnt::PitchModel pitch(4.0, 1.0);
  const auto process = cnt::fig21_worst();
  const cnt::DiameterModel diam;
  const device::TubeCurrentModel tube;
  const device::TimingParams timing;
  rng::Xoshiro256 rng(504);
  // 8 nm devices: p_F ~ 0.4 per gate -> most 4-stage paths contain a dead
  // gate.
  const auto res = device::simulate_path_delay(pitch, process, diam, tube,
                                               timing, 8.0, 4, 4000, rng);
  EXPECT_GT(res.failed_paths, 2000u);
  EXPECT_LT(res.failed_paths, 4000u);
}

// -------------------------------------------------------- correlation

TEST(Correlation, PoissonClosedForm) {
  EXPECT_DOUBLE_EQ(cnt::poisson_count_correlation(100.0, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(cnt::poisson_count_correlation(100.0, 25.0), 0.75);
  EXPECT_DOUBLE_EQ(cnt::poisson_count_correlation(100.0, 100.0), 0.0);
  EXPECT_DOUBLE_EQ(cnt::poisson_count_correlation(100.0, 500.0), 0.0);
  EXPECT_DOUBLE_EQ(cnt::shared_type_correlation(100.0, 25.0), 0.75);
}

TEST(Correlation, SampledMatchesPoissonClosedForm) {
  const cnt::PitchModel pitch(4.0, 1.0);
  rng::Xoshiro256 rng(505);
  for (double offset : {0.0, 40.0, 120.0}) {
    const auto res =
        cnt::sample_count_correlation(pitch, 160.0, offset, 40000, rng);
    EXPECT_NEAR(res.correlation,
                cnt::poisson_count_correlation(160.0, offset), 0.02)
        << "offset=" << offset;
    EXPECT_NEAR(res.mean_a, 40.0, 0.5);
    EXPECT_NEAR(res.mean_b, 40.0, 0.5);
  }
}

TEST(Correlation, AlignedWindowsPerfectlyCorrelated) {
  const cnt::PitchModel pitch(4.0, 0.9);
  rng::Xoshiro256 rng(506);
  const auto res =
      cnt::sample_count_correlation(pitch, 155.0, 0.0, 5000, rng);
  EXPECT_NEAR(res.correlation, 1.0, 1e-9);
}

TEST(Correlation, PitchRegularityOrdersPartialOverlapCorrelation) {
  // Sub-Poisson (regular) spacing makes counts in *disjoint* segments
  // negatively correlated (a point here crowds out a point there), which
  // drags the partial-overlap correlation slightly below the Poisson
  // overlap/W value; super-Poisson (bursty) spacing pushes it above.
  rng::Xoshiro256 rng(507);
  const double poisson_corr = cnt::poisson_count_correlation(160.0, 80.0);
  const auto regular = cnt::sample_count_correlation(
      cnt::PitchModel(4.0, 0.5), 160.0, 80.0, 120000, rng);
  const auto bursty = cnt::sample_count_correlation(
      cnt::PitchModel(4.0, 1.4), 160.0, 80.0, 120000, rng);
  EXPECT_LT(regular.correlation, poisson_corr);
  EXPECT_GT(bursty.correlation, poisson_corr);
}

// ------------------------------------------------------------- report

TEST(Report, RenderContainsTablesAndComparisons) {
  report::Experiment exp("unit", "unit-test experiment");
  exp.add_table("numbers").header({"a", "b"}).row({"1", "2"});
  exp.add_comparison({"quantity", "3", "3.1", "note"});
  const auto text = exp.render_text();
  EXPECT_NE(text.find("unit-test experiment"), std::string::npos);
  EXPECT_NE(text.find("| 1 | 2 |"), std::string::npos);
  EXPECT_NE(text.find("Paper vs measured"), std::string::npos);
  const auto md = exp.render_markdown();
  EXPECT_NE(md.find("## unit"), std::string::npos);
}

TEST(Report, CsvExportWritesOneFilePerTable) {
  report::Experiment exp("csvtest", "t");
  exp.add_table("one").header({"x"}).row({"1"});
  exp.add_table("two").header({"y"}).row({"2"});
  const auto paths = exp.write_csv(::testing::TempDir());
  ASSERT_EQ(paths.size(), 2u);
  std::ifstream in(paths[1]);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "y");
}

TEST(Report, RejectsEmptyId) {
  EXPECT_THROW(report::Experiment("", "t"), cny::ContractViolation);
}

}  // namespace
