// Property-based sweeps (parameterized gtest) over the model invariants the
// paper's argument rests on. Each suite sweeps a parameter grid and checks a
// structural property, not a specific number.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "cnt/count_distribution.h"
#include "device/failure_model.h"
#include "yield/circuit_yield.h"
#include "yield/empty_window.h"
#include "yield/row_model.h"
#include "yield/wmin_solver.h"

namespace {

using cny::cnt::CountDistribution;
using cny::cnt::PitchModel;
using cny::cnt::ProcessParams;
using cny::device::FailureModel;

// ---------------------------------------------------------------------
// Property: p_F(W) is strictly decreasing in W and increasing in p_f, for
// every pitch CV — the foundation of both Fig 2.1 and the W_min procedure.

struct PfParams {
  double cv;
  double pm;
  double prs;
};

class PfMonotonicity : public ::testing::TestWithParam<PfParams> {};

TEST_P(PfMonotonicity, DecreasingInWidth) {
  const auto [cv, pm, prs] = GetParam();
  const FailureModel model(PitchModel(4.0, cv),
                           ProcessParams{pm, 1.0, prs});
  double prev = 1.0 + 1e-9;
  for (double w = 8.0; w <= 160.0; w += 16.0) {
    const double pf = model.p_f(w);
    EXPECT_LT(pf, prev) << "cv=" << cv << " w=" << w;
    EXPECT_GT(pf, 0.0);
    prev = pf;
  }
}

TEST_P(PfMonotonicity, WorsePerCntFailureRaisesDevicePf) {
  const auto [cv, pm, prs] = GetParam();
  const PitchModel pitch(4.0, cv);
  const FailureModel base(pitch, ProcessParams{pm, 1.0, prs});
  const FailureModel worse(pitch, ProcessParams{std::min(1.0, pm + 0.1), 1.0,
                                                prs});
  for (double w : {40.0, 100.0}) {
    EXPECT_GT(worse.p_f(w), base.p_f(w));
  }
}

INSTANTIATE_TEST_SUITE_P(
    GridSweep, PfMonotonicity,
    ::testing::Values(PfParams{0.6, 0.33, 0.30}, PfParams{0.8, 0.33, 0.30},
                      PfParams{0.9, 0.33, 0.00}, PfParams{1.0, 0.33, 0.30},
                      PfParams{1.2, 0.10, 0.10}, PfParams{0.9, 0.05, 0.00}));

// ---------------------------------------------------------------------
// Property: the count distribution is a genuine distribution with the
// stationary-renewal mean for any (CV, W).

class CountDistributionSweep
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(CountDistributionSweep, MassAndMean) {
  const auto [cv, w] = GetParam();
  const CountDistribution d(PitchModel(4.0, cv), w);
  double sum = 0.0;
  for (long n = 0; n <= d.max_n(); ++n) {
    EXPECT_GE(d.pmf(n), 0.0);
    sum += d.pmf(n);
  }
  EXPECT_NEAR(sum, 1.0, 1e-10);
  EXPECT_NEAR(d.mean(), w / 4.0, 1e-5);
}

TEST_P(CountDistributionSweep, PgfMonotoneInZ) {
  const auto [cv, w] = GetParam();
  const CountDistribution d(PitchModel(4.0, cv), w);
  double prev = d.pgf(0.0);
  for (double z = 0.1; z <= 1.0; z += 0.1) {
    const double g = d.pgf(z);
    EXPECT_GE(g, prev - 1e-15);
    prev = g;
  }
  EXPECT_NEAR(prev, 1.0, 1e-10);
}

INSTANTIATE_TEST_SUITE_P(
    GridSweep, CountDistributionSweep,
    ::testing::Combine(::testing::Values(0.6, 0.9, 1.0, 1.3),
                       ::testing::Values(12.0, 60.0, 155.0)),
    [](const auto& info) {
      return "cv" + std::to_string(int(std::get<0>(info.param) * 10)) + "_w" +
             std::to_string(int(std::get<1>(info.param)));
    });

// ---------------------------------------------------------------------
// Property: correlation never hurts — for any window set, the union
// probability is at most the independent-failure probability of the same
// number of windows, and at least the single-window probability.

class UnionBounds : public ::testing::TestWithParam<double> {};

TEST_P(UnionBounds, SqueezedBetweenAlignedAndIndependent) {
  const double spread = GetParam();
  const double lambda = 0.117, w = 145.0;
  std::vector<cny::geom::Interval> windows;
  for (int i = 0; i < 12; ++i) {
    const double y = spread * i / 11.0;
    windows.push_back({y, y + w});
  }
  const double p1 = std::exp(-lambda * w);
  const double p_union = cny::yield::poisson_union_exact(lambda, windows);
  const double p_indep = 1.0 - std::pow(1.0 - p1, 12.0);
  EXPECT_GE(p_union, p1 * (1.0 - 1e-7));
  EXPECT_LE(p_union, p_indep * (1.0 + 1e-7));
}

INSTANTIATE_TEST_SUITE_P(SpreadSweep, UnionBounds,
                         ::testing::Values(0.0, 10.0, 40.0, 100.0, 300.0,
                                           2000.0));

TEST(UnionBounds, ConvergesToIndependentAtLargeSpread) {
  const double lambda = 0.117, w = 145.0;
  std::vector<cny::geom::Interval> windows;
  for (int i = 0; i < 10; ++i) {
    const double y = 10000.0 * i;  // far beyond any overlap
    windows.push_back({y, y + w});
  }
  const double p1 = std::exp(-lambda * w);
  const double p_union = cny::yield::poisson_union_exact(lambda, windows);
  EXPECT_NEAR(p_union / (1.0 - std::pow(1.0 - p1, 10.0)), 1.0, 1e-7);
}

// ---------------------------------------------------------------------
// Property: W_min responds monotonically to every requirement knob.

TEST(WminProperties, MonotoneInYieldTarget) {
  const FailureModel model(PitchModel(4.0, 0.9), cny::cnt::fig21_worst());
  const cny::yield::WidthSpectrum s = {{100.0, 33000000},
                                       {300.0, 67000000}};
  double prev = 0.0;
  for (double y : {0.5, 0.8, 0.9, 0.99}) {
    cny::yield::WminRequest req;
    req.yield_desired = y;
    req.fixed_m_min = 33000000;
    const auto res = cny::yield::solve_w_min(s, model, req);
    EXPECT_GT(res.w_min, prev) << "yield=" << y;
    prev = res.w_min;
  }
}

TEST(WminProperties, MonotoneInRelaxation) {
  const FailureModel model(PitchModel(4.0, 0.9), cny::cnt::fig21_worst());
  const cny::yield::WidthSpectrum s = {{100.0, 33000000},
                                       {300.0, 67000000}};
  double prev = 1e9;
  for (double r : {1.0, 10.0, 100.0, 350.0}) {
    cny::yield::WminRequest req;
    req.relaxation = r;
    req.fixed_m_min = 33000000;
    const auto res = cny::yield::solve_w_min(s, model, req);
    EXPECT_LT(res.w_min, prev) << "relax=" << r;
    prev = res.w_min;
  }
}

TEST(WminProperties, MonotoneInMmin) {
  const FailureModel model(PitchModel(4.0, 0.9), cny::cnt::fig21_worst());
  const cny::yield::WidthSpectrum s = {{100.0, 100000000}};
  double prev = 0.0;
  for (std::uint64_t m : {std::uint64_t(1e5), std::uint64_t(1e6),
                          std::uint64_t(1e7), std::uint64_t(1e8)}) {
    cny::yield::WminRequest req;
    req.fixed_m_min = m;
    const auto res = cny::yield::solve_w_min(s, model, req);
    EXPECT_GT(res.w_min, prev) << "m=" << m;
    prev = res.w_min;
  }
}

// ---------------------------------------------------------------------
// Property: eq. 3.1's factorisation — chip failure budget splits across
// rows consistently for any (p_f, density) combination.

class RowModelSweep
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(RowModelSweep, RelaxationBoundedByMRmin) {
  const auto [pf, density] = GetParam();
  cny::yield::RowParams p;
  p.l_cnt = 200.0e3;
  p.fets_per_um = density;
  p.m_min = 1000000;
  const double mr = cny::yield::m_r_min(p);
  // Full sharing earns at most M_Rmin relaxation (paper Sec 3.1).
  const double gain = cny::yield::relaxation_factor(
      cny::yield::p_rf_aligned(pf), pf, p);
  EXPECT_LE(gain, mr * (1.0 + 1e-9));
  EXPECT_GT(gain, mr * 0.9);  // tight for small p_f
}

INSTANTIATE_TEST_SUITE_P(
    GridSweep, RowModelSweep,
    ::testing::Combine(::testing::Values(1e-9, 1e-7, 1e-5),
                       ::testing::Values(0.5, 1.8, 4.0)));

}  // namespace
