#include <gtest/gtest.h>

#include <cmath>

#include "yield/empty_window.h"
#include "util/contracts.h"

namespace {

using namespace cny::yield;
using cny::geom::Interval;

std::vector<Interval> equal_windows(const std::vector<double>& offsets,
                                    double w) {
  std::vector<Interval> out;
  for (double y : offsets) out.push_back({y, y + w});
  return out;
}

// ---------------------------------------------------- exact inclusion-excl

TEST(PoissonUnionExact, SingleWindowClosedForm) {
  const double lambda = 0.1, w = 30.0;
  EXPECT_NEAR(poisson_union_exact(lambda, equal_windows({0.0}, w)),
              std::exp(-lambda * w), 1e-15);
}

TEST(PoissonUnionExact, DuplicatesCollapse) {
  const double lambda = 0.1, w = 30.0;
  const auto many = equal_windows(std::vector<double>(50, 5.0), w);
  EXPECT_NEAR(poisson_union_exact(lambda, many), std::exp(-lambda * w),
              1e-15);
}

TEST(PoissonUnionExact, DisjointWindowsAreIndependent) {
  // P(∪) = 1 - Π(1 - p_i) for disjoint windows.
  const double lambda = 0.15, w = 20.0;
  const auto windows = equal_windows({0.0, 100.0, 200.0}, w);
  const double p1 = std::exp(-lambda * w);
  EXPECT_NEAR(poisson_union_exact(lambda, windows),
              1.0 - std::pow(1.0 - p1, 3.0), 1e-12);
}

TEST(PoissonUnionExact, TwoOverlappingWindowsByHand) {
  // Windows [0,W) and [d, d+W) with overlap W-d:
  // P(E1 ∪ E2) = 2 e^{-λW} - e^{-λ(W+d)}.
  const double lambda = 0.2, w = 10.0, d = 4.0;
  const auto windows = equal_windows({0.0, d}, w);
  const double expect = 2.0 * std::exp(-lambda * w) -
                        std::exp(-lambda * (w + d));
  EXPECT_NEAR(poisson_union_exact(lambda, windows), expect, 1e-14);
}

TEST(PoissonUnionExact, BoundedByUnionBoundAndMax) {
  const double lambda = 0.12, w = 25.0;
  const auto windows = equal_windows({0.0, 5.0, 11.0, 40.0, 90.0}, w);
  const double p = poisson_union_exact(lambda, windows);
  const double single = std::exp(-lambda * w);
  EXPECT_GE(p, single);                       // max of events
  EXPECT_LE(p, 5.0 * single + 1e-15);         // union bound
}

TEST(PoissonUnionExact, MoreSpreadMeansHigherUnion) {
  // Spreading offsets reduces overlap → more "independent chances to fail".
  const double lambda = 0.12, w = 25.0;
  const double tight = poisson_union_exact(
      lambda, equal_windows({0.0, 2.0, 4.0}, w));
  const double spread = poisson_union_exact(
      lambda, equal_windows({0.0, 12.0, 24.0}, w));
  EXPECT_LT(tight, spread);
}

TEST(PoissonUnionExact, RejectsTooManyDistinct) {
  std::vector<double> offsets;
  for (int i = 0; i < 30; ++i) offsets.push_back(i * 3.0);
  EXPECT_THROW(poisson_union_exact(0.1, equal_windows(offsets, 20.0), 24),
               cny::ContractViolation);
}

// ------------------------------------------------------- conditional MC

TEST(UnionConditionalMc, MatchesExactOnOverlappingSet) {
  const double lambda = 0.117;  // the paper's λ_s scale (per nm)
  const double w = 145.0;
  const auto windows = equal_windows({0.0, 20.0, 47.0, 60.0, 95.0}, w);
  const double exact = poisson_union_exact(lambda, windows);
  cny::rng::Xoshiro256 rng(101);
  const auto mc = union_conditional_mc(lambda, windows, 40000, rng);
  EXPECT_NEAR(mc.estimate / exact, 1.0, 0.03)
      << "exact=" << exact << " mc=" << mc.estimate;
  // The error estimate itself must be in the right ballpark.
  EXPECT_LT(std::fabs(mc.estimate - exact), 6.0 * mc.std_error);
}

TEST(UnionConditionalMc, EfficientAtRareProbabilities) {
  // p_RF ~ 1e-7 — hopeless for direct MC, routine for the conditional
  // estimator: relative error under a few percent with 20k samples.
  const double lambda = 0.117, w = 145.0;
  const auto windows = equal_windows({0.0, 15.0, 33.0, 52.0, 78.0, 130.0}, w);
  const double exact = poisson_union_exact(lambda, windows);
  EXPECT_LT(exact, 1e-5);
  cny::rng::Xoshiro256 rng(102);
  const auto mc = union_conditional_mc(lambda, windows, 20000, rng);
  EXPECT_NEAR(mc.estimate / exact, 1.0, 0.05);
}

TEST(UnionConditionalMc, IdenticalWindowsGiveExactAnswer) {
  // All windows equal → C = n always → zero-variance estimator.
  const double lambda = 0.1, w = 50.0;
  const auto windows = equal_windows({5.0, 5.0, 5.0}, w);
  cny::rng::Xoshiro256 rng(103);
  const auto mc = union_conditional_mc(lambda, windows, 500, rng);
  EXPECT_NEAR(mc.estimate, std::exp(-lambda * w), 1e-12);
  EXPECT_NEAR(mc.std_error, 0.0, 1e-15);
}

TEST(UnionConditionalMc, SeedReproducible) {
  const double lambda = 0.1, w = 40.0;
  const auto windows = equal_windows({0.0, 10.0, 25.0}, w);
  cny::rng::Xoshiro256 a(7), b(7);
  const auto r1 = union_conditional_mc(lambda, windows, 2000, a);
  const auto r2 = union_conditional_mc(lambda, windows, 2000, b);
  EXPECT_DOUBLE_EQ(r1.estimate, r2.estimate);
}

// ------------------------------------------------------------ direct MC

TEST(UnionDirectMc, AgreesWithExactAtModerateProbability) {
  // Inflate probabilities (small windows, Poisson pitch) so direct MC works.
  const cny::cnt::PitchModel pitch(4.0, 1.0);
  const double p_fail = 0.531;
  const double w = 30.0;  // P(window empty) = e^{-30/4*0.469} ≈ 3e-2
  const auto windows = equal_windows({0.0, 8.0, 19.0}, w);
  const double lambda_s = (1.0 - p_fail) / 4.0;
  const double exact = poisson_union_exact(lambda_s, windows);
  cny::rng::Xoshiro256 rng(104);
  const auto mc = union_direct_mc(pitch, p_fail, windows, 200000, rng);
  EXPECT_NEAR(mc.estimate / exact, 1.0, 0.08)
      << "exact=" << exact << " direct=" << mc.estimate;
}

TEST(UnionDirectMc, RenewalVsPoissonDeviationIsVisible) {
  // With CV = 0.6 (regular pitch) empty windows are rarer than Poisson.
  const cny::cnt::PitchModel regular(4.0, 0.6);
  const double p_fail = 0.531;
  const double w = 30.0;
  const auto windows = equal_windows({0.0}, w);
  const double poisson_p =
      std::exp(-(1.0 - p_fail) / 4.0 * w);
  cny::rng::Xoshiro256 rng(105);
  const auto mc = union_direct_mc(regular, p_fail, windows, 150000, rng);
  EXPECT_LT(mc.estimate, poisson_p);
}

TEST(UnionEngines, InputValidation) {
  cny::rng::Xoshiro256 rng(1);
  EXPECT_THROW(poisson_union_exact(0.0, equal_windows({0.0}, 10.0)),
               cny::ContractViolation);
  EXPECT_THROW(poisson_union_exact(0.1, {}), cny::ContractViolation);
  EXPECT_THROW(union_conditional_mc(0.1, {}, 100, rng),
               cny::ContractViolation);
  EXPECT_THROW(
      union_conditional_mc(0.1, {{0.0, 0.0}}, 100, rng),  // empty interval
      cny::ContractViolation);
}

}  // namespace
