// Scenario-engine contracts, pinned:
//   * an empty ScenarioSpec reproduces the pre-scenario flow bit for bit
//     (golden values captured from the tree at the commit before the engine
//     existed);
//   * mechanism degeneracies: ShortFailure at p_Rm = 1 and FiniteLength at
//     the paper's point mass {mean = l_cnt, cv = 0} both collapse to the
//     open-only numbers exactly;
//   * combined-mode monotonicity (shorts raise W_min, length variability
//     shrinks the aligned credit) and the paper's "p_Rm > 99.99 %" remark
//     at the 10^8-transistor design point;
//   * RemovalFrontier earns its corner from the probit frontier, batches
//     share one warm model per derived corner, and batched scenario jobs
//     equal their solo run_flow twins bit for bit;
//   * the registry resolves names and the shared validator rejects bad
//     values identically at every entry point.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "celllib/generator.h"
#include "cnt/removal_tradeoff.h"
#include "netlist/design_generator.h"
#include "scenario/engine.h"
#include "service/protocol.h"
#include "util/contracts.h"
#include "yield/flow.h"

namespace {

using namespace cny;

yield::FlowParams small_params() {
  yield::FlowParams params;
  params.mc_samples = 600;
  params.seed = 7;
  params.n_threads = 1;
  return params;
}

const celllib::Library& library() {
  static const celllib::Library lib = celllib::make_nangate45_like();
  return lib;
}

const netlist::Design& design() {
  static const netlist::Design d = netlist::make_openrisc_like(library());
  return d;
}

device::FailureModel paper_model() {
  return device::FailureModel(cnt::PitchModel(4.0, 0.9), cnt::fig21_worst());
}

/// The open-only reference flow, computed once.
const yield::FlowResult& base_result() {
  static const yield::FlowResult res = [] {
    const auto model = paper_model();
    return yield::run_flow(library(), design(), model, small_params());
  }();
  return res;
}

void expect_strategy_bits_equal(const yield::StrategyResult& a,
                                const yield::StrategyResult& b) {
  EXPECT_EQ(a.strategy, b.strategy);
  EXPECT_EQ(a.relaxation, b.relaxation);
  EXPECT_EQ(a.w_min, b.w_min);
  EXPECT_EQ(a.power_penalty, b.power_penalty);
  EXPECT_EQ(a.area_penalty, b.area_penalty);
  EXPECT_EQ(a.cells_widened, b.cells_widened);
}

// --- empty-spec bit identity ------------------------------------------------

TEST(ScenarioEngine, EmptySpecMatchesPreScenarioGoldenValuesBitExactly) {
  // Hexfloat goldens captured by running this exact configuration
  // (mc_samples 600, seed 7, 1 thread, paper corner) on the tree at the
  // commit before src/scenario/ existed. Any drift here means the engine
  // changed the open-only flow.
  const auto& res = base_result();
  EXPECT_EQ(res.m_r_min, 0x1.68p+8);  // 360
  EXPECT_EQ(res.m_min_uncorrelated, 34674381u);
  ASSERT_EQ(res.strategies.size(), 4u);
  EXPECT_EQ(res.strategies[0].relaxation, 0x1p+0);
  EXPECT_EQ(res.strategies[0].w_min, 0x1.3dd6c2716b465p+7);
  EXPECT_EQ(res.strategies[0].power_penalty, 0x1.fae9a4e47188p-5);
  EXPECT_EQ(res.strategies[1].relaxation, 0x1.a4b444b323331p+4);
  EXPECT_EQ(res.strategies[1].w_min, 0x1.0178de702ca7ap+7);
  EXPECT_EQ(res.strategies[1].power_penalty, 0x1.3a117d557d10ep-6);
  EXPECT_EQ(res.strategies[2].relaxation, 0x1.68p+8);
  EXPECT_EQ(res.strategies[2].w_min, 0x1.8e99fd83d259fp+6);
  EXPECT_EQ(res.strategies[2].power_penalty, 0x1.c64312a655641p-9);
  EXPECT_EQ(res.strategies[2].area_penalty, 0x1.91d346dcdf3fdp-9);
  EXPECT_EQ(res.strategies[2].cells_widened, 4u);
  EXPECT_EQ(res.strategies[3].relaxation, 0x1.68p+7);
  EXPECT_EQ(res.strategies[3].w_min, 0x1.a4feea8f85894p+6);
  EXPECT_EQ(res.strategies[3].power_penalty, 0x1.66e60499f9d61p-8);
  // Mechanism-off defaults everywhere.
  for (const auto& r : res.strategies) {
    EXPECT_EQ(r.short_mode_yield, 1.0);
    EXPECT_EQ(r.required_p_rm, 0.0);
    EXPECT_EQ(r.length_scale, 1.0);
  }
  EXPECT_TRUE(res.scenario.empty());
}

TEST(ScenarioEngine, EmptySpecBatchMatchesSoloBitExactly) {
  const auto model = paper_model();
  yield::FlowJob job;
  job.design = &design();
  job.params = small_params();
  yield::BatchParams batch;
  batch.n_threads = 1;
  batch.share_interpolant = false;
  const auto results = yield::run_flow_batch(library(), {job}, model, batch);
  ASSERT_EQ(results.size(), 1u);
  for (std::size_t i = 0; i < 4; ++i) {
    expect_strategy_bits_equal(results[0].strategies[i],
                               base_result().strategies[i]);
  }
}

// --- mechanism degeneracies -------------------------------------------------

TEST(ScenarioEngine, ShortsAtPerfectRemovalDegenerateToOpenOnly) {
  const auto model = paper_model();
  auto params = small_params();
  params.scenario.shorts = scenario::ShortFailure{1.0, 0.01};
  const auto res = yield::run_flow(library(), design(), model, params);
  ASSERT_EQ(res.strategies.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    expect_strategy_bits_equal(res.strategies[i], base_result().strategies[i]);
    EXPECT_EQ(res.strategies[i].short_mode_yield, 1.0);
    // The acceptance anchor: at the 10^8-transistor design point the short
    // mode alone demands p_Rm beyond the paper's "> 99.99 %" remark.
    EXPECT_GT(res.strategies[i].required_p_rm, 0.9999);
    EXPECT_LT(res.strategies[i].required_p_rm, 1.0);
  }
}

TEST(ScenarioEngine, FiniteLengthPointMassAtLcntDegeneratesToOpenOnly) {
  const auto model = paper_model();
  auto params = small_params();
  // The paper's implied law: every tube exactly l_cnt long. The aligned
  // credit rescale is a ratio of two identical exact unions = 1.0, so the
  // whole flow must come back bit-identical.
  params.scenario.length = scenario::FiniteLength{params.l_cnt, 0.0, 16};
  const auto res = yield::run_flow(library(), design(), model, params);
  for (std::size_t i = 0; i < 4; ++i) {
    expect_strategy_bits_equal(res.strategies[i], base_result().strategies[i]);
    EXPECT_EQ(res.strategies[i].length_scale, 1.0);
  }
}

// --- combined-mode behaviour ------------------------------------------------

TEST(ScenarioEngine, ShortModeRaisesCombinedWmin) {
  const auto model = paper_model();
  auto params = small_params();
  params.scenario.shorts = scenario::ShortFailure{};  // 1 - 1e-9, 1 % noise
  const auto res = yield::run_flow(library(), design(), model, params);
  for (std::size_t i = 0; i < 4; ++i) {
    const auto& combined = res.strategies[i];
    const auto& open = base_result().strategies[i];
    EXPECT_GT(combined.w_min, open.w_min)
        << yield::to_string(combined.strategy);
    EXPECT_GT(combined.short_mode_yield, 0.0);
    EXPECT_LT(combined.short_mode_yield, 1.0);
  }
}

TEST(ScenarioEngine, InfeasibleShortModeFailsWithActionableMessage) {
  const auto model = paper_model();
  auto params = small_params();
  params.scenario.shorts = scenario::ShortFailure{0.999, 0.01};
  try {
    (void)yield::run_flow(library(), design(), model, params);
    FAIL() << "expected the infeasible short mode to throw";
  } catch (const ContractViolation& e) {
    EXPECT_NE(std::string(e.what()).find("short mode"), std::string::npos);
  }
}

TEST(ScenarioEngine, LengthVariabilityShrinksAlignedCredit) {
  const auto model = paper_model();
  auto params = small_params();
  params.scenario.length = scenario::FiniteLength{params.l_cnt, 0.5, 16};
  const auto res = yield::run_flow(library(), design(), model, params);
  const auto& one_row = res.get(yield::Strategy::AlignedOneRow);
  const auto& base_one_row = base_result().get(yield::Strategy::AlignedOneRow);
  EXPECT_LT(one_row.length_scale, 1.0);
  EXPECT_GT(one_row.length_scale, 0.0);
  EXPECT_LT(one_row.relaxation, base_one_row.relaxation);
  EXPECT_GT(one_row.w_min, base_one_row.w_min);
  // Mechanism scope: only the aligned strategies read the length law.
  expect_strategy_bits_equal(res.strategies[0], base_result().strategies[0]);
  expect_strategy_bits_equal(res.strategies[1], base_result().strategies[1]);
}

TEST(ScenarioEngine, RemovalFrontierEarnsItsCorner) {
  const auto model = paper_model();
  auto params = small_params();
  params.scenario.removal = scenario::RemovalFrontier{6.0, 0.9999};
  const auto res = yield::run_flow(library(), design(), model, params);
  const double expected_p_rs = cnt::RemovalTradeoff(6.0).p_rs_at(0.9999);
  EXPECT_EQ(res.derived_p_rs, expected_p_rs);
  // Selectivity 6 earns far less collateral than the assumed 30 %, so the
  // whole flow relaxes.
  EXPECT_LT(expected_p_rs, 0.05);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_LT(res.strategies[i].w_min, base_result().strategies[i].w_min);
  }
  // At the paper's working selectivity the frontier hands back (almost)
  // the assumed corner.
  const double s_paper = cnt::RemovalTradeoff::required_selectivity(0.9999,
                                                                    0.30);
  EXPECT_NEAR(cnt::RemovalTradeoff(s_paper).p_rs_at(0.9999), 0.30, 1e-9);
}

// --- batching ---------------------------------------------------------------

TEST(ScenarioEngine, BatchSharesOneModelPerDerivedCornerAndMatchesSolo) {
  const auto model = paper_model();
  const scenario::RemovalFrontier removal{5.0, 0.999};

  std::vector<yield::FlowJob> jobs(3);
  for (auto& job : jobs) {
    job.design = &design();
    job.params = small_params();
  }
  jobs[1].params.scenario.removal = removal;
  jobs[2].params.scenario.removal = removal;  // same derived corner as [1]

  yield::BatchParams batch;
  batch.n_threads = 1;
  batch.share_interpolant = true;
  const auto results = yield::run_flow_batch(library(), jobs, model, batch);
  ASSERT_EQ(results.size(), 3u);

  // Identical jobs on the shared corner model are identical outputs.
  for (std::size_t i = 0; i < 4; ++i) {
    expect_strategy_bits_equal(results[1].strategies[i],
                               results[2].strategies[i]);
  }

  // Each batched job equals its solo run_flow twin with the same
  // interpolant policy (same bracket, same knots -> same table).
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    auto params = jobs[j].params;
    params.use_interpolant = true;
    const auto solo = yield::run_flow(library(), design(), model, params);
    for (std::size_t i = 0; i < 4; ++i) {
      expect_strategy_bits_equal(results[j].strategies[i],
                                 solo.strategies[i]);
    }
  }
}

// --- registry + validation --------------------------------------------------

TEST(ScenarioRegistry, ResolvesNamesAndRejectsUnknowns) {
  EXPECT_EQ(scenario::mechanisms().size(), 3u);
  const auto spec = scenario::spec_from_names("shorts,length");
  EXPECT_TRUE(spec.shorts.has_value());
  EXPECT_TRUE(spec.length.has_value());
  EXPECT_FALSE(spec.removal.has_value());
  EXPECT_EQ(scenario::names(spec), "shorts,length");
  EXPECT_TRUE(scenario::spec_from_names("").empty());
  EXPECT_TRUE(scenario::spec_from_names("none").empty());
  EXPECT_THROW((void)scenario::spec_from_names("shortz"),
               std::invalid_argument);
  EXPECT_EQ(scenario::find_mechanism("removal")->name(), "removal");
  EXPECT_EQ(scenario::find_mechanism("frontier"), nullptr);
  // Spec echo order is registration (= composition) order.
  EXPECT_EQ(scenario::names(scenario::spec_from_names("length,removal")),
            "removal,length");
}

TEST(ScenarioValidation, OneHelperRejectsBadValuesAtEveryEntryPoint) {
  const double nan = std::numeric_limits<double>::quiet_NaN();

  // Direct helper (what run_flow and the CLI hit).
  auto params = small_params();
  params.yield_desired = nan;
  EXPECT_THROW(yield::validate(params), std::invalid_argument);
  params = small_params();
  params.scenario.length = scenario::FiniteLength{200.0e3, -0.5, 16};
  EXPECT_THROW(yield::validate(params), std::invalid_argument);
  params = small_params();
  params.scenario.length = scenario::FiniteLength{200.0e3, 0.0, 23};
  EXPECT_THROW(yield::validate(params), std::invalid_argument);
  params = small_params();
  params.scenario.shorts = scenario::ShortFailure{0.0, 0.01};
  EXPECT_THROW(yield::validate(params), std::invalid_argument);
  params = small_params();
  params.scenario.removal = scenario::RemovalFrontier{4.24, 1.0};
  EXPECT_THROW(yield::validate(params), std::invalid_argument);
  params = small_params();
  params.mc_streams = 0;
  EXPECT_THROW(yield::validate(params), std::invalid_argument);

  // The same values through the protocol decoder's validate: identical
  // rejection, surfaced as ProtocolError for the error frame.
  service::FlowRequest request;
  request.params.scenario.removal = scenario::RemovalFrontier{4.24, 1.0};
  EXPECT_THROW(service::validate(request), service::ProtocolError);
  request = service::FlowRequest{};
  request.params.yield_desired = nan;
  EXPECT_THROW(service::validate(request), service::ProtocolError);

  // run_flow itself refuses before touching any model state.
  const auto model = paper_model();
  params = small_params();
  params.scenario.shorts = scenario::ShortFailure{-1.0, 0.01};
  EXPECT_THROW((void)yield::run_flow(library(), design(), model, params),
               std::invalid_argument);
}

}  // namespace
