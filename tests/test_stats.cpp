#include <gtest/gtest.h>

#include <cmath>

#include "rng/engine.h"
#include "stats/accumulator.h"
#include "stats/bootstrap.h"
#include "stats/histogram.h"
#include "util/contracts.h"

namespace {

using namespace cny::stats;

TEST(Accumulator, MeanVarianceMinMax) {
  Accumulator acc;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) acc.add(x);
  EXPECT_EQ(acc.count(), 8u);
  EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
  EXPECT_NEAR(acc.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(acc.min(), 2.0);
  EXPECT_DOUBLE_EQ(acc.max(), 9.0);
  EXPECT_NEAR(acc.sum(), 40.0, 1e-9);
}

TEST(Accumulator, EmptyAndSingle) {
  Accumulator acc;
  EXPECT_EQ(acc.count(), 0u);
  EXPECT_DOUBLE_EQ(acc.variance(), 0.0);
  acc.add(3.0);
  EXPECT_DOUBLE_EQ(acc.mean(), 3.0);
  EXPECT_DOUBLE_EQ(acc.std_error(), 0.0);
}

TEST(Accumulator, MergeMatchesSequential) {
  Accumulator all, a, b;
  for (int i = 0; i < 100; ++i) {
    const double x = std::sin(i * 0.7) * 3.0 + i * 0.01;
    all.add(x);
    (i % 2 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-10);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(Accumulator, MergeWithEmpty) {
  Accumulator a, b;
  a.add(1.0);
  a.add(3.0);
  const double mean = a.mean();
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.mean(), mean);
  b.merge(a);
  EXPECT_DOUBLE_EQ(b.mean(), mean);
}

TEST(Interval, ContainsAndWidth) {
  const Interval iv{1.0, 3.0};
  EXPECT_TRUE(iv.contains(2.0));
  EXPECT_TRUE(iv.contains(1.0));
  EXPECT_FALSE(iv.contains(3.5));
  EXPECT_DOUBLE_EQ(iv.width(), 2.0);
}

TEST(WilsonCi, CoversTrueProportion) {
  // Frequentist sanity: the interval for 30/100 must contain 0.3.
  const auto ci = wilson_ci(30, 100);
  EXPECT_TRUE(ci.contains(0.3));
  EXPECT_GT(ci.lo, 0.2);
  EXPECT_LT(ci.hi, 0.42);
}

TEST(WilsonCi, ExtremesStayInUnitInterval) {
  const auto zero = wilson_ci(0, 50);
  EXPECT_DOUBLE_EQ(zero.lo, 0.0);
  EXPECT_GT(zero.hi, 0.0);
  const auto all = wilson_ci(50, 50);
  EXPECT_DOUBLE_EQ(all.hi, 1.0);
  EXPECT_LT(all.lo, 1.0);
}

TEST(WilsonCi, RejectsBadInputs) {
  EXPECT_THROW(wilson_ci(5, 0), cny::ContractViolation);
  EXPECT_THROW(wilson_ci(6, 5), cny::ContractViolation);
}

TEST(Histogram, BinningAndFractions) {
  Histogram h(0.0, 10.0, 5);
  h.add(1.0);
  h.add(3.0);
  h.add(3.5);
  h.add(-1.0);   // underflow
  h.add(10.0);   // overflow (hi is exclusive)
  EXPECT_DOUBLE_EQ(h.count(0), 1.0);
  EXPECT_DOUBLE_EQ(h.count(1), 2.0);
  EXPECT_DOUBLE_EQ(h.underflow(), 1.0);
  EXPECT_DOUBLE_EQ(h.overflow(), 1.0);
  EXPECT_DOUBLE_EQ(h.total_weight(), 5.0);
  EXPECT_DOUBLE_EQ(h.fraction(1), 0.4);
  // cumulative includes underflow.
  EXPECT_DOUBLE_EQ(h.cumulative_fraction(1), 0.8);
}

TEST(Histogram, WeightedSamples) {
  Histogram h(0.0, 4.0, 2);
  h.add(1.0, 3.0);
  h.add(3.0, 1.0);
  EXPECT_DOUBLE_EQ(h.fraction(0), 0.75);
}

TEST(Histogram, BinEdges) {
  Histogram h(10.0, 20.0, 4);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 10.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(3), 20.0);
  EXPECT_DOUBLE_EQ(h.bin_centre(1), 13.75);
}

TEST(Histogram, AsciiRenderingNonEmpty) {
  Histogram h(0.0, 2.0, 2);
  h.add(0.5);
  const std::string art = h.to_ascii(10);
  EXPECT_NE(art.find('#'), std::string::npos);
}

TEST(KsDistance, UniformSampleAgainstUniformCdf) {
  cny::rng::Xoshiro256 rng(5);
  std::vector<double> sample;
  for (int i = 0; i < 5000; ++i) sample.push_back(rng.uniform());
  const double d = ks_distance(sample, [](double x) {
    return std::clamp(x, 0.0, 1.0);
  });
  // KS distance for n=5000 should be well under 0.03 at ~99.9 % confidence.
  EXPECT_LT(d, 0.03);
}

TEST(KsDistance, DetectsWrongDistribution) {
  cny::rng::Xoshiro256 rng(6);
  std::vector<double> sample;
  for (int i = 0; i < 2000; ++i) sample.push_back(rng.uniform() * 0.5);
  const double d = ks_distance(sample, [](double x) {
    return std::clamp(x, 0.0, 1.0);
  });
  EXPECT_GT(d, 0.4);
}

TEST(Bootstrap, MeanCiCoversTruth) {
  cny::rng::Xoshiro256 rng(7);
  std::vector<double> data;
  for (int i = 0; i < 400; ++i) data.push_back(rng.uniform(0.0, 2.0));
  const auto ci = bootstrap_mean_ci(data, rng, 2000);
  EXPECT_TRUE(ci.contains(1.0)) << "[" << ci.lo << ", " << ci.hi << "]";
  EXPECT_LT(ci.width(), 0.3);
}

TEST(Bootstrap, CustomStatistic) {
  cny::rng::Xoshiro256 rng(8);
  std::vector<double> data = {1.0, 2.0, 3.0, 4.0, 100.0};
  const auto ci = bootstrap_ci(
      data,
      [](const std::vector<double>& v) {
        double mx = v[0];
        for (double x : v) mx = std::max(mx, x);
        return mx;
      },
      rng, 500);
  EXPECT_LE(ci.hi, 100.0 + 1e-12);
  EXPECT_GE(ci.hi, 4.0);
}

TEST(Bootstrap, RejectsDegenerateInputs) {
  cny::rng::Xoshiro256 rng(9);
  EXPECT_THROW(bootstrap_mean_ci({}, rng), cny::ContractViolation);
  EXPECT_THROW(bootstrap_mean_ci({1.0}, rng, 5), cny::ContractViolation);
}

}  // namespace
