#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "numeric/special.h"
#include "rng/distributions.h"
#include "rng/engine.h"
#include "stats/accumulator.h"
#include "util/contracts.h"

namespace {

using namespace cny::rng;

TEST(Engine, DeterministicFromSeed) {
  Xoshiro256 a(42), b(42), c(43);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a(), b());
  }
  // A different seed diverges immediately with overwhelming probability.
  Xoshiro256 a2(42);
  bool any_diff = false;
  for (int i = 0; i < 10; ++i) any_diff |= (a2() != c());
  EXPECT_TRUE(any_diff);
}

TEST(Engine, JumpProducesDisjointStreams) {
  Xoshiro256 base(7);
  Xoshiro256 s0 = base.make_stream(0);
  Xoshiro256 s1 = base.make_stream(1);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(s0());
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(seen.count(s1()), 0u) << "streams collided";
  }
}

TEST(Engine, UniformInUnitInterval) {
  Xoshiro256 rng(1);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Engine, UniformIndexBoundsAndCoverage) {
  Xoshiro256 rng(2);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_index(7);
    EXPECT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Engine, DeriveSeedIsStable) {
  EXPECT_EQ(derive_seed(1, 2), derive_seed(1, 2));
  EXPECT_NE(derive_seed(1, 2), derive_seed(1, 3));
  EXPECT_NE(derive_seed(1, 2), derive_seed(2, 2));
}

// Moment checks: sample mean within ~5 standard errors of the target.
void expect_moments(const std::function<double(Xoshiro256&)>& sampler,
                    double mean, double sd, std::uint64_t seed,
                    int n = 200000) {
  Xoshiro256 rng(seed);
  cny::stats::Accumulator acc;
  for (int i = 0; i < n; ++i) acc.add(sampler(rng));
  EXPECT_NEAR(acc.mean(), mean, 5.0 * sd / std::sqrt(double(n)) + 1e-12);
  EXPECT_NEAR(acc.stddev(), sd, 0.05 * sd + 1e-12);
}

TEST(Distributions, NormalMoments) {
  expect_moments([](Xoshiro256& r) { return sample_normal(r, 3.0, 2.0); }, 3.0,
                 2.0, 11);
}

TEST(Distributions, ExponentialMoments) {
  expect_moments([](Xoshiro256& r) { return sample_exponential(r, 4.0); }, 4.0,
                 4.0, 12);
}

TEST(Distributions, GammaMomentsShapeAboveOne) {
  const double k = 2.5, theta = 1.6;
  expect_moments([&](Xoshiro256& r) { return sample_gamma(r, k, theta); },
                 k * theta, std::sqrt(k) * theta, 13);
}

TEST(Distributions, GammaMomentsShapeBelowOne) {
  const double k = 0.6, theta = 2.0;
  expect_moments([&](Xoshiro256& r) { return sample_gamma(r, k, theta); },
                 k * theta, std::sqrt(k) * theta, 14);
}

TEST(Distributions, LognormalLinearMoments) {
  expect_moments(
      [](Xoshiro256& r) { return sample_lognormal_mean_sd(r, 1.5, 0.3); }, 1.5,
      0.3, 15);
}

TEST(Distributions, LognormalZeroSdIsDeterministic) {
  Xoshiro256 rng(16);
  EXPECT_DOUBLE_EQ(sample_lognormal_mean_sd(rng, 2.0, 0.0), 2.0);
}

TEST(Distributions, BernoulliFrequency) {
  Xoshiro256 rng(17);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += sample_bernoulli(rng, 0.3) ? 1 : 0;
  EXPECT_NEAR(double(hits) / n, 0.3, 0.01);
}

TEST(Distributions, PoissonSmallLambdaMatchesPmf) {
  Xoshiro256 rng(18);
  const double lambda = 3.0;
  const int n = 200000;
  std::vector<int> counts(30, 0);
  for (int i = 0; i < n; ++i) {
    const long v = sample_poisson(rng, lambda);
    if (v < 30) ++counts[static_cast<std::size_t>(v)];
  }
  for (long k = 0; k <= 10; ++k) {
    const double expected = cny::numeric::poisson_pmf(k, lambda);
    const double observed = double(counts[static_cast<std::size_t>(k)]) / n;
    EXPECT_NEAR(observed, expected, 5.0 * std::sqrt(expected / n) + 1e-4)
        << "k=" << k;
  }
}

TEST(Distributions, PoissonLargeLambdaMoments) {
  // Exercises the recursive-halving branch (lambda > 30).
  expect_moments([](Xoshiro256& r) {
    return double(sample_poisson(r, 120.0));
  }, 120.0, std::sqrt(120.0), 19);
}

TEST(Distributions, BinomialSmallN) {
  expect_moments([](Xoshiro256& r) { return double(sample_binomial(r, 20, 0.3)); },
                 6.0, std::sqrt(20 * 0.3 * 0.7), 20);
}

TEST(Distributions, BinomialLargeNUsesSkipping) {
  expect_moments(
      [](Xoshiro256& r) { return double(sample_binomial(r, 1000, 0.02)); },
      20.0, std::sqrt(1000 * 0.02 * 0.98), 21);
}

TEST(Distributions, BinomialEdgeCases) {
  Xoshiro256 rng(22);
  EXPECT_EQ(sample_binomial(rng, 0, 0.5), 0);
  EXPECT_EQ(sample_binomial(rng, 10, 0.0), 0);
  EXPECT_EQ(sample_binomial(rng, 10, 1.0), 10);
}

TEST(DiscreteSampler, MatchesWeights) {
  Xoshiro256 rng(23);
  DiscreteSampler sampler({1.0, 2.0, 7.0});
  EXPECT_NEAR(sampler.probability(0), 0.1, 1e-12);
  EXPECT_NEAR(sampler.probability(2), 0.7, 1e-12);
  std::vector<int> counts(3, 0);
  const int n = 300000;
  for (int i = 0; i < n; ++i) ++counts[sampler(rng)];
  EXPECT_NEAR(double(counts[0]) / n, 0.1, 0.005);
  EXPECT_NEAR(double(counts[1]) / n, 0.2, 0.007);
  EXPECT_NEAR(double(counts[2]) / n, 0.7, 0.008);
}

TEST(DiscreteSampler, HandlesZeroWeights) {
  Xoshiro256 rng(24);
  DiscreteSampler sampler({0.0, 1.0, 0.0});
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(sampler(rng), 1u);
}

TEST(DiscreteSampler, RejectsInvalidWeights) {
  EXPECT_THROW(DiscreteSampler({}), cny::ContractViolation);
  EXPECT_THROW(DiscreteSampler({0.0, 0.0}), cny::ContractViolation);
  EXPECT_THROW(DiscreteSampler({-1.0, 2.0}), cny::ContractViolation);
}

}  // namespace
