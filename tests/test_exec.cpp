// Tests for the execution subsystem: the thread pool, the deterministic
// parallel MC reduction, the ported MC kernels, the thread-safe p_F cache,
// and the batched flow entry point.
//
// The determinism contract under test (see exec/parallel_mc.h):
//   * results depend on the RNG stream count, never on the thread count;
//   * one stream reproduces the legacy serial loop bit-for-bit.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <thread>
#include <vector>

#include "celllib/generator.h"
#include "device/failure_model.h"
#include "exec/parallel_mc.h"
#include "exec/thread_pool.h"
#include "netlist/design_generator.h"
#include "stats/bootstrap.h"
#include "yield/empty_window.h"
#include "yield/flow.h"
#include "yield/monte_carlo.h"

namespace {

using namespace cny;

// ------------------------------------------------------------ thread pool

TEST(ThreadPool, RunsEveryPostedTask) {
  exec::ThreadPool pool(4);
  std::atomic<int> count{0};
  std::atomic<int> done{0};
  for (int i = 0; i < 100; ++i) {
    pool.post([&] {
      count.fetch_add(1);
      done.fetch_add(1);
    });
  }
  while (done.load() < 100) std::this_thread::yield();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, ParallelForCoversAllIndicesOnce) {
  std::vector<std::atomic<int>> hits(257);
  exec::parallel_for(hits.size(), 8,
                     [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForPropagatesExceptions) {
  EXPECT_THROW(
      exec::parallel_for(64, 4,
                         [](std::size_t i) {
                           if (i == 13) throw std::runtime_error("boom");
                         }),
      std::runtime_error);
}

TEST(ThreadPool, WorkerThreadDetection) {
  EXPECT_FALSE(exec::ThreadPool::on_worker_thread());
  exec::ThreadPool pool(1);
  std::atomic<bool> seen{false};
  std::atomic<bool> done{false};
  pool.post([&] {
    seen = exec::ThreadPool::on_worker_thread();
    done = true;
  });
  while (!done.load()) std::this_thread::yield();
  EXPECT_TRUE(seen.load());
}

// -------------------------------------------------- parallel_mc_reduce

TEST(ParallelMcReduce, ShardCountsPartitionExactly) {
  const auto counts = exec::shard_counts(103, 8);
  ASSERT_EQ(counts.size(), 8u);
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    total += counts[i];
    EXPECT_GE(counts[i], 12u);
    EXPECT_LE(counts[i], 13u);
  }
  EXPECT_EQ(total, 103u);
}

double mc_sum(unsigned n_threads, unsigned n_streams, std::uint64_t seed) {
  const rng::Xoshiro256 base(seed);
  return exec::parallel_mc_reduce<double>(
      10000, n_threads, exec::make_streams(base, n_streams),
      [](unsigned, std::uint64_t n, rng::Xoshiro256& rng) {
        double s = 0.0;
        for (std::uint64_t i = 0; i < n; ++i) s += rng.uniform();
        return s;
      },
      [](double& into, double&& part) { into += part; });
}

TEST(ParallelMcReduce, BitIdenticalAcrossThreadCounts) {
  const double t1 = mc_sum(1, 8, 42);
  const double t2 = mc_sum(2, 8, 42);
  const double t8 = mc_sum(8, 8, 42);
  EXPECT_EQ(t1, t2);
  EXPECT_EQ(t1, t8);
}

TEST(ParallelMcReduce, StreamCountChangesTheSequence) {
  // Different stream counts are different (equally valid) estimators.
  EXPECT_NE(mc_sum(1, 4, 42), mc_sum(1, 8, 42));
}

TEST(ParallelMcReduce, SingleStreamIsTheLegacySerialLoop) {
  rng::Xoshiro256 serial(42);
  double expect = 0.0;
  for (int i = 0; i < 10000; ++i) expect += serial.uniform();
  EXPECT_EQ(mc_sum(8, 1, 42), expect);
}

// ----------------------------------------------------- ported MC kernels

TEST(UnionConditionalMcParallel, ThreadCountInvariant) {
  const double lambda = 0.117, w = 145.0;
  const std::vector<geom::Interval> windows = {
      {0.0, w}, {20.0, 20.0 + w}, {47.0, 47.0 + w}, {95.0, 95.0 + w}};
  std::vector<yield::UnionMcResult> results;
  for (unsigned threads : {1u, 2u, 8u}) {
    rng::Xoshiro256 rng(7);
    results.push_back(yield::union_conditional_mc(
        lambda, windows, 4000, rng, exec::McPolicy{threads, 8}));
  }
  EXPECT_EQ(results[0].estimate, results[1].estimate);
  EXPECT_EQ(results[0].estimate, results[2].estimate);
  EXPECT_EQ(results[0].std_error, results[2].std_error);
}

TEST(UnionConditionalMcParallel, OneStreamMatchesLegacySerial) {
  const double lambda = 0.117, w = 145.0;
  const std::vector<geom::Interval> windows = {
      {0.0, w}, {20.0, 20.0 + w}, {60.0, 60.0 + w}};
  rng::Xoshiro256 legacy(11), sharded(11);
  const auto a = yield::union_conditional_mc(lambda, windows, 3000, legacy);
  const auto b = yield::union_conditional_mc(lambda, windows, 3000, sharded,
                                             exec::McPolicy{8, 1});
  EXPECT_EQ(a.estimate, b.estimate);
  EXPECT_EQ(a.std_error, b.std_error);
  // Both paths must leave the caller's engine in the same state.
  EXPECT_EQ(legacy(), sharded());
}

TEST(UnionConditionalMcParallel, ShardedStaysUnbiased) {
  const double lambda = 0.117, w = 145.0;
  const std::vector<geom::Interval> windows = {
      {0.0, w}, {15.0, 15.0 + w}, {33.0, 33.0 + w}, {78.0, 78.0 + w}};
  const double exact = yield::poisson_union_exact(lambda, windows);
  rng::Xoshiro256 rng(13);
  const auto mc = yield::union_conditional_mc(lambda, windows, 40000, rng,
                                              exec::McPolicy{0, 16});
  EXPECT_NEAR(mc.estimate / exact, 1.0, 0.05);
}

TEST(ChipMcParallel, ThreadCountInvariantTallies) {
  const cnt::DirectionalGrowth growth(cnt::PitchModel(4.0, 1.0),
                                      cnt::fig21_worst(), 200.0e3);
  yield::ChipSpec spec;
  spec.row_windows = std::vector<geom::Interval>(6, geom::Interval{0.0, 30.0});
  spec.n_rows = 3;
  std::vector<yield::ChipMcResult> results;
  for (unsigned threads : {1u, 2u, 8u}) {
    rng::Xoshiro256 rng(19);
    results.push_back(yield::simulate_chip_yield(
        growth, spec, yield::GrowthStyle::Directional, 2000, rng,
        exec::McPolicy{threads, 8}));
  }
  EXPECT_EQ(results[0].chip_yield, results[1].chip_yield);
  EXPECT_EQ(results[0].chip_yield, results[2].chip_yield);
  EXPECT_EQ(results[0].p_rf, results[2].p_rf);
  EXPECT_EQ(results[0].rows_simulated, results[2].rows_simulated);
}

TEST(ChipMcParallel, OneStreamMatchesLegacySerial) {
  const cnt::DirectionalGrowth growth(cnt::PitchModel(4.0, 1.0),
                                      cnt::fig21_worst(), 200.0e3);
  yield::ChipSpec spec;
  spec.row_windows = {{0.0, 30.0}, {10.0, 40.0}};
  spec.n_rows = 2;
  for (auto style :
       {yield::GrowthStyle::Directional, yield::GrowthStyle::Uncorrelated}) {
    rng::Xoshiro256 legacy(23), sharded(23);
    const auto a = yield::simulate_chip_yield(growth, spec, style, 500, legacy);
    const auto b = yield::simulate_chip_yield(growth, spec, style, 500, sharded,
                                              exec::McPolicy{4, 1});
    EXPECT_EQ(a.chip_yield, b.chip_yield);
    EXPECT_EQ(a.p_rf, b.p_rf);
    EXPECT_EQ(legacy(), sharded());
  }
}

TEST(BootstrapParallel, ThreadCountInvariant) {
  std::vector<double> data;
  rng::Xoshiro256 gen(5);
  for (int i = 0; i < 200; ++i) data.push_back(gen.uniform());
  const auto stat = [](const std::vector<double>& v) {
    double s = 0.0;
    for (double x : v) s += x * x;
    return s / static_cast<double>(v.size());
  };
  std::vector<stats::Interval> cis;
  for (unsigned threads : {1u, 2u, 8u}) {
    rng::Xoshiro256 rng(29);
    cis.push_back(stats::bootstrap_ci(data, stat, rng, 1000, 0.95,
                                      exec::McPolicy{threads, 8}));
  }
  EXPECT_EQ(cis[0].lo, cis[1].lo);
  EXPECT_EQ(cis[0].lo, cis[2].lo);
  EXPECT_EQ(cis[0].hi, cis[2].hi);
}

TEST(BootstrapParallel, OneStreamMatchesLegacySerial) {
  std::vector<double> data;
  rng::Xoshiro256 gen(5);
  for (int i = 0; i < 100; ++i) data.push_back(gen.uniform());
  rng::Xoshiro256 legacy(31), sharded(31);
  const auto a = stats::bootstrap_mean_ci(data, legacy, 500);
  const auto b = stats::bootstrap_mean_ci(data, sharded, 500, 0.95,
                                          exec::McPolicy{8, 1});
  EXPECT_EQ(a.lo, b.lo);
  EXPECT_EQ(a.hi, b.hi);
  EXPECT_EQ(legacy(), sharded());
}

// ------------------------------------------------- p_F cache thread-safety

TEST(FailureModelThreadSafety, ConcurrentQueriesMatchSerialModel) {
  const device::FailureModel hot(cnt::PitchModel(4.0, 0.9),
                                 cnt::fig21_worst());
  const device::FailureModel reference(cnt::PitchModel(4.0, 0.9),
                                       cnt::fig21_worst());
  // Hammer overlapping widths from 8 threads (cache insert races), then
  // compare every value against an untouched serial model.
  std::vector<double> widths;
  for (int i = 0; i < 40; ++i) widths.push_back(20.0 + 3.0 * i);
  exec::parallel_for(widths.size() * 8, 8, [&](std::size_t i) {
    (void)hot.p_f(widths[i % widths.size()]);
  });
  for (double w : widths) {
    EXPECT_EQ(hot.p_f(w), reference.p_f(w)) << "W = " << w;
  }
}

TEST(FailureModelThreadSafety, InterpolantRacesStayConsistent) {
  const device::FailureModel model(cnt::PitchModel(4.0, 0.9),
                                   cnt::fig21_worst());
  // Builders and readers race; readers must always see either the exact
  // value or the interpolated one — both within tolerance of exact.
  exec::parallel_for(64, 8, [&](std::size_t i) {
    if (i % 8 == 0) {
      model.enable_interpolation(4.0, 400.0, 33);
    } else {
      const double w = 30.0 + static_cast<double>(i);
      const double exact = model.p_f_exact(w);
      const double seen = model.p_f(w);
      EXPECT_NEAR(std::log(seen) / std::log(exact), 1.0, 1e-3);
    }
  });
  EXPECT_TRUE(model.interpolation_covers(100.0));
  EXPECT_FALSE(model.interpolation_covers(1000.0));
}

TEST(FailureModel, InterpolantAccuracy) {
  const device::FailureModel model(cnt::PitchModel(4.0, 0.9),
                                   cnt::fig21_worst());
  const device::FailureModel exact_model(cnt::PitchModel(4.0, 0.9),
                                         cnt::fig21_worst());
  model.enable_interpolation(4.0, 400.0);
  for (double w = 10.0; w <= 390.0; w += 7.3) {
    const double approx = model.p_f(w);
    const double exact = exact_model.p_f(w);
    // Relative accuracy in log-domain: what the W_min inversion consumes.
    EXPECT_NEAR(std::log(approx) / std::log(exact), 1.0, 2e-4)
        << "W = " << w;
  }
}

// ------------------------------------------------------- flow determinism

const celllib::Library& flow_library() {
  static const celllib::Library lib = celllib::make_nangate45_like();
  return lib;
}

yield::FlowResult tiny_flow(unsigned n_threads) {
  const auto design = netlist::make_openrisc_like(flow_library());
  const device::FailureModel model(cnt::PitchModel(4.0, 0.9),
                                   cnt::fig21_worst());
  yield::FlowParams params;
  params.mc_samples = 500;  // determinism needs no MC accuracy
  params.n_threads = n_threads;
  return yield::run_flow(flow_library(), design, model, params);
}

TEST(FlowParallel, ThreadCountInvariantEndToEnd) {
  const auto t1 = tiny_flow(1);
  const auto t2 = tiny_flow(2);
  const auto t8 = tiny_flow(8);
  ASSERT_EQ(t1.strategies.size(), 4u);
  for (std::size_t i = 0; i < t1.strategies.size(); ++i) {
    EXPECT_EQ(t1.strategies[i].w_min, t2.strategies[i].w_min);
    EXPECT_EQ(t1.strategies[i].w_min, t8.strategies[i].w_min);
    EXPECT_EQ(t1.strategies[i].relaxation, t8.strategies[i].relaxation);
    EXPECT_EQ(t1.strategies[i].power_penalty, t8.strategies[i].power_penalty);
  }
}

TEST(FlowBatch, MatchesIndividualRunsExactlyWithoutInterpolant) {
  const auto design = netlist::make_openrisc_like(flow_library());
  const device::FailureModel model(cnt::PitchModel(4.0, 0.9),
                                   cnt::fig21_worst());
  std::vector<yield::FlowJob> jobs(2);
  jobs[0].design = &design;
  jobs[0].params.mc_samples = 500;
  jobs[0].params.yield_desired = 0.85;
  jobs[1].design = &design;
  jobs[1].params.mc_samples = 500;
  jobs[1].params.yield_desired = 0.95;

  yield::BatchParams batch;
  batch.share_interpolant = false;
  const auto results = yield::run_flow_batch(flow_library(), jobs, model, batch);
  ASSERT_EQ(results.size(), 2u);
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    const auto solo =
        yield::run_flow(flow_library(), *jobs[j].design, model, jobs[j].params);
    for (std::size_t i = 0; i < solo.strategies.size(); ++i) {
      EXPECT_EQ(results[j].strategies[i].w_min, solo.strategies[i].w_min);
      EXPECT_EQ(results[j].strategies[i].relaxation,
                solo.strategies[i].relaxation);
    }
  }
}

TEST(FlowBatch, SharedInterpolantStaysWithinTolerance) {
  const auto design = netlist::make_openrisc_like(flow_library());
  const device::FailureModel model(cnt::PitchModel(4.0, 0.9),
                                   cnt::fig21_worst());
  yield::FlowJob job;
  job.design = &design;
  job.params.mc_samples = 500;

  yield::BatchParams batch;  // share_interpolant = true
  const auto batched =
      yield::run_flow_batch(flow_library(), {job, job}, model, batch);
  const device::FailureModel clean(cnt::PitchModel(4.0, 0.9),
                                   cnt::fig21_worst());
  const auto solo = yield::run_flow(flow_library(), design, clean, job.params);
  ASSERT_EQ(batched.size(), 2u);
  for (std::size_t i = 0; i < solo.strategies.size(); ++i) {
    // Identical jobs must agree with each other exactly...
    EXPECT_EQ(batched[0].strategies[i].w_min, batched[1].strategies[i].w_min);
    // ...and with the exact path to interpolation accuracy.
    EXPECT_NEAR(batched[0].strategies[i].w_min / solo.strategies[i].w_min,
                1.0, 1e-3);
  }
}

}  // namespace
