#include <gtest/gtest.h>

#include "celllib/generator.h"
#include "netlist/design_generator.h"
#include "power/penalty.h"
#include "util/contracts.h"

namespace {

using namespace cny::power;
using cny::yield::WidthSpectrum;
using cny::yield::WminRequest;

cny::device::FailureModel paper_model() {
  return cny::device::FailureModel(cny::cnt::PitchModel(4.0, 0.9),
                                   cny::cnt::fig21_worst());
}

TEST(Penalty, HandComputedExample) {
  // Two devices at 50 and 150; upsizing to 100 raises only the first.
  const WidthSpectrum s = {{50.0, 1}, {150.0, 1}};
  EXPECT_NEAR(upsizing_penalty(s, 100.0), 50.0 / 200.0, 1e-12);
  EXPECT_DOUBLE_EQ(upsizing_penalty(s, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(upsizing_penalty(s, 40.0), 0.0);
}

TEST(Penalty, MonotoneInWmin) {
  const WidthSpectrum s = {{60.0, 3}, {120.0, 2}, {400.0, 1}};
  double prev = -1.0;
  for (double w = 0.0; w <= 500.0; w += 25.0) {
    const double p = upsizing_penalty(s, w);
    EXPECT_GE(p, prev);
    prev = p;
  }
}

TEST(Penalty, WeightsByMultiplicity) {
  const WidthSpectrum a = {{50.0, 1}, {100.0, 1}};
  const WidthSpectrum b = {{50.0, 10}, {100.0, 1}};
  EXPECT_GT(upsizing_penalty(b, 100.0), upsizing_penalty(a, 100.0));
}

TEST(ScalingStudy, PenaltyGrowsAsNodesShrink) {
  // Fig 2.2b's headline: the upsizing penalty increases significantly as
  // technology scales down (pitch fixed at 4 nm).
  const auto lib = cny::celllib::make_nangate45_like();
  const auto design = cny::netlist::make_openrisc_like(lib);
  auto spectrum = design.width_spectrum();
  spectrum = cny::yield::scale_spectrum(
      spectrum, 1.0, 1e8 / double(design.n_transistors()));
  const auto model = paper_model();
  WminRequest req;
  req.yield_desired = 0.90;
  const auto study =
      scaling_study(spectrum, model, req, {45.0, 32.0, 22.0, 16.0});
  ASSERT_EQ(study.nodes.size(), 4u);
  for (std::size_t i = 1; i < study.nodes.size(); ++i) {
    EXPECT_GT(study.nodes[i].penalty, study.nodes[i - 1].penalty);
  }
  // Paper regime: modest at 45 nm, ~100 % by 16 nm.
  EXPECT_LT(study.nodes[0].penalty, 0.15);
  EXPECT_GT(study.nodes[3].penalty, 0.80);
}

TEST(ScalingStudy, CorrelationCollapsesPenalty) {
  // Fig 3.3's headline: with the 350X relaxation the 45 nm penalty is
  // almost completely eliminated and every node improves.
  const auto lib = cny::celllib::make_nangate45_like();
  const auto design = cny::netlist::make_openrisc_like(lib);
  auto spectrum = design.width_spectrum();
  spectrum = cny::yield::scale_spectrum(
      spectrum, 1.0, 1e8 / double(design.n_transistors()));
  const auto model = paper_model();
  WminRequest without;
  without.yield_desired = 0.90;
  WminRequest with = without;
  with.relaxation = 350.0;
  const auto base =
      scaling_study(spectrum, model, without, {45.0, 32.0, 22.0, 16.0});
  const auto opt =
      scaling_study(spectrum, model, with, {45.0, 32.0, 22.0, 16.0});
  for (std::size_t i = 0; i < base.nodes.size(); ++i) {
    EXPECT_LT(opt.nodes[i].penalty, base.nodes[i].penalty);
    EXPECT_LT(opt.nodes[i].w_min, base.nodes[i].w_min);
  }
  EXPECT_LT(opt.nodes[0].penalty, 0.02);  // "almost completely eliminated"
}

TEST(ScalingStudy, WminNearlyNodeIndependent) {
  // The p_F(W) curve does not scale with the node (pitch fixed), so W_min
  // moves only through the M_min recount — within ~15 % across nodes.
  const auto lib = cny::celllib::make_nangate45_like();
  const auto design = cny::netlist::make_openrisc_like(lib);
  auto spectrum = design.width_spectrum();
  spectrum = cny::yield::scale_spectrum(
      spectrum, 1.0, 1e8 / double(design.n_transistors()));
  WminRequest req;
  const auto study = scaling_study(spectrum, paper_model(), req,
                                   {45.0, 32.0, 22.0, 16.0});
  const double w45 = study.nodes.front().w_min;
  for (const auto& n : study.nodes) {
    EXPECT_NEAR(n.w_min / w45, 1.0, 0.15);
  }
}

TEST(Penalty, InputValidation) {
  EXPECT_THROW(upsizing_penalty({}, 10.0), cny::ContractViolation);
  EXPECT_THROW(upsizing_penalty({{0.0, 1}}, 10.0), cny::ContractViolation);
  EXPECT_THROW(upsizing_penalty({{10.0, 1}}, -1.0), cny::ContractViolation);
}

}  // namespace
