#include <gtest/gtest.h>

#include <cmath>

#include "device/drive_current.h"
#include "device/failure_model.h"
#include "util/contracts.h"

namespace {

using namespace cny::device;
using cny::cnt::PitchModel;
using cny::cnt::ProcessParams;

FailureModel poisson_model() {
  return FailureModel(PitchModel(4.0, 1.0), cny::cnt::fig21_worst());
}

FailureModel paper_model() {
  return FailureModel(PitchModel(4.0, 0.9), cny::cnt::fig21_worst());
}

TEST(FailureModel, PoissonClosedFormAgreement) {
  const auto model = poisson_model();
  for (double w : {20.0, 60.0, 103.0, 155.0}) {
    EXPECT_NEAR(model.p_f(w) / model.p_f_poisson_closed_form(w), 1.0, 1e-5)
        << "w=" << w;
  }
}

TEST(FailureModel, ClosedFormRejectedForNonPoisson) {
  const auto model = paper_model();
  EXPECT_THROW(model.p_f_poisson_closed_form(100.0), cny::ContractViolation);
}

TEST(FailureModel, StrictlyDecreasingInWidth) {
  const auto model = paper_model();
  double prev = 1.1;
  for (double w = 20.0; w <= 180.0; w += 8.0) {
    const double pf = model.p_f(w);
    EXPECT_LT(pf, prev) << "w=" << w;
    prev = pf;
  }
}

TEST(FailureModel, OrderingAcrossProcessConditions) {
  // Worse processing (higher p_f per CNT) → higher p_F at every width.
  const PitchModel pitch(4.0, 0.9);
  const FailureModel worst(pitch, cny::cnt::fig21_worst());
  const FailureModel mid(pitch, cny::cnt::fig21_mid());
  const FailureModel ideal(pitch, cny::cnt::fig21_ideal());
  for (double w : {40.0, 100.0, 160.0}) {
    EXPECT_GT(worst.p_f(w), mid.p_f(w));
    EXPECT_GT(mid.p_f(w), ideal.p_f(w));
  }
}

TEST(FailureModel, IdealProcessFailsOnlyByDensity) {
  // With p_f = 0, failure requires zero CNTs in the window: p_F = P(N=0).
  const FailureModel ideal(PitchModel(4.0, 1.0), cny::cnt::fig21_ideal());
  for (double w : {8.0, 20.0, 40.0}) {
    EXPECT_NEAR(ideal.p_f(w) / std::exp(-w / 4.0), 1.0, 1e-5);
  }
}

TEST(FailureModel, ZeroWidthAlwaysFails) {
  EXPECT_DOUBLE_EQ(paper_model().p_f(0.0), 1.0);
}

TEST(FailureModel, Fig21AnchorCalibration) {
  // The calibrated model must place the paper's Fig 2.1 anchors within
  // engineering tolerance: p_F(155) within [1e-9, 1e-8] (paper 3e-9), and
  // the 350X relaxation near W ≈ 103 within ~10 nm.
  const auto model = paper_model();
  const double p155 = model.p_f(155.0);
  EXPECT_GT(p155, 1.0e-9);
  EXPECT_LT(p155, 1.0e-8);
  const double p103 = model.p_f(103.0);
  EXPECT_GT(p103 / p155, 200.0);
  EXPECT_LT(p103 / p155, 900.0);
}

TEST(FailureModel, MonteCarloMatchesAnalytic) {
  // Inflated-probability regime where direct MC resolves p_F.
  const auto model = paper_model();
  cny::rng::Xoshiro256 rng(91);
  const double w = 24.0;  // p_F ~ 1e-2
  const auto ci = model.p_f_monte_carlo(w, 40000, rng);
  const double analytic = model.p_f(w);
  EXPECT_TRUE(ci.contains(analytic))
      << "analytic=" << analytic << " ci=[" << ci.lo << "," << ci.hi << "]";
}

TEST(FailureModel, MeanCount) {
  EXPECT_DOUBLE_EQ(paper_model().mean_count(100.0), 25.0);
}

TEST(FailureModel, CacheReturnsIdenticalValues) {
  const auto model = paper_model();
  const double a = model.p_f(123.0);
  const double b = model.p_f(123.0);
  EXPECT_EQ(a, b);
}

// --------------------------------------------------------------- current

TEST(DriveCurrent, StatisticalAveragingOneOverSqrtN) {
  // σ(Ion)/μ(Ion) must fall like 1/√N: quadrupling the width must halve
  // the CV (within MC tolerance). This is the paper's Sec 1 premise.
  const PitchModel pitch(4.0, 1.0);
  const ProcessParams proc = cny::cnt::fig21_mid();
  const cny::cnt::DiameterModel diam;
  const TubeCurrentModel tube;
  cny::rng::Xoshiro256 rng(92);
  const auto narrow = simulate_on_current(pitch, proc, diam, tube, 80.0,
                                          20000, rng);
  const auto wide = simulate_on_current(pitch, proc, diam, tube, 320.0,
                                        20000, rng);
  EXPECT_NEAR(narrow.cv / wide.cv, 2.0, 0.25);
}

TEST(DriveCurrent, AnalyticCvMatchesSimulation) {
  const PitchModel pitch(4.0, 0.9);
  const ProcessParams proc = cny::cnt::fig21_worst();
  const cny::cnt::DiameterModel diam;
  const TubeCurrentModel tube;
  cny::rng::Xoshiro256 rng(93);
  for (double w : {120.0, 240.0}) {
    const auto sim = simulate_on_current(pitch, proc, diam, tube, w, 30000,
                                         rng);
    const double analytic = analytic_current_cv(pitch, proc, diam, tube, w);
    EXPECT_NEAR(sim.cv / analytic, 1.0, 0.08) << "w=" << w;
  }
}

TEST(DriveCurrent, MeanScalesWithWidth) {
  const PitchModel pitch(4.0, 1.0);
  const ProcessParams proc = cny::cnt::fig21_mid();
  const cny::cnt::DiameterModel diam;
  const TubeCurrentModel tube;
  cny::rng::Xoshiro256 rng(94);
  const auto a = simulate_on_current(pitch, proc, diam, tube, 100.0, 8000,
                                     rng);
  const auto b = simulate_on_current(pitch, proc, diam, tube, 200.0, 8000,
                                     rng);
  EXPECT_NEAR(b.mean / a.mean, 2.0, 0.1);
  EXPECT_NEAR(b.mean_count / a.mean_count, 2.0, 0.05);
}

TEST(DriveCurrent, FailedDevicesCounted) {
  // Tiny width → frequent zero-functional-tube devices.
  const PitchModel pitch(4.0, 1.0);
  const ProcessParams proc = cny::cnt::fig21_worst();
  const cny::cnt::DiameterModel diam;
  const TubeCurrentModel tube;
  cny::rng::Xoshiro256 rng(95);
  const auto res = simulate_on_current(pitch, proc, diam, tube, 6.0, 5000,
                                       rng);
  EXPECT_GT(res.failures, 0u);
  EXPECT_LT(res.failures, res.devices);
}

TEST(TubeCurrentModel, LinearInDiameter) {
  const TubeCurrentModel tube{10.0};
  EXPECT_DOUBLE_EQ(tube.current(1.5), 15.0);
  EXPECT_DOUBLE_EQ(tube.current(-1.0), 0.0);
}

}  // namespace
