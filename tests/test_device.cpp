#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <thread>
#include <vector>

#include "cnt/count_distribution.h"
#include "device/drive_current.h"
#include "device/failure_model.h"
#include "util/contracts.h"

namespace {

using namespace cny::device;
using cny::cnt::PitchModel;
using cny::cnt::ProcessParams;

FailureModel poisson_model() {
  return FailureModel(PitchModel(4.0, 1.0), cny::cnt::fig21_worst());
}

FailureModel paper_model() {
  return FailureModel(PitchModel(4.0, 0.9), cny::cnt::fig21_worst());
}

TEST(FailureModel, PoissonClosedFormAgreement) {
  const auto model = poisson_model();
  for (double w : {20.0, 60.0, 103.0, 155.0}) {
    EXPECT_NEAR(model.p_f(w) / model.p_f_poisson_closed_form(w), 1.0, 1e-5)
        << "w=" << w;
  }
}

TEST(FailureModel, ClosedFormRejectedForNonPoisson) {
  const auto model = paper_model();
  EXPECT_THROW(model.p_f_poisson_closed_form(100.0), cny::ContractViolation);
}

TEST(FailureModel, StrictlyDecreasingInWidth) {
  const auto model = paper_model();
  double prev = 1.1;
  for (double w = 20.0; w <= 180.0; w += 8.0) {
    const double pf = model.p_f(w);
    EXPECT_LT(pf, prev) << "w=" << w;
    prev = pf;
  }
}

TEST(FailureModel, OrderingAcrossProcessConditions) {
  // Worse processing (higher p_f per CNT) → higher p_F at every width.
  const PitchModel pitch(4.0, 0.9);
  const FailureModel worst(pitch, cny::cnt::fig21_worst());
  const FailureModel mid(pitch, cny::cnt::fig21_mid());
  const FailureModel ideal(pitch, cny::cnt::fig21_ideal());
  for (double w : {40.0, 100.0, 160.0}) {
    EXPECT_GT(worst.p_f(w), mid.p_f(w));
    EXPECT_GT(mid.p_f(w), ideal.p_f(w));
  }
}

TEST(FailureModel, IdealProcessFailsOnlyByDensity) {
  // With p_f = 0, failure requires zero CNTs in the window: p_F = P(N=0).
  const FailureModel ideal(PitchModel(4.0, 1.0), cny::cnt::fig21_ideal());
  for (double w : {8.0, 20.0, 40.0}) {
    EXPECT_NEAR(ideal.p_f(w) / std::exp(-w / 4.0), 1.0, 1e-5);
  }
}

TEST(FailureModel, ZeroWidthAlwaysFails) {
  EXPECT_DOUBLE_EQ(paper_model().p_f(0.0), 1.0);
}

TEST(FailureModel, Fig21AnchorCalibration) {
  // The calibrated model must place the paper's Fig 2.1 anchors within
  // engineering tolerance: p_F(155) within [1e-9, 1e-8] (paper 3e-9), and
  // the 350X relaxation near W ≈ 103 within ~10 nm.
  const auto model = paper_model();
  const double p155 = model.p_f(155.0);
  EXPECT_GT(p155, 1.0e-9);
  EXPECT_LT(p155, 1.0e-8);
  const double p103 = model.p_f(103.0);
  EXPECT_GT(p103 / p155, 200.0);
  EXPECT_LT(p103 / p155, 900.0);
}

TEST(FailureModel, MonteCarloMatchesAnalytic) {
  // Inflated-probability regime where direct MC resolves p_F.
  const auto model = paper_model();
  cny::rng::Xoshiro256 rng(91);
  const double w = 24.0;  // p_F ~ 1e-2
  const auto ci = model.p_f_monte_carlo(w, 40000, rng);
  const double analytic = model.p_f(w);
  EXPECT_TRUE(ci.contains(analytic))
      << "analytic=" << analytic << " ci=[" << ci.lo << "," << ci.hi << "]";
}

TEST(FailureModel, MeanCount) {
  EXPECT_DOUBLE_EQ(paper_model().mean_count(100.0), 25.0);
}

TEST(FailureModel, CacheReturnsIdenticalValues) {
  const auto model = paper_model();
  const double a = model.p_f(123.0);
  const double b = model.p_f(123.0);
  EXPECT_EQ(a, b);
}

TEST(FailureModel, ExactPathMatchesFullPmfPgf) {
  // p_f_exact now runs the truncated kernel; it must agree with the
  // full-PMF reference evaluation to ≤ 1e-12 relative on the Fig 2.1 grid.
  const cny::cnt::PitchModel pitch(4.0, 0.9);
  const auto proc = cny::cnt::fig21_worst();
  const FailureModel model(pitch, proc);
  for (double w = 20.0; w <= 180.0; w += 16.0) {
    const cny::cnt::CountDistribution full(pitch, w);
    const double reference = full.pgf(proc.p_fail());
    EXPECT_LE(std::fabs(model.p_f_exact(w) - reference) / reference, 1e-12)
        << "w=" << w;
  }
}

TEST(FailureModel, MonteCarloMarginMatchesAnalytic) {
  // A stationarity margin above/below the window must not change what the
  // estimator converges to (the equilibrium first-gap draw already makes
  // the band stationary; the margin makes that independent of the draw).
  const auto model = paper_model();
  cny::rng::Xoshiro256 rng(92);
  const double w = 24.0;  // p_F ~ 1e-2
  const auto ci = model.p_f_monte_carlo(w, 40000, rng, /*margin=*/8.0);
  const double analytic = model.p_f(w);
  EXPECT_TRUE(ci.contains(analytic))
      << "analytic=" << analytic << " ci=[" << ci.lo << "," << ci.hi << "]";
  EXPECT_THROW(model.p_f_monte_carlo(w, 100, rng, -1.0),
               cny::ContractViolation);
}

TEST(FailureModel, LockLightReadPathSurvivesThreadHammer) {
  // Concurrent p_f readers race enable_interpolation installs of several
  // ranges. Every answer must be finite, in (0, 1], and consistent with
  // the exact value to interpolation accuracy; afterwards the exact path
  // must still serve bit-identical memoised values.
  const auto model = paper_model();
  const double exact_ref[] = {model.p_f_exact(20.0), model.p_f_exact(60.0),
                              model.p_f_exact(100.0), model.p_f_exact(140.0),
                              model.p_f_exact(180.0)};
  const double widths[] = {20.0, 60.0, 100.0, 140.0, 180.0};
  std::atomic<bool> failed{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 400; ++i) {
        if (t >= 6 && i % 50 == 0) {
          // Builders: install/replace tables over alternating ranges.
          const double lo = (i % 100 == 0) ? 10.0 : 15.0;
          model.enable_interpolation(lo, 200.0, 33);
        }
        const std::size_t which = static_cast<std::size_t>(i) % 5;
        const double pf = model.p_f(widths[which]);
        // Interpolation error on log p_F is well under 1% over this range;
        // anything outside is a torn read or a broken snapshot.
        if (!std::isfinite(pf) || pf <= 0.0 || pf > 1.0 ||
            std::fabs(std::log(pf) - std::log(exact_ref[which])) > 0.01) {
          failed.store(true, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_FALSE(failed.load());
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(model.p_f_exact(widths[i]), exact_ref[i]);
  }
}

// --------------------------------------------------------------- current

TEST(DriveCurrent, StatisticalAveragingOneOverSqrtN) {
  // σ(Ion)/μ(Ion) must fall like 1/√N: quadrupling the width must halve
  // the CV (within MC tolerance). This is the paper's Sec 1 premise.
  const PitchModel pitch(4.0, 1.0);
  const ProcessParams proc = cny::cnt::fig21_mid();
  const cny::cnt::DiameterModel diam;
  const TubeCurrentModel tube;
  cny::rng::Xoshiro256 rng(92);
  const auto narrow = simulate_on_current(pitch, proc, diam, tube, 80.0,
                                          20000, rng);
  const auto wide = simulate_on_current(pitch, proc, diam, tube, 320.0,
                                        20000, rng);
  EXPECT_NEAR(narrow.cv / wide.cv, 2.0, 0.25);
}

TEST(DriveCurrent, AnalyticCvMatchesSimulation) {
  const PitchModel pitch(4.0, 0.9);
  const ProcessParams proc = cny::cnt::fig21_worst();
  const cny::cnt::DiameterModel diam;
  const TubeCurrentModel tube;
  cny::rng::Xoshiro256 rng(93);
  for (double w : {120.0, 240.0}) {
    const auto sim = simulate_on_current(pitch, proc, diam, tube, w, 30000,
                                         rng);
    const double analytic = analytic_current_cv(pitch, proc, diam, tube, w);
    EXPECT_NEAR(sim.cv / analytic, 1.0, 0.08) << "w=" << w;
  }
}

TEST(DriveCurrent, MeanScalesWithWidth) {
  const PitchModel pitch(4.0, 1.0);
  const ProcessParams proc = cny::cnt::fig21_mid();
  const cny::cnt::DiameterModel diam;
  const TubeCurrentModel tube;
  cny::rng::Xoshiro256 rng(94);
  const auto a = simulate_on_current(pitch, proc, diam, tube, 100.0, 8000,
                                     rng);
  const auto b = simulate_on_current(pitch, proc, diam, tube, 200.0, 8000,
                                     rng);
  EXPECT_NEAR(b.mean / a.mean, 2.0, 0.1);
  EXPECT_NEAR(b.mean_count / a.mean_count, 2.0, 0.05);
}

TEST(DriveCurrent, FailedDevicesCounted) {
  // Tiny width → frequent zero-functional-tube devices.
  const PitchModel pitch(4.0, 1.0);
  const ProcessParams proc = cny::cnt::fig21_worst();
  const cny::cnt::DiameterModel diam;
  const TubeCurrentModel tube;
  cny::rng::Xoshiro256 rng(95);
  const auto res = simulate_on_current(pitch, proc, diam, tube, 6.0, 5000,
                                       rng);
  EXPECT_GT(res.failures, 0u);
  EXPECT_LT(res.failures, res.devices);
}

TEST(TubeCurrentModel, LinearInDiameter) {
  const TubeCurrentModel tube{10.0};
  EXPECT_DOUBLE_EQ(tube.current(1.5), 15.0);
  EXPECT_DOUBLE_EQ(tube.current(-1.0), 0.0);
}

}  // namespace
