#include <gtest/gtest.h>

#include <cmath>

#include "cnt/count_distribution.h"
#include "cnt/growth.h"
#include "numeric/special.h"
#include "rng/engine.h"
#include "stats/accumulator.h"
#include "util/contracts.h"

namespace {

using cny::cnt::CountDistribution;
using cny::cnt::PitchModel;

TEST(CountDistribution, NormalisedMass) {
  for (double cv : {0.6, 0.9, 1.0, 1.2}) {
    for (double w : {20.0, 80.0, 155.0}) {
      const CountDistribution d(PitchModel(4.0, cv), w);
      double sum = 0.0;
      for (long n = 0; n <= d.max_n(); ++n) sum += d.pmf(n);
      EXPECT_NEAR(sum, 1.0, 1e-12) << "cv=" << cv << " w=" << w;
    }
  }
}

TEST(CountDistribution, MeanIsWidthOverPitch) {
  // Stationary renewal: E[N(W)] = W/μ exactly, for every pitch CV.
  for (double cv : {0.5, 0.9, 1.0, 1.3}) {
    const CountDistribution d(PitchModel(4.0, cv), 100.0);
    EXPECT_NEAR(d.mean(), 25.0, 1e-6) << "cv=" << cv;
  }
}

TEST(CountDistribution, PoissonSpecialCaseMatchesPmf) {
  const double w = 60.0;
  const CountDistribution d(PitchModel(4.0, 1.0), w);
  const double lambda = w / 4.0;
  for (long n = 0; n <= 40; ++n) {
    EXPECT_NEAR(d.pmf(n), cny::numeric::poisson_pmf(n, lambda), 1e-9)
        << "n=" << n;
  }
  EXPECT_NEAR(d.variance(), lambda, 0.02);
}

TEST(CountDistribution, SubPoissonVarianceForRegularPitch) {
  // CV < 1 (regular spacing) → count variance below Poisson;
  // CV > 1 → above. Asymptotically Var ≈ cv² · W/μ.
  const double w = 155.0;
  const CountDistribution regular(PitchModel(4.0, 0.6), w);
  const CountDistribution poisson(PitchModel(4.0, 1.0), w);
  const CountDistribution bursty(PitchModel(4.0, 1.3), w);
  EXPECT_LT(regular.variance(), poisson.variance());
  EXPECT_GT(bursty.variance(), poisson.variance());
  EXPECT_NEAR(regular.variance(), 0.36 * w / 4.0, 0.15 * w / 4.0);
}

TEST(CountDistribution, TailIsComplementOfPartialSums) {
  const CountDistribution d(PitchModel(4.0, 0.9), 40.0);
  EXPECT_NEAR(d.tail(0), 1.0, 1e-12);
  double partial = 0.0;
  for (long n = 0; n < 5; ++n) partial += d.pmf(n);
  EXPECT_NEAR(d.tail(5), 1.0 - partial, 1e-9);
}

TEST(CountDistribution, PgfAtOneIsOne) {
  const CountDistribution d(PitchModel(4.0, 0.8), 120.0);
  EXPECT_NEAR(d.pgf(1.0), 1.0, 1e-12);
  EXPECT_NEAR(d.pgf(0.0), d.pmf(0), 1e-15);
}

TEST(CountDistribution, PgfPoissonClosedForm) {
  // E[z^N] = exp(-λ(1-z)) for the Poisson case.
  const double w = 155.0;
  const CountDistribution d(PitchModel(4.0, 1.0), w);
  const double lambda = w / 4.0;
  for (double z : {0.33, 0.531, 0.9}) {
    const double closed = std::exp(-lambda * (1.0 - z));
    EXPECT_NEAR(d.pgf(z) / closed, 1.0, 1e-4) << "z=" << z;
  }
  // At z = 0 the closed form is e^-38.75 ~ 1.5e-17 — below the count
  // model's absolute resolution; require agreement to 1e-12 absolute.
  EXPECT_NEAR(d.pgf(0.0), std::exp(-lambda), 1e-12);
}

TEST(CountDistribution, ZeroWidthIsDeterministicallyEmpty) {
  const CountDistribution d(PitchModel(4.0, 0.9), 0.0);
  EXPECT_EQ(d.max_n(), 0);
  EXPECT_DOUBLE_EQ(d.pmf(0), 1.0);
  EXPECT_DOUBLE_EQ(d.pgf(0.5), 1.0);
}

TEST(CountDistribution, MonteCarloAgreement) {
  // Sample the renewal process directly and compare the empirical PMF.
  const PitchModel pitch(4.0, 0.8);
  const double w = 40.0;
  const CountDistribution d(pitch, w);
  cny::rng::Xoshiro256 rng(77);
  const int trials = 60000;
  std::vector<int> counts(64, 0);
  for (int t = 0; t < trials; ++t) {
    long n = 0;
    double y = pitch.sample_equilibrium(rng);
    while (y < w) {
      ++n;
      y += pitch.sample(rng);
    }
    if (n < 64) ++counts[static_cast<std::size_t>(n)];
  }
  for (long n = 5; n <= 15; ++n) {
    const double expected = d.pmf(n);
    const double observed =
        double(counts[static_cast<std::size_t>(n)]) / trials;
    EXPECT_NEAR(observed, expected,
                5.0 * std::sqrt(expected / trials) + 2e-3)
        << "n=" << n;
  }
}

TEST(CountDistribution, TailSuffixSumsConsistentEverywhere) {
  // tail() is precomputed suffix sums; every entry must match the direct
  // summation definition and vanish past the support.
  const CountDistribution d(PitchModel(4.0, 0.9), 60.0);
  for (long n = d.max_n() + 2; n-- > 0;) {
    double direct = 0.0;
    for (long i = n; i <= d.max_n(); ++i) direct += d.pmf(i);
    EXPECT_NEAR(d.tail(n), std::min(1.0, direct), 1e-12) << "n=" << n;
  }
  EXPECT_DOUBLE_EQ(d.tail(d.max_n() + 1), 0.0);
  EXPECT_DOUBLE_EQ(d.tail(d.max_n() + 100), 0.0);
}

TEST(CountDistribution, PmfOutOfRangeIsZero) {
  const CountDistribution d(PitchModel(4.0, 0.9), 20.0);
  EXPECT_DOUBLE_EQ(d.pmf(d.max_n() + 1), 0.0);
  EXPECT_THROW(d.pmf(-1), cny::ContractViolation);
}

}  // namespace
