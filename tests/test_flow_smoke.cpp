// Build-level smoke test: one cheap end-to-end run_flow() call checking the
// structural contract downstream consumers rely on — strategies come back in
// enum order and the summary table renders. Deeper numerical checks live in
// test_flow_router_quantile.cpp.
#include <gtest/gtest.h>

#include <string>

#include "celllib/generator.h"
#include "netlist/design_generator.h"
#include "yield/flow.h"

namespace {

using namespace cny;

const yield::FlowResult& smoke_result() {
  static const yield::FlowResult res = [] {
    const auto lib = celllib::make_nangate45_like();
    const auto design = netlist::make_openrisc_like(lib);
    const device::FailureModel model(cnt::PitchModel(4.0, 0.9),
                                     cnt::fig21_worst());
    yield::FlowParams params;
    params.mc_samples = 2000;  // smoke budget; accuracy is tested elsewhere
    return yield::run_flow(lib, design, model, params);
  }();
  return res;
}

TEST(FlowSmoke, StrategiesComeBackInEnumOrder) {
  const auto& strategies = smoke_result().strategies;
  ASSERT_EQ(strategies.size(), 4u);
  EXPECT_EQ(strategies[0].strategy, yield::Strategy::Uncorrelated);
  EXPECT_EQ(strategies[1].strategy, yield::Strategy::DirectionalOnly);
  EXPECT_EQ(strategies[2].strategy, yield::Strategy::AlignedOneRow);
  EXPECT_EQ(strategies[3].strategy, yield::Strategy::AlignedTwoRows);
}

TEST(FlowSmoke, InterpolantOptInTracksExactFlow) {
  // FlowParams::use_interpolant must reproduce the exact flow to
  // interpolation accuracy (W_min within ~1e-3 nm relative), leave the
  // caller's model untouched, and keep the strategy order contract.
  const auto lib = celllib::make_nangate45_like();
  const auto design = netlist::make_openrisc_like(lib);
  const device::FailureModel model(cnt::PitchModel(4.0, 0.9),
                                   cnt::fig21_worst());
  yield::FlowParams params;
  params.mc_samples = 2000;
  const auto exact = smoke_result();
  params.use_interpolant = true;
  const auto interp = yield::run_flow(lib, design, model, params);
  EXPECT_FALSE(model.interpolation_covers(100.0))
      << "run_flow must not install the table on the caller's model";
  ASSERT_EQ(interp.strategies.size(), exact.strategies.size());
  for (std::size_t i = 0; i < interp.strategies.size(); ++i) {
    EXPECT_EQ(interp.strategies[i].strategy, exact.strategies[i].strategy);
    EXPECT_NEAR(interp.strategies[i].w_min / exact.strategies[i].w_min, 1.0,
                1e-3)
        << "strategy " << yield::to_string(interp.strategies[i].strategy);
  }
}

TEST(FlowSmoke, SummaryTableIsNonEmpty) {
  const auto table = smoke_result().summary_table();
  EXPECT_EQ(table.n_rows(), 4u);
  const std::string text = table.to_text();
  EXPECT_FALSE(text.empty());
  // Every strategy label must appear in the rendered table.
  for (auto s : {yield::Strategy::Uncorrelated, yield::Strategy::DirectionalOnly,
                 yield::Strategy::AlignedOneRow, yield::Strategy::AlignedTwoRows}) {
    EXPECT_NE(text.find(yield::to_string(s)), std::string::npos)
        << "missing label: " << yield::to_string(s);
  }
}

}  // namespace
