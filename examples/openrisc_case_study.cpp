// The paper's Sec 2.2 / Sec 3.3 case study, end to end:
//
//   synthetic OpenRISC-like design on the nangate45_like library
//     -> transistor width histogram                       (Fig 2.2a)
//     -> W_min at 90 % chip yield, M = 100e6              (Fig 2.1 anchor)
//     -> upsizing power penalty across nodes, without and
//        with directional-growth + aligned-active relaxation
//                                                          (Fig 2.2b / 3.3)
//     -> Table 1 p_RF columns for this design
//
// Usage: openrisc_case_study [--instances=50000] [--yield=0.90]
//                            [--relaxation=350] [--csv-dir=DIR]
#include <cstdio>
#include <iostream>

#include "celllib/generator.h"
#include "experiments/fig2_2.h"
#include "experiments/table1.h"
#include "netlist/design_generator.h"
#include "util/cli.h"

int main(int argc, char** argv) {
  using namespace cny;
  const util::Cli cli(argc, argv);

  experiments::PaperParams params;
  params.yield_desired = cli.get_double("yield", 0.90);
  const double relaxation = cli.get_double("relaxation", 350.0);

  const auto lib = celllib::make_nangate45_like();
  const auto design = netlist::generate_design(
      "openrisc_like", lib,
      static_cast<std::uint64_t>(cli.get_long("instances", 50000)), {});

  std::printf("design: %llu instances, %llu transistors on %s (%zu cells)\n\n",
              static_cast<unsigned long long>(design.n_instances()),
              static_cast<unsigned long long>(design.n_transistors()),
              lib.name().c_str(), lib.size());

  // Fig 2.2a — width histogram, rendered as ASCII art plus the table.
  const auto hist = design.width_histogram(80.0, 800.0);
  std::printf("transistor width distribution (Fig 2.2a):\n%s\n",
              hist.to_ascii(48).c_str());

  const auto fig22a = experiments::report_fig2_2a();
  std::cout << fig22a.render_text() << '\n';

  // Fig 2.2b + Fig 3.3 — penalty scaling without/with correlation.
  const auto fig33 = experiments::report_fig3_3(params, relaxation);
  std::cout << fig33.render_text() << '\n';

  // Table 1 — the correlation benefit decomposition for this design.
  const auto t1 = experiments::report_table1(params);
  std::cout << t1.render_text() << '\n';

  if (cli.has("csv-dir")) {
    const std::string dir = cli.get("csv-dir", ".");
    for (const auto* exp : {&fig22a, &fig33, &t1}) {
      for (const auto& path : exp->write_csv(dir)) {
        std::printf("wrote %s\n", path.c_str());
      }
    }
  }
  return 0;
}
