// The "larger workloads" case study: the 775-cell commercial65_like
// library (the paper's commercial 65 nm stand-in) with a synthetic design
// an order of magnitude past the OpenRISC core, pushed through
// run_flow_batch so the whole yield-target sweep shares one warm
// FailureModel + log-p_F interpolant.
//
//   commercial65_like (775 cells)
//     -> synthetic design tier (--instances, default 200k cells)
//     -> width histogram (the 65 nm analogue of Fig 2.2a)
//     -> run_flow_batch over --yields (default 0.80,0.90,0.95)
//        plus a 2x design tier at the middle yield target
//     -> per-strategy summary for every job
//
// Usage: commercial65_case_study [--instances=200000]
//            [--yields=0.80,0.90,0.95] [--mc-samples=20000] [--seed=1]
#include <chrono>
#include <cstdio>
#include <iostream>

#include "celllib/generator.h"
#include "device/failure_model.h"
#include "netlist/design_generator.h"
#include "util/cli.h"
#include "util/strings.h"
#include "yield/flow.h"

int main(int argc, char** argv) {
  using namespace cny;
  const util::Cli cli(argc, argv);

  const auto lib = celllib::make_commercial65_like();
  const auto n_instances =
      static_cast<std::uint64_t>(cli.get_long("instances", 200000));
  const auto design =
      netlist::generate_design("commercial65_synth", lib, n_instances, {});
  const auto design_2x = netlist::generate_design("commercial65_synth_2x", lib,
                                                  2 * n_instances, {});

  std::printf("library %s: %zu cells, min transistor width %.1f nm\n",
              lib.name().c_str(), lib.size(), lib.min_transistor_width());
  std::printf("design tiers: %llu and %llu instances (%llu / %llu "
              "transistors)\n\n",
              static_cast<unsigned long long>(design.n_instances()),
              static_cast<unsigned long long>(design_2x.n_instances()),
              static_cast<unsigned long long>(design.n_transistors()),
              static_cast<unsigned long long>(design_2x.n_transistors()));

  const auto hist = design.width_histogram(80.0, 1200.0);
  std::printf("transistor width distribution (65 nm analogue of Fig 2.2a):\n%s\n",
              hist.to_ascii(48).c_str());

  // The paper's process corner; the model is shared by every batched job.
  cnt::ProcessParams process;
  process.p_metallic = 0.33;
  process.p_remove_s = 0.30;
  const device::FailureModel model(cnt::PitchModel(4.0, 0.9), process);

  yield::FlowParams base;
  base.mc_samples = static_cast<std::size_t>(
      cli.get_long("mc-samples", static_cast<long>(base.mc_samples)));
  base.seed = static_cast<std::uint64_t>(cli.get_long("seed", 1));
  // The commercial65_like diffusion rule is looser than the 45 nm default.
  base.active_spacing = 200.0;

  std::vector<yield::FlowJob> jobs;
  std::vector<std::string> labels;
  for (const auto& tok :
       util::split(cli.get("yields", "0.80,0.90,0.95"), ',')) {
    if (tok.empty()) continue;
    yield::FlowJob job;
    job.design = &design;
    job.params = base;
    job.params.yield_desired = util::parse_double(tok);
    jobs.push_back(job);
    labels.push_back(design.name() + " @ yield " + std::string(tok));
  }
  {
    // The bigger tier rides the same batch — same model, same interpolant.
    yield::FlowJob job;
    job.design = &design_2x;
    job.params = base;
    jobs.push_back(job);
    labels.push_back(design_2x.name() + " @ yield 0.90");
  }

  const auto t0 = std::chrono::steady_clock::now();
  const auto results = yield::run_flow_batch(lib, jobs, model, {});
  const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                      std::chrono::steady_clock::now() - t0)
                      .count();

  for (std::size_t i = 0; i < results.size(); ++i) {
    std::printf("== %s ==\n", labels[i].c_str());
    std::cout << results[i].summary_table().to_text() << '\n';
  }
  std::printf(
      "%zu jobs x 4 strategies in %lld ms on the shared interpolant "
      "(%.1f ms/job)\n",
      results.size(), static_cast<long long>(ms),
      static_cast<double>(ms) / static_cast<double>(results.size()));
  return 0;
}
