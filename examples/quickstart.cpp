// Quickstart: the 60-second tour of the cntyield API.
//
//   1. Build a CNT process model (pitch statistics + m-CNT removal).
//   2. Ask for the CNFET failure probability p_F(W)  (paper eq. 2.2).
//   3. Solve the minimum safe width W_min for a chip   (paper eq. 2.5).
//   4. See what CNT correlation buys you               (paper Sec 3).
//
// Usage: quickstart [--pm=0.33] [--prs=0.30] [--cv=0.9] [--yield=0.90]
#include <cstdio>

#include "cnt/pitch_model.h"
#include "cnt/process.h"
#include "device/failure_model.h"
#include "util/cli.h"
#include "yield/row_model.h"
#include "yield/wmin_solver.h"

int main(int argc, char** argv) {
  using namespace cny;
  const util::Cli cli(argc, argv);

  // 1. Process model: mean inter-CNT pitch 4 nm [Deng 07]; pitch CV 0.9
  //    (calibrated to the paper's Fig 2.1, see EXPERIMENTS.md); 33 % of
  //    grown CNTs are metallic and removed (p_Rm = 1), and the removal step
  //    collaterally kills 30 % of the semiconducting ones.
  const cnt::PitchModel pitch(4.0, cli.get_double("cv", 0.9));
  cnt::ProcessParams process;
  process.p_metallic = cli.get_double("pm", 0.33);
  process.p_remove_s = cli.get_double("prs", 0.30);
  const device::FailureModel device(pitch, process);

  std::printf("per-CNT failure probability p_f = %.3f (eq. 2.1)\n\n",
              process.p_fail());

  // 2. Device-level failure probability vs width (Fig 2.1, one curve).
  std::printf("%-10s %-12s\n", "W (nm)", "p_F(W)");
  for (double w = 20.0; w <= 180.0; w += 20.0) {
    std::printf("%-10.0f %-12.3e\n", w, device.p_f(w));
  }

  // 3. W_min for a 100-million-transistor chip at 90 % desired yield,
  //    with a 120 nm / 360 nm two-bin width spectrum (33 % small devices —
  //    the paper's OpenRISC case study shape).
  yield::WminRequest req;
  req.yield_desired = cli.get_double("yield", 0.90);
  const yield::WidthSpectrum spectrum = {{120.0, 33'000'000},
                                         {360.0, 67'000'000}};
  const auto base = yield::solve_w_min(spectrum, device, req);
  std::printf("\nW_min without correlation: %.1f nm  (p_F* = %.2e, M_min = %llu)\n",
              base.w_min, base.p_f_target,
              static_cast<unsigned long long>(base.m_min));

  // 4. Directional growth + aligned-active layout: every device in a row
  //    shares the same CNTs, so the failure budget applies per row segment
  //    of one CNT length instead of per device — an M_Rmin = 360X
  //    relaxation for L_CNT = 200 µm at 1.8 critical FETs/µm.
  yield::RowParams rows;
  rows.l_cnt = 200.0e3;
  rows.fets_per_um = 1.8;
  rows.m_min = base.m_min;
  yield::WminRequest relaxed = req;
  relaxed.relaxation = yield::m_r_min(rows);
  const auto opt = yield::solve_w_min(spectrum, device, relaxed);
  std::printf("W_min with correlation:    %.1f nm  (%.0fX relaxation)\n",
              opt.w_min, relaxed.relaxation);
  std::printf("\n=> upsizing target drops by %.0f nm; see "
              "examples/openrisc_case_study for the full power story.\n",
              base.w_min - opt.w_min);
  return 0;
}
