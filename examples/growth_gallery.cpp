// Renders the paper's Fig 3.1 as SVG: the three growth/layout combinations
// whose correlation structure Table 1 quantifies —
//
//   (a) non-aligned layout on uncorrelated CNT growth
//   (b) non-aligned layout on directional CNT growth
//   (c) aligned-active layout on directional CNT growth
//
// Each panel shows a ~1 µm² field of CNTs with two CNFET active regions
// ("FET 1", "FET 2"); in (c) the regions share exactly the same tubes.
//
// Usage: growth_gallery [--out-dir=.] [--seed=7]
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "cnt/growth.h"
#include "geom/svg.h"
#include "util/cli.h"

namespace {

using namespace cny;

constexpr double kField = 1000.0;  // 1 µm panel

void draw_fet(geom::SvgWriter& svg, const geom::Rect& active,
              const std::string& label) {
  svg.rect(active, "#88cc88", "#226622", 4.0, 0.55);
  // Gate stripe through the middle of the active region.
  svg.rect({active.x + active.w * 0.42, active.y - 18.0, active.w * 0.16,
            active.h + 36.0},
           "#cc4444", "none", 0.0, 0.8);
  svg.text({active.x, active.top() + 10.0}, label, 34.0);
}

void draw_tube(geom::SvgWriter& svg, const cnt::Cnt& tube) {
  if (tube.removed) return;  // post-removal view
  const std::string colour = tube.metallic ? "#cc2222" : "#333333";
  const double dx = std::cos(tube.angle), dy = std::sin(tube.angle);
  svg.line({tube.x0 - tube.length * dx * 0.5,
            tube.y - tube.length * dy * 0.5},
           {tube.x0 + tube.length * dx * 0.5,
            tube.y + tube.length * dy * 0.5},
           colour, 1.6);
}

void panel_uncorrelated(const std::string& path, std::uint64_t seed) {
  rng::Xoshiro256 rng(seed);
  cnt::ProcessParams process = cnt::fig21_mid();
  process.p_remove_m = 0.0;  // pre-removal view, show the metallic tubes
  const cnt::UncorrelatedGrowth growth(60.0, 700.0, process);
  geom::SvgWriter svg({0.0, 0.0, kField, kField}, 480.0);
  for (const auto& tube :
       growth.generate_field(rng, {0.0, 0.0, kField, kField})) {
    draw_tube(svg, tube);
  }
  draw_fet(svg, {160.0, 560.0, 240.0, 160.0}, "FET 1");
  draw_fet(svg, {600.0, 240.0, 240.0, 160.0}, "FET 2");
  svg.save(path);
  std::printf("wrote %s  (Fig 3.1a)\n", path.c_str());
}

void panel_directional(const std::string& path, std::uint64_t seed,
                       bool aligned) {
  rng::Xoshiro256 rng(seed);
  cnt::ProcessParams process = cnt::fig21_mid();
  process.p_remove_m = 0.0;
  // Sparser pitch than production (40 nm) so individual tubes are visible.
  const cnt::DirectionalGrowth growth(cnt::PitchModel(40.0, 0.9), process,
                                      200.0e3);
  geom::SvgWriter svg({0.0, 0.0, kField, kField}, 480.0);
  for (const auto& tube : growth.generate_band(rng, 0.0, kField, kField)) {
    svg.line({0.0, tube.y}, {kField, tube.y},
             tube.metallic ? "#cc2222" : "#333333", 1.6);
  }
  if (aligned) {
    // Fig 3.1c: same y-interval -> the FETs share the same CNTs.
    draw_fet(svg, {160.0, 420.0, 240.0, 160.0}, "FET 1");
    draw_fet(svg, {600.0, 420.0, 240.0, 160.0}, "FET 2");
  } else {
    // Fig 3.1b: directional tubes but offset active regions.
    draw_fet(svg, {160.0, 560.0, 240.0, 160.0}, "FET 1");
    draw_fet(svg, {600.0, 240.0, 240.0, 160.0}, "FET 2");
  }
  svg.save(path);
  std::printf("wrote %s  (Fig 3.1%c)\n", path.c_str(), aligned ? 'c' : 'b');
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const std::string out = cli.get("out-dir", ".");
  const auto seed = static_cast<std::uint64_t>(cli.get_long("seed", 7));
  panel_uncorrelated(out + "/fig3_1a_uncorrelated.svg", seed);
  panel_directional(out + "/fig3_1b_directional_nonaligned.svg", seed + 1,
                    false);
  panel_directional(out + "/fig3_1c_directional_aligned.svg", seed + 1, true);
  std::printf("\nIn (c) both FETs intersect the same tubes: their CNT-count "
              "failures are fully correlated,\nwhich is the mechanism Table 1 "
              "quantifies (p_RF = p_F instead of M_Rmin * p_F).\n");
  return 0;
}
