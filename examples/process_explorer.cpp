// Process/design co-exploration: the decision-support view a CNFET process
// engineer would use. Combines the extension modules:
//
//   * removal selectivity frontier -> per-CNT failure probability
//   * W_min / power penalty across the four layout strategies (YieldFlow)
//   * short-mode (p_Rm < 1) required removal efficiency
//   * finite CNT length: how the correlation credit degrades with L_CNT
//
// Usage: process_explorer [--selectivity=4.24] [--prm=0.9999]
//                         [--yield=0.90] [--lcnt-um=200]
#include <cmath>
#include <cstdio>
#include <iostream>

#include "celllib/generator.h"
#include "cnt/removal_tradeoff.h"
#include "device/short_model.h"
#include "netlist/design_generator.h"
#include "util/cli.h"
#include "yield/flow.h"
#include "yield/length_variation.h"
#include "yield/wmin_solver.h"

int main(int argc, char** argv) {
  using namespace cny;
  const util::Cli cli(argc, argv);

  const double selectivity = cli.get_double("selectivity", 4.24);
  const double p_rm = cli.get_double("prm", 0.9999);
  const double l_cnt = cli.get_double("lcnt-um", 200.0) * 1000.0;

  // 1. Removal process working point.
  const cnt::RemovalTradeoff tradeoff(selectivity);
  const auto process = tradeoff.process_at(p_rm);
  std::printf("removal process: selectivity %.2f sigma, p_Rm = %.4f%% -> "
              "p_Rs = %.1f%%, p_f = %.3f\n\n",
              selectivity, 100.0 * p_rm, 100.0 * process.p_remove_s,
              process.p_fail());

  // 2. Strategy comparison on the OpenRISC-like case study.
  const auto lib = celllib::make_nangate45_like();
  const auto design = netlist::make_openrisc_like(lib);
  const device::FailureModel model(cnt::PitchModel(4.0, 0.9), process);
  yield::FlowParams flow_params;
  flow_params.yield_desired = cli.get_double("yield", 0.90);
  flow_params.l_cnt = l_cnt;
  const auto flow = yield::run_flow(lib, design, model, flow_params);
  std::cout << flow.summary_table().to_text() << '\n';

  // 3. Short mode: is this p_Rm good enough, and what would the chip need?
  const device::ShortModel shorts(cnt::PitchModel(4.0, 0.9), process);
  const double w_ref = flow.get(yield::Strategy::AlignedOneRow).w_min;
  std::printf("short mode at W = %.0f nm: P(device keeps an m-CNT) = %.3e\n",
              w_ref, shorts.p_short_device(w_ref));
  const double needed = device::ShortModel::required_p_rm(
      cnt::PitchModel(4.0, 0.9), process.p_metallic, w_ref, 1e8, 0.01,
      flow_params.yield_desired);
  std::printf("p_Rm required for 100M devices (1%% noise-failure odds): "
              "%.6f%%  -> %s\n\n",
              100.0 * needed,
              p_rm >= needed ? "current process OK"
                             : "current process INSUFFICIENT");

  // 4. Finite CNT length: correlation credit erosion.
  std::printf("finite-CNT-length check (aligned row, 1.8 FETs/um):\n");
  std::printf("%-14s %-22s %-18s\n", "L_CNT (um)", "effective sharing",
              "of paper's M_Rmin");
  const double lambda_s = -std::log(model.p_f(w_ref)) / w_ref;
  for (double l_um : {50.0, 100.0, 200.0, 400.0}) {
    const int n = static_cast<int>(l_um * 1.8);
    std::vector<double> pos;
    for (int i = 0; i < n; ++i) pos.push_back(i * 1000.0 / 1.8);
    const double share = yield::effective_sharing(
        lambda_s, w_ref, pos, yield::LengthModel{l_um * 1000.0, 0.0});
    std::printf("%-14.0f %-22.1f %.1f%%\n", l_um, share,
                100.0 * share / n);
  }
  std::printf("\n(perfect sharing would give 100%%; the shortfall is the\n"
              " residual-independence effect of random tube boundaries —\n"
              " see DESIGN.md, finite-length extension)\n");
  return 0;
}
