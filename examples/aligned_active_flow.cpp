// The Sec 3.2 aligned-active enforcement flow on a whole cell library:
//
//   load/generate library -> pick W_min -> apply the aligned-active
//   transform (one or two rows per polarity) -> report per-cell penalties
//   -> render the AOI222_X1 before/after layout (the paper's Fig 3.2)
//   -> save both libraries in liberty-lite format.
//
// Usage: aligned_active_flow [--library=nangate45|commercial65]
//                            [--wmin=103] [--rows=1] [--out-dir=.]
#include <cstdio>
#include <string>

#include "celllib/generator.h"
#include "celllib/liberty_lite.h"
#include "geom/svg.h"
#include "layout/aligned_active.h"
#include "util/cli.h"

namespace {

using namespace cny;

/// Renders a cell's active regions: n-type green, p-type blue; critical
/// regions outlined (the paper highlights them with dashed yellow).
void render_cell(const celllib::Cell& cell, double w_min,
                 const std::string& path) {
  geom::SvgWriter svg(geom::Rect{-20.0, -20.0, cell.width + 40.0,
                                 cell.height + 40.0},
                      640.0);
  svg.rect({0.0, 0.0, cell.width, cell.height}, "none", "#404040", 4.0);
  for (std::size_t r = 0; r < cell.regions.size(); ++r) {
    const auto& region = cell.regions[r];
    const bool critical =
        cell.region_fet_width(static_cast<int>(r)) <= w_min + 1e-9;
    const std::string fill =
        region.polarity == celllib::Polarity::N ? "#77cc77" : "#7799ee";
    svg.rect(region.rect, fill, critical ? "#ccaa00" : "#303030",
             critical ? 8.0 : 2.0, 0.85);
  }
  for (const auto& pin : cell.pins) {
    svg.line({pin.x, -12.0}, {pin.x, 0.0}, "#aa2222", 6.0);
    svg.text({pin.x - 14.0, -34.0}, pin.name, 30.0);
  }
  svg.text({8.0, cell.height + 6.0}, cell.name, 36.0);
  if (!svg.save(path)) {
    std::printf("  (could not write %s)\n", path.c_str());
  } else {
    std::printf("  wrote %s\n", path.c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const std::string which = cli.get("library", "nangate45");
  const bool is_nangate = which == "nangate45";
  const auto lib = is_nangate ? celllib::make_nangate45_like()
                              : celllib::make_commercial65_like();
  const auto rules = is_nangate ? celllib::nangate45_rules()
                                : celllib::commercial65_rules();

  layout::AlignOptions options;
  options.w_min = cli.get_double("wmin", is_nangate ? 103.0 : 107.0);
  options.rows_per_polarity = static_cast<int>(cli.get_long("rows", 1));
  const std::string out = cli.get("out-dir", ".");

  std::printf("aligned-active enforcement on %s (%zu cells), W_min = %.0f, "
              "%d row(s) per polarity\n\n",
              lib.name().c_str(), lib.size(), options.w_min,
              options.rows_per_polarity);

  const auto result =
      layout::align_active(lib, options, rules.active_spacing);

  std::printf("global grid rows: n-active y = %.1f, p-active y = %.1f\n",
              result.grid_y_n, result.grid_y_p);
  std::printf("cells widened: %zu of %zu (%.1f%%), penalty %.1f%% - %.1f%%\n\n",
              result.cells_with_penalty(), lib.size(),
              100.0 * double(result.cells_with_penalty()) / double(lib.size()),
              100.0 * result.min_penalty(), 100.0 * result.max_penalty());

  std::printf("%-16s %-12s %-12s %-8s\n", "cell", "old width", "new width",
              "penalty");
  for (const auto& p : result.penalties) {
    if (p.penalty() > 1e-6) {
      std::printf("%-16s %-12.0f %-12.0f %.1f%%\n", p.cell.c_str(),
                  p.old_width, p.new_width, 100.0 * p.penalty());
    }
  }

  // Fig 3.2: AOI222_X1 before and after.
  const std::string showcase = is_nangate ? "AOI222_X1" : "AOI222_X1";
  if (const auto* before = lib.find(showcase)) {
    std::printf("\nrendering %s before/after (paper Fig 3.2):\n",
                showcase.c_str());
    render_cell(*before, options.w_min, out + "/" + showcase + "_before.svg");
    render_cell(*result.library.find(showcase), options.w_min,
                out + "/" + showcase + "_after.svg");
  }

  // Persist both libraries for downstream flows.
  celllib::save_liberty_lite(lib, out + "/" + lib.name() + ".lib");
  celllib::save_liberty_lite(result.library,
                             out + "/" + lib.name() + "_aligned.lib");
  std::printf("\nwrote %s/%s.lib and %s/%s_aligned.lib\n", out.c_str(),
              lib.name().c_str(), out.c_str(), lib.name().c_str());
  return 0;
}
