// Upsizing power penalty and technology-scaling study (Sec 2.2, Fig 2.2b,
// Fig 3.3).
//
// Power (static and dynamic) is roughly proportional to total transistor
// width, so the paper measures the upsizing cost as the percentage increase
// of total gate capacitance:
//
//   penalty(W_min) = [ Σ max(W_i, W_min) - Σ W_i ] / Σ W_i.
//
// The scaling analysis shrinks the width distribution linearly with the
// technology node while the inter-CNT pitch stays at 4 nm, then re-solves
// W_min per node (the p_F(W) curve is node-independent, but M_min changes
// with the scaled distribution).
#pragma once

#include <vector>

#include "device/failure_model.h"
#include "yield/circuit_yield.h"
#include "yield/wmin_solver.h"

namespace cny::power {

/// Gate-capacitance penalty of upsizing `spectrum` to `w_min` (fraction).
[[nodiscard]] double upsizing_penalty(const yield::WidthSpectrum& spectrum,
                                      double w_min);

struct NodeResult {
  double node_nm = 0.0;
  double w_min = 0.0;          ///< solved threshold width at this node (nm)
  double penalty = 0.0;        ///< capacitance penalty (fraction)
  std::uint64_t m_min = 0;     ///< devices at/below threshold
  double p_f_target = 0.0;
};

struct ScalingStudy {
  std::vector<NodeResult> nodes;
};

/// Runs the Fig 2.2b / Fig 3.3 study: for each node in `nodes_nm`, scale the
/// 45 nm-referenced spectrum by node/45, solve W_min under `request`
/// (relaxation = 1 for "without correlation", ~350 for the optimised flow),
/// and compute the penalty.
[[nodiscard]] ScalingStudy scaling_study(const yield::WidthSpectrum& spectrum_45,
                                         const device::FailureModel& model,
                                         const yield::WminRequest& request,
                                         const std::vector<double>& nodes_nm);

}  // namespace cny::power
