#include "power/penalty.h"

#include <algorithm>

#include "util/contracts.h"

namespace cny::power {

double upsizing_penalty(const yield::WidthSpectrum& spectrum, double w_min) {
  CNY_EXPECT(!spectrum.empty());
  CNY_EXPECT(w_min >= 0.0);
  double base = 0.0;
  double upsized = 0.0;
  for (const auto& [w, n] : spectrum) {
    CNY_EXPECT(w > 0.0);
    const double count = static_cast<double>(n);
    base += w * count;
    upsized += std::max(w, w_min) * count;
  }
  CNY_ENSURE(base > 0.0);
  return (upsized - base) / base;
}

ScalingStudy scaling_study(const yield::WidthSpectrum& spectrum_45,
                           const device::FailureModel& model,
                           const yield::WminRequest& request,
                           const std::vector<double>& nodes_nm) {
  CNY_EXPECT(!nodes_nm.empty());
  ScalingStudy study;
  for (double node : nodes_nm) {
    CNY_EXPECT(node > 0.0);
    const auto spectrum =
        yield::scale_spectrum(spectrum_45, node / 45.0, 1.0);
    const auto solved = yield::solve_w_min(spectrum, model, request);
    NodeResult r;
    r.node_nm = node;
    r.w_min = solved.w_min;
    r.m_min = solved.m_min;
    r.p_f_target = solved.p_f_target;
    r.penalty = upsizing_penalty(spectrum, solved.w_min);
    study.nodes.push_back(r);
  }
  return study;
}

}  // namespace cny::power
