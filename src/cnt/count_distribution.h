// Probability distribution of the CNT count N(W) in a CNFET of width W
// ([Zhang 09a] model, Sec 2.1 of the paper).
//
// With CNT positions a stationary Gamma(k, θ) renewal process, the distance
// to the first CNT follows the equilibrium law f_e, and the next n-1 gaps sum
// to a Gamma((n-1)k, θ) variable, so
//
//   P{N(W) >= n} = ∫_0^W f_e(u) · F_{(n-1)k,θ}(W - u) du,      n >= 1
//   P{N(W) = n}  = ∫_0^W f_e(u) · [Q_{nk,θ}(W-u) - Q_{(n-1)k,θ}(W-u)] du
//
// where F/Q are the regularized incomplete-gamma CDF/CCDF. The PMF form uses
// *upper* tails so the deep-tail probabilities that dominate p_F (eq. 2.2)
// are computed with full relative precision instead of catastrophic
// cancellation between two values near 1.
#pragma once

#include <vector>

#include "cnt/pitch_model.h"

namespace cny::cnt {

class CountDistribution {
 public:
  /// Computes the PMF of N(W) for window width `width` (nm, >= 0).
  CountDistribution(const PitchModel& pitch, double width);

  [[nodiscard]] double width() const { return width_; }
  [[nodiscard]] long max_n() const { return static_cast<long>(pmf_.size()) - 1; }

  /// P{N = n}; 0 beyond max_n().
  [[nodiscard]] double pmf(long n) const;
  [[nodiscard]] const std::vector<double>& pmf() const { return pmf_; }

  /// P{N >= n}; O(1) via suffix sums precomputed at construction (was an
  /// O(support) scan per call).
  [[nodiscard]] double tail(long n) const;

  [[nodiscard]] double mean() const { return mean_; }
  [[nodiscard]] double variance() const { return var_; }

  /// Probability generating function E[z^N] for z in [0, 1].
  /// pgf(p_f) is exactly the CNFET failure probability of eq. (2.2).
  [[nodiscard]] double pgf(double z) const;

  /// E[z^N(width)] without materialising the PMF: a named convenience
  /// wrapper over cnt::pf_truncated (cnt/pf_kernel.h — the kernel
  /// device::FailureModel::p_f_exact calls directly), which agrees with
  /// pgf(z) of a constructed distribution to ≤1e-12 relative while
  /// costing O(p_f·W/μ_S) terms on cached quadrature nodes instead of
  /// O(W/μ_S + 12σ) double quadratures.
  [[nodiscard]] static double pgf_at(const PitchModel& pitch, double width,
                                     double z);

  /// Total PMF mass (should be 1 up to quadrature error; exposed for tests).
  [[nodiscard]] double total_mass() const { return total_; }

 private:
  double width_;
  std::vector<double> pmf_;
  std::vector<double> suffix_;  ///< suffix_[n] = P{N >= n}
  double mean_ = 0.0;
  double var_ = 0.0;
  double total_ = 0.0;
};

}  // namespace cny::cnt
