#include "cnt/removal_tradeoff.h"

#include <cmath>

#include "util/contracts.h"

namespace cny::cnt {

double normal_cdf(double z) {
  return 0.5 * std::erfc(-z / std::sqrt(2.0));
}

double normal_quantile(double p) {
  CNY_EXPECT(p > 0.0 && p < 1.0);
  // Newton iteration on the CDF from a logistic seed — the CDF is smooth
  // and monotone, so a handful of steps reaches ~1e-14.
  double z = 4.91 * (std::pow(p, 0.14) - std::pow(1.0 - p, 0.14));
  for (int i = 0; i < 60; ++i) {
    const double f = normal_cdf(z) - p;
    const double pdf =
        std::exp(-0.5 * z * z) / std::sqrt(2.0 * 3.14159265358979323846);
    if (pdf < 1e-300) break;
    const double step = f / pdf;
    z -= step;
    if (std::fabs(step) < 1e-14 * (1.0 + std::fabs(z))) break;
  }
  return z;
}

RemovalTradeoff::RemovalTradeoff(double selectivity)
    : selectivity_(selectivity) {
  CNY_EXPECT(selectivity > 0.0);
}

double RemovalTradeoff::p_rs_at(double p_rm) const {
  CNY_EXPECT(p_rm > 0.0 && p_rm < 1.0);
  const double t = normal_quantile(p_rm);
  return normal_cdf(t - selectivity_);
}

ProcessParams RemovalTradeoff::process_at(double p_rm,
                                          double p_metallic) const {
  ProcessParams process;
  process.p_metallic = p_metallic;
  process.p_remove_m = p_rm;
  process.p_remove_s = p_rs_at(p_rm);
  process.validate();
  return process;
}

std::vector<RemovalPoint> RemovalTradeoff::frontier(double lo, double hi,
                                                    int n) const {
  CNY_EXPECT(0.0 < lo && lo < hi && hi < 1.0);
  CNY_EXPECT(n >= 2);
  // Sweep uniformly in probit space so the interesting high-p_Rm corner is
  // well resolved.
  const double t_lo = normal_quantile(lo);
  const double t_hi = normal_quantile(hi);
  std::vector<RemovalPoint> out;
  out.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const double t = t_lo + (t_hi - t_lo) * i / (n - 1);
    out.push_back(RemovalPoint{t, normal_cdf(t),
                               normal_cdf(t - selectivity_)});
  }
  return out;
}

double RemovalTradeoff::required_selectivity(double p_rm_target,
                                             double p_rs_budget) {
  CNY_EXPECT(p_rm_target > 0.0 && p_rm_target < 1.0);
  CNY_EXPECT(p_rs_budget > 0.0 && p_rs_budget < 1.0);
  return normal_quantile(p_rm_target) - normal_quantile(p_rs_budget);
}

}  // namespace cny::cnt
