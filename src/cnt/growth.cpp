#include "cnt/growth.h"

#include <cmath>
#include <numbers>

#include "kernels/mc_kernels.h"
#include "rng/distributions.h"
#include "util/contracts.h"

namespace cny::cnt {

double DiameterModel::sample(cny::rng::Xoshiro256& rng) const {
  return cny::rng::sample_lognormal_mean_sd(rng, mean, mean * cv);
}

DirectionalGrowth::DirectionalGrowth(PitchModel pitch, ProcessParams process,
                                     double cnt_length)
    : pitch_(pitch), process_(process), cnt_length_(cnt_length) {
  process_.validate();
  CNY_EXPECT(cnt_length > 0.0);
}

std::vector<Cnt> DirectionalGrowth::generate_band(cny::rng::Xoshiro256& rng,
                                                  double y_lo, double y_hi,
                                                  double x_extent) const {
  CNY_EXPECT(y_hi > y_lo);
  CNY_EXPECT(x_extent > 0.0);
  std::vector<Cnt> tubes;
  tubes.reserve(static_cast<std::size_t>((y_hi - y_lo) * pitch_.density()) + 8);
  double y = y_lo + pitch_.sample_equilibrium(rng);
  while (y < y_hi) {
    Cnt tube;
    tube.y = y;
    tube.length = cnt_length_;
    tube.x0 = rng.uniform(-cnt_length_, x_extent);
    tube.angle = 0.0;
    tube.diameter = diameter_.sample(rng);
    tube.metallic = cny::rng::sample_bernoulli(rng, process_.p_metallic);
    tube.removed = cny::rng::sample_bernoulli(
        rng, tube.metallic ? process_.p_remove_m : process_.p_remove_s);
    tubes.push_back(tube);
    y += pitch_.sample(rng);
  }
  return tubes;
}

std::vector<double> DirectionalGrowth::functional_positions(
    cny::rng::Xoshiro256& rng, double y_lo, double y_hi) const {
  CNY_EXPECT(y_hi > y_lo);  // before reserve(): its size math assumes it
  std::vector<double> ys;
  ys.reserve(static_cast<std::size_t>((y_hi - y_lo) * pitch_.density() *
                                      (1.0 - process_.p_fail())) +
             8);
  functional_positions(rng, y_lo, y_hi, ys);
  return ys;
}

void DirectionalGrowth::functional_positions(cny::rng::Xoshiro256& rng,
                                             double y_lo, double y_hi,
                                             std::vector<double>& out) const {
  CNY_EXPECT(y_hi > y_lo);
  const double pf = process_.p_fail();
  // Two phases with identical RNG consumption to the historical fused
  // loop. Phase 1 is inherently serial — gamma pitch sampling is
  // rejection-based, so the stream's draw order (pinned by the
  // (seed, n_streams) determinism contract) admits no reordering. It
  // records each tube's position and its Bernoulli uniform (the draw
  // sample_bernoulli would have made, in the same slot: one uniform per
  // tube, before the next pitch draw). Phase 2 — the survivor selection —
  // is pure compare + copy and runs through the vectorized kernel seam.
  thread_local std::vector<double> ys;
  thread_local std::vector<double> us;
  ys.clear();
  us.clear();
  double y = y_lo + pitch_.sample_equilibrium(rng);
  while (y < y_hi) {
    ys.push_back(y);
    us.push_back(rng.uniform());
    y += pitch_.sample(rng);
  }
  cny::kernels::thin_functional(ys, us, pf, out);
}

UncorrelatedGrowth::UncorrelatedGrowth(double tubes_per_um2,
                                       double tube_length,
                                       ProcessParams process)
    : density_per_nm2_(tubes_per_um2 * 1e-6),
      tube_length_(tube_length),
      process_(process) {
  CNY_EXPECT(tubes_per_um2 > 0.0);
  CNY_EXPECT(tube_length > 0.0);
  process_.validate();
}

std::vector<Cnt> UncorrelatedGrowth::generate_field(
    cny::rng::Xoshiro256& rng, const geom::Rect& area) const {
  CNY_EXPECT(!area.empty());
  // Expand the sampled region so tubes originating outside still cross it.
  const geom::Rect grown{area.x - tube_length_, area.y - tube_length_,
                         area.w + 2.0 * tube_length_,
                         area.h + 2.0 * tube_length_};
  const double lambda = density_per_nm2_ * grown.area();
  const long n = cny::rng::sample_poisson(rng, lambda);
  std::vector<Cnt> tubes;
  tubes.reserve(static_cast<std::size_t>(n));
  for (long i = 0; i < n; ++i) {
    Cnt tube;
    tube.x0 = rng.uniform(grown.left(), grown.right());
    tube.y = rng.uniform(grown.bottom(), grown.top());
    tube.length = tube_length_;
    tube.angle = rng.uniform(0.0, std::numbers::pi);
    tube.diameter = diameter_.sample(rng);
    tube.metallic = cny::rng::sample_bernoulli(rng, process_.p_metallic);
    tube.removed = cny::rng::sample_bernoulli(
        rng, tube.metallic ? process_.p_remove_m : process_.p_remove_s);
    tubes.push_back(tube);
  }
  return tubes;
}

}  // namespace cny::cnt
