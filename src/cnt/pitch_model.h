// Inter-CNT pitch model.
//
// CNT density variation is modelled as in [Zhang 09a]: positions of CNTs
// along the direction perpendicular to growth form a stationary renewal
// process whose inter-CNT pitch s has mean μ_S (4 nm, the optimised value of
// [Deng 07]) and coefficient of variation σ_S/μ_S. We give the pitch a
// Gamma(k, θ) law — it is non-negative, spans sub-Poisson (CV < 1) through
// super-Poisson (CV > 1) regularity, and its convolutions stay Gamma, which
// makes the CNT count distribution (count_distribution.h) computable with
// incomplete-gamma functions instead of brute-force convolution.
//
// CV = 1 recovers the Poisson process exactly (exponential pitch).
#pragma once

#include "rng/engine.h"

namespace cny::cnt {

class PitchModel {
 public:
  /// `mean` is μ_S in nm (> 0); `cv` is σ_S/μ_S (> 0).
  PitchModel(double mean, double cv);

  [[nodiscard]] double mean() const { return mean_; }
  [[nodiscard]] double cv() const { return cv_; }
  [[nodiscard]] double stddev() const { return mean_ * cv_; }
  /// Gamma shape k = 1/CV^2 and scale θ = μ_S · CV^2.
  [[nodiscard]] double shape() const { return shape_; }
  [[nodiscard]] double scale() const { return scale_; }
  /// Mean linear CNT density, 1/μ_S (per nm).
  [[nodiscard]] double density() const { return 1.0 / mean_; }
  [[nodiscard]] bool is_poisson() const;

  /// Pitch pdf/cdf.
  [[nodiscard]] double pdf(double s) const;
  [[nodiscard]] double cdf(double s) const;

  /// Stationary-renewal equilibrium (forward recurrence time) distribution:
  /// the distance from an arbitrary origin to the next CNT.
  ///   f_e(u) = (1 - F(u)) / μ_S
  ///   F_e(u) = [u (1 - F(u)) + μ_S F_{k+1}(u)] / μ_S      (closed form)
  [[nodiscard]] double equilibrium_pdf(double u) const;
  [[nodiscard]] double equilibrium_cdf(double u) const;

  /// u such that 1 - F(u) = eps (upper pitch quantile); used to truncate
  /// numerical integrals safely.
  [[nodiscard]] double upper_quantile(double eps) const;

  /// Draws an ordinary pitch.
  [[nodiscard]] double sample(cny::rng::Xoshiro256& rng) const;

  /// Draws from the equilibrium distribution (numeric inversion; exact
  /// exponential draw in the Poisson case).
  [[nodiscard]] double sample_equilibrium(cny::rng::Xoshiro256& rng) const;

 private:
  double mean_, cv_, shape_, scale_;
};

}  // namespace cny::cnt
