// Truncated-PGF evaluation of the CNFET failure probability (eq. 2.2).
//
// The full-PMF path (count_distribution.h) materialises every term of the
// CNT-count distribution out to n ≈ W/μ_S + 12σ before forming
// p_F = G_N(W)(p_f) = Σ pₙ·p_fⁿ — ~10⁴ incomplete-gamma evaluations per
// width query, the hot path of the W_min solver. This kernel computes the
// same quadrature values without building the PMF, with two structural
// changes:
//
//  1. **Truncation.** Because p_fⁿ decays geometrically, the series is cut
//     as soon as the certified remainder bound
//
//       Σ_{m≥n} pₘ·p_fᵐ  ≤  p_fⁿ · P{N ≥ n}
//
//     drops below rel_tol of the accumulated sum. P{N ≥ n} is available for
//     free as the not-yet-consumed quadrature mass, so the bound is exact
//     with respect to the quadrature — O(log(1/ε)/log(1/p_f)) extra terms
//     past the n ≈ p_f·W/μ_S bulk instead of the full 12σ sweep.
//
//  2. **Node-major evaluation.** The Gauss–Legendre grid is fixed once
//     (identical panel layout to CountDistribution, so results agree to
//     ≤1e-12 relative); f_e(u) and x = (W−u)/θ are cached per node, and the
//     shape a = nk is stepped upward across n. When the pitch shape k is an
//     integer (CV = 1/√k: the Poisson case and its sub-Poisson relatives)
//     the recurrence Q(a+1,x) = Q(a,x) + xᵃe⁻ˣ/Γ(a+1) makes each
//     additional PMF term cost O(nodes) multiplies; otherwise each term is
//     re-seeded per node with one upper incomplete gamma (still 3x fewer
//     gamma evaluations per term than the full path, which recomputes
//     f_e, Q(nk,·) and Q((n−1)k,·) at every node of every term).
#pragma once

#include "cnt/pitch_model.h"

namespace cny::cnt {

struct PfKernelResult {
  /// G_N(W)(z), normalised by the quadrature mass exactly like the
  /// full-PMF path (so the two agree to ≤1e-12 relative).
  double value = 0.0;
  /// PMF terms evaluated beyond n = 0 (the truncation point).
  long terms = 0;
  /// Certified bound on the truncated tail, relative to the same
  /// normalisation as `value`. Always ≤ rel_tol · value on exit.
  double remainder_bound = 0.0;
};

/// Evaluates the probability generating function E[z^N(W)] of the CNT count
/// in a width-`width` window, truncated once the remainder is certifiably
/// below `rel_tol` of the result. `z` in [0, 1]; z = p_f gives p_F(W).
[[nodiscard]] PfKernelResult pf_truncated(const PitchModel& pitch,
                                          double width, double z,
                                          double rel_tol = 1e-14);

}  // namespace cny::cnt
