// CNT-processing parameters (Sec 2.1 of the paper).
//
// During growth each CNT is metallic with probability p_m and semiconducting
// with probability p_s = 1 - p_m. An m-CNT removal step [Patil 09c] removes a
// metallic CNT with conditional probability p_Rm (>= 99.99 % required in
// practice, so the paper assumes p_Rm ≈ 1) and inadvertently removes a
// semiconducting CNT with conditional probability p_Rs.
#pragma once

#include "util/contracts.h"

namespace cny::cnt {

struct ProcessParams {
  double p_metallic = 0.33;   ///< p_m: probability a grown CNT is metallic
  double p_remove_m = 1.0;    ///< p_Rm: removal probability given metallic
  double p_remove_s = 0.0;    ///< p_Rs: removal probability given semiconducting

  void validate() const {
    CNY_EXPECT(p_metallic >= 0.0 && p_metallic <= 1.0);
    CNY_EXPECT(p_remove_m >= 0.0 && p_remove_m <= 1.0);
    CNY_EXPECT(p_remove_s >= 0.0 && p_remove_s <= 1.0);
  }

  /// Probability a CNT is semiconducting.
  [[nodiscard]] double p_semiconducting() const { return 1.0 - p_metallic; }

  /// Probability a single CNT contributes to CNT-count failure, eq. (2.1):
  /// p_f = p_m + p_s * p_Rs. A CNT is *functional* only if it is
  /// semiconducting and survives removal; an unremoved m-CNT conducts but
  /// provides no gate control, so it cannot avert a count failure either
  /// (hence p_f does not depend on p_Rm).
  [[nodiscard]] double p_fail() const {
    return p_metallic + p_semiconducting() * p_remove_s;
  }

  /// Probability a CNT is a *surviving metallic* CNT (source of the
  /// short/noise-margin failure mode of [Zhang 09b], tracked as an extension).
  [[nodiscard]] double p_short() const {
    return p_metallic * (1.0 - p_remove_m);
  }

  /// Whether a CNT of the given kind/removal outcome provides a working
  /// semiconducting channel.
  [[nodiscard]] static bool functional(bool metallic, bool removed) {
    return !metallic && !removed;
  }
};

/// The three processing conditions plotted in Fig 2.1.
[[nodiscard]] inline ProcessParams fig21_worst() {
  return {.p_metallic = 0.33, .p_remove_m = 1.0, .p_remove_s = 0.30};
}
[[nodiscard]] inline ProcessParams fig21_mid() {
  return {.p_metallic = 0.33, .p_remove_m = 1.0, .p_remove_s = 0.0};
}
[[nodiscard]] inline ProcessParams fig21_ideal() {
  return {.p_metallic = 0.0, .p_remove_m = 1.0, .p_remove_s = 0.0};
}

}  // namespace cny::cnt
