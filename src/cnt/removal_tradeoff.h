// m-CNT removal selectivity tradeoff.
//
// Removal processes like VMR [Patil 09c] trade metallic-removal efficiency
// p_Rm against collateral semiconducting loss p_Rs: pushing the removal
// "strength" (electrical stress / etch dose) up removes more m-CNTs but
// starts consuming s-CNTs. We model both removal probabilities as probit
// responses to a common strength t, separated by the process selectivity s
// (in sigma units):
//
//   p_Rm(t) = Φ(t),      p_Rs(t) = Φ(t - s).
//
// Sweeping t traces the achievable (p_Rm, p_Rs) frontier; the paper's
// working point (p_Rm ≈ 1, p_Rs = 30 %) corresponds to s ≈ 3.2 at
// p_Rm = 99.99 %. Used by the ablation bench to show how W_min responds to
// process selectivity.
#pragma once

#include <vector>

#include "cnt/process.h"

namespace cny::cnt {

struct RemovalPoint {
  double strength = 0.0;  ///< probit drive t
  double p_rm = 0.0;
  double p_rs = 0.0;
};

class RemovalTradeoff {
 public:
  /// `selectivity` — separation s in sigma units (> 0; larger is better).
  explicit RemovalTradeoff(double selectivity);

  [[nodiscard]] double selectivity() const { return selectivity_; }

  /// p_Rs achieved when the strength is tuned for the requested p_Rm.
  [[nodiscard]] double p_rs_at(double p_rm) const;

  /// The process point for a target p_Rm with the given metallic fraction.
  [[nodiscard]] ProcessParams process_at(double p_rm,
                                         double p_metallic = 0.33) const;

  /// Samples the frontier at `n` p_Rm values in [lo, hi].
  [[nodiscard]] std::vector<RemovalPoint> frontier(double lo = 0.90,
                                                   double hi = 0.9999,
                                                   int n = 20) const;

  /// Selectivity needed so that p_Rs stays at `p_rs_budget` when p_Rm is
  /// driven to `p_rm_target` (inverse problem).
  [[nodiscard]] static double required_selectivity(double p_rm_target,
                                                   double p_rs_budget);

 private:
  double selectivity_;
};

/// Standard normal CDF / inverse CDF used by the probit response (exposed
/// for tests).
[[nodiscard]] double normal_cdf(double z);
[[nodiscard]] double normal_quantile(double p);

}  // namespace cny::cnt
