// CNT count correlation between two CNFET windows.
//
// The paper's Sec 3.1 premise — "large correlation can be observed in both
// CNT count and CNT type" for aligned devices [Zhang 09a, Lin 09] — made
// quantitative: for two windows [0, W) and [d, d + W) in the same CNT
// population, this module computes the correlation coefficient of their
// counts, analytically for the Poisson pitch (corr = overlap/W) and by
// Monte Carlo for general renewal pitch. The aligned-active restriction is
// exactly the act of driving d -> 0 so this coefficient -> 1.
#pragma once

#include "cnt/pitch_model.h"
#include "rng/engine.h"

namespace cny::cnt {

struct CountCorrelation {
  double correlation = 0.0;  ///< Pearson correlation of the two counts
  double mean_a = 0.0;
  double mean_b = 0.0;
  double overlap = 0.0;      ///< overlap length of the two windows (nm)
};

/// Closed form for the Poisson (CV = 1) pitch: counts in the disjoint and
/// shared parts are independent Poissons, so corr = overlap / W.
[[nodiscard]] double poisson_count_correlation(double width, double offset);

/// Monte Carlo estimate for any pitch law: simulates `n_rows` realisations
/// of the stationary process and correlates the two window counts.
[[nodiscard]] CountCorrelation sample_count_correlation(
    const PitchModel& pitch, double width, double offset, std::size_t n_rows,
    rng::Xoshiro256& rng);

/// Type (metallic/semiconducting) correlation: for two windows sharing a
/// fraction f of their tubes, the fraction of *shared metallic* tubes seen
/// by both is f·p_m of each window's tubes; the correlation of the two
/// windows' metallic counts equals the shared-tube fraction f (types are
/// iid across tubes). Exposed for completeness of the Sec 3.1 argument.
[[nodiscard]] double shared_type_correlation(double width, double offset);

}  // namespace cny::cnt
