#include "cnt/correlation.h"

#include <algorithm>
#include <cmath>

#include "util/contracts.h"

namespace cny::cnt {

double poisson_count_correlation(double width, double offset) {
  CNY_EXPECT(width > 0.0);
  CNY_EXPECT(offset >= 0.0);
  return std::max(0.0, width - offset) / width;
}

double shared_type_correlation(double width, double offset) {
  // Types are iid marks on the tubes, so the metallic-count correlation of
  // two windows equals their shared-tube fraction — the same geometry as
  // the Poisson count correlation.
  return poisson_count_correlation(width, offset);
}

CountCorrelation sample_count_correlation(const PitchModel& pitch,
                                          double width, double offset,
                                          std::size_t n_rows,
                                          rng::Xoshiro256& rng) {
  CNY_EXPECT(width > 0.0);
  CNY_EXPECT(offset >= 0.0);
  CNY_EXPECT(n_rows >= 16);

  const double span = offset + width;
  double sum_a = 0.0, sum_b = 0.0, sum_aa = 0.0, sum_bb = 0.0, sum_ab = 0.0;
  for (std::size_t row = 0; row < n_rows; ++row) {
    long count_a = 0, count_b = 0;
    double y = pitch.sample_equilibrium(rng);
    while (y < span) {
      if (y < width) ++count_a;
      if (y >= offset) ++count_b;
      y += pitch.sample(rng);
    }
    const double a = static_cast<double>(count_a);
    const double b = static_cast<double>(count_b);
    sum_a += a;
    sum_b += b;
    sum_aa += a * a;
    sum_bb += b * b;
    sum_ab += a * b;
  }
  const double n = static_cast<double>(n_rows);
  const double mean_a = sum_a / n;
  const double mean_b = sum_b / n;
  const double var_a = sum_aa / n - mean_a * mean_a;
  const double var_b = sum_bb / n - mean_b * mean_b;
  const double cov = sum_ab / n - mean_a * mean_b;

  CountCorrelation out;
  out.mean_a = mean_a;
  out.mean_b = mean_b;
  out.overlap = std::max(0.0, width - offset);
  out.correlation =
      (var_a > 0.0 && var_b > 0.0) ? cov / std::sqrt(var_a * var_b) : 0.0;
  return out;
}

}  // namespace cny::cnt
