#include "cnt/pf_kernel.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "cnt/pf_kernel_internal.h"
#include "numeric/integrate.h"
#include "numeric/special.h"
#include "util/contracts.h"

namespace cny::cnt {

using cny::numeric::gamma_cdf;
using cny::numeric::gamma_q;

namespace {

/// P(a,x)/τ = 1 + x/(a+1) + x²/((a+1)(a+2)) + …, with the reciprocals
/// 1/(a+i) supplied by the per-term table: the shape is shared by every
/// node of a PMF term, so the serial division chain of the classic series
/// (NR's gamma_p_series pays one divide per iteration, and the divide
/// gates the loop-carried dependency) becomes one multiply per iteration.
/// Used on the x < a+1 side like the textbook split — there q = 1 − τ·sum
/// stays ≥ ~0.27, so the subtraction costs no relative precision. Returns
/// the series sum; the caller forms q.
inline double p_series_sum(double x, double eps,
                           const std::vector<double>& inv_shape) {
  double del = 1.0;
  double sum = 1.0;
  const std::size_t len = inv_shape.size();
  for (std::size_t i = 1; i < len; ++i) {
    del *= x * inv_shape[i];
    sum += del;
    if (del < sum * eps) break;
  }
  return sum;
}

}  // namespace

namespace detail {

PfGrid pf_setup(const PitchModel& pitch, double width) {
  PfGrid grid;
  grid.width = width;
  const double k = grid.k = pitch.shape();
  const double theta = grid.theta = pitch.scale();
  const double mu = pitch.mean();

  grid.p0 = std::max(0.0, 1.0 - pitch.equilibrium_cdf(width));

  // Node-major quadrature grid: the panel layout (split point, panel
  // counts, 16-point GL rule) replicates CountDistribution's construction,
  // but f_e(u)·w and x = (W-u)/θ are computed once instead of per term.
  const double u_cap = std::min(width, pitch.upper_quantile(kTailEps));
  const double u_split = std::min(0.5 * u_cap, theta);
  const int panels_head = 24;
  const int panels_tail = std::max(16, static_cast<int>(u_cap / mu) * 4 + 16);

  std::vector<double>& xs = grid.xs;
  std::vector<double>& fw = grid.fw;
  xs.reserve(16 * static_cast<std::size_t>(panels_head + panels_tail));
  fw.reserve(xs.capacity());
  const auto add_panels = [&](double a, double b, int panels) {
    const auto& gn = numeric::gl16_nodes();
    const auto& gw = numeric::gl16_weights();
    const double h = (b - a) / panels;
    for (int p = 0; p < panels; ++p) {
      const double c = a + (p + 0.5) * h;
      const double r = 0.5 * h;
      for (std::size_t i = 0; i < gn.size(); ++i) {
        for (const double u : {c - r * gn[i], c + r * gn[i]}) {
          const double x = (width - u) / theta;
          if (x <= 0.0) continue;
          xs.push_back(x);
          fw.push_back(gw[i] * r * pitch.equilibrium_pdf(u));
        }
      }
    }
  };
  add_panels(0.0, u_split, panels_head);
  add_panels(u_split, u_cap, panels_tail);
  const std::size_t n_nodes = xs.size();

  // Where the full-PMF path stops: at n_floor, or earlier once the whole
  // remaining count tail P{N > n} ≤ F_{nk}(W) is below kTailEps. Replicated
  // (gamma_cdf is decreasing in the shape, so binary search) because the
  // normalising mass must cover exactly the same support.
  const double expected = width / mu;
  const long n_floor =
      static_cast<long>(expected + 12.0 * std::sqrt(expected) + 16.0);
  long n_stop = n_floor;
  {
    long lo = std::max<long>(1, static_cast<long>(std::floor(expected)) + 1);
    long hi = n_floor;
    if (gamma_cdf(width, static_cast<double>(hi) * k, theta) < kTailEps) {
      while (lo < hi) {
        const long mid = lo + (hi - lo) / 2;
        if (gamma_cdf(width, static_cast<double>(mid) * k, theta) < kTailEps) {
          hi = mid;
        } else {
          lo = mid + 1;
        }
      }
      n_stop = lo;
    }
  }
  grid.n_stop = n_stop;

  // Quadrature mass of Σ_{n=1}^{n_stop} pₙ, via the telescoped form
  // ∫ f_e(u)·Q(n_stop·k, x) du — one gamma per node instead of n_stop.
  double mass_tail = 0.0;
  for (std::size_t j = 0; j < n_nodes; ++j) {
    mass_tail += fw[j] * gamma_q(static_cast<double>(n_stop) * k, xs[j]);
  }
  grid.mass_tail = mass_tail;
  grid.total = grid.p0 + mass_tail;
  CNY_ENSURE_MSG(std::fabs(grid.total - 1.0) < 1e-6,
                 "count PMF mass deviates from 1: quadrature failure");

  // Shape-stepping machinery (see pf_terms_scalar for how it is consumed).
  // Past x ≈ 650 the e^{-x} seed risks flushing to zero before the ladder
  // climbs out of the denormals, so wider windows fall back to plain
  // per-node gamma_q (still node-major + truncated).
  const long k_int = grid.k_int = std::lround(k);
  grid.prefactored = width / theta < kLadderMaxX;
  grid.ladder =
      std::fabs(k - static_cast<double>(k_int)) < 1e-9 && k_int >= 1 &&
      grid.prefactored;

  if (grid.prefactored) {
    grid.tau0.resize(n_nodes);
    for (std::size_t j = 0; j < n_nodes; ++j) grid.tau0[j] = std::exp(-xs[j]);
    if (!grid.ladder) {
      double x_max = 0.0;
      grid.xk.resize(n_nodes);
      for (std::size_t j = 0; j < n_nodes; ++j) {
        grid.xk[j] = std::pow(xs[j], k);
        x_max = std::max(x_max, xs[j]);
      }
      // Reciprocal table sized for the series' worst case, the slow decay
      // just below the x = a+1 split.
      grid.inv_len = static_cast<std::size_t>(16.0 * std::sqrt(x_max)) + 96;
    }
  }
  return grid;
}

PfKernelResult pf_terms_scalar(const PfGrid& grid, double z, double rel_tol) {
  const std::size_t n_nodes = grid.xs.size();
  const std::vector<double>& xs = grid.xs;
  const std::vector<double>& fw = grid.fw;
  const double k = grid.k;
  const long k_int = grid.k_int;
  const long n_stop = grid.n_stop;
  const double mass_tail = grid.mass_tail;

  // Both fast paths maintain the per-node ladder term
  // τ(a) = x^a e^{-x} / Γ(a+1), seeded at a = 0 (τ = e^{-x}):
  //  * integer k — the exact upward recurrence
  //      Q(a+1, x) = Q(a, x) + τ(a)
  //    stepped k times per PMF term; each per-n increment is an
  //    all-positive sum of ladder terms, so the PMF probabilities come out
  //    with no cancellation at all.
  //  * non-integer k — τ is stepped a → a+k in one multiply per node
  //    (τ ← τ · x^k · Γ(a+1)/Γ(a+k+1), the Γ-ratio shared across nodes)
  //    and seeds gamma_q_prefactored, which skips the per-call
  //    exp/log/lgamma prefactor and runs its series/continued fraction at
  //    a tolerance matched to the term's certified contribution budget.
  std::vector<double> q_prev(n_nodes, 0.0);  // Q((n-1)k, x): Q(0,·) := 0
  std::vector<double> tau = grid.tau0;       // empty on the gamma_q path
  std::vector<double> inv_shape(grid.inv_len);

  double acc = grid.p0;   // Σ_{m<n} pₘ z^m, raw quadrature values
  double cum_mass = 0.0;  // Σ_{1≤m<n} pₘ
  double zn = 1.0;        // z^(n-1)
  double shape = 0.0;     // ladder shape counter (n-1)·k
  double lg_prev = 0.0;   // lnΓ((n-1)·k + 1)
  long terms = 0;
  double rem_bound = 0.0;

  for (long n = 1; n <= n_stop; ++n) {
    zn *= z;
    // Certified truncation: everything not yet accumulated is bounded by
    // z^n · Σ_{m≥n} pₘ, and the count tail is the unconsumed quadrature
    // mass. Checked before paying for term n.
    rem_bound = zn * std::max(0.0, mass_tail - cum_mass);
    if (rem_bound <= rel_tol * acc) break;

    double term = 0.0;
    if (grid.ladder) {
      for (std::size_t j = 0; j < n_nodes; ++j) {
        const double x = xs[j];
        double t = tau[j];
        double dq = 0.0;
        for (long s = 0; s < k_int; ++s) {
          dq += t;
          t *= x / (shape + static_cast<double>(s) + 1.0);
        }
        tau[j] = t;
        term += fw[j] * dq;
      }
      shape += static_cast<double>(k_int);
    } else {
      const double a_hi = static_cast<double>(n) * k;
      if (grid.prefactored) {
        // The iteration tolerance may relax as the term's certified
        // contribution budget z^n·tail shrinks relative to the
        // accumulated sum; an eps error on term n moves the result by
        // ≤ eps · rem_bound. Clamped: the floor is the fp resolution,
        // the cap keeps relaxed terms honest.
        double eps = acc > 0.0 ? rel_tol * acc / rem_bound : 1e-15;
        eps = std::clamp(eps, 1e-15, 1e-6);
        const double lg_cur = std::lgamma(a_hi + 1.0);
        const double rho = std::exp(lg_prev - lg_cur);
        lg_prev = lg_cur;
        // This term's series denominators, shared by every node.
        for (std::size_t i = 1; i < inv_shape.size(); ++i) {
          inv_shape[i] = 1.0 / (a_hi + static_cast<double>(i));
        }
        for (std::size_t j = 0; j < n_nodes; ++j) {
          tau[j] *= grid.xk[j] * rho;
          const double x = xs[j];
          // x < a+1 runs the table-backed series; past the split,
          // gamma_q_prefactored takes its continued-fraction branch.
          const double q_hi =
              x < a_hi + 1.0
                  ? 1.0 - tau[j] * p_series_sum(x, eps, inv_shape)
                  : numeric::gamma_q_prefactored(a_hi, x, tau[j], eps);
          const double diff = q_hi - q_prev[j];
          q_prev[j] = q_hi;
          if (diff > 0.0) term += fw[j] * diff;
        }
      } else {
        for (std::size_t j = 0; j < n_nodes; ++j) {
          const double q_hi = gamma_q(a_hi, xs[j]);
          const double diff = q_hi - q_prev[j];
          q_prev[j] = q_hi;
          if (diff > 0.0) term += fw[j] * diff;
        }
      }
    }
    term = std::max(0.0, term);
    cum_mass += term;
    acc += term * zn;
    ++terms;
  }
  if (terms == n_stop) {
    // Ran the full support (z near 1): the certified remainder is whatever
    // quadrature mass the telescoped sum left behind, at the next z power.
    rem_bound = zn * z * std::max(0.0, mass_tail - cum_mass);
  }

  return {acc / grid.total, terms, rem_bound / grid.total};
}

}  // namespace detail

PfKernelResult pf_truncated(const PitchModel& pitch, double width, double z,
                            double rel_tol) {
  CNY_EXPECT(width >= 0.0);
  CNY_EXPECT(z >= 0.0 && z <= 1.0);
  CNY_EXPECT(rel_tol > 0.0);
  if (width == 0.0) return {1.0, 0, 0.0};  // N ≡ 0, G ≡ 1
  if (z == 1.0) return {1.0, 0, 0.0};      // G(1) = total mass / total mass

  const detail::PfGrid grid = detail::pf_setup(pitch, width);
  return detail::pf_terms_scalar(grid, z, rel_tol);
}

}  // namespace cny::cnt
