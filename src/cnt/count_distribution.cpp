#include "cnt/count_distribution.h"

#include <algorithm>
#include <cmath>

#include "cnt/pf_kernel.h"
#include "numeric/integrate.h"
#include "numeric/special.h"
#include "util/contracts.h"

namespace cny::cnt {

using cny::numeric::gamma_cdf;
using cny::numeric::gamma_q;
using cny::numeric::integrate_gl;

namespace {

/// Tail probabilities below this no longer contribute to any quantity the
/// library reports (p_F floors at ~1e-12 in the paper's figures).
constexpr double kTailEps = 1e-22;

}  // namespace

CountDistribution::CountDistribution(const PitchModel& pitch, double width)
    : width_(width) {
  CNY_EXPECT(width >= 0.0);
  const double k = pitch.shape();
  const double theta = pitch.scale();
  const double mu = pitch.mean();

  if (width == 0.0) {
    pmf_ = {1.0};
    suffix_ = {1.0};
    total_ = 1.0;
    return;
  }

  // P{N = 0} = 1 - F_e(W); use the closed tail form
  //   1 - F_e(W) = [μ Q_{k+1}(W) - W Q_k(W) + ... ] — equivalently computed
  // from equilibrium_cdf; clamp tiny negative rounding.
  const double p0 = std::max(0.0, 1.0 - pitch.equilibrium_cdf(width));

  // Integration domain: f_e(u) support effectively ends at the upper pitch
  // quantile; beyond it the integrand mass is < kTailEps.
  const double u_cap = std::min(width, pitch.upper_quantile(kTailEps));
  // Panel count scales with how many pitch scales the domain spans. The
  // first pitch-scale is integrated separately with dense panels because for
  // shape < 1 (CV > 1) the equilibrium density has unbounded derivative at 0.
  const double u_split = std::min(0.5 * u_cap, theta);
  const int panels_head = 24;
  const int panels_tail = std::max(16, static_cast<int>(u_cap / mu) * 4 + 16);

  pmf_.clear();
  pmf_.push_back(p0);

  const double expected = width / mu;
  const long n_floor = static_cast<long>(expected + 12.0 * std::sqrt(expected) + 16.0);

  for (long n = 1;; ++n) {
    const double a_hi = static_cast<double>(n) * k;        // shape of nk
    const double a_lo = static_cast<double>(n - 1) * k;    // shape of (n-1)k
    const auto integrand = [&](double u) {
      const double x = (width - u) / theta;
      if (x <= 0.0) return 0.0;
      const double q_hi = gamma_q(a_hi, x);
      const double q_lo = (n == 1) ? 0.0 : gamma_q(a_lo, x);
      const double diff = q_hi - q_lo;
      return diff > 0.0 ? pitch.equilibrium_pdf(u) * diff : 0.0;
    };
    const double p =
        std::max(0.0, integrate_gl(integrand, 0.0, u_split, panels_head) +
                          integrate_gl(integrand, u_split, u_cap, panels_tail));
    pmf_.push_back(p);

    // Stop once past the bulk and the remaining upper tail is negligible:
    // P{N >= n+1} <= F_{nk}(W).
    if (n >= n_floor) break;
    if (static_cast<double>(n) > expected &&
        gamma_cdf(width, a_hi, theta) < kTailEps) {
      break;
    }
  }

  total_ = 0.0;
  for (double p : pmf_) total_ += p;
  CNY_ENSURE_MSG(std::fabs(total_ - 1.0) < 1e-6,
                 "count PMF mass deviates from 1: quadrature failure");
  // Normalise: residual quadrature error lives in the bulk terms (each
  // computed to absolute ~1e-12), while the tail terms that dominate p_F are
  // relatively accurate; dividing by the mass fixes the bulk without
  // disturbing tail ratios.
  for (double& p : pmf_) p /= total_;

  mean_ = 0.0;
  double m2 = 0.0;
  for (std::size_t n = 0; n < pmf_.size(); ++n) {
    const double dn = static_cast<double>(n);
    mean_ += dn * pmf_[n];
    m2 += dn * dn * pmf_[n];
  }
  var_ = std::max(0.0, m2 - mean_ * mean_);

  // Suffix sums make tail() O(1); summing the tail upward keeps the tiny
  // deep-tail entries relatively accurate before the bulk mass joins.
  suffix_.resize(pmf_.size());
  double tail_acc = 0.0;
  for (std::size_t i = pmf_.size(); i-- > 0;) {
    tail_acc += pmf_[i];
    suffix_[i] = std::min(1.0, tail_acc);
  }
}

double CountDistribution::pmf(long n) const {
  CNY_EXPECT(n >= 0);
  const auto idx = static_cast<std::size_t>(n);
  return idx < pmf_.size() ? pmf_[idx] : 0.0;
}

double CountDistribution::tail(long n) const {
  CNY_EXPECT(n >= 0);
  const auto idx = static_cast<std::size_t>(n);
  return idx < suffix_.size() ? suffix_[idx] : 0.0;
}

double CountDistribution::pgf(double z) const {
  CNY_EXPECT(z >= 0.0 && z <= 1.0);
  double acc = 0.0;
  double zn = 1.0;
  for (double p : pmf_) {
    acc += p * zn;
    zn *= z;
  }
  return acc;
}

double CountDistribution::pgf_at(const PitchModel& pitch, double width,
                                 double z) {
  return pf_truncated(pitch, width, z).value;
}

}  // namespace cny::cnt
