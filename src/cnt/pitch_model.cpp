#include "cnt/pitch_model.h"

#include <cmath>

#include "numeric/roots.h"
#include "numeric/special.h"
#include "rng/distributions.h"
#include "util/contracts.h"

namespace cny::cnt {

using cny::numeric::gamma_cdf;
using cny::numeric::gamma_pdf;
using cny::numeric::gamma_q;

PitchModel::PitchModel(double mean, double cv) : mean_(mean), cv_(cv) {
  CNY_EXPECT(mean > 0.0);
  CNY_EXPECT(cv > 0.0);
  shape_ = 1.0 / (cv * cv);
  scale_ = mean * cv * cv;
}

bool PitchModel::is_poisson() const { return std::fabs(cv_ - 1.0) < 1e-12; }

double PitchModel::pdf(double s) const { return gamma_pdf(s, shape_, scale_); }

double PitchModel::cdf(double s) const { return gamma_cdf(s, shape_, scale_); }

double PitchModel::equilibrium_pdf(double u) const {
  if (u < 0.0) return 0.0;
  return gamma_q(shape_, u / scale_) / mean_;
}

double PitchModel::equilibrium_cdf(double u) const {
  if (u <= 0.0) return 0.0;
  const double q = gamma_q(shape_, u / scale_);
  const double f_k1 = gamma_cdf(u, shape_ + 1.0, scale_);
  const double val = (u * q + mean_ * f_k1) / mean_;
  // Guard against rounding just past 1 for large u.
  return val > 1.0 ? 1.0 : val;
}

double PitchModel::upper_quantile(double eps) const {
  CNY_EXPECT(eps > 0.0 && eps < 1.0);
  // Bracket: Gamma tails are sub-exponential in u/θ, so expand until the
  // tail is below eps.
  double hi = mean_;
  while (gamma_q(shape_, hi / scale_) > eps) hi *= 2.0;
  const auto res = cny::numeric::brent(
      [&](double u) { return gamma_q(shape_, u / scale_) - eps; }, 0.0, hi,
      1e-12 * mean_);
  return res.x;
}

double PitchModel::sample(cny::rng::Xoshiro256& rng) const {
  return cny::rng::sample_gamma(rng, shape_, scale_);
}

double PitchModel::sample_equilibrium(cny::rng::Xoshiro256& rng) const {
  if (is_poisson()) {
    // Equilibrium distribution of an exponential pitch is the same
    // exponential (memorylessness).
    return cny::rng::sample_exponential(rng, mean_);
  }
  const double u = rng.uniform();
  if (u <= 0.0) return 0.0;
  // Invert F_e by bracketed root finding; F_e is continuous and increasing.
  double hi = mean_;
  while (equilibrium_cdf(hi) < u) hi *= 2.0;
  const auto res = cny::numeric::brent(
      [&](double v) { return equilibrium_cdf(v) - u; }, 0.0, hi,
      1e-10 * mean_);
  return res.x;
}

}  // namespace cny::cnt
