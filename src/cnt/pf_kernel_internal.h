// Internals of the truncated-PGF kernel, shared between the scalar
// reference path (pf_kernel.cpp) and the batched kernel backends
// (src/kernels/). The split exists for one reason: bit-identity. The
// batched backends must replay *exactly* the floating-point op sequence of
// `pf_truncated` per width, so the width-dependent setup (quadrature grid,
// truncation point, normalising mass, ladder seeds) is built once here —
// by the same code, compiled in the same baseline-ISA translation unit —
// and only the term loop is re-implemented lane-parallel. Anything that
// changes a value in this header changes `pf_truncated` itself, and the
// bit-identity tests in tests/test_kernels.cpp will say so.
//
// Not part of the public API: include only from cnt/pf_kernel.cpp and the
// kernel backends.
#pragma once

#include <cstddef>
#include <vector>

#include "cnt/pf_kernel.h"
#include "cnt/pitch_model.h"

namespace cny::cnt::detail {

/// Same tail floor as count_distribution.cpp — the two paths must truncate
/// the quadrature domain and the PMF support identically to agree to 1e-12.
inline constexpr double kTailEps = 1e-22;

/// The integer-shape ladder is seeded at τ(0) = e^{-x}; past x ≈ 650 the
/// seed risks flushing to zero before the recurrence can climb out of the
/// denormals, so wider windows fall back to the per-node gamma_q path.
inline constexpr double kLadderMaxX = 650.0;

/// Everything about one width that does not depend on z or rel_tol: the
/// node-major quadrature grid, the PMF truncation point, the normalising
/// mass, and the shape-ladder seeds. Built by `pf_setup`, consumed by the
/// scalar term loop and (transposed into lanes) by the batched backends.
struct PfGrid {
  double width = 0.0;
  double k = 0.0;      ///< pitch shape
  double theta = 0.0;  ///< pitch scale
  std::vector<double> xs;  ///< per node: x = (W - u)/θ
  std::vector<double> fw;  ///< per node: GL-weight · f_e(u)
  double p0 = 0.0;         ///< P{N = 0} quadrature value
  double mass_tail = 0.0;  ///< quadrature mass of Σ_{n=1}^{n_stop} pₙ
  double total = 0.0;      ///< p0 + mass_tail (the normaliser)
  long n_stop = 0;         ///< PMF support truncation point
  bool prefactored = false;  ///< width/θ < kLadderMaxX: τ ladder usable
  bool ladder = false;       ///< integer shape: exact Q(a+1)=Q(a)+τ ladder
  long k_int = 0;            ///< rounded shape (ladder path step count)
  std::vector<double> tau0;  ///< τ seeds e^{-x} per node (prefactored only)
  std::vector<double> xk;    ///< x^k per node (non-integer prefactored only)
  std::size_t inv_len = 0;   ///< reciprocal-table length (non-integer only)
};

/// Builds the grid for one width (> 0). Throws via CNY_ENSURE when the
/// quadrature mass deviates from 1 (same contract as pf_truncated).
[[nodiscard]] PfGrid pf_setup(const PitchModel& pitch, double width);

/// The scalar term loop over a prebuilt grid: exactly the op sequence the
/// original single-width kernel ran after its setup. `pf_truncated` is
/// pf_setup + pf_terms_scalar.
[[nodiscard]] PfKernelResult pf_terms_scalar(const PfGrid& grid, double z,
                                             double rel_tol);

}  // namespace cny::cnt::detail
