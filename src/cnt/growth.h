// Generative CNT growth models producing explicit tube populations.
//
// Coordinate convention (matches Fig 3.1): directional CNTs run along +x;
// their y positions follow the stationary renewal pitch process. The
// uncorrelated model grows tubes at random positions/orientations (Fig 3.1a).
//
// These generators feed the Monte Carlo yield engine and the SVG renders;
// the analytic models (count_distribution.h) are validated against them.
#pragma once

#include <vector>

#include "cnt/pitch_model.h"
#include "cnt/process.h"
#include "geom/rect.h"
#include "rng/engine.h"

namespace cny::cnt {

/// One grown tube. For directional growth the tube occupies
/// x ∈ [x0, x0 + length) at constant y; for uncorrelated growth (angle != 0)
/// it is a segment starting at (x0, y) with direction `angle` radians.
struct Cnt {
  double y = 0.0;
  double x0 = 0.0;
  double length = 0.0;
  double angle = 0.0;       ///< 0 for directional growth
  double diameter = 1.5;    ///< nm; drives per-tube current, not count failure
  bool metallic = false;
  bool removed = false;

  /// Functional == semiconducting and not removed (provides gate-controlled
  /// conduction).
  [[nodiscard]] bool functional() const {
    return ProcessParams::functional(metallic, removed);
  }
  /// A surviving metallic tube (short / noise-margin hazard).
  [[nodiscard]] bool surviving_metallic() const { return metallic && !removed; }
  /// Whether the tube crosses coordinate x (directional tubes only).
  [[nodiscard]] bool covers_x(double x) const {
    return x >= x0 && x < x0 + length;
  }
};

/// Lognormal CNT diameter model (mean ~1.5 nm, CV ~0.15 unless overridden).
struct DiameterModel {
  double mean = 1.5;
  double cv = 0.15;
  [[nodiscard]] double sample(cny::rng::Xoshiro256& rng) const;
};

/// Directional (aligned) growth, e.g. on quartz [Kang 07, Patil 09b]:
/// perfectly parallel tubes of length `cnt_length` (the paper uses
/// L_CNT = 200 µm) whose y positions form the stationary pitch process.
class DirectionalGrowth {
 public:
  DirectionalGrowth(PitchModel pitch, ProcessParams process,
                    double cnt_length);

  [[nodiscard]] const PitchModel& pitch() const { return pitch_; }
  [[nodiscard]] const ProcessParams& process() const { return process_; }
  [[nodiscard]] double cnt_length() const { return cnt_length_; }

  /// Grows every tube whose y lies in [y_lo, y_hi) for a chip that spans
  /// x ∈ [0, x_extent). Tube x origins are uniform on [-L_CNT, x_extent) so
  /// coverage statistics are stationary in x. Applies the removal process.
  [[nodiscard]] std::vector<Cnt> generate_band(cny::rng::Xoshiro256& rng,
                                               double y_lo, double y_hi,
                                               double x_extent) const;

  /// Fast path for the yield MC: y positions of *functional* tubes within
  /// [y_lo, y_hi), ignoring x (valid when every FET x-span lies within one
  /// tube length — the paper's perfect-intra-L_CNT-correlation assumption).
  [[nodiscard]] std::vector<double> functional_positions(
      cny::rng::Xoshiro256& rng, double y_lo, double y_hi) const;

  /// Allocation-free variant for hot MC loops: clears `out` and fills it
  /// with the same positions (and identical RNG consumption) as the
  /// returning overload, reusing `out`'s capacity across calls.
  void functional_positions(cny::rng::Xoshiro256& rng, double y_lo,
                            double y_hi, std::vector<double>& out) const;

 private:
  PitchModel pitch_;
  ProcessParams process_;
  DiameterModel diameter_;
  double cnt_length_;
};

/// Non-directional growth (Fig 3.1a): tube centres form a 2-D Poisson field
/// of the requested areal density with uniformly random orientation. Used
/// for rendering and for validating that it yields *uncorrelated* CNFETs.
class UncorrelatedGrowth {
 public:
  /// `tubes_per_um2` — areal density of tube centres; `tube_length` nm.
  UncorrelatedGrowth(double tubes_per_um2, double tube_length,
                     ProcessParams process);

  [[nodiscard]] std::vector<Cnt> generate_field(cny::rng::Xoshiro256& rng,
                                                const geom::Rect& area) const;

 private:
  double density_per_nm2_;
  double tube_length_;
  ProcessParams process_;
  DiameterModel diameter_;
};

}  // namespace cny::cnt
