#include "service/json.h"

#include <charconv>
#include <cmath>

namespace cny::service {

namespace {

/// Hostile frames may nest arbitrarily; parsing is recursive, so bound the
/// depth well below any stack limit. Protocol messages use depth 3.
constexpr int kMaxDepth = 64;

[[noreturn]] void fail(const std::string& what) { throw JsonError(what); }

}  // namespace

Json Json::boolean(bool b) {
  Json v;
  v.type_ = Type::Bool;
  v.bool_ = b;
  return v;
}

Json Json::number(double d) {
  if (!std::isfinite(d)) fail("non-finite number has no JSON form");
  char buf[32];
  const auto res = std::to_chars(buf, buf + sizeof(buf), d);
  Json v;
  v.type_ = Type::Number;
  v.scalar_.assign(buf, res.ptr);
  return v;
}

Json Json::number(std::uint64_t u) {
  Json v;
  v.type_ = Type::Number;
  v.scalar_ = std::to_string(u);
  return v;
}

Json Json::string(std::string s) {
  Json v;
  v.type_ = Type::String;
  v.scalar_ = std::move(s);
  return v;
}

Json Json::array() {
  Json v;
  v.type_ = Type::Array;
  return v;
}

Json Json::object() {
  Json v;
  v.type_ = Type::Object;
  return v;
}

void Json::push_back(Json v) {
  if (type_ != Type::Array) fail("push_back on non-array");
  items_.push_back(std::move(v));
}

void Json::set(std::string key, Json v) {
  if (type_ != Type::Object) fail("set on non-object");
  for (const auto& [k, _] : members_) {
    if (k == key) fail("duplicate key '" + key + "'");
  }
  members_.emplace_back(std::move(key), std::move(v));
}

bool Json::as_bool() const {
  if (type_ != Type::Bool) fail("not a boolean");
  return bool_;
}

double Json::as_double() const {
  if (type_ != Type::Number) fail("not a number");
  // from_chars, not strtod: the wire format must not bend to the host
  // process's LC_NUMERIC locale.
  double d = 0.0;
  const auto res =
      std::from_chars(scalar_.data(), scalar_.data() + scalar_.size(), d);
  if (res.ec != std::errc() || res.ptr != scalar_.data() + scalar_.size()) {
    fail("number token out of double range: " + scalar_);
  }
  return d;
}

std::uint64_t Json::as_u64() const {
  if (type_ != Type::Number) fail("not a number");
  for (const char c : scalar_) {
    if (c < '0' || c > '9') fail("not an unsigned integer: " + scalar_);
  }
  std::uint64_t u = 0;
  const auto res =
      std::from_chars(scalar_.data(), scalar_.data() + scalar_.size(), u);
  if (res.ec != std::errc() || res.ptr != scalar_.data() + scalar_.size()) {
    fail("unsigned integer out of range: " + scalar_);
  }
  return u;
}

const std::string& Json::as_string() const {
  if (type_ != Type::String) fail("not a string");
  return scalar_;
}

const std::vector<Json>& Json::items() const {
  if (type_ != Type::Array) fail("not an array");
  return items_;
}

const std::vector<std::pair<std::string, Json>>& Json::members() const {
  if (type_ != Type::Object) fail("not an object");
  return members_;
}

const Json* Json::find(std::string_view key) const {
  if (type_ != Type::Object) fail("not an object");
  for (const auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

const Json& Json::at(std::string_view key) const {
  const Json* v = find(key);
  if (v == nullptr) fail("missing field '" + std::string(key) + "'");
  return *v;
}

namespace {

void dump_string(const std::string& s, std::string& out) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          constexpr char hex[] = "0123456789abcdef";
          out += "\\u00";
          out += hex[(c >> 4) & 0xF];
          out += hex[c & 0xF];
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

}  // namespace

std::string Json::dump() const {
  std::string out;
  switch (type_) {
    case Type::Null: out = "null"; break;
    case Type::Bool: out = bool_ ? "true" : "false"; break;
    case Type::Number: out = scalar_; break;
    case Type::String: dump_string(scalar_, out); break;
    case Type::Array: {
      out += '[';
      for (std::size_t i = 0; i < items_.size(); ++i) {
        if (i > 0) out += ',';
        out += items_[i].dump();
      }
      out += ']';
      break;
    }
    case Type::Object: {
      out += '{';
      for (std::size_t i = 0; i < members_.size(); ++i) {
        if (i > 0) out += ',';
        dump_string(members_[i].first, out);
        out += ':';
        out += members_[i].second.dump();
      }
      out += '}';
      break;
    }
  }
  return out;
}

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  Json run() {
    Json v = value(0);
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after JSON value");
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of JSON text");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) {
      fail(std::string("expected '") + c + "' at offset " +
           std::to_string(pos_));
    }
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  Json value(int depth) {
    if (depth > kMaxDepth) fail("JSON nested too deeply");
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{': return object(depth);
      case '[': return array(depth);
      case '"': return Json::string(string_body());
      case 't':
        if (consume_literal("true")) return Json::boolean(true);
        break;
      case 'f':
        if (consume_literal("false")) return Json::boolean(false);
        break;
      case 'n':
        if (consume_literal("null")) return Json();
        break;
      default: break;
    }
    if (c == '-' || (c >= '0' && c <= '9')) return number_token();
    fail(std::string("unexpected character '") + c + "' at offset " +
         std::to_string(pos_));
  }

  Json object(int depth) {
    expect('{');
    Json v = Json::object();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      std::string key = string_body();
      skip_ws();
      expect(':');
      v.set(std::move(key), value(depth + 1));
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == '}') return v;
      if (c != ',') fail("expected ',' or '}' in object");
    }
  }

  Json array(int depth) {
    expect('[');
    Json v = Json::array();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.push_back(value(depth + 1));
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == ']') return v;
      if (c != ',') fail("expected ',' or ']' in array");
    }
  }

  std::string string_body() {
    expect('"');
    std::string out;
    while (true) {
      const char c = peek();
      ++pos_;
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        fail("unescaped control character in string");
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      const char e = peek();
      ++pos_;
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': append_codepoint(out); break;
        default: fail("invalid escape sequence");
      }
    }
  }

  unsigned hex4() {
    unsigned v = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = peek();
      ++pos_;
      v <<= 4;
      if (c >= '0' && c <= '9') v |= static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f') v |= static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') v |= static_cast<unsigned>(c - 'A' + 10);
      else fail("invalid \\u escape");
    }
    return v;
  }

  void append_codepoint(std::string& out) {
    unsigned cp = hex4();
    if (cp >= 0xD800 && cp <= 0xDBFF) {
      // High surrogate: a low surrogate escape must follow.
      if (!consume_literal("\\u")) fail("unpaired surrogate in \\u escape");
      const unsigned lo = hex4();
      if (lo < 0xDC00 || lo > 0xDFFF) fail("invalid low surrogate");
      cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
    } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
      fail("unpaired surrogate in \\u escape");
    }
    // UTF-8 encode.
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xC0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      out += static_cast<char>(0xE0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (cp >> 18));
      out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  Json number_token() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    if (peek() == '0') {
      ++pos_;
    } else {
      if (peek() < '1' || peek() > '9') fail("invalid number");
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (peek() < '0' || peek() > '9') fail("invalid number fraction");
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (peek() < '0' || peek() > '9') fail("invalid number exponent");
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
    }
    // Token kept verbatim — the root of the byte-stability guarantee.
    Json v;
    v.type_ = Json::Type::Number;
    v.scalar_ = std::string(text_.substr(start, pos_ - start));
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

Json Json::parse(std::string_view text) { return JsonParser(text).run(); }

}  // namespace cny::service
