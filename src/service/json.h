// Minimal JSON document model for the service wire protocol (protocol.h).
//
// Deliberately tiny — objects, arrays, strings, numbers, booleans, null —
// because the protocol needs exactly one property a general-purpose library
// would not promise: *byte-stable canonical form*. Objects preserve
// insertion order and numbers keep their text token (programmatic numbers
// get the shortest round-trip form via std::to_chars), so
// dump(parse(dump(v))) == dump(v) byte for byte and doubles cross the wire
// bit-exactly. That is what lets the service pin "a response depends only
// on the request" as equality of frames, not approximate equality of
// floats.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace cny::service {

/// Malformed JSON text or a type-mismatched access. The server turns it
/// into an error frame rather than crashing.
class JsonError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class Json {
 public:
  enum class Type { Null, Bool, Number, String, Array, Object };

  /// Null by default.
  Json() = default;

  [[nodiscard]] static Json boolean(bool b);
  /// Finite doubles only (NaN/inf have no JSON form); the stored token is
  /// the shortest string that parses back to exactly `v`.
  [[nodiscard]] static Json number(double v);
  [[nodiscard]] static Json number(std::uint64_t v);
  [[nodiscard]] static Json string(std::string s);
  [[nodiscard]] static Json array();
  [[nodiscard]] static Json object();

  [[nodiscard]] Type type() const { return type_; }
  [[nodiscard]] bool is_null() const { return type_ == Type::Null; }

  /// Array append.
  void push_back(Json v);
  /// Object append; keys must be unique (checked).
  void set(std::string key, Json v);

  // Accessors throw JsonError on a type mismatch so protocol decoding can
  // report "field x has the wrong type" instead of reading garbage.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_double() const;
  /// Integer tokens only (no sign, fraction or exponent) — used for seeds
  /// and counts, where silent rounding through a double would corrupt.
  [[nodiscard]] std::uint64_t as_u64() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const std::vector<Json>& items() const;
  [[nodiscard]] const std::vector<std::pair<std::string, Json>>& members()
      const;

  /// Object member by key; nullptr when absent (throws when not an object).
  [[nodiscard]] const Json* find(std::string_view key) const;
  /// Object member by key; throws JsonError when absent.
  [[nodiscard]] const Json& at(std::string_view key) const;

  /// Canonical serialization: no whitespace, members in insertion order,
  /// number tokens verbatim, strings minimally escaped.
  [[nodiscard]] std::string dump() const;

  /// Parses one JSON value (throws JsonError on syntax errors, trailing
  /// garbage, or nesting deeper than an internal sanity bound).
  [[nodiscard]] static Json parse(std::string_view text);

 private:
  friend class JsonParser;  ///< stores parsed number tokens verbatim

  Type type_ = Type::Null;
  bool bool_ = false;
  std::string scalar_;  ///< number token or string value
  std::vector<Json> items_;
  std::vector<std::pair<std::string, Json>> members_;
};

}  // namespace cny::service
