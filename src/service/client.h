// YieldClient — the blocking client library for the yield service.
//
// Two transports behind one call interface:
//   * loopback — frames go straight into an in-process YieldServer's
//     submit() path (full protocol, no socket); what tests/benches use.
//   * TCP — one persistent connection to a `cntyield_cli serve` instance.
//
// Every call is synchronous: frame the request, send, block for the
// response frame, decode. An Error frame surfaces as a thrown
// ServiceError carrying the server's code and message.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

#include "service/protocol.h"

namespace cny::service {

class YieldServer;

/// An error frame from the server, or a transport failure.
class ServiceError : public std::runtime_error {
 public:
  ServiceError(std::string code, const std::string& message)
      : std::runtime_error(code + ": " + message), code_(std::move(code)) {}

  [[nodiscard]] const std::string& code() const { return code_; }

 private:
  std::string code_;
};

class YieldClient {
 public:
  /// In-process client over `server` (which must outlive the client).
  explicit YieldClient(YieldServer& server);
  /// TCP client; connects immediately, throws ServiceError on failure.
  /// `timeout_ms` bounds each response wait (flow responses included, so
  /// leave headroom for the server's compute).
  YieldClient(const std::string& host, std::uint16_t port,
              unsigned timeout_ms = 300000);
  ~YieldClient();
  YieldClient(YieldClient&& other) noexcept;
  YieldClient& operator=(YieldClient&&) = delete;
  YieldClient(const YieldClient&) = delete;
  YieldClient& operator=(const YieldClient&) = delete;

  /// Runs one flow request; throws ServiceError on an error frame.
  [[nodiscard]] yield::FlowResult call(const FlowRequest& request);

  /// Liveness probe; returns the server's version payload (JSON text).
  [[nodiscard]] std::string ping();

  /// Asks the server to shut down cleanly; returns once acknowledged.
  void shutdown_server();

 private:
  [[nodiscard]] std::string roundtrip(std::string frame);

  YieldServer* loopback_ = nullptr;
  int fd_ = -1;
  unsigned timeout_ms_ = 300000;
};

}  // namespace cny::service
