// YieldClient — the blocking client library for the yield service.
//
// Two transports behind one call interface:
//   * loopback — frames go straight into an in-process YieldServer's
//     submit() path (full protocol, no socket); what tests/benches use.
//   * TCP — one persistent connection to a `cntyield_cli serve` instance.
//
// Every call is synchronous: frame the request, send, block for the
// response frame, decode. An Error frame surfaces as a thrown
// ServiceError carrying the server's code and message.
//
// Retries: a RetryPolicy (off by default — max_attempts = 1) makes call()
// and ping() survive *transient* failures: transport errors (connection
// refused/reset/dropped, timeouts, undecodable or corrupt responses) and
// the transient error codes of protocol.h's is_transient_error
// (server_overloaded / try_later / shutting_down / deadline_exceeded).
// Terminal codes — bad_request, evaluation_failed, ... — are never
// retried: they are deterministic verdicts a retry would only repeat.
// Backoff is exponential with deterministic, seeded jitter, optionally
// bounded by an overall deadline budget; the TCP transport reconnects
// after a dropped connection. Retrying is safe because the service is
// deterministic and side-effect-free: the same request always produces
// the same response, so at-least-once delivery is indistinguishable from
// exactly-once.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

#include "obs/trace.h"
#include "service/protocol.h"

namespace cny::service {

class YieldServer;

/// An error frame from the server, or a transport failure.
class ServiceError : public std::runtime_error {
 public:
  ServiceError(std::string code, std::string message)
      : std::runtime_error(code + ": " + message),
        code_(std::move(code)),
        message_(std::move(message)) {}

  [[nodiscard]] const std::string& code() const { return code_; }
  /// The server's message alone (what() prepends the code).
  [[nodiscard]] const std::string& message() const { return message_; }
  /// Whether retrying the identical request is safe and may succeed
  /// (protocol.h taxonomy).
  [[nodiscard]] bool transient() const { return is_transient_error(code_); }

 private:
  std::string code_;
  std::string message_;
};

/// Retry policy for call() / ping(). Defaults are "no retries"; a caller
/// opting in sets max_attempts > 1. Backoff for attempt k (1-based) is
/// min(base * multiplier^(k-1), max) scaled by a jitter factor in
/// [0.5, 1.0) derived deterministically from (jitter_seed, k) — two
/// clients with different seeds desynchronise, one client replays its
/// exact schedule, and tests stay reproducible.
struct RetryPolicy {
  /// Total tries including the first (1 = no retries).
  unsigned max_attempts = 1;
  unsigned backoff_base_ms = 10;
  double backoff_multiplier = 2.0;
  unsigned backoff_max_ms = 2000;
  std::uint64_t jitter_seed = 1;
  /// Overall budget across all attempts, measured from the first send;
  /// when a backoff sleep would cross it the current error is rethrown
  /// instead. 0 = unbounded.
  std::uint64_t deadline_ms = 0;

  /// The jittered sleep before attempt `attempt + 1` (ms, >= 1).
  [[nodiscard]] unsigned backoff_ms(unsigned attempt) const;
};

class YieldClient {
 public:
  /// In-process client over `server` (which must outlive the client).
  explicit YieldClient(YieldServer& server);
  /// TCP client; connects immediately, throws ServiceError on failure.
  /// `timeout_ms` bounds each response wait (flow responses included, so
  /// leave headroom for the server's compute).
  YieldClient(const std::string& host, std::uint16_t port,
              unsigned timeout_ms = 300000);
  ~YieldClient();
  YieldClient(YieldClient&& other) noexcept;
  YieldClient& operator=(YieldClient&&) = delete;
  YieldClient(const YieldClient&) = delete;
  YieldClient& operator=(const YieldClient&) = delete;

  /// Retry policy applied by call() and ping() (never shutdown_server(),
  /// whose failure usually *is* the shutdown). Default: no retries.
  void set_retry_policy(const RetryPolicy& policy) { retry_ = policy; }
  [[nodiscard]] const RetryPolicy& retry_policy() const { return retry_; }

  /// Runs one flow request; throws ServiceError on an error frame (after
  /// exhausting the retry policy, if the failure was transient).
  [[nodiscard]] yield::FlowResult call(const FlowRequest& request);

  /// Liveness probe; returns the server's version payload (JSON text).
  [[nodiscard]] std::string ping();

  /// Metrics snapshot: sends a Stats frame and returns the StatsReply's
  /// canonical-JSON payload (the same shape ping() carries — see
  /// YieldServer::stats_json()). Retried like ping().
  [[nodiscard]] std::string stats();

  /// Attaches a trace sink (null = off): every call()/ping()/stats()
  /// attempt emits a "client.attempt" span with its attempt number and
  /// outcome, so a trace shows the retry schedule next to the server-side
  /// spans. Observational only — never changes retry behaviour. The sink
  /// must outlive the client.
  void set_trace_sink(obs::TraceSink* sink) { trace_ = sink; }

  /// Asks the server to shut down cleanly; returns once acknowledged.
  void shutdown_server();

 private:
  void connect_tcp();
  [[nodiscard]] std::string roundtrip(std::string frame);
  /// One attempt: roundtrip + decode; transport-class failures (dropped
  /// loopback response, unframeable bytes) become ServiceError.
  [[nodiscard]] Frame exchange(const std::string& frame);
  /// The retry loop around exchange(): transient errors back off and go
  /// again (reconnecting TCP first when the transport broke), terminal
  /// error frames throw immediately. `check_payload` additionally demands
  /// that a FlowResponse payload decodes — a corrupt-in-flight response
  /// is a transport failure, not a verdict.
  [[nodiscard]] Frame request_reply(const std::string& frame,
                                    bool check_payload);

  YieldServer* loopback_ = nullptr;
  int fd_ = -1;
  unsigned timeout_ms_ = 300000;
  std::string host_;
  std::uint16_t port_ = 0;
  RetryPolicy retry_;
  obs::TraceSink* trace_ = nullptr;
};

}  // namespace cny::service
