// Warm-model session cache: the piece that lets N clients pay ~1 warm-up.
//
// A *session* is everything expensive a FlowRequest needs that does not
// depend on the request's seed or yield target: the generated library, the
// FailureModel with its solver-bracket log-p_F interpolant already built
// (and an exact-value memo that keeps warming as requests arrive), and the
// synthetic designs, cached per instance count. Requests that share a
// (library, *derived* ProcessSpec) key share one session — a
// RemovalFrontier scenario is resolved to the corner it earns before
// keying, so scenario sweeps and explicit-corner requests reuse the same
// warm model and the truncated-PGF kernel's table-build cost is paid once
// per process corner, not per client.
//
// Sessions are handed out as shared_ptr<const Session>: eviction (LRU past
// `capacity`) never invalidates a session a coalesced batch is still
// evaluating against.
#pragma once

#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "celllib/library.h"
#include "device/failure_model.h"
#include "netlist/design.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "service/protocol.h"

namespace cny::service {

struct SessionKey {
  std::string library;  ///< "nangate45" | "commercial65"
  ProcessSpec process;

  /// Canonical text form — the cache's map key and the log label. Doubles
  /// are rendered shortest-round-trip, so distinct corners never collide.
  [[nodiscard]] std::string canonical() const;
};

/// Derives the cache key of a request: the library plus the process corner
/// after scenario derivation (RemovalFrontier's earned p_Rs replaces the
/// stated one; everything else in FlowParams stays per-request).
[[nodiscard]] SessionKey session_key(const FlowRequest& request);

class Session {
 public:
  /// Generates the library and warms the model: the log-p_F interpolant is
  /// built over the full W_min solver bracket with `interpolant_knots`
  /// knots on `n_threads` threads (0 = hardware concurrency). The optional
  /// observability hooks time the interpolant build (an
  /// "interpolant_build" span + histogram) — pure measurement, never
  /// behaviour.
  Session(SessionKey key, std::size_t interpolant_knots, unsigned n_threads,
          obs::TraceSink* trace = nullptr,
          obs::Histogram* build_histogram = nullptr);

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  [[nodiscard]] const SessionKey& key() const { return key_; }
  /// key().canonical(), computed once (the key is immutable).
  [[nodiscard]] const std::string& canonical() const { return canonical_; }
  [[nodiscard]] const celllib::Library& library() const { return lib_; }
  [[nodiscard]] const device::FailureModel& model() const { return model_; }

  /// The design for `instances` cell instances (0 = the OpenRISC-like
  /// default). Cached per distinct count with a small LRU cap — the
  /// instance count is client-controlled, so an unbounded cache would be a
  /// memory-exhaustion vector; shared ownership keeps a design alive for
  /// callers still holding it after eviction. Thread-safe.
  [[nodiscard]] std::shared_ptr<const netlist::Design> design(
      std::uint64_t instances) const;

 private:
  SessionKey key_;
  std::string canonical_;
  celllib::Library lib_;
  device::FailureModel model_;
  mutable std::mutex designs_mutex_;
  /// Most recently used first, at most kMaxCachedDesigns entries.
  mutable std::vector<
      std::pair<std::uint64_t, std::shared_ptr<const netlist::Design>>>
      designs_;
};

class SessionCache {
 public:
  /// Keeps at most `capacity` warm sessions (least recently used evicted
  /// first); new sessions warm their interpolant with `interpolant_knots`
  /// knots on `n_threads` threads.
  explicit SessionCache(std::size_t capacity,
                        std::size_t interpolant_knots = 65,
                        unsigned n_threads = 0);

  /// Attaches observability: cache misses bump `registry`'s
  /// "sessions_built" counter and feed its "session_warm_us" /
  /// "interpolant_build_us" histograms, emit "session_warm" /
  /// "interpolant_build" spans on `sink`, and write session.built /
  /// session.evicted events to `log` (any may be null). Call before
  /// serving — the hooks are read unlocked on the acquire path.
  void attach_observability(obs::Registry* registry, obs::TraceSink* sink,
                            obs::Log* log = nullptr);

  /// The warm session for `key`; builds it on a miss. Building holds the
  /// cache lock (misses are rare and seconds-long; concurrent requests for
  /// the *same* cold key must not warm it twice).
  [[nodiscard]] std::shared_ptr<const Session> acquire(const SessionKey& key);

  [[nodiscard]] std::size_t size() const;
  /// Total cache misses, i.e. sessions ever warmed (stats/tests).
  [[nodiscard]] std::uint64_t sessions_built() const;

 private:
  std::size_t capacity_;
  std::size_t interpolant_knots_;
  unsigned n_threads_;
  obs::TraceSink* trace_ = nullptr;
  obs::Log* log_ = nullptr;
  obs::Counter* built_counter_ = nullptr;
  obs::Gauge* occupancy_gauge_ = nullptr;
  obs::Histogram* warm_histogram_ = nullptr;
  obs::Histogram* build_histogram_ = nullptr;
  mutable std::mutex mutex_;
  /// Most recently used first.
  std::vector<std::shared_ptr<const Session>> sessions_;
  std::uint64_t built_ = 0;
};

}  // namespace cny::service
