// Deterministic fault-injection harness for the yield service.
//
// A FaultPlan decides, per frame and in arrival order, whether the wire
// "breaks" and how: the connection drops before or after the response, the
// response is delayed, truncated at byte K, gets one payload byte
// corrupted, the server answers a transient reject (`server_overloaded` /
// `try_later`) without evaluating, or dribbles a partial header and stalls
// (slow loris). The plan plugs into both transports via
// ServerOptions.fault_plan — the TCP path applies faults at the socket,
// the loopback submit() path applies the equivalent mutation to the
// response string — so every failure mode a production deployment can hit
// is reproducible in a unit test and in CI, byte for byte.
//
// Determinism contract: the decision for the n-th frame is a pure function
// of (options, n). Frames are numbered in arrival order; a retried request
// therefore lands on a *later* ordinal, which is why a plan with
// `period >= 2` can never fault the same logical request twice in a row —
// the property that lets the chaos campaign test put a hard bound on the
// retries it needs. `max_faults` optionally caps total injections so a
// finite retry budget is guaranteed to drain any workload.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace cny::service {

enum class FaultKind : std::uint32_t {
  /// Close the connection without evaluating the request.
  DropBeforeResponse,
  /// Evaluate, then close the connection without sending the response.
  DropAfterResponse,
  /// Deliver the response `delay_ms` late.
  Delay,
  /// Send only the first `at_byte` bytes of the response, then close.
  TruncateResponse,
  /// XOR one payload byte of the response (framing then fails to parse).
  CorruptPayloadByte,
  /// Answer an Error frame with the transient `error_code`, no evaluation.
  TransientReject,
  /// Dribble a partial header (< 16 bytes), stall `delay_ms`, then close.
  SlowLorisResponse,
};

struct FaultSpec {
  FaultKind kind = FaultKind::TransientReject;
  unsigned delay_ms = 0;        ///< Delay / SlowLorisResponse
  std::size_t at_byte = 0;      ///< TruncateResponse / CorruptPayloadByte
  std::string error_code = "try_later";  ///< TransientReject
};

/// Human-readable name ("drop", "delay", ...), for logs and CLI echoes.
[[nodiscard]] const char* to_string(FaultKind kind);

/// Parses a comma-separated fault list for the CLI (--chaos=...):
/// drop, drop-after, delay, truncate, corrupt, reject, slowloris — each
/// with harsh-but-fast built-in parameters (ms-scale delays). Throws
/// std::invalid_argument naming the offending token and the known names.
[[nodiscard]] std::vector<FaultSpec> fault_specs_from_names(
    const std::string& names);

struct FaultPlanOptions {
  /// Offsets the injection phase deterministically (which ordinals fault).
  std::uint64_t seed = 1;
  /// Inject into every `period`-th frame (0 = never inject). Keep >= 2 so
  /// an immediate retry of a faulted frame is never re-faulted.
  unsigned period = 0;
  /// Cap on total injections (0 = unlimited); bounds the retries any
  /// workload can need.
  std::uint64_t max_faults = 0;
  /// Rotation of faults for the injected ordinals; empty = never inject.
  std::vector<FaultSpec> faults;
};

class FaultPlan {
 public:
  /// The default plan never injects (what a ServerOptions without one
  /// behaves like).
  FaultPlan() = default;
  explicit FaultPlan(FaultPlanOptions options);

  /// The decision for the next frame, in arrival order. Thread-safe; the
  /// ordinal is consumed exactly once per call.
  [[nodiscard]] std::optional<FaultSpec> next();

  /// Total faults handed out so far.
  [[nodiscard]] std::uint64_t injected() const {
    return injected_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] bool enabled() const {
    return options_.period > 0 && !options_.faults.empty();
  }

 private:
  FaultPlanOptions options_;
  std::uint64_t phase_ = 0;  ///< seed-derived offset into the period
  std::atomic<std::uint64_t> ordinal_{0};
  std::atomic<std::uint64_t> injected_{0};
};

/// Applies `spec` to a response string — the loopback equivalent of the
/// socket-level fault (truncation, corruption, delay, slow-loris; drops
/// and rejects are handled before a response exists). Sleeps for delay
/// faults, so call it on the thread that owns the wait.
void apply_response_fault(const FaultSpec& spec, std::string& response);

}  // namespace cny::service
