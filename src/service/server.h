// YieldServer — the batching front end over warm FailureModels.
//
// Concurrently arriving FlowRequests are *coalesced*: a dispatcher thread
// collects everything that arrives within a short window, groups it by
// session key (library + *derived* process corner, see session_cache.h)
// and evaluates each group as one batch of run_flow jobs on that session's
// warm model, with per-job error capture — one bad request (e.g. an
// infeasible scenario) gets its own error frame and never poisons its
// batch. N clients therefore cost ~1 model warm-up plus their own MC
// work, instead of N cold starts.
//
// Determinism contract (pinned in tests/test_service.cpp): a response is a
// function of the request alone — (request params, seed, mc_streams) —
// never of how requests happened to batch, the coalescing window, or the
// server's thread count. This holds by construction: the session model
// carries its interpolant *before* serving, every job reads that same
// model whether it runs solo or in a batch (no per-batch table is ever
// built), and the exec subsystem already guarantees thread-count
// invariance.
//
// Transports:
//   * Loopback — submit() takes one request frame and yields the response
//     frame, running the full protocol path (decode, validate, coalesce,
//     evaluate, encode) with no socket. Tests and benches use this.
//   * TCP — a listener on 127.0.0.1 accepts length-framed connections and
//     serves them from an exec::ThreadPool; each frame is answered on the
//     same connection. `cntyield_cli serve` fronts this.
#pragma once

#include <cstdint>
#include <future>
#include <memory>
#include <string>

#include "obs/log.h"
#include "obs/trace.h"
#include "service/faults.h"
#include "service/protocol.h"
#include "service/session_cache.h"

namespace cny::service {

struct ServerOptions {
  /// Engage the TCP listener (loopback-only otherwise). Port 0 binds an
  /// ephemeral port — read it back with YieldServer::port().
  bool listen = false;
  std::uint16_t port = 7421;
  /// Compute threads per coalesced batch (0 = hardware concurrency).
  /// Scheduling only: responses are invariant under this knob.
  unsigned n_threads = 0;
  /// Requests arriving within this window of the first queued one join its
  /// batch. Purely a throughput/latency trade — see determinism contract.
  unsigned coalesce_window_us = 2000;
  /// Requests per dispatch cycle; later arrivals wait for the next cycle.
  std::size_t max_batch = 64;
  /// Warm (library, process) sessions kept alive, LRU-evicted.
  std::size_t cache_capacity = 4;
  /// Knots of each session's log-p_F interpolant.
  std::size_t interpolant_knots = 65;
  /// A TCP connection idle longer than this is closed. Also the bound on
  /// how long a slow-loris peer (partial header, then silence) can hold a
  /// connection handler.
  unsigned idle_timeout_ms = 30000;
  /// Admission bound: FlowRequests beyond this many already queued are
  /// answered with a transient `server_overloaded` error frame instead of
  /// queueing without bound (the client's retry policy backs off and tries
  /// again; memory stays bounded under overload).
  std::size_t max_queue = 1024;
  /// Deterministic fault-injection plan (faults.h); null = never inject.
  /// Applied at the transport boundary of both the TCP and loopback paths.
  std::shared_ptr<FaultPlan> fault_plan;
  /// Trace sink for per-request spans (admission, queue_wait,
  /// session_warm, interpolant_build, kernel_batch, evaluate, serialize).
  /// Null = tracing off, which is guaranteed zero-perturbation: responses
  /// and stores are byte-identical either way (pinned in tests).
  std::shared_ptr<obs::TraceSink> trace_sink;
  /// Engage the OpenMetrics HTTP listener: `GET /metrics` on
  /// 127.0.0.1:metrics_port answers the text exposition format. Port 0
  /// binds ephemeral — read it back with YieldServer::metrics_port().
  /// Served off the same exec::ThreadPool as the wire protocol.
  bool metrics_listen = false;
  std::uint16_t metrics_port = 0;
  /// Structured JSONL event log (lifecycle, evictions, overload rejects,
  /// deadline sheds). Null = logging off; same zero-perturbation contract
  /// as tracing.
  std::shared_ptr<obs::Log> log;
  /// Milliseconds between background resource samples (process.* gauges
  /// plus one SnapshotRing entry per tick). 0 = sampler off; scrapes and
  /// stats frames still refresh the gauges synchronously.
  unsigned sample_interval_ms = 0;
  /// When non-empty (with the sampler on), each tick appends one
  /// self-contained snapshot JSONL line here.
  std::string snapshot_export_path;
};

/// A point-in-time view over the server's obs::Registry counters (each
/// read atomically; the struct exists so call sites keep named-field
/// access and tests pin that every counter stays covered). The same
/// registry also feeds the per-stage latency histograms of the stats
/// frame — see YieldServer::stats_json().
struct ServerStats {
  std::uint64_t frames_in = 0;         ///< frames submitted (all types)
  std::uint64_t responses = 0;         ///< FlowResponse frames sent
  std::uint64_t errors = 0;            ///< Error frames sent
  std::uint64_t batches = 0;           ///< coalesced group evaluations
  std::uint64_t batched_requests = 0;  ///< requests across those batches
  std::uint64_t sessions_built = 0;    ///< session-cache misses
  std::uint64_t connections = 0;       ///< TCP connections accepted
  std::uint64_t overload_rejects = 0;  ///< admission-queue rejections
  std::uint64_t deadline_sheds = 0;    ///< shed past-deadline, unevaluated
  std::uint64_t faults_injected = 0;   ///< fault-plan injections applied
  /// Duplicate exact-path p_F(W) evaluations a coalesced group shared
  /// through one batched kernel pass instead of recomputing per job.
  std::uint64_t merged_kernel_hits = 0;
};

class YieldServer {
 public:
  explicit YieldServer(ServerOptions options = {});
  ~YieldServer();
  YieldServer(const YieldServer&) = delete;
  YieldServer& operator=(const YieldServer&) = delete;

  /// Spawns the dispatcher (and, in listen mode, binds + accepts).
  /// Throws ServiceSetupError when the socket cannot be bound.
  void start();
  /// Stops accepting, fails pending requests, joins every thread.
  /// Idempotent; the destructor calls it.
  void stop();

  /// Graceful drain: immediately refuses *new* FlowRequests with a
  /// `shutting_down` error frame, waits for every already-queued request
  /// and the in-flight batch to finish (their clients get real
  /// responses), then stop()s. What `cntyield_cli serve` runs on
  /// SIGTERM and on a Shutdown frame — an in-flight batch is never torn
  /// down mid-evaluation.
  void drain();

  /// The bound TCP port (listen mode, after start()).
  [[nodiscard]] std::uint16_t port() const;

  /// The bound /metrics port (metrics_listen mode, after start()).
  [[nodiscard]] std::uint16_t metrics_port() const;

  /// Loopback entry: one request frame in, one response frame out, through
  /// the full protocol path. Ping/Shutdown/malformed frames resolve
  /// immediately; FlowRequests resolve after their coalesced batch runs.
  [[nodiscard]] std::future<std::string> submit(std::string frame);

  /// Blocks until a Shutdown frame arrives or stop() is called.
  void wait_shutdown();

  /// Bounded wait_shutdown: true once a Shutdown frame arrived or stop()
  /// was called, false on timeout. Lets a front end interleave the wait
  /// with its own signal polling (the CLI's SIGTERM graceful drain).
  [[nodiscard]] bool wait_shutdown_for(unsigned timeout_ms);

  [[nodiscard]] ServerStats stats() const;

  /// The canonical-JSON metrics snapshot — the exact payload Pong and
  /// StatsReply carry on the wire ({"version","protocol","stats":{...
  /// counters...},"gauges":{...},"histograms":{...},"process":{...}}), so
  /// the CLI's shutdown log, `stats` subcommand and `--ping` all render
  /// one format.
  [[nodiscard]] std::string stats_json() const;

  /// The OpenMetrics text page `GET /metrics` serves (this server's
  /// registry plus the process-wide one, resource gauges refreshed) —
  /// exposed socket-free so tests and tools render the exact scrape body.
  [[nodiscard]] std::string metrics_text() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Server-side setup failure (bind/listen), as opposed to wire errors.
class ServiceSetupError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

}  // namespace cny::service
