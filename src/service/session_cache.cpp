#include "service/session_cache.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "celllib/generator.h"
#include "netlist/design_generator.h"
#include "scenario/engine.h"
#include "util/contracts.h"
#include "yield/wmin_solver.h"

namespace cny::service {

namespace {

/// Distinct design sizes kept warm per session. Beyond this the least
/// recently used is dropped (and regenerated on demand) — generation is
/// deterministic, so eviction is a pure speed/memory trade.
constexpr std::size_t kMaxCachedDesigns = 8;

celllib::Library make_library(const std::string& name) {
  if (name == "commercial65") return celllib::make_commercial65_like();
  CNY_EXPECT_MSG(name == "nangate45", "unknown library '" + name + "'");
  return celllib::make_nangate45_like();
}

device::FailureModel make_model(const ProcessSpec& spec) {
  cnt::ProcessParams process;
  process.p_metallic = spec.p_metallic;
  process.p_remove_s = spec.p_remove_s;
  return device::FailureModel(
      cnt::PitchModel(spec.pitch_mean_nm, spec.pitch_cv), process);
}

}  // namespace

std::string SessionKey::canonical() const {
  // to_json renders doubles shortest-round-trip, so the text key is
  // injective over process corners.
  Json v = Json::object();
  v.set("library", Json::string(library));
  v.set("process", to_json(process));
  return v.dump();
}

SessionKey session_key(const FlowRequest& request) {
  // The key is the *derived* corner: a RemovalFrontier scenario earns its
  // p_Rs from the frontier before the model is built, so scenario sweeps at
  // one corner — and plain requests that state the same corner explicitly —
  // all share one warm FailureModel. The derivation goes through the same
  // scenario::derived_process the flow itself applies, so the session model
  // always passes run_flow's corner check untouched.
  ProcessSpec spec = request.process;
  cnt::ProcessParams base;
  base.p_metallic = spec.p_metallic;
  base.p_remove_s = spec.p_remove_s;
  spec.p_remove_s =
      scenario::derived_process(base, request.params.scenario).p_remove_s;
  return {request.library, spec};
}

Session::Session(SessionKey key, std::size_t interpolant_knots,
                 unsigned n_threads, obs::TraceSink* trace,
                 obs::Histogram* build_histogram)
    : key_(std::move(key)),
      canonical_(key_.canonical()),
      lib_(make_library(key_.library)),
      model_(make_model(key_.process)) {
  // Warm the model over the whole solver bracket: every p_F query any
  // strategy of any request makes lands inside it, so after this one build
  // the hot read path is the lock-free interpolant snapshot.
  const yield::WminRequest bracket;
  obs::Span span(trace, "interpolant_build", "session");
  span.arg("session", canonical_);
  const auto t0 = std::chrono::steady_clock::now();
  model_.enable_interpolation(bracket.w_lo, bracket.w_hi, interpolant_knots,
                              n_threads);
  if (build_histogram != nullptr) {
    build_histogram->observe(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - t0)
            .count()));
  }
}

std::shared_ptr<const netlist::Design> Session::design(
    std::uint64_t instances) const {
  const std::lock_guard<std::mutex> lock(designs_mutex_);
  const auto it = std::find_if(
      designs_.begin(), designs_.end(),
      [&](const auto& entry) { return entry.first == instances; });
  if (it != designs_.end()) {
    auto found = it->second;
    designs_.erase(it);
    designs_.insert(designs_.begin(), {instances, found});  // MRU front
    return found;
  }
  auto built = std::make_shared<const netlist::Design>(
      instances == 0
          ? netlist::make_openrisc_like(lib_)
          : netlist::generate_design("synthetic_" + std::to_string(instances),
                                     lib_, instances, {}));
  designs_.insert(designs_.begin(), {instances, built});
  if (designs_.size() > kMaxCachedDesigns) designs_.pop_back();
  return built;
}

SessionCache::SessionCache(std::size_t capacity,
                           std::size_t interpolant_knots, unsigned n_threads)
    : capacity_(capacity),
      interpolant_knots_(interpolant_knots),
      n_threads_(n_threads) {
  CNY_EXPECT(capacity_ >= 1);
  CNY_EXPECT(interpolant_knots_ >= 4);
}

void SessionCache::attach_observability(obs::Registry* registry,
                                        obs::TraceSink* sink, obs::Log* log) {
  trace_ = sink;
  log_ = log;
  if (registry != nullptr) {
    built_counter_ = &registry->counter("sessions_built");
    occupancy_gauge_ = &registry->gauge("sessions_cached");
    warm_histogram_ = &registry->histogram("session_warm_us");
    build_histogram_ = &registry->histogram("interpolant_build_us");
  }
}

std::shared_ptr<const Session> SessionCache::acquire(const SessionKey& key) {
  const std::string canonical = key.canonical();
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = std::find_if(
      sessions_.begin(), sessions_.end(), [&](const auto& session) {
        return session->canonical() == canonical;
      });
  if (it != sessions_.end()) {
    auto session = *it;
    sessions_.erase(it);
    sessions_.insert(sessions_.begin(), session);  // MRU to the front
    return session;
  }
  // A miss is the expensive path worth a span: session_warm covers the
  // whole build (library generation + model + interpolant), with the
  // interpolant_build span nested inside by the Session ctor.
  obs::Span span(trace_, "session_warm", "session");
  span.arg("session", canonical);
  const auto t0 = std::chrono::steady_clock::now();
  auto session = std::make_shared<const Session>(
      key, interpolant_knots_, n_threads_, trace_, build_histogram_);
  if (warm_histogram_ != nullptr) {
    warm_histogram_->observe(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - t0)
            .count()));
  }
  if (built_counter_ != nullptr) built_counter_->add(1);
  obs::LogEvent(log_, obs::LogLevel::Info, "session.built")
      .str("session", canonical)
      .num("cached", static_cast<std::int64_t>(sessions_.size() + 1));
  sessions_.insert(sessions_.begin(), session);
  if (sessions_.size() > capacity_) {
    obs::LogEvent(log_, obs::LogLevel::Info, "session.evicted")
        .str("session", sessions_.back()->canonical())
        .num("capacity", static_cast<std::int64_t>(capacity_));
    sessions_.pop_back();
  }
  if (occupancy_gauge_ != nullptr) {
    occupancy_gauge_->set(static_cast<std::int64_t>(sessions_.size()));
  }
  ++built_;
  return session;
}

std::size_t SessionCache::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return sessions_.size();
}

std::uint64_t SessionCache::sessions_built() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return built_;
}

}  // namespace cny::service
