#include "service/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <csignal>
#include <cstring>
#include <deque>
#include <map>
#include <mutex>
#include <optional>
#include <thread>
#include <utility>
#include <vector>

#include "exec/thread_pool.h"
#include "obs/metrics.h"
#include "obs/openmetrics.h"
#include "obs/resource.h"
#include "obs/snapshot.h"
#include "util/contracts.h"
#include "yield/flow.h"

namespace cny::service {

namespace {

/// Long waits are sliced so stop() is honoured within one slice.
constexpr int kPollSliceMs = 200;

std::future<std::string> ready_future(std::string frame) {
  std::promise<std::string> promise;
  promise.set_value(std::move(frame));
  return promise.get_future();
}

std::uint64_t us_since(std::chrono::steady_clock::time_point t0) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
}

}  // namespace

struct YieldServer::Impl {
  explicit Impl(ServerOptions opts)
      : options(std::move(opts)),
        cache(options.cache_capacity, options.interpolant_knots,
              options.n_threads) {
    cache.attach_observability(&registry, trace(), log());
  }

  ServerOptions options;

  // Per-server metrics registry — ServerStats is a view over it (every
  // bump below is one relaxed atomic add; the old stats mutex is gone).
  // Counter references are resolved once here; the session-built metrics
  // ("sessions_built", "session_warm_us", "interpolant_build_us") are
  // registered by cache.attach_observability in the ctor.
  obs::Registry registry;
  obs::Counter& c_frames_in = registry.counter("frames_in");
  obs::Counter& c_responses = registry.counter("responses");
  obs::Counter& c_errors = registry.counter("errors");
  obs::Counter& c_batches = registry.counter("batches");
  obs::Counter& c_batched_requests = registry.counter("batched_requests");
  obs::Counter& c_connections = registry.counter("connections");
  obs::Counter& c_overload_rejects = registry.counter("overload_rejects");
  obs::Counter& c_deadline_sheds = registry.counter("deadline_sheds");
  obs::Counter& c_faults_injected = registry.counter("faults_injected");
  obs::Counter& c_merged_kernel_hits = registry.counter("merged_kernel_hits");
  obs::Gauge& g_queue_depth = registry.gauge("queue_depth");
  obs::Histogram& h_queue_wait = registry.histogram("queue_wait_us");
  obs::Histogram& h_evaluate = registry.histogram("evaluate_us");
  obs::Histogram& h_serialize = registry.histogram("serialize_us");
  obs::Histogram& h_kernel_batch = registry.histogram("kernel_batch_us");

  SessionCache cache;

  /// Time series the resource sampler feeds (server counters + process
  /// gauges per tick); sized for ~4 minutes at the default 1 s interval.
  obs::SnapshotRing snapshot_ring{256};
  std::optional<obs::ResourceSampler> sampler;

  [[nodiscard]] obs::TraceSink* trace() const {
    return options.trace_sink.get();
  }

  [[nodiscard]] obs::Log* log() const { return options.log.get(); }

  struct Pending {
    FlowRequest request;
    std::promise<std::string> promise;
    /// When the request was admitted — the reference point its optional
    /// relative deadline is measured from.
    std::chrono::steady_clock::time_point arrival;
  };

  std::mutex queue_mutex;
  std::condition_variable queue_cv;
  std::deque<Pending> queue;
  /// Written only under queue_mutex (so enqueue-after-drain is impossible);
  /// read lock-free by the I/O loops as their exit signal.
  std::atomic<bool> stop_flag{false};
  /// Graceful-drain mode: new FlowRequests are refused with
  /// `shutting_down`, queued ones still run. Written under queue_mutex.
  std::atomic<bool> draining{false};
  /// True while the dispatcher owns a popped batch (guarded by
  /// queue_mutex); drain() waits for queue empty *and* !in_flight.
  bool in_flight = false;
  std::condition_variable drained_cv;
  bool started = false;
  bool stopped = false;

  std::mutex shutdown_mutex;
  std::condition_variable shutdown_cv;
  bool shutdown_requested = false;

  std::thread dispatcher;
  std::thread acceptor;
  std::thread metrics_acceptor;
  std::optional<exec::ThreadPool> io_pool;
  int listen_fd = -1;
  int metrics_fd = -1;
  std::uint16_t bound_port = 0;
  std::uint16_t metrics_bound_port = 0;

  ServerStats stats_snapshot() const {
    ServerStats out;
    out.frames_in = c_frames_in.value();
    out.responses = c_responses.value();
    out.errors = c_errors.value();
    out.batches = c_batches.value();
    out.batched_requests = c_batched_requests.value();
    out.sessions_built = cache.sessions_built();
    out.connections = c_connections.value();
    out.overload_rejects = c_overload_rejects.value();
    out.deadline_sheds = c_deadline_sheds.value();
    out.faults_injected = c_faults_injected.value();
    out.merged_kernel_hits = c_merged_kernel_hits.value();
    return out;
  }

  /// The canonical-JSON metrics snapshot every stats consumer shares:
  /// Pong carries it (the `--ping` health probe doubles as the stats
  /// endpoint), StatsReply carries it, serve's shutdown log prints it.
  /// "stats" holds this server's counters (registry enumeration, so a
  /// counter added tomorrow appears without touching this function),
  /// "gauges"/"histograms" its levels and per-stage latencies, and
  /// "process" the process-wide exec.*/kernels.* metrics.
  std::string stats_payload() const {
    // The "process" block should carry current RSS/CPU even when no
    // background sampler runs — one synchronous /proc read per stats
    // frame, well off the request path.
    obs::refresh_resource_gauges();
    const obs::MetricsSnapshot own = registry.snapshot();
    const obs::MetricsSnapshot process = obs::Registry::global().snapshot();
    Json v = Json::object();
    v.set("version", Json::string(kVersionString));
    v.set("protocol", Json::number(std::uint64_t{kProtocolVersion}));
    Json counters = Json::object();
    for (const auto& [name, value] : own.counters) {
      counters.set(name, Json::number(value));
    }
    v.set("stats", std::move(counters));
    Json gauges = Json::object();
    for (const auto& [name, value] : own.gauges) {
      gauges.set(name, Json::number(static_cast<double>(value)));
    }
    v.set("gauges", std::move(gauges));
    Json histograms = Json::object();
    for (const auto& [name, h] : own.histograms) {
      Json entry = Json::object();
      entry.set("count", Json::number(h.count));
      entry.set("mean_us", Json::number(h.mean()));
      entry.set("p50_us", Json::number(h.quantile(0.5)));
      entry.set("p95_us", Json::number(h.quantile(0.95)));
      entry.set("max_us", Json::number(h.max));
      histograms.set(name, std::move(entry));
    }
    v.set("histograms", std::move(histograms));
    Json proc = Json::object();
    Json proc_counters = Json::object();
    for (const auto& [name, value] : process.counters) {
      proc_counters.set(name, Json::number(value));
    }
    proc.set("counters", std::move(proc_counters));
    Json proc_gauges = Json::object();
    for (const auto& [name, value] : process.gauges) {
      proc_gauges.set(name, Json::number(static_cast<double>(value)));
    }
    proc.set("gauges", std::move(proc_gauges));
    v.set("process", std::move(proc));
    return v.dump();
  }

  std::string metrics_text() const {
    obs::refresh_resource_gauges();
    return obs::render_openmetrics(registry.snapshot(),
                                   obs::Registry::global().snapshot());
  }

  std::future<std::string> error_now(std::string_view code,
                                     std::string_view message) {
    c_errors.add(1);
    return ready_future(encode_error(code, message));
  }

  void dispatch_loop() {
    for (;;) {
      {
        std::unique_lock<std::mutex> lock(queue_mutex);
        queue_cv.wait(lock, [&] {
          return stop_flag.load(std::memory_order_relaxed) || !queue.empty();
        });
        if (stop_flag.load(std::memory_order_relaxed)) return;
      }
      // The coalescing window: let the rest of a burst arrive and join
      // this cycle's batch. Responses are batching-invariant, so this
      // only ever trades first-request latency for batch throughput.
      std::this_thread::sleep_for(
          std::chrono::microseconds(options.coalesce_window_us));
      std::vector<Pending> batch;
      {
        const std::lock_guard<std::mutex> lock(queue_mutex);
        const std::size_t n = std::min(queue.size(), options.max_batch);
        batch.reserve(n);
        for (std::size_t i = 0; i < n; ++i) {
          batch.push_back(std::move(queue.front()));
          queue.pop_front();
        }
        g_queue_depth.add(-static_cast<std::int64_t>(n));
        in_flight = !batch.empty();
      }
      if (!batch.empty()) process_batch(batch);
      {
        const std::lock_guard<std::mutex> lock(queue_mutex);
        in_flight = false;
      }
      drained_cv.notify_all();
    }
  }

  /// Evaluates the requests at `indices` (which must share one session
  /// key) as one coalesced batch on the group's warm session model. The
  /// session model already carries the full-bracket interpolant, so every
  /// job — batched or solo — reads the *same* table and responses stay
  /// batching-invariant (a per-batch table would break that). Failures are
  /// per job: an infeasible scenario gets its own error frame while the
  /// rest of the group keeps its results.
  void evaluate_group(std::vector<Pending>& batch,
                      const std::vector<std::size_t>& all_indices) {
    // Deadline shed, *before* any session or evaluation work: a request
    // whose relative deadline already passed while it sat in the queue is
    // answered with the transient `deadline_exceeded` — the client knows
    // the work was never evaluated, so retrying (with slack) is safe, and
    // the server never burns MC samples nobody is waiting for.
    const auto now = std::chrono::steady_clock::now();
    std::vector<std::size_t> indices;
    indices.reserve(all_indices.size());
    for (const std::size_t index : all_indices) {
      Pending& pending = batch[index];
      // Queue wait is measurement only (one histogram add; a span when
      // tracing) — computed from the arrival timestamp the admission path
      // already records for deadlines, so tracing adds no clock reads the
      // untraced server doesn't make.
      const std::uint64_t wait_ns = static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              now - pending.arrival)
              .count());
      h_queue_wait.observe(wait_ns / 1000);
      if (obs::TraceSink* sink = trace()) {
        std::vector<std::pair<std::string, std::string>> args;
        if (!pending.request.trace_id.empty()) {
          args.emplace_back("trace_id", pending.request.trace_id);
        }
        sink->complete("queue_wait", "server",
                       sink->since_origin_ns(pending.arrival), wait_ns, args);
      }
      const std::uint64_t deadline = pending.request.deadline_ms;
      if (deadline > 0 &&
          now >= pending.arrival + std::chrono::milliseconds(deadline)) {
        c_errors.add(1);
        c_deadline_sheds.add(1);
        obs::LogEvent(log(), obs::LogLevel::Warn, "server.deadline_shed")
            .num("deadline_ms", static_cast<std::int64_t>(deadline))
            .str("trace_id", pending.request.trace_id);
        pending.promise.set_value(encode_error(
            "deadline_exceeded",
            "deadline of " + std::to_string(deadline) +
                " ms passed before evaluation; request shed unevaluated"));
      } else {
        indices.push_back(index);
      }
    }
    if (indices.empty()) return;
    std::shared_ptr<const Session> session;
    try {
      session = cache.acquire(session_key(batch[indices.front()].request));
    } catch (const std::exception& e) {
      for (const std::size_t index : indices) {
        c_errors.add(1);
        batch[index].promise.set_value(
            encode_error("internal_error", e.what()));
      }
      return;
    }
    // Shared design handles pin every job's design for the duration of
    // the batch, across the session's own design-cache eviction.
    std::vector<std::shared_ptr<const netlist::Design>> designs(
        indices.size());
    std::vector<std::string> frames(indices.size());
    // Bytes, not vector<bool>: workers flag distinct indices concurrently.
    std::vector<unsigned char> failed(indices.size(), 0);
    for (std::size_t i = 0; i < indices.size(); ++i) {
      const FlowRequest& request = batch[indices[i]].request;
      try {
        designs[i] = session->design(request.design_instances);
      } catch (const std::exception& e) {
        frames[i] = encode_error("internal_error", e.what());
        failed[i] = 1;
      }
    }
    // Merged-kernel pre-pass. Jobs in one group share a session key
    // (library + pitch + corner), so any exact-path p_F width two jobs
    // both need would otherwise be computed twice — once per job, since
    // each run_flow only queries as it goes. The widths a job will ask
    // for exactly are knowable up front: its design's width spectrum,
    // minus whatever the session interpolant already covers (solver
    // bracket queries all land inside the table). Deduplicate the union
    // across the group and evaluate it in ONE batched kernel pass; the
    // results land in the session model's memo, which is what the jobs
    // read. Bit-identical by the kernels contract, so responses do not
    // depend on whether the pre-pass ran. Scenario jobs that derive a
    // different process corner rebuild their model inside run_flow and
    // are skipped here (their widths would warm the wrong memo).
    if (indices.size() >= 2) {
      std::vector<double> widths;
      for (std::size_t i = 0; i < indices.size(); ++i) {
        if (failed[i]) continue;
        const FlowRequest& request = batch[indices[i]].request;
        if (request.params.scenario.removal) continue;
        for (const auto& [w, n] : designs[i]->width_spectrum()) {
          if (!session->model().interpolation_covers(w)) {
            widths.push_back(w);
          }
        }
      }
      const std::size_t requested = widths.size();
      std::sort(widths.begin(), widths.end());
      widths.erase(std::unique(widths.begin(), widths.end()), widths.end());
      if (requested > widths.size()) {
        obs::Span span(trace(), "kernel_batch", "server");
        span.arg("widths", std::to_string(widths.size()));
        const auto k0 = std::chrono::steady_clock::now();
        try {
          (void)session->model().p_f_exact_batch(widths);
          c_merged_kernel_hits.add(requested - widths.size());
        } catch (const std::exception&) {
          // Pure warm-up: a failing width fails its own job below, with
          // that job's error frame.
        }
        h_kernel_batch.observe(us_since(k0));
      }
    }
    // Job-indexed slots + per-job determinism: scheduling cannot change
    // any response (same shape as run_flow_batch, with per-job error
    // capture so one bad request never poisons its batch).
    exec::parallel_for(indices.size(), options.n_threads, [&](std::size_t i) {
      if (failed[i]) return;
      const FlowRequest& request = batch[indices[i]].request;
      yield::FlowParams params = request.params;
      // Server-side scheduling knob; invariant on the results.
      params.n_threads = options.n_threads;
      try {
        yield::FlowResult result;
        {
          obs::Span span(trace(), "evaluate", "server");
          if (!request.trace_id.empty()) {
            span.arg("trace_id", request.trace_id);
          }
          const auto t0 = std::chrono::steady_clock::now();
          result = yield::run_flow(session->library(), *designs[i],
                                   session->model(), params);
          h_evaluate.observe(us_since(t0));
        }
        obs::Span span(trace(), "serialize", "server");
        if (!request.trace_id.empty()) span.arg("trace_id", request.trace_id);
        const auto s0 = std::chrono::steady_clock::now();
        frames[i] = encode_flow_response(result);
        h_serialize.observe(us_since(s0));
      } catch (const std::exception& e) {
        frames[i] = encode_error("evaluation_failed", e.what());
        failed[i] = 1;
      }
    });
    // Count before publishing: a client woken by set_value must see its
    // own request in the stats (the relaxed adds are sequenced before the
    // promise's release, so the waking future observes them).
    c_batches.add(1);
    c_batched_requests.add(indices.size());
    for (std::size_t i = 0; i < indices.size(); ++i) {
      if (failed[i]) {
        c_errors.add(1);
      } else {
        c_responses.add(1);
      }
    }
    for (std::size_t i = 0; i < indices.size(); ++i) {
      batch[indices[i]].promise.set_value(std::move(frames[i]));
    }
  }

  void process_batch(std::vector<Pending>& batch) {
    // Group by session so each warm (library, process) pair is evaluated
    // as one coalesced batch.
    std::map<std::string, std::vector<std::size_t>> groups;
    for (std::size_t i = 0; i < batch.size(); ++i) {
      groups[session_key(batch[i].request).canonical()].push_back(i);
    }
    for (const auto& [canonical, indices] : groups) {
      evaluate_group(batch, indices);
    }
  }

  // --- TCP transport -----------------------------------------------------

  void accept_loop() {
    while (!stop_flag.load(std::memory_order_relaxed)) {
      pollfd pfd{listen_fd, POLLIN, 0};
      const int r = ::poll(&pfd, 1, kPollSliceMs);
      if (stop_flag.load(std::memory_order_relaxed)) return;
      if (r <= 0) continue;
      const int fd = ::accept(listen_fd, nullptr, nullptr);
      if (fd < 0) continue;
      c_connections.add(1);
      io_pool->post([this, fd] { serve_connection(fd); });
    }
  }

  /// Reads exactly `n` bytes; false (close the connection) on EOF, error,
  /// server stop, or an idle timeout. A truncated frame therefore never
  /// blocks a worker past the idle timeout — it just drops the connection.
  bool read_full(int fd, char* out, std::size_t n) {
    using clock = std::chrono::steady_clock;
    const auto deadline =
        clock::now() + std::chrono::milliseconds(options.idle_timeout_ms);
    std::size_t got = 0;
    while (got < n) {
      if (stop_flag.load(std::memory_order_relaxed)) return false;
      if (clock::now() >= deadline) return false;
      pollfd pfd{fd, POLLIN, 0};
      const int r = ::poll(&pfd, 1, kPollSliceMs);
      if (r < 0 && errno != EINTR) return false;
      if (r <= 0) continue;
      const ssize_t k = ::recv(fd, out + got, n - got, 0);
      if (k <= 0) return false;  // EOF or error
      got += static_cast<std::size_t>(k);
    }
    return true;
  }

  bool write_all(int fd, std::string_view bytes) {
    std::size_t sent = 0;
    while (sent < bytes.size()) {
      const ssize_t k = ::send(fd, bytes.data() + sent, bytes.size() - sent,
                               MSG_NOSIGNAL);
      if (k <= 0) return false;
      sent += static_cast<std::size_t>(k);
    }
    return true;
  }

  void serve_connection(int fd) {
    while (!stop_flag.load(std::memory_order_relaxed)) {
      std::string frame(kHeaderBytes, '\0');
      if (!read_full(fd, frame.data(), kHeaderBytes)) break;
      FrameHeader header;
      try {
        header = decode_header(frame);
      } catch (const ProtocolError& e) {
        // Framing can't be trusted past a bad header: answer and close.
        write_all(fd, encode_error("bad_frame", e.what()));
        c_errors.add(1);
        break;
      }
      frame.resize(kHeaderBytes + header.payload_size);
      if (header.payload_size > 0 &&
          !read_full(fd, frame.data() + kHeaderBytes, header.payload_size)) {
        break;  // truncated mid-frame
      }
      // Fault injection, at the same boundary a real network failure
      // lives: after the request is fully read, before/around the write.
      std::optional<FaultSpec> fault;
      if (options.fault_plan && header.type == FrameType::FlowRequest) {
        fault = options.fault_plan->next();
      }
      if (fault) {
        c_faults_injected.add(1);
        if (fault->kind == FaultKind::DropBeforeResponse) break;
        if (fault->kind == FaultKind::TransientReject) {
          c_errors.add(1);
          if (!write_all(fd, encode_error(fault->error_code,
                                          "injected transient fault"))) {
            break;
          }
          continue;  // the connection survives a transient reject
        }
      }
      std::string response = submit_frame(std::move(frame)).get();
      if (fault) {
        if (fault->kind == FaultKind::DropAfterResponse) break;
        apply_response_fault(*fault, response);
      }
      if (!write_all(fd, response)) break;
      // Truncation and slow-loris leave the stream unframeable; close so
      // the client sees EOF instead of waiting out its timeout.
      if (fault && (fault->kind == FaultKind::TruncateResponse ||
                    fault->kind == FaultKind::SlowLorisResponse)) {
        break;
      }
      if (header.type == FrameType::Shutdown) break;
    }
    ::close(fd);
  }

  // --- OpenMetrics HTTP endpoint -----------------------------------------

  void metrics_accept_loop() {
    while (!stop_flag.load(std::memory_order_relaxed)) {
      pollfd pfd{metrics_fd, POLLIN, 0};
      const int r = ::poll(&pfd, 1, kPollSliceMs);
      if (stop_flag.load(std::memory_order_relaxed)) return;
      if (r <= 0) continue;
      const int fd = ::accept(metrics_fd, nullptr, nullptr);
      if (fd < 0) continue;
      io_pool->post([this, fd] { serve_metrics_connection(fd); });
    }
  }

  /// One HTTP/1.0 exchange: read the request head (bounded by size and
  /// the idle timeout, so a slow-loris scraper can't pin a worker),
  /// answer `GET /metrics`, close. Prometheus scrapes exactly this way.
  void serve_metrics_connection(int fd) {
    using clock = std::chrono::steady_clock;
    const auto deadline =
        clock::now() + std::chrono::milliseconds(options.idle_timeout_ms);
    std::string head;
    bool complete = false;
    while (head.size() < 8192) {
      if (stop_flag.load(std::memory_order_relaxed)) break;
      if (clock::now() >= deadline) break;
      pollfd pfd{fd, POLLIN, 0};
      const int r = ::poll(&pfd, 1, kPollSliceMs);
      if (r < 0 && errno != EINTR) break;
      if (r <= 0) continue;
      char buf[1024];
      const ssize_t k = ::recv(fd, buf, sizeof(buf), 0);
      if (k <= 0) break;
      head.append(buf, static_cast<std::size_t>(k));
      if (head.find("\r\n\r\n") != std::string::npos ||
          head.find("\n\n") != std::string::npos) {
        complete = true;
        break;
      }
    }
    if (complete) {
      const std::size_t eol = head.find_first_of("\r\n");
      const std::string request_line =
          head.substr(0, eol == std::string::npos ? head.size() : eol);
      const std::size_t sp1 = request_line.find(' ');
      const std::size_t sp2 =
          sp1 == std::string::npos ? std::string::npos
                                   : request_line.find(' ', sp1 + 1);
      const std::string method =
          sp1 == std::string::npos ? request_line
                                   : request_line.substr(0, sp1);
      std::string path = sp1 == std::string::npos || sp2 == std::string::npos
                             ? std::string()
                             : request_line.substr(sp1 + 1, sp2 - sp1 - 1);
      path = path.substr(0, path.find('?'));
      std::string status;
      std::string content_type = "text/plain; charset=utf-8";
      std::string body;
      if (method != "GET") {
        status = "405 Method Not Allowed";
        body = "only GET is supported\n";
      } else if (path != "/metrics") {
        status = "404 Not Found";
        body = "try /metrics\n";
      } else {
        status = "200 OK";
        content_type = obs::kOpenMetricsContentType;
        body = metrics_text();
      }
      std::string response = "HTTP/1.0 " + status +
                             "\r\nContent-Type: " + content_type +
                             "\r\nContent-Length: " +
                             std::to_string(body.size()) +
                             "\r\nConnection: close\r\n\r\n" + body;
      write_all(fd, response);
    }
    ::close(fd);
  }

  // --- protocol entry (shared by loopback and TCP) -----------------------

  std::future<std::string> submit_frame(std::string frame) {
    c_frames_in.add(1);
    Frame decoded;
    try {
      decoded = decode_frame(frame);
    } catch (const ProtocolError& e) {
      return error_now("bad_frame", e.what());
    }
    switch (decoded.type) {
      case FrameType::Ping:
        return ready_future(encode_frame(FrameType::Pong, stats_payload()));
      case FrameType::Stats:
        return ready_future(
            encode_frame(FrameType::StatsReply, stats_payload()));
      case FrameType::Shutdown: {
        obs::LogEvent(log(), obs::LogLevel::Info, "server.shutdown_frame");
        {
          const std::lock_guard<std::mutex> lock(shutdown_mutex);
          shutdown_requested = true;
        }
        shutdown_cv.notify_all();
        return ready_future(encode_frame(FrameType::Pong, stats_payload()));
      }
      case FrameType::FlowRequest: break;
      default:
        return error_now("unexpected_frame",
                         "frame type is not a request the server accepts");
    }
    // The admission span covers parse + validate + enqueue — where an
    // overloaded server spends a request's only server-side time before
    // rejecting it.
    obs::Span admission(trace(), "admission", "server");
    FlowRequest request;
    try {
      request = flow_request_from_json(Json::parse(decoded.payload));
      validate(request);
    } catch (const std::exception& e) {
      return error_now("bad_request", e.what());
    }
    if (!request.trace_id.empty()) admission.arg("trace_id", request.trace_id);
    std::future<std::string> future;
    {
      const std::lock_guard<std::mutex> lock(queue_mutex);
      if (stop_flag.load(std::memory_order_relaxed) ||
          draining.load(std::memory_order_relaxed)) {
        return error_now("shutting_down",
                         "server is draining; the request was not queued");
      }
      if (queue.size() >= options.max_queue) {
        // Bounded admission: reject *now* with a transient code rather
        // than queueing without bound. The caller's retry policy backs
        // off and resubmits; server memory stays bounded under overload.
        c_overload_rejects.add(1);
        obs::LogEvent(log(), obs::LogLevel::Warn, "server.overload_reject")
            .num("max_queue", static_cast<std::int64_t>(options.max_queue))
            .str("trace_id", request.trace_id);
        return error_now("server_overloaded",
                         "admission queue is full (" +
                             std::to_string(options.max_queue) +
                             " pending); retry with backoff");
      }
      Pending pending;
      pending.request = std::move(request);
      pending.arrival = std::chrono::steady_clock::now();
      future = pending.promise.get_future();
      queue.push_back(std::move(pending));
      g_queue_depth.add(1);
    }
    queue_cv.notify_one();
    return future;
  }
};

YieldServer::YieldServer(ServerOptions options)
    : impl_(std::make_unique<Impl>(options)) {}

YieldServer::~YieldServer() { stop(); }

namespace {

/// Binds + listens a loopback TCP socket; returns {fd, bound_port}.
/// Throws ServiceSetupError with `what_prefix` context on failure.
std::pair<int, std::uint16_t> bind_loopback(std::uint16_t port,
                                            const char* what_prefix) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    throw ServiceSetupError(std::string("socket: ") + std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
          0 ||
      ::listen(fd, 64) < 0) {
    const std::string what = std::string(what_prefix) + " 127.0.0.1:" +
                             std::to_string(port) + ": " +
                             std::strerror(errno);
    ::close(fd);
    throw ServiceSetupError(what);
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len);
  return {fd, ntohs(bound.sin_port)};
}

}  // namespace

void YieldServer::start() {
  Impl& impl = *impl_;
  CNY_EXPECT_MSG(!impl.started, "YieldServer::start() called twice");
  impl.started = true;
  if (impl.options.listen || impl.options.metrics_listen) {
    // Every send already passes MSG_NOSIGNAL, but a library the server
    // links could write to a dead pipe too — a peer dying mid-frame must
    // never take the process down (regression-tested in test_service).
    std::signal(SIGPIPE, SIG_IGN);
    // Connection handlers block on socket reads, so give them more lanes
    // than the (possibly single-core) compute pool would get.
    impl.io_pool.emplace(std::max(4u, exec::hardware_threads()));
  }
  if (impl.options.listen) {
    std::tie(impl.listen_fd, impl.bound_port) =
        bind_loopback(impl.options.port, "bind/listen");
    impl.acceptor = std::thread([&impl] { impl.accept_loop(); });
  }
  if (impl.options.metrics_listen) {
    std::tie(impl.metrics_fd, impl.metrics_bound_port) =
        bind_loopback(impl.options.metrics_port, "bind/listen (metrics)");
    impl.metrics_acceptor = std::thread([&impl] { impl.metrics_accept_loop(); });
  }
  if (impl.options.sample_interval_ms > 0) {
    obs::ResourceSampler::Options sampler_options;
    sampler_options.interval_ms = impl.options.sample_interval_ms;
    sampler_options.ring = &impl.snapshot_ring;
    sampler_options.export_path = impl.options.snapshot_export_path;
    // Each ring entry carries this server's counters plus the process-wide
    // gauges (exec.*, process.*) so one time series answers both "how fast"
    // and "how big".
    sampler_options.snapshot_source = [&impl] {
      obs::MetricsSnapshot merged = impl.registry.snapshot();
      const obs::MetricsSnapshot process =
          obs::Registry::global().snapshot();
      merged.counters.insert(merged.counters.end(),
                             process.counters.begin(),
                             process.counters.end());
      merged.gauges.insert(merged.gauges.end(), process.gauges.begin(),
                           process.gauges.end());
      return merged;
    };
    impl.sampler.emplace(std::move(sampler_options));
  }
  impl.dispatcher = std::thread([&impl] { impl.dispatch_loop(); });
  obs::LogEvent(impl.log(), obs::LogLevel::Info, "server.start")
      .num("port", impl.options.listen ? impl.bound_port : 0)
      .num("metrics_port",
           impl.options.metrics_listen ? impl.metrics_bound_port : 0)
      .num("sample_interval_ms", impl.options.sample_interval_ms);
}

void YieldServer::stop() {
  Impl& impl = *impl_;
  if (!impl.started || impl.stopped) return;
  impl.stopped = true;
  {
    const std::lock_guard<std::mutex> lock(impl.queue_mutex);
    impl.stop_flag.store(true, std::memory_order_relaxed);
  }
  impl.queue_cv.notify_all();
  impl.shutdown_cv.notify_all();
  impl.drained_cv.notify_all();
  if (impl.dispatcher.joinable()) impl.dispatcher.join();
  // The dispatcher is gone and stop_flag is up (under queue_mutex), so no
  // request can be enqueued after this drain — every pending future
  // resolves, which is what lets the connection handlers unblock and the
  // io pool join below.
  {
    const std::lock_guard<std::mutex> lock(impl.queue_mutex);
    for (auto& pending : impl.queue) {
      pending.promise.set_value(
          encode_error("shutting_down", "server stopped"));
    }
    impl.queue.clear();
    impl.g_queue_depth.set(0);
  }
  if (impl.acceptor.joinable()) impl.acceptor.join();
  if (impl.metrics_acceptor.joinable()) impl.metrics_acceptor.join();
  impl.io_pool.reset();
  if (impl.listen_fd >= 0) {
    ::close(impl.listen_fd);
    impl.listen_fd = -1;
  }
  if (impl.metrics_fd >= 0) {
    ::close(impl.metrics_fd);
    impl.metrics_fd = -1;
  }
  impl.sampler.reset();
  obs::LogEvent(impl.log(), obs::LogLevel::Info, "server.stop")
      .num("frames_in", static_cast<std::int64_t>(impl.c_frames_in.value()))
      .num("responses", static_cast<std::int64_t>(impl.c_responses.value()))
      .num("errors", static_cast<std::int64_t>(impl.c_errors.value()));
}

void YieldServer::drain() {
  Impl& impl = *impl_;
  if (!impl.started || impl.stopped) return;
  obs::LogEvent(impl.log(), obs::LogLevel::Info, "server.drain")
      .num("queued", [&impl] {
        const std::lock_guard<std::mutex> lock(impl.queue_mutex);
        return static_cast<std::int64_t>(impl.queue.size());
      }());
  {
    std::unique_lock<std::mutex> lock(impl.queue_mutex);
    // Under queue_mutex, so no FlowRequest can slip past the draining
    // check in submit_frame and enqueue after this point.
    impl.draining.store(true, std::memory_order_relaxed);
    impl.drained_cv.wait(lock, [&] {
      return (impl.queue.empty() && !impl.in_flight) ||
             impl.stop_flag.load(std::memory_order_relaxed);
    });
  }
  stop();
}

std::uint16_t YieldServer::port() const { return impl_->bound_port; }

std::uint16_t YieldServer::metrics_port() const {
  return impl_->metrics_bound_port;
}

std::future<std::string> YieldServer::submit(std::string frame) {
  Impl& impl = *impl_;
  CNY_EXPECT_MSG(impl.started, "submit() before start()");
  // Loopback fault injection: the same plan the TCP path consults, with
  // the socket-level outcome mapped onto the response string — a dropped
  // connection becomes the empty string (the client treats it as a
  // transport failure), truncation/corruption/delay mutate the bytes.
  std::optional<FaultSpec> fault;
  if (impl.options.fault_plan && frame.size() >= kHeaderBytes) {
    try {
      const FrameHeader header =
          decode_header(std::string_view(frame).substr(0, kHeaderBytes));
      if (header.type == FrameType::FlowRequest) {
        fault = impl.options.fault_plan->next();
      }
    } catch (const ProtocolError&) {
      // A malformed header takes the normal bad_frame path below.
    }
  }
  if (!fault) return impl.submit_frame(std::move(frame));
  impl.c_faults_injected.add(1);
  switch (fault->kind) {
    case FaultKind::DropBeforeResponse:
      return ready_future(std::string());
    case FaultKind::TransientReject:
      impl.c_errors.add(1);
      return ready_future(
          encode_error(fault->error_code, "injected transient fault"));
    case FaultKind::DropAfterResponse: {
      // Evaluate (the server did the work), then "lose" the response.
      auto inner = impl.submit_frame(std::move(frame));
      return std::async(std::launch::deferred,
                        [inner = std::move(inner)]() mutable {
                          inner.get();
                          return std::string();
                        });
    }
    default: {
      auto inner = impl.submit_frame(std::move(frame));
      return std::async(std::launch::deferred,
                        [inner = std::move(inner), spec = *fault]() mutable {
                          std::string response = inner.get();
                          apply_response_fault(spec, response);
                          return response;
                        });
    }
  }
}

void YieldServer::wait_shutdown() {
  Impl& impl = *impl_;
  std::unique_lock<std::mutex> lock(impl.shutdown_mutex);
  impl.shutdown_cv.wait(lock, [&] {
    return impl.shutdown_requested ||
           impl.stop_flag.load(std::memory_order_relaxed);
  });
}

bool YieldServer::wait_shutdown_for(unsigned timeout_ms) {
  Impl& impl = *impl_;
  std::unique_lock<std::mutex> lock(impl.shutdown_mutex);
  return impl.shutdown_cv.wait_for(
      lock, std::chrono::milliseconds(timeout_ms), [&] {
        return impl.shutdown_requested ||
               impl.stop_flag.load(std::memory_order_relaxed);
      });
}

ServerStats YieldServer::stats() const { return impl_->stats_snapshot(); }

std::string YieldServer::stats_json() const { return impl_->stats_payload(); }

std::string YieldServer::metrics_text() const {
  return impl_->metrics_text();
}

}  // namespace cny::service
