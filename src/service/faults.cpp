#include "service/faults.h"

#include <chrono>
#include <stdexcept>
#include <thread>

#include "rng/engine.h"
#include "service/protocol.h"
#include "util/strings.h"

namespace cny::service {

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::DropBeforeResponse: return "drop";
    case FaultKind::DropAfterResponse: return "drop-after";
    case FaultKind::Delay: return "delay";
    case FaultKind::TruncateResponse: return "truncate";
    case FaultKind::CorruptPayloadByte: return "corrupt";
    case FaultKind::TransientReject: return "reject";
    case FaultKind::SlowLorisResponse: return "slowloris";
  }
  return "unknown";
}

std::vector<FaultSpec> fault_specs_from_names(const std::string& names) {
  // Parameters are harsh enough to break a naive client (framing lost,
  // ms-scale stalls) but fast enough for CI loops.
  std::vector<FaultSpec> out;
  for (const auto& token : util::split(names, ',')) {
    if (token.empty()) continue;
    FaultSpec spec;
    if (token == "drop") {
      spec.kind = FaultKind::DropBeforeResponse;
    } else if (token == "drop-after") {
      spec.kind = FaultKind::DropAfterResponse;
    } else if (token == "delay") {
      spec.kind = FaultKind::Delay;
      spec.delay_ms = 5;
    } else if (token == "truncate") {
      spec.kind = FaultKind::TruncateResponse;
      spec.at_byte = kHeaderBytes + 4;  // header plus a sliver of payload
    } else if (token == "corrupt") {
      spec.kind = FaultKind::CorruptPayloadByte;
      spec.at_byte = 1;
    } else if (token == "reject") {
      spec.kind = FaultKind::TransientReject;
      spec.error_code = "try_later";
    } else if (token == "slowloris") {
      spec.kind = FaultKind::SlowLorisResponse;
      spec.at_byte = 8;  // half a header
      spec.delay_ms = 5;
    } else {
      throw std::invalid_argument(
          "unknown fault '" + token +
          "' (known: drop, drop-after, delay, truncate, corrupt, reject, "
          "slowloris)");
    }
    out.push_back(std::move(spec));
  }
  return out;
}

FaultPlan::FaultPlan(FaultPlanOptions options) : options_(std::move(options)) {
  if (options_.period > 0) {
    std::uint64_t state = options_.seed;
    phase_ = rng::splitmix64(state) % options_.period;
  }
}

std::optional<FaultSpec> FaultPlan::next() {
  if (!enabled()) return std::nullopt;
  const std::uint64_t n = ordinal_.fetch_add(1, std::memory_order_relaxed);
  if ((n % options_.period) != phase_) return std::nullopt;
  if (options_.max_faults > 0) {
    // Claim an injection slot without ever publishing a count above the
    // cap: injected() readers must never observe an overshoot.
    std::uint64_t current = injected_.load(std::memory_order_relaxed);
    do {
      if (current >= options_.max_faults) return std::nullopt;
    } while (!injected_.compare_exchange_weak(current, current + 1,
                                              std::memory_order_relaxed));
  } else {
    injected_.fetch_add(1, std::memory_order_relaxed);
  }
  return options_.faults[(n / options_.period) % options_.faults.size()];
}

void apply_response_fault(const FaultSpec& spec, std::string& response) {
  switch (spec.kind) {
    case FaultKind::Delay:
      std::this_thread::sleep_for(std::chrono::milliseconds(spec.delay_ms));
      break;
    case FaultKind::TruncateResponse:
      response.resize(std::min(spec.at_byte, response.size()));
      break;
    case FaultKind::CorruptPayloadByte:
      if (response.size() > kHeaderBytes) {
        // Flip a payload byte; the header still parses, the JSON does not.
        const std::size_t payload = response.size() - kHeaderBytes;
        response[kHeaderBytes + spec.at_byte % payload] ^= 0x20;
      } else if (!response.empty()) {
        response.back() ^= 0x20;
      }
      break;
    case FaultKind::SlowLorisResponse:
      // A partial header that then stalls: what a wedged peer looks like.
      response.resize(std::min(spec.at_byte, kHeaderBytes - 1));
      std::this_thread::sleep_for(std::chrono::milliseconds(spec.delay_ms));
      break;
    case FaultKind::DropBeforeResponse:
    case FaultKind::DropAfterResponse:
    case FaultKind::TransientReject:
      // Handled before a response string exists (drop / reject paths).
      break;
  }
}

}  // namespace cny::service
