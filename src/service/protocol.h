// Wire protocol for the yield service (server.h / client.h).
//
// Every message is one length-framed JSON payload:
//
//   bytes  0-3   magic "CNYS"
//   bytes  4-7   protocol version, uint32 little-endian (kProtocolVersion)
//   bytes  8-11  frame type,       uint32 little-endian (FrameType)
//   bytes 12-15  payload length,   uint32 little-endian (<= kMaxPayloadBytes)
//   bytes 16-    payload: UTF-8 JSON
//
// Malformed input never crashes the peer: a frame that fails any header
// check or whose payload fails to parse/validate is answered with an Error
// frame ({"error":{"code":...,"message":...}}) and, on a socket, the
// connection is closed (framing cannot be trusted past a bad header).
//
// Serialization is canonical — fixed key order, shortest round-trip number
// tokens (see json.h) — so serialize→parse→serialize is byte-stable and a
// FlowResult crosses the wire bit-exactly. The request deliberately carries
// only the determinism-relevant FlowParams subset (yield target, chip M,
// process geometry, MC budget, seed, streams): scheduling knobs like
// n_threads and the interpolant opt-in belong to the server, so one request
// cannot make two servers disagree.
//
// Protocol v2 adds the scenario engine's fields: a FlowRequest may carry an
// optional "scenario" object ({"shorts":{...},"length":{...},
// "removal":{...}}, members present iff enabled) and a scenario-bearing
// FlowResult echoes the spec plus per-mechanism columns. Both sides omit
// every scenario key when the spec is empty, so an open-only exchange is
// byte-identical to a v1 payload — only the header version differs.
//
// Protocol v3 (0.3.0) adds failure semantics: a FlowRequest may carry an
// optional "deadline_ms" field (a relative deadline from server receipt;
// work already past it is shed with a `deadline_exceeded` error frame
// before evaluation), and error codes are partitioned into *transient*
// (safe to retry: the request was not evaluated, or the condition is
// load-dependent — see is_transient_error) and *terminal* (retrying cannot
// help; deterministic outcomes). The field is omitted when absent, so a
// deadline-less request payload is byte-identical to its 0.2.0 form —
// only the header version differs (pinned in tests).
//
// Protocol v4 (0.4.0) adds observability: a FlowRequest may carry an
// optional "trace_id" field (an opaque client-chosen token <= 64 chars of
// [0-9A-Za-z._-]; the server attaches it to every span the request
// produces, see obs/trace.h), and a Stats frame is answered with a
// StatsReply carrying the server's canonical-JSON metrics snapshot — the
// same payload Pong carries, so `--ping` and `stats` read one format.
// trace_id is omitted when empty, so an untraced request payload is
// byte-identical to its 0.3.0 form (pinned in tests) and campaign FNV
// request keys never see trace ids. Responses carry no trace fields at
// all: tracing cannot perturb a single response byte.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

#include "service/json.h"
#include "yield/flow.h"

namespace cny::service {

/// The single version constant for the whole front end: the wire header
/// carries kProtocolVersion and `cntyield_cli --version` prints both.
/// v2: scenario fields (ShortFailure / FiniteLength / RemovalFrontier).
/// v3: optional per-request deadline + transient/terminal error taxonomy.
/// v4: optional per-request trace id + Stats/StatsReply frames.
inline constexpr std::uint32_t kProtocolVersion = 4;
/// Human-readable release string the protocol version ships in.
inline constexpr const char kVersionString[] = "0.4.0";

/// A frame violating the wire format (bad magic/version/type, oversized or
/// truncated payload, payload that is not valid JSON of the right shape, or
/// request parameters outside their documented ranges).
class ProtocolError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

enum class FrameType : std::uint32_t {
  FlowRequest = 1,   ///< client -> server: one FlowRequest
  FlowResponse = 2,  ///< server -> client: the FlowResult
  Error = 3,         ///< server -> client: {"error":{code,message}}
  Ping = 4,          ///< client -> server: liveness / version probe
  Pong = 5,          ///< server -> client: {"version","protocol"}
  Shutdown = 6,      ///< client -> server: clean shutdown (acked with Pong)
  Stats = 7,         ///< client -> server: metrics snapshot request
  StatsReply = 8,    ///< server -> client: canonical-JSON metrics snapshot
};

inline constexpr std::size_t kHeaderBytes = 16;
/// No legitimate message is within orders of magnitude of this; anything
/// larger is a framing error or abuse and is rejected before allocation.
inline constexpr std::uint32_t kMaxPayloadBytes = 1u << 20;

struct FrameHeader {
  FrameType type = FrameType::Error;
  std::uint32_t payload_size = 0;
};

struct Frame {
  FrameType type = FrameType::Error;
  std::string payload;
};

/// One header + payload, ready to write to a socket.
[[nodiscard]] std::string encode_frame(FrameType type,
                                       std::string_view payload);
/// Parses and checks exactly kHeaderBytes of header.
[[nodiscard]] FrameHeader decode_header(std::string_view header);
/// Whole-buffer convenience (the loopback path): header plus exactly the
/// announced payload.
[[nodiscard]] Frame decode_frame(std::string_view bytes);

/// The process corner a request runs under — also the session-cache key
/// (session_cache.h): requests sharing a ProcessSpec + library share one
/// warm FailureModel.
struct ProcessSpec {
  double pitch_mean_nm = 4.0;  ///< μ_S
  double pitch_cv = 0.9;       ///< σ_S/μ_S
  double p_metallic = 0.33;    ///< p_m
  double p_remove_s = 0.30;    ///< p_Rs
};

struct FlowRequest {
  /// Generated library to serve against: "nangate45" | "commercial65".
  std::string library = "nangate45";
  /// Synthetic design size; 0 = the OpenRISC-like default design.
  std::uint64_t design_instances = 0;
  ProcessSpec process;
  /// Only the determinism-relevant subset crosses the wire (see file
  /// comment); the rest keeps its FlowParams default.
  yield::FlowParams params;
  /// Relative deadline in ms from server receipt; work already past it is
  /// shed with `deadline_exceeded` before evaluation. 0 = no deadline —
  /// the field is omitted from the wire, keeping the payload byte-
  /// identical to its 0.2.0 form.
  std::uint64_t deadline_ms = 0;
  /// Opaque trace token the server stamps onto this request's spans
  /// (obs/trace.h). Purely observational: it never influences evaluation
  /// or the response. Empty = untraced — the field is omitted from the
  /// wire, keeping the payload byte-identical to its 0.3.0 form (and the
  /// campaign FNV request keys stable across the bump).
  std::string trace_id;
};

struct ServiceErrorInfo {
  std::string code;
  std::string message;
};

// JSON codecs. to_json output is canonical; *_from_json throws
// ProtocolError naming the offending field.
[[nodiscard]] Json to_json(const ProcessSpec& spec);
[[nodiscard]] Json to_json(const scenario::ScenarioSpec& spec);
[[nodiscard]] scenario::ScenarioSpec scenario_from_json(const Json& v);
[[nodiscard]] Json to_json(const yield::FlowParams& params);
[[nodiscard]] Json to_json(const FlowRequest& request);
[[nodiscard]] Json to_json(const yield::FlowResult& result);
[[nodiscard]] ProcessSpec process_from_json(const Json& v);
[[nodiscard]] yield::FlowParams flow_params_from_json(const Json& v);
[[nodiscard]] FlowRequest flow_request_from_json(const Json& v);
[[nodiscard]] yield::FlowResult flow_result_from_json(const Json& v);

// Frame-level conveniences.
[[nodiscard]] std::string encode_flow_request(const FlowRequest& request);
[[nodiscard]] std::string encode_flow_response(
    const yield::FlowResult& result);
[[nodiscard]] std::string encode_error(std::string_view code,
                                       std::string_view message);
[[nodiscard]] ServiceErrorInfo error_from_payload(std::string_view payload);

/// Range-checks a parsed request (yield in (0,1), MC budget within bounds,
/// known library, ...) so one bad request fails alone with a useful message
/// instead of poisoning the coalesced batch it would have joined.
void validate(const FlowRequest& request);

/// The error-code taxonomy (docs/architecture.md "Failure semantics").
/// Transient codes mean the request was *not* evaluated (or the condition
/// is load-dependent) and retrying the identical request is safe and may
/// succeed: "transport" (the client-side catch-all for connection refused /
/// reset / timeout / unparseable response), "server_overloaded" (admission
/// queue full), "try_later" (injected transient reject), "shutting_down"
/// (drain/stop refused the frame), "deadline_exceeded" (shed unevaluated).
/// Every other code — bad_frame, bad_request, unexpected_frame,
/// evaluation_failed, internal_error, malformed_error — is terminal: a
/// deterministic outcome a retry would only repeat. Retry policies
/// (client.h, campaign/runner.h) must consult this one predicate so the
/// store's "error records are terminal" invariant has a single definition.
[[nodiscard]] bool is_transient_error(std::string_view code);

}  // namespace cny::service
