#include "service/client.h"

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

#include "service/server.h"

namespace cny::service {

namespace {

[[noreturn]] void transport_fail(const std::string& message) {
  throw ServiceError("transport", message);
}

}  // namespace

YieldClient::YieldClient(YieldServer& server) : loopback_(&server) {}

YieldClient::YieldClient(const std::string& host, std::uint16_t port,
                         unsigned timeout_ms)
    : timeout_ms_(timeout_ms) {
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* found = nullptr;
  const int rc =
      ::getaddrinfo(host.c_str(), std::to_string(port).c_str(), &hints,
                    &found);
  if (rc != 0 || found == nullptr) {
    transport_fail("cannot resolve " + host + ": " + ::gai_strerror(rc));
  }
  fd_ = ::socket(found->ai_family, found->ai_socktype | SOCK_CLOEXEC,
                 found->ai_protocol);
  if (fd_ < 0) {
    ::freeaddrinfo(found);
    transport_fail(std::string("socket: ") + std::strerror(errno));
  }
  if (::connect(fd_, found->ai_addr, found->ai_addrlen) < 0) {
    const std::string what = std::string("connect ") + host + ":" +
                             std::to_string(port) + ": " +
                             std::strerror(errno);
    ::freeaddrinfo(found);
    ::close(fd_);
    fd_ = -1;
    transport_fail(what);
  }
  ::freeaddrinfo(found);
}

YieldClient::~YieldClient() {
  if (fd_ >= 0) ::close(fd_);
}

YieldClient::YieldClient(YieldClient&& other) noexcept
    : loopback_(other.loopback_), fd_(other.fd_),
      timeout_ms_(other.timeout_ms_) {
  other.loopback_ = nullptr;
  other.fd_ = -1;
}

std::string YieldClient::roundtrip(std::string frame) {
  if (loopback_ != nullptr) return loopback_->submit(std::move(frame)).get();

  if (fd_ < 0) transport_fail("client connection is closed");
  std::size_t sent = 0;
  while (sent < frame.size()) {
    const ssize_t k =
        ::send(fd_, frame.data() + sent, frame.size() - sent, MSG_NOSIGNAL);
    if (k <= 0) transport_fail(std::string("send: ") + std::strerror(errno));
    sent += static_cast<std::size_t>(k);
  }

  using clock = std::chrono::steady_clock;
  const auto deadline = clock::now() + std::chrono::milliseconds(timeout_ms_);
  const auto read_full = [&](char* out, std::size_t n) {
    std::size_t got = 0;
    while (got < n) {
      const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
          deadline - clock::now());
      if (left.count() <= 0) transport_fail("response timed out");
      pollfd pfd{fd_, POLLIN, 0};
      const int r = ::poll(&pfd, 1, static_cast<int>(left.count()));
      if (r < 0 && errno != EINTR) {
        transport_fail(std::string("poll: ") + std::strerror(errno));
      }
      if (r <= 0) continue;
      const ssize_t k = ::recv(fd_, out + got, n - got, 0);
      if (k <= 0) transport_fail("server closed the connection");
      got += static_cast<std::size_t>(k);
    }
  };

  std::string response(kHeaderBytes, '\0');
  read_full(response.data(), kHeaderBytes);
  const FrameHeader header = decode_header(response);
  response.resize(kHeaderBytes + header.payload_size);
  if (header.payload_size > 0) {
    read_full(response.data() + kHeaderBytes, header.payload_size);
  }
  return response;
}

yield::FlowResult YieldClient::call(const FlowRequest& request) {
  const Frame response = decode_frame(roundtrip(encode_flow_request(request)));
  if (response.type == FrameType::Error) {
    const auto info = error_from_payload(response.payload);
    throw ServiceError(info.code, info.message);
  }
  if (response.type != FrameType::FlowResponse) {
    throw ServiceError("unexpected_frame",
                       "server answered with frame type " +
                           std::to_string(static_cast<std::uint32_t>(
                               response.type)));
  }
  return flow_result_from_json(Json::parse(response.payload));
}

std::string YieldClient::ping() {
  const Frame response =
      decode_frame(roundtrip(encode_frame(FrameType::Ping, "{}")));
  if (response.type != FrameType::Pong) {
    throw ServiceError("unexpected_frame", "ping was not answered with pong");
  }
  return response.payload;
}

void YieldClient::shutdown_server() {
  const Frame response =
      decode_frame(roundtrip(encode_frame(FrameType::Shutdown, "{}")));
  if (response.type != FrameType::Pong) {
    throw ServiceError("unexpected_frame",
                       "shutdown was not acknowledged with pong");
  }
}

}  // namespace cny::service
