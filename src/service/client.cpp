#include "service/client.h"

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstring>
#include <thread>
#include <utility>

#include "rng/engine.h"
#include "service/server.h"

namespace cny::service {

namespace {

[[noreturn]] void transport_fail(const std::string& message) {
  throw ServiceError("transport", message);
}

}  // namespace

unsigned RetryPolicy::backoff_ms(unsigned attempt) const {
  const double capped =
      std::min(static_cast<double>(backoff_base_ms) *
                   std::pow(backoff_multiplier,
                            static_cast<double>(attempt > 0 ? attempt - 1 : 0)),
               static_cast<double>(backoff_max_ms));
  // Jitter in [0.5, 1.0), a pure function of (seed, attempt): replayable
  // within one client, decorrelated across seeds.
  std::uint64_t state = jitter_seed ^ (0x9e3779b97f4a7c15ULL * (attempt + 1));
  const double unit =
      static_cast<double>(rng::splitmix64(state) >> 11) * 0x1.0p-53;
  const double jittered = capped * (0.5 + 0.5 * unit);
  return std::max(1u, static_cast<unsigned>(std::lround(jittered)));
}

YieldClient::YieldClient(YieldServer& server) : loopback_(&server) {}

YieldClient::YieldClient(const std::string& host, std::uint16_t port,
                         unsigned timeout_ms)
    : timeout_ms_(timeout_ms), host_(host), port_(port) {
  connect_tcp();
}

void YieldClient::connect_tcp() {
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* found = nullptr;
  const int rc =
      ::getaddrinfo(host_.c_str(), std::to_string(port_).c_str(), &hints,
                    &found);
  if (rc != 0 || found == nullptr) {
    transport_fail("cannot resolve " + host_ + ": " + ::gai_strerror(rc));
  }
  fd_ = ::socket(found->ai_family, found->ai_socktype | SOCK_CLOEXEC,
                 found->ai_protocol);
  if (fd_ < 0) {
    ::freeaddrinfo(found);
    transport_fail(std::string("socket: ") + std::strerror(errno));
  }
  if (::connect(fd_, found->ai_addr, found->ai_addrlen) < 0) {
    const std::string what = std::string("connect ") + host_ + ":" +
                             std::to_string(port_) + ": " +
                             std::strerror(errno);
    ::freeaddrinfo(found);
    ::close(fd_);
    fd_ = -1;
    transport_fail(what);
  }
  ::freeaddrinfo(found);
}

YieldClient::~YieldClient() {
  if (fd_ >= 0) ::close(fd_);
}

YieldClient::YieldClient(YieldClient&& other) noexcept
    : loopback_(other.loopback_), fd_(other.fd_),
      timeout_ms_(other.timeout_ms_), host_(std::move(other.host_)),
      port_(other.port_), retry_(other.retry_), trace_(other.trace_) {
  other.loopback_ = nullptr;
  other.fd_ = -1;
}

std::string YieldClient::roundtrip(std::string frame) {
  if (loopback_ != nullptr) return loopback_->submit(std::move(frame)).get();

  // A broken TCP connection reconnects lazily, so a retry after a dropped
  // connection gets a fresh one instead of a guaranteed send failure.
  if (fd_ < 0 && !host_.empty()) connect_tcp();
  if (fd_ < 0) transport_fail("client connection is closed");
  std::size_t sent = 0;
  while (sent < frame.size()) {
    const ssize_t k =
        ::send(fd_, frame.data() + sent, frame.size() - sent, MSG_NOSIGNAL);
    if (k <= 0) transport_fail(std::string("send: ") + std::strerror(errno));
    sent += static_cast<std::size_t>(k);
  }

  using clock = std::chrono::steady_clock;
  const auto deadline = clock::now() + std::chrono::milliseconds(timeout_ms_);
  const auto read_full = [&](char* out, std::size_t n) {
    std::size_t got = 0;
    while (got < n) {
      const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
          deadline - clock::now());
      if (left.count() <= 0) transport_fail("response timed out");
      pollfd pfd{fd_, POLLIN, 0};
      const int r = ::poll(&pfd, 1, static_cast<int>(left.count()));
      if (r < 0 && errno != EINTR) {
        transport_fail(std::string("poll: ") + std::strerror(errno));
      }
      if (r <= 0) continue;
      const ssize_t k = ::recv(fd_, out + got, n - got, 0);
      if (k <= 0) transport_fail("server closed the connection");
      got += static_cast<std::size_t>(k);
    }
  };

  std::string response(kHeaderBytes, '\0');
  read_full(response.data(), kHeaderBytes);
  const FrameHeader header = decode_header(response);
  response.resize(kHeaderBytes + header.payload_size);
  if (header.payload_size > 0) {
    read_full(response.data() + kHeaderBytes, header.payload_size);
  }
  return response;
}

Frame YieldClient::exchange(const std::string& frame) {
  std::string response = roundtrip(frame);
  if (response.empty()) {
    // The loopback fault harness models a dropped connection as an empty
    // response; a real socket drop already failed inside roundtrip().
    transport_fail("connection dropped before the response arrived");
  }
  try {
    return decode_frame(response);
  } catch (const ProtocolError& e) {
    // Truncated or mangled bytes: the wire failed, not the request.
    transport_fail(std::string("undecodable response: ") + e.what());
  }
}

Frame YieldClient::request_reply(const std::string& frame,
                                 bool check_payload) {
  using clock = std::chrono::steady_clock;
  const unsigned max_attempts = std::max(1u, retry_.max_attempts);
  const auto deadline =
      clock::now() + std::chrono::milliseconds(
                         retry_.deadline_ms > 0 ? retry_.deadline_ms
                                                : std::uint64_t{0});
  for (unsigned attempt = 1;; ++attempt) {
    // One span per attempt (inert when no sink): makes a client's retry
    // ladder — each attempt's duration and outcome — visible next to the
    // server-side spans in the same trace.
    obs::Span span(trace_, "client.attempt", "client");
    span.arg("attempt", std::to_string(attempt));
    try {
      Frame response = exchange(frame);
      if (response.type == FrameType::Error) {
        const auto info = error_from_payload(response.payload);
        throw ServiceError(info.code, info.message);
      }
      if (check_payload && response.type == FrameType::FlowResponse) {
        try {
          (void)flow_result_from_json(Json::parse(response.payload));
        } catch (const std::exception& e) {
          // A response that arrived but does not decode was corrupted in
          // flight — a transport failure, retried like one.
          transport_fail(std::string("corrupt response payload: ") +
                         e.what());
        }
      }
      span.arg("outcome", "ok");
      return response;
    } catch (const ServiceError& e) {
      span.arg("outcome", e.code());
      span.finish();
      if (!e.transient() || attempt >= max_attempts) throw;
      const unsigned backoff = retry_.backoff_ms(attempt);
      if (retry_.deadline_ms > 0 &&
          clock::now() + std::chrono::milliseconds(backoff) >= deadline) {
        throw;  // the budget is spent; surface the last transient error
      }
      if (fd_ >= 0 && e.code() == "transport") {
        // The stream state is unknowable after a transport error; start
        // the next attempt on a fresh connection.
        ::close(fd_);
        fd_ = -1;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(backoff));
    }
  }
}

yield::FlowResult YieldClient::call(const FlowRequest& request) {
  const Frame response =
      request_reply(encode_flow_request(request), /*check_payload=*/true);
  if (response.type != FrameType::FlowResponse) {
    throw ServiceError("unexpected_frame",
                       "server answered with frame type " +
                           std::to_string(static_cast<std::uint32_t>(
                               response.type)));
  }
  return flow_result_from_json(Json::parse(response.payload));
}

std::string YieldClient::ping() {
  const Frame response =
      request_reply(encode_frame(FrameType::Ping, "{}"),
                    /*check_payload=*/false);
  if (response.type != FrameType::Pong) {
    throw ServiceError("unexpected_frame", "ping was not answered with pong");
  }
  return response.payload;
}

std::string YieldClient::stats() {
  const Frame response =
      request_reply(encode_frame(FrameType::Stats, "{}"),
                    /*check_payload=*/false);
  if (response.type != FrameType::StatsReply) {
    throw ServiceError("unexpected_frame",
                       "stats was not answered with a stats reply");
  }
  return response.payload;
}

void YieldClient::shutdown_server() {
  const Frame response =
      decode_frame(roundtrip(encode_frame(FrameType::Shutdown, "{}")));
  if (response.type != FrameType::Pong) {
    throw ServiceError("unexpected_frame",
                       "shutdown was not acknowledged with pong");
  }
}

}  // namespace cny::service
