#include "service/protocol.h"

namespace cny::service {

namespace {

constexpr char kMagic[4] = {'C', 'N', 'Y', 'S'};

void put_u32(std::string& out, std::uint32_t v) {
  out += static_cast<char>(v & 0xFF);
  out += static_cast<char>((v >> 8) & 0xFF);
  out += static_cast<char>((v >> 16) & 0xFF);
  out += static_cast<char>((v >> 24) & 0xFF);
}

std::uint32_t get_u32(std::string_view bytes, std::size_t offset) {
  return static_cast<std::uint32_t>(
      static_cast<unsigned char>(bytes[offset]) |
      (static_cast<unsigned char>(bytes[offset + 1]) << 8) |
      (static_cast<unsigned char>(bytes[offset + 2]) << 16) |
      (static_cast<unsigned char>(bytes[offset + 3]) << 24));
}

[[noreturn]] void fail(const std::string& what) { throw ProtocolError(what); }

/// Wraps the accessor so a JsonError surfaces as a ProtocolError naming the
/// field — the message a client actually sees in the error frame.
template <typename Fn>
auto field(const Json& v, std::string_view key, Fn&& get) {
  try {
    return get(v.at(key));
  } catch (const JsonError& e) {
    fail("field '" + std::string(key) + "': " + e.what());
  }
}

double get_dbl(const Json& v, std::string_view key) {
  return field(v, key, [](const Json& f) { return f.as_double(); });
}

std::uint64_t get_u64(const Json& v, std::string_view key) {
  return field(v, key, [](const Json& f) { return f.as_u64(); });
}

std::string get_str(const Json& v, std::string_view key) {
  return field(v, key, [](const Json& f) { return f.as_string(); });
}

}  // namespace

std::string encode_frame(FrameType type, std::string_view payload) {
  if (payload.size() > kMaxPayloadBytes) fail("payload exceeds frame limit");
  std::string out;
  out.reserve(kHeaderBytes + payload.size());
  out.append(kMagic, sizeof(kMagic));
  put_u32(out, kProtocolVersion);
  put_u32(out, static_cast<std::uint32_t>(type));
  put_u32(out, static_cast<std::uint32_t>(payload.size()));
  out += payload;
  return out;
}

FrameHeader decode_header(std::string_view header) {
  if (header.size() < kHeaderBytes) fail("truncated frame header");
  if (header.substr(0, 4) != std::string_view(kMagic, 4)) {
    fail("bad frame magic (not a cntyield service stream)");
  }
  if (const auto version = get_u32(header, 4); version != kProtocolVersion) {
    fail("protocol version mismatch: peer speaks v" +
         std::to_string(version) + ", this build speaks v" +
         std::to_string(kProtocolVersion));
  }
  FrameHeader out;
  const auto type = get_u32(header, 8);
  switch (static_cast<FrameType>(type)) {
    case FrameType::FlowRequest:
    case FrameType::FlowResponse:
    case FrameType::Error:
    case FrameType::Ping:
    case FrameType::Pong:
    case FrameType::Shutdown:
    case FrameType::Stats:
    case FrameType::StatsReply: break;
    default: fail("unknown frame type " + std::to_string(type));
  }
  out.type = static_cast<FrameType>(type);
  out.payload_size = get_u32(header, 12);
  if (out.payload_size > kMaxPayloadBytes) {
    fail("oversized frame: " + std::to_string(out.payload_size) + " bytes");
  }
  return out;
}

Frame decode_frame(std::string_view bytes) {
  const FrameHeader header = decode_header(bytes);
  if (bytes.size() != kHeaderBytes + header.payload_size) {
    fail("frame length mismatch: header announces " +
         std::to_string(header.payload_size) + " payload bytes, got " +
         std::to_string(bytes.size() - kHeaderBytes));
  }
  return {header.type, std::string(bytes.substr(kHeaderBytes))};
}

Json to_json(const ProcessSpec& spec) {
  Json v = Json::object();
  v.set("pitch_mean_nm", Json::number(spec.pitch_mean_nm));
  v.set("pitch_cv", Json::number(spec.pitch_cv));
  v.set("p_metallic", Json::number(spec.p_metallic));
  v.set("p_remove_s", Json::number(spec.p_remove_s));
  return v;
}

Json to_json(const scenario::ScenarioSpec& spec) {
  Json v = Json::object();
  if (spec.shorts) {
    Json s = Json::object();
    s.set("p_rm", Json::number(spec.shorts->p_rm));
    s.set("p_noise_fails", Json::number(spec.shorts->p_noise_fails));
    v.set("shorts", std::move(s));
  }
  if (spec.length) {
    Json s = Json::object();
    s.set("mean", Json::number(spec.length->mean));
    s.set("cv", Json::number(spec.length->cv));
    s.set("sample_devices",
          Json::number(std::uint64_t{
              static_cast<unsigned>(spec.length->sample_devices)}));
    v.set("length", std::move(s));
  }
  if (spec.removal) {
    Json s = Json::object();
    s.set("selectivity", Json::number(spec.removal->selectivity));
    s.set("p_rm_target", Json::number(spec.removal->p_rm_target));
    v.set("removal", std::move(s));
  }
  return v;
}

scenario::ScenarioSpec scenario_from_json(const Json& v) {
  try {
    scenario::ScenarioSpec spec;
    if (const Json* s = v.find("shorts")) {
      spec.shorts.emplace();
      spec.shorts->p_rm = get_dbl(*s, "p_rm");
      spec.shorts->p_noise_fails = get_dbl(*s, "p_noise_fails");
    }
    if (const Json* s = v.find("length")) {
      spec.length.emplace();
      spec.length->mean = get_dbl(*s, "mean");
      spec.length->cv = get_dbl(*s, "cv");
      const std::uint64_t devices = get_u64(*s, "sample_devices");
      if (devices > 1000) fail("field 'sample_devices': out of range");
      spec.length->sample_devices = static_cast<int>(devices);
    }
    if (const Json* s = v.find("removal")) {
      spec.removal.emplace();
      spec.removal->selectivity = get_dbl(*s, "selectivity");
      spec.removal->p_rm_target = get_dbl(*s, "p_rm_target");
    }
    return spec;
  } catch (const JsonError& e) {
    fail(e.what());
  }
}

Json to_json(const yield::FlowParams& params) {
  Json v = Json::object();
  v.set("yield_desired", Json::number(params.yield_desired));
  v.set("chip_transistors", Json::number(params.chip_transistors));
  v.set("l_cnt", Json::number(params.l_cnt));
  v.set("fets_per_um", Json::number(params.fets_per_um));
  v.set("active_spacing", Json::number(params.active_spacing));
  v.set("mc_samples", Json::number(std::uint64_t{params.mc_samples}));
  v.set("seed", Json::number(params.seed));
  v.set("mc_streams", Json::number(std::uint64_t{params.mc_streams}));
  // Omitted when empty, keeping open-only payloads byte-identical to v1.
  if (!params.scenario.empty()) v.set("scenario", to_json(params.scenario));
  return v;
}

Json to_json(const FlowRequest& request) {
  Json v = Json::object();
  v.set("library", Json::string(request.library));
  v.set("design_instances", Json::number(request.design_instances));
  v.set("process", to_json(request.process));
  v.set("params", to_json(request.params));
  // Omitted when absent, keeping deadline-less payloads byte-identical to
  // their 0.2.0 form (and campaign request keys stable across the bump).
  if (request.deadline_ms > 0) {
    v.set("deadline_ms", Json::number(request.deadline_ms));
  }
  // Same trick for the trace id: omitted when empty, so untraced payloads
  // are byte-identical to their 0.3.0 form and campaign request keys
  // (FNV over this JSON) never move when tracing is switched on.
  if (!request.trace_id.empty()) {
    v.set("trace_id", Json::string(request.trace_id));
  }
  return v;
}

Json to_json(const yield::FlowResult& result) {
  // Scenario keys are emitted only when their mechanism ran, so the open-
  // only result payload is byte-identical to the pre-scenario protocol.
  const bool shorts = result.scenario.shorts.has_value();
  const bool length = result.scenario.length.has_value();
  Json v = Json::object();
  v.set("m_r_min", Json::number(result.m_r_min));
  v.set("m_min_uncorrelated", Json::number(result.m_min_uncorrelated));
  if (!result.scenario.empty()) {
    v.set("scenario", to_json(result.scenario));
    if (result.scenario.removal) {
      v.set("derived_p_rs", Json::number(result.derived_p_rs));
    }
  }
  Json strategies = Json::array();
  for (const auto& r : result.strategies) {
    Json s = Json::object();
    s.set("strategy", Json::string(yield::to_string(r.strategy)));
    s.set("relaxation", Json::number(r.relaxation));
    s.set("w_min", Json::number(r.w_min));
    s.set("power_penalty", Json::number(r.power_penalty));
    s.set("area_penalty", Json::number(r.area_penalty));
    s.set("cells_widened", Json::number(std::uint64_t{r.cells_widened}));
    if (shorts) {
      s.set("short_mode_yield", Json::number(r.short_mode_yield));
      s.set("required_p_rm", Json::number(r.required_p_rm));
    }
    if (length) s.set("length_scale", Json::number(r.length_scale));
    strategies.push_back(std::move(s));
  }
  v.set("strategies", std::move(strategies));
  return v;
}

ProcessSpec process_from_json(const Json& v) {
  ProcessSpec spec;
  spec.pitch_mean_nm = get_dbl(v, "pitch_mean_nm");
  spec.pitch_cv = get_dbl(v, "pitch_cv");
  spec.p_metallic = get_dbl(v, "p_metallic");
  spec.p_remove_s = get_dbl(v, "p_remove_s");
  return spec;
}

yield::FlowParams flow_params_from_json(const Json& v) {
  yield::FlowParams params;
  params.yield_desired = get_dbl(v, "yield_desired");
  params.chip_transistors = get_dbl(v, "chip_transistors");
  params.l_cnt = get_dbl(v, "l_cnt");
  params.fets_per_um = get_dbl(v, "fets_per_um");
  params.active_spacing = get_dbl(v, "active_spacing");
  params.mc_samples = static_cast<std::size_t>(get_u64(v, "mc_samples"));
  params.seed = get_u64(v, "seed");
  const std::uint64_t streams = get_u64(v, "mc_streams");
  if (streams > 0xFFFFFFFFull) fail("field 'mc_streams': out of range");
  params.mc_streams = static_cast<unsigned>(streams);
  if (const Json* s = v.find("scenario")) {
    params.scenario = scenario_from_json(*s);
  }
  return params;
}

FlowRequest flow_request_from_json(const Json& v) {
  try {
    FlowRequest request;
    request.library = get_str(v, "library");
    request.design_instances = get_u64(v, "design_instances");
    request.process = process_from_json(v.at("process"));
    request.params = flow_params_from_json(v.at("params"));
    if (const Json* d = v.find("deadline_ms")) {
      request.deadline_ms = d->as_u64();
    }
    if (const Json* t = v.find("trace_id")) {
      request.trace_id = t->as_string();
    }
    return request;
  } catch (const JsonError& e) {
    fail(e.what());
  }
}

yield::FlowResult flow_result_from_json(const Json& v) {
  try {
    yield::FlowResult result;
    result.m_r_min = get_dbl(v, "m_r_min");
    result.m_min_uncorrelated = get_u64(v, "m_min_uncorrelated");
    if (const Json* s = v.find("scenario")) {
      result.scenario = scenario_from_json(*s);
    }
    if (const Json* s = v.find("derived_p_rs")) {
      result.derived_p_rs = s->as_double();
    }
    for (const Json& s : v.at("strategies").items()) {
      yield::StrategyResult r;
      const std::string name = get_str(s, "strategy");
      bool known = false;
      for (const auto strat :
           {yield::Strategy::Uncorrelated, yield::Strategy::DirectionalOnly,
            yield::Strategy::AlignedOneRow, yield::Strategy::AlignedTwoRows}) {
        if (name == yield::to_string(strat)) {
          r.strategy = strat;
          known = true;
          break;
        }
      }
      if (!known) fail("unknown strategy '" + name + "' in flow result");
      r.relaxation = get_dbl(s, "relaxation");
      r.w_min = get_dbl(s, "w_min");
      r.power_penalty = get_dbl(s, "power_penalty");
      r.area_penalty = get_dbl(s, "area_penalty");
      r.cells_widened = static_cast<std::size_t>(get_u64(s, "cells_widened"));
      if (const Json* f = s.find("short_mode_yield")) {
        r.short_mode_yield = f->as_double();
      }
      if (const Json* f = s.find("required_p_rm")) {
        r.required_p_rm = f->as_double();
      }
      if (const Json* f = s.find("length_scale")) {
        r.length_scale = f->as_double();
      }
      result.strategies.push_back(r);
    }
    return result;
  } catch (const JsonError& e) {
    fail(e.what());
  }
}

std::string encode_flow_request(const FlowRequest& request) {
  return encode_frame(FrameType::FlowRequest, to_json(request).dump());
}

std::string encode_flow_response(const yield::FlowResult& result) {
  return encode_frame(FrameType::FlowResponse, to_json(result).dump());
}

std::string encode_error(std::string_view code, std::string_view message) {
  Json e = Json::object();
  e.set("code", Json::string(std::string(code)));
  e.set("message", Json::string(std::string(message)));
  Json v = Json::object();
  v.set("error", std::move(e));
  return encode_frame(FrameType::Error, v.dump());
}

ServiceErrorInfo error_from_payload(std::string_view payload) {
  try {
    const Json v = Json::parse(payload);
    const Json& e = v.at("error");
    return {get_str(e, "code"), get_str(e, "message")};
  } catch (const std::exception& ex) {
    // JsonError from parse/at, or the ProtocolError get_str wraps it in:
    // either way the peer broke the error shape, which must still surface
    // as a ServiceError, never escape as a raw decode exception.
    return {"malformed_error", std::string("unparseable error frame: ") +
                                   ex.what()};
  }
}

bool is_transient_error(std::string_view code) {
  return code == "transport" || code == "server_overloaded" ||
         code == "try_later" || code == "shutting_down" ||
         code == "deadline_exceeded";
}

void validate(const FlowRequest& request) {
  const auto check = [](bool ok, const char* what) {
    if (!ok) fail(std::string("invalid request: ") + what);
  };
  check(request.library == "nangate45" || request.library == "commercial65",
        "library must be \"nangate45\" or \"commercial65\"");
  check(request.design_instances <= 2'000'000,
        "design_instances must be <= 2e6 (0 = default design)");
  const ProcessSpec& p = request.process;
  check(p.pitch_mean_nm > 0.0 && p.pitch_mean_nm <= 1000.0,
        "pitch_mean_nm must be in (0, 1000]");
  check(p.pitch_cv > 0.0 && p.pitch_cv <= 3.0, "pitch_cv must be in (0, 3]");
  check(p.p_metallic >= 0.0 && p.p_metallic < 1.0,
        "p_metallic must be in [0, 1)");
  check(p.p_remove_s >= 0.0 && p.p_remove_s < 1.0,
        "p_remove_s must be in [0, 1)");
  check(request.deadline_ms <= 86'400'000,
        "deadline_ms must be <= 86400000 (one day; 0 = no deadline)");
  check(request.trace_id.size() <= 64,
        "trace_id must be <= 64 characters (empty = untraced)");
  for (const char c : request.trace_id) {
    check((c >= '0' && c <= '9') || (c >= 'a' && c <= 'z') ||
              (c >= 'A' && c <= 'Z') || c == '.' || c == '_' || c == '-',
          "trace_id must be [0-9A-Za-z._-]");
  }
  // A CNT that can never fail makes p_F identically 0 and W_min undefined.
  check(p.p_metallic + (1.0 - p.p_metallic) * p.p_remove_s > 0.0,
        "process has zero per-CNT failure probability");
  // FlowParams + scenario ranges: the one helper run_flow and the CLI also
  // use, rewrapped so a bad value surfaces as the same message here as
  // everywhere else — but as a ProtocolError the server answers with an
  // error frame.
  try {
    yield::validate(request.params);
  } catch (const std::exception& e) {
    fail(std::string("invalid request: ") + e.what());
  }
}

}  // namespace cny::service
