#include "numeric/interp.h"

#include <algorithm>
#include <cmath>

#include "util/contracts.h"

namespace cny::numeric {

MonotoneCubic::MonotoneCubic(std::vector<double> x, std::vector<double> y)
    : x_(std::move(x)), y_(std::move(y)) {
  CNY_EXPECT(x_.size() == y_.size());
  CNY_EXPECT(x_.size() >= 2);
  for (std::size_t i = 1; i < x_.size(); ++i) {
    CNY_EXPECT_MSG(x_[i] > x_[i - 1], "knots must be strictly increasing");
  }

  const std::size_t n = x_.size();
  std::vector<double> delta(n - 1);
  for (std::size_t i = 0; i + 1 < n; ++i) {
    delta[i] = (y_[i + 1] - y_[i]) / (x_[i + 1] - x_[i]);
  }
  m_.assign(n, 0.0);
  m_[0] = delta[0];
  m_[n - 1] = delta[n - 2];
  for (std::size_t i = 1; i + 1 < n; ++i) {
    m_[i] = (delta[i - 1] * delta[i] <= 0.0) ? 0.0
                                             : 0.5 * (delta[i - 1] + delta[i]);
  }
  // Fritsch–Carlson monotonicity filter.
  for (std::size_t i = 0; i + 1 < n; ++i) {
    if (delta[i] == 0.0) {
      m_[i] = 0.0;
      m_[i + 1] = 0.0;
      continue;
    }
    const double a = m_[i] / delta[i];
    const double b = m_[i + 1] / delta[i];
    const double s = a * a + b * b;
    if (s > 9.0) {
      const double tau = 3.0 / std::sqrt(s);
      m_[i] = tau * a * delta[i];
      m_[i + 1] = tau * b * delta[i];
    }
  }
}

std::size_t MonotoneCubic::segment(double x) const {
  const auto it = std::upper_bound(x_.begin(), x_.end(), x);
  const std::size_t idx = static_cast<std::size_t>(it - x_.begin());
  if (idx == 0) return 0;
  return std::min(idx - 1, x_.size() - 2);
}

double MonotoneCubic::operator()(double x) const {
  if (x <= x_.front()) return y_.front();
  if (x >= x_.back()) return y_.back();
  const std::size_t i = segment(x);
  const double h = x_[i + 1] - x_[i];
  const double t = (x - x_[i]) / h;
  const double t2 = t * t, t3 = t2 * t;
  const double h00 = 2 * t3 - 3 * t2 + 1;
  const double h10 = t3 - 2 * t2 + t;
  const double h01 = -2 * t3 + 3 * t2;
  const double h11 = t3 - t2;
  return h00 * y_[i] + h10 * h * m_[i] + h01 * y_[i + 1] + h11 * h * m_[i + 1];
}

double MonotoneCubic::derivative(double x) const {
  if (x <= x_.front() || x >= x_.back()) return 0.0;
  const std::size_t i = segment(x);
  const double h = x_[i + 1] - x_[i];
  const double t = (x - x_[i]) / h;
  const double t2 = t * t;
  const double dh00 = (6 * t2 - 6 * t) / h;
  const double dh10 = 3 * t2 - 4 * t + 1;
  const double dh01 = (-6 * t2 + 6 * t) / h;
  const double dh11 = 3 * t2 - 2 * t;
  return dh00 * y_[i] + dh10 * m_[i] + dh01 * y_[i + 1] + dh11 * m_[i + 1];
}

}  // namespace cny::numeric
