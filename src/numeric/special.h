// Special functions needed by the CNT count model:
//   * regularized incomplete gamma P(a,x)/Q(a,x) — Gamma CDF/CCDF
//   * log-gamma (wraps std::lgamma, which is thread-safe for results)
//   * log-sum-exp helpers for assembling tiny tail probabilities
//
// Implementations follow the classic series/continued-fraction split at
// x < a+1 (Numerical Recipes style), with relative accuracy ~1e-12 over the
// parameter ranges this library uses (a up to a few thousand).
#pragma once

#include <cstddef>
#include <vector>

namespace cny::numeric {

/// Natural log of the Gamma function; requires a > 0.
[[nodiscard]] double log_gamma(double a);

/// Regularized lower incomplete gamma P(a,x) = γ(a,x)/Γ(a); a > 0, x >= 0.
/// Equals the CDF at x of a Gamma(shape=a, scale=1) random variable.
[[nodiscard]] double gamma_p(double a, double x);

/// Regularized upper incomplete gamma Q(a,x) = 1 - P(a,x).
[[nodiscard]] double gamma_q(double a, double x);

/// Q(a,x) with the prefactor τ = x^a e^{-x} / Γ(a+1) supplied by the
/// caller and a caller-chosen relative tolerance `eps` (clamped to
/// [1e-15, 1e-6]). Same series/continued-fraction split as gamma_q, but
/// the per-call exp/log/lgamma cost of the prefactor is gone — callers
/// sweeping a family of shapes (the truncated-PGF kernel steps a → a+k
/// across PMF terms, cnt/pf_kernel.cpp) maintain τ by one multiply per
/// step and pay only the iteration loop here. With eps = 1e-15 and an
/// exact τ this agrees with gamma_q to ~1e-14 relative.
///
/// Defined inline (and without the contract checks of its siblings, the
/// caller having validated a > 0, x >= 0, τ >= 0 for the whole sweep): it
/// sits inside a loop executing ~10^5 times per p_F query, where the call
/// itself is measurable.
[[nodiscard]] inline double gamma_q_prefactored(double a, double x, double tau,
                                                double eps) {
  if (x == 0.0) return 1.0;
  eps = eps < 1e-15 ? 1e-15 : (eps > 1e-6 ? 1e-6 : eps);
  constexpr int kIterCap = 500;
  if (x < a + 1.0) {
    // P(a,x) = τ · (1 + x/(a+1) + x²/((a+1)(a+2)) + …): the gamma_p
    // series with the exp(-x + a·ln x - lnΓ(a)) prefactor replaced by τ.
    double ap = a;
    double del = 1.0;
    double sum = 1.0;
    for (int i = 0; i < kIterCap; ++i) {
      ap += 1.0;
      del *= x / ap;
      sum += del;
      if (del < sum * eps) break;
    }
    return 1.0 - tau * sum;
  }
  // Q(a,x) = [x^a e^{-x} / Γ(a)] · h = τ · a · h, h the modified-Lentz
  // continued fraction of gamma_q.
  constexpr double kCfTiny = 1e-300;
  double b = x + 1.0 - a;
  double c = 1.0 / kCfTiny;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i <= kIterCap; ++i) {
    const double an = -i * (i - a);
    b += 2.0;
    d = an * d + b;
    if (d > -kCfTiny && d < kCfTiny) d = kCfTiny;
    c = b + an / c;
    if (c > -kCfTiny && c < kCfTiny) c = kCfTiny;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    const double dev = del - 1.0;
    if (dev > -eps && dev < eps) break;
  }
  return tau * a * h;
}

/// CDF of Gamma(shape k, scale theta) at x (0 for x <= 0).
[[nodiscard]] double gamma_cdf(double x, double k, double theta);

/// PDF of Gamma(shape k, scale theta) at x (0 for x < 0; handles k < 1 at 0+).
[[nodiscard]] double gamma_pdf(double x, double k, double theta);

/// Poisson CDF P(X <= n) for X ~ Poisson(lambda); n >= 0.
[[nodiscard]] double poisson_cdf(long n, double lambda);

/// Poisson PMF P(X == n).
[[nodiscard]] double poisson_pmf(long n, double lambda);

/// log(exp(a) + exp(b)) without overflow.
[[nodiscard]] double log_add_exp(double a, double b);

/// log(sum exp(v_i)) without overflow; returns -inf for an empty vector.
[[nodiscard]] double log_sum_exp(const std::vector<double>& v);

/// log(1 - exp(x)) for x < 0, accurate near both ends.
[[nodiscard]] double log1m_exp(double x);

}  // namespace cny::numeric
