// Special functions needed by the CNT count model:
//   * regularized incomplete gamma P(a,x)/Q(a,x) — Gamma CDF/CCDF
//   * log-gamma (wraps std::lgamma, which is thread-safe for results)
//   * log-sum-exp helpers for assembling tiny tail probabilities
//
// Implementations follow the classic series/continued-fraction split at
// x < a+1 (Numerical Recipes style), with relative accuracy ~1e-12 over the
// parameter ranges this library uses (a up to a few thousand).
#pragma once

#include <cstddef>
#include <vector>

namespace cny::numeric {

/// Natural log of the Gamma function; requires a > 0.
[[nodiscard]] double log_gamma(double a);

/// Regularized lower incomplete gamma P(a,x) = γ(a,x)/Γ(a); a > 0, x >= 0.
/// Equals the CDF at x of a Gamma(shape=a, scale=1) random variable.
[[nodiscard]] double gamma_p(double a, double x);

/// Regularized upper incomplete gamma Q(a,x) = 1 - P(a,x).
[[nodiscard]] double gamma_q(double a, double x);

/// CDF of Gamma(shape k, scale theta) at x (0 for x <= 0).
[[nodiscard]] double gamma_cdf(double x, double k, double theta);

/// PDF of Gamma(shape k, scale theta) at x (0 for x < 0; handles k < 1 at 0+).
[[nodiscard]] double gamma_pdf(double x, double k, double theta);

/// Poisson CDF P(X <= n) for X ~ Poisson(lambda); n >= 0.
[[nodiscard]] double poisson_cdf(long n, double lambda);

/// Poisson PMF P(X == n).
[[nodiscard]] double poisson_pmf(long n, double lambda);

/// log(exp(a) + exp(b)) without overflow.
[[nodiscard]] double log_add_exp(double a, double b);

/// log(sum exp(v_i)) without overflow; returns -inf for an empty vector.
[[nodiscard]] double log_sum_exp(const std::vector<double>& v);

/// log(1 - exp(x)) for x < 0, accurate near both ends.
[[nodiscard]] double log1m_exp(double x);

}  // namespace cny::numeric
