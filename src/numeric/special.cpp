#include "numeric/special.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/contracts.h"

namespace cny::numeric {

namespace {

constexpr int kMaxIter = 500;
constexpr double kEps = 1e-14;
constexpr double kTiny = 1e-300;

/// Series representation of P(a,x), valid/fast for x < a+1.
double gamma_p_series(double a, double x) {
  double ap = a;
  double sum = 1.0 / a;
  double del = sum;
  for (int i = 0; i < kMaxIter; ++i) {
    ap += 1.0;
    del *= x / ap;
    sum += del;
    if (std::fabs(del) < std::fabs(sum) * kEps) break;
  }
  return sum * std::exp(-x + a * std::log(x) - log_gamma(a));
}

/// Continued-fraction representation of Q(a,x), valid/fast for x >= a+1.
double gamma_q_cf(double a, double x) {
  double b = x + 1.0 - a;
  double c = 1.0 / kTiny;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i <= kMaxIter; ++i) {
    const double an = -i * (i - a);
    b += 2.0;
    d = an * d + b;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = b + an / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < kEps) break;
  }
  return std::exp(-x + a * std::log(x) - log_gamma(a)) * h;
}

}  // namespace

double log_gamma(double a) {
  CNY_EXPECT(a > 0.0);
  return std::lgamma(a);
}

double gamma_p(double a, double x) {
  CNY_EXPECT(a > 0.0);
  CNY_EXPECT(x >= 0.0);
  if (x == 0.0) return 0.0;
  if (x < a + 1.0) return gamma_p_series(a, x);
  return 1.0 - gamma_q_cf(a, x);
}

double gamma_q(double a, double x) {
  CNY_EXPECT(a > 0.0);
  CNY_EXPECT(x >= 0.0);
  if (x == 0.0) return 1.0;
  if (x < a + 1.0) return 1.0 - gamma_p_series(a, x);
  return gamma_q_cf(a, x);
}

double gamma_cdf(double x, double k, double theta) {
  CNY_EXPECT(k > 0.0 && theta > 0.0);
  if (x <= 0.0) return 0.0;
  return gamma_p(k, x / theta);
}

double gamma_pdf(double x, double k, double theta) {
  CNY_EXPECT(k > 0.0 && theta > 0.0);
  if (x < 0.0) return 0.0;
  if (x == 0.0) {
    if (k > 1.0) return 0.0;
    if (k == 1.0) return 1.0 / theta;
    return std::numeric_limits<double>::infinity();
  }
  const double logp = (k - 1.0) * std::log(x) - x / theta - log_gamma(k) -
                      k * std::log(theta);
  return std::exp(logp);
}

double poisson_cdf(long n, double lambda) {
  CNY_EXPECT(n >= 0);
  CNY_EXPECT(lambda >= 0.0);
  if (lambda == 0.0) return 1.0;
  // P(X <= n) = Q(n+1, lambda).
  return gamma_q(static_cast<double>(n) + 1.0, lambda);
}

double poisson_pmf(long n, double lambda) {
  CNY_EXPECT(n >= 0);
  CNY_EXPECT(lambda >= 0.0);
  if (lambda == 0.0) return n == 0 ? 1.0 : 0.0;
  const double logp = -lambda + n * std::log(lambda) -
                      log_gamma(static_cast<double>(n) + 1.0);
  return std::exp(logp);
}

double log_add_exp(double a, double b) {
  if (a == -std::numeric_limits<double>::infinity()) return b;
  if (b == -std::numeric_limits<double>::infinity()) return a;
  const double m = std::max(a, b);
  return m + std::log1p(std::exp(std::min(a, b) - m));
}

double log_sum_exp(const std::vector<double>& v) {
  double acc = -std::numeric_limits<double>::infinity();
  for (double x : v) acc = log_add_exp(acc, x);
  return acc;
}

double log1m_exp(double x) {
  CNY_EXPECT(x < 0.0);
  // Mächler's recipe: use log(-expm1(x)) for x > -ln2, log1p(-exp(x)) below.
  constexpr double kLn2 = 0.6931471805599453;
  if (x > -kLn2) return std::log(-std::expm1(x));
  return std::log1p(-std::exp(x));
}

}  // namespace cny::numeric
