#include "numeric/roots.h"

#include <cmath>

#include "util/contracts.h"

namespace cny::numeric {

RootResult brent(const std::function<double(double)>& f, double lo, double hi,
                 double x_tol, int max_iter) {
  CNY_EXPECT(lo < hi);
  CNY_EXPECT(x_tol > 0.0);
  double a = lo, b = hi;
  double fa = f(a), fb = f(b);
  RootResult res;
  if (fa == 0.0) return {a, 0.0, 0, true};
  if (fb == 0.0) return {b, 0.0, 0, true};
  CNY_EXPECT_MSG(fa * fb < 0.0, "brent: endpoints do not bracket a root");

  double c = a, fc = fa;
  double d = b - a, e = d;
  for (int iter = 1; iter <= max_iter; ++iter) {
    if (std::fabs(fc) < std::fabs(fb)) {
      a = b; b = c; c = a;
      fa = fb; fb = fc; fc = fa;
    }
    const double tol1 = 2.0 * 2.22e-16 * std::fabs(b) + 0.5 * x_tol;
    const double xm = 0.5 * (c - b);
    if (std::fabs(xm) <= tol1 || fb == 0.0) {
      return {b, fb, iter, true};
    }
    if (std::fabs(e) >= tol1 && std::fabs(fa) > std::fabs(fb)) {
      // Attempt inverse quadratic interpolation / secant.
      const double s = fb / fa;
      double p, q;
      if (a == c) {
        p = 2.0 * xm * s;
        q = 1.0 - s;
      } else {
        const double qq = fa / fc;
        const double r = fb / fc;
        p = s * (2.0 * xm * qq * (qq - r) - (b - a) * (r - 1.0));
        q = (qq - 1.0) * (r - 1.0) * (s - 1.0);
      }
      if (p > 0.0) q = -q;
      p = std::fabs(p);
      const double min1 = 3.0 * xm * q - std::fabs(tol1 * q);
      const double min2 = std::fabs(e * q);
      if (2.0 * p < std::min(min1, min2)) {
        e = d;
        d = p / q;
      } else {
        d = xm;
        e = d;
      }
    } else {
      d = xm;
      e = d;
    }
    a = b;
    fa = fb;
    b += (std::fabs(d) > tol1) ? d : (xm > 0.0 ? tol1 : -tol1);
    fb = f(b);
    if (fb * fc > 0.0) {
      c = a;
      fc = fa;
      e = d = b - a;
    }
  }
  return {b, fb, max_iter, false};
}

RootResult invert_decreasing(const std::function<double(double)>& f,
                             double target, double lo, double hi,
                             double x_tol) {
  CNY_EXPECT(lo < hi);
  const double flo = f(lo), fhi = f(hi);
  CNY_EXPECT_MSG(flo >= target && target >= fhi,
                 "invert_decreasing: target outside [f(hi), f(lo)]");
  if (flo == target) return {lo, 0.0, 0, true};
  if (fhi == target) return {hi, 0.0, 0, true};
  return brent([&](double x) { return f(x) - target; }, lo, hi, x_tol);
}

}  // namespace cny::numeric
