// Monotone piecewise-cubic (Fritsch–Carlson) interpolation, used to cache
// expensive pF(W) evaluations along a sweep and to read intersections off
// digitised curves (the "draw a horizontal line on Fig 2.1" procedure).
#pragma once

#include <vector>

namespace cny::numeric {

/// Monotone cubic Hermite interpolant through (x_i, y_i), x strictly
/// increasing. If the data are monotone, the interpolant is too (no
/// overshoot) — important when inverting pF(W) curves.
class MonotoneCubic {
 public:
  MonotoneCubic(std::vector<double> x, std::vector<double> y);

  /// Evaluates the interpolant; clamps outside [x_front, x_back].
  [[nodiscard]] double operator()(double x) const;

  /// Derivative of the interpolant (clamped endpoints give 0 outside).
  [[nodiscard]] double derivative(double x) const;

  [[nodiscard]] double x_min() const { return x_.front(); }
  [[nodiscard]] double x_max() const { return x_.back(); }
  [[nodiscard]] std::size_t size() const { return x_.size(); }

 private:
  [[nodiscard]] std::size_t segment(double x) const;

  std::vector<double> x_, y_, m_;  // knots, values, tangents
};

}  // namespace cny::numeric
