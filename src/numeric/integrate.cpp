#include "numeric/integrate.h"

#include <array>
#include <cmath>

#include "util/contracts.h"

namespace cny::numeric {

namespace {

double simpson(double a, double fa, double b, double fb, double fm) {
  return (b - a) / 6.0 * (fa + 4.0 * fm + fb);
}

double adaptive_step(const std::function<double(double)>& f, double a,
                     double fa, double b, double fb, double m, double fm,
                     double whole, double tol, int depth) {
  const double lm = 0.5 * (a + m);
  const double rm = 0.5 * (m + b);
  const double flm = f(lm);
  const double frm = f(rm);
  const double left = simpson(a, fa, m, fm, flm);
  const double right = simpson(m, fm, b, fb, frm);
  const double delta = left + right - whole;
  if (depth <= 0 || std::fabs(delta) <= 15.0 * tol) {
    return left + right + delta / 15.0;
  }
  return adaptive_step(f, a, fa, m, fm, lm, flm, left, 0.5 * tol, depth - 1) +
         adaptive_step(f, m, fm, b, fb, rm, frm, right, 0.5 * tol, depth - 1);
}

// 16-point Gauss–Legendre nodes/weights on [-1, 1] (positive half; mirrored).
constexpr std::array<double, 8> kGlNodes = {
    0.0950125098376374, 0.2816035507792589, 0.4580167776572274,
    0.6178762444026438, 0.7554044083550030, 0.8656312023878318,
    0.9445750230732326, 0.9894009349916499};
constexpr std::array<double, 8> kGlWeights = {
    0.1894506104550685, 0.1826034150449236, 0.1691565193950025,
    0.1495959888165767, 0.1246289712555339, 0.0951585116824928,
    0.0622535239386479, 0.0271524594117541};

}  // namespace

double integrate_adaptive(const std::function<double(double)>& f, double a,
                          double b, double abs_tol, int max_depth) {
  CNY_EXPECT(abs_tol > 0.0);
  if (a == b) return 0.0;
  double sign = 1.0;
  if (a > b) {
    std::swap(a, b);
    sign = -1.0;
  }
  const double m = 0.5 * (a + b);
  const double fa = f(a), fb = f(b), fm = f(m);
  const double whole = simpson(a, fa, b, fb, fm);
  return sign * adaptive_step(f, a, fa, b, fb, m, fm, whole, abs_tol, max_depth);
}

const std::array<double, 8>& gl16_nodes() { return kGlNodes; }

const std::array<double, 8>& gl16_weights() { return kGlWeights; }

double integrate_gl(const std::function<double(double)>& f, double a, double b,
                    int panels) {
  CNY_EXPECT(panels >= 1);
  if (a == b) return 0.0;
  double sign = 1.0;
  if (a > b) {
    std::swap(a, b);
    sign = -1.0;
  }
  const double h = (b - a) / panels;
  double total = 0.0;
  for (int p = 0; p < panels; ++p) {
    const double c = a + (p + 0.5) * h;  // panel centre
    const double r = 0.5 * h;            // panel half-width
    double acc = 0.0;
    for (std::size_t i = 0; i < kGlNodes.size(); ++i) {
      acc += kGlWeights[i] * (f(c - r * kGlNodes[i]) + f(c + r * kGlNodes[i]));
    }
    total += acc * r;
  }
  return sign * total;
}

}  // namespace cny::numeric
