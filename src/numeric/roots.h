// Scalar root finding and monotone inversion (used by the W_min solver).
#pragma once

#include <functional>

namespace cny::numeric {

struct RootResult {
  double x = 0.0;        ///< located root
  double fx = 0.0;       ///< residual f(x)
  int iterations = 0;    ///< iterations consumed
  bool converged = false;
};

/// Brent's method on [lo, hi]; requires f(lo) and f(hi) to bracket a root
/// (opposite signs, or either endpoint already within tol of zero).
[[nodiscard]] RootResult brent(const std::function<double(double)>& f,
                               double lo, double hi, double x_tol = 1e-10,
                               int max_iter = 200);

/// Inverts a *decreasing* function: finds x in [lo, hi] with f(x) = target.
/// Expands understanding of callers like pF(W) which fall monotonically.
/// Requires f(lo) >= target >= f(hi).
[[nodiscard]] RootResult invert_decreasing(
    const std::function<double(double)>& f, double target, double lo,
    double hi, double x_tol = 1e-9);

}  // namespace cny::numeric
