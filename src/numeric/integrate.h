// One-dimensional quadrature: adaptive Simpson (general) and fixed-order
// Gauss–Legendre panels (fast path for the smooth renewal-equation kernels).
#pragma once

#include <array>
#include <functional>

namespace cny::numeric {

/// Adaptive Simpson integration of f over [a, b] to absolute tolerance
/// `abs_tol` (with a depth cap to guarantee termination).
[[nodiscard]] double integrate_adaptive(const std::function<double(double)>& f,
                                        double a, double b,
                                        double abs_tol = 1e-12,
                                        int max_depth = 40);

/// Composite 16-point Gauss–Legendre over `panels` equal sub-intervals.
/// Exact for polynomials of degree <= 31 per panel; ideal for the smooth
/// Gamma-kernel integrals in the CNT count model.
[[nodiscard]] double integrate_gl(const std::function<double(double)>& f,
                                  double a, double b, int panels = 8);

/// The 16-point rule behind integrate_gl: nodes/weights of the positive half
/// of [-1, 1] (the full rule mirrors them about 0). Exposed so node-major
/// kernels (cnt/pf_kernel.h) can evaluate on integrate_gl's exact grid while
/// caching per-node state across many integrands.
[[nodiscard]] const std::array<double, 8>& gl16_nodes();
[[nodiscard]] const std::array<double, 8>& gl16_weights();

}  // namespace cny::numeric
