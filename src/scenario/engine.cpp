#include "scenario/engine.h"

#include <cmath>
#include <stdexcept>

#include "cnt/removal_tradeoff.h"
#include "device/short_model.h"
#include "util/contracts.h"
#include "util/strings.h"
#include "yield/length_variation.h"

namespace cny::scenario {

namespace {

/// NaN-safe range guard: NaN fails every comparison, so `ok` written in the
/// affirmative form rejects it for free. Plain invalid_argument (see
/// yield::validate): the message crosses the service wire verbatim.
void check(bool ok, const char* what) {
  if (!ok) throw std::invalid_argument(what);
}

class ShortFailureMechanism final : public Mechanism {
 public:
  std::string_view name() const override { return "shorts"; }
  std::string_view summary() const override {
    return "surviving-m-CNT shorts tax the yield budget (combined-mode "
           "W_min, required p_Rm reported)";
  }
  bool enabled(const ScenarioSpec& spec) const override {
    return spec.shorts.has_value();
  }
  void enable(ScenarioSpec& spec) const override {
    if (!spec.shorts) spec.shorts.emplace();
  }
  void validate(const ScenarioSpec& spec) const override {
    if (!spec.shorts) return;
    check(spec.shorts->p_rm > 0.0 && spec.shorts->p_rm <= 1.0,
          "scenario shorts: p_rm must be in (0, 1]");
    check(spec.shorts->p_noise_fails >= 0.0 &&
              spec.shorts->p_noise_fails <= 1.0,
          "scenario shorts: p_noise_fails must be in [0, 1]");
  }
};

class FiniteLengthMechanism final : public Mechanism {
 public:
  std::string_view name() const override { return "length"; }
  std::string_view summary() const override {
    return "finite/variable CNT length rescales the aligned-row "
           "correlation credit (exact finite-tube union)";
  }
  bool enabled(const ScenarioSpec& spec) const override {
    return spec.length.has_value();
  }
  void enable(ScenarioSpec& spec) const override {
    if (!spec.length) spec.length.emplace();
  }
  void validate(const ScenarioSpec& spec) const override {
    if (!spec.length) return;
    check(spec.length->mean > 0.0 && spec.length->mean <= 1.0e9,
          "scenario length: mean must be in (0, 1e9] nm");
    check(spec.length->cv >= 0.0 && spec.length->cv <= 3.0,
          "scenario length: cv must be in [0, 3]");
    check(spec.length->sample_devices >= 2 &&
              spec.length->sample_devices <= 22,
          "scenario length: sample_devices must be in [2, 22] (exact "
          "inclusion-exclusion bound)");
  }
};

class RemovalFrontierMechanism final : public Mechanism {
 public:
  std::string_view name() const override { return "removal"; }
  std::string_view summary() const override {
    return "p_Rs earned from the probit removal frontier at the targeted "
           "p_Rm (selectivity in sigma units)";
  }
  bool enabled(const ScenarioSpec& spec) const override {
    return spec.removal.has_value();
  }
  void enable(ScenarioSpec& spec) const override {
    if (!spec.removal) spec.removal.emplace();
  }
  void validate(const ScenarioSpec& spec) const override {
    if (!spec.removal) return;
    check(spec.removal->selectivity > 0.0 && spec.removal->selectivity <= 20.0,
          "scenario removal: selectivity must be in (0, 20] sigma");
    check(spec.removal->p_rm_target > 0.0 && spec.removal->p_rm_target < 1.0,
          "scenario removal: p_rm_target must be in (0, 1)");
  }
};

}  // namespace

const std::vector<const Mechanism*>& mechanisms() {
  // Registration order is composition order: the corner is derived before
  // the mechanisms that read it.
  static const RemovalFrontierMechanism removal;
  static const ShortFailureMechanism shorts;
  static const FiniteLengthMechanism length;
  static const std::vector<const Mechanism*> all = {&removal, &shorts,
                                                    &length};
  return all;
}

const Mechanism* find_mechanism(std::string_view name) {
  for (const Mechanism* m : mechanisms()) {
    if (m->name() == name) return m;
  }
  return nullptr;
}

ScenarioSpec spec_from_names(std::string_view csv) {
  ScenarioSpec spec;
  for (const auto& token : util::split(csv, ',')) {
    if (token.empty() || token == "none") continue;
    const Mechanism* m = find_mechanism(token);
    if (m == nullptr) {
      throw std::invalid_argument("unknown scenario mechanism '" + token +
                                  "' (known: shorts, length, removal)");
    }
    m->enable(spec);
  }
  return spec;
}

std::string names(const ScenarioSpec& spec) {
  std::string out;
  for (const Mechanism* m : mechanisms()) {
    if (!m->enabled(spec)) continue;
    if (!out.empty()) out += ',';
    out += m->name();
  }
  return out;
}

void validate(const ScenarioSpec& spec) {
  for (const Mechanism* m : mechanisms()) m->validate(spec);
}

cnt::ProcessParams derived_process(cnt::ProcessParams base,
                                   const ScenarioSpec& spec) {
  if (spec.removal) {
    const cnt::RemovalTradeoff tradeoff(spec.removal->selectivity);
    base.p_remove_m = spec.removal->p_rm_target;
    base.p_remove_s = tradeoff.p_rs_at(spec.removal->p_rm_target);
  }
  return base;
}

Engine::Engine(const yield::FlowParams& params, const cnt::PitchModel& pitch,
               const cnt::ProcessParams& base_process)
    : spec_(params.scenario),
      pitch_(pitch),
      process_(derived_process(base_process, params.scenario)),
      chip_transistors_(params.chip_transistors),
      yield_desired_(params.yield_desired),
      l_cnt_(params.l_cnt),
      fets_per_um_(params.fets_per_um) {
  validate(spec_);
}

bool Engine::matches(const cnt::ProcessParams& model_process) const {
  return model_process.p_metallic == process_.p_metallic &&
         model_process.p_remove_s == process_.p_remove_s;
}

double Engine::short_p_rm() const {
  CNY_EXPECT(spec_.shorts.has_value());
  return spec_.removal ? spec_.removal->p_rm_target : spec_.shorts->p_rm;
}

std::function<double(double)> Engine::short_mode_yield() const {
  if (!spec_.shorts) return {};
  cnt::ProcessParams process = process_;
  process.p_remove_m = short_p_rm();
  const device::ShortModel model(pitch_, process);
  const double n_devices = chip_transistors_;
  const double p_noise = spec_.shorts->p_noise_fails;
  return [model, n_devices, p_noise](double w) {
    return model.chip_yield_shorts(w, n_devices, p_noise);
  };
}

double Engine::required_p_rm(double w_min) const {
  CNY_EXPECT(spec_.shorts.has_value());
  return device::ShortModel::required_p_rm(
      pitch_, process_.p_metallic, w_min, chip_transistors_,
      spec_.shorts->p_noise_fails, yield_desired_);
}

double Engine::aligned_length_scale(double lambda_s, double w) const {
  if (!spec_.length) return 1.0;
  const FiniteLength& length = *spec_.length;
  // A neighbourhood sample of critical devices at the paper's measured
  // pitch; the span stays well under l_cnt so the reference union is the
  // near-perfect-sharing regime the paper's segment model describes.
  const double pitch_nm = 1000.0 / fets_per_um_;
  std::vector<double> positions;
  positions.reserve(static_cast<std::size_t>(length.sample_devices));
  for (int i = 0; i < length.sample_devices; ++i) {
    positions.push_back(i * pitch_nm);
  }
  const yield::LengthModel paper_law{l_cnt_, 0.0};
  const yield::LengthModel actual_law{length.mean, length.cv};
  const double p_ref = yield::p_rf_finite_length(lambda_s, w, positions,
                                                 paper_law);
  const double p_len = yield::p_rf_finite_length(lambda_s, w, positions,
                                                 actual_law);
  CNY_ENSURE_MSG(p_ref > 0.0 && p_len > 0.0,
                 "finite-length union probabilities must be positive");
  return p_ref / p_len;
}

}  // namespace cny::scenario
