// ScenarioSpec — the failure-mechanism selection a flow evaluation runs
// under (see scenario/engine.h for the mechanism registry and composition
// semantics).
//
// The paper's headline analysis covers only the open-failure mode (too few
// functional CNTs under a gate). Its Sec 2.1/3.1 side remarks — imperfect
// m-CNT removal shorting devices [Zhang 09b], collateral s-CNT loss from
// VMR-style removal [Patil 09c], finite/variable CNT length — exist in this
// tree as standalone models. A ScenarioSpec makes them composable knobs of
// `run_flow`/`run_flow_batch`/the yield service: each mechanism is an
// optional parameter block; absent means "the paper's assumption" and an
// empty spec reproduces the open-only flow bit for bit.
//
// This header is deliberately dependency-free (plain data only) so it can be
// embedded in yield::FlowParams and cross the service wire without dragging
// the mechanism implementations along.
#pragma once

#include <optional>

namespace cny::scenario {

/// Surviving-m-CNT short/noise-margin mode (wraps device::ShortModel,
/// citing [Zhang 09b]): removal keeps each metallic CNT with probability
/// 1 - p_rm; a device retaining one is noise-susceptible and fails with
/// probability p_noise_fails. Chip yield becomes the product of open-mode
/// and short-mode survival and the W_min solver targets the combined
/// requirement. p_rm = 1 degenerates to the open-only numbers exactly.
struct ShortFailure {
  /// Removal probability given metallic. The default sits just above the
  /// ~1 - 1e-8 the short mode demands of a 10^8-transistor chip at 90 %
  /// yield — the quantitative form of the paper's "p_Rm > 99.99 % is
  /// required" remark. When RemovalFrontier is also enabled its
  /// p_rm_target supersedes this value (one removal strength drives both
  /// the collateral p_Rs and the residual m-CNTs).
  double p_rm = 0.999999999;
  /// Probability a noise-susceptible gate actually fails logically
  /// (signal restoration in following CMOS stages usually absorbs the
  /// degraded margin [Zolotov 02], Sec 2.1).
  double p_noise_fails = 0.01;
};

/// Finite / variable CNT length (the Sec 3.1 deferral): aligned-row p_RF is
/// routed through yield::p_rf_finite_length instead of the paper's
/// perfect-sharing-within-L_CNT segment kernel. The relaxation an aligned
/// strategy earns is rescaled by the exact-union ratio between this length
/// law and the paper's implied point mass at l_cnt, so {mean = l_cnt,
/// cv = 0} reproduces the infinite-tube numbers exactly.
struct FiniteLength {
  double mean = 200.0e3;  ///< nm (the paper's L_CNT = 200 µm)
  double cv = 0.0;        ///< lognormal length CV; 0 = point mass
  /// Devices of the sampled row neighbourhood the exact union is evaluated
  /// over (at the paper's 1/P_min-CNFET pitch). Must stay <= 22 so the
  /// inclusion–exclusion engine is exact (and deterministic).
  int sample_devices = 16;
};

/// m-CNT removal selectivity frontier (VMR-style [Patil 09c], wraps
/// cnt::RemovalTradeoff): the process corner's p_Rs is *earned* from the
/// probit frontier at the targeted p_Rm instead of assumed — p_Rs =
/// Φ(Φ⁻¹(p_rm_target) - selectivity). The flow (and the service's session
/// cache) then evaluates the derived corner.
struct RemovalFrontier {
  double selectivity = 4.24;   ///< frontier separation, sigma units
  double p_rm_target = 0.9999; ///< removal efficiency the strength is tuned for
};

/// Mechanism selection. Mechanisms compose: RemovalFrontier derives the
/// process corner first, ShortFailure then taxes the yield budget at that
/// corner's p_Rm, FiniteLength rescales the aligned-row correlation credit.
struct ScenarioSpec {
  std::optional<ShortFailure> shorts;
  std::optional<FiniteLength> length;
  std::optional<RemovalFrontier> removal;

  [[nodiscard]] bool empty() const { return !shorts && !length && !removal; }
};

}  // namespace cny::scenario
