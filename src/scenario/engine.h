// Scenario engine — turns the extension models into pluggable, composable
// yield mechanisms (the ROADMAP "new scenarios" item).
//
// Three pieces:
//
//  * A mechanism registry. Every mechanism is registered once with its wire
//    name, a one-line summary, parameter validation, and a default enabler;
//    `--scenario=shorts,length,removal` style selections resolve through it
//    (spec_from_names) and front ends can render the table (mechanisms()).
//
//  * Parameter validation. scenario::validate(spec) is the single range
//    check for every mechanism block, and yield::validate(FlowParams) (which
//    calls it) is the one helper run_flow, the CLI, and the protocol decoder
//    all share — a bad value produces the same ContractViolation message no
//    matter which door it came in through.
//
//  * Composition. An Engine compiled from (FlowParams, pitch, base process)
//    owns the combined-yield semantics, applied in registration order:
//
//      1. RemovalFrontier derives the p_f-relevant process corner:
//         p_Rs = Φ(Φ⁻¹(p_rm_target) − selectivity) — earned, not assumed.
//         The flow rebuilds its FailureModel only when the supplied model
//         is not already at the derived corner (the service's session
//         cache keys on the derived corner, so warm models pass through).
//      2. ShortFailure multiplies open-mode survival by the short-mode
//         chip yield Y_S(W) (device::ShortModel at the derived corner's
//         p_Rm); the W_min solver receives Y_S as its combined-target
//         hook and the result reports the p_Rm the short mode alone
//         would require (à la ShortModel::required_p_rm).
//      3. FiniteLength rescales the aligned-strategy relaxation by the
//         exact finite-tube union ratio (see aligned_length_scale).
//
//    An empty spec compiles to an Engine whose every hook is the identity,
//    leaving run_flow bit-identical to the open-only flow.
#pragma once

#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "cnt/pitch_model.h"
#include "cnt/process.h"
#include "scenario/spec.h"
#include "yield/flow.h"

namespace cny::scenario {

/// One registered failure mechanism. Implementations are stateless
/// singletons owned by the registry; per-evaluation state lives in Engine.
class Mechanism {
 public:
  virtual ~Mechanism() = default;
  /// Wire/CLI name ("shorts" | "length" | "removal").
  [[nodiscard]] virtual std::string_view name() const = 0;
  /// One-line description for usage text and docs.
  [[nodiscard]] virtual std::string_view summary() const = 0;
  [[nodiscard]] virtual bool enabled(const ScenarioSpec& spec) const = 0;
  /// Switches the mechanism on in `spec` with default parameters.
  virtual void enable(ScenarioSpec& spec) const = 0;
  /// Range-checks the mechanism's block (no-op when disabled); throws
  /// std::invalid_argument naming the offending parameter.
  virtual void validate(const ScenarioSpec& spec) const = 0;
};

/// All registered mechanisms, in composition order.
[[nodiscard]] const std::vector<const Mechanism*>& mechanisms();

/// Registry lookup; nullptr for an unknown name.
[[nodiscard]] const Mechanism* find_mechanism(std::string_view name);

/// Builds a spec from a comma-separated mechanism list
/// ("shorts,length,removal"); each named mechanism is enabled with its
/// defaults. Throws std::invalid_argument on an unknown name; "" or
/// "none" yields an empty spec.
[[nodiscard]] ScenarioSpec spec_from_names(std::string_view csv);

/// Canonical comma-separated names of the enabled mechanisms ("" if empty).
[[nodiscard]] std::string names(const ScenarioSpec& spec);

/// Validates every enabled mechanism's parameters (NaN-safe); throws
/// std::invalid_argument. The FlowParams-level twin is yield::validate.
void validate(const ScenarioSpec& spec);

/// The p_f-relevant process corner after mechanism derivation: base with
/// RemovalFrontier's (p_Rm target, earned p_Rs) applied. Identity for specs
/// without removal. Deterministic, so the service's session key and the
/// flow's rebuild check always agree on the corner.
[[nodiscard]] cnt::ProcessParams derived_process(cnt::ProcessParams base,
                                                 const ScenarioSpec& spec);

/// A ScenarioSpec compiled against one flow evaluation's pitch model, base
/// process corner, and FlowParams.
class Engine {
 public:
  Engine(const yield::FlowParams& params, const cnt::PitchModel& pitch,
         const cnt::ProcessParams& base_process);

  [[nodiscard]] const ScenarioSpec& spec() const { return spec_; }
  [[nodiscard]] bool active() const { return !spec_.empty(); }
  [[nodiscard]] bool shorts_active() const { return spec_.shorts.has_value(); }
  [[nodiscard]] bool length_active() const { return spec_.length.has_value(); }
  [[nodiscard]] bool removal_active() const {
    return spec_.removal.has_value();
  }

  /// The derived process corner the flow must evaluate p_F at.
  [[nodiscard]] const cnt::ProcessParams& process() const { return process_; }

  /// Whether a model built at `model_process` already answers for the
  /// derived corner (only the p_f-relevant fields matter: p_F never
  /// depends on p_Rm).
  [[nodiscard]] bool matches(const cnt::ProcessParams& model_process) const;

  /// The effective short-mode p_Rm: RemovalFrontier's target when removal
  /// is enabled, the ShortFailure block's own p_rm otherwise.
  [[nodiscard]] double short_p_rm() const;

  /// Short-mode chip yield Y_S(w): all chip_transistors devices evaluated
  /// at threshold width w (monotone non-increasing in w). Empty function
  /// when ShortFailure is off — the W_min solver then runs open-only.
  [[nodiscard]] std::function<double(double)> short_mode_yield() const;

  /// Smallest p_Rm whose short mode alone meets the chip yield target at
  /// width `w_min` (à la ShortModel::required_p_rm). Requires
  /// shorts_active().
  [[nodiscard]] double required_p_rm(double w_min) const;

  /// FiniteLength rescale of the aligned-row relaxation credit, probed at
  /// functional-CNT density `lambda_s` (per nm) and device width `w`:
  ///
  ///   scale = p_RF(exact union, point mass at l_cnt)
  ///         / p_RF(exact union, LengthModel{mean, cv})
  ///
  /// over sample_devices neighbouring devices at the 1/P_min-CNFET pitch.
  /// The paper's M_Rmin credit already encodes "tubes of length exactly
  /// l_cnt define the sharing segment"; the ratio measures how the credit
  /// departs from that as the length law does, with the residual-
  /// independence factor common to both unions cancelling. Exactly 1 when
  /// FiniteLength is off or the law is the point mass at l_cnt.
  [[nodiscard]] double aligned_length_scale(double lambda_s, double w) const;

 private:
  ScenarioSpec spec_;
  cnt::PitchModel pitch_;
  cnt::ProcessParams process_;
  double chip_transistors_;
  double yield_desired_;
  double l_cnt_;
  double fets_per_um_;
};

}  // namespace cny::scenario
