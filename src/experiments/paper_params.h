// Shared parameters for all paper-reproduction experiments, with the
// calibration choices documented next to their source.
#pragma once

#include <cstdint>
#include <vector>

#include "cnt/pitch_model.h"
#include "cnt/process.h"
#include "device/failure_model.h"

namespace cny::experiments {

struct PaperParams {
  // --- CNT statistics -------------------------------------------------
  /// Mean inter-CNT pitch μ_S: the optimised 4 nm of [Deng 07] (Sec 2.1).
  double pitch_mean_nm = 4.0;
  /// Pitch CV σ_S/μ_S: the paper keeps the [Zhang 09a] ratio but does not
  /// print it; 0.9 is calibrated so p_F(155 nm) lands at the paper's
  /// 3e-9 anchor of Fig 2.1 (see EXPERIMENTS.md §calibration).
  double pitch_cv = 0.9;

  // --- Processing (Fig 2.1 worst-case condition unless stated) --------
  double p_metallic = 0.33;
  double p_remove_m = 1.0;      ///< paper assumes p_Rm ≈ 1
  double p_remove_s = 0.30;

  // --- Chip-level case study (Sec 2.2) ---------------------------------
  std::uint64_t chip_transistors = 100'000'000;  ///< M = 100 million
  double yield_desired = 0.90;

  // --- Correlation (Sec 3.1 / Table 1) ---------------------------------
  double l_cnt_nm = 200.0e3;      ///< L_CNT = 200 µm [Kang 07, Patil 09b]
  double fets_per_um = 1.8;       ///< P_min-CNFET measured on the design

  // --- Scaling study (Fig 2.2b / Fig 3.3) ------------------------------
  std::vector<double> nodes_nm = {45.0, 32.0, 22.0, 16.0};

  // --- Execution (exec/parallel_mc.h) ----------------------------------
  /// Worker threads for the MC-backed experiments; 0 = hardware
  /// concurrency. Scheduling only — reported numbers never depend on it.
  unsigned n_threads = 0;

  [[nodiscard]] cnt::PitchModel pitch() const {
    return cnt::PitchModel(pitch_mean_nm, pitch_cv);
  }
  [[nodiscard]] cnt::ProcessParams process() const {
    return cnt::ProcessParams{p_metallic, p_remove_m, p_remove_s};
  }
  [[nodiscard]] device::FailureModel failure_model() const {
    return device::FailureModel(pitch(), process());
  }
};

}  // namespace cny::experiments
