#include "experiments/table2.h"

#include "celllib/generator.h"
#include "netlist/design_generator.h"
#include "util/strings.h"
#include "yield/row_model.h"
#include "yield/wmin_solver.h"

namespace cny::experiments {

namespace {

/// Solves W_min for a design on `lib` under the correlation relaxation a
/// one- or two-row aligned-active flow earns, then applies the transform at
/// that threshold and collects the Table 2 statistics.
Table2Column evaluate_library(const PaperParams& params,
                              const celllib::Library& lib,
                              const celllib::GeometryRules& rules,
                              int rows_per_polarity) {
  const auto model = params.failure_model();
  const auto design = netlist::generate_design("mix", lib, 50000, {});

  // Correlation relaxation: full sharing gives M_Rmin; the two-row variant
  // halves the benefit (Sec 3.3: "2X reduction in the p_RF benefit").
  yield::RowParams row;
  row.l_cnt = params.l_cnt_nm;
  row.fets_per_um = params.fets_per_um;
  row.m_min = 1;
  const double relaxation =
      yield::m_r_min(row) / (rows_per_polarity == 2 ? 2.0 : 1.0);

  auto spectrum = design.width_spectrum();
  const double count_scale =
      static_cast<double>(params.chip_transistors) /
      static_cast<double>(design.n_transistors());
  spectrum = yield::scale_spectrum(spectrum, 1.0, count_scale);

  yield::WminRequest request;
  request.yield_desired = params.yield_desired;
  request.relaxation = relaxation;
  const auto solved = yield::solve_w_min(spectrum, model, request);

  layout::AlignOptions options;
  options.w_min = solved.w_min;
  options.rows_per_polarity = rows_per_polarity;
  const auto aligned =
      layout::align_active(lib, options, rules.active_spacing);

  Table2Column col;
  col.library = lib.name();
  col.rows_per_polarity = rows_per_polarity;
  col.n_cells = lib.size();
  col.cells_with_penalty = aligned.cells_with_penalty();
  col.frac_with_penalty = static_cast<double>(col.cells_with_penalty) /
                          static_cast<double>(col.n_cells);
  col.min_penalty = aligned.min_penalty();
  col.max_penalty = aligned.max_penalty();
  col.w_min = solved.w_min;
  return col;
}

}  // namespace

Table2Result run_table2(const PaperParams& params) {
  const auto nangate = celllib::make_nangate45_like();
  const auto commercial = celllib::make_commercial65_like();

  Table2Result out;
  out.commercial_one = evaluate_library(params, commercial,
                                        celllib::commercial65_rules(), 1);
  out.commercial_two = evaluate_library(params, commercial,
                                        celllib::commercial65_rules(), 2);
  out.nangate_one =
      evaluate_library(params, nangate, celllib::nangate45_rules(), 1);
  return out;
}

report::Experiment report_table2(const PaperParams& params) {
  const auto res = run_table2(params);

  report::Experiment exp(
      "table2",
      "Area penalty on standard cell libraries for aligned-active layout");
  auto& t = exp.add_table("Aligned-active area penalty");
  t.header({"", "65nm-like, one aligned row", "65nm-like, two aligned rows",
            "45nm nangate-like, one row"});
  const auto cells = [](const Table2Column& c) {
    return std::to_string(c.n_cells);
  };
  t.row({"# std. cells", cells(res.commercial_one), cells(res.commercial_two),
         cells(res.nangate_one)});
  t.row({"cells with area penalty",
         util::format_pct(res.commercial_one.frac_with_penalty),
         util::format_pct(res.commercial_two.frac_with_penalty),
         util::format_pct(res.nangate_one.frac_with_penalty)});
  t.row({"min penalty", util::format_pct(res.commercial_one.min_penalty),
         util::format_pct(res.commercial_two.min_penalty),
         util::format_pct(res.nangate_one.min_penalty)});
  t.row({"max penalty", util::format_pct(res.commercial_one.max_penalty),
         util::format_pct(res.commercial_two.max_penalty),
         util::format_pct(res.nangate_one.max_penalty)});
  t.row({"W_min (nm)", util::format_sig(res.commercial_one.w_min, 4),
         util::format_sig(res.commercial_two.w_min, 4),
         util::format_sig(res.nangate_one.w_min, 4)});

  exp.add_comparison({"65nm one-row: cells with penalty", "~20%",
                      util::format_pct(res.commercial_one.frac_with_penalty),
                      "folded high-fan-in + sequential templates"});
  exp.add_comparison({"65nm one-row: penalty range", "10% - 70%",
                      util::format_pct(res.commercial_one.min_penalty) + " - " +
                          util::format_pct(res.commercial_one.max_penalty),
                      ""});
  exp.add_comparison({"65nm two-row: cells with penalty", "0%",
                      util::format_pct(res.commercial_two.frac_with_penalty),
                      "two rows resolve pairwise fold conflicts"});
  exp.add_comparison({"nangate 45: cells with penalty", "3% (4 of 134)",
                      std::to_string(res.nangate_one.cells_with_penalty) +
                          " of " + std::to_string(res.nangate_one.n_cells),
                      ""});
  exp.add_comparison({"nangate 45: penalty range", "4% - 14%",
                      util::format_pct(res.nangate_one.min_penalty) + " - " +
                          util::format_pct(res.nangate_one.max_penalty),
                      "AOI222_X1 at ~9% in the paper"});
  exp.add_comparison({"W_min (one row, 45nm)", "103 nm",
                      util::format_sig(res.nangate_one.w_min, 4),
                      "two-row 65nm variant pays <5% W_min increase"});
  return exp;
}

}  // namespace cny::experiments
