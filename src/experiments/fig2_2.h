// Fig 2.2 — (a) transistor width distribution of the OpenRISC-like design
// on the nangate45_like library; (b) upsizing penalty vs technology node
// (without correlation). Fig 3.3 adds the with-correlation series.
#pragma once

#include "experiments/paper_params.h"
#include "netlist/design.h"
#include "power/penalty.h"
#include "report/experiment.h"

namespace cny::experiments {

struct Fig22aResult {
  std::vector<double> bin_lo;        ///< 80 nm bins
  std::vector<double> fraction;      ///< share of transistors per bin
  double frac_below_160 = 0.0;       ///< the paper's M_min share (~33 %)
  std::uint64_t design_transistors = 0;
};

[[nodiscard]] Fig22aResult run_fig2_2a(const netlist::Design& design);
[[nodiscard]] report::Experiment report_fig2_2a();

struct Fig22bResult {
  power::ScalingStudy without_correlation;  ///< relaxation = 1
  power::ScalingStudy with_correlation;     ///< relaxation from Table 1
  double relaxation_used = 1.0;
};

/// Runs both series (Fig 2.2b = without; Fig 3.3 overlays with).
/// `relaxation` is the combined correlation benefit (≈350X at 45 nm).
[[nodiscard]] Fig22bResult run_penalty_scaling(const PaperParams& params,
                                               const netlist::Design& design,
                                               double relaxation);

[[nodiscard]] report::Experiment report_fig2_2b(const PaperParams& params);
[[nodiscard]] report::Experiment report_fig3_3(const PaperParams& params,
                                               double relaxation);

}  // namespace cny::experiments
