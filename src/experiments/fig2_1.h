// Fig 2.1 — CNFET failure probability p_F vs CNFET width W for three
// processing conditions (p_Rm = 1), plus the W_min anchor points.
#pragma once

#include <vector>

#include "experiments/paper_params.h"
#include "report/experiment.h"

namespace cny::experiments {

struct Fig21Point {
  double width = 0.0;
  double pf_worst = 0.0;  ///< p_m = 33 %, p_Rs = 30 %
  double pf_mid = 0.0;    ///< p_m = 33 %, p_Rs = 0 %
  double pf_ideal = 0.0;  ///< p_m = 0 %,  p_Rs = 0 %
};

struct Fig21Result {
  std::vector<Fig21Point> curve;
  double w_at_3e9 = 0.0;    ///< W where worst-case p_F = 3e-9 (paper: ~155)
  double w_at_1p1e6 = 0.0;  ///< W where worst-case p_F = 1.1e-6 (paper: ~103)
};

[[nodiscard]] Fig21Result run_fig2_1(const PaperParams& params,
                                     double w_lo = 20.0, double w_hi = 180.0,
                                     double w_step = 4.0);

/// Renders the result as a report (tables + paper-vs-measured comparisons).
[[nodiscard]] report::Experiment report_fig2_1(const PaperParams& params);

}  // namespace cny::experiments
