#include "experiments/fig2_2.h"

#include "celllib/generator.h"
#include "netlist/design_generator.h"
#include "util/strings.h"

namespace cny::experiments {

Fig22aResult run_fig2_2a(const netlist::Design& design) {
  const auto hist = design.width_histogram(80.0, 800.0);
  Fig22aResult out;
  out.design_transistors = design.n_transistors();
  for (std::size_t i = 0; i < hist.n_bins(); ++i) {
    out.bin_lo.push_back(hist.bin_lo(i));
    out.fraction.push_back(hist.fraction(i));
  }
  out.frac_below_160 = hist.cumulative_fraction(1);
  return out;
}

report::Experiment report_fig2_2a() {
  const auto lib = celllib::make_nangate45_like();
  const auto design = netlist::make_openrisc_like(lib);
  const auto res = run_fig2_2a(design);

  report::Experiment exp(
      "fig2_2a",
      "Transistor width distribution of an OpenRISC-like core "
      "(nangate45_like library)");
  auto& t = exp.add_table("Width histogram (80 nm bins)");
  t.header({"bin lo (nm)", "bin hi (nm)", "share"});
  for (std::size_t i = 0; i < res.bin_lo.size(); ++i) {
    if (res.fraction[i] < 1e-4) continue;
    t.begin_row()
        .num(res.bin_lo[i], 4)
        .num(res.bin_lo[i] + 80.0, 4)
        .cell(util::format_pct(res.fraction[i]));
  }
  exp.add_comparison({"share in two left-most bins (M_min/M)", "33%",
                      util::format_pct(res.frac_below_160),
                      "synthetic design mix calibrated (DESIGN.md)"});
  return exp;
}

Fig22bResult run_penalty_scaling(const PaperParams& params,
                                 const netlist::Design& design,
                                 double relaxation) {
  const auto model = params.failure_model();
  // Scale the core-sized design's spectrum up to the M = 100e6 chip: only
  // relative multiplicities matter for M_min counting, so multiply counts.
  auto spectrum = design.width_spectrum();
  const double count_scale =
      static_cast<double>(params.chip_transistors) /
      static_cast<double>(design.n_transistors());
  spectrum = yield::scale_spectrum(spectrum, 1.0, count_scale);

  yield::WminRequest without;
  without.yield_desired = params.yield_desired;
  without.relaxation = 1.0;

  yield::WminRequest with = without;
  with.relaxation = relaxation;

  Fig22bResult out;
  out.relaxation_used = relaxation;
  out.without_correlation =
      power::scaling_study(spectrum, model, without, params.nodes_nm);
  out.with_correlation =
      power::scaling_study(spectrum, model, with, params.nodes_nm);
  return out;
}

namespace {

report::Experiment penalty_report(const PaperParams& params, double relaxation,
                                  const char* id, const char* title,
                                  bool include_with) {
  const auto lib = celllib::make_nangate45_like();
  const auto design = netlist::make_openrisc_like(lib);
  const auto res = run_penalty_scaling(params, design, relaxation);

  report::Experiment exp(id, title);
  auto& t = exp.add_table("Gate-capacitance penalty vs technology node");
  if (include_with) {
    t.header({"node (nm)", "W_min w/o corr (nm)", "penalty w/o corr",
              "W_min with corr (nm)", "penalty with corr"});
  } else {
    t.header({"node (nm)", "W_min (nm)", "penalty", "M_min"});
  }
  for (std::size_t i = 0; i < res.without_correlation.nodes.size(); ++i) {
    const auto& wo = res.without_correlation.nodes[i];
    if (include_with) {
      const auto& wc = res.with_correlation.nodes[i];
      t.begin_row()
          .num(wo.node_nm, 3)
          .num(wo.w_min, 4)
          .cell(util::format_pct(wo.penalty))
          .num(wc.w_min, 4)
          .cell(util::format_pct(wc.penalty));
    } else {
      t.begin_row()
          .num(wo.node_nm, 3)
          .num(wo.w_min, 4)
          .cell(util::format_pct(wo.penalty))
          .num(static_cast<double>(wo.m_min), 6);
    }
  }

  const auto& n45 = res.without_correlation.nodes.front();
  exp.add_comparison({"W_min at 45 nm (no correlation)", "~155 nm",
                      util::format_sig(n45.w_min, 4) + " nm",
                      "pitch CV calibration"});
  if (include_with) {
    const auto& c45 = res.with_correlation.nodes.front();
    exp.add_comparison({"W_min at 45 nm (with correlation)", "~103 nm",
                        util::format_sig(c45.w_min, 4) + " nm",
                        "relaxation " + util::format_sig(relaxation, 4) + "X"});
    exp.add_comparison({"penalty at 45 nm (with correlation)",
                        "almost eliminated", util::format_pct(c45.penalty),
                        ""});
  }
  exp.add_comparison(
      {"penalty growth towards 16 nm", "increases significantly (to >100%)",
       util::format_pct(res.without_correlation.nodes.back().penalty),
       "width distribution scales, pitch fixed at 4 nm"});
  return exp;
}

}  // namespace

report::Experiment report_fig2_2b(const PaperParams& params) {
  return penalty_report(params, 1.0, "fig2_2b",
                        "Upsizing penalty vs technology node (no correlation)",
                        false);
}

report::Experiment report_fig3_3(const PaperParams& params,
                                 double relaxation) {
  return penalty_report(
      params, relaxation, "fig3_3",
      "Upsizing penalty vs node, before/after aligned-active + directional "
      "growth",
      true);
}

}  // namespace cny::experiments
