// Table 2 — area penalty of enforcing the aligned-active layout style on
// standard-cell libraries: the 134-cell nangate45_like library (one aligned
// row per polarity) and the 775-cell commercial65_like library (one- and
// two-row variants), plus the resulting W_min for each flow.
#pragma once

#include "experiments/paper_params.h"
#include "layout/aligned_active.h"
#include "report/experiment.h"

namespace cny::experiments {

struct Table2Column {
  std::string library;
  int rows_per_polarity = 1;
  std::size_t n_cells = 0;
  std::size_t cells_with_penalty = 0;
  double frac_with_penalty = 0.0;
  double min_penalty = 0.0;
  double max_penalty = 0.0;
  double w_min = 0.0;
};

struct Table2Result {
  Table2Column commercial_one;   ///< 65 nm-like, one aligned row
  Table2Column commercial_two;   ///< 65 nm-like, two aligned rows
  Table2Column nangate_one;      ///< 45 nm-like, one aligned row
};

[[nodiscard]] Table2Result run_table2(const PaperParams& params);
[[nodiscard]] report::Experiment report_table2(const PaperParams& params);

}  // namespace cny::experiments
