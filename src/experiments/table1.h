// Table 1 — per-row failure probability p_RF under three growth/layout
// combinations: uncorrelated growth; directional growth with the unmodified
// library; directional growth with aligned-active cells. The middle column
// is the "general case requiring numerical methods": we evaluate it with the
// exact Poisson inclusion–exclusion over the library's distinct window
// offsets and cross-check with the Ross conditional Monte Carlo estimator.
#pragma once

#include "experiments/paper_params.h"
#include "netlist/design.h"
#include "report/experiment.h"

namespace cny::experiments {

struct Table1Result {
  double w_used = 0.0;            ///< device width evaluated (W_min scale)
  double p_f_device = 0.0;        ///< per-device p_F at that width
  double lambda_s = 0.0;          ///< functional-CNT density (per nm)
  double m_r_min = 0.0;           ///< devices per CNT length (eq. 3.2)

  double p_rf_uncorrelated = 0.0;
  double p_rf_directional = 0.0;  ///< unmodified library (numerical)
  double p_rf_dir_mc = 0.0;       ///< conditional-MC cross-check
  double p_rf_dir_mc_err = 0.0;
  double p_rf_aligned = 0.0;

  double gain_directional = 0.0;  ///< uncorrelated / directional  (~26.5X)
  double gain_aligned = 0.0;      ///< directional / aligned       (~13X)
  double gain_total = 0.0;        ///< uncorrelated / aligned      (~350X)
};

/// `design` supplies the unmodified library's window-offset diversity.
/// `w_used` <= 0 picks the width where the uncorrelated p_RF matches the
/// paper's 5.3e-6 operating point.
[[nodiscard]] Table1Result run_table1(const PaperParams& params,
                                      const netlist::Design& design,
                                      double w_used = 0.0,
                                      std::size_t mc_samples = 20000,
                                      std::uint64_t seed = 1);

[[nodiscard]] report::Experiment report_table1(const PaperParams& params);

}  // namespace cny::experiments
