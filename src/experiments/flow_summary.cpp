#include "experiments/flow_summary.h"

#include "celllib/generator.h"
#include "netlist/design_generator.h"
#include "util/strings.h"

namespace cny::experiments {

yield::FlowResult run_flow_summary(const PaperParams& params) {
  static const celllib::Library lib = celllib::make_nangate45_like();
  const auto design = netlist::make_openrisc_like(lib);
  const auto model = params.failure_model();
  yield::FlowParams flow;
  flow.yield_desired = params.yield_desired;
  flow.chip_transistors = static_cast<double>(params.chip_transistors);
  flow.l_cnt = params.l_cnt_nm;
  flow.fets_per_um = params.fets_per_um;
  flow.n_threads = params.n_threads;
  return yield::run_flow(lib, design, model, flow);
}

report::Experiment report_flow_summary(const PaperParams& params) {
  const auto res = run_flow_summary(params);
  report::Experiment exp("flow_summary",
                         "All layout strategies on the OpenRISC case study");
  const auto summary = res.summary_table();
  auto& t = exp.add_table(summary.title());
  t.header(summary.header_row());
  for (const auto& row : summary.rows()) t.row(row);

  const auto& unc = res.get(yield::Strategy::Uncorrelated);
  const auto& one = res.get(yield::Strategy::AlignedOneRow);
  exp.add_comparison({"W_min drop (uncorrelated -> aligned 1-row)",
                      "155 -> 103 nm",
                      util::format_sig(unc.w_min, 4) + " -> " +
                          util::format_sig(one.w_min, 4) + " nm",
                      ""});
  exp.add_comparison({"power penalty at 45 nm after optimisation",
                      "almost completely eliminated",
                      util::format_pct(one.power_penalty), ""});
  return exp;
}

}  // namespace cny::experiments
