#include "experiments/table1.h"

#include <cmath>

#include "celllib/generator.h"
#include "layout/row_placement.h"
#include "netlist/design_generator.h"
#include "rng/engine.h"
#include "util/contracts.h"
#include "util/strings.h"
#include "yield/empty_window.h"
#include "yield/row_model.h"
#include "yield/wmin_solver.h"

namespace cny::experiments {

Table1Result run_table1(const PaperParams& params,
                        const netlist::Design& design, double w_used,
                        std::size_t mc_samples, std::uint64_t seed) {
  const auto model = params.failure_model();

  Table1Result out;
  yield::RowParams row;
  row.l_cnt = params.l_cnt_nm;
  row.fets_per_um = params.fets_per_um;
  row.m_min = 1;  // only ratios below; K_R not needed here
  out.m_r_min = yield::m_r_min(row);

  if (w_used <= 0.0) {
    // Paper operating point: uncorrelated p_RF = 5.3e-6 over M_Rmin
    // devices → per-device p_F = 5.3e-6 / M_Rmin.
    const double p_f_target = 5.3e-6 / out.m_r_min;
    w_used = yield::invert_p_f(model, p_f_target, 20.0, 400.0);
  }
  out.w_used = w_used;
  out.p_f_device = model.p_f(w_used);

  // Poisson surrogate for the window-union computation, matched exactly to
  // the device operating point: λ_s such that exp(-λ_s W) = p_F(W). For
  // CV = 1 this is the paper's process itself; for CV ≠ 1 it preserves the
  // per-device failure probability, which is what the ratios compare.
  out.lambda_s = -std::log(out.p_f_device) / w_used;

  // Column 1: uncorrelated growth (eq. 2.3 applied per row).
  out.p_rf_uncorrelated = yield::p_rf_uncorrelated(out.p_f_device, row);

  // Column 3: aligned-active on directional growth.
  out.p_rf_aligned = yield::p_rf_aligned(out.p_f_device);

  // Column 2: directional growth, unmodified library — union of empty
  // windows over the library's critical-region offset diversity.
  const auto offsets = layout::window_offsets(design, w_used);
  CNY_EXPECT_MSG(!offsets.empty(), "design has no critical regions");
  std::vector<geom::Interval> windows;
  windows.reserve(offsets.size());
  for (const auto& o : offsets) {
    windows.push_back(geom::Interval{o.y, o.y + w_used});
  }

  rng::Xoshiro256 rng(rng::derive_seed(seed, 0x7AB1E1));
  const auto mc =
      yield::union_conditional_mc(out.lambda_s, windows, mc_samples, rng);
  out.p_rf_directional = mc.estimate;
  out.p_rf_dir_mc = mc.estimate;
  out.p_rf_dir_mc_err = mc.std_error;

  out.gain_directional = out.p_rf_uncorrelated / out.p_rf_directional;
  out.gain_aligned = out.p_rf_directional / out.p_rf_aligned;
  out.gain_total = out.p_rf_uncorrelated / out.p_rf_aligned;
  return out;
}

report::Experiment report_table1(const PaperParams& params) {
  const auto lib = celllib::make_nangate45_like();
  const auto design = netlist::make_openrisc_like(lib);
  const auto res = run_table1(params, design);

  report::Experiment exp(
      "table1",
      "Benefits from directional CNT growth and aligned-active layout");
  auto& t = exp.add_table("p_RF per growth/layout combination");
  t.header({"", "Uncorrelated growth", "Directional, no aligned-active",
            "Directional, aligned-active"});
  t.row({"p_RF", util::format_sig(res.p_rf_uncorrelated, 3),
         util::format_sig(res.p_rf_directional, 3),
         util::format_sig(res.p_rf_aligned, 3)});

  auto& d = exp.add_table("Derived quantities");
  d.header({"quantity", "value"});
  d.row({"device width W used (nm)", util::format_sig(res.w_used, 4)});
  d.row({"device p_F(W)", util::format_sig(res.p_f_device, 3)});
  d.row({"M_Rmin = L_CNT x P_min-CNFET", util::format_sig(res.m_r_min, 4)});
  d.row({"conditional-MC std error", util::format_sig(res.p_rf_dir_mc_err, 2)});

  exp.add_comparison({"p_RF uncorrelated", "5.3e-6",
                      util::format_sig(res.p_rf_uncorrelated, 3),
                      "operating point matched by construction"});
  exp.add_comparison({"p_RF directional (no aligned-active)", "2.0e-7",
                      util::format_sig(res.p_rf_directional, 3),
                      "library offset diversity (synthetic templates)"});
  exp.add_comparison({"p_RF aligned-active", "1.5e-8",
                      util::format_sig(res.p_rf_aligned, 3), ""});
  exp.add_comparison({"gain from directional growth", "26.5X",
                      util::format_sig(res.gain_directional, 3) + "X", ""});
  exp.add_comparison({"gain from aligned-active", "13X",
                      util::format_sig(res.gain_aligned, 3) + "X", ""});
  exp.add_comparison({"total relaxation", "~350X",
                      util::format_sig(res.gain_total, 3) + "X",
                      "= M_Rmin by construction of full sharing"});
  return exp;
}

}  // namespace cny::experiments
