#include "experiments/fig2_1.h"

#include "util/strings.h"
#include "yield/wmin_solver.h"

namespace cny::experiments {

Fig21Result run_fig2_1(const PaperParams& params, double w_lo, double w_hi,
                       double w_step) {
  const auto pitch = params.pitch();
  device::FailureModel worst(pitch, cnt::fig21_worst());
  device::FailureModel mid(pitch, cnt::fig21_mid());
  device::FailureModel ideal(pitch, cnt::fig21_ideal());

  Fig21Result out;
  for (double w = w_lo; w <= w_hi + 1e-9; w += w_step) {
    Fig21Point p;
    p.width = w;
    p.pf_worst = worst.p_f(w);
    p.pf_mid = mid.p_f(w);
    p.pf_ideal = ideal.p_f(w);
    out.curve.push_back(p);
  }
  out.w_at_3e9 = yield::invert_p_f(worst, 3.0e-9, w_lo, 400.0);
  out.w_at_1p1e6 = yield::invert_p_f(worst, 1.1e-6, w_lo, 400.0);
  return out;
}

report::Experiment report_fig2_1(const PaperParams& params) {
  const auto res = run_fig2_1(params);
  report::Experiment exp("fig2_1",
                         "CNFET failure probability vs CNFET width (p_Rm = 1)");

  auto& t = exp.add_table("p_F(W) for the three processing conditions");
  t.header({"W (nm)", "pm=33% pRs=30%", "pm=33% pRs=0%", "pm=0% pRs=0%"});
  for (const auto& p : res.curve) {
    t.begin_row()
        .num(p.width, 4)
        .cell(util::format_sig(p.pf_worst, 3))
        .cell(util::format_sig(p.pf_mid, 3))
        .cell(util::format_sig(p.pf_ideal, 3));
  }

  exp.add_comparison({"W at p_F = 3e-9 (worst curve)", "~155 nm",
                      util::format_sig(res.w_at_3e9, 4) + " nm",
                      "pitch CV calibrated to 0.9 (EXPERIMENTS.md)"});
  exp.add_comparison({"W at p_F = 1.1e-6 (worst curve)", "~103 nm",
                      util::format_sig(res.w_at_1p1e6, 4) + " nm",
                      "350X-relaxed requirement"});
  exp.add_comparison(
      {"ratio p_F(103)/p_F(155)", "~350X",
       util::format_sig(params.failure_model().p_f(res.w_at_1p1e6) /
                            params.failure_model().p_f(res.w_at_3e9),
                        3),
       "exponential decay of eq. 2.2"});
  return exp;
}

}  // namespace cny::experiments
