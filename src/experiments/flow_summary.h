// Strategy-comparison summary — not a single paper artefact but the
// synthesis of Sec 2 + Sec 3: all four layout strategies on the OpenRISC
// case study, with the Table 1 relaxations and Fig 3.3 penalties in one
// place (this is what a user of the methodology actually consults).
#pragma once

#include "experiments/paper_params.h"
#include "report/experiment.h"
#include "yield/flow.h"

namespace cny::experiments {

[[nodiscard]] yield::FlowResult run_flow_summary(const PaperParams& params);
[[nodiscard]] report::Experiment report_flow_summary(
    const PaperParams& params);

}  // namespace cny::experiments
