// Row-correlation yield model (Sec 3.1, eqs. 3.1–3.2).
//
// With directional growth, the chip's M_min small-width CNFETs are spread
// over K_R rows; devices in different rows never share CNTs, devices in the
// same row share CNTs where their active-region y-intervals overlap. The
// chip-level failure budget then applies per row:
//
//   Yield = Π_i (1 - p_RF_i) ≈ 1 - K_R · p_RF                      (eq. 3.1)
//   M_Rmin = L_CNT · P_min-CNFET                                   (eq. 3.2)
//
// Extremes: fully aligned rows give p_RF = p_F (one shared CNT set);
// independent devices give p_RF = 1 - (1 - p_F)^{M_Rmin}.
#pragma once

#include <cstdint>

namespace cny::yield {

struct RowParams {
  double l_cnt = 200.0e3;        ///< CNT length, nm (200 µm [Kang 07])
  double fets_per_um = 1.8;      ///< P_min-CNFET, critical FETs per µm
  std::uint64_t m_min = 0;       ///< chip-wide minimum-size device count
};

/// M_Rmin (eq. 3.2): average number of minimum-size CNFETs per row segment
/// of one CNT length.
[[nodiscard]] double m_r_min(const RowParams& params);

/// Number of independent row segments K_R = M_min / M_Rmin.
[[nodiscard]] double k_rows(const RowParams& params);

/// p_RF for fully uncorrelated devices: 1 - (1-p_F)^{M_Rmin}.
[[nodiscard]] double p_rf_uncorrelated(double p_f, const RowParams& params);

/// p_RF under perfect aligned-active sharing: p_F itself.
[[nodiscard]] double p_rf_aligned(double p_f);

/// Chip yield from a per-row failure probability (eq. 3.1, exact product).
[[nodiscard]] double chip_yield_from_rows(double p_rf,
                                          const RowParams& params);

/// The failure-probability relaxation factor a layout style earns relative
/// to the uncorrelated baseline: p_RF_uncorrelated / p_RF_style.
[[nodiscard]] double relaxation_factor(double p_rf_style, double p_f,
                                       const RowParams& params);

}  // namespace cny::yield
