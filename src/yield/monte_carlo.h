// Full-chip Monte Carlo yield simulator.
//
// End-to-end validation path for the whole analytic stack: grows explicit
// CNT populations per row band (directional growth) or per device
// (uncorrelated growth), places the design's critical windows, counts row
// and chip failures. Probabilities must be inflated (small widths / high
// p_f / few rows) for direct simulation to resolve them — that is exactly
// how the tests use it; the production numbers come from the analytic and
// conditional-MC engines this simulator validates.
#pragma once

#include <cstdint>
#include <vector>

#include "cnt/growth.h"
#include "exec/mc_policy.h"
#include "geom/interval.h"
#include "rng/engine.h"
#include "stats/accumulator.h"

namespace cny::yield {

struct ChipSpec {
  /// Window (critical device) y-intervals per row template; every row of
  /// the chip draws its windows from this template.
  std::vector<geom::Interval> row_windows;
  std::uint64_t n_rows = 1;
};

enum class GrowthStyle {
  Directional,   ///< rows share CNTs where windows overlap
  Uncorrelated,  ///< every device sees an independent CNT population
};

struct ChipMcResult {
  double chip_yield = 0.0;       ///< fraction of chips with zero failures
  double chip_yield_err = 0.0;   ///< ~1σ on chip_yield
  double p_rf = 0.0;             ///< per-row failure probability estimate
  double p_rf_err = 0.0;
  std::uint64_t chips = 0;
  std::uint64_t rows_simulated = 0;
};

/// Simulates `n_chips` chips and reports yield and per-row failure rates.
/// `policy` shards the chip loop across RNG streams/threads (see
/// exec/parallel_mc.h); the default reproduces the legacy serial loop on
/// `rng` bit-for-bit. With n_streams > 1 the tallies depend only on
/// (rng state, n_streams) — never on n_threads — and `rng` is advanced by
/// one long_jump.
[[nodiscard]] ChipMcResult simulate_chip_yield(
    const cnt::DirectionalGrowth& growth, const ChipSpec& spec,
    GrowthStyle style, std::uint64_t n_chips, rng::Xoshiro256& rng,
    const exec::McPolicy& policy = {});

}  // namespace cny::yield
