#include "yield/wmin_solver.h"

#include <array>
#include <cmath>

#include "numeric/roots.h"
#include "util/contracts.h"

namespace cny::yield {

double invert_p_f(const device::FailureModel& model, double p_f_target,
                  double w_lo, double w_hi) {
  CNY_EXPECT(p_f_target > 0.0 && p_f_target < 1.0);
  CNY_EXPECT(w_lo > 0.0 && w_hi > w_lo);
  // Work in log space: log p_F(W) is close to linear in W (Fig 2.1), which
  // makes Brent converge in a handful of iterations.
  const auto log_pf = [&](double w) { return std::log(model.p_f(w)); };
  const double target = std::log(p_f_target);
  // Both bracket endpoints in one batched query: on a cold model (no
  // interpolant, empty memo) the two kernel evaluations share one pass.
  // Refinement queries below are inherently serial (Brent picks each
  // abscissa from the previous result) and hit the memo/interpolant.
  const std::array<double, 2> bracket = {w_lo, w_hi};
  const auto bracket_pf = model.p_f_batch(bracket);
  CNY_EXPECT_MSG(std::log(bracket_pf[0]) >= target,
                 "W bracket too high: p_F(w_lo) below target");
  CNY_EXPECT_MSG(std::log(bracket_pf[1]) <= target,
                 "W bracket too low: p_F(w_hi) above target");
  const auto res = cny::numeric::invert_decreasing(log_pf, target, w_lo, w_hi,
                                                   1e-6);
  CNY_ENSURE(res.converged);
  return res.x;
}

WminResult solve_w_min(const WidthSpectrum& spectrum,
                       const device::FailureModel& model,
                       const WminRequest& request) {
  CNY_EXPECT(request.yield_desired > 0.0 && request.yield_desired < 1.0);
  CNY_EXPECT(request.relaxation >= 1.0);
  CNY_EXPECT(!spectrum.empty());

  if (request.short_mode_yield) {
    // Combined open+short target: fixpoint the open-mode solve against the
    // effective target Y / Y_S(W). Y_S is non-increasing in W and Y_open's
    // solution is increasing in the target, so the iterates W_k climb
    // monotonically toward the combined solution — or walk cleanly into
    // the "no open-mode budget left" guard when the short mode alone
    // cannot reach Y. Y_S == 1 (perfect removal) passes Y through exactly
    // (x / 1.0 == x), making the first solve the open-only result bit for
    // bit and terminating immediately.
    WminRequest open = request;
    open.short_mode_yield = nullptr;
    double y_short = 1.0;
    constexpr int kMaxCombinedIterations = 40;
    for (int iter = 1; iter <= kMaxCombinedIterations; ++iter) {
      open.yield_desired = request.yield_desired / y_short;
      WminResult result = solve_w_min(spectrum, model, open);
      const double y_new = request.short_mode_yield(result.w_min);
      CNY_ENSURE_MSG(y_new >= 0.0 && y_new <= 1.0,
                     "short-mode yield hook must return a value in [0, 1]");
      // Y_S only falls as W grows and the combined W can only grow from
      // here, so Y_S already at or below the target proves infeasibility.
      CNY_EXPECT_MSG(
          y_new > request.yield_desired,
          "short mode leaves no open-mode yield budget (Y_S(W) <= "
          "yield_desired): raise p_Rm, lower p_noise_fails, or shrink the "
          "chip");
      result.short_mode_yield = y_new;
      // Stop just above the jitter floor the inner Brent's 1e-6 nm W
      // tolerance induces on Y_S (~1e-9 relative): tighter would chase
      // noise, looser would cost W_min digits. Exact equality (Y_S == 1,
      // p_Rm = 1) exits on the first pass with the open-only result.
      if (std::fabs(y_new - y_short) <= 1e-7 * y_short) return result;
      y_short = y_new;
    }
    CNY_ENSURE_MSG(false, "combined open+short W_min fixpoint did not "
                          "converge");
  }

  const double budget = 1.0 - request.yield_desired;

  WminResult result;
  // Initial M_min guess: every transistor (pessimistic; shrinks monotonely).
  std::uint64_t m_min = request.fixed_m_min > 0 ? request.fixed_m_min
                                                : spectrum_count(spectrum);
  constexpr int kMaxIterations = 30;
  for (int iter = 1; iter <= kMaxIterations; ++iter) {
    result.iterations = iter;
    const double target =
        budget / static_cast<double>(m_min) * request.relaxation;
    CNY_EXPECT_MSG(target < 1.0, "yield target unreachable: p_F* >= 1");
    const double w = invert_p_f(model, target, request.w_lo, request.w_hi);

    if (request.fixed_m_min > 0) {
      result.w_min = w;
      result.p_f_target = target;
      result.m_min = m_min;
      result.converged = true;
      break;
    }

    // Recount: devices that would sit at the threshold after upsizing.
    std::uint64_t count = 0;
    for (const auto& [width, n] : spectrum) {
      if (width <= w) count += n;
    }
    if (count == 0) {
      // Every device already exceeds the candidate threshold: the design
      // meets the yield target with no upsizing at all.
      result.w_min = w;
      result.p_f_target = target;
      result.m_min = 0;
      result.converged = true;
      break;
    }
    if (count == m_min) {
      result.w_min = w;
      result.p_f_target = target;
      result.m_min = m_min;
      result.converged = true;
      break;
    }
    m_min = count;
  }
  CNY_ENSURE_MSG(result.converged, "W_min fixpoint did not converge");

  result.verification = circuit_yield(spectrum, model, result.w_min);
  return result;
}

}  // namespace cny::yield
