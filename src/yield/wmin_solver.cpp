#include "yield/wmin_solver.h"

#include <cmath>

#include "numeric/roots.h"
#include "util/contracts.h"

namespace cny::yield {

double invert_p_f(const device::FailureModel& model, double p_f_target,
                  double w_lo, double w_hi) {
  CNY_EXPECT(p_f_target > 0.0 && p_f_target < 1.0);
  CNY_EXPECT(w_lo > 0.0 && w_hi > w_lo);
  // Work in log space: log p_F(W) is close to linear in W (Fig 2.1), which
  // makes Brent converge in a handful of iterations.
  const auto log_pf = [&](double w) { return std::log(model.p_f(w)); };
  const double target = std::log(p_f_target);
  CNY_EXPECT_MSG(log_pf(w_lo) >= target,
                 "W bracket too high: p_F(w_lo) below target");
  CNY_EXPECT_MSG(log_pf(w_hi) <= target,
                 "W bracket too low: p_F(w_hi) above target");
  const auto res = cny::numeric::invert_decreasing(log_pf, target, w_lo, w_hi,
                                                   1e-6);
  CNY_ENSURE(res.converged);
  return res.x;
}

WminResult solve_w_min(const WidthSpectrum& spectrum,
                       const device::FailureModel& model,
                       const WminRequest& request) {
  CNY_EXPECT(request.yield_desired > 0.0 && request.yield_desired < 1.0);
  CNY_EXPECT(request.relaxation >= 1.0);
  CNY_EXPECT(!spectrum.empty());

  const double budget = 1.0 - request.yield_desired;

  WminResult result;
  // Initial M_min guess: every transistor (pessimistic; shrinks monotonely).
  std::uint64_t m_min = request.fixed_m_min > 0 ? request.fixed_m_min
                                                : spectrum_count(spectrum);
  constexpr int kMaxIterations = 30;
  for (int iter = 1; iter <= kMaxIterations; ++iter) {
    result.iterations = iter;
    const double target =
        budget / static_cast<double>(m_min) * request.relaxation;
    CNY_EXPECT_MSG(target < 1.0, "yield target unreachable: p_F* >= 1");
    const double w = invert_p_f(model, target, request.w_lo, request.w_hi);

    if (request.fixed_m_min > 0) {
      result.w_min = w;
      result.p_f_target = target;
      result.m_min = m_min;
      result.converged = true;
      break;
    }

    // Recount: devices that would sit at the threshold after upsizing.
    std::uint64_t count = 0;
    for (const auto& [width, n] : spectrum) {
      if (width <= w) count += n;
    }
    if (count == 0) {
      // Every device already exceeds the candidate threshold: the design
      // meets the yield target with no upsizing at all.
      result.w_min = w;
      result.p_f_target = target;
      result.m_min = 0;
      result.converged = true;
      break;
    }
    if (count == m_min) {
      result.w_min = w;
      result.p_f_target = target;
      result.m_min = m_min;
      result.converged = true;
      break;
    }
    m_min = count;
  }
  CNY_ENSURE_MSG(result.converged, "W_min fixpoint did not converge");

  result.verification = circuit_yield(spectrum, model, result.w_min);
  return result;
}

}  // namespace cny::yield
