#include "yield/monte_carlo.h"

#include <algorithm>

#include "exec/parallel_mc.h"
#include "kernels/mc_kernels.h"
#include "util/contracts.h"

namespace cny::yield {

namespace {

/// Mergeable per-shard failure tallies.
struct ChipTally {
  std::uint64_t chip_failures = 0;
  std::uint64_t row_failures = 0;
  std::uint64_t rows = 0;
};

}  // namespace

ChipMcResult simulate_chip_yield(const cnt::DirectionalGrowth& growth,
                                 const ChipSpec& spec, GrowthStyle style,
                                 std::uint64_t n_chips,
                                 rng::Xoshiro256& rng,
                                 const exec::McPolicy& policy) {
  CNY_EXPECT(!spec.row_windows.empty());
  CNY_EXPECT(spec.n_rows >= 1);
  CNY_EXPECT(n_chips >= 2);

  double lo = spec.row_windows.front().lo;
  double hi = spec.row_windows.front().hi;
  for (const auto& w : spec.row_windows) {
    CNY_EXPECT(!w.empty());
    lo = std::min(lo, w.lo);
    hi = std::max(hi, w.hi);
  }

  // "Any window empty" is invariant under window order, so sort a copy by
  // lo once and let every row share a single two-pointer sweep (the
  // kernels seam) instead of a binary search per window.
  std::vector<geom::Interval> sorted_windows = spec.row_windows;
  std::sort(sorted_windows.begin(), sorted_windows.end(),
            [](const geom::Interval& a, const geom::Interval& b) {
              return a.lo < b.lo;
            });

  // Shardable chip loop; `points` is per-shard scratch reused across every
  // row (and every window in the uncorrelated branch) of the shard.
  const auto kernel = [&](unsigned /*stream*/, std::uint64_t shard_chips,
                          rng::Xoshiro256& shard_rng) {
    ChipTally tally;
    std::vector<double> points;
    for (std::uint64_t chip = 0; chip < shard_chips; ++chip) {
      bool chip_failed = false;
      for (std::uint64_t r = 0; r < spec.n_rows; ++r) {
        ++tally.rows;
        bool row_failed = false;
        if (style == GrowthStyle::Directional) {
          growth.functional_positions(shard_rng, lo, hi, points);
          row_failed = kernels::any_window_empty_sorted(points, sorted_windows);
        } else {
          // Uncorrelated growth: every device sees a fresh CNT population.
          for (const auto& w : spec.row_windows) {
            growth.functional_positions(shard_rng, w.lo, w.hi, points);
            if (kernels::any_window_empty_sorted(points, {&w, 1})) {
              row_failed = true;
              break;
            }
          }
        }
        if (row_failed) {
          ++tally.row_failures;
          chip_failed = true;
          // Chip yield only needs "any row failed"; for p_RF statistics we
          // keep scanning remaining rows of this chip.
        }
      }
      if (chip_failed) ++tally.chip_failures;
    }
    return tally;
  };

  const ChipTally tally = exec::run_mc<ChipTally>(
      n_chips, rng, policy, kernel, [](ChipTally& into, ChipTally&& part) {
        into.chip_failures += part.chip_failures;
        into.row_failures += part.row_failures;
        into.rows += part.rows;
      });
  const std::uint64_t chip_failures = tally.chip_failures;
  const std::uint64_t row_failures = tally.row_failures;
  const std::uint64_t rows = tally.rows;

  ChipMcResult out;
  out.chips = n_chips;
  out.rows_simulated = rows;
  const auto chip_ci = stats::wilson_ci(
      static_cast<std::size_t>(n_chips - chip_failures),
      static_cast<std::size_t>(n_chips));
  out.chip_yield = static_cast<double>(n_chips - chip_failures) /
                   static_cast<double>(n_chips);
  out.chip_yield_err = 0.25 * chip_ci.width();
  const auto row_ci = stats::wilson_ci(static_cast<std::size_t>(row_failures),
                                       static_cast<std::size_t>(rows));
  out.p_rf = static_cast<double>(row_failures) / static_cast<double>(rows);
  out.p_rf_err = 0.25 * row_ci.width();
  return out;
}

}  // namespace cny::yield
