// Circuit-level CNT-count-limited yield (Sec 2.2).
//
//   Yield = Π_i (1 - p_F(W_i)) ≈ 1 - Σ_i p_F(W_i)                 (eq. 2.3)
//
// evaluated over the design's transistor width spectrum, optionally after
// the upsizing function U_Wt(W) = max(W, W_t) (eq. 2.4).
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "device/failure_model.h"

namespace cny::yield {

/// Compact width spectrum: (width, multiplicity) pairs.
using WidthSpectrum = std::vector<std::pair<double, std::uint64_t>>;

/// Scales a spectrum's widths (technology scaling) and/or multiplies every
/// multiplicity by `count_scale` (scaling a core-sized design up to a chip).
[[nodiscard]] WidthSpectrum scale_spectrum(const WidthSpectrum& spectrum,
                                           double width_scale,
                                           double count_scale);

/// Total transistors in the spectrum.
[[nodiscard]] std::uint64_t spectrum_count(const WidthSpectrum& spectrum);

struct YieldBreakdown {
  double yield_exact = 1.0;     ///< Π (1-pF)^count
  double yield_approx = 1.0;    ///< 1 - Σ count·pF (eq. 2.3 approximation)
  double sum_pf = 0.0;          ///< Σ count·pF — the expected failure count
  double min_width = 0.0;       ///< smallest width in the (upsized) spectrum
};

/// Evaluates chip yield for the spectrum with devices independently failing
/// per `model`, after upsizing every width below `w_t` to `w_t`
/// (w_t = 0 disables upsizing).
[[nodiscard]] YieldBreakdown circuit_yield(const WidthSpectrum& spectrum,
                                           const device::FailureModel& model,
                                           double w_t = 0.0);

}  // namespace cny::yield
