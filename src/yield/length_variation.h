// Finite / variable CNT length extension (the "impact of CNT length
// variations" the paper defers to a more detailed version, Sec 3.1).
//
// The paper assumes perfect correlation within L_CNT and none beyond. With
// finite tubes the sharing structure along a row is richer: a tube of
// length L grown with origin x0 covers devices at every x in [x0, x0 + L).
// For an aligned-active row (all devices share one y-interval of width W),
// device i fails iff *no functional tube covers x_i*, and
//
//   P( all devices in S fail ) = exp( -ν W · E_L[ |∪_{i∈S} (x_i - L, x_i]| ] )
//
// where ν = λ_s / E[L] is the tube-origin intensity per (x0, y) area that
// keeps the stationary coverage density at λ_s. The row failure probability
// is therefore the SAME union-of-empty-windows problem as the y-offset
// analysis — over x-intervals of length L — and reuses the exact
// inclusion–exclusion and conditional-MC engines.
#pragma once

#include <vector>

#include "geom/interval.h"
#include "rng/engine.h"
#include "yield/empty_window.h"

namespace cny::yield {

/// CNT length law: a point mass at `mean` (cv = 0) or lognormal with the
/// given linear-domain mean and CV.
struct LengthModel {
  double mean = 200.0e3;  ///< nm (paper: 200 µm)
  double cv = 0.0;

  /// E[ |∪_i (x_i - L, x_i]| ] for the given device positions — the
  /// exponent kernel above. Positions need not be sorted.
  [[nodiscard]] double mean_cover_measure(
      const std::vector<double>& positions) const;

  /// Draws a tube length.
  [[nodiscard]] double sample(rng::Xoshiro256& rng) const;
};

/// Analytic row failure probability for an aligned-active row of devices of
/// width W at the given x positions, with functional-tube linear density
/// lambda_s (per nm of y) and the tube length law.
/// Exact for the point-mass law; for cv > 0 the length expectation is
/// integrated on a quantile grid (`length_grid` points).
[[nodiscard]] double p_rf_finite_length(double lambda_s, double device_width,
                                        const std::vector<double>& positions,
                                        const LengthModel& length,
                                        int length_grid = 64);

/// Effective sharing factor: how many of the row's M devices the finite
/// length actually lets share one failure opportunity,
///   M_eff = p_rf_independent / p_rf_finite_length  (<= M, -> M as L -> ∞).
[[nodiscard]] double effective_sharing(double lambda_s, double device_width,
                                       const std::vector<double>& positions,
                                       const LengthModel& length);

/// Monte Carlo cross-check: grows explicit tubes (Poisson origins, sampled
/// lengths, thinned to functional density lambda_s) and counts rows where
/// any device position is uncovered. Usable when p_RF is not too small.
[[nodiscard]] UnionMcResult p_rf_finite_length_mc(
    double lambda_s, double device_width,
    const std::vector<double>& positions, const LengthModel& length,
    std::size_t n_rows, rng::Xoshiro256& rng);

}  // namespace cny::yield
