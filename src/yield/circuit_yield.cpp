#include "yield/circuit_yield.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "util/contracts.h"

namespace cny::yield {

WidthSpectrum scale_spectrum(const WidthSpectrum& spectrum, double width_scale,
                             double count_scale) {
  CNY_EXPECT(width_scale > 0.0);
  CNY_EXPECT(count_scale > 0.0);
  WidthSpectrum out;
  out.reserve(spectrum.size());
  for (const auto& [w, n] : spectrum) {
    const auto scaled_n = static_cast<std::uint64_t>(
        std::llround(static_cast<double>(n) * count_scale));
    if (scaled_n > 0) out.emplace_back(w * width_scale, scaled_n);
  }
  return out;
}

std::uint64_t spectrum_count(const WidthSpectrum& spectrum) {
  std::uint64_t n = 0;
  for (const auto& [w, c] : spectrum) n += c;
  return n;
}

YieldBreakdown circuit_yield(const WidthSpectrum& spectrum,
                             const device::FailureModel& model, double w_t) {
  CNY_EXPECT(!spectrum.empty());
  // Merge widths after upsizing so p_F is evaluated once per distinct width.
  std::map<double, std::uint64_t> merged;
  for (const auto& [w, n] : spectrum) {
    CNY_EXPECT(w > 0.0);
    merged[std::max(w, w_t)] += n;
  }

  YieldBreakdown out;
  out.min_width = merged.begin()->first;
  // One batched p_F query over the distinct widths (ascending map order);
  // the accumulation below runs in that same order, so the result is
  // bit-identical to the historical evaluate-in-the-loop form.
  std::vector<double> widths;
  widths.reserve(merged.size());
  for (const auto& [w, n] : merged) widths.push_back(w);
  const std::vector<double> pfs = model.p_f_batch(widths);
  double log_yield = 0.0;
  std::size_t i = 0;
  for (const auto& [w, n] : merged) {
    const double pf = pfs[i++];
    out.sum_pf += pf * static_cast<double>(n);
    log_yield += static_cast<double>(n) * std::log1p(-pf);
  }
  out.yield_exact = std::exp(log_yield);
  out.yield_approx = 1.0 - out.sum_pf;
  return out;
}

}  // namespace cny::yield
