#include "yield/flow.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <memory>
#include <optional>
#include <stdexcept>
#include <utility>

#include "exec/parallel_mc.h"
#include "layout/aligned_active.h"
#include "layout/row_placement.h"
#include "power/penalty.h"
#include "rng/engine.h"
#include "scenario/engine.h"
#include "util/contracts.h"
#include "util/strings.h"
#include "yield/empty_window.h"
#include "yield/row_model.h"

namespace cny::yield {

const char* to_string(Strategy s) {
  switch (s) {
    case Strategy::Uncorrelated: return "uncorrelated";
    case Strategy::DirectionalOnly: return "directional only";
    case Strategy::AlignedOneRow: return "aligned-active (1 row)";
    case Strategy::AlignedTwoRows: return "aligned-active (2 rows)";
  }
  return "?";
}

const StrategyResult& FlowResult::get(Strategy s) const {
  for (const auto& r : strategies) {
    if (r.strategy == s) return r;
  }
  CNY_EXPECT_MSG(false, "strategy not present in flow result");
  return strategies.front();  // unreachable
}

util::Table FlowResult::summary_table() const {
  util::Table t("Yield-flow strategy comparison");
  // Per-mechanism columns appear only when the mechanism ran, so the
  // open-only rendering is unchanged by the scenario engine's existence.
  const bool shorts = scenario.shorts.has_value();
  const bool length = scenario.length.has_value();
  std::vector<std::string> header = {"strategy",      "relaxation",
                                     "W_min (nm)",    "power penalty",
                                     "cells widened", "library area"};
  if (shorts) {
    header.push_back("Y_short");
    header.push_back("req p_Rm");
  }
  if (length) header.push_back("len scale");
  t.header(std::move(header));
  for (const auto& r : strategies) {
    // Named lvalue sidesteps GCC 12's -Wrestrict false positive on
    // operator+(const char*, std::string&&) (GCC bug 105329).
    const std::string area = util::format_pct(r.area_penalty);
    t.begin_row()
        .cell(to_string(r.strategy))
        .cell(util::format_sig(r.relaxation, 4) + "X")
        .num(r.w_min, 4)
        .cell(util::format_pct(r.power_penalty))
        .cell(std::to_string(r.cells_widened))
        .cell("+" + area);
    if (shorts) {
      t.cell(util::format_sig(r.short_mode_yield, 6))
          .cell(util::format_sig(r.required_p_rm, 8));
    }
    if (length) t.num(r.length_scale, 4);
  }
  return t;
}

void validate(const FlowParams& f) {
  // Affirmative comparisons reject NaN for free (every NaN compare is
  // false), so a NaN yield or CV lands in the same error as an
  // out-of-range one. Plain invalid_argument, not a contract macro: the
  // message crosses the service wire verbatim, so it must name the field
  // and nothing else (no source paths).
  const auto check = [](bool ok, const char* what) {
    if (!ok) throw std::invalid_argument(what);
  };
  check(f.yield_desired > 0.0 && f.yield_desired < 1.0,
        "yield_desired must be in (0, 1)");
  check(f.chip_transistors >= 1.0 && f.chip_transistors <= 1e16,
        "chip_transistors must be in [1, 1e16]");
  check(f.l_cnt > 0.0 && f.l_cnt <= 1e9, "l_cnt must be in (0, 1e9] nm");
  check(f.fets_per_um > 0.0 && f.fets_per_um <= 1e4,
        "fets_per_um must be in (0, 1e4]");
  check(f.active_spacing >= 0.0 && f.active_spacing <= 1e6,
        "active_spacing must be in [0, 1e6] nm");
  check(f.mc_samples >= 1 && f.mc_samples <= 10'000'000,
        "mc_samples must be in [1, 1e7]");
  check(f.mc_streams >= 1 && f.mc_streams <= 4096,
        "mc_streams must be in [1, 4096]");
  scenario::validate(f.scenario);
}

namespace {

/// Relaxation of the DirectionalOnly strategy: conditional MC over the
/// unmodified library's window-offset diversity at the W_min operating
/// point (iterated once: relaxation depends weakly on the width used).
double directional_relaxation(const netlist::Design& design,
                              const device::FailureModel& model,
                              const FlowParams& params, double w_probe,
                              double m_r_min_devices) {
  const auto offsets = layout::window_offsets(design, w_probe);
  CNY_EXPECT_MSG(!offsets.empty(), "design has no critical regions");
  std::vector<geom::Interval> windows;
  windows.reserve(offsets.size());
  for (const auto& o : offsets) windows.push_back({o.y, o.y + w_probe});

  const double p_f = model.p_f(w_probe);
  const double lambda_s = -std::log(p_f) / w_probe;
  rng::Xoshiro256 rng(rng::derive_seed(params.seed, 0xF10));
  const exec::McPolicy policy{params.n_threads, params.mc_streams};
  const double p_rf =
      union_conditional_mc(lambda_s, windows, params.mc_samples, rng, policy)
          .estimate;
  RowParams rows;
  rows.l_cnt = params.l_cnt;
  rows.fets_per_um = params.fets_per_um;
  rows.m_min = 1;
  (void)m_r_min_devices;
  return relaxation_factor(p_rf, p_f, rows);
}

}  // namespace

FlowResult run_flow(const celllib::Library& lib,
                    const netlist::Design& design,
                    const device::FailureModel& orig_model,
                    const FlowParams& params) {
  CNY_EXPECT(&design.library() == &lib);
  validate(params);

  const scenario::Engine engine(params, orig_model.pitch(),
                                orig_model.process());

  // RemovalFrontier derivation: rebuild at the earned corner only when the
  // caller's model is elsewhere — the service's session cache (and the
  // batch path's corner groups) already hand over warm models at the
  // derived corner, which pass through untouched.
  std::optional<device::FailureModel> corner_model;
  const device::FailureModel* corner_ptr = &orig_model;
  if (!engine.matches(orig_model.process())) {
    corner_model.emplace(orig_model.pitch(), engine.process());
    corner_ptr = &*corner_model;
  }

  // Opt-in bracket-scoped interpolant (ROADMAP "solver hot path"): every
  // p_F query any strategy's solver makes lives inside the W bracket, so
  // one table amortises them all. Installed on a local copy unless the
  // caller's model already covers the bracket (e.g. run_flow_batch's
  // shared table), so the caller's exactness is never altered.
  std::optional<device::FailureModel> interp_model;
  const device::FailureModel* eval_model = corner_ptr;
  if (params.use_interpolant) {
    const WminRequest bracket;
    if (!corner_ptr->interpolation_covers(bracket.w_lo) ||
        !corner_ptr->interpolation_covers(bracket.w_hi)) {
      // Install on the flow-local corner model if one already exists,
      // else on a fresh copy of the caller's.
      device::FailureModel& local =
          corner_model ? *corner_model : interp_model.emplace(orig_model);
      local.enable_interpolation(bracket.w_lo, bracket.w_hi,
                                 params.interpolant_knots, params.n_threads);
      eval_model = &local;
    }
  }
  const device::FailureModel& model = *eval_model;

  auto spectrum = design.width_spectrum();
  spectrum = scale_spectrum(
      spectrum, 1.0,
      params.chip_transistors / double(design.n_transistors()));

  RowParams rows;
  rows.l_cnt = params.l_cnt;
  rows.fets_per_um = params.fets_per_um;
  rows.m_min = 1;
  const double mrmin = m_r_min(rows);

  FlowResult out;
  out.m_r_min = mrmin;
  out.scenario = params.scenario;
  if (engine.removal_active()) out.derived_p_rs = engine.process().p_remove_s;

  // ShortFailure: the solver fixpoints against Y_S so every strategy's
  // W_min meets the combined open x short requirement. Empty hook = the
  // unchanged open-only solve.
  const auto short_yield = engine.short_mode_yield();

  const auto solve = [&](double relaxation) {
    WminRequest req;
    req.yield_desired = params.yield_desired;
    req.relaxation = relaxation;
    req.short_mode_yield = short_yield;
    return solve_w_min(spectrum, model, req);
  };

  // Per-strategy scenario columns (mechanism-off defaults otherwise).
  const auto fill_scenario = [&](StrategyResult& r, const WminResult& solved) {
    r.short_mode_yield = solved.short_mode_yield;
    if (engine.shorts_active()) r.required_p_rm = engine.required_p_rm(r.w_min);
  };

  // Uncorrelated baseline.
  const auto base = solve(1.0);
  out.m_min_uncorrelated = base.m_min;

  // Directional-only: probe the relaxation at the baseline W_min.
  const double dir_relax =
      directional_relaxation(design, model, params, base.w_min, mrmin);

  // FiniteLength: the aligned-credit rescale, probed (like the directional
  // relaxation) at the baseline W_min's functional-CNT density.
  double length_scale = 1.0;
  if (engine.length_active()) {
    const double lambda_s = -std::log(model.p_f(base.w_min)) / base.w_min;
    length_scale = engine.aligned_length_scale(lambda_s, base.w_min);
  }

  const auto eval_aligned = [&](int rows_per_polarity, StrategyResult& r) {
    double relax = mrmin / (rows_per_polarity == 2 ? 2.0 : 1.0);
    if (engine.length_active()) {
      relax = std::max(1.0, relax * length_scale);
      r.length_scale = length_scale;
    }
    const auto solved = solve(relax);
    layout::AlignOptions options;
    options.w_min = solved.w_min;
    options.rows_per_polarity = rows_per_polarity;
    const auto aligned =
        layout::align_active(lib, options, params.active_spacing);
    r.relaxation = relax;
    r.w_min = solved.w_min;
    r.power_penalty = power::upsizing_penalty(spectrum, solved.w_min);
    r.area_penalty = aligned.area_increase();
    r.cells_widened = aligned.cells_with_penalty();
    fill_scenario(r, solved);
  };

  {
    StrategyResult r;
    r.strategy = Strategy::Uncorrelated;
    r.relaxation = 1.0;
    r.w_min = base.w_min;
    r.power_penalty = power::upsizing_penalty(spectrum, base.w_min);
    fill_scenario(r, base);
    out.strategies.push_back(r);
  }
  {
    StrategyResult r;
    r.strategy = Strategy::DirectionalOnly;
    r.relaxation = dir_relax;
    const auto solved = solve(dir_relax);
    r.w_min = solved.w_min;
    r.power_penalty = power::upsizing_penalty(spectrum, solved.w_min);
    fill_scenario(r, solved);
    out.strategies.push_back(r);
  }
  {
    StrategyResult r;
    r.strategy = Strategy::AlignedOneRow;
    eval_aligned(1, r);
    out.strategies.push_back(r);
  }
  {
    StrategyResult r;
    r.strategy = Strategy::AlignedTwoRows;
    eval_aligned(2, r);
    out.strategies.push_back(r);
  }
  return out;
}

std::vector<FlowResult> run_flow_batch(const celllib::Library& lib,
                                       const std::vector<FlowJob>& jobs,
                                       const device::FailureModel& model,
                                       const BatchParams& batch) {
  for (const auto& job : jobs) {
    CNY_EXPECT(job.design != nullptr);
    // Fail on the named parameter before corner derivation can trip over
    // it (p_rs_at on a NaN target would throw a message naming nothing).
    validate(job.params);
  }
  // One warm model (with its bracket interpolant) per distinct *derived*
  // process corner, installed on batch-local copies so the caller's model
  // keeps answering exactly after the batch returns. Scenario sweeps batch
  // like param sweeps: every job whose RemovalFrontier (or its absence)
  // lands on the same corner shares that corner's table; the caller's own
  // corner is seeded from a copy, so its memo cache still counts.
  std::vector<const device::FailureModel*> job_models(jobs.size(), &model);
  std::vector<std::unique_ptr<device::FailureModel>> corner_models;
  if (batch.share_interpolant) {
    const WminRequest bracket;
    std::map<std::pair<double, double>, std::size_t> corners;
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      const auto corner = scenario::derived_process(
          model.process(), jobs[i].params.scenario);
      const auto key = std::make_pair(corner.p_metallic, corner.p_remove_s);
      const auto [it, inserted] = corners.try_emplace(key,
                                                      corner_models.size());
      if (inserted) {
        auto warmed =
            key == std::make_pair(model.process().p_metallic,
                                  model.process().p_remove_s)
                ? std::make_unique<device::FailureModel>(model)
                : std::make_unique<device::FailureModel>(model.pitch(),
                                                         corner);
        warmed->enable_interpolation(bracket.w_lo, bracket.w_hi,
                                     batch.interpolant_knots,
                                     batch.n_threads);
        corner_models.push_back(std::move(warmed));
      }
      job_models[i] = corner_models[it->second].get();
    }
  }

  // Jobs land in job-indexed slots and each job is a deterministic function
  // of its own (design, params), so scheduling cannot change any result.
  std::vector<FlowResult> results(jobs.size());
  exec::parallel_for(jobs.size(), batch.n_threads, [&](std::size_t i) {
    results[i] = run_flow(lib, *jobs[i].design, *job_models[i],
                          jobs[i].params);
  });
  return results;
}

}  // namespace cny::yield
