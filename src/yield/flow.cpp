#include "yield/flow.h"

#include <cmath>
#include <optional>

#include "exec/parallel_mc.h"
#include "layout/aligned_active.h"
#include "layout/row_placement.h"
#include "power/penalty.h"
#include "rng/engine.h"
#include "util/contracts.h"
#include "util/strings.h"
#include "yield/empty_window.h"
#include "yield/row_model.h"

namespace cny::yield {

const char* to_string(Strategy s) {
  switch (s) {
    case Strategy::Uncorrelated: return "uncorrelated";
    case Strategy::DirectionalOnly: return "directional only";
    case Strategy::AlignedOneRow: return "aligned-active (1 row)";
    case Strategy::AlignedTwoRows: return "aligned-active (2 rows)";
  }
  return "?";
}

const StrategyResult& FlowResult::get(Strategy s) const {
  for (const auto& r : strategies) {
    if (r.strategy == s) return r;
  }
  CNY_EXPECT_MSG(false, "strategy not present in flow result");
  return strategies.front();  // unreachable
}

util::Table FlowResult::summary_table() const {
  util::Table t("Yield-flow strategy comparison");
  t.header({"strategy", "relaxation", "W_min (nm)", "power penalty",
            "cells widened", "library area"});
  for (const auto& r : strategies) {
    // Named lvalue sidesteps GCC 12's -Wrestrict false positive on
    // operator+(const char*, std::string&&) (GCC bug 105329).
    const std::string area = util::format_pct(r.area_penalty);
    t.begin_row()
        .cell(to_string(r.strategy))
        .cell(util::format_sig(r.relaxation, 4) + "X")
        .num(r.w_min, 4)
        .cell(util::format_pct(r.power_penalty))
        .cell(std::to_string(r.cells_widened))
        .cell("+" + area);
  }
  return t;
}

namespace {

/// Relaxation of the DirectionalOnly strategy: conditional MC over the
/// unmodified library's window-offset diversity at the W_min operating
/// point (iterated once: relaxation depends weakly on the width used).
double directional_relaxation(const netlist::Design& design,
                              const device::FailureModel& model,
                              const FlowParams& params, double w_probe,
                              double m_r_min_devices) {
  const auto offsets = layout::window_offsets(design, w_probe);
  CNY_EXPECT_MSG(!offsets.empty(), "design has no critical regions");
  std::vector<geom::Interval> windows;
  windows.reserve(offsets.size());
  for (const auto& o : offsets) windows.push_back({o.y, o.y + w_probe});

  const double p_f = model.p_f(w_probe);
  const double lambda_s = -std::log(p_f) / w_probe;
  rng::Xoshiro256 rng(rng::derive_seed(params.seed, 0xF10));
  const exec::McPolicy policy{params.n_threads, params.mc_streams};
  const double p_rf =
      union_conditional_mc(lambda_s, windows, params.mc_samples, rng, policy)
          .estimate;
  RowParams rows;
  rows.l_cnt = params.l_cnt;
  rows.fets_per_um = params.fets_per_um;
  rows.m_min = 1;
  (void)m_r_min_devices;
  return relaxation_factor(p_rf, p_f, rows);
}

}  // namespace

FlowResult run_flow(const celllib::Library& lib,
                    const netlist::Design& design,
                    const device::FailureModel& orig_model,
                    const FlowParams& params) {
  CNY_EXPECT(&design.library() == &lib);
  CNY_EXPECT(params.chip_transistors > 0.0);

  // Opt-in bracket-scoped interpolant (ROADMAP "solver hot path"): every
  // p_F query any strategy's solver makes lives inside the W bracket, so
  // one table amortises them all. Installed on a local copy unless the
  // caller's model already covers the bracket (e.g. run_flow_batch's
  // shared table), so the caller's exactness is never altered.
  std::optional<device::FailureModel> interp_model;
  const device::FailureModel* eval_model = &orig_model;
  if (params.use_interpolant) {
    const WminRequest bracket;
    if (!orig_model.interpolation_covers(bracket.w_lo) ||
        !orig_model.interpolation_covers(bracket.w_hi)) {
      interp_model.emplace(orig_model);
      interp_model->enable_interpolation(bracket.w_lo, bracket.w_hi,
                                         params.interpolant_knots,
                                         params.n_threads);
      eval_model = &*interp_model;
    }
  }
  const device::FailureModel& model = *eval_model;

  auto spectrum = design.width_spectrum();
  spectrum = scale_spectrum(
      spectrum, 1.0,
      params.chip_transistors / double(design.n_transistors()));

  RowParams rows;
  rows.l_cnt = params.l_cnt;
  rows.fets_per_um = params.fets_per_um;
  rows.m_min = 1;
  const double mrmin = m_r_min(rows);

  FlowResult out;
  out.m_r_min = mrmin;

  const auto solve = [&](double relaxation) {
    WminRequest req;
    req.yield_desired = params.yield_desired;
    req.relaxation = relaxation;
    return solve_w_min(spectrum, model, req);
  };

  // Uncorrelated baseline.
  const auto base = solve(1.0);
  out.m_min_uncorrelated = base.m_min;

  // Directional-only: probe the relaxation at the baseline W_min.
  const double dir_relax =
      directional_relaxation(design, model, params, base.w_min, mrmin);

  const auto eval_aligned = [&](int rows_per_polarity, StrategyResult& r) {
    const double relax = mrmin / (rows_per_polarity == 2 ? 2.0 : 1.0);
    const auto solved = solve(relax);
    layout::AlignOptions options;
    options.w_min = solved.w_min;
    options.rows_per_polarity = rows_per_polarity;
    const auto aligned =
        layout::align_active(lib, options, params.active_spacing);
    r.relaxation = relax;
    r.w_min = solved.w_min;
    r.power_penalty = power::upsizing_penalty(spectrum, solved.w_min);
    r.area_penalty = aligned.area_increase();
    r.cells_widened = aligned.cells_with_penalty();
  };

  {
    StrategyResult r;
    r.strategy = Strategy::Uncorrelated;
    r.relaxation = 1.0;
    r.w_min = base.w_min;
    r.power_penalty = power::upsizing_penalty(spectrum, base.w_min);
    out.strategies.push_back(r);
  }
  {
    StrategyResult r;
    r.strategy = Strategy::DirectionalOnly;
    r.relaxation = dir_relax;
    const auto solved = solve(dir_relax);
    r.w_min = solved.w_min;
    r.power_penalty = power::upsizing_penalty(spectrum, solved.w_min);
    out.strategies.push_back(r);
  }
  {
    StrategyResult r;
    r.strategy = Strategy::AlignedOneRow;
    eval_aligned(1, r);
    out.strategies.push_back(r);
  }
  {
    StrategyResult r;
    r.strategy = Strategy::AlignedTwoRows;
    eval_aligned(2, r);
    out.strategies.push_back(r);
  }
  return out;
}

std::vector<FlowResult> run_flow_batch(const celllib::Library& lib,
                                       const std::vector<FlowJob>& jobs,
                                       const device::FailureModel& model,
                                       const BatchParams& batch) {
  for (const auto& job : jobs) CNY_EXPECT(job.design != nullptr);
  // The interpolant is installed on a batch-local copy so the caller's
  // model keeps answering exactly after the batch returns; the copy carries
  // the caller's memo cache, so already-paid evaluations still count.
  std::optional<device::FailureModel> shared_model;
  const device::FailureModel* eval_model = &model;
  if (batch.share_interpolant) {
    // One table over the solver's full W bracket serves every width query
    // any job's strategies will make.
    const WminRequest bracket;
    shared_model.emplace(model);
    shared_model->enable_interpolation(bracket.w_lo, bracket.w_hi,
                                       batch.interpolant_knots,
                                       batch.n_threads);
    eval_model = &*shared_model;
  }

  // Jobs land in job-indexed slots and each job is a deterministic function
  // of its own (design, params), so scheduling cannot change any result.
  std::vector<FlowResult> results(jobs.size());
  exec::parallel_for(jobs.size(), batch.n_threads, [&](std::size_t i) {
    results[i] = run_flow(lib, *jobs[i].design, *eval_model, jobs[i].params);
  });
  return results;
}

}  // namespace cny::yield
