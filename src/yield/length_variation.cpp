#include "yield/length_variation.h"

#include <algorithm>
#include <cmath>

#include "rng/distributions.h"
#include "util/contracts.h"

namespace cny::yield {

namespace {

/// |∪_i (x_i - L, x_i]| for sorted positions and a fixed length L.
double cover_measure_fixed(const std::vector<double>& sorted_positions,
                           double length) {
  double total = 0.0;
  double cur_lo = sorted_positions.front() - length;
  double cur_hi = sorted_positions.front();
  for (std::size_t i = 1; i < sorted_positions.size(); ++i) {
    const double lo = sorted_positions[i] - length;
    const double hi = sorted_positions[i];
    if (lo > cur_hi) {
      total += cur_hi - cur_lo;
      cur_lo = lo;
      cur_hi = hi;
    } else {
      cur_hi = hi;  // positions sorted -> hi >= cur_hi
    }
  }
  return total + (cur_hi - cur_lo);
}

/// Lognormal(mean, cv) quantile grid with equal probability weights
/// (midpoint rule in probability space).
std::vector<double> lognormal_grid(double mean, double cv, int n) {
  CNY_EXPECT(n >= 2);
  const double sigma2 = std::log1p(cv * cv);
  const double mu = std::log(mean) - 0.5 * sigma2;
  const double sigma = std::sqrt(sigma2);
  std::vector<double> out;
  out.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const double p = (i + 0.5) / n;
    // Inverse normal CDF via Acklam-style rational approximation is
    // overkill here; Newton on erf converges in a few steps from a
    // Moro-style seed.
    double z = 0.0;
    {
      // Beasley-Springer / Moro inverse normal.
      const double a[] = {2.50662823884, -18.61500062529, 41.39119773534,
                          -25.44106049637};
      const double b[] = {-8.47351093090, 23.08336743743, -21.06224101826,
                          3.13082909833};
      const double c[] = {0.3374754822726147, 0.9761690190917186,
                          0.1607979714918209, 0.0276438810333863,
                          0.0038405729373609, 0.0003951896511919,
                          0.0000321767881768, 0.0000002888167364,
                          0.0000003960315187};
      const double y = p - 0.5;
      if (std::fabs(y) < 0.42) {
        const double r = y * y;
        z = y * (((a[3] * r + a[2]) * r + a[1]) * r + a[0]) /
            ((((b[3] * r + b[2]) * r + b[1]) * r + b[0]) * r + 1.0);
      } else {
        double r = p;
        if (y > 0.0) r = 1.0 - p;
        r = std::log(-std::log(r));
        z = c[0] + r * (c[1] + r * (c[2] + r * (c[3] + r * (c[4] +
            r * (c[5] + r * (c[6] + r * (c[7] + r * c[8])))))));
        if (y < 0.0) z = -z;
      }
    }
    out.push_back(std::exp(mu + sigma * z));
  }
  return out;
}

}  // namespace

double LengthModel::mean_cover_measure(
    const std::vector<double>& positions) const {
  CNY_EXPECT(!positions.empty());
  CNY_EXPECT(mean > 0.0);
  CNY_EXPECT(cv >= 0.0);
  std::vector<double> sorted = positions;
  std::sort(sorted.begin(), sorted.end());
  if (cv == 0.0) return cover_measure_fixed(sorted, mean);
  const auto grid = lognormal_grid(mean, cv, 64);
  double acc = 0.0;
  for (double length : grid) acc += cover_measure_fixed(sorted, length);
  return acc / static_cast<double>(grid.size());
}

double LengthModel::sample(rng::Xoshiro256& rng) const {
  CNY_EXPECT(mean > 0.0);
  if (cv == 0.0) return mean;
  return rng::sample_lognormal_mean_sd(rng, mean, mean * cv);
}

double p_rf_finite_length(double lambda_s, double device_width,
                          const std::vector<double>& positions,
                          const LengthModel& length, int length_grid) {
  CNY_EXPECT(lambda_s > 0.0);
  CNY_EXPECT(device_width > 0.0);
  CNY_EXPECT(!positions.empty());
  CNY_EXPECT(length_grid >= 2);

  // Union over devices of "my covering-tube set is empty". With the tube
  // origin intensity ν = λ_s/E[L] per (x0, y) area over the device's
  // y-window W, P(∩_{i∈S} empty) = exp(-ν W E_L|∪ (x_i-L, x_i]|), which is
  // the Poisson union problem over x-intervals — delegate to the engine.
  //
  // For the union we need every subset's measure, so go through the
  // conditional-MC / inclusion–exclusion machinery per length-grid point
  // and average the UNION probability over lengths (tube lengths are iid
  // per tube, but a union over devices mixes them; the exact treatment
  // factorises only in the exponent per subset). For the practical regime
  // (cv <= 0.3) averaging the exponent kernel is accurate to O(cv^2) and we
  // expose the MC cross-check to verify.
  std::vector<double> sorted = positions;
  std::sort(sorted.begin(), sorted.end());

  const auto union_for_length = [&](double tube_length) {
    std::vector<geom::Interval> intervals;
    intervals.reserve(sorted.size());
    for (double x : sorted) intervals.push_back({x - tube_length, x});
    const double nu_w = lambda_s * device_width / tube_length;
    if (intervals.size() <= 22) {
      return poisson_union_exact(nu_w, intervals);
    }
    rng::Xoshiro256 rng(rng::derive_seed(0x1e46, intervals.size()));
    return union_conditional_mc(nu_w, intervals, 20000, rng).estimate;
  };

  if (length.cv == 0.0) return union_for_length(length.mean);
  const auto grid = lognormal_grid(length.mean, length.cv, length_grid);
  double acc = 0.0;
  for (double tube_length : grid) acc += union_for_length(tube_length);
  return acc / static_cast<double>(grid.size());
}

double effective_sharing(double lambda_s, double device_width,
                         const std::vector<double>& positions,
                         const LengthModel& length) {
  const double p1 = std::exp(-lambda_s * device_width);
  const double p_indep =
      -std::expm1(static_cast<double>(positions.size()) * std::log1p(-p1));
  const double p_rf =
      p_rf_finite_length(lambda_s, device_width, positions, length);
  CNY_ENSURE(p_rf > 0.0);
  return p_indep / p_rf;
}

UnionMcResult p_rf_finite_length_mc(double lambda_s, double device_width,
                                    const std::vector<double>& positions,
                                    const LengthModel& length,
                                    std::size_t n_rows,
                                    rng::Xoshiro256& rng) {
  CNY_EXPECT(lambda_s > 0.0);
  CNY_EXPECT(device_width > 0.0);
  CNY_EXPECT(!positions.empty());
  CNY_EXPECT(n_rows >= 2);

  std::vector<double> sorted = positions;
  std::sort(sorted.begin(), sorted.end());
  const double x_lo = sorted.front();
  const double x_hi = sorted.back();

  // Simulate only tubes whose y falls inside the device window (rate
  // λ_s · W tubes per nm of x0) with origins over [x_lo - L_max, x_hi].
  std::size_t failures = 0;
  std::vector<std::pair<double, double>> tubes;  // (x0, x0 + L)
  for (std::size_t row = 0; row < n_rows; ++row) {
    // Draw a generous origin domain per-row from the length law itself.
    const double l_max =
        length.cv == 0.0 ? length.mean : length.mean * (1.0 + 6.0 * length.cv);
    const double domain_lo = x_lo - l_max;
    const double domain = x_hi - domain_lo;
    const double nu = lambda_s * device_width / length.mean;  // per nm x0
    const long n_tubes = rng::sample_poisson(rng, nu * domain);
    tubes.clear();
    for (long t = 0; t < n_tubes; ++t) {
      const double x0 = rng.uniform(domain_lo, x_hi);
      tubes.emplace_back(x0, x0 + length.sample(rng));
    }
    bool any_uncovered = false;
    for (double x : sorted) {
      bool covered = false;
      for (const auto& [lo, hi] : tubes) {
        if (x >= lo && x < hi) {
          covered = true;
          break;
        }
      }
      if (!covered) {
        any_uncovered = true;
        break;
      }
    }
    if (any_uncovered) ++failures;
  }
  const auto ci = stats::wilson_ci(failures, n_rows);
  return UnionMcResult{
      static_cast<double>(failures) / static_cast<double>(n_rows),
      0.25 * ci.width(), n_rows};
}

}  // namespace cny::yield
