// Union-of-empty-windows engine — the numerical core of the Table 1 middle
// column ("calculating p_RF in a general case ... requires numerical
// methods", Sec 3.1).
//
// Setting: surviving functional s-CNTs along a row form a point process in
// y; CNFET i fails iff its window (the y-interval its active region spans)
// contains no functional CNT; the row fails iff ANY window is empty:
//
//   p_RF = P( ∪_i { window_i empty } ).
//
// Three evaluators, cross-validating each other:
//
//  * poisson_union_exact — for Poisson CNT statistics (pitch CV = 1) and a
//    modest number of *distinct* offsets k, inclusion–exclusion is exact:
//      P(∩_{i∈S} empty) = exp(-λ_s · |∪_{i∈S} window_i|),
//    so P(∪) = Σ_{S≠∅} (-1)^{|S|+1} exp(-λ_s |∪_S|)  (2^k terms, k <= ~24).
//
//  * union_conditional_mc — the Ross conditional Monte Carlo estimator for
//    rare unions, valid for Poisson statistics with ANY number of windows:
//    choose window i ∝ P(E_i), sample the process conditioned on E_i, count
//    the empty windows C, average  Σ_j P(E_j) / C.  Unbiased, with variance
//    that stays bounded as p_RF → 0 (direct MC would need ~1/p_RF trials).
//
//  * union_direct_mc — brute-force simulation on the *renewal* (general CV)
//    process; only usable when p_RF is not too small, used to validate the
//    other two and to quantify the Poisson approximation error.
#pragma once

#include <vector>

#include "cnt/pitch_model.h"
#include "exec/mc_policy.h"
#include "geom/interval.h"
#include "rng/engine.h"
#include "stats/accumulator.h"

namespace cny::yield {

/// Exact Poisson inclusion–exclusion over distinct windows.
/// `lambda_s` — linear density of functional CNTs (per nm).
/// `windows` — window intervals; duplicates (same lo/hi) are collapsed
/// first, so passing all M_Rmin windows of a row is fine as long as the
/// number of *distinct* intervals stays <= `max_distinct`.
[[nodiscard]] double poisson_union_exact(double lambda_s,
                                         std::vector<geom::Interval> windows,
                                         int max_distinct = 24);

struct UnionMcResult {
  double estimate = 0.0;
  double std_error = 0.0;
  std::size_t samples = 0;
};

/// Ross conditional MC for P(∪ empty) under Poisson statistics.
/// The `policy` shards the sample loop across RNG streams and threads (see
/// exec/parallel_mc.h); the default runs the legacy serial loop on `rng`
/// bit-for-bit. With n_streams > 1 the estimate is a function of
/// (rng state, n_streams) only — never of n_threads — and `rng` is advanced
/// by one long_jump so consecutive calls stay independent.
[[nodiscard]] UnionMcResult union_conditional_mc(
    double lambda_s, const std::vector<geom::Interval>& windows,
    std::size_t n_samples, rng::Xoshiro256& rng,
    const exec::McPolicy& policy = {});

/// Direct MC on the stationary renewal process with per-CNT failure
/// probability p_fail (general pitch CV; slow, for validation).
[[nodiscard]] UnionMcResult union_direct_mc(
    const cnt::PitchModel& pitch, double p_fail,
    const std::vector<geom::Interval>& windows, std::size_t n_samples,
    rng::Xoshiro256& rng);

}  // namespace cny::yield
