// YieldFlow — the one-call entry point a downstream user adopts: give it a
// library, a design and process assumptions; it runs the paper's whole
// methodology and reports every layout strategy side by side.
//
//   strategies compared (Sec 2 vs Sec 3):
//     Uncorrelated        — eq. 2.5 W_min, no correlation credit
//     DirectionalOnly     — directional growth, unmodified library
//                           (numerical p_RF over the library's offsets)
//     AlignedOneRow       — aligned-active, one grid row per polarity
//     AlignedTwoRows      — two grid rows (area-free, 2X less credit)
//
// Outputs per strategy: the earned relaxation, W_min, upsizing power
// penalty, and (for the aligned flows) the library area increase.
#pragma once

#include <string>
#include <vector>

#include "celllib/generator.h"
#include "device/failure_model.h"
#include "netlist/design.h"
#include "scenario/spec.h"
#include "util/table.h"
#include "yield/wmin_solver.h"

namespace cny::yield {

enum class Strategy {
  Uncorrelated,
  DirectionalOnly,
  AlignedOneRow,
  AlignedTwoRows,
};

[[nodiscard]] const char* to_string(Strategy s);

struct FlowParams {
  double yield_desired = 0.90;
  double chip_transistors = 1e8;   ///< design is count-scaled to this M
  double l_cnt = 200.0e3;          ///< nm
  double fets_per_um = 1.8;        ///< P_min-CNFET (paper's measured value)
  double active_spacing = 140.0;   ///< same-y diffusion rule for alignment
  std::size_t mc_samples = 20000;  ///< conditional-MC budget (DirectionalOnly)
  std::uint64_t seed = 1;
  /// Worker threads for the MC loops; 0 = hardware concurrency. Pure
  /// scheduling: every reported number is invariant under n_threads.
  unsigned n_threads = 0;
  /// RNG streams the conditional MC is sharded into. Together with `seed`
  /// this fixes the random sequence, so results are a function of
  /// (seed, mc_streams) only. 1 reproduces the pre-exec-subsystem serial
  /// numbers bit-for-bit (stream 0 is the legacy serial order).
  unsigned mc_streams = 16;
  /// Route p_F(W) queries through a bracket-scoped log-p_F interpolant
  /// built over the solver's W bracket (on a flow-local copy of the model —
  /// the caller's model keeps answering exactly). The knots are exact
  /// truncated-kernel evaluations, so the table costs `interpolant_knots`
  /// queries up front and repays them across every solver bracket step of
  /// every strategy; W_min shifts only by the interpolation error
  /// (~1e-4 nm with the default knot count). Defaults to off: exactness is
  /// the single-design default, batching is where the table is shared
  /// (run_flow_batch / BatchParams::share_interpolant).
  bool use_interpolant = false;
  std::size_t interpolant_knots = 65;
  /// Failure-mechanism selection (scenario/spec.h): optional ShortFailure /
  /// FiniteLength / RemovalFrontier blocks composed by the scenario engine.
  /// An empty spec (the default) reproduces the open-only flow bit for bit.
  scenario::ScenarioSpec scenario;
};

/// The one range check every front end shares (run_flow itself, the CLI,
/// and the service protocol decoder): validates each FlowParams field and
/// the embedded scenario spec, NaN-safe, throwing std::invalid_argument
/// whose message names the offending field and nothing else (it crosses
/// the service wire verbatim). Scheduling knobs (n_threads, interpolant)
/// are unconstrained — they never change results.
void validate(const FlowParams& params);

struct StrategyResult {
  Strategy strategy = Strategy::Uncorrelated;
  double relaxation = 1.0;      ///< p_F requirement credit vs uncorrelated
  double w_min = 0.0;           ///< nm
  double power_penalty = 0.0;   ///< upsizing capacitance penalty (fraction)
  double area_penalty = 0.0;    ///< library placement-area increase
  std::size_t cells_widened = 0;
  // Scenario-engine columns; the defaults are the mechanism-off values, so
  // an empty ScenarioSpec leaves the struct indistinguishable from pre-
  // scenario results.
  double short_mode_yield = 1.0; ///< Y_S at w_min (ShortFailure)
  double required_p_rm = 0.0;    ///< short-mode p_Rm floor at w_min (ShortFailure)
  double length_scale = 1.0;     ///< aligned-credit rescale (FiniteLength)
};

struct FlowResult {
  std::vector<StrategyResult> strategies;  ///< in enum order
  double m_r_min = 0.0;
  std::uint64_t m_min_uncorrelated = 0;
  /// Echo of the spec the flow ran under (empty for the open-only flow).
  scenario::ScenarioSpec scenario;
  /// p_Rs the RemovalFrontier mechanism earned from the frontier (only
  /// meaningful when scenario.removal is set).
  double derived_p_rs = 0.0;

  [[nodiscard]] const StrategyResult& get(Strategy s) const;
  [[nodiscard]] util::Table summary_table() const;
};

/// Runs every strategy. The design must target `lib`.
[[nodiscard]] FlowResult run_flow(const celllib::Library& lib,
                                  const netlist::Design& design,
                                  const device::FailureModel& model,
                                  const FlowParams& params);

/// One unit of batched work: a design plus the parameters to evaluate it
/// under. Param sweeps are batches whose jobs share a design.
struct FlowJob {
  const netlist::Design* design = nullptr;
  FlowParams params;
};

struct BatchParams {
  /// Concurrent jobs; 0 = hardware concurrency. Scheduling only — results
  /// are always identical to running each job through run_flow alone.
  unsigned n_threads = 0;
  /// Build one log-p_F(W) interpolant up front (on a batch-local copy of
  /// the model — the caller's model is never modified) and let all jobs
  /// (every strategy of every design) share it, instead of paying the
  /// count-distribution PGF per fresh width per job. Trades exactness for
  /// throughput: W_min shifts by the interpolation error (~1e-4 nm with the
  /// default knot count).
  bool share_interpolant = true;
  std::size_t interpolant_knots = 65;
};

/// Evaluates every job concurrently on the shared thread pool. Results come
/// back in job order and are deterministic: job i equals
/// run_flow(lib, *jobs[i].design, model, jobs[i].params) exactly (when
/// `share_interpolant` is false) or to interpolation accuracy (when true).
[[nodiscard]] std::vector<FlowResult> run_flow_batch(
    const celllib::Library& lib, const std::vector<FlowJob>& jobs,
    const device::FailureModel& model, const BatchParams& batch = {});

}  // namespace cny::yield
