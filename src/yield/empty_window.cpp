#include "yield/empty_window.h"

#include <algorithm>
#include <bit>
#include <cmath>

#include "exec/parallel_mc.h"
#include "rng/distributions.h"
#include "util/contracts.h"

namespace cny::yield {

namespace {

/// Collapses exactly-equal intervals, returning distinct intervals.
std::vector<geom::Interval> distinct_windows(
    std::vector<geom::Interval> windows) {
  std::sort(windows.begin(), windows.end(),
            [](const geom::Interval& a, const geom::Interval& b) {
              if (a.lo != b.lo) return a.lo < b.lo;
              return a.hi < b.hi;
            });
  windows.erase(std::unique(windows.begin(), windows.end()), windows.end());
  return windows;
}

}  // namespace

double poisson_union_exact(double lambda_s,
                           std::vector<geom::Interval> windows,
                           int max_distinct) {
  CNY_EXPECT(lambda_s > 0.0);
  CNY_EXPECT(!windows.empty());
  for (const auto& w : windows) CNY_EXPECT(!w.empty());

  const auto distinct = distinct_windows(std::move(windows));
  const int k = static_cast<int>(distinct.size());
  CNY_EXPECT_MSG(k <= max_distinct,
                 "too many distinct windows for inclusion-exclusion");

  // Flat (lo, hi) pairs keep the subset scan on two contiguous doubles per
  // member instead of chasing Interval pointers.
  std::vector<double> lo_of(static_cast<std::size_t>(k));
  std::vector<double> hi_of(static_cast<std::size_t>(k));
  for (int i = 0; i < k; ++i) {
    lo_of[static_cast<std::size_t>(i)] = distinct[static_cast<std::size_t>(i)].lo;
    hi_of[static_cast<std::size_t>(i)] = distinct[static_cast<std::size_t>(i)].hi;
  }

  // Enumerate subsets; union measure per subset via sorted merge over the
  // (already lo-sorted) members, walking only the SET bits of the mask.
  const std::uint32_t n_subsets = 1u << k;
  double total = 0.0;
  for (std::uint32_t mask = 1; mask < n_subsets; ++mask) {
    std::uint32_t bits = mask;
    std::size_t first = static_cast<std::size_t>(std::countr_zero(bits));
    bits &= bits - 1;
    double measure = 0.0;
    double cur_lo = lo_of[first];
    double cur_hi = hi_of[first];
    while (bits != 0) {
      const std::size_t i = static_cast<std::size_t>(std::countr_zero(bits));
      bits &= bits - 1;
      if (lo_of[i] > cur_hi) {
        measure += cur_hi - cur_lo;
        cur_lo = lo_of[i];
        cur_hi = hi_of[i];
      } else {
        cur_hi = std::max(cur_hi, hi_of[i]);
      }
    }
    measure += cur_hi - cur_lo;

    const double term = std::exp(-lambda_s * measure);
    total += (std::popcount(mask) % 2 == 1) ? term : -term;
  }
  // Alternating-series rounding can nick the result just below 0 when the
  // union probability underflows; clamp.
  return std::clamp(total, 0.0, 1.0);
}

UnionMcResult union_conditional_mc(double lambda_s,
                                   const std::vector<geom::Interval>& windows,
                                   std::size_t n_samples,
                                   rng::Xoshiro256& rng,
                                   const exec::McPolicy& policy) {
  CNY_EXPECT(lambda_s > 0.0);
  CNY_EXPECT(!windows.empty());
  CNY_EXPECT(n_samples >= 2);

  // Marginal empty probabilities P(E_i) = exp(-λ_s |w_i|).
  const std::size_t n = windows.size();
  std::vector<double> p_empty(n);
  double sum_p = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    CNY_EXPECT(!windows[i].empty());
    p_empty[i] = std::exp(-lambda_s * windows[i].length());
    sum_p += p_empty[i];
  }
  const rng::DiscreteSampler pick(p_empty);

  // Only points inside ∪ windows matter; sample the conditional Poisson
  // process on (∪ windows) \ w_i as independent Poisson points on each
  // disjoint component of that set.
  geom::IntervalSet all;
  for (const auto& w : windows) all.add(w);

  // Shardable kernel: everything above is shared read-only state; the
  // per-thread scratch (`points`) lives inside the kernel.
  const auto kernel = [&](unsigned /*stream*/, std::uint64_t shard_samples,
                          rng::Xoshiro256& shard_rng) {
    stats::Accumulator acc;
    std::vector<double> points;
    for (std::uint64_t s = 0; s < shard_samples; ++s) {
      const std::size_t i = pick(shard_rng);
      const auto& forced = windows[i];

      // Components of (∪ windows) \ forced.
      points.clear();
      for (const auto& comp : all.components()) {
        // Subtract `forced` from this component (0, 1 or 2 residual pieces).
        const geom::Interval pieces[2] = {
            {comp.lo, std::min(comp.hi, forced.lo)},
            {std::max(comp.lo, forced.hi), comp.hi}};
        for (const auto& piece : pieces) {
          if (piece.empty()) continue;
          const long cnt =
              rng::sample_poisson(shard_rng, lambda_s * piece.length());
          for (long c = 0; c < cnt; ++c) {
            points.push_back(shard_rng.uniform(piece.lo, piece.hi));
          }
        }
      }
      std::sort(points.begin(), points.end());

      // Count empty windows (window i is empty by construction).
      std::size_t empties = 0;
      for (const auto& w : windows) {
        const auto it = std::lower_bound(points.begin(), points.end(), w.lo);
        const bool has_point = it != points.end() && *it < w.hi;
        if (!has_point) ++empties;
      }
      CNY_ENSURE(empties >= 1);
      acc.add(sum_p / static_cast<double>(empties));
    }
    return acc;
  };

  const auto acc = exec::run_mc<stats::Accumulator>(
      n_samples, rng, policy, kernel,
      [](stats::Accumulator& into, stats::Accumulator&& part) {
        into.merge(part);
      });
  return UnionMcResult{acc.mean(), acc.std_error(), n_samples};
}

UnionMcResult union_direct_mc(const cnt::PitchModel& pitch, double p_fail,
                              const std::vector<geom::Interval>& windows,
                              std::size_t n_samples, rng::Xoshiro256& rng) {
  CNY_EXPECT(!windows.empty());
  CNY_EXPECT(p_fail >= 0.0 && p_fail < 1.0);
  CNY_EXPECT(n_samples >= 2);

  double lo = windows.front().lo, hi = windows.front().hi;
  for (const auto& w : windows) {
    CNY_EXPECT(!w.empty());
    lo = std::min(lo, w.lo);
    hi = std::max(hi, w.hi);
  }

  std::size_t failures = 0;
  std::vector<double> points;
  for (std::size_t s = 0; s < n_samples; ++s) {
    points.clear();
    double y = lo + pitch.sample_equilibrium(rng);
    while (y < hi) {
      if (!rng::sample_bernoulli(rng, p_fail)) points.push_back(y);
      y += pitch.sample(rng);
    }
    bool any_empty = false;
    for (const auto& w : windows) {
      const auto it = std::lower_bound(points.begin(), points.end(), w.lo);
      if (!(it != points.end() && *it < w.hi)) {
        any_empty = true;
        break;
      }
    }
    if (any_empty) ++failures;
  }

  const auto ci = stats::wilson_ci(failures, n_samples);
  const double p = static_cast<double>(failures) / static_cast<double>(n_samples);
  return UnionMcResult{p, 0.25 * ci.width(), n_samples};
}

}  // namespace cny::yield
