// W_min solver (eqs. 2.4 / 2.5).
//
// The paper's simplification: neglect yield loss from non-minimum devices,
// so the threshold width W_t = W_min must satisfy
//
//   M_min · p_F(W_min) <= 1 - Yield_desired
//
// where M_min is the number of devices at/below the threshold *after*
// upsizing — which itself depends on W_min, so the solver iterates the
// fixpoint ("estimating M_min can be iterative in nature", Sec 2.2). The
// graphical procedure of Fig 2.1 — draw the horizontal line at
// (1 - Yield_desired)/M_min and intersect the p_F curve — is the inner
// inversion step.
#pragma once

#include <functional>

#include "device/failure_model.h"
#include "yield/circuit_yield.h"

namespace cny::yield {

struct WminRequest {
  double yield_desired = 0.90;
  /// Failure-probability relaxation from correlation (Sec 3.1): the target
  /// p_F* is multiplied by this factor (350 for the paper's combined
  /// directional-growth + aligned-active flow at 45 nm). 1 = uncorrelated.
  double relaxation = 1.0;
  /// Optional fixed M_min (0 = derive from the spectrum by iteration).
  std::uint64_t fixed_m_min = 0;
  /// Search bracket for W (nm).
  double w_lo = 4.0;
  double w_hi = 400.0;
  /// Optional second failure mode: chip-level short-mode yield Y_S(W),
  /// monotone non-increasing in W (wider devices keep more m-CNTs). When
  /// set, the solver targets the combined requirement
  ///
  ///   Y_open(W_min) · Y_S(W_min) >= yield_desired
  ///
  /// by fixpointing the open-mode solve against an effective target
  /// yield_desired / Y_S (the scenario engine's ShortFailure mechanism
  /// supplies the hook). Empty (the default) runs the open-only eq. 2.5
  /// solve unchanged; a hook that evaluates to exactly 1 (p_Rm = 1)
  /// reproduces the open-only result bit for bit.
  std::function<double(double)> short_mode_yield;
};

struct WminResult {
  double w_min = 0.0;          ///< solved threshold width (nm)
  double p_f_target = 0.0;     ///< (1-Y)/M_min · relaxation
  std::uint64_t m_min = 0;     ///< devices counted as minimum-size
  int iterations = 0;          ///< fixpoint iterations used
  bool converged = false;
  double short_mode_yield = 1.0; ///< Y_S(w_min); 1 when the hook is absent
  YieldBreakdown verification; ///< full-spectrum yield at the solution
};

/// Solves W_min for the given width spectrum and device model.
[[nodiscard]] WminResult solve_w_min(const WidthSpectrum& spectrum,
                                     const device::FailureModel& model,
                                     const WminRequest& request);

/// The graphical inner step alone: W such that p_F(W) = target.
[[nodiscard]] double invert_p_f(const device::FailureModel& model,
                                double p_f_target, double w_lo = 4.0,
                                double w_hi = 400.0);

}  // namespace cny::yield
