#include "yield/row_model.h"

#include <cmath>

#include "util/contracts.h"

namespace cny::yield {

double m_r_min(const RowParams& params) {
  CNY_EXPECT(params.l_cnt > 0.0);
  CNY_EXPECT(params.fets_per_um > 0.0);
  return params.l_cnt / 1000.0 * params.fets_per_um;
}

double k_rows(const RowParams& params) {
  CNY_EXPECT(params.m_min > 0);
  return static_cast<double>(params.m_min) / m_r_min(params);
}

double p_rf_uncorrelated(double p_f, const RowParams& params) {
  CNY_EXPECT(p_f >= 0.0 && p_f < 1.0);
  // 1 - (1-p)^n computed stably for tiny p.
  return -std::expm1(m_r_min(params) * std::log1p(-p_f));
}

double p_rf_aligned(double p_f) {
  CNY_EXPECT(p_f >= 0.0 && p_f < 1.0);
  return p_f;
}

double chip_yield_from_rows(double p_rf, const RowParams& params) {
  CNY_EXPECT(p_rf >= 0.0 && p_rf < 1.0);
  return std::exp(k_rows(params) * std::log1p(-p_rf));
}

double relaxation_factor(double p_rf_style, double p_f,
                         const RowParams& params) {
  CNY_EXPECT(p_rf_style > 0.0);
  return p_rf_uncorrelated(p_f, params) / p_rf_style;
}

}  // namespace cny::yield
