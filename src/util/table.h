// Plain-text / markdown / CSV table emitter used by every experiment driver
// to print the paper's tables and figure series.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace cny::util {

/// A rectangular table of strings with a header row and an optional title.
/// Rows may be added cell-by-cell or as whole rows; ragged rows are padded
/// with empty cells on render.
class Table {
 public:
  explicit Table(std::string title = {}) : title_(std::move(title)) {}

  /// Replaces the header row.
  Table& header(std::vector<std::string> cells);

  /// Appends a full row.
  Table& row(std::vector<std::string> cells);

  /// Starts a new row and returns it for incremental appends.
  Table& begin_row();
  Table& cell(std::string value);

  /// Convenience: appends a numeric cell with 4 significant digits.
  Table& num(double value, int digits = 4);

  [[nodiscard]] std::size_t n_rows() const { return rows_.size(); }
  [[nodiscard]] std::size_t n_cols() const;
  [[nodiscard]] const std::string& title() const { return title_; }
  [[nodiscard]] const std::vector<std::string>& header_row() const { return header_; }
  [[nodiscard]] const std::vector<std::vector<std::string>>& rows() const { return rows_; }

  /// Renders with aligned columns and box-drawing rules, like
  ///   Table 1. ...
  ///   | a | b |
  [[nodiscard]] std::string to_text() const;

  /// Renders as GitHub-flavoured markdown.
  [[nodiscard]] std::string to_markdown() const;

  /// Renders as RFC-4180-ish CSV (quotes cells containing commas/quotes).
  [[nodiscard]] std::string to_csv() const;

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

std::ostream& operator<<(std::ostream& os, const Table& t);

}  // namespace cny::util
