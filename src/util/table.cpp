#include "util/table.h"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "util/contracts.h"
#include "util/strings.h"

namespace cny::util {

Table& Table::header(std::vector<std::string> cells) {
  header_ = std::move(cells);
  return *this;
}

Table& Table::row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
  return *this;
}

Table& Table::begin_row() {
  rows_.emplace_back();
  return *this;
}

Table& Table::cell(std::string value) {
  CNY_EXPECT_MSG(!rows_.empty(), "cell() before begin_row()/row()");
  rows_.back().push_back(std::move(value));
  return *this;
}

Table& Table::num(double value, int digits) {
  return cell(format_sig(value, digits));
}

std::size_t Table::n_cols() const {
  std::size_t n = header_.size();
  for (const auto& r : rows_) n = std::max(n, r.size());
  return n;
}

namespace {

std::vector<std::size_t> column_widths(const std::vector<std::string>& header,
                                       const std::vector<std::vector<std::string>>& rows,
                                       std::size_t n_cols) {
  std::vector<std::size_t> w(n_cols, 0);
  for (std::size_t c = 0; c < header.size(); ++c) w[c] = header[c].size();
  for (const auto& r : rows)
    for (std::size_t c = 0; c < r.size(); ++c) w[c] = std::max(w[c], r[c].size());
  return w;
}

void render_row(std::ostringstream& os, const std::vector<std::string>& cells,
                const std::vector<std::size_t>& widths) {
  os << '|';
  for (std::size_t c = 0; c < widths.size(); ++c) {
    const std::string& v = c < cells.size() ? cells[c] : std::string{};
    os << ' ' << v << std::string(widths[c] - v.size(), ' ') << " |";
  }
  os << '\n';
}

std::string csv_escape(const std::string& v) {
  if (v.find_first_of(",\"\n") == std::string::npos) return v;
  std::string out = "\"";
  for (char ch : v) {
    if (ch == '"') out += "\"\"";
    else out += ch;
  }
  out += '"';
  return out;
}

}  // namespace

std::string Table::to_text() const {
  const std::size_t nc = n_cols();
  const auto widths = column_widths(header_, rows_, nc);
  std::ostringstream os;
  if (!title_.empty()) os << title_ << '\n';
  std::size_t total = 1;
  for (auto w : widths) total += w + 3;
  const std::string rule(total, '-');
  os << rule << '\n';
  if (!header_.empty()) {
    render_row(os, header_, widths);
    os << rule << '\n';
  }
  for (const auto& r : rows_) render_row(os, r, widths);
  os << rule << '\n';
  return os.str();
}

std::string Table::to_markdown() const {
  const std::size_t nc = n_cols();
  const auto widths = column_widths(header_, rows_, nc);
  std::ostringstream os;
  if (!title_.empty()) os << "**" << title_ << "**\n\n";
  render_row(os, header_, widths);
  os << '|';
  for (std::size_t c = 0; c < nc; ++c) os << std::string(widths[c] + 2, '-') << '|';
  os << '\n';
  for (const auto& r : rows_) render_row(os, r, widths);
  return os.str();
}

std::string Table::to_csv() const {
  std::ostringstream os;
  const auto emit = [&os](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c) os << ',';
      os << csv_escape(cells[c]);
    }
    os << '\n';
  };
  if (!header_.empty()) emit(header_);
  for (const auto& r : rows_) emit(r);
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const Table& t) {
  return os << t.to_text();
}

}  // namespace cny::util
