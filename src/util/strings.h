// Small string helpers shared by the text I/O layers (Liberty-lite parser,
// CSV/table emitters, CLI).
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace cny::util {

/// Removes leading and trailing whitespace (space, tab, CR, LF).
[[nodiscard]] std::string_view trim(std::string_view s);

/// Splits `s` on `sep`, trimming each token; empty tokens are preserved.
[[nodiscard]] std::vector<std::string> split(std::string_view s, char sep);

/// Splits on arbitrary runs of whitespace; empty tokens are dropped.
[[nodiscard]] std::vector<std::string> split_ws(std::string_view s);

/// True if `s` begins with `prefix`.
[[nodiscard]] bool starts_with(std::string_view s, std::string_view prefix);

/// Lower-cases ASCII characters.
[[nodiscard]] std::string to_lower(std::string_view s);

/// Formats a double with `digits` significant digits (scientific when small).
[[nodiscard]] std::string format_sig(double v, int digits = 3);

/// Formats a probability like the paper's tables, e.g. "5.3e-06".
[[nodiscard]] std::string format_prob(double p);

/// Formats `v` as a percentage with one decimal, e.g. "12.5%".
[[nodiscard]] std::string format_pct(double fraction);

/// Parses a double, throwing cny::ContractViolation on garbage.
[[nodiscard]] double parse_double(std::string_view s);

/// Parses a non-negative integer, throwing on garbage.
[[nodiscard]] long parse_long(std::string_view s);

}  // namespace cny::util
