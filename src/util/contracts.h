// Lightweight contract macros in the spirit of C++ Core Guidelines I.6/I.8.
//
// CNY_EXPECT  — precondition on arguments supplied by a caller; violation
//               throws cny::ContractViolation (callers may legitimately
//               probe-and-recover, e.g. CLI input validation).
// CNY_ENSURE  — postcondition / internal invariant; violation also throws so
//               that tests can assert on it, but indicates a library bug.
//
// Both are always enabled: every model in this library is numerical and a
// silent domain error (negative probability, empty interval, ...) corrupts
// results far downstream of the fault.
#pragma once

#include <stdexcept>
#include <string>

namespace cny {

/// Exception thrown when a contract (pre- or post-condition) is violated.
class ContractViolation : public std::logic_error {
 public:
  ContractViolation(const char* kind, const char* condition, const char* file,
                    int line, const std::string& message)
      : std::logic_error(std::string(kind) + " failed: " + condition + " at " +
                         file + ":" + std::to_string(line) +
                         (message.empty() ? "" : " — " + message)) {}
};

namespace detail {
[[noreturn]] inline void contract_fail(const char* kind, const char* condition,
                                       const char* file, int line,
                                       const std::string& message = {}) {
  throw ContractViolation(kind, condition, file, line, message);
}
}  // namespace detail

}  // namespace cny

#define CNY_EXPECT(cond)                                                    \
  do {                                                                      \
    if (!(cond))                                                            \
      ::cny::detail::contract_fail("precondition", #cond, __FILE__,         \
                                   __LINE__);                               \
  } while (false)

#define CNY_EXPECT_MSG(cond, msg)                                           \
  do {                                                                      \
    if (!(cond))                                                            \
      ::cny::detail::contract_fail("precondition", #cond, __FILE__,         \
                                   __LINE__, (msg));                        \
  } while (false)

#define CNY_ENSURE(cond)                                                    \
  do {                                                                      \
    if (!(cond))                                                            \
      ::cny::detail::contract_fail("postcondition", #cond, __FILE__,        \
                                   __LINE__);                               \
  } while (false)

#define CNY_ENSURE_MSG(cond, msg)                                           \
  do {                                                                      \
    if (!(cond))                                                            \
      ::cny::detail::contract_fail("postcondition", #cond, __FILE__,        \
                                   __LINE__, (msg));                        \
  } while (false)
