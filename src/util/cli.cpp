#include "util/cli.h"

#include "util/contracts.h"
#include "util/strings.h"

namespace cny::util {

Cli::Cli(int argc, const char* const* argv) {
  CNY_EXPECT(argc >= 1);
  program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (!starts_with(arg, "--")) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg.erase(0, 2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      flags_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && !starts_with(argv[i + 1], "--")) {
      flags_[arg] = argv[++i];
    } else {
      flags_[arg] = "true";
    }
  }
}

bool Cli::has(const std::string& name) const { return flags_.count(name) > 0; }

std::vector<std::string> Cli::flag_names() const {
  std::vector<std::string> names;
  names.reserve(flags_.size());
  for (const auto& [name, _] : flags_) names.push_back(name);
  return names;  // std::map iteration is already sorted
}

std::string Cli::get(const std::string& name, const std::string& fallback) const {
  const auto it = flags_.find(name);
  return it == flags_.end() ? fallback : it->second;
}

double Cli::get_double(const std::string& name, double fallback) const {
  const auto it = flags_.find(name);
  return it == flags_.end() ? fallback : parse_double(it->second);
}

long Cli::get_long(const std::string& name, long fallback) const {
  const auto it = flags_.find(name);
  return it == flags_.end() ? fallback : parse_long(it->second);
}

}  // namespace cny::util
