// Length and density units used throughout the library.
//
// Canonical internal unit is the nanometre (double). Helper constants make
// call sites read like the paper: `200.0 * units::um`, `4.0 * units::nm`.
#pragma once

namespace cny::units {

inline constexpr double nm = 1.0;       ///< nanometre (canonical unit)
inline constexpr double um = 1.0e3;     ///< micrometre in nm
inline constexpr double mm = 1.0e6;     ///< millimetre in nm

/// Converts a linear density given per micrometre into per nanometre.
inline constexpr double per_um(double v) { return v / um; }

}  // namespace cny::units
