// Minimal command-line flag parser for the example executables.
//
//   cny::util::Cli cli(argc, argv);
//   const double pm = cli.get_double("pm", 0.33);
//   if (cli.has("help")) { ... }
//
// Flags take the forms: --name=value, --name value, --name (boolean).
#pragma once

#include <map>
#include <string>
#include <vector>

namespace cny::util {

class Cli {
 public:
  Cli(int argc, const char* const* argv);

  [[nodiscard]] bool has(const std::string& name) const;
  [[nodiscard]] std::string get(const std::string& name,
                                const std::string& fallback) const;
  [[nodiscard]] double get_double(const std::string& name, double fallback) const;
  [[nodiscard]] long get_long(const std::string& name, long fallback) const;

  /// Names of every flag present, sorted — lets a front end reject flags
  /// it does not understand instead of silently ignoring a typo.
  [[nodiscard]] std::vector<std::string> flag_names() const;

  /// Positional (non-flag) arguments in order.
  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }

  /// The program name (argv[0]).
  [[nodiscard]] const std::string& program() const { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
};

}  // namespace cny::util
