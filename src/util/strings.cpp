#include "util/strings.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "util/contracts.h"

namespace cny::util {

std::string_view trim(std::string_view s) {
  const auto is_space = [](char c) {
    return c == ' ' || c == '\t' || c == '\r' || c == '\n';
  };
  while (!s.empty() && is_space(s.front())) s.remove_prefix(1);
  while (!s.empty() && is_space(s.back())) s.remove_suffix(1);
  return s;
}

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(trim(s.substr(start, i - start)));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string> split_ws(std::string_view s) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    std::size_t start = i;
    while (i < s.size() && !std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    if (i > start) out.emplace_back(s.substr(start, i - start));
  }
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string format_sig(double v, int digits) {
  CNY_EXPECT(digits >= 1 && digits <= 17);
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*g", digits, v);
  return buf;
}

std::string format_prob(double p) {
  char buf[64];
  if (p != 0.0 && std::fabs(p) < 1e-2) {
    std::snprintf(buf, sizeof buf, "%.1e", p);
  } else {
    std::snprintf(buf, sizeof buf, "%.4f", p);
  }
  return buf;
}

std::string format_pct(double fraction) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.1f%%", fraction * 100.0);
  return buf;
}

double parse_double(std::string_view s) {
  s = trim(s);
  CNY_EXPECT_MSG(!s.empty(), "empty string is not a number");
  // std::from_chars for double is not universally available; use strtod on a
  // bounded copy.
  std::string copy(s);
  char* end = nullptr;
  const double v = std::strtod(copy.c_str(), &end);
  CNY_EXPECT_MSG(end == copy.c_str() + copy.size(),
                 "trailing garbage in number: " + copy);
  return v;
}

long parse_long(std::string_view s) {
  s = trim(s);
  CNY_EXPECT_MSG(!s.empty(), "empty string is not an integer");
  long v = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  CNY_EXPECT_MSG(ec == std::errc{} && ptr == s.data() + s.size(),
                 "bad integer: " + std::string(s));
  return v;
}

}  // namespace cny::util
