#include "netlist/design_io.h"

#include <fstream>
#include <ostream>
#include <sstream>

#include "util/contracts.h"
#include "util/strings.h"

namespace cny::netlist {

using cny::util::parse_long;
using cny::util::split_ws;

void write_design(const Design& design, std::ostream& os) {
  os << "design \"" << design.name() << "\" library \""
     << design.library().name() << "\"\n";
  for (const auto& ic : design.instances()) {
    os << "instance " << ic.cell_name << ' ' << ic.count << "\n";
  }
  os << "enddesign\n";
}

std::string to_design_text(const Design& design) {
  std::ostringstream os;
  write_design(design, os);
  return os.str();
}

namespace {

std::string unquote(std::string s) {
  if (s.size() >= 2 && s.front() == '"' && s.back() == '"') {
    return s.substr(1, s.size() - 2);
  }
  return s;
}

}  // namespace

Design read_design(std::istream& is, const celllib::Library& lib) {
  std::string line;
  int line_no = 0;
  bool have_header = false;
  Design design("", &lib);

  const auto fail = [&](const std::string& msg) {
    CNY_EXPECT_MSG(false,
                   "design line " + std::to_string(line_no) + ": " + msg);
  };

  while (std::getline(is, line)) {
    ++line_no;
    const auto tokens = split_ws(line);
    if (tokens.empty() || tokens[0][0] == '#') continue;
    const std::string& kw = tokens[0];
    if (kw == "design") {
      if (have_header) fail("duplicate design header");
      if (tokens.size() != 4 || tokens[2] != "library") {
        fail("bad design header");
      }
      const std::string lib_name = unquote(tokens[3]);
      if (lib_name != lib.name()) {
        fail("design targets library '" + lib_name + "' but '" + lib.name() +
             "' was supplied");
      }
      design = Design(unquote(tokens[1]), &lib);
      have_header = true;
    } else if (kw == "instance") {
      if (!have_header) fail("instance before design header");
      if (tokens.size() != 3) fail("bad instance line");
      const long count = parse_long(tokens[2]);
      if (count < 0) fail("negative instance count");
      if (lib.find(tokens[1]) == nullptr) {
        fail("unknown cell: " + tokens[1]);
      }
      design.add_instances(tokens[1], static_cast<std::uint64_t>(count));
    } else if (kw == "enddesign") {
      if (!have_header) fail("enddesign before design header");
      return design;
    } else {
      fail("unknown keyword: " + kw);
    }
  }
  fail("missing enddesign");
  return design;  // unreachable
}

Design from_design_text(const std::string& text, const celllib::Library& lib) {
  std::istringstream is(text);
  return read_design(is, lib);
}

void save_design(const Design& design, const std::string& path) {
  std::ofstream os(path);
  CNY_EXPECT_MSG(static_cast<bool>(os), "cannot open for write: " + path);
  write_design(design, os);
  CNY_EXPECT_MSG(static_cast<bool>(os), "write failed: " + path);
}

Design load_design(const std::string& path, const celllib::Library& lib) {
  std::ifstream is(path);
  CNY_EXPECT_MSG(static_cast<bool>(is), "cannot open for read: " + path);
  return read_design(is, lib);
}

}  // namespace cny::netlist
