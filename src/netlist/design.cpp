#include "netlist/design.h"

#include <algorithm>
#include <map>

#include "util/contracts.h"

namespace cny::netlist {

Design::Design(std::string name, const celllib::Library* library)
    : name_(std::move(name)), library_(library) {
  CNY_EXPECT(library != nullptr);
}

void Design::add_instances(const std::string& cell_name, std::uint64_t count) {
  CNY_EXPECT_MSG(library_->find(cell_name) != nullptr,
                 "unknown cell: " + cell_name);
  if (count == 0) return;
  for (auto& ic : instances_) {
    if (ic.cell_name == cell_name) {
      ic.count += count;
      return;
    }
  }
  instances_.push_back(InstanceCount{cell_name, count});
}

std::uint64_t Design::n_instances() const {
  std::uint64_t n = 0;
  for (const auto& ic : instances_) n += ic.count;
  return n;
}

std::uint64_t Design::n_transistors() const {
  std::uint64_t n = 0;
  for (const auto& ic : instances_) {
    const auto* cell = library_->find(ic.cell_name);
    n += ic.count * cell->transistors.size();
  }
  return n;
}

double Design::total_width() const {
  double w = 0.0;
  for (const auto& ic : instances_) {
    const auto* cell = library_->find(ic.cell_name);
    double cw = 0.0;
    for (const auto& t : cell->transistors) cw += t.width;
    w += cw * static_cast<double>(ic.count);
  }
  return w;
}

std::uint64_t Design::count_transistors_below(double threshold) const {
  std::uint64_t n = 0;
  for (const auto& ic : instances_) {
    const auto* cell = library_->find(ic.cell_name);
    std::uint64_t per_cell = 0;
    for (const auto& t : cell->transistors) {
      if (t.width <= threshold) ++per_cell;
    }
    n += per_cell * ic.count;
  }
  return n;
}

double Design::total_width_upsized(double w_min) const {
  double w = 0.0;
  for (const auto& ic : instances_) {
    const auto* cell = library_->find(ic.cell_name);
    double cw = 0.0;
    for (const auto& t : cell->transistors) cw += std::max(t.width, w_min);
    w += cw * static_cast<double>(ic.count);
  }
  return w;
}

stats::Histogram Design::width_histogram(double bin_nm, double max_nm) const {
  CNY_EXPECT(bin_nm > 0.0 && max_nm > bin_nm);
  stats::Histogram h(0.0, max_nm, static_cast<std::size_t>(max_nm / bin_nm));
  for (const auto& ic : instances_) {
    const auto* cell = library_->find(ic.cell_name);
    for (const auto& t : cell->transistors) {
      h.add(t.width, static_cast<double>(ic.count));
    }
  }
  return h;
}

std::vector<std::pair<double, std::uint64_t>> Design::width_spectrum() const {
  std::map<double, std::uint64_t> acc;
  for (const auto& ic : instances_) {
    const auto* cell = library_->find(ic.cell_name);
    for (const auto& t : cell->transistors) acc[t.width] += ic.count;
  }
  return {acc.begin(), acc.end()};
}

Design Design::retarget(const celllib::Library* other) const {
  CNY_EXPECT(other != nullptr);
  Design out(name_, other);
  for (const auto& ic : instances_) out.add_instances(ic.cell_name, ic.count);
  return out;
}

}  // namespace cny::netlist
