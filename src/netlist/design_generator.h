// Synthetic design generation: produces an OpenRISC-class cell-instance mix
// over a library, standing in for "OpenRISC synthesized with Design
// Compiler" (substitution table, DESIGN.md).
//
// The mix model follows the well-known composition of synthesized control-
// dominated RTL: inverters/buffers ~20 %, 2-input NAND/NOR ~35 %, wider and
// complex gates ~25 %, arithmetic ~5 %, flip-flops ~15 %, with drive
// strengths heavily skewed to X1/X2. The knobs are calibrated so the
// resulting transistor width histogram reproduces Fig 2.2a (the two
// left-most 80 nm bins hold ~33 % of transistors — the paper's M_min).
#pragma once

#include <cstdint>

#include "celllib/library.h"
#include "netlist/design.h"

namespace cny::netlist {

struct MixParams {
  // Calibrated so the nangate45_like width histogram reproduces Fig 2.2a:
  // the two left-most 80 nm bins hold ~33 % of all transistors.
  double frac_invbuf = 0.20;    ///< INV/BUF/CLKBUF share of instances
  double frac_nand_nor = 0.44;  ///< 2-4 input NAND/NOR/AND/OR
  double frac_complex = 0.21;   ///< AOI/OAI/AO/OA/XOR/MUX
  double frac_arith = 0.05;     ///< FA/HA and friends
  double frac_seq = 0.10;       ///< flip-flops, latches, clock gates
  /// Relative weight of a family's k-th available drive: drive_decay^k.
  double drive_decay = 0.65;
  /// Fraction of buffer instances forced to the largest drives (clock trees
  /// and high-fan-out nets) — populates the histogram's wide tail.
  double frac_big_buffers = 0.06;
};

/// Deterministically expands the mix into instance counts over `lib`.
/// `n_instances` is the target cell count (exact up to rounding).
[[nodiscard]] Design generate_design(const std::string& name,
                                     const celllib::Library& lib,
                                     std::uint64_t n_instances,
                                     const MixParams& mix = {});

/// The paper's case study: an OpenRISC-core-like design (cache excluded)
/// sized so that the M = 100e6-transistor chip-scale analysis of Sec 2.2 can
/// scale it up (the width *distribution* is what matters).
[[nodiscard]] Design make_openrisc_like(const celllib::Library& lib);

}  // namespace cny::netlist
