// Design save/load: a line-oriented text format for instance-count designs,
// the netlist companion to celllib's liberty-lite.
//
//   design "openrisc_like" library "nangate45_like"
//   instance INV_X1 6480
//   instance NAND2_X1 10007
//   ...
//   enddesign
#pragma once

#include <iosfwd>
#include <string>

#include "netlist/design.h"

namespace cny::netlist {

void write_design(const Design& design, std::ostream& os);
[[nodiscard]] std::string to_design_text(const Design& design);

/// Parses a design against `lib` (the file's library name must match
/// lib.name(); every instance cell must exist). Throws ContractViolation
/// with a line number on malformed input.
[[nodiscard]] Design read_design(std::istream& is,
                                 const celllib::Library& lib);
[[nodiscard]] Design from_design_text(const std::string& text,
                                      const celllib::Library& lib);

void save_design(const Design& design, const std::string& path);
[[nodiscard]] Design load_design(const std::string& path,
                                 const celllib::Library& lib);

}  // namespace cny::netlist
