#include "netlist/design_generator.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <vector>

#include "util/contracts.h"

namespace cny::netlist {

namespace {

enum class Bucket { InvBuf, NandNor, Complex, Arith, Seq };

Bucket bucket_of(const celllib::Cell& c) {
  using celllib::CellKind;
  if (c.kind == CellKind::Sequential) return Bucket::Seq;
  if (c.kind == CellKind::Buffer) return Bucket::InvBuf;
  const std::string& f = c.family;
  const auto has = [&](const char* prefix) {
    return f.rfind(prefix, 0) == 0;
  };
  if (has("NAND") || has("NOR") || has("AND") || has("OR")) {
    return Bucket::NandNor;
  }
  if (has("FA") || has("HA") || has("DEC")) return Bucket::Arith;
  return Bucket::Complex;
}

}  // namespace

Design generate_design(const std::string& name, const celllib::Library& lib,
                       std::uint64_t n_instances, const MixParams& mix) {
  CNY_EXPECT(n_instances > 0);
  const double frac_sum = mix.frac_invbuf + mix.frac_nand_nor +
                          mix.frac_complex + mix.frac_arith + mix.frac_seq;
  CNY_EXPECT_MSG(std::fabs(frac_sum - 1.0) < 1e-9,
                 "mix fractions must sum to 1");

  // Group cells by bucket/family; weight within a family by drive decay.
  struct Entry {
    const celllib::Cell* cell;
    double weight;
  };
  std::map<Bucket, std::vector<Entry>> groups;
  for (const auto& c : lib.cells()) {
    // Drive rank within its family (1st, 2nd, ... available drive).
    int rank = 0;
    for (const auto& other : lib.cells()) {
      if (other.family == c.family && other.drive < c.drive) ++rank;
    }
    double w = std::pow(mix.drive_decay, rank);
    const Bucket b = bucket_of(c);
    if (b == Bucket::InvBuf && c.drive >= 8) {
      // Big buffers get a dedicated share (clock trees / fan-out repair)
      // instead of the exponential decay that would zero them out.
      w = mix.frac_big_buffers;
    }
    groups[b].push_back(Entry{&c, w});
  }

  const std::map<Bucket, double> bucket_frac = {
      {Bucket::InvBuf, mix.frac_invbuf},
      {Bucket::NandNor, mix.frac_nand_nor},
      {Bucket::Complex, mix.frac_complex},
      {Bucket::Arith, mix.frac_arith},
      {Bucket::Seq, mix.frac_seq},
  };

  Design design(name, &lib);
  for (const auto& [bucket, entries] : groups) {
    const auto it = bucket_frac.find(bucket);
    const double share = it->second;
    if (share <= 0.0 || entries.empty()) continue;
    double total_w = 0.0;
    for (const auto& e : entries) total_w += e.weight;
    CNY_ENSURE(total_w > 0.0);
    for (const auto& e : entries) {
      const double frac = share * e.weight / total_w;
      const auto count = static_cast<std::uint64_t>(
          std::llround(frac * static_cast<double>(n_instances)));
      if (count > 0) design.add_instances(e.cell->name, count);
    }
  }
  CNY_ENSURE(design.n_instances() > 0);
  return design;
}

Design make_openrisc_like(const celllib::Library& lib) {
  // ~50k cell instances: the scale of an OpenRISC core without caches.
  return generate_design("openrisc_like", lib, 50000, MixParams{});
}

}  // namespace cny::netlist
