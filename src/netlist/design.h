// Gate-level design model: a multiset of cell instances over a library.
//
// The paper's circuit-level analysis consumes only aggregate design data —
// the transistor width distribution {W_i} (Fig 2.2a), the total transistor
// count M, and the spatial density of small-width CNFETs along rows — so the
// design model stores instance counts per cell rather than a full netlist
// graph (hookup is irrelevant to CNT-count yield).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "celllib/library.h"
#include "stats/histogram.h"

namespace cny::netlist {

struct InstanceCount {
  std::string cell_name;
  std::uint64_t count = 0;
};

class Design {
 public:
  Design(std::string name, const celllib::Library* library);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const celllib::Library& library() const { return *library_; }
  [[nodiscard]] const std::vector<InstanceCount>& instances() const {
    return instances_;
  }

  /// Adds `count` instances of `cell_name` (must exist in the library).
  void add_instances(const std::string& cell_name, std::uint64_t count);

  /// Total cell instances.
  [[nodiscard]] std::uint64_t n_instances() const;

  /// Total transistors M.
  [[nodiscard]] std::uint64_t n_transistors() const;

  /// Sum of all transistor widths (the gate-capacitance proxy of Sec 2.2).
  [[nodiscard]] double total_width() const;

  /// Number of transistors with width <= threshold.
  [[nodiscard]] std::uint64_t count_transistors_below(double threshold) const;

  /// Sum over transistors of max(W_i, w_min) — the upsized total width.
  [[nodiscard]] double total_width_upsized(double w_min) const;

  /// Per-width histogram of all transistors (Fig 2.2a), weighted by
  /// instance counts. Bins of `bin_nm` covering [0, max_nm).
  [[nodiscard]] stats::Histogram width_histogram(double bin_nm,
                                                 double max_nm) const;

  /// Distinct (width, multiplicity) pairs sorted by width — the compact
  /// form every yield computation iterates over.
  [[nodiscard]] std::vector<std::pair<double, std::uint64_t>> width_spectrum()
      const;

  /// Returns a copy of this design re-pointed at another library that
  /// contains the same cell names (e.g. a scaled or transformed library).
  [[nodiscard]] Design retarget(const celllib::Library* other) const;

 private:
  std::string name_;
  const celllib::Library* library_;
  std::vector<InstanceCount> instances_;
};

}  // namespace cny::netlist
