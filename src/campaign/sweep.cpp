#include "campaign/sweep.h"

#include <cctype>
#include <cmath>
#include <stdexcept>

#include "cnt/removal_tradeoff.h"
#include "util/strings.h"

namespace cny::campaign {

namespace {

[[noreturn]] void fail(const std::string& what) {
  throw std::invalid_argument(what);
}

/// util::parse_double throws ContractViolation with a generic message;
/// rewrap so sweep errors consistently name the expression token.
double number(std::string_view token, std::string_view expr) {
  try {
    return util::parse_double(token);
  } catch (const std::exception&) {
    fail("sweep '" + std::string(expr) + "': '" + std::string(token) +
         "' is not a number");
  }
}

/// The lin/log/probit point count: a small positive integer, >= 2 so the
/// endpoints are always distinct samples.
std::size_t point_count(std::string_view token, std::string_view expr) {
  const double n = number(token, expr);
  if (n != std::floor(n) || n < 2.0 ||
      n > static_cast<double>(kMaxSweepValues)) {
    fail("sweep '" + std::string(expr) + "': point count '" +
         std::string(token) + "' must be an integer in [2, " +
         std::to_string(kMaxSweepValues) + "]");
  }
  return static_cast<std::size_t>(n);
}

std::vector<double> expand_range(double start, double step, double stop,
                                 std::string_view expr) {
  if (step == 0.0) {
    fail("sweep '" + std::string(expr) + "': step must be non-zero");
  }
  // Index-based span count: the tiny relative tolerance keeps an intended
  // endpoint (0.8:0.05:0.95) inside the sweep when (stop-start)/step lands
  // at 2.9999999999999996 instead of 3, without ever admitting a value a
  // whole step past stop.
  const double span = (stop - start) / step;
  if (span < 0.0) {
    fail("sweep '" + std::string(expr) +
         "': step moves away from stop (reversed bounds?)");
  }
  if (span > static_cast<double>(kMaxSweepValues)) {
    fail("sweep '" + std::string(expr) + "': range expands past " +
         std::to_string(kMaxSweepValues) + " values");
  }
  const auto count =
      static_cast<std::size_t>(std::floor(span + 1e-9 * (1.0 + span))) + 1;
  std::vector<double> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    // Index-based stepping, never accumulation: v_i is the same bits no
    // matter how the sweep is chunked or resumed.
    out.push_back(start + static_cast<double>(i) * step);
  }
  return out;
}

std::vector<double> expand_spaced(std::string_view kind,
                                  const std::vector<std::string>& tokens,
                                  std::string_view expr) {
  if (tokens.size() != 4) {
    fail("sweep '" + std::string(expr) + "': " + std::string(kind) +
         " form is " + std::string(kind) + ":start:stop:n");
  }
  const double lo = number(tokens[1], expr);
  const double hi = number(tokens[2], expr);
  const std::size_t n = point_count(tokens[3], expr);
  std::vector<double> out;
  out.reserve(n);
  if (kind == "lin") {
    for (std::size_t i = 0; i < n; ++i) {
      out.push_back(lo + (hi - lo) * static_cast<double>(i) /
                             static_cast<double>(n - 1));
    }
  } else if (kind == "log") {
    if (lo <= 0.0 || hi <= 0.0) {
      fail("sweep '" + std::string(expr) +
           "': log bounds must be positive");
    }
    for (std::size_t i = 0; i < n; ++i) {
      out.push_back(lo * std::pow(hi / lo, static_cast<double>(i) /
                                               static_cast<double>(n - 1)));
    }
  } else {  // probit
    if (!(lo > 0.0 && lo < 1.0 && hi > 0.0 && hi < 1.0)) {
      fail("sweep '" + std::string(expr) +
           "': probit bounds must be probabilities in (0, 1)");
    }
    // Mirrors cnt::RemovalTradeoff::frontier bit for bit (same quantile/CDF
    // and the same evaluation order), so a campaign probit axis reproduces
    // the frontier's p_Rm ladder exactly.
    const double t_lo = cnt::normal_quantile(lo);
    const double t_hi = cnt::normal_quantile(hi);
    for (std::size_t i = 0; i < n; ++i) {
      const double t = t_lo + (t_hi - t_lo) * static_cast<int>(i) /
                                  (static_cast<int>(n) - 1);
      out.push_back(cnt::normal_cdf(t));
    }
  }
  return out;
}

}  // namespace

std::vector<double> expand_sweep(std::string_view expr) {
  const std::string_view trimmed = util::trim(expr);
  if (trimmed.empty()) fail("sweep expression is empty");

  if (trimmed.find(':') != std::string_view::npos) {
    const auto tokens = util::split(trimmed, ':');
    for (const auto& token : tokens) {
      if (token.empty()) {
        fail("sweep '" + std::string(trimmed) + "': empty ':' token");
      }
    }
    const std::string kind = util::to_lower(tokens.front());
    if (kind == "lin" || kind == "log" || kind == "probit") {
      return expand_spaced(kind, tokens, trimmed);
    }
    if (tokens.size() != 3) {
      fail("sweep '" + std::string(trimmed) +
           "': range form is start:step:stop (or lin/log/probit:start:stop:n)");
    }
    return expand_range(number(tokens[0], trimmed), number(tokens[1], trimmed),
                        number(tokens[2], trimmed), trimmed);
  }

  std::vector<double> out;
  for (const auto& token : util::split(trimmed, ',')) {
    if (token.empty()) {
      fail("sweep '" + std::string(trimmed) + "': empty list entry");
    }
    out.push_back(number(token, trimmed));
  }
  return out;
}

// --- derived-parameter expressions -----------------------------------------

struct Expr::Node {
  enum class Kind { Number, Ref, Neg, Add, Sub, Mul, Div, Call };
  Kind kind = Kind::Number;
  double value = 0.0;                   ///< Number
  std::string name;                     ///< Ref / Call
  std::vector<std::shared_ptr<const Node>> args;
};

namespace {

using Node = Expr::Node;
using NodePtr = std::shared_ptr<const Node>;

struct Builtin {
  const char* name;
  int arity;
  double (*fn1)(double);
  double (*fn2)(double, double);
};

double fn_min(double a, double b) { return std::min(a, b); }
double fn_max(double a, double b) { return std::max(a, b); }
double fn_round(double a) { return std::round(a); }

constexpr Builtin kBuiltins[] = {
    {"sqrt", 1, [](double a) { return std::sqrt(a); }, nullptr},
    {"exp", 1, [](double a) { return std::exp(a); }, nullptr},
    {"log", 1, [](double a) { return std::log(a); }, nullptr},
    {"log10", 1, [](double a) { return std::log10(a); }, nullptr},
    {"abs", 1, [](double a) { return std::fabs(a); }, nullptr},
    {"floor", 1, [](double a) { return std::floor(a); }, nullptr},
    {"round", 1, fn_round, nullptr},
    {"phi", 1, cnt::normal_cdf, nullptr},
    {"probit", 1, cnt::normal_quantile, nullptr},
    {"pow", 2, nullptr, [](double a, double b) { return std::pow(a, b); }},
    {"min", 2, nullptr, fn_min},
    {"max", 2, nullptr, fn_max},
};

const Builtin* find_builtin(std::string_view name) {
  for (const Builtin& b : kBuiltins) {
    if (name == b.name) return &b;
  }
  return nullptr;
}

/// Recursive-descent parser over the expression text. Precedence:
/// unary minus > * / > + -.
class ExprParser {
 public:
  explicit ExprParser(std::string_view text) : text_(text) {}

  NodePtr parse() {
    NodePtr root = parse_sum();
    skip_ws();
    if (pos_ != text_.size()) fail("unexpected trailing input");
    return root;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::invalid_argument("expression '" + std::string(text_) +
                                "' at position " + std::to_string(pos_) +
                                ": " + what);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool consume(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  NodePtr parse_sum() {
    NodePtr left = parse_product();
    for (;;) {
      if (consume('+')) {
        left = binary(Node::Kind::Add, left, parse_product());
      } else if (consume('-')) {
        left = binary(Node::Kind::Sub, left, parse_product());
      } else {
        return left;
      }
    }
  }

  NodePtr parse_product() {
    NodePtr left = parse_unary();
    for (;;) {
      if (consume('*')) {
        left = binary(Node::Kind::Mul, left, parse_unary());
      } else if (consume('/')) {
        left = binary(Node::Kind::Div, left, parse_unary());
      } else {
        return left;
      }
    }
  }

  NodePtr parse_unary() {
    if (consume('-')) {
      auto node = std::make_shared<Node>();
      node->kind = Node::Kind::Neg;
      node->args.push_back(parse_unary());
      return node;
    }
    if (consume('+')) return parse_unary();
    return parse_primary();
  }

  NodePtr parse_primary() {
    skip_ws();
    if (pos_ >= text_.size()) fail("expected a value");
    const char c = text_[pos_];
    if (c == '(') {
      ++pos_;
      NodePtr inner = parse_sum();
      if (!consume(')')) fail("missing ')'");
      return inner;
    }
    if (c == '$') {
      ++pos_;
      const std::string name = identifier("axis reference");
      auto node = std::make_shared<Node>();
      node->kind = Node::Kind::Ref;
      node->name = name;
      return node;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) || c == '.') {
      return parse_number();
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      const std::string name = identifier("function name");
      const Builtin* builtin = find_builtin(name);
      if (builtin == nullptr) {
        std::string known;
        for (const Builtin& b : kBuiltins) {
          known += known.empty() ? b.name : std::string(", ") + b.name;
        }
        fail("unknown function '" + name + "' (known: " + known + ")");
      }
      if (!consume('(')) fail("'" + name + "' must be called as a function");
      auto node = std::make_shared<Node>();
      node->kind = Node::Kind::Call;
      node->name = name;
      node->args.push_back(parse_sum());
      while (consume(',')) node->args.push_back(parse_sum());
      if (!consume(')')) fail("missing ')' after " + name + "(...)");
      if (static_cast<int>(node->args.size()) != builtin->arity) {
        fail(name + "() takes " + std::to_string(builtin->arity) +
             " argument(s), got " + std::to_string(node->args.size()));
      }
      return node;
    }
    fail(std::string("unexpected character '") + c + "'");
  }

  NodePtr parse_number() {
    const std::size_t start = pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c)) || c == '.' ||
          c == 'e' || c == 'E') {
        ++pos_;
      } else if ((c == '+' || c == '-') && pos_ > start &&
                 (text_[pos_ - 1] == 'e' || text_[pos_ - 1] == 'E')) {
        ++pos_;  // exponent sign
      } else {
        break;
      }
    }
    double value = 0.0;
    try {
      value = util::parse_double(text_.substr(start, pos_ - start));
    } catch (const std::exception&) {
      fail("'" + std::string(text_.substr(start, pos_ - start)) +
           "' is not a number");
    }
    auto node = std::make_shared<Node>();
    node->kind = Node::Kind::Number;
    node->value = value;
    return node;
  }

  std::string identifier(const char* what) {
    skip_ws();
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '_')) {
      ++pos_;
    }
    if (pos_ == start) fail(std::string("expected ") + what);
    return std::string(text_.substr(start, pos_ - start));
  }

  static NodePtr binary(Node::Kind kind, NodePtr left, NodePtr right) {
    auto node = std::make_shared<Node>();
    node->kind = kind;
    node->args.push_back(std::move(left));
    node->args.push_back(std::move(right));
    return node;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

void collect_refs(const NodePtr& node, std::vector<std::string>& refs) {
  if (node->kind == Node::Kind::Ref) {
    for (const std::string& seen : refs) {
      if (seen == node->name) return;
    }
    refs.push_back(node->name);
    return;
  }
  for (const NodePtr& arg : node->args) collect_refs(arg, refs);
}

double eval_node(const Node& node,
                 const std::function<double(const std::string&)>& lookup) {
  switch (node.kind) {
    case Node::Kind::Number: return node.value;
    case Node::Kind::Ref: return lookup(node.name);
    case Node::Kind::Neg: return -eval_node(*node.args[0], lookup);
    case Node::Kind::Add:
      return eval_node(*node.args[0], lookup) +
             eval_node(*node.args[1], lookup);
    case Node::Kind::Sub:
      return eval_node(*node.args[0], lookup) -
             eval_node(*node.args[1], lookup);
    case Node::Kind::Mul:
      return eval_node(*node.args[0], lookup) *
             eval_node(*node.args[1], lookup);
    case Node::Kind::Div:
      return eval_node(*node.args[0], lookup) /
             eval_node(*node.args[1], lookup);
    case Node::Kind::Call: break;
  }
  const Builtin* builtin = find_builtin(node.name);
  if (builtin->arity == 1) {
    return builtin->fn1(eval_node(*node.args[0], lookup));
  }
  return builtin->fn2(eval_node(*node.args[0], lookup),
                      eval_node(*node.args[1], lookup));
}

}  // namespace

Expr Expr::parse(std::string_view text) {
  Expr out;
  out.text_ = std::string(util::trim(text));
  if (out.text_.empty()) {
    throw std::invalid_argument("derived-parameter expression is empty");
  }
  out.root_ = ExprParser(out.text_).parse();
  collect_refs(out.root_, out.refs_);
  return out;
}

double Expr::eval(
    const std::function<double(const std::string&)>& lookup) const {
  return eval_node(*root_, lookup);
}

}  // namespace cny::campaign
