// CampaignSpec — a parameter-sweep study compiled into a deterministic,
// stably-ordered stream of service::FlowRequests (OMNeT++'s ini study/run
// machinery is the exemplar: a tiny spec expands into thousands of runs,
// every run individually addressable).
//
// A spec is three parts over one shared parameter namespace (param_paths):
//
//   base      scalar overrides applied to a default FlowRequest
//             ("library" is the only non-numeric key)
//   axes      named sweep axes (campaign/sweep.h expressions); the compiled
//             stream is their cartesian product in declaration order,
//             LAST axis fastest (row-major)
//   derived   parameters computed per point from axis/derived values via
//             $name references; evaluated in dependency order, cycles
//             rejected at compile time
//
// Canonical JSON form (campaign_from_json / to_json — parse→dump is
// byte-stable like the rest of the service JSON):
//
//   {"name":"frontier",
//    "base":{"library":"nangate45","mc_samples":300,"seed":7,
//            "scenario.removal.selectivity":6},
//    "axes":[{"name":"prm","param":"scenario.removal.p_rm_target",
//             "values":"probit:0.999:0.9999999:5"}],
//    "derived":[{"param":"yield","expr":"min(0.9, $prm)"}]}
//
// compile() turns a spec into CompiledPoints: index (campaign order), the
// fully-derived FlowRequest (validated with the same service::validate the
// wire path runs), and the request key — the FNV-1a-64 hash of the
// request's canonical JSON, printed as 16 hex digits. The key is what the
// result store (campaign/store.h) is addressed by, so its stability is a
// contract: if canonical request JSON ever drifts, the pinned golden hash
// in tests/test_campaign.cpp fails loudly.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "service/protocol.h"

namespace cny::campaign {

struct Axis {
  /// $reference name; defaults to the last '.'-segment of `param`.
  std::string name;
  /// Parameter path (see param_paths()), e.g. "yield" or
  /// "scenario.removal.p_rm_target".
  std::string param;
  /// Sweep expression (campaign/sweep.h).
  std::string values;
};

struct DerivedParam {
  /// $reference name other derived parameters may use; defaults to the
  /// last '.'-segment of `param`.
  std::string name;
  std::string param;
  /// Arithmetic expression over $axis / $derived references.
  std::string expr;
};

struct CampaignSpec {
  std::string name = "campaign";
  /// The request every point starts from; axes and derived parameters
  /// overwrite fields on a copy.
  service::FlowRequest base;
  std::vector<Axis> axes;
  std::vector<DerivedParam> derived;
};

/// One compiled campaign point.
struct CompiledPoint {
  std::size_t index = 0;               ///< position in campaign order
  std::vector<double> axis_values;     ///< one per axis, declaration order
  service::FlowRequest request;
  std::string key;                     ///< request_key(request)
};

/// Every settable numeric parameter path, in canonical order. Setting a
/// "scenario.*" path enables that mechanism with defaults first.
[[nodiscard]] const std::vector<std::string>& param_paths();

/// Writes `value` at `path` on `request`. Integer-valued paths (instances,
/// mc_samples, seed, streams, scenario.length.devices) require an integral
/// value. Throws std::invalid_argument naming the path (and listing the
/// known paths for an unknown one).
void set_param(service::FlowRequest& request, std::string_view path,
               double value);

/// Reads the value at `path` (mechanism defaults for a disabled
/// "scenario.*" path). Throws std::invalid_argument on an unknown path.
[[nodiscard]] double get_param(const service::FlowRequest& request,
                               std::string_view path);

/// The canonical JSON bytes of a request — exactly what crosses the
/// service wire, and the preimage of request_key().
[[nodiscard]] std::string canonical_request(
    const service::FlowRequest& request);

/// FNV-1a 64-bit over `bytes`.
[[nodiscard]] std::uint64_t fnv1a64(std::string_view bytes);

/// The store key of a request: fnv1a64(canonical_request(request)) as 16
/// lowercase hex digits.
[[nodiscard]] std::string request_key(const service::FlowRequest& request);

// JSON codec. to_json output is canonical (axes/derived carry their
// explicit names); campaign_from_json throws std::invalid_argument naming
// the offending field.
[[nodiscard]] service::Json to_json(const CampaignSpec& spec);
[[nodiscard]] CampaignSpec campaign_from_json(const service::Json& v);
/// Reads and parses a spec file (JSON); throws on I/O or parse errors.
[[nodiscard]] CampaignSpec load_campaign(const std::string& path);

/// Expands every axis, resolves derived-parameter dependencies
/// (topological order; a cycle or unknown $reference is rejected with an
/// actionable message), walks the cartesian product row-major (last axis
/// fastest), and validates every request with service::validate. The
/// result is deterministic and stably ordered: same spec, same stream,
/// same keys — the foundation the resumable store builds on.
[[nodiscard]] std::vector<CompiledPoint> compile(const CampaignSpec& spec);

}  // namespace cny::campaign
