#include "campaign/runner.h"

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <future>
#include <map>
#include <memory>
#include <numeric>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>

#include "exec/thread_pool.h"
#include "netlist/design.h"
#include "obs/metrics.h"
#include "obs/resource.h"
#include "service/server.h"
#include "service/session_cache.h"
#include "yield/flow.h"

namespace cny::campaign {

namespace {

/// One pending point's outcome, chunk-local until the in-order append.
struct Outcome {
  std::string result_json;
  std::string error_code;
  std::string error_message;
};

/// Progress sidecar writer: one self-contained JSON line per finished
/// chunk, flushed immediately so `tail -f` (or a dashboard) sees each
/// checkpoint as it lands. The sidecar is write-only telemetry — resume
/// reads the store, never this file — so its presence cannot perturb
/// campaign results.
class ProgressSidecar {
 public:
  explicit ProgressSidecar(const std::string& path) {
    file_ = std::fopen(path.c_str(), "w");
    if (file_ == nullptr) {
      throw std::runtime_error("cannot open progress file '" + path + "'");
    }
  }
  ~ProgressSidecar() {
    if (file_ != nullptr) std::fclose(file_);
  }
  ProgressSidecar(const ProgressSidecar&) = delete;
  ProgressSidecar& operator=(const ProgressSidecar&) = delete;

  void chunk_line(std::size_t chunk, std::size_t done, std::size_t pending,
                  const CampaignStats& stats, std::uint64_t elapsed_ms,
                  const obs::ResourceUsage& usage) {
    // ETA extrapolates this run's per-point rate over what is left; crude
    // but monotone inputs make it stable enough for a progress line.
    const std::uint64_t eta_ms =
        done == 0 ? 0
                  : static_cast<std::uint64_t>(
                        static_cast<double>(elapsed_ms) *
                        static_cast<double>(pending - done) /
                        static_cast<double>(done));
    // rss_kb / vm_hwm_kb come last so existing line consumers (which match
    // on the leading fields) keep working; both are 0 when /proc was
    // unreadable.
    std::fprintf(
        file_,
        "{\"chunk\":%zu,\"done\":%zu,\"pending\":%zu,\"evaluated\":%zu,"
        "\"failed\":%zu,\"skipped\":%zu,\"retry_rounds\":%llu,"
        "\"sessions_built\":%llu,\"elapsed_ms\":%llu,\"eta_ms\":%llu,"
        "\"rss_kb\":%llu,\"vm_hwm_kb\":%llu}\n",
        chunk, done, pending, stats.evaluated, stats.failed, stats.skipped,
        static_cast<unsigned long long>(stats.retry_rounds),
        static_cast<unsigned long long>(stats.sessions_built),
        static_cast<unsigned long long>(elapsed_ms),
        static_cast<unsigned long long>(eta_ms),
        static_cast<unsigned long long>(usage.rss_kb),
        static_cast<unsigned long long>(usage.vm_hwm_kb));
    std::fflush(file_);
  }

 private:
  std::FILE* file_ = nullptr;
};

/// The server's evaluate_group without the sockets: one warm session per
/// group, job-indexed slots, per-job error capture.
void evaluate_group_direct(const std::vector<const CompiledPoint*>& chunk,
                           const std::vector<std::size_t>& indices,
                           std::vector<Outcome>& outcomes,
                           service::SessionCache& cache,
                           unsigned n_threads) {
  std::shared_ptr<const service::Session> session;
  try {
    session =
        cache.acquire(service::session_key(chunk[indices.front()]->request));
  } catch (const std::exception& e) {
    for (const std::size_t index : indices) {
      outcomes[index] = {"", "internal_error", e.what()};
    }
    return;
  }
  std::vector<std::shared_ptr<const netlist::Design>> designs(indices.size());
  std::vector<unsigned char> failed(indices.size(), 0);
  for (std::size_t i = 0; i < indices.size(); ++i) {
    try {
      designs[i] =
          session->design(chunk[indices[i]]->request.design_instances);
    } catch (const std::exception& e) {
      outcomes[indices[i]] = {"", "internal_error", e.what()};
      failed[i] = 1;
    }
  }
  exec::parallel_for(indices.size(), n_threads, [&](std::size_t i) {
    if (failed[i]) return;
    yield::FlowParams params = chunk[indices[i]]->request.params;
    params.n_threads = n_threads;
    try {
      const yield::FlowResult result = yield::run_flow(
          session->library(), *designs[i], session->model(), params);
      outcomes[indices[i]] = {service::to_json(result).dump(), "", ""};
    } catch (const std::exception& e) {
      // Same code the service wire path uses, so direct and via-service
      // stores stay byte-identical even on infeasible points.
      outcomes[indices[i]] = {"", "evaluation_failed", e.what()};
    }
  });
}

/// Classifies one response for the via-service path. A terminal outcome
/// fills `out` and returns true; a transient one (retry-safe: transient
/// error code, or a dropped/undecodable/corrupt response) fills `code` /
/// `message` and returns false — it must never reach the store.
bool classify_response(std::string bytes, Outcome& out, std::string& code,
                       std::string& message) {
  if (bytes.empty()) {
    // The fault harness models a dropped connection as an empty response.
    code = "transport";
    message = "connection dropped before the response arrived";
    return false;
  }
  service::Frame frame;
  try {
    frame = service::decode_frame(bytes);
  } catch (const service::ProtocolError& e) {
    code = "transport";
    message = std::string("undecodable response: ") + e.what();
    return false;
  }
  if (frame.type == service::FrameType::FlowResponse) {
    try {
      (void)service::flow_result_from_json(service::Json::parse(frame.payload));
    } catch (const std::exception& e) {
      code = "transport";
      message = std::string("corrupt response payload: ") + e.what();
      return false;
    }
    out = {std::move(frame.payload), "", ""};
    return true;
  }
  const service::ServiceErrorInfo error =
      service::error_from_payload(frame.payload);
  if (service::is_transient_error(error.code)) {
    code = error.code;
    message = error.message;
    return false;
  }
  out = {"", error.code, error.message};
  return true;
}

void evaluate_chunk_service(const std::vector<const CompiledPoint*>& chunk,
                            std::vector<Outcome>& outcomes,
                            service::YieldServer& server,
                            const service::RetryPolicy& retry,
                            std::uint64_t& retry_rounds, obs::Log* log) {
  // Round-based retry: every unresolved point is submitted together (so
  // the server still coalesces the chunk into batches), the transient
  // failures go again next round after one backoff sleep. Retrying is
  // safe — the service is deterministic and side-effect-free — and a
  // point retried through a FaultPlan with period >= 2 lands on a fresh
  // ordinal, so it is never re-faulted round after round.
  std::vector<std::size_t> open(chunk.size());
  std::iota(open.begin(), open.end(), std::size_t{0});
  const unsigned max_attempts = std::max(1u, retry.max_attempts);
  std::string last_code;
  std::string last_message;
  for (unsigned attempt = 1; !open.empty(); ++attempt) {
    std::vector<std::future<std::string>> futures;
    futures.reserve(open.size());
    for (const std::size_t index : open) {
      futures.push_back(
          server.submit(service::encode_flow_request(chunk[index]->request)));
    }
    std::vector<std::size_t> still_open;
    for (std::size_t k = 0; k < open.size(); ++k) {
      const std::size_t index = open[k];
      std::string code;
      std::string message;
      if (!classify_response(futures[k].get(), outcomes[index], code,
                             message)) {
        still_open.push_back(index);
        last_code = std::move(code);
        last_message = std::move(message);
      }
    }
    open = std::move(still_open);
    if (open.empty()) break;
    if (attempt >= max_attempts) {
      // Exhausted: fail the run rather than record a transient outcome —
      // the store must only ever hold results and *terminal* errors.
      obs::LogEvent(log, obs::LogLevel::Error, "campaign.retry_exhausted")
          .num("open", static_cast<std::int64_t>(open.size()))
          .num("attempts", static_cast<std::int64_t>(max_attempts))
          .str("last_code", last_code);
      throw service::ServiceError(
          last_code, std::to_string(open.size()) +
                         " point(s) still failing after " +
                         std::to_string(max_attempts) +
                         " attempt(s); last failure: " + last_message);
    }
    retry_rounds += 1;  // points remain open: the next round is a retry
    obs::LogEvent(log, obs::LogLevel::Warn, "campaign.retry_round")
        .num("attempt", static_cast<std::int64_t>(attempt))
        .num("open", static_cast<std::int64_t>(open.size()))
        .str("last_code", last_code);
    std::this_thread::sleep_for(
        std::chrono::milliseconds(retry.backoff_ms(attempt)));
  }
}

}  // namespace

CampaignStats run_campaign(const std::vector<CompiledPoint>& points,
                           ResultStore& store, const RunnerOptions& options) {
  CampaignStats stats;
  stats.total = points.size();

  // Resume: campaign order minus what the store already holds.
  std::vector<const CompiledPoint*> pending;
  for (const CompiledPoint& point : points) {
    if (store.contains(point.key)) {
      stats.skipped += 1;
    } else {
      pending.push_back(&point);
    }
  }

  const std::size_t chunk_size =
      options.checkpoint_every == 0 ? pending.size() : options.checkpoint_every;

  std::unique_ptr<service::SessionCache> cache;
  std::unique_ptr<service::YieldServer> server;
  if (!pending.empty()) {
    if (options.via_service) {
      service::ServerOptions server_options;
      server_options.n_threads = options.n_threads;
      server_options.cache_capacity = options.cache_capacity;
      server_options.interpolant_knots = options.interpolant_knots;
      server_options.fault_plan = options.fault_plan;
      server_options.trace_sink = options.trace_sink;
      server_options.log = options.log;
      // evaluate_chunk_service submits a whole chunk at once; the admission
      // queue must admit it, or an oversized chunk would deterministically
      // draw server_overloaded rejections and burn the retry budget meant
      // for injected faults.
      server_options.max_queue =
          std::max(server_options.max_queue, chunk_size);
      server = std::make_unique<service::YieldServer>(server_options);
      server->start();
    } else {
      cache = std::make_unique<service::SessionCache>(
          options.cache_capacity, options.interpolant_knots,
          options.n_threads);
      // Direct-path sessions report into the process-wide registry (the
      // server path has its own per-server one) and trace through the
      // campaign's sink.
      cache->attach_observability(&obs::Registry::global(),
                                  options.trace_sink.get(),
                                  options.log.get());
    }
  }

  std::unique_ptr<ProgressSidecar> sidecar;
  if (!options.progress_path.empty()) {
    sidecar = std::make_unique<ProgressSidecar>(options.progress_path);
  }

  obs::LogEvent(options.log.get(), obs::LogLevel::Info, "campaign.start")
      .num("total", static_cast<std::int64_t>(stats.total))
      .num("pending", static_cast<std::int64_t>(pending.size()))
      .num("chunk_size", static_cast<std::int64_t>(chunk_size))
      .num("via_service", options.via_service ? 1 : 0);

  const auto run_start = std::chrono::steady_clock::now();
  std::size_t chunk_index = 0;
  std::size_t done = 0;
  while (done < pending.size()) {
    if (options.interrupted && options.interrupted()) {
      stats.interrupted = true;
      obs::LogEvent(options.log.get(), obs::LogLevel::Warn,
                    "campaign.interrupted")
          .num("done", static_cast<std::int64_t>(done))
          .num("pending", static_cast<std::int64_t>(pending.size()));
      break;
    }
    const std::size_t n = std::min(chunk_size, pending.size() - done);
    const std::vector<const CompiledPoint*> chunk(
        pending.begin() + static_cast<std::ptrdiff_t>(done),
        pending.begin() + static_cast<std::ptrdiff_t>(done + n));
    std::vector<Outcome> outcomes(chunk.size());
    obs::Span chunk_span(options.trace_sink.get(), "campaign.chunk",
                         "campaign");
    chunk_span.arg("chunk", std::to_string(chunk_index));
    chunk_span.arg("points", std::to_string(n));
    if (server != nullptr) {
      evaluate_chunk_service(chunk, outcomes, *server, options.retry,
                             stats.retry_rounds, options.log.get());
    } else {
      // Group by session key so each warm corner is evaluated once per
      // chunk; std::map iteration keeps the group order deterministic.
      std::map<std::string, std::vector<std::size_t>> groups;
      for (std::size_t i = 0; i < chunk.size(); ++i) {
        groups[service::session_key(chunk[i]->request).canonical()]
            .push_back(i);
      }
      for (const auto& [canonical, indices] : groups) {
        evaluate_group_direct(chunk, indices, outcomes, *cache,
                              options.n_threads);
      }
    }
    // Checkpoint: append this chunk's records in campaign order. Only
    // after a record is on disk does it count as done.
    for (std::size_t i = 0; i < chunk.size(); ++i) {
      StoreRecord record;
      record.key = chunk[i]->key;
      record.index = chunk[i]->index;
      record.request_json = canonical_request(chunk[i]->request);
      record.result_json = std::move(outcomes[i].result_json);
      record.error_code = std::move(outcomes[i].error_code);
      record.error_message = std::move(outcomes[i].error_message);
      if (record.error_code.empty()) {
        stats.evaluated += 1;
      } else {
        stats.failed += 1;
      }
      store.append(std::move(record));
    }
    done += n;
    chunk_span.finish();
    chunk_index += 1;
    stats.sessions_built = server != nullptr ? server->stats().sessions_built
                                             : cache->sessions_built();
    // One /proc sample per checkpoint, shared by the sidecar line and the
    // checkpoint event — write-only telemetry either way.
    const obs::ResourceUsage usage = obs::sample_resources();
    if (sidecar != nullptr) {
      sidecar->chunk_line(
          chunk_index, done, pending.size(), stats,
          static_cast<std::uint64_t>(
              std::chrono::duration_cast<std::chrono::milliseconds>(
                  std::chrono::steady_clock::now() - run_start)
                  .count()),
          usage);
    }
    obs::LogEvent(options.log.get(), obs::LogLevel::Info,
                  "campaign.checkpoint")
        .num("chunk", static_cast<std::int64_t>(chunk_index))
        .num("done", static_cast<std::int64_t>(done))
        .num("pending", static_cast<std::int64_t>(pending.size()))
        .num("rss_kb", static_cast<std::int64_t>(usage.rss_kb));
    if (options.progress) options.progress(done, pending.size());
  }

  if (server != nullptr) {
    stats.sessions_built = server->stats().sessions_built;
    server->stop();
  } else if (cache != nullptr) {
    stats.sessions_built = cache->sessions_built();
  }
  obs::LogEvent(options.log.get(), obs::LogLevel::Info, "campaign.finish")
      .num("evaluated", static_cast<std::int64_t>(stats.evaluated))
      .num("failed", static_cast<std::int64_t>(stats.failed))
      .num("skipped", static_cast<std::int64_t>(stats.skipped))
      .num("retry_rounds", static_cast<std::int64_t>(stats.retry_rounds))
      .num("interrupted", stats.interrupted ? 1 : 0);
  return stats;
}

}  // namespace cny::campaign
