// Sweep expression language — the axis/derived-parameter vocabulary of the
// campaign runner (campaign/spec.h). Modelled on OMNeT++'s ini-based study
// machinery: a one-line expression expands to the values one named axis
// takes, and a tiny arithmetic language derives parameters from other axes.
//
// Axis value expressions (expand_sweep):
//
//   list       1,2,5.5                explicit values, in order
//   range      0.80:0.05:0.95         start:step:stop — index-based
//                                     stepping (v_i = start + i*step, never
//                                     repeated addition), stop inclusive
//                                     within a half-step tolerance; step may
//                                     be negative when stop < start
//   linspace   lin:0:1:5              n points, endpoints inclusive
//   logspace   log:1e-4:1e-1:4        n points, geometric spacing
//   probit     probit:0.99:0.9999:6   n probabilities uniform in probit
//                                     space — bit-identical to
//                                     cnt::RemovalTradeoff::frontier's p_Rm
//                                     ladder, so frontier sweeps are
//                                     expressible as campaign axes
//
// Derived-parameter expressions (Expr): floating-point arithmetic
// (+ - * /, parentheses, unary minus), axis references ($name), and the
// function set sqrt, exp, log, log10, abs, floor, round, pow, min, max,
// phi (standard normal CDF), probit (its inverse). Everything is
// deterministic — same expression, same inputs, same bits — which is what
// lets the campaign runner promise stable point streams and request hashes.
//
// All parse/eval failures throw std::invalid_argument with a message that
// names the offending token, never a silent default.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace cny::campaign {

/// Expands one axis value expression into its ordered value list. Throws
/// std::invalid_argument on grammar violations: empty/garbage tokens, a zero
/// step, a step moving away from stop (reversed bounds), a point count < 2
/// for the lin/log/probit forms, non-positive logspace bounds, probit bounds
/// outside (0, 1), or an expansion past kMaxSweepValues.
[[nodiscard]] std::vector<double> expand_sweep(std::string_view expr);

/// Expansion guard: one axis longer than this is a typo (e.g. a range with
/// step 1e-9), not a campaign.
inline constexpr std::size_t kMaxSweepValues = 1'000'000;

/// A parsed derived-parameter expression. Parse once, evaluate per campaign
/// point with the axis/derived values of that point.
class Expr {
 public:
  /// Parses `text`; throws std::invalid_argument naming the position and
  /// token of the first syntax error.
  [[nodiscard]] static Expr parse(std::string_view text);

  /// Evaluates with `lookup` resolving each $name reference. The lookup
  /// may throw (unknown name); the exception propagates unchanged.
  [[nodiscard]] double eval(
      const std::function<double(const std::string&)>& lookup) const;

  /// Names referenced via $name, in first-appearance order, deduplicated —
  /// the dependency edges for the campaign compiler's cycle check.
  [[nodiscard]] const std::vector<std::string>& refs() const { return refs_; }

  /// The source text the expression was parsed from.
  [[nodiscard]] const std::string& text() const { return text_; }

  /// Implementation node type (opaque outside sweep.cpp).
  struct Node;

 private:
  Expr() = default;

  std::string text_;
  std::shared_ptr<const Node> root_;  ///< shared: Expr is freely copyable
  std::vector<std::string> refs_;
};

}  // namespace cny::campaign
