// Resumable on-disk result store — one JSONL line per finished campaign
// point, keyed by request_key (campaign/spec.h).
//
// Line format (canonical service::Json, so dump(parse(line)) == line):
//
//   {"key":"26ca08f3…","index":3,"request":{…},"result":{…}}
//   {"key":"9d41c2aa…","index":4,"request":{…},
//    "error":{"code":"evaluation_failed","message":"…"}}
//
// The durability contract is append-only + flush-per-line: a killed
// campaign loses at most the records of its in-flight chunk, and the only
// possible corruption is a partial *final* line, which load() detects (no
// trailing newline) and truncates away. Any *complete* line that fails to
// parse is real corruption and throws StoreError — silently dropping
// finished work would make "resume" quietly recompute or, worse, skip.
//
// Error records count as done: an infeasible point is a deterministic
// property of its request, so resume must not retry it (that would make an
// interrupted-and-resumed store differ from an uninterrupted one).
#pragma once

#include <cstdint>
#include <cstdio>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "service/json.h"

namespace cny::campaign {

/// Store file corruption or misuse (duplicate key, malformed line).
class StoreError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// One finished campaign point. Exactly one of result_json / error_code is
/// set ("" = absent).
struct StoreRecord {
  std::string key;           ///< request_key(request), 16 hex digits
  std::uint64_t index = 0;   ///< campaign order position
  std::string request_json;  ///< canonical_request(request)
  std::string result_json;   ///< canonical FlowResult JSON; "" on error
  std::string error_code;    ///< e.g. "evaluation_failed"; "" on success
  std::string error_message;

  /// The canonical JSONL line (no trailing newline).
  [[nodiscard]] std::string line() const;
  /// Parses one complete line; throws StoreError on malformed input.
  [[nodiscard]] static StoreRecord from_line(std::string_view line);
};

/// Append-only record set, optionally file-backed. Not thread-safe: the
/// campaign runner appends from its coordinating thread only, in campaign
/// order, which is what makes stores byte-comparable across runs.
class ResultStore {
 public:
  /// In-memory store (tests, --dry-run accounting).
  ResultStore() = default;

  /// File-backed store: loads existing records from `path` (creating the
  /// file if absent), truncates a partial trailing line left by a kill
  /// mid-write, and appends subsequent records to the file with a flush
  /// per line. Throws StoreError on corrupt complete lines or duplicate
  /// keys, std::invalid_argument when the file cannot be opened.
  explicit ResultStore(const std::string& path);

  void append(StoreRecord record);

  [[nodiscard]] bool contains(const std::string& key) const;
  /// nullptr when absent; pointer stable until the next append.
  [[nodiscard]] const StoreRecord* find(const std::string& key) const;
  [[nodiscard]] const std::vector<StoreRecord>& records() const {
    return records_;
  }
  [[nodiscard]] std::size_t size() const { return records_.size(); }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;  ///< "" for in-memory stores
  std::unique_ptr<std::FILE, int (*)(std::FILE*)> file_{nullptr,
                                                        std::fclose};
  std::vector<StoreRecord> records_;
  std::map<std::string, std::size_t> by_key_;  ///< key -> records_ index
};

}  // namespace cny::campaign
