#include "campaign/store.h"

#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <system_error>

namespace cny::campaign {

using service::Json;
using service::JsonError;

std::string StoreRecord::line() const {
  Json v = Json::object();
  v.set("key", Json::string(key));
  v.set("index", Json::number(index));
  v.set("request", Json::parse(request_json));
  if (error_code.empty()) {
    v.set("result", Json::parse(result_json));
  } else {
    Json error = Json::object();
    error.set("code", Json::string(error_code));
    error.set("message", Json::string(error_message));
    v.set("error", std::move(error));
  }
  return v.dump();
}

StoreRecord StoreRecord::from_line(std::string_view line) {
  try {
    const Json v = Json::parse(line);
    StoreRecord record;
    record.key = v.at("key").as_string();
    record.index = v.at("index").as_u64();
    record.request_json = v.at("request").dump();
    if (const Json* error = v.find("error")) {
      record.error_code = error->at("code").as_string();
      record.error_message = error->at("message").as_string();
      if (record.error_code.empty()) {
        throw StoreError("store record has an empty error code");
      }
    } else {
      record.result_json = v.at("result").dump();
    }
    if (record.key.size() != 16 ||
        record.key.find_first_not_of("0123456789abcdef") !=
            std::string::npos) {
      throw StoreError("store record key '" + record.key +
                       "' is not 16 lowercase hex digits");
    }
    return record;
  } catch (const JsonError& e) {
    throw StoreError(std::string("malformed store line: ") + e.what());
  }
}

ResultStore::ResultStore(const std::string& path) : path_(path) {
  // Load phase: read everything already on disk. "a+" would do, but an
  // explicit read keeps load and append failure modes separate.
  std::string text;
  {
    std::ifstream in(path, std::ios::binary);
    if (in) {
      std::ostringstream buffer;
      buffer << in.rdbuf();
      text = buffer.str();
    }
  }
  // A store is newline-terminated after every append, so bytes after the
  // last '\n' are a line a killed writer never finished — drop them. Bytes
  // *before* it are complete lines and must parse.
  std::size_t complete = text.size();
  if (complete > 0 && text[complete - 1] != '\n') {
    const auto last_newline = text.rfind('\n');
    complete = last_newline == std::string::npos ? 0 : last_newline + 1;
  }
  std::size_t begin = 0;
  while (begin < complete) {
    const std::size_t end = text.find('\n', begin);
    const std::string_view line(text.data() + begin, end - begin);
    begin = end + 1;
    if (line.empty()) continue;
    StoreRecord record;
    try {
      record = StoreRecord::from_line(line);
    } catch (const StoreError& e) {
      throw StoreError("store '" + path + "': " + e.what());
    }
    if (by_key_.count(record.key) > 0) {
      throw StoreError("store '" + path + "': duplicate key '" + record.key +
                       "'");
    }
    by_key_.emplace(record.key, records_.size());
    records_.push_back(std::move(record));
  }
  // Append phase: physically truncate the partial tail (so a resumed store
  // is byte-identical to an uninterrupted one even if nothing more is ever
  // appended), then keep one append handle with per-line flushes. "r+"
  // preserves the complete prefix; the file may not exist yet, in which
  // case create it.
  if (complete < text.size()) {
    std::error_code ec;
    std::filesystem::resize_file(path, complete, ec);
    if (ec) {
      throw StoreError("cannot truncate partial tail of result store '" +
                       path + "': " + ec.message());
    }
  }
  std::FILE* f = std::fopen(path.c_str(), "r+b");
  if (f == nullptr && errno == ENOENT) f = std::fopen(path.c_str(), "w+b");
  if (f == nullptr) {
    throw std::invalid_argument("cannot open result store '" + path +
                                "': " + std::strerror(errno));
  }
  file_.reset(f);
  if (std::fseek(f, static_cast<long>(complete), SEEK_SET) != 0) {
    throw StoreError("cannot seek in result store '" + path + "'");
  }
}

void ResultStore::append(StoreRecord record) {
  if (by_key_.count(record.key) > 0) {
    throw StoreError("duplicate store key '" + record.key +
                     "' (same canonical request evaluated twice)");
  }
  if (file_ != nullptr) {
    const std::string line = record.line() + "\n";
    if (std::fwrite(line.data(), 1, line.size(), file_.get()) !=
            line.size() ||
        std::fflush(file_.get()) != 0) {
      throw StoreError("write to result store '" + path_ +
                       "' failed: " + std::strerror(errno));
    }
  }
  by_key_.emplace(record.key, records_.size());
  records_.push_back(std::move(record));
}

bool ResultStore::contains(const std::string& key) const {
  return by_key_.count(key) > 0;
}

const StoreRecord* ResultStore::find(const std::string& key) const {
  const auto it = by_key_.find(key);
  return it == by_key_.end() ? nullptr : &records_[it->second];
}

}  // namespace cny::campaign
