#include "campaign/spec.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <functional>
#include <map>
#include <sstream>
#include <stdexcept>

#include "campaign/sweep.h"
#include "scenario/engine.h"
#include "util/strings.h"

namespace cny::campaign {

namespace {

using service::FlowRequest;
using service::Json;

[[noreturn]] void fail(const std::string& what) {
  throw std::invalid_argument(what);
}

/// Integral field guard: a derived expression landing on 2.5 seeds must
/// fail, not truncate.
std::uint64_t integral(double v, std::string_view path) {
  if (!(v >= 0.0) || v != std::floor(v) || v > 9.007199254740992e15) {
    fail("parameter '" + std::string(path) +
         "' requires a non-negative integer value, got " +
         Json::number(v).dump());
  }
  return static_cast<std::uint64_t>(v);
}

struct ParamEntry {
  const char* path;
  void (*set)(FlowRequest&, double);
  double (*get)(const FlowRequest&);
};

// One table defines the sweepable namespace: path order here is the
// canonical emission order of to_json(CampaignSpec).
const ParamEntry kParams[] = {
    {"instances",
     [](FlowRequest& r, double v) {
       r.design_instances = integral(v, "instances");
     },
     [](const FlowRequest& r) { return double(r.design_instances); }},
    {"process.pitch_mean_nm",
     [](FlowRequest& r, double v) { r.process.pitch_mean_nm = v; },
     [](const FlowRequest& r) { return r.process.pitch_mean_nm; }},
    {"process.pitch_cv",
     [](FlowRequest& r, double v) { r.process.pitch_cv = v; },
     [](const FlowRequest& r) { return r.process.pitch_cv; }},
    {"process.p_metallic",
     [](FlowRequest& r, double v) { r.process.p_metallic = v; },
     [](const FlowRequest& r) { return r.process.p_metallic; }},
    {"process.p_remove_s",
     [](FlowRequest& r, double v) { r.process.p_remove_s = v; },
     [](const FlowRequest& r) { return r.process.p_remove_s; }},
    {"yield",
     [](FlowRequest& r, double v) { r.params.yield_desired = v; },
     [](const FlowRequest& r) { return r.params.yield_desired; }},
    {"chip_m",
     [](FlowRequest& r, double v) { r.params.chip_transistors = v; },
     [](const FlowRequest& r) { return r.params.chip_transistors; }},
    {"mc_samples",
     [](FlowRequest& r, double v) {
       r.params.mc_samples =
           static_cast<std::size_t>(integral(v, "mc_samples"));
     },
     [](const FlowRequest& r) { return double(r.params.mc_samples); }},
    {"seed",
     [](FlowRequest& r, double v) { r.params.seed = integral(v, "seed"); },
     [](const FlowRequest& r) { return double(r.params.seed); }},
    {"streams",
     [](FlowRequest& r, double v) {
       const auto streams = integral(v, "streams");
       if (streams < 1 || streams > 0xFFFFFFFFull) {
         fail("parameter 'streams' must be in [1, 2^32)");
       }
       r.params.mc_streams = static_cast<unsigned>(streams);
     },
     [](const FlowRequest& r) { return double(r.params.mc_streams); }},
    {"scenario.shorts.p_rm",
     [](FlowRequest& r, double v) {
       if (!r.params.scenario.shorts) r.params.scenario.shorts.emplace();
       r.params.scenario.shorts->p_rm = v;
     },
     [](const FlowRequest& r) {
       return r.params.scenario.shorts.value_or(scenario::ShortFailure{})
           .p_rm;
     }},
    {"scenario.shorts.p_noise_fails",
     [](FlowRequest& r, double v) {
       if (!r.params.scenario.shorts) r.params.scenario.shorts.emplace();
       r.params.scenario.shorts->p_noise_fails = v;
     },
     [](const FlowRequest& r) {
       return r.params.scenario.shorts.value_or(scenario::ShortFailure{})
           .p_noise_fails;
     }},
    {"scenario.length.mean",
     [](FlowRequest& r, double v) {
       if (!r.params.scenario.length) r.params.scenario.length.emplace();
       r.params.scenario.length->mean = v;
     },
     [](const FlowRequest& r) {
       return r.params.scenario.length.value_or(scenario::FiniteLength{})
           .mean;
     }},
    {"scenario.length.cv",
     [](FlowRequest& r, double v) {
       if (!r.params.scenario.length) r.params.scenario.length.emplace();
       r.params.scenario.length->cv = v;
     },
     [](const FlowRequest& r) {
       return r.params.scenario.length.value_or(scenario::FiniteLength{}).cv;
     }},
    {"scenario.length.devices",
     [](FlowRequest& r, double v) {
       if (!r.params.scenario.length) r.params.scenario.length.emplace();
       r.params.scenario.length->sample_devices =
           static_cast<int>(integral(v, "scenario.length.devices"));
     },
     [](const FlowRequest& r) {
       return double(r.params.scenario.length.value_or(
           scenario::FiniteLength{}).sample_devices);
     }},
    {"scenario.removal.selectivity",
     [](FlowRequest& r, double v) {
       if (!r.params.scenario.removal) r.params.scenario.removal.emplace();
       r.params.scenario.removal->selectivity = v;
     },
     [](const FlowRequest& r) {
       return r.params.scenario.removal.value_or(scenario::RemovalFrontier{})
           .selectivity;
     }},
    {"scenario.removal.p_rm_target",
     [](FlowRequest& r, double v) {
       if (!r.params.scenario.removal) r.params.scenario.removal.emplace();
       r.params.scenario.removal->p_rm_target = v;
     },
     [](const FlowRequest& r) {
       return r.params.scenario.removal.value_or(scenario::RemovalFrontier{})
           .p_rm_target;
     }},
};

const ParamEntry* find_param(std::string_view path) {
  for (const ParamEntry& entry : kParams) {
    if (path == entry.path) return &entry;
  }
  return nullptr;
}

const ParamEntry& require_param(std::string_view path) {
  const ParamEntry* entry = find_param(path);
  if (entry == nullptr) {
    std::string known;
    for (const std::string& p : param_paths()) {
      known += known.empty() ? p : ", " + p;
    }
    fail("unknown parameter path '" + std::string(path) +
         "' (known paths: " + known + ")");
  }
  return *entry;
}

/// The default $name of an axis/derived entry: the last '.'-segment of its
/// parameter path ("scenario.removal.p_rm_target" -> "p_rm_target").
std::string default_name(std::string_view path) {
  const auto dot = path.rfind('.');
  return std::string(dot == std::string_view::npos ? path
                                                   : path.substr(dot + 1));
}

std::string fmt(double v) { return Json::number(v).dump(); }

}  // namespace

const std::vector<std::string>& param_paths() {
  static const std::vector<std::string> paths = [] {
    std::vector<std::string> out;
    for (const ParamEntry& entry : kParams) out.emplace_back(entry.path);
    return out;
  }();
  return paths;
}

void set_param(service::FlowRequest& request, std::string_view path,
               double value) {
  require_param(path).set(request, value);
}

double get_param(const service::FlowRequest& request, std::string_view path) {
  return require_param(path).get(request);
}

std::string canonical_request(const service::FlowRequest& request) {
  return service::to_json(request).dump();
}

std::uint64_t fnv1a64(std::string_view bytes) {
  std::uint64_t h = 14695981039346656037ull;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

std::string request_key(const service::FlowRequest& request) {
  std::uint64_t h = fnv1a64(canonical_request(request));
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = "0123456789abcdef"[h & 0xF];
    h >>= 4;
  }
  return out;
}

service::Json to_json(const CampaignSpec& spec) {
  Json v = Json::object();
  v.set("name", Json::string(spec.name));
  // Base: the library, the enabled-mechanism list, then every numeric
  // parameter that differs from its (mechanism-default-aware) default —
  // so dump(parse(dump)) is byte-stable and a default base is just
  // {"library":"nangate45"}.
  Json base = Json::object();
  base.set("library", Json::string(spec.base.library));
  const std::string mechanisms = scenario::names(spec.base.params.scenario);
  if (!mechanisms.empty()) base.set("scenario", Json::string(mechanisms));
  service::FlowRequest defaults;
  defaults.library = spec.base.library;
  defaults.params.scenario = scenario::spec_from_names(mechanisms);
  for (const std::string& path : param_paths()) {
    const double value = get_param(spec.base, path);
    if (value != get_param(defaults, path)) {
      base.set(path, Json::number(value));
    }
  }
  v.set("base", std::move(base));
  Json axes = Json::array();
  for (const Axis& axis : spec.axes) {
    Json a = Json::object();
    a.set("name", Json::string(axis.name.empty() ? default_name(axis.param)
                                                 : axis.name));
    a.set("param", Json::string(axis.param));
    a.set("values", Json::string(axis.values));
    axes.push_back(std::move(a));
  }
  v.set("axes", std::move(axes));
  if (!spec.derived.empty()) {
    Json derived = Json::array();
    for (const DerivedParam& d : spec.derived) {
      Json e = Json::object();
      e.set("name",
            Json::string(d.name.empty() ? default_name(d.param) : d.name));
      e.set("param", Json::string(d.param));
      e.set("expr", Json::string(d.expr));
      derived.push_back(std::move(e));
    }
    v.set("derived", std::move(derived));
  }
  return v;
}

CampaignSpec campaign_from_json(const service::Json& v) {
  try {
    CampaignSpec spec;
    spec.name = v.at("name").as_string();
    if (const Json* base = v.find("base")) {
      // Two passes: "library"/"scenario" first so a numeric scenario.*
      // override lands on an already-enabled mechanism block regardless of
      // member order.
      for (const auto& [key, value] : base->members()) {
        if (key == "library") {
          spec.base.library = value.as_string();
        } else if (key == "scenario") {
          spec.base.params.scenario =
              scenario::spec_from_names(value.as_string());
        }
      }
      for (const auto& [key, value] : base->members()) {
        if (key == "library" || key == "scenario") continue;
        set_param(spec.base, key, value.as_double());
      }
    }
    for (const Json& a : v.at("axes").items()) {
      Axis axis;
      axis.param = a.at("param").as_string();
      axis.values = a.at("values").as_string();
      if (const Json* name = a.find("name")) axis.name = name->as_string();
      spec.axes.push_back(std::move(axis));
    }
    if (const Json* derived = v.find("derived")) {
      for (const Json& d : derived->items()) {
        DerivedParam entry;
        entry.param = d.at("param").as_string();
        entry.expr = d.at("expr").as_string();
        if (const Json* name = d.find("name")) entry.name = name->as_string();
        spec.derived.push_back(std::move(entry));
      }
    }
    return spec;
  } catch (const service::JsonError& e) {
    fail(std::string("campaign spec: ") + e.what());
  }
}

CampaignSpec load_campaign(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) fail("cannot read campaign spec '" + path + "'");
  std::ostringstream text;
  text << in.rdbuf();
  try {
    return campaign_from_json(Json::parse(text.str()));
  } catch (const std::exception& e) {
    fail("campaign spec '" + path + "': " + e.what());
  }
}

std::vector<CompiledPoint> compile(const CampaignSpec& spec) {
  // Names resolve axes and derived parameters; both share one namespace.
  std::vector<std::string> axis_names;
  std::vector<std::vector<double>> axis_values;
  std::map<std::string, std::size_t> name_index;  // into axes then derived
  for (const Axis& axis : spec.axes) {
    require_param(axis.param);
    const std::string name =
        axis.name.empty() ? default_name(axis.param) : axis.name;
    if (!name_index.emplace(name, axis_names.size()).second) {
      fail("axis name '" + name +
           "' is not unique — give one axis an explicit \"name\"");
    }
    try {
      axis_values.push_back(expand_sweep(axis.values));
    } catch (const std::exception& e) {
      fail("axis '" + name + "': " + e.what());
    }
    axis_names.push_back(name);
  }
  if (axis_names.empty()) fail("campaign has no axes");

  // Derived parameters: parse, then order by $reference dependencies.
  std::vector<std::string> derived_names;
  std::vector<Expr> derived_exprs;
  for (const DerivedParam& d : spec.derived) {
    require_param(d.param);
    const std::string name = d.name.empty() ? default_name(d.param) : d.name;
    if (name_index.count(name) > 0 ||
        std::count(derived_names.begin(), derived_names.end(), name) > 0) {
      fail("derived parameter name '" + name +
           "' collides with an axis or another derived parameter");
    }
    try {
      derived_exprs.push_back(Expr::parse(d.expr));
    } catch (const std::exception& e) {
      fail("derived parameter '" + name + "': " + e.what());
    }
    derived_names.push_back(name);
  }
  // Reference check + dependency edges among derived parameters.
  std::vector<std::vector<std::size_t>> deps(derived_names.size());
  for (std::size_t i = 0; i < derived_names.size(); ++i) {
    for (const std::string& ref : derived_exprs[i].refs()) {
      if (name_index.count(ref) > 0) continue;  // axis reference
      const auto it =
          std::find(derived_names.begin(), derived_names.end(), ref);
      if (it == derived_names.end()) {
        std::string known;
        for (const std::string& n : axis_names) {
          known += known.empty() ? n : ", " + n;
        }
        for (const std::string& n : derived_names) {
          known += known.empty() ? n : ", " + n;
        }
        fail("derived parameter '" + derived_names[i] +
             "' references unknown name '$" + ref +
             "' (known names: " + known + ")");
      }
      deps[i].push_back(
          static_cast<std::size_t>(it - derived_names.begin()));
    }
  }
  // Topological order by depth-first search; a back edge is a cycle, and
  // the DFS stack is exactly the cycle path to report.
  std::vector<std::size_t> topo;
  std::vector<int> state(derived_names.size(), 0);  // 0 new, 1 open, 2 done
  std::vector<std::size_t> stack;
  const std::function<void(std::size_t)> visit = [&](std::size_t i) {
    if (state[i] == 2) return;
    if (state[i] == 1) {
      std::string path;
      for (std::size_t j = std::find(stack.begin(), stack.end(), i) -
                           stack.begin();
           j < stack.size(); ++j) {
        path += derived_names[stack[j]] + " -> ";
      }
      fail("derived parameter cycle: " + path + derived_names[i]);
    }
    state[i] = 1;
    stack.push_back(i);
    for (const std::size_t dep : deps[i]) visit(dep);
    stack.pop_back();
    state[i] = 2;
    topo.push_back(i);
  };
  for (std::size_t i = 0; i < derived_names.size(); ++i) visit(i);

  std::size_t total = 1;
  for (const auto& values : axis_values) {
    if (total > kMaxSweepValues / values.size()) {
      fail("campaign expands past " + std::to_string(kMaxSweepValues) +
           " points");
    }
    total *= values.size();
  }

  std::vector<CompiledPoint> out;
  out.reserve(total);
  for (std::size_t index = 0; index < total; ++index) {
    CompiledPoint point;
    point.index = index;
    point.request = spec.base;
    // Row-major decomposition: the LAST axis varies fastest.
    point.axis_values.resize(axis_names.size());
    std::size_t rem = index;
    for (std::size_t a = axis_names.size(); a-- > 0;) {
      const auto& values = axis_values[a];
      point.axis_values[a] = values[rem % values.size()];
      rem /= values.size();
    }
    const auto describe = [&] {
      std::string what;
      for (std::size_t a = 0; a < axis_names.size(); ++a) {
        what += (a == 0 ? "" : ", ") + axis_names[a] + "=" +
                fmt(point.axis_values[a]);
      }
      return what;
    };
    std::map<std::string, double> values;
    for (std::size_t a = 0; a < axis_names.size(); ++a) {
      values[axis_names[a]] = point.axis_values[a];
      set_param(point.request, spec.axes[a].param, point.axis_values[a]);
    }
    for (const std::size_t d : topo) {
      double value = 0.0;
      try {
        value = derived_exprs[d].eval(
            [&](const std::string& name) { return values.at(name); });
      } catch (const std::exception& e) {
        fail("point #" + std::to_string(index) + " (" + describe() +
             "): derived parameter '" + derived_names[d] + "': " + e.what());
      }
      values[derived_names[d]] = value;
      try {
        set_param(point.request, spec.derived[d].param, value);
      } catch (const std::exception& e) {
        fail("point #" + std::to_string(index) + " (" + describe() + "): " +
             e.what());
      }
    }
    try {
      service::validate(point.request);
    } catch (const std::exception& e) {
      fail("point #" + std::to_string(index) + " (" + describe() + "): " +
           e.what());
    }
    point.key = request_key(point.request);
    out.push_back(std::move(point));
  }
  return out;
}

}  // namespace cny::campaign
