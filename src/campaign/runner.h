// Campaign executor — pushes compiled campaign points (campaign/spec.h)
// through the existing flow paths and lands every finished point in a
// ResultStore (campaign/store.h).
//
// Execution is chunked: `checkpoint_every` pending points at a time, each
// chunk grouped by session key (library + derived process corner, exactly
// the server's grouping) so a sweep crossing K corners warms K models, not
// one per point. Records are appended strictly in campaign order with a
// flush per line — the checkpoint granularity is the most a kill can cost.
//
// Two paths, one byte-identical store:
//   * direct      — a private service::SessionCache + exec::parallel_for
//                   over yield::run_flow, the server's evaluate_group
//                   without the sockets;
//   * via_service — a loopback YieldServer (submit/decode), proving the
//                   wire path agrees.
// Both read warm full-bracket interpolants, so results are invariant under
// chunking, grouping, thread count, and interruption — which is what makes
// "killed + resumed == uninterrupted" a byte-equality statement.
//
// Resume falls out of the store: points whose key is already present are
// skipped (counted in CampaignStats::skipped), so re-running a finished
// campaign performs zero flow evaluations. Error records are deterministic
// outcomes and are *not* retried.
//
// Transient failures are the opposite: on the via-service path a point
// that comes back with a transient code (protocol.h is_transient_error) or
// an unusable response (dropped / truncated / corrupt — the fault
// harness's repertoire) is *never* written to the store. It is resubmitted
// in the next retry round (RunnerOptions::retry), and if the budget runs
// out the whole run throws — so a store produced through a fault-injecting
// server is byte-identical to a fault-free run or absent, never subtly
// poisoned (pinned in tests/test_campaign.cpp).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "campaign/spec.h"
#include "campaign/store.h"
#include "obs/log.h"
#include "obs/trace.h"
#include "service/client.h"
#include "service/faults.h"

namespace cny::campaign {

struct RunnerOptions {
  /// Compute threads per group (0 = hardware concurrency). Scheduling
  /// only: results are invariant under this knob.
  unsigned n_threads = 0;
  /// Points per chunk between store checkpoints / interrupt polls
  /// (0 = one chunk for the whole campaign).
  std::size_t checkpoint_every = 16;
  /// Evaluate through a loopback YieldServer instead of directly.
  bool via_service = false;
  /// Warm (library, corner) sessions kept alive, LRU-evicted.
  std::size_t cache_capacity = 8;
  /// Knots of each session's log-p_F interpolant.
  std::size_t interpolant_knots = 65;
  /// Polled between chunks; returning true checkpoints and stops (the CLI
  /// wires SIGTERM/SIGINT here). Never interrupts mid-chunk.
  std::function<bool()> interrupted;
  /// Invoked after every chunk with (points done this run, points pending
  /// at start); for CLI progress lines.
  std::function<void(std::size_t, std::size_t)> progress;
  /// Retry budget for transient via-service failures (max_attempts,
  /// backoff, jitter — deadline_ms is not consulted here; a campaign has
  /// no latency SLO). Exhausting it throws ServiceError rather than
  /// recording a transient outcome. Ignored on the direct path, which has
  /// no wire to fail.
  service::RetryPolicy retry;
  /// Fault plan wired into the loopback server (via_service only): the
  /// chaos campaign in CI runs the real store path through injected
  /// drops/delays/rejects. Null = clean server.
  std::shared_ptr<service::FaultPlan> fault_plan;
  /// Progress sidecar: when non-empty, one JSON line is appended here
  /// after every chunk ({"chunk","done","pending","evaluated","failed",
  /// "skipped","retry_rounds","sessions_built","elapsed_ms","eta_ms",
  /// "rss_kb","vm_hwm_kb"} — the resource columns sample /proc at
  /// checkpoint time, so a tail shows memory growth per chunk) — a
  /// watcher tails it without touching the store. The sidecar is a
  /// separate file the resume path never reads, so it cannot perturb
  /// store bytes (pinned in tests).
  std::string progress_path;
  /// Trace sink for campaign spans ("campaign.chunk" per chunk, plus the
  /// full server/session span set on whichever path runs). Null = off;
  /// either way the store is byte-identical (the zero-perturbation
  /// contract).
  std::shared_ptr<obs::TraceSink> trace_sink;
  /// Structured JSONL event log (campaign.start / campaign.checkpoint /
  /// campaign.retry_exhausted / campaign.interrupted / campaign.finish,
  /// plus the server/session events on the via-service path). Null = off;
  /// same zero-perturbation contract as tracing.
  std::shared_ptr<obs::Log> log;
};

struct CampaignStats {
  std::size_t total = 0;      ///< compiled campaign points
  std::size_t skipped = 0;    ///< already in the store (resume no-ops)
  std::size_t evaluated = 0;  ///< successful flow evaluations this run
  std::size_t failed = 0;     ///< error records appended this run
  std::uint64_t sessions_built = 0;  ///< cache misses (model warm-ups)
  /// Retry rounds beyond each chunk's first submission (via_service only):
  /// how hard the transient-failure retry loop had to work. 0 on a clean
  /// run.
  std::uint64_t retry_rounds = 0;
  bool interrupted = false;   ///< stopped at a checkpoint before finishing
};

/// Runs every point not yet in `store`, appending one record per finished
/// point in campaign order. Throws on store I/O failures; per-point
/// evaluation failures become "evaluation_failed" records instead.
CampaignStats run_campaign(const std::vector<CompiledPoint>& points,
                           ResultStore& store,
                           const RunnerOptions& options = {});

}  // namespace cny::campaign
