// Deterministic parallel Monte-Carlo reduction.
//
// The contract that makes every MC loop in this library parallel *and*
// reproducible: work is sharded into RNG streams, not threads.
//
//   * `n_streams` decides WHAT is computed — shard i draws all of its
//     variates from stream i of the caller's engine, so the result is a
//     pure function of (engine state, n_streams).
//   * `n_threads` decides only HOW FAST — shards are claimed from an atomic
//     counter and partial results are merged in stream order after all
//     shards finish, so any thread count (including 1) produces
//     bit-identical output.
//   * Stream 0 is the caller's engine itself (legacy serial order); stream
//     i >= 1 is `engine.make_stream(i-1)`, i.e. jumped i x 2^128 steps.
//     With n_streams == 1 the reduction is exactly the pre-subsystem
//     serial loop, including how it advances the caller's engine.
//
// Kernel signature: Partial kernel(unsigned stream, std::uint64_t n, rng&)
// Reduce signature: void reduce(Partial& into, Partial&& from)
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "exec/mc_policy.h"
#include "exec/thread_pool.h"
#include "rng/engine.h"
#include "util/contracts.h"

namespace cny::exec {

template <class Partial, class Kernel, class Reduce>
Partial parallel_mc_reduce(std::uint64_t n_samples, unsigned n_threads,
                           std::vector<rng::Xoshiro256> seed_streams,
                           Kernel&& kernel, Reduce&& reduce,
                           ThreadPool* pool = nullptr) {
  CNY_EXPECT(!seed_streams.empty());
  const unsigned n = static_cast<unsigned>(seed_streams.size());
  const auto counts = shard_counts(n_samples, n);
  std::vector<Partial> partials(n);

  // Shards land in stream-indexed slots regardless of which thread ran
  // them, and the merge below walks the slots in stream order — so the
  // result is a pure function of (seed_streams, n_samples), not scheduling.
  parallel_for(
      n, n_threads,
      [&](std::size_t i) {
        partials[i] = kernel(static_cast<unsigned>(i), counts[i],
                             seed_streams[i]);
      },
      pool);

  Partial total = std::move(partials[0]);
  for (unsigned i = 1; i < n; ++i) reduce(total, std::move(partials[i]));
  return total;
}

/// The one entry point MC kernels should port onto: dispatches `policy`
/// and owns the two invariants every call site must honour —
///   * one stream ⇒ run the kernel directly on the caller's engine, in
///     legacy serial order (bit-identical to the pre-subsystem loop);
///   * several streams ⇒ parallel_mc_reduce over make_streams(rng), then
///     advance the caller's engine by one long_jump (2^192 steps, past
///     every stream used) so consecutive calls never overlap streams.
template <class Partial, class Kernel, class Reduce>
Partial run_mc(std::uint64_t n_samples, rng::Xoshiro256& rng,
               const McPolicy& policy, Kernel&& kernel, Reduce&& reduce) {
  if (policy.serial_streams()) {
    return kernel(0u, n_samples, rng);
  }
  Partial total = parallel_mc_reduce<Partial>(
      n_samples, policy.n_threads, make_streams(rng, policy.n_streams),
      std::forward<Kernel>(kernel), std::forward<Reduce>(reduce));
  rng.long_jump();
  return total;
}

}  // namespace cny::exec
