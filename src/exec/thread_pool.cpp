#include "exec/thread_pool.h"

#include <atomic>
#include <exception>
#include <latch>

namespace cny::exec {

namespace {
thread_local bool t_on_worker = false;
}  // namespace

unsigned hardware_threads() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1u : n;
}

ThreadPool::ThreadPool(unsigned n_threads) {
  const unsigned n = n_threads == 0 ? hardware_threads() : n_threads;
  workers_.reserve(n);
  for (unsigned i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::post(std::function<void()> task) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

bool ThreadPool::on_worker_thread() { return t_on_worker; }

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool;  // sized to hardware_threads(); lives forever
  return pool;
}

void parallel_for(std::size_t n, unsigned n_threads,
                  const std::function<void(std::size_t)>& body,
                  ThreadPool* pool) {
  if (n == 0) return;
  const unsigned threads = n_threads == 0 ? hardware_threads() : n_threads;
  if (threads <= 1 || n == 1 || ThreadPool::on_worker_thread()) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }

  std::atomic<std::size_t> next{0};
  std::atomic<bool> failed{false};
  std::exception_ptr error;
  std::mutex error_mutex;
  const auto drain = [&] {
    std::size_t i;
    while ((i = next.fetch_add(1, std::memory_order_relaxed)) < n) {
      try {
        body(i);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mutex);
        if (!failed.exchange(true)) error = std::current_exception();
      }
    }
  };
  ThreadPool& p = pool != nullptr ? *pool : ThreadPool::shared();
  const unsigned helpers =
      static_cast<unsigned>(std::min<std::size_t>(threads, n)) - 1;
  std::latch done(helpers);
  for (unsigned t = 0; t < helpers; ++t) {
    p.post([&] {
      drain();
      done.count_down();
    });
  }
  drain();
  done.wait();
  if (failed.load()) std::rethrow_exception(error);
}

void ThreadPool::worker_loop() {
  t_on_worker = true;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to drain
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

}  // namespace cny::exec
