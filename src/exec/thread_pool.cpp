#include "exec/thread_pool.h"

#include <atomic>
#include <exception>
#include <latch>

#include "obs/metrics.h"

namespace cny::exec {

namespace {
thread_local bool t_on_worker = false;

/// Process-wide pool metrics (obs::Registry::global(), "exec." prefix):
/// queue depth and busy/live worker gauges answer "is the pool the
/// bottleneck" from a stats frame. References resolved once; every update
/// is a relaxed atomic add next to a mutex the pool already takes.
struct PoolMetrics {
  obs::Gauge& queue_depth;
  obs::Gauge& workers_busy;
  obs::Gauge& workers_live;
  obs::Counter& tasks_posted;
  obs::Counter& tasks_executed;
  obs::Counter& parallel_for_calls;
  obs::Counter& parallel_for_inline;
};

PoolMetrics& metrics() {
  static auto& registry = obs::Registry::global();
  static PoolMetrics m{registry.gauge("exec.queue_depth"),
                       registry.gauge("exec.workers_busy"),
                       registry.gauge("exec.workers_live"),
                       registry.counter("exec.tasks_posted"),
                       registry.counter("exec.tasks_executed"),
                       registry.counter("exec.parallel_for_calls"),
                       registry.counter("exec.parallel_for_inline")};
  return m;
}
}  // namespace

unsigned hardware_threads() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1u : n;
}

ThreadPool::ThreadPool(unsigned n_threads) {
  const unsigned n = n_threads == 0 ? hardware_threads() : n_threads;
  workers_.reserve(n);
  for (unsigned i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::post(std::function<void()> task) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
  }
  metrics().tasks_posted.add(1);
  metrics().queue_depth.add(1);
  cv_.notify_one();
}

bool ThreadPool::on_worker_thread() { return t_on_worker; }

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool;  // sized to hardware_threads(); lives forever
  return pool;
}

void parallel_for(std::size_t n, unsigned n_threads,
                  const std::function<void(std::size_t)>& body,
                  ThreadPool* pool) {
  if (n == 0) return;
  metrics().parallel_for_calls.add(1);
  const unsigned threads = n_threads == 0 ? hardware_threads() : n_threads;
  if (threads <= 1 || n == 1 || ThreadPool::on_worker_thread()) {
    metrics().parallel_for_inline.add(1);
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }

  std::atomic<std::size_t> next{0};
  std::atomic<bool> failed{false};
  std::exception_ptr error;
  std::mutex error_mutex;
  const auto drain = [&] {
    std::size_t i;
    while ((i = next.fetch_add(1, std::memory_order_relaxed)) < n) {
      try {
        body(i);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mutex);
        if (!failed.exchange(true)) error = std::current_exception();
      }
    }
  };
  ThreadPool& p = pool != nullptr ? *pool : ThreadPool::shared();
  const unsigned helpers =
      static_cast<unsigned>(std::min<std::size_t>(threads, n)) - 1;
  std::latch done(helpers);
  for (unsigned t = 0; t < helpers; ++t) {
    p.post([&] {
      drain();
      done.count_down();
    });
  }
  drain();
  done.wait();
  if (failed.load()) std::rethrow_exception(error);
}

void ThreadPool::worker_loop() {
  t_on_worker = true;
  PoolMetrics& m = metrics();  // global registry is never destroyed
  m.workers_live.add(1);
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) {
        m.workers_live.add(-1);
        return;  // stop_ set and nothing left to drain
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    m.queue_depth.add(-1);
    m.workers_busy.add(1);
    task();
    m.workers_busy.add(-1);
    m.tasks_executed.add(1);
  }
}

}  // namespace cny::exec
