// Execution subsystem: a small reusable thread pool.
//
// The pool is deliberately minimal — a fixed set of workers draining one
// FIFO queue — because every parallel construct in this library is built on
// `parallel_mc_reduce` (parallel_mc.h), which owns determinism: the pool
// only ever decides *when* work runs, never *what* is computed.
//
// Re-entrancy rule: code already running on a pool worker must not post
// work and block on it (the classic nested-fork deadlock). Callers can
// detect that situation with `ThreadPool::on_worker_thread()` and fall back
// to inline execution; `parallel_mc_reduce` does exactly that.
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace cny::exec {

/// Hardware concurrency, never less than 1.
[[nodiscard]] unsigned hardware_threads();

class ThreadPool {
 public:
  /// `n_threads` workers; 0 means hardware_threads().
  explicit ThreadPool(unsigned n_threads = 0);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] unsigned size() const {
    return static_cast<unsigned>(workers_.size());
  }

  /// Enqueues `task` for execution on some worker, FIFO order.
  void post(std::function<void()> task);

  /// True iff the calling thread is a worker of *any* ThreadPool.
  [[nodiscard]] static bool on_worker_thread();

  /// Process-wide pool sized to hardware_threads(), created on first use.
  [[nodiscard]] static ThreadPool& shared();

 private:
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

/// Runs body(0) .. body(n-1) on up to `n_threads` threads (0 = hardware
/// concurrency) and returns when all have finished. Indices are claimed
/// from an atomic counter and the calling thread works alongside the pool
/// (`pool` null = shared()), so completion never depends on pool capacity.
/// Runs inline when parallelism cannot help or when already on a pool
/// worker (nested fork). The first exception thrown by any body is
/// rethrown after completion. `body` must make any cross-index writes to
/// disjoint slots — this helper adds no synchronisation around them beyond
/// the final join.
void parallel_for(std::size_t n, unsigned n_threads,
                  const std::function<void(std::size_t)>& body,
                  ThreadPool* pool = nullptr);

}  // namespace cny::exec
