#include "exec/parallel_mc.h"

namespace cny::exec {

std::vector<rng::Xoshiro256> make_streams(const rng::Xoshiro256& base,
                                          unsigned n) {
  CNY_EXPECT(n >= 1);
  std::vector<rng::Xoshiro256> streams;
  streams.reserve(n);
  streams.push_back(base);  // stream 0: legacy serial order
  for (unsigned i = 1; i < n; ++i) {
    // Chain one jump past the previous stream: identical states to
    // base.make_stream(i - 1) (= base jumped i times) at O(n) jumps
    // instead of O(n^2).
    rng::Xoshiro256 child = streams.back();
    child.jump();
    streams.push_back(child);
  }
  return streams;
}

std::vector<std::uint64_t> shard_counts(std::uint64_t n_samples,
                                        unsigned n_streams) {
  CNY_EXPECT(n_streams >= 1);
  const std::uint64_t per = n_samples / n_streams;
  const std::uint64_t extra = n_samples % n_streams;
  std::vector<std::uint64_t> counts(n_streams, per);
  for (std::uint64_t i = 0; i < extra; ++i) ++counts[i];
  return counts;
}

}  // namespace cny::exec
