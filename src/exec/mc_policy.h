// Stream/thread policy for parallelised Monte-Carlo loops — the light
// header public APIs name in default arguments. The machinery that consumes
// it (thread pool, parallel_mc_reduce, run_mc) lives in parallel_mc.h /
// thread_pool.h, which only the implementing .cpps need.
#pragma once

#include <cstdint>
#include <vector>

#include "rng/engine.h"

namespace cny::exec {

/// Hardware concurrency, never less than 1 (defined in thread_pool.cpp).
[[nodiscard]] unsigned hardware_threads();

/// Stream/thread policy for one parallelised MC loop. The default (one
/// stream, one thread) is the legacy serial behaviour.
struct McPolicy {
  unsigned n_threads = 1;  ///< 0 = hardware concurrency
  unsigned n_streams = 1;  ///< fixes the random sequence; >= 1

  [[nodiscard]] unsigned resolved_threads() const {
    return n_threads == 0 ? hardware_threads() : n_threads;
  }
  [[nodiscard]] bool serial_streams() const { return n_streams <= 1; }
};

/// Per-shard engines for `base`: {copy of base, base.make_stream(0), ...,
/// base.make_stream(n-2)}. Streams are 2^128 steps apart — far beyond any
/// realistic sample budget, hence statistically independent.
[[nodiscard]] std::vector<rng::Xoshiro256> make_streams(
    const rng::Xoshiro256& base, unsigned n);

/// Contiguous shard sizes: n_samples split as evenly as possible with the
/// remainder going to the leading shards. Every shard is non-empty when
/// n_samples >= n_streams.
[[nodiscard]] std::vector<std::uint64_t> shard_counts(std::uint64_t n_samples,
                                                      unsigned n_streams);

}  // namespace cny::exec
