#include "report/experiment.h"

#include <fstream>
#include <sstream>

#include "util/contracts.h"

namespace cny::report {

Experiment::Experiment(std::string id, std::string title)
    : id_(std::move(id)), title_(std::move(title)) {
  CNY_EXPECT(!id_.empty());
}

util::Table& Experiment::add_table(std::string title) {
  tables_.emplace_back(std::move(title));
  return tables_.back();
}

void Experiment::add_comparison(Comparison c) {
  comparisons_.push_back(std::move(c));
}

std::string Experiment::render_text() const {
  std::ostringstream os;
  os << "=== " << id_ << ": " << title_ << " ===\n\n";
  for (const auto& t : tables_) os << t.to_text() << '\n';
  if (!comparisons_.empty()) {
    util::Table cmp("Paper vs measured");
    cmp.header({"quantity", "paper", "measured", "note"});
    for (const auto& c : comparisons_) {
      cmp.row({c.quantity, c.paper, c.measured, c.note});
    }
    os << cmp.to_text() << '\n';
  }
  return os.str();
}

std::string Experiment::render_markdown() const {
  std::ostringstream os;
  os << "## " << id_ << ": " << title_ << "\n\n";
  for (const auto& t : tables_) os << t.to_markdown() << '\n';
  if (!comparisons_.empty()) {
    util::Table cmp;
    cmp.header({"quantity", "paper", "measured", "note"});
    for (const auto& c : comparisons_) {
      cmp.row({c.quantity, c.paper, c.measured, c.note});
    }
    os << "**Paper vs measured**\n\n" << cmp.to_markdown() << '\n';
  }
  return os.str();
}

std::vector<std::string> Experiment::write_csv(const std::string& dir) const {
  std::vector<std::string> paths;
  for (std::size_t i = 0; i < tables_.size(); ++i) {
    const std::string path =
        dir + "/" + id_ + "_" + std::to_string(i) + ".csv";
    std::ofstream out(path);
    CNY_EXPECT_MSG(static_cast<bool>(out), "cannot write " + path);
    out << tables_[i].to_csv();
    paths.push_back(path);
  }
  return paths;
}

}  // namespace cny::report
