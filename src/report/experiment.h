// Experiment reporting: uniform structure for "reproduce one paper artefact"
// drivers. Each experiment renders one or more tables, records paper-vs-
// measured comparison lines, and can dump CSV next to the binary for
// plotting.
#pragma once

#include <string>
#include <vector>

#include "util/table.h"

namespace cny::report {

struct Comparison {
  std::string quantity;   ///< e.g. "W_min at 45 nm (nm)"
  std::string paper;      ///< value the paper reports
  std::string measured;   ///< value this reproduction measures
  std::string note;       ///< calibration / deviation commentary
};

class Experiment {
 public:
  /// `id` like "fig2_1" / "table1"; `title` as the paper captions it.
  Experiment(std::string id, std::string title);

  [[nodiscard]] const std::string& id() const { return id_; }
  [[nodiscard]] const std::string& title() const { return title_; }

  util::Table& add_table(std::string title);
  void add_comparison(Comparison c);

  [[nodiscard]] const std::vector<util::Table>& tables() const {
    return tables_;
  }
  [[nodiscard]] const std::vector<Comparison>& comparisons() const {
    return comparisons_;
  }

  /// Full plain-text rendering (tables + paper-vs-measured block).
  [[nodiscard]] std::string render_text() const;

  /// Markdown rendering, used to assemble EXPERIMENTS.md.
  [[nodiscard]] std::string render_markdown() const;

  /// Writes each table as `<dir>/<id>_<index>.csv`; returns the paths.
  std::vector<std::string> write_csv(const std::string& dir) const;

 private:
  std::string id_;
  std::string title_;
  std::vector<util::Table> tables_;
  std::vector<Comparison> comparisons_;
};

}  // namespace cny::report
