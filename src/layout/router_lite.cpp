#include "layout/router_lite.h"

#include <algorithm>
#include <cmath>

#include "util/contracts.h"

namespace cny::layout {

double estimate_wirelength(const celllib::Cell& cell) {
  CNY_EXPECT(!cell.regions.empty());
  double total = 0.0;
  for (const auto& t : cell.transistors) {
    const auto& rect = cell.regions[static_cast<std::size_t>(t.region)].rect;
    const double cx = rect.x + 0.5 * rect.w;
    const double cy = rect.y + 0.5 * rect.h;
    // Nearest pin by Manhattan distance; pins live on the cell's bottom
    // boundary in this model (y = 0).
    double best = 0.0;
    bool first = true;
    for (const auto& pin : cell.pins) {
      const double d = std::fabs(cx - pin.x) + cy;
      if (first || d < best) {
        best = d;
        first = false;
      }
    }
    if (!first) total += best;
  }
  return total;
}

std::vector<CellRoutingCost> library_routing_costs(
    const celllib::Library& lib) {
  std::vector<CellRoutingCost> out;
  out.reserve(lib.size());
  for (const auto& cell : lib.cells()) {
    out.push_back(CellRoutingCost{cell.name, estimate_wirelength(cell)});
  }
  return out;
}

RoutingDelta routing_delta(const celllib::Library& before,
                           const celllib::Library& after) {
  CNY_EXPECT(before.size() == after.size());
  RoutingDelta delta;
  for (const auto& cell : before.cells()) {
    const auto* other = after.find(cell.name);
    CNY_EXPECT_MSG(other != nullptr,
                   "cell missing from transformed library: " + cell.name);
    const double wl_before = estimate_wirelength(cell);
    const double wl_after = estimate_wirelength(*other);
    delta.before += wl_before;
    delta.after += wl_after;
    if (wl_before > 0.0) {
      delta.worst_cell = std::max(delta.worst_cell,
                                  (wl_after - wl_before) / wl_before);
    }
  }
  return delta;
}

}  // namespace cny::layout
