#include "layout/row_placement.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "rng/distributions.h"
#include "util/contracts.h"

namespace cny::layout {

using celllib::Polarity;

namespace {

/// Per-cell critical-window template: relative y-intervals of critical
/// n-regions, plus the cell width, with the design's instance count.
struct CellTemplateWindows {
  std::vector<geom::Interval> windows;
  double width = 0.0;
  std::uint64_t count = 0;
};

std::vector<CellTemplateWindows> collect_templates(
    const netlist::Design& design, double w_min) {
  CNY_EXPECT(w_min > 0.0);
  std::vector<CellTemplateWindows> out;
  for (const auto& ic : design.instances()) {
    const auto* cell = design.library().find(ic.cell_name);
    CellTemplateWindows tw;
    tw.width = cell->width;
    tw.count = ic.count;
    for (int r : cell->critical_regions(Polarity::N, w_min)) {
      const auto& rect = cell->regions[static_cast<std::size_t>(r)].rect;
      // The window spans the upsized device width from the region's bottom
      // edge (N devices grow upward, see Library::upsize_transistors).
      tw.windows.push_back(geom::Interval{rect.y, rect.y + w_min});
    }
    out.push_back(std::move(tw));
  }
  return out;
}

}  // namespace

RowWindows sample_row(const netlist::Design& design, const RowParams& params,
                      rng::Xoshiro256& rng) {
  CNY_EXPECT(params.row_length > 0.0);
  CNY_EXPECT(params.w_min > 0.0);

  const auto templates = collect_templates(design, params.w_min);
  CNY_EXPECT_MSG(!templates.empty(), "design has no instances");
  std::vector<double> weights;
  weights.reserve(templates.size());
  for (const auto& t : templates) {
    weights.push_back(static_cast<double>(t.count));
  }
  const rng::DiscreteSampler pick(weights);

  RowWindows row;
  double x = 0.0;
  std::size_t budget_windows = 0;
  const bool fixed_density = params.fets_per_um > 0.0;
  if (fixed_density) {
    budget_windows = static_cast<std::size_t>(
        params.fets_per_um * params.row_length / 1000.0 + 0.5);
  }

  while (x < params.row_length) {
    const auto& t = templates[pick(rng)];
    for (const auto& w : t.windows) {
      row.windows.push_back(w);
    }
    x += t.width;
    if (fixed_density && row.windows.size() >= budget_windows) break;
  }
  if (fixed_density) {
    // Trim/pad to the exact target count so the density matches the paper's
    // measured P_min-CNFET; padding replays windows from re-sampled cells.
    while (row.windows.size() > budget_windows) row.windows.pop_back();
    while (row.windows.size() < budget_windows) {
      const auto& t = templates[pick(rng)];
      for (const auto& w : t.windows) {
        if (row.windows.size() >= budget_windows) break;
        row.windows.push_back(w);
      }
    }
  }
  row.fets_per_um =
      static_cast<double>(row.windows.size()) / (params.row_length / 1000.0);
  return row;
}

double measure_fets_per_um(const netlist::Design& design, double w_min) {
  const auto templates = collect_templates(design, w_min);
  double fets = 0.0;
  double width_nm = 0.0;
  for (const auto& t : templates) {
    fets += static_cast<double>(t.windows.size()) *
            static_cast<double>(t.count);
    width_nm += t.width * static_cast<double>(t.count);
  }
  CNY_EXPECT(width_nm > 0.0);
  return fets / (width_nm / 1000.0);
}

std::vector<WeightedOffset> window_offsets(const netlist::Design& design,
                                           double w_min) {
  const auto templates = collect_templates(design, w_min);
  std::map<double, double> acc;
  for (const auto& t : templates) {
    for (const auto& w : t.windows) {
      const double key = std::round(w.lo * 10.0) / 10.0;
      acc[key] += static_cast<double>(t.count);
    }
  }
  std::vector<WeightedOffset> out;
  out.reserve(acc.size());
  for (const auto& [y, weight] : acc) out.push_back(WeightedOffset{y, weight});
  return out;
}

}  // namespace cny::layout
