#include "layout/floorplan.h"

#include <algorithm>

#include "rng/distributions.h"
#include "util/contracts.h"

namespace cny::layout {

using celllib::Polarity;

double Floorplan::fets_per_um() const {
  if (n_rows == 0 || row_width <= 0.0) return 0.0;
  const double total_row_um =
      static_cast<double>(n_rows) * row_width / 1000.0;
  return static_cast<double>(windows.size()) / total_row_um;
}

std::vector<PlacedWindow> Floorplan::row_windows(std::uint32_t row) const {
  std::vector<PlacedWindow> out;
  for (const auto& w : windows) {
    if (w.row == row) out.push_back(w);
  }
  std::sort(out.begin(), out.end(),
            [](const PlacedWindow& a, const PlacedWindow& b) {
              return a.x < b.x;
            });
  return out;
}

std::vector<PlacedWindow> Floorplan::segment_windows(std::uint32_t row,
                                                     double x0,
                                                     double l_cnt) const {
  CNY_EXPECT(l_cnt > 0.0);
  std::vector<PlacedWindow> out;
  for (const auto& w : row_windows(row)) {
    if (w.x >= x0 && w.x < x0 + l_cnt) out.push_back(w);
  }
  return out;
}

Floorplan place_design(const netlist::Design& design, double w_min,
                       const FloorplanParams& params,
                       rng::Xoshiro256& rng) {
  CNY_EXPECT(w_min > 0.0);
  CNY_EXPECT(params.row_width > 0.0);
  CNY_EXPECT(params.utilization > 0.0 && params.utilization <= 1.0);
  CNY_EXPECT(params.max_instances >= 1);

  // Expand (or proportionally sample) the instance list.
  const std::uint64_t total = design.n_instances();
  CNY_EXPECT_MSG(total > 0, "empty design");
  const bool sample = total > params.max_instances;
  std::vector<const celllib::Cell*> placed_cells;
  placed_cells.reserve(static_cast<std::size_t>(
      std::min<std::uint64_t>(total, params.max_instances)));
  if (sample) {
    std::vector<double> weights;
    std::vector<const celllib::Cell*> cells;
    for (const auto& ic : design.instances()) {
      weights.push_back(static_cast<double>(ic.count));
      cells.push_back(design.library().find(ic.cell_name));
    }
    const rng::DiscreteSampler pick(weights);
    for (std::uint64_t i = 0; i < params.max_instances; ++i) {
      placed_cells.push_back(cells[pick(rng)]);
    }
  } else {
    for (const auto& ic : design.instances()) {
      const auto* cell = design.library().find(ic.cell_name);
      for (std::uint64_t i = 0; i < ic.count; ++i) {
        placed_cells.push_back(cell);
      }
    }
    // Fisher–Yates shuffle so rows see the mixed cell population a real
    // placement produces.
    for (std::size_t i = placed_cells.size(); i > 1; --i) {
      std::swap(placed_cells[i - 1],
                placed_cells[rng.uniform_index(i)]);
    }
  }

  Floorplan plan;
  plan.row_width = params.row_width;
  const double budget = params.row_width * params.utilization;
  double cursor = 0.0;
  std::uint32_t row = 0;
  for (const auto* cell : placed_cells) {
    if (cursor + cell->width > budget) {
      ++row;
      cursor = 0.0;
    }
    for (int r : cell->critical_regions(Polarity::N, w_min)) {
      const auto& rect = cell->regions[static_cast<std::size_t>(r)].rect;
      PlacedWindow w;
      w.row = row;
      w.x = cursor + rect.x + 0.5 * rect.w;
      w.y = geom::Interval{rect.y, rect.y + w_min};
      plan.windows.push_back(w);
    }
    cursor += cell->width;
    plan.placed_width += cell->width;
  }
  plan.n_rows = row + 1;
  return plan;
}

}  // namespace cny::layout
