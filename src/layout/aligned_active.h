// Aligned-active layout transformation (Sec 3.2).
//
// The heuristic from the paper, applied to a whole cell library:
//   1. Estimate W_min (eqs. 2.5 + 3.1) — supplied by the caller.
//   2. Find the *critical* active regions (those containing CNFETs of width
//      <= W_min) and upsize their devices to W_min.
//   3. Re-place the n-type (resp. p-type) critical active regions of every
//      cell so their y-coordinates land on one globally defined grid row.
//   4. Adjust intra-cell geometry: regions forced onto the same row must
//      honour the same-y active-spacing rule, which can widen the cell —
//      the area penalty of Table 2. I/O pin x-positions are preserved.
//
// A two-row variant (`rows_per_polarity = 2`) allows two aligned active
// rows per polarity: it removes (nearly) all area penalty at the cost of a
// 2X reduction in the correlation benefit (Sec 3.3).
#pragma once

#include <string>
#include <vector>

#include "celllib/library.h"

namespace cny::layout {

struct AlignOptions {
  double w_min = 0.0;            ///< critical threshold / upsizing target, nm
  int rows_per_polarity = 1;     ///< 1 = strict aligned-active, 2 = relaxed
  bool upsize_critical = true;   ///< apply step 2 before aligning
  bool align_non_critical = true;///< also snap non-critical regions when free
};

struct CellPenalty {
  std::string cell;
  double old_width = 0.0;
  double new_width = 0.0;
  [[nodiscard]] double penalty() const {
    return old_width > 0.0 ? (new_width - old_width) / old_width : 0.0;
  }
};

struct AlignResult {
  celllib::Library library;            ///< transformed library
  std::vector<CellPenalty> penalties;  ///< every cell, in library order
  double grid_y_n = 0.0;               ///< chosen global n-row (bottom edge)
  double grid_y_p = 0.0;               ///< chosen global p-row (bottom edge)

  [[nodiscard]] std::size_t cells_with_penalty(double eps = 1e-6) const;
  [[nodiscard]] double min_penalty() const;  ///< over penalised cells; 0 if none
  [[nodiscard]] double max_penalty() const;
  [[nodiscard]] double mean_penalty() const; ///< over penalised cells
  /// Total placement-area increase across the library assuming one instance
  /// of each cell (width-weighted).
  [[nodiscard]] double area_increase() const;
};

/// Applies the aligned-active transform to every cell of `lib`.
/// `active_spacing` is the same-y diffusion spacing rule (nm).
[[nodiscard]] AlignResult align_active(const celllib::Library& lib,
                                       const AlignOptions& options,
                                       double active_spacing);

/// Distinct bottom-edge y offsets of critical n-type active regions across
/// the library, weighted by how often the design mix uses each cell family.
/// This is the offset diversity that limits correlation in the *unmodified*
/// library (Table 1, middle column). Offsets are reported relative to the
/// smallest one.
struct OffsetSample {
  double y = 0.0;       ///< relative bottom edge
  double weight = 0.0;  ///< relative abundance
};
[[nodiscard]] std::vector<OffsetSample> critical_region_offsets(
    const celllib::Library& lib, double w_min);

}  // namespace cny::layout
