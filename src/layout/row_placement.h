// Row placement model: realises one standard-cell row of a placed design as
// a sequence of minimum-width CNFET *windows* — the y-interval each critical
// device's active region spans — so the yield engine can evaluate how much
// CNT sharing the layout actually achieves (Sec 3.1).
//
// Within one row, directional CNTs run along x for their whole length
// (L_CNT = 200 µm >> row length under consideration), so two windows share
// CNTs exactly where their y-intervals overlap. The aligned-active library
// collapses all windows onto one interval; the unmodified library spreads
// them over the template's offset diversity.
#pragma once

#include <vector>

#include "celllib/library.h"
#include "geom/interval.h"
#include "netlist/design.h"
#include "rng/engine.h"

namespace cny::layout {

struct RowParams {
  double row_length = 200.0e3;      ///< nm of row covered by one CNT length
  double w_min = 0.0;               ///< critical width threshold (= window W)
  /// Target linear density of critical CNFETs, FETs/µm; the paper measures
  /// P_min-CNFET = 1.8 FETs/µm on the OpenRISC design. When <= 0, density is
  /// derived from the design itself.
  double fets_per_um = 0.0;
};

struct RowWindows {
  /// y-interval of each critical CNFET in the row (all have length ~W).
  std::vector<geom::Interval> windows;
  /// Realised critical-FET density, FETs/µm.
  double fets_per_um = 0.0;
  /// M_Rmin — number of critical CNFETs sharing one CNT length (eq. 3.2).
  [[nodiscard]] std::size_t count() const { return windows.size(); }
};

/// Samples a row: draws cells from the design's instance mix until the row
/// is full, collecting each critical n-region's y-interval (upsized to
/// w_min). `rng` picks cells; the library's geometry supplies the offsets.
/// If `params.fets_per_um > 0`, the number of windows is set by that density
/// instead of by how many critical FETs the sampled cells happen to contain
/// (used to match the paper's measured 1.8 FETs/µm exactly).
[[nodiscard]] RowWindows sample_row(const netlist::Design& design,
                                    const RowParams& params,
                                    rng::Xoshiro256& rng);

/// Measures the average critical-FET density (FETs/µm) implied by the
/// design: total critical n-FETs per total placed cell width.
[[nodiscard]] double measure_fets_per_um(const netlist::Design& design,
                                         double w_min);

/// The distinct window offsets (relative y positions) the design's cell mix
/// produces, with abundance weights — the compact input for the analytic
/// union computation. Aligned libraries return a single offset.
struct WeightedOffset {
  double y = 0.0;
  double weight = 0.0;
};
[[nodiscard]] std::vector<WeightedOffset> window_offsets(
    const netlist::Design& design, double w_min);

}  // namespace cny::layout
