// Chip floorplan substrate: places a design's cell instances into standard-
// cell rows so that the spatial quantities the correlation analysis needs —
// P_min-CNFET (critical FETs per µm of row) and per-device (x, y-interval)
// windows — come out of an actual placement instead of being asserted.
//
// The placement is a row-filling shuffle (yield analysis only needs
// marginal spatial statistics, not timing-driven placement quality).
#pragma once

#include <cstdint>
#include <vector>

#include "geom/interval.h"
#include "netlist/design.h"
#include "rng/engine.h"

namespace cny::layout {

struct FloorplanParams {
  double row_width = 400.0e3;   ///< nm (e.g. 400 µm of cells per row)
  double utilization = 0.85;    ///< placed width / row width
  std::uint64_t max_instances = 200000;  ///< cap for huge designs
};

/// One placed critical device: row index, x position of its gate, and the
/// y-interval its (upsized) active region spans within the row.
struct PlacedWindow {
  std::uint32_t row = 0;
  double x = 0.0;
  geom::Interval y;
};

struct Floorplan {
  std::vector<PlacedWindow> windows;  ///< all critical devices
  std::uint32_t n_rows = 0;
  double row_width = 0.0;
  double placed_width = 0.0;          ///< total cell width placed

  /// Realised critical-FET density along rows (FETs/µm) — the measured
  /// P_min-CNFET of this placement.
  [[nodiscard]] double fets_per_um() const;

  /// Windows of one row (sorted by x).
  [[nodiscard]] std::vector<PlacedWindow> row_windows(std::uint32_t row) const;

  /// Windows of one row restricted to an x-segment of one CNT length
  /// starting at `x0` — the sharing group of eq. 3.2.
  [[nodiscard]] std::vector<PlacedWindow> segment_windows(
      std::uint32_t row, double x0, double l_cnt) const;
};

/// Places the design: instances are replicated per their counts (up to
/// params.max_instances, sampled proportionally beyond), shuffled, and
/// packed into rows left to right. Critical windows are devices whose width
/// <= w_min; their y-interval is the containing region's bottom edge plus
/// w_min (matching the upsizing step).
[[nodiscard]] Floorplan place_design(const netlist::Design& design,
                                     double w_min,
                                     const FloorplanParams& params,
                                     rng::Xoshiro256& rng);

}  // namespace cny::layout
