#include "layout/aligned_active.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "util/contracts.h"

namespace cny::layout {

using celllib::ActiveRegion;
using celllib::Cell;
using celllib::Library;
using celllib::Polarity;

namespace {

/// Chooses the global grid row for a polarity: the most common critical
/// bottom edge across the library (minimises how many regions must move).
/// When no region of the polarity is critical (e.g. every p-device is wider
/// than W_min), falls back to the most common bottom edge overall so the
/// optional non-critical alignment still has a meaningful grid.
double choose_grid_row(const Library& lib, Polarity pol, double w_min) {
  std::map<double, int> votes;
  const auto tally = [&votes](const Cell& c, int r) {
    // Quantise to 0.1 nm so float noise does not split votes.
    const double key =
        std::round(c.regions[static_cast<std::size_t>(r)].rect.y * 10.0) /
        10.0;
    votes[key] += 1;
  };
  for (const auto& c : lib.cells()) {
    for (int r : c.critical_regions(pol, w_min)) tally(c, r);
  }
  if (votes.empty()) {
    for (const auto& c : lib.cells()) {
      for (int r : c.regions_of(pol)) tally(c, r);
    }
  }
  if (votes.empty()) return 0.0;
  return std::max_element(votes.begin(), votes.end(),
                          [](const auto& a, const auto& b) {
                            return a.second < b.second;
                          })
      ->first;
}

/// Re-packs regions assigned to the same row so that x-overlapping regions
/// are pushed apart to `spacing`. Regions keep their left-to-right order.
/// Returns the rightmost extent after packing.
double pack_row(std::vector<ActiveRegion*>& row, double spacing) {
  std::sort(row.begin(), row.end(), [](const auto* a, const auto* b) {
    return a->rect.x < b->rect.x;
  });
  double cursor = -1e300;
  double extent = 0.0;
  for (ActiveRegion* r : row) {
    const double x = std::max(r->rect.x, cursor);
    r->rect.x = x;
    cursor = x + r->rect.w + spacing;
    extent = std::max(extent, x + r->rect.w);
  }
  return extent;
}

}  // namespace

std::size_t AlignResult::cells_with_penalty(double eps) const {
  std::size_t n = 0;
  for (const auto& p : penalties) {
    if (p.penalty() > eps) ++n;
  }
  return n;
}

double AlignResult::min_penalty() const {
  double m = 0.0;
  bool any = false;
  for (const auto& p : penalties) {
    if (p.penalty() > 1e-6) {
      m = any ? std::min(m, p.penalty()) : p.penalty();
      any = true;
    }
  }
  return m;
}

double AlignResult::max_penalty() const {
  double m = 0.0;
  for (const auto& p : penalties) m = std::max(m, p.penalty());
  return m;
}

double AlignResult::mean_penalty() const {
  double sum = 0.0;
  std::size_t n = 0;
  for (const auto& p : penalties) {
    if (p.penalty() > 1e-6) {
      sum += p.penalty();
      ++n;
    }
  }
  return n > 0 ? sum / static_cast<double>(n) : 0.0;
}

double AlignResult::area_increase() const {
  double old_w = 0.0, new_w = 0.0;
  for (const auto& p : penalties) {
    old_w += p.old_width;
    new_w += p.new_width;
  }
  return old_w > 0.0 ? (new_w - old_w) / old_w : 0.0;
}

AlignResult align_active(const Library& lib, const AlignOptions& options,
                         double active_spacing) {
  CNY_EXPECT(options.w_min > 0.0);
  CNY_EXPECT(options.rows_per_polarity == 1 || options.rows_per_polarity == 2);
  CNY_EXPECT(active_spacing >= 0.0);

  AlignResult result;
  result.library = lib;  // transformed in place below
  result.grid_y_n = choose_grid_row(lib, Polarity::N, options.w_min);
  result.grid_y_p = choose_grid_row(lib, Polarity::P, options.w_min);

  // Step 2: upsize critical devices to W_min (region heights follow).
  if (options.upsize_critical) {
    result.library.upsize_transistors([&](double w) {
      return w < options.w_min ? options.w_min : w;
    });
  }

  for (auto& cell : result.library.cells()) {
    const double old_width = cell.width;
    // Right-hand routing margin of the original cell: preserved after any
    // widening so pin access stays legal.
    double orig_extent = 0.0;
    for (const auto& r : cell.regions) {
      orig_extent = std::max(orig_extent, r.rect.right());
    }
    const double right_margin = std::max(0.0, old_width - orig_extent);

    for (Polarity pol : {Polarity::N, Polarity::P}) {
      const double grid_y =
          pol == Polarity::N ? result.grid_y_n : result.grid_y_p;
      const auto critical = cell.critical_regions(pol, options.w_min);
      if (critical.empty()) continue;

      // Row assignment. One row: every critical region lands on grid_y.
      // Two rows: alternate critical regions between grid_y and a second
      // row offset just above it (left-to-right), which resolves the
      // pairwise x-conflicts of folded templates.
      std::vector<std::vector<ActiveRegion*>> rows(
          static_cast<std::size_t>(options.rows_per_polarity));
      std::vector<int> order(critical.begin(), critical.end());
      std::sort(order.begin(), order.end(), [&](int a, int b) {
        return cell.regions[static_cast<std::size_t>(a)].rect.x <
               cell.regions[static_cast<std::size_t>(b)].rect.x;
      });
      double row_height = 0.0;
      for (int r : order) {
        row_height = std::max(
            row_height, cell.regions[static_cast<std::size_t>(r)].rect.h);
      }
      const double second_row_gap = 0.3 * row_height + 40.0;
      for (std::size_t i = 0; i < order.size(); ++i) {
        auto& region = cell.regions[static_cast<std::size_t>(order[i])];
        const std::size_t row_idx = i % rows.size();
        double y = grid_y;
        if (row_idx == 1) {
          y = pol == Polarity::N ? grid_y + row_height + second_row_gap
                                 : grid_y - row_height - second_row_gap;
        }
        region.rect.y = y;
        rows[row_idx].push_back(&region);
      }

      // Step 3/4: same-row regions must honour the same-y spacing rule.
      double extent = 0.0;
      for (auto& row : rows) {
        extent = std::max(extent, pack_row(row, active_spacing));
      }

      // Non-critical regions of the same polarity optionally snap to the
      // grid when that does not create a same-row conflict (Sec 3.2 note).
      if (options.align_non_critical) {
        for (int r : cell.regions_of(pol)) {
          auto& region = cell.regions[static_cast<std::size_t>(r)];
          if (std::find(critical.begin(), critical.end(), r) !=
              critical.end()) {
            continue;
          }
          bool conflict = false;
          for (const auto& row : rows) {
            for (const ActiveRegion* other : row) {
              if (other->rect.x_span().overlaps(
                      geom::Interval{region.rect.x - active_spacing,
                                     region.rect.right() + active_spacing})) {
                conflict = true;
                break;
              }
            }
            if (conflict) break;
          }
          if (!conflict) region.rect.y = grid_y;
        }
      }

      // Cell widening if the packed critical rows spill past the old box:
      // keep the original right routing margin beyond the rightmost region.
      double all_extent = extent;
      for (const auto& r : cell.regions) {
        all_extent = std::max(all_extent, r.rect.right());
      }
      cell.width = std::max(cell.width, all_extent + right_margin);
    }

    result.penalties.push_back(
        CellPenalty{cell.name, old_width, cell.width});
  }

  result.library.validate();
  return result;
}

std::vector<OffsetSample> critical_region_offsets(const Library& lib,
                                                  double w_min) {
  std::map<double, double> acc;
  for (const auto& c : lib.cells()) {
    for (int r : c.critical_regions(Polarity::N, w_min)) {
      const double y =
          std::round(c.regions[static_cast<std::size_t>(r)].rect.y * 10.0) /
          10.0;
      acc[y] += 1.0;
    }
  }
  std::vector<OffsetSample> out;
  if (acc.empty()) return out;
  const double y0 = acc.begin()->first;
  for (const auto& [y, w] : acc) out.push_back(OffsetSample{y - y0, w});
  return out;
}

}  // namespace cny::layout
