// Intra-cell routing cost estimator — step 4 of the Sec 3.2 heuristic
// ("modify the intra-cell routing as necessary") made measurable.
//
// We approximate a cell's internal routing as one Manhattan connection per
// transistor from the centre of its active region to the nearest I/O pin
// (pins sit on the cell boundary; the transform preserves them, Sec 3.3).
// The routing delta between the original and the aligned cell estimates how
// much wiring the alignment perturbs — the cost the paper manages by
// "retaining the location of the I/O pins as much as possible".
#pragma once

#include "celllib/cell.h"
#include "celllib/library.h"

namespace cny::layout {

struct CellRoutingCost {
  std::string cell;
  double wirelength = 0.0;  ///< nm of estimated intra-cell Manhattan wiring
};

/// Estimated intra-cell wirelength of one cell.
[[nodiscard]] double estimate_wirelength(const celllib::Cell& cell);

/// Per-cell costs for the whole library.
[[nodiscard]] std::vector<CellRoutingCost> library_routing_costs(
    const celllib::Library& lib);

struct RoutingDelta {
  double before = 0.0;      ///< total library wirelength, original
  double after = 0.0;       ///< total library wirelength, transformed
  double worst_cell = 0.0;  ///< largest per-cell relative increase
  [[nodiscard]] double relative() const {
    return before > 0.0 ? (after - before) / before : 0.0;
  }
};

/// Compares routing cost between two versions of the same library (cells
/// matched by name; both must contain identical cell sets).
[[nodiscard]] RoutingDelta routing_delta(const celllib::Library& before,
                                         const celllib::Library& after);

}  // namespace cny::layout
