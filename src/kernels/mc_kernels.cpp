#include "kernels/mc_kernels.h"

#include "kernels/dispatch.h"
#include "kernels/mc_kernels_impl.h"
#include "util/contracts.h"

namespace cny::kernels {

namespace {

void thin_scalar(std::span<const double> ys, std::span<const double> us,
                 double p_fail, std::vector<double>& out) {
  for (std::size_t i = 0; i < ys.size(); ++i) {
    if (!(us[i] < p_fail)) out.push_back(ys[i]);
  }
}

bool any_window_empty_sorted_scalar(std::span<const double> points,
                                    std::span<const geom::Interval> windows) {
  // One pass: with windows sorted by lo, the first point >= w.lo advances
  // monotonically, so the per-window lower_bound collapses into a shared
  // cursor.
  const std::size_t n = points.size();
  std::size_t idx = 0;
  for (const auto& w : windows) {
    while (idx < n && points[idx] < w.lo) ++idx;
    if (idx == n || !(points[idx] < w.hi)) return true;
  }
  return false;
}

}  // namespace

void thin_functional(std::span<const double> ys, std::span<const double> us,
                     double p_fail, std::vector<double>& out) {
  CNY_EXPECT(ys.size() == us.size());
  out.clear();
#if defined(CNY_SIMD)
  if (simd_active()) {
    detail::thin_avx2(ys, us, p_fail, out);
    return;
  }
#endif
  thin_scalar(ys, us, p_fail, out);
}

bool any_window_empty_sorted(std::span<const double> points,
                             std::span<const geom::Interval> windows) {
#if defined(CNY_SIMD)
  if (simd_active()) {
    return detail::any_window_empty_sorted_avx2(points, windows);
  }
#endif
  return any_window_empty_sorted_scalar(points, windows);
}

}  // namespace cny::kernels
