// AVX2 implementations of the MC post-draw kernels. Neither kernel
// performs floating-point arithmetic — only compares and copies — so the
// output is the scalar output by construction; the -mno-fma
// -ffp-contract=off flags on this TU are inherited from the kernels build
// policy and vacuous here.
#include "kernels/mc_kernels_impl.h"

#include <immintrin.h>

#include <bit>
#include <cstdint>

namespace cny::kernels::detail {

namespace {

/// Compress permutation table: entry m lists, as epi32 index pairs, the
/// lanes whose mask bit is set, packed to the front (a double is index
/// pair {2l, 2l+1}).
const __m256i& compress_perm(unsigned mask) {
  alignas(32) static const std::int32_t kTable[16][8] = {
      {0, 0, 0, 0, 0, 0, 0, 0},  // 0000
      {0, 1, 0, 0, 0, 0, 0, 0},  // 0001
      {2, 3, 0, 0, 0, 0, 0, 0},  // 0010
      {0, 1, 2, 3, 0, 0, 0, 0},  // 0011
      {4, 5, 0, 0, 0, 0, 0, 0},  // 0100
      {0, 1, 4, 5, 0, 0, 0, 0},  // 0101
      {2, 3, 4, 5, 0, 0, 0, 0},  // 0110
      {0, 1, 2, 3, 4, 5, 0, 0},  // 0111
      {6, 7, 0, 0, 0, 0, 0, 0},  // 1000
      {0, 1, 6, 7, 0, 0, 0, 0},  // 1001
      {2, 3, 6, 7, 0, 0, 0, 0},  // 1010
      {0, 1, 2, 3, 6, 7, 0, 0},  // 1011
      {4, 5, 6, 7, 0, 0, 0, 0},  // 1100
      {0, 1, 4, 5, 6, 7, 0, 0},  // 1101
      {2, 3, 4, 5, 6, 7, 0, 0},  // 1110
      {0, 1, 2, 3, 4, 5, 6, 7},  // 1111
  };
  return *reinterpret_cast<const __m256i*>(kTable[mask & 15u]);
}

}  // namespace

void thin_avx2(std::span<const double> ys, std::span<const double> us,
               double p_fail, std::vector<double>& out) {
  const std::size_t n = ys.size();
  // Worst case keeps everything; size up front, shrink at the end, write
  // through a raw cursor (the 4-wide store may scribble up to 3 slots past
  // the cursor, all within the n-slot buffer — see the bound below).
  out.resize(n);
  double* dst = out.data();
  std::size_t w = 0;
  const __m256d vpf = _mm256_set1_pd(p_fail);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d u = _mm256_loadu_pd(&us[i]);
    // keep = !(u < p_fail), the scalar predicate verbatim.
    const unsigned keep = static_cast<unsigned>(
        _mm256_movemask_pd(_mm256_cmp_pd(u, vpf, _CMP_NLT_UQ)));
    const __m256d y = _mm256_loadu_pd(&ys[i]);
    const __m256d packed = _mm256_castsi256_pd(_mm256_permutevar8x32_epi32(
        _mm256_castpd_si256(y), compress_perm(keep)));
    // In-bounds: w <= i at every block head, so w + 3 <= i + 3 <= n - 1.
    _mm256_storeu_pd(&dst[w], packed);
    w += static_cast<unsigned>(std::popcount(keep));
  }
  for (; i < n; ++i) {
    if (!(us[i] < p_fail)) dst[w++] = ys[i];
  }
  out.resize(w);
}

bool any_window_empty_sorted_avx2(std::span<const double> points,
                                  std::span<const geom::Interval> windows) {
  const std::size_t n = points.size();
  std::size_t idx = 0;
  for (const auto& w : windows) {
    // Advance the shared cursor to the first point >= w.lo, four compares
    // at a time. Points are sorted, so the < w.lo lanes form a prefix of
    // the mask and countr_one gives the advance.
    const __m256d vlo = _mm256_set1_pd(w.lo);
    for (;;) {
      if (idx + 4 <= n) {
        const unsigned m = static_cast<unsigned>(_mm256_movemask_pd(
            _mm256_cmp_pd(_mm256_loadu_pd(&points[idx]), vlo, _CMP_LT_OQ)));
        if (m == 0xFu) {
          idx += 4;
          continue;
        }
        idx += static_cast<unsigned>(std::countr_one(m));
        break;
      }
      while (idx < n && points[idx] < w.lo) ++idx;
      break;
    }
    if (idx == n || !(points[idx] < w.hi)) return true;
  }
  return false;
}

}  // namespace cny::kernels::detail
