// Kernel-backend dispatch seam.
//
// The hot kernels (batched p_F evaluation, MC thinning, window checks) have
// one scalar reference implementation and, when the tree is built with
// -DCNY_SIMD=ON, an AVX2 implementation selected at runtime. Selection
// rules, in order:
//
//   1. `CNY_SIMD=OFF` at configure time — the AVX2 objects are not even
//      compiled; every query reports the scalar backend.
//   2. The CPU lacks AVX2 (CPUID probe, cached) — scalar.
//   3. The process requested scalar (`set_simd_mode(SimdMode::Off)`, the
//      CLI's `--simd=off`) — scalar.
//   4. Otherwise — AVX2.
//
// The contract that makes this a *dispatch* seam rather than a numerical
// fork: every backend of every kernel is bit-identical to the scalar
// reference (pinned in tests/test_kernels.cpp), so the mode is purely a
// speed knob — results never depend on it, the same way MC results never
// depend on thread count. See docs/architecture.md, "Kernel backends".
#pragma once

namespace cny::kernels {

enum class SimdMode {
  Auto,  ///< use the best backend the build + CPU supports (default)
  Off,   ///< force the scalar reference backend
};

/// Process-wide mode switch (atomic; normally set once at startup from the
/// CLI's --simd flag, before any kernel runs).
void set_simd_mode(SimdMode mode);
[[nodiscard]] SimdMode simd_mode();

/// True when the AVX2 backend was compiled in (CNY_SIMD=ON).
[[nodiscard]] bool simd_compiled();

/// True when the AVX2 backend is compiled in AND this CPU supports AVX2.
[[nodiscard]] bool simd_supported();

/// True when the next kernel call will take the AVX2 path: compiled,
/// supported, and not switched off.
[[nodiscard]] bool simd_active();

/// "avx2" or "scalar" — the backend simd_active() resolves to right now.
[[nodiscard]] const char* backend_name();

}  // namespace cny::kernels
