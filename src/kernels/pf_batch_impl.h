// Internal seam between the batch dispatcher (pf_batch.cpp, baseline ISA)
// and the AVX2 term-loop kernel (pf_batch_avx2.cpp, compiled with
// -mavx2 -mno-fma -ffp-contract=off). Grid setup always happens on the
// dispatcher side via cnt::detail::pf_setup — the same objects the scalar
// kernel uses — so the only code that differs between backends is the term
// loop itself. Not a public header.
#pragma once

#include "cnt/pf_kernel.h"
#include "cnt/pf_kernel_internal.h"

namespace cny::kernels::detail {

#if defined(CNY_SIMD)
/// Lane-parallel PMF term loop over `m` (2..4) prebuilt grids sharing one
/// pitch model, all on a prefactored path (grids[l]->prefactored). Writes
/// out[l] bit-identical to cnt::detail::pf_terms_scalar(*grids[l], z,
/// rel_tol) for every lane.
void pf_terms_avx2(const cnt::detail::PfGrid* const* grids, int m, double z,
                   double rel_tol, cnt::PfKernelResult* out);
#endif

}  // namespace cny::kernels::detail
