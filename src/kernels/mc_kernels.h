// Vectorizable pieces of the Monte Carlo hot path.
//
// The MC determinism contract — results are a pure function of
// (seed, n_streams) — pins the *draw order* of every stream: gamma pitch
// sampling is rejection-based (Marsaglia–Tsang, variable draws per
// variate), so the RNG phase of `functional_positions` is inherently
// serial and stays in cnt/growth.cpp. What is legally vectorizable is
// everything after the draws:
//
//  * thinning — selecting the functional tube positions out of the
//    candidate array by comparing each tube's pre-drawn Bernoulli uniform
//    against p_fail (pure compare + compress, no arithmetic);
//  * the sorted-points window-emptiness sweep over a row's windows (pure
//    compares over sorted data).
//
// Both kernels involve no floating-point arithmetic at all, only compares
// and copies, so backend bit-identity is structural: scalar and AVX2
// produce the same bytes by construction. Backend selection follows
// kernels/dispatch.h.
#pragma once

#include <span>
#include <vector>

#include "geom/interval.h"

namespace cny::kernels {

/// Clears `out` and fills it with ys[i] for every i where !(us[i] < p_fail)
/// — the survivors of per-tube Bernoulli(p_fail) failure, with us[i] the
/// tube's pre-drawn uniform — preserving order. ys and us must have equal
/// length.
void thin_functional(std::span<const double> ys, std::span<const double> us,
                     double p_fail, std::vector<double>& out);

/// Does any window [lo, hi) contain no point? `points` must be sorted
/// ascending and `windows` sorted by lo ascending (overlap is fine): one
/// two-pointer sweep instead of a binary search per window. Same answer as
/// the classic per-window lower_bound check in any window order.
[[nodiscard]] bool any_window_empty_sorted(
    std::span<const double> points, std::span<const geom::Interval> windows);

}  // namespace cny::kernels
