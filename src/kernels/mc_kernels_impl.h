// Internal seam between the MC kernel dispatchers (mc_kernels.cpp,
// baseline ISA) and the AVX2 implementations (mc_kernels_avx2.cpp). Not a
// public header.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "geom/interval.h"

namespace cny::kernels::detail {

#if defined(CNY_SIMD)
/// Compress-store thinning: identical output bytes to the scalar loop
/// (compare + copy only, no arithmetic).
void thin_avx2(std::span<const double> ys, std::span<const double> us,
               double p_fail, std::vector<double>& out);

/// Two-pointer window sweep with a 4-wide advance. Identical answer to the
/// scalar sweep (compares over sorted data only).
[[nodiscard]] bool any_window_empty_sorted_avx2(
    std::span<const double> points, std::span<const geom::Interval> windows);
#endif

}  // namespace cny::kernels::detail
