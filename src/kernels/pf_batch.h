// Batch-of-widths p_F evaluation.
//
// Every heavy consumer of `cnt::pf_truncated` — the interpolant builder,
// the W_min solver's bracket queries, circuit_yield's merged spectrum, the
// server's coalesced groups — asks for *many widths against one pitch model
// and one z*. `pf_truncated_batch` evaluates them in one pass: the widths
// are packed four to an AVX2 register (one lane per width) and the PMF term
// loop runs lane-parallel, sharing the per-term Γ-ratio, lgamma and
// reciprocal-table work that the scalar loop re-derives per width.
//
// Bit-identity contract (pinned in tests/test_kernels.cpp): for every
// backend and every batch composition,
//
//   pf_truncated_batch(pitch, widths, z, tol)[i]
//     == pf_truncated(pitch, widths[i], z, tol)      (all three fields,
//                                                     exact bits)
//
// so batching — like the SIMD mode and the thread count — is purely a
// speed knob. Lanes run each width's exact scalar op sequence (elementwise
// IEEE add/mul/div only; transcendentals stay scalar libm), and the kernel
// translation units are built with contraction disabled so no FMA can
// merge what the scalar kernel keeps separate.
#pragma once

#include <span>
#include <vector>

#include "cnt/pf_kernel.h"
#include "cnt/pitch_model.h"

namespace cny::kernels {

/// Evaluates E[z^N(W)] for every width in `widths` (each >= 0, z in [0,1])
/// against one pitch model. Result i corresponds to widths[i] and is
/// bit-identical to cnt::pf_truncated(pitch, widths[i], z, rel_tol).
/// Backend selection follows dispatch.h; widths on the wide-window
/// gamma_q fallback path (W/θ >= 650) always take the scalar reference.
[[nodiscard]] std::vector<cnt::PfKernelResult> pf_truncated_batch(
    const cnt::PitchModel& pitch, std::span<const double> widths, double z,
    double rel_tol = 1e-14);

}  // namespace cny::kernels
