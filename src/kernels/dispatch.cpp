#include "kernels/dispatch.h"

#include <atomic>

namespace cny::kernels {

namespace {

std::atomic<SimdMode> g_mode{SimdMode::Auto};

bool detect_avx2() {
#if defined(CNY_SIMD) && defined(__GNUC__) && \
    (defined(__x86_64__) || defined(__i386__))
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

}  // namespace

void set_simd_mode(SimdMode mode) {
  g_mode.store(mode, std::memory_order_relaxed);
}

SimdMode simd_mode() { return g_mode.load(std::memory_order_relaxed); }

bool simd_compiled() {
#if defined(CNY_SIMD)
  return true;
#else
  return false;
#endif
}

bool simd_supported() {
  // CPUID probe cached once: the answer cannot change within a process.
  static const bool supported = detect_avx2();
  return supported;
}

bool simd_active() {
  return simd_supported() && simd_mode() == SimdMode::Auto;
}

const char* backend_name() { return simd_active() ? "avx2" : "scalar"; }

}  // namespace cny::kernels
