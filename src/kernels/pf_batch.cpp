#include "kernels/pf_batch.h"

#include <vector>

#include "cnt/pf_kernel_internal.h"
#include "kernels/dispatch.h"
#include "kernels/pf_batch_impl.h"
#include "obs/metrics.h"
#include "util/contracts.h"

namespace cny::kernels {

namespace {

/// Lane-occupancy accounting (obs::Registry::global(), "kernels." prefix):
/// simd_lanes / (4 * simd_flushes) is the packed-lane fill rate, and
/// simd_lanes vs scalar_widths shows how much of the batch volume actually
/// rides the vector path. A few relaxed adds per *batch call* — the
/// per-width term loops are untouched.
struct BatchMetrics {
  obs::Counter& calls;
  obs::Counter& widths;
  obs::Counter& simd_flushes;
  obs::Counter& simd_lanes;
  obs::Counter& scalar_widths;
};

BatchMetrics& metrics() {
  static auto& registry = obs::Registry::global();
  static BatchMetrics m{registry.counter("kernels.pf_batch_calls"),
                        registry.counter("kernels.pf_batch_widths"),
                        registry.counter("kernels.pf_simd_flushes"),
                        registry.counter("kernels.pf_simd_lanes"),
                        registry.counter("kernels.pf_scalar_widths")};
  return m;
}

}  // namespace

std::vector<cnt::PfKernelResult> pf_truncated_batch(
    const cnt::PitchModel& pitch, std::span<const double> widths, double z,
    double rel_tol) {
  CNY_EXPECT(z >= 0.0 && z <= 1.0);
  CNY_EXPECT(rel_tol > 0.0);
  for (const double w : widths) CNY_EXPECT(w >= 0.0);

  std::vector<cnt::PfKernelResult> out(widths.size());
  if (widths.empty()) return out;
  metrics().calls.add(1);
  metrics().widths.add(widths.size());

  // The degenerate answers short-circuit exactly as in pf_truncated; every
  // other width gets a grid — the identical scalar setup both backends
  // consume.
  std::vector<std::size_t> pending;  // indices that need a term loop
  std::vector<cnt::detail::PfGrid> grids(widths.size());
  for (std::size_t i = 0; i < widths.size(); ++i) {
    if (widths[i] == 0.0 || z == 1.0) {
      out[i] = {1.0, 0, 0.0};
      continue;
    }
    grids[i] = cnt::detail::pf_setup(pitch, widths[i]);
    pending.push_back(i);
  }

#if defined(CNY_SIMD)
  if (simd_active()) {
    // Lane-pack runs of up to four prefactored widths; adjacent widths in a
    // batch (interpolant knots, merged spectra) are usually close, which
    // keeps the lanes' iteration counts coherent. Wide-window widths on the
    // gamma_q fallback path and a leftover single lane take the scalar
    // reference — bit-identity makes the split invisible.
    std::vector<const cnt::detail::PfGrid*> lane_grids;
    std::vector<std::size_t> lane_idx;
    const auto flush = [&] {
      if (lane_grids.size() >= 2) {
        metrics().simd_flushes.add(1);
        metrics().simd_lanes.add(lane_grids.size());
        cnt::PfKernelResult results[4];
        detail::pf_terms_avx2(lane_grids.data(),
                              static_cast<int>(lane_grids.size()), z, rel_tol,
                              results);
        for (std::size_t l = 0; l < lane_idx.size(); ++l) {
          out[lane_idx[l]] = results[l];
        }
      } else {
        metrics().scalar_widths.add(lane_idx.size());
        for (const std::size_t i : lane_idx) {
          out[i] = cnt::detail::pf_terms_scalar(grids[i], z, rel_tol);
        }
      }
      lane_grids.clear();
      lane_idx.clear();
    };
    for (const std::size_t i : pending) {
      if (!grids[i].prefactored) {
        metrics().scalar_widths.add(1);
        out[i] = cnt::detail::pf_terms_scalar(grids[i], z, rel_tol);
        continue;
      }
      lane_grids.push_back(&grids[i]);
      lane_idx.push_back(i);
      if (lane_grids.size() == 4) flush();
    }
    flush();
    return out;
  }
#endif

  metrics().scalar_widths.add(pending.size());
  for (const std::size_t i : pending) {
    out[i] = cnt::detail::pf_terms_scalar(grids[i], z, rel_tol);
  }
  return out;
}

}  // namespace cny::kernels
